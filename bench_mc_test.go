package seqtx_test

// Model-checker micro-benchmarks: the state-space engine's hot path
// (world cloning, canonical state keys, exhaustive exploration, product
// refutation). BENCH_mc.json records the baseline/after comparison for
// the parallel-engine PR.

import (
	"fmt"
	"runtime"
	"testing"

	"seqtx"
	"seqtx/internal/channel"
	"seqtx/internal/sim"
)

// benchWorld drives the tight protocol a few steps in so the link and
// the receiver state are non-trivial (mid-run keys, not initial ones).
func benchWorld(b *testing.B) *sim.World {
	b.Helper()
	link, err := channel.NewLinkOfKind(channel.KindDel)
	if err != nil {
		b.Fatal(err)
	}
	w, err := sim.New(seqtx.TightProtocol(3), seqtx.Sequence(0, 1, 2), link)
	if err != nil {
		b.Fatal(err)
	}
	adv := sim.NewRoundRobin()
	for i := 0; i < 12; i++ {
		if err := w.Apply(adv.Choose(w, w.Enabled())); err != nil {
			b.Fatal(err)
		}
	}
	return w
}

func BenchmarkWorldKey(b *testing.B) {
	w := benchWorld(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(w.Key()) == 0 {
			b.Fatal("empty key")
		}
	}
}

func BenchmarkWorldEncodeKey(b *testing.B) {
	w := benchWorld(b)
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = w.EncodeKey(buf[:0])
		if len(buf) == 0 {
			b.Fatal("empty key")
		}
	}
}

func BenchmarkWorldClone(b *testing.B) {
	w := benchWorld(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if w.Clone() == nil {
			b.Fatal("nil clone")
		}
	}
}

// benchWorkerCounts are the pool sizes each engine benchmark runs as
// sub-benchmarks: the sequential path and the full machine.
func benchWorkerCounts() []int {
	counts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		counts = append(counts, n)
	}
	return counts
}

func benchExploreDepth(b *testing.B, depth int) {
	spec := seqtx.TightProtocol(3)
	input := seqtx.Sequence(0, 1, 2)
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			states := 0
			for i := 0; i < b.N; i++ {
				res, err := seqtx.Explore(spec, input, seqtx.ChannelDel,
					seqtx.ExploreConfig{MaxDepth: depth, MaxStates: 1 << 20,
						EngineConfig: seqtx.EngineConfig{Workers: workers}})
				if err != nil {
					b.Fatal(err)
				}
				states += res.States
			}
			b.ReportMetric(float64(states)/float64(b.N), "states/op")
		})
	}
}

func BenchmarkExploreDepth8(b *testing.B)  { benchExploreDepth(b, 8) }
func BenchmarkExploreDepth12(b *testing.B) { benchExploreDepth(b, 12) }

func BenchmarkRefute(b *testing.B) {
	naive, err := seqtx.NaiveProtocol(2)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, rerr := seqtx.RefuteSafety(naive, seqtx.Sequence(0, 1), seqtx.Sequence(0, 1, 0),
					seqtx.ChannelDup, seqtx.ExploreConfig{MaxDepth: 12, MaxStates: 1 << 15,
						EngineConfig: seqtx.EngineConfig{Workers: workers}})
				if rerr != nil {
					b.Fatal(rerr)
				}
				if res.Violation == nil {
					b.Fatal("violation vanished")
				}
			}
		})
	}
}
