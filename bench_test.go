package seqtx_test

// The benchmark harness regenerates every reproduction experiment
// (DESIGN.md, T1–T8) under `go test -bench`, and adds micro-benchmarks
// for the substrates and ablation sweeps for the design choices DESIGN.md
// calls out (timeout pacing, fairness budget, exploration depth,
// adversary pressure).

import (
	"fmt"
	"testing"

	"seqtx"
	"seqtx/internal/alpha"
	"seqtx/internal/channel"
	"seqtx/internal/expt"
	"seqtx/internal/registry"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
)

// benchExperiment runs one T-experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := expt.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(expt.Options{Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

func BenchmarkT1AlphaTable(b *testing.B)        { benchExperiment(b, "T1") }
func BenchmarkT2DupTightness(b *testing.B)      { benchExperiment(b, "T2") }
func BenchmarkT3DupImpossibility(b *testing.B)  { benchExperiment(b, "T3") }
func BenchmarkT4DelTightness(b *testing.B)      { benchExperiment(b, "T4") }
func BenchmarkT5DelImpossibility(b *testing.B)  { benchExperiment(b, "T5") }
func BenchmarkT6Unboundedness(b *testing.B)     { benchExperiment(b, "T6") }
func BenchmarkT7ABP(b *testing.B)               { benchExperiment(b, "T7") }
func BenchmarkT8BoundednessMatrix(b *testing.B) { benchExperiment(b, "T8") }
func BenchmarkT9Probabilistic(b *testing.B)     { benchExperiment(b, "T9") }
func BenchmarkT10Knowledge(b *testing.B)        { benchExperiment(b, "T10") }

// --- Substrate micro-benchmarks -------------------------------------------

func BenchmarkChannelDupSendDeliver(b *testing.B) {
	h := channel.NewDup()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := seqtxMsg(i % 8)
		h.Send(m)
		if err := h.Deliver(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChannelDelSendDeliver(b *testing.B) {
	h := channel.NewDel()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := seqtxMsg(i % 8)
		h.Send(m)
		if err := h.Deliver(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChannelFIFOSendDeliver(b *testing.B) {
	h := channel.NewFIFO(true, true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := seqtxMsg(i % 8)
		h.Send(m)
		if err := h.Deliver(m); err != nil {
			b.Fatal(err)
		}
	}
}

func seqtxMsg(i int) seqtx.Msg { return seqtx.Msg(fmt.Sprintf("m%d", i)) }

func BenchmarkAlphaRankUnrank(b *testing.B) {
	const m = 10
	total := alpha.MustAlpha(m)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := uint64(i) % total
		s, err := alpha.Unrank(m, r)
		if err != nil {
			b.Fatal(err)
		}
		back, err := alpha.Rank(m, s)
		if err != nil || back != r {
			b.Fatalf("round trip failed at %d", r)
		}
	}
}

func BenchmarkAlphaEncodeSet(b *testing.B) {
	x := seq.MustNewSet(
		seq.FromInts(0, 0), seq.FromInts(1), seq.FromInts(1, 1, 1),
		seq.FromInts(2), seq.FromInts(2, 0),
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := alpha.Encode(x, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Protocol throughput: steps to move one sequence ----------------------

func benchTransmit(b *testing.B, spec seqtx.Spec, input seqtx.Seq, kind seqtx.ChannelKind) {
	b.Helper()
	b.ReportAllocs()
	totalSteps := 0
	for i := 0; i < b.N; i++ {
		res, err := seqtx.Transmit(spec, input, kind, seqtx.FairRoundRobin())
		if err != nil {
			b.Fatal(err)
		}
		if !res.OutputComplete {
			b.Fatalf("incomplete: %s", res.Output)
		}
		totalSteps += res.Steps
	}
	b.ReportMetric(float64(totalSteps)/float64(b.N)/float64(len(input)), "steps/item")
}

func BenchmarkProtocolTightDup(b *testing.B) {
	benchTransmit(b, seqtx.TightProtocol(8), seqtx.Sequence(3, 1, 7, 0, 5, 2, 6, 4), seqtx.ChannelDup)
}

func BenchmarkProtocolTightDel(b *testing.B) {
	benchTransmit(b, seqtx.TightProtocol(8), seqtx.Sequence(3, 1, 7, 0, 5, 2, 6, 4), seqtx.ChannelDel)
}

func BenchmarkProtocolAFWZDel(b *testing.B) {
	benchTransmit(b, seqtx.AFWZProtocol(2), seqtx.Sequence(0, 1, 0, 1, 0, 1, 0, 1), seqtx.ChannelDel)
}

func BenchmarkProtocolHybridDel(b *testing.B) {
	benchTransmit(b, seqtx.HybridProtocol(2, 8), seqtx.Sequence(0, 1, 0, 1, 0, 1, 0, 1), seqtx.ChannelDel)
}

func BenchmarkProtocolStenningDel(b *testing.B) {
	benchTransmit(b, seqtx.StenningProtocol(), seqtx.Sequence(0, 1, 0, 1, 0, 1, 0, 1), seqtx.ChannelDel)
}

func BenchmarkProtocolABPFIFO(b *testing.B) {
	benchTransmit(b, seqtx.ABProtocol(2), seqtx.Sequence(0, 1, 0, 1, 0, 1, 0, 1), seqtx.ChannelFIFO)
}

// --- Model-checker throughput ---------------------------------------------

func BenchmarkExploreStates(b *testing.B) {
	spec := seqtx.TightProtocol(2)
	input := seqtx.Sequence(0, 1)
	b.ReportAllocs()
	states := 0
	for i := 0; i < b.N; i++ {
		res, err := seqtx.Explore(spec, input, seqtx.ChannelDup,
			seqtx.ExploreConfig{MaxDepth: 10, MaxStates: 1 << 15})
		if err != nil {
			b.Fatal(err)
		}
		states += res.States
	}
	b.ReportMetric(float64(states)/float64(b.N), "states/op")
}

func BenchmarkRefuteNaive(b *testing.B) {
	naive, err := seqtx.NaiveProtocol(2)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, rerr := seqtx.RefuteSafety(naive, seqtx.Sequence(0, 1), seqtx.Sequence(0, 1, 0),
			seqtx.ChannelDup, seqtx.ExploreConfig{MaxDepth: 12, MaxStates: 1 << 15})
		if rerr != nil {
			b.Fatal(rerr)
		}
		if res.Violation == nil {
			b.Fatal("violation vanished")
		}
	}
}

// --- Ablations -------------------------------------------------------------

// BenchmarkAblationHybridTimeout sweeps the §5 timeout: shorter timeouts
// switch to the suffix stream sooner, trading spurious detours for faster
// loss detection.
func BenchmarkAblationHybridTimeout(b *testing.B) {
	input := seqtx.Sequence(0, 1, 0, 1, 0, 1, 0, 1)
	for _, timeout := range []int{2, 4, 8, 16} {
		timeout := timeout
		b.Run(fmt.Sprintf("timeout=%d", timeout), func(b *testing.B) {
			steps := 0
			for i := 0; i < b.N; i++ {
				res, err := seqtx.Transmit(seqtx.HybridProtocol(2, timeout), input,
					seqtx.ChannelDel, seqtx.Dropper(int64(i), 1))
				if err != nil {
					b.Fatal(err)
				}
				if !res.OutputComplete {
					b.Fatal("incomplete")
				}
				steps += res.Steps
			}
			b.ReportMetric(float64(steps)/float64(b.N), "steps/run")
		})
	}
}

// BenchmarkAblationFairnessBudget sweeps the finite-delay budget: larger
// budgets admit nastier reorderings at the cost of longer runs.
func BenchmarkAblationFairnessBudget(b *testing.B) {
	spec := seqtx.TightProtocol(4)
	input := seqtx.Sequence(2, 0, 3, 1)
	for _, budget := range []int{4, 6, 12, 24} {
		budget := budget
		b.Run(fmt.Sprintf("budget=%d", budget), func(b *testing.B) {
			steps := 0
			for i := 0; i < b.N; i++ {
				adv := sim.NewFinDelay(sim.NewRandom(int64(i)), budget)
				res, err := sim.RunProtocol(spec, input, channel.KindDup, adv,
					sim.Config{MaxSteps: 5000, StopWhenComplete: true})
				if err != nil {
					b.Fatal(err)
				}
				if !res.OutputComplete {
					b.Fatal("incomplete")
				}
				steps += res.Steps
			}
			b.ReportMetric(float64(steps)/float64(b.N), "steps/run")
		})
	}
}

// BenchmarkAblationExploreDepth sweeps exploration depth: state growth of
// the exhaustive checker on the tight protocol.
func BenchmarkAblationExploreDepth(b *testing.B) {
	spec := seqtx.TightProtocol(2)
	input := seqtx.Sequence(0, 1)
	for _, depth := range []int{6, 8, 10, 12} {
		depth := depth
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			states := 0
			for i := 0; i < b.N; i++ {
				res, err := seqtx.Explore(spec, input, seqtx.ChannelDel,
					seqtx.ExploreConfig{MaxDepth: depth, MaxStates: 1 << 18})
				if err != nil {
					b.Fatal(err)
				}
				states += res.States
			}
			b.ReportMetric(float64(states)/float64(b.N), "states/op")
		})
	}
}

// BenchmarkAblationSlidingWindow sweeps the window size of the two
// pipelined data-link protocols under a lossy FIFO: pipelining cuts steps
// per item; losses cost Go-Back-N a whole window but Selective Repeat only
// the missing frame.
func BenchmarkAblationSlidingWindow(b *testing.B) {
	input := seqtx.Sequence(0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1)
	for _, proto := range []string{"gobackn", "selrepeat"} {
		for _, w := range []int{1, 2, 4, 8} {
			proto, w := proto, w
			b.Run(fmt.Sprintf("%s/window=%d", proto, w), func(b *testing.B) {
				spec, err := registry.Protocol(proto, registry.Params{M: 2, Window: w})
				if err != nil {
					b.Fatal(err)
				}
				steps := 0
				for i := 0; i < b.N; i++ {
					res, err := seqtx.Transmit(spec, input, seqtx.ChannelFIFO, seqtx.Dropper(int64(i), 2))
					if err != nil {
						b.Fatal(err)
					}
					if !res.OutputComplete {
						b.Fatal("incomplete")
					}
					steps += res.Steps
				}
				b.ReportMetric(float64(steps)/float64(b.N)/float64(len(input)), "steps/item")
			})
		}
	}
}

// BenchmarkAblationReplayPressure sweeps duplicate-replay pressure on the
// tight protocol: more replays mean more wasted deliveries but never a
// safety loss.
func BenchmarkAblationReplayPressure(b *testing.B) {
	spec := seqtx.TightProtocol(4)
	input := seqtx.Sequence(2, 0, 3, 1)
	for _, period := range []int{1, 2, 4, 8} {
		period := period
		b.Run(fmt.Sprintf("period=%d", period), func(b *testing.B) {
			steps := 0
			for i := 0; i < b.N; i++ {
				adv := sim.NewFinDelay(sim.NewReplayer(int64(i), period), 12)
				res, err := sim.RunProtocol(spec, input, channel.KindDup, adv,
					sim.Config{MaxSteps: 8000, StopWhenComplete: true})
				if err != nil {
					b.Fatal(err)
				}
				if !res.OutputComplete || res.SafetyViolation != nil {
					b.Fatalf("complete=%v violation=%v", res.OutputComplete, res.SafetyViolation)
				}
				steps += res.Steps
			}
			b.ReportMetric(float64(steps)/float64(b.N), "steps/run")
		})
	}
}
