// Command stpbounds prints the paper's bound alpha(m) and, on request,
// demonstrates tightness: it enumerates the repetition-free sequences,
// ranks/unranks them, and reports the prefix-monotone encodability of a
// user-given set.
//
// Usage:
//
//	stpbounds -m 6            # alpha table up to m = 6 and the m = 6 census
//	stpbounds -m 3 -list      # enumerate all alpha(3) sequences with ranks
//	stpbounds -m 2 -encode "0,0;1;1,1"   # try to encode a set (';'-separated)
package main

import (
	"flag"
	"fmt"
	"math/big"
	"os"
	"strconv"
	"strings"

	"seqtx/internal/alpha"
	"seqtx/internal/seq"
	"seqtx/internal/tablefmt"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		m      = flag.Int("m", 6, "sender alphabet size")
		list   = flag.Bool("list", false, "enumerate all repetition-free sequences with ranks")
		encode = flag.String("encode", "", "data sequences to encode, e.g. \"0,0;1;1,1\"")
	)
	flag.Parse()
	if *m < 0 {
		fmt.Fprintln(os.Stderr, "stpbounds: m must be non-negative")
		return 2
	}

	tab := tablefmt.New("alpha(m) = m!·sum 1/k! — the tight bound on |X|",
		"m", "alpha(m)", "m!", "log2 alpha(m) bits")
	for i := 0; i <= *m; i++ {
		a, err := alpha.AlphaBig(i)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stpbounds:", err)
			return 1
		}
		fact := new(big.Int).MulRange(1, int64(max(i, 1)))
		bits := a.BitLen() - 1
		tab.AddRow(fmt.Sprint(i), a.String(), fact.String(), fmt.Sprint(bits))
	}
	fmt.Println(tab)

	if *list {
		if *m > 5 {
			fmt.Fprintln(os.Stderr, "stpbounds: -list limited to m <= 5")
			return 2
		}
		lt := tablefmt.New(fmt.Sprintf("the alpha(%d) repetition-free sequences, DFS order", *m),
			"rank", "sequence")
		for _, s := range seq.RepetitionFree(*m) {
			r, err := alpha.Rank(*m, s)
			if err != nil {
				fmt.Fprintln(os.Stderr, "stpbounds:", err)
				return 1
			}
			lt.AddRow(fmt.Sprint(r), s.String())
		}
		fmt.Println(lt)
	}

	if *encode != "" {
		set, err := parseSet(*encode)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stpbounds:", err)
			return 2
		}
		enc, err := alpha.Encode(set, *m)
		if err != nil {
			fmt.Printf("set of %d sequences is NOT prefix-monotone encodable over %d messages:\n  %v\n",
				set.Size(), *m, err)
			return 0
		}
		et := tablefmt.New(fmt.Sprintf("prefix-monotone encoding mu over %d messages", *m),
			"data sequence X", "code mu(X)")
		for _, s := range set.Seqs() {
			code, cerr := enc.Code(s)
			if cerr != nil {
				fmt.Fprintln(os.Stderr, "stpbounds:", cerr)
				return 1
			}
			parts := make([]string, len(code))
			for i, c := range code {
				parts[i] = string(c)
			}
			et.AddRow(s.String(), strings.Join(parts, "·"))
		}
		fmt.Println(et)
	}
	return 0
}

func parseSet(arg string) (*seq.Set, error) {
	var seqs []seq.Seq
	for _, part := range strings.Split(arg, ";") {
		part = strings.TrimSpace(part)
		var s seq.Seq
		if part != "" {
			for _, f := range strings.Split(part, ",") {
				v, err := strconv.Atoi(strings.TrimSpace(f))
				if err != nil {
					return nil, fmt.Errorf("stpbounds: bad item %q: %w", f, err)
				}
				s = append(s, seq.Item(v))
			}
		}
		seqs = append(seqs, s)
	}
	return seq.NewSet(seqs...)
}
