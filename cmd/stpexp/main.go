// Command stpexp runs the reproduction experiments T1–T8 (see DESIGN.md)
// and prints their tables. With -markdown it emits the GitHub-flavored
// tables that EXPERIMENTS.md records.
//
// Usage:
//
//	stpexp               # run every experiment
//	stpexp -t T3         # run one experiment
//	stpexp -deep         # expensive variants (wider slices, longer series)
//	stpexp -markdown     # markdown output
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"seqtx/internal/expt"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		id       = flag.String("t", "", "experiment id (T1..T10); empty = all")
		list     = flag.Bool("list", false, "list the experiments and exit")
		deep     = flag.Bool("deep", false, "run expensive variants")
		markdown = flag.Bool("markdown", false, "emit markdown tables")
		seed     = flag.Int64("seed", 1, "adversary seed")
	)
	flag.Parse()

	if *list {
		for _, e := range expt.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return 0
	}

	opts := expt.Options{Deep: *deep, Seed: *seed}
	experiments := expt.All()
	if *id != "" {
		e, err := expt.ByID(*id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		experiments = []expt.Experiment{e}
	}
	for _, e := range experiments {
		start := time.Now()
		tables, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			return 1
		}
		if *markdown {
			fmt.Printf("### %s — %s\n\n", e.ID, e.Title)
			for _, t := range tables {
				fmt.Println(t.Markdown())
			}
			fmt.Printf("*(generated in %v)*\n\n", time.Since(start).Round(time.Millisecond))
			continue
		}
		fmt.Printf("=== %s — %s (%v)\n\n", e.ID, e.Title, time.Since(start).Round(time.Millisecond))
		for _, t := range tables {
			fmt.Println(t.String())
		}
	}
	return 0
}
