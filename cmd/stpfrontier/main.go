// Command stpfrontier sweeps protocols across the quantitative channel
// models and writes the empirical capacity frontier as a bench
// document: per-(protocol, model, m) goodput, completion rate, the
// lock-step goodput ceiling 0.25·(1−drop)/(1+dup), and the paper's
// alpha(m) information bound.
//
// Protocols are only paired with channel kinds they are verifiably
// safe on (afwz/hybrid are del-channel protocols — on the iid-dup
// family they are skipped, and their stalls under genuine loss are
// reported as low completion, not errors). The FIFO-only windowed
// protocols (gobackn, selrepeat) run the order-preserving loss
// families (iid-loss, ge) over a FIFO realization and sweep the
// -windows depth axis. Any prefix-safety violation anywhere in the
// sweep exits nonzero.
//
// Usage:
//
//	stpfrontier -protos alpha,afwz,hybrid,stenning -m 4,8 \
//	    -trials 20 -report BENCH_frontier.json -markdown -
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"seqtx/internal/chanmodel"
	"seqtx/internal/frontier"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("stpfrontier", flag.ExitOnError)
	var (
		protos   = fs.String("protos", strings.Join(frontier.FrontierProtocols(), ","), "comma-separated protocols (must be in the verified-safe table)")
		models   = fs.String("models", "default", "comma-separated channel-model specs ("+chanmodel.SpecSyntax+"; commas inside parentheses do not split), or \"default\" for the standard 4×4 grid")
		ms       = fs.String("m", "4,8", "comma-separated alphabet sizes")
		windows  = fs.String("windows", "4", "comma-separated window depths for the FIFO-only windowed protocols (gobackn, selrepeat)")
		items    = fs.Int("items", 0, "input items per trial (repetition-free protocols cap this at min m; default min m)")
		trials   = fs.Int("trials", 20, "Monte-Carlo trials per cell")
		maxSteps = fs.Int("max-steps", 0, "step budget per trial (0 = 600 + 200·items)")
		timeout  = fs.Int("timeout", 0, "hybrid timeout (ticks; 0 = protocol default)")
		seed     = fs.Int64("seed", 1, "base seed (cell c trial i derives from seed+c*10007+i)")
		par      = fs.Int("par", 0, "trial parallelism per cell (0 = GOMAXPROCS)")
		reportTo = fs.String("report", "BENCH_frontier.json", "write the bench document to this file (\"-\" = stdout, \"\" = skip)")
		mdTo     = fs.String("markdown", "", "write the frontier tables as markdown to this file (\"-\" = stdout, \"\" = skip)")
		verbose  = fs.Bool("v", false, "log per-cell progress")
	)
	fs.Parse(os.Args[1:])

	cfg := frontier.Config{
		Protos:      splitList(*protos),
		Ms:          nil,
		Items:       *items,
		Trials:      *trials,
		MaxSteps:    *maxSteps,
		Timeout:     *timeout,
		Seed:        *seed,
		Parallelism: *par,
	}
	var err error
	if cfg.Ms, err = parseInts(*ms); err != nil {
		fmt.Fprintf(os.Stderr, "stpfrontier: -m: %v\n", err)
		return 2
	}
	if cfg.Windows, err = parseInts(*windows); err != nil {
		fmt.Fprintf(os.Stderr, "stpfrontier: -windows: %v\n", err)
		return 2
	}
	if *models != "default" {
		if cfg.Models, err = chanmodel.ParseList(*models); err != nil {
			fmt.Fprintln(os.Stderr, "stpfrontier:", err)
			return 2
		}
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "stpfrontier: "+format+"\n", args...)
		}
	}

	doc, err := frontier.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stpfrontier:", err)
		return 2
	}

	fmt.Printf("stpfrontier: %d cells (%d skipped as unsafe pairings), %d trials each, violations %d\n",
		doc.TotalCells, len(doc.Skipped), doc.Trials, doc.TotalViolations)

	if *reportTo != "" {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "stpfrontier:", err)
			return 1
		}
		if err := writeOut(*reportTo, append(data, '\n')); err != nil {
			fmt.Fprintln(os.Stderr, "stpfrontier:", err)
			return 1
		}
	}
	if *mdTo != "" {
		if err := writeOut(*mdTo, []byte(doc.Markdown())); err != nil {
			fmt.Fprintln(os.Stderr, "stpfrontier:", err)
			return 1
		}
	}
	if doc.TotalViolations > 0 {
		fmt.Fprintf(os.Stderr, "stpfrontier: FAIL: %d prefix-safety violations\n", doc.TotalViolations)
		return 1
	}
	return 0
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", f, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty axis")
	}
	return out, nil
}

func writeOut(path string, data []byte) error {
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
