// Command stpload is the wire data plane's load generator: it drives
// waves of concurrent STP sessions over a live transport for a wall-clock
// window, optionally paced to a target session-start rate and impaired
// with the shared fault presets, and emits a machine-readable JSON report
// (aggregate throughput, goodput, batch-size distribution, drop causes).
// The safety invariant is audited online in every session; stpload exits
// 0 iff no session ever violated it — load is allowed to slow transfers
// down or keep them from finishing, never to corrupt them.
//
// With -crash-preset, every session runs under crash-restart supervision
// (wire.ServeSupervised): live endpoint processes are killed mid-run at
// the preset's scheduled ticks and restarted with amnesia or into
// seeded-arbitrary scrambled state, and the report gains the chaos block
// (incarnations, stabilization times, post-stabilization violations, and
// the replayable crash-schedule digest). Under chaos the exit contract
// extends: any bad write outside a recovery window fails the run.
//
// Usage:
//
//	stpload -transport inproc -sessions 64 -duration 5s -report -
//	stpload -transport udp -sessions 16 -rate 200 -impair burst-drop
//	stpload -proto stab -crash-preset crash-scramble-both -restart-policy scramble -report -
//
// With -master, stpload instead joins a distributed cluster as a client
// node: it runs the sender halves of the sessions an stpmaster
// coordinator assigns it, over peer-addressed UDP toward a remote
// stpserve server node, rate-paced per the assignment. Every load flag
// is then ignored — the assignment carries the configuration.
//
//	stpload -master 127.0.0.1:7700 -node-name cli-a -data-host 10.0.0.6
package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"seqtx/internal/chanmodel"
	"seqtx/internal/cliutil"
	"seqtx/internal/cluster"
	"seqtx/internal/faults"
	"seqtx/internal/obs"
	"seqtx/internal/protocol"
	"seqtx/internal/protocol/hybrid"
	"seqtx/internal/registry"
	"seqtx/internal/seq"
	"seqtx/internal/wire"
)

func main() {
	os.Exit(run())
}

// report is the JSON document stpload emits.
type report struct {
	Transport      string  `json:"transport"`
	Proto          string  `json:"proto"`
	Engine         string  `json:"engine"`
	Impair         string  `json:"impair"`
	SessionsPerWav int     `json:"sessions_per_wave"`
	Waves          int     `json:"waves"`
	Sessions       int     `json:"sessions"`
	Completed      int     `json:"completed"`
	Violations     int     `json:"violations"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`

	// Chaos block: populated when -crash-preset schedules crash-restarts.
	CrashPreset         string `json:"crash_preset,omitempty"`
	RestartPolicy       string `json:"restart_policy,omitempty"`
	Incarnations        int    `json:"incarnations,omitempty"`
	Crashes             int    `json:"crashes,omitempty"`
	ScrambledRestarts   int    `json:"scrambled_restarts,omitempty"`
	WatchdogEscalations int    `json:"watchdog_escalations"`
	BadWrites           int    `json:"bad_writes"`
	PostStabViolations  int    `json:"post_stab_violations"`
	// CrashScheduleDigest folds every session's realized-schedule digest:
	// equal seeds and configs reproduce it exactly (the replay contract).
	CrashScheduleDigest string `json:"crash_schedule_digest,omitempty"`

	FramesTx     int64   `json:"frames_tx"`
	FramesRx     int64   `json:"frames_rx"`
	FramesPerSec float64 `json:"frames_per_sec"`
	Retransmits  int64   `json:"retransmits"`
	InboxDrops   int64   `json:"inbox_drops"`

	// Footprint block: peak resident memory and peak goroutine count over
	// the whole run — the scale sweep's evidence that the event-loop
	// engine's cost per session is flat.
	MaxRSSBytes    int64 `json:"max_rss_bytes"`
	GoroutinesPeak int   `json:"goroutines_peak"`

	ItemsDelivered int64   `json:"items_delivered"`
	GoodputMean    float64 `json:"goodput_items_per_sec_mean"`

	DroppedByCause map[string]int64       `json:"dropped_by_cause,omitempty"`
	BatchFrames    *obs.HistogramSnapshot `json:"batch_frames,omitempty"`
	StabilizeTime  *obs.HistogramSnapshot `json:"stabilize_time_seconds,omitempty"`
	Metrics        obs.Snapshot           `json:"metrics"`
}

func run() int {
	var metrics cliutil.Metrics
	var (
		proto     = flag.String("proto", "alpha", "protocol: "+strings.Join(registry.ProtocolNames(), "|"))
		m         = flag.Int("m", 8, "domain / sender-alphabet size parameter")
		timeout   = flag.Int("timeout", hybrid.DefaultTimeout, "hybrid timeout (ticks)")
		window    = flag.Int("window", 4, "modseq sequence-number window")
		items     = flag.Int("items", 6, "input items per session (repetition-free, so at most -m)")
		sessions  = flag.Int("sessions", 64, "concurrent sessions per wave")
		rate      = flag.Float64("rate", 0, "target session-start rate per second (0 = unpaced waves)")
		duration  = flag.Duration("duration", 5*time.Second, "load window: new waves start until this elapses")
		transport = flag.String("transport", "inproc", "transport: inproc|udp")
		engineStr = flag.String("engine", "loop", "session engine: loop|goroutine")
		inboxSize = flag.Int("inbox", 0, "per-session inbox capacity (0 = wire default)")
		evSample  = flag.Uint64("event-sample", 0, "emit lifecycle events for every Nth session id (0 = auto-scale to fleet size, 1 = every session)")
		impair    = flag.String("impair", "none", "impairment preset ("+strings.Join(wire.ImpairPresetNames(), "|")+") or channel-model spec ("+chanmodel.SpecSyntax+")")
		crashPre  = flag.String("crash-preset", "none", "crash-restart chaos preset (e.g. crash-scramble-both); runs sessions supervised")
		restart   = flag.String("restart-policy", "preset", "restart state for crashed processes: preset|amnesia|scramble")
		capBound  = flag.Int("cap", 0, "channel-capacity bound c for the stab protocol (0 = its default)")
		seed      = flag.Int64("seed", 1, "base seed (wave w, session i uses seed+w*sessions+i)")
		tick      = flag.Duration("tick", wire.DefaultTick, "per-process pacing tick")
		deadline  = flag.Duration("deadline", 30*time.Second, "per-session deadline (0 = none)")
		reportTo  = flag.String("report", "", "write the JSON report to this file (\"-\" = stdout)")
		verbose   = flag.Bool("v", false, "print one line per wave")

		master   = flag.String("master", "", "join a cluster as a client node: stpmaster control address (host:port); load flags then come from the assignment")
		nodeName = flag.String("node-name", "", "cluster node name (default cli-<pid>)")
		dataHost = flag.String("data-host", "", "host/IP the data-plane UDP sockets bind on (default 127.0.0.1; on a real fleet, the interface the peer can reach)")
	)
	metrics.AddFlags(flag.CommandLine)
	flag.Parse()

	if *master != "" {
		return runNode(*master, *nodeName, *dataHost, *verbose)
	}

	for _, check := range []error{
		cliutil.Positive("sessions", *sessions),
		cliutil.Positive("items", *items),
		cliutil.Positive("m", *m),
		cliutil.NonNegative("timeout", *timeout),
	} {
		if check != nil {
			fmt.Fprintln(os.Stderr, "stpload:", check)
			return 2
		}
	}
	if *tick <= 0 || *duration <= 0 || *deadline < 0 || *rate < 0 {
		fmt.Fprintln(os.Stderr, "stpload: -tick and -duration must be > 0; -deadline and -rate must be >= 0")
		return 2
	}
	if *items > *m {
		fmt.Fprintf(os.Stderr, "stpload: -items %d exceeds -m %d (inputs are repetition-free); raise -m\n", *items, *m)
		return 2
	}
	if *transport != "inproc" && *transport != "udp" {
		fmt.Fprintf(os.Stderr, "stpload: unknown transport %q (have inproc, udp)\n", *transport)
		return 2
	}
	engine, err := wire.ParseEngine(*engineStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stpload:", err)
		return 2
	}
	if *inboxSize < 0 {
		fmt.Fprintln(os.Stderr, "stpload: -inbox must be >= 0")
		return 2
	}
	// Auto-scale event sampling: the obs event ring holds 4096 entries, so
	// at large fleets per-session lifecycle events are sampled down to
	// roughly half the ring per wave (counters stay exact regardless).
	sampleEvery := *evSample
	if sampleEvery == 0 {
		sampleEvery = 1
		if every := uint64(2*(*sessions)) / 4096; every > 1 {
			sampleEvery = every
		}
	}

	params := registry.Params{M: *m, Timeout: *timeout, Window: *window, Seed: *seed, Cap: *capBound}
	opts, err := wire.ImpairSpec(*impair, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stpload:", err)
		return 2
	}

	// Crash-restart chaos: a non-trivial -crash-preset switches every wave
	// to supervised sessions (wire.ServeSupervised) with the preset's
	// crash schedule and the chosen restart-state policy.
	supervised := *crashPre != "" && *crashPre != "none"
	var crashSpec faults.Spec
	var policy wire.RestartPolicy
	if supervised {
		if crashSpec, err = faults.PresetSpec(*crashPre); err != nil {
			fmt.Fprintln(os.Stderr, "stpload:", err)
			return 2
		}
		if len(crashSpec.Crashes) == 0 {
			fmt.Fprintf(os.Stderr, "stpload: preset %q schedules no process crashes; link impairments go via -impair\n", *crashPre)
			return 2
		}
		if policy, err = wire.ParseRestartPolicy(*restart); err != nil {
			fmt.Fprintln(os.Stderr, "stpload:", err)
			return 2
		}
	}

	// The report always embeds a metrics snapshot, so the registry is
	// unconditionally live; -metrics additionally writes it standalone.
	reg := metrics.Registry()
	if reg == nil {
		reg = obs.NewRegistry()
	}
	rep := report{
		Transport:      *transport,
		Proto:          *proto,
		Engine:         engine.String(),
		Impair:         *impair,
		SessionsPerWav: *sessions,
	}
	if supervised {
		rep.CrashPreset = *crashPre
		rep.RestartPolicy = policy.String()
	}
	var goodputSum float64
	var goodputN int
	runDigest := fnv.New64a()

	// Goroutine-peak sampler: the footprint claim of the event-loop engine
	// is precisely that this number stays flat as fleets grow.
	var goroutinePeak atomic.Int64
	samplerStop := make(chan struct{})
	go func() {
		t := time.NewTicker(100 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-samplerStop:
				return
			case <-t.C:
				if n := int64(runtime.NumGoroutine()); n > goroutinePeak.Load() {
					goroutinePeak.Store(n)
				}
			}
		}
	}()

	start := time.Now()
	for wave := 0; ; wave++ {
		// One wave = one fleet of -sessions concurrent transfers over a
		// fresh transport (Serve owns and closes it); the obs registry is
		// shared so counters and histograms aggregate across waves.
		waveStart := time.Now()
		var tr wire.Transport
		if *transport == "udp" {
			if tr, err = wire.NewUDP(reg); err != nil {
				fmt.Fprintln(os.Stderr, "stpload:", err)
				return 1
			}
		} else {
			tr = wire.NewInproc(0, reg)
		}
		if tr, err = wire.NewImpairment(tr, opts, reg); err != nil {
			fmt.Fprintln(os.Stderr, "stpload:", err)
			return 1
		}

		cfgs := make([]wire.SessionConfig, *sessions)
		inputs := make([]seq.Seq, *sessions)
		// One reseeded source for the whole wave: rand.NewSource(s) and
		// src.Seed(s) yield the same stream, and the source is ~5 KB — per
		// session at 1M it would be gigabytes of construction garbage
		// inflating peak RSS.
		src := rand.NewSource(0)
		rng := rand.New(src)
		for i := range cfgs {
			sessSeed := *seed + int64(wave)*int64(*sessions) + int64(i)
			src.Seed(sessSeed)
			x, err := seq.RandomRepetitionFree(rng, *m, *items)
			if err != nil {
				fmt.Fprintln(os.Stderr, "stpload:", err)
				return 2
			}
			s, r, err := registry.Pair(*proto, params, x)
			if err != nil {
				fmt.Fprintln(os.Stderr, "stpload:", err)
				return 2
			}
			inputs[i] = x
			cfgs[i] = wire.SessionConfig{
				ID:        uint64(i + 1),
				Sender:    s,
				Receiver:  r,
				Input:     x,
				Tick:      *tick,
				Deadline:  *deadline,
				InboxSize: *inboxSize,
				Seed:      sessSeed,
			}
		}

		ctx, cancel := context.WithDeadline(context.Background(), start.Add(*duration+*deadline))
		waveComplete := 0
		if supervised {
			sreports, serr := wire.ServeSupervised(ctx, wire.ChaosServeConfig{
				ServeConfig: wire.ServeConfig{
					Transport: tr, Sessions: cfgs, Obs: reg,
					Engine: engine, EventSampleEvery: sampleEvery,
				},
				Chaos: wire.ChaosConfig{
					Crashes: crashSpec.Crashes,
					Policy:  policy,
					Seed:    *seed + int64(wave),
				},
				Rebuild: func(i int) (protocol.Sender, protocol.Receiver, error) {
					return registry.Pair(*proto, params, inputs[i])
				},
			})
			cancel()
			if serr != nil {
				fmt.Fprintln(os.Stderr, "stpload:", serr)
				return 1
			}
			for _, r := range sreports {
				rep.Sessions++
				if r.Complete {
					rep.Completed++
					waveComplete++
				}
				rep.ItemsDelivered += int64(len(r.Output))
				rep.Incarnations += len(r.Incarnations)
				rep.BadWrites += r.BadWrites
				rep.PostStabViolations += r.PostStabViolations
				rep.WatchdogEscalations += r.WatchdogEscalations
				for _, ic := range r.Incarnations {
					if ic.Ended == "crash" {
						rep.Crashes++
						if ic.Scrambled {
							rep.ScrambledRestarts++
						}
					}
				}
				if r.Complete && r.Elapsed > 0 {
					goodputSum += float64(len(r.Output)) / r.Elapsed.Seconds()
					goodputN++
				}
				var d [8]byte
				binary.LittleEndian.PutUint64(d[:], r.CrashScheduleDigest)
				runDigest.Write(d[:])
			}
		} else {
			reports, serr := wire.Serve(ctx, wire.ServeConfig{
				Transport: tr, Sessions: cfgs, Obs: reg,
				Engine: engine, EventSampleEvery: sampleEvery,
			})
			cancel()
			if serr != nil {
				fmt.Fprintln(os.Stderr, "stpload:", serr)
				return 1
			}
			for _, r := range reports {
				rep.Sessions++
				if r.Complete {
					rep.Completed++
					waveComplete++
				}
				if r.SafetyViolation != nil {
					rep.Violations++
					fmt.Fprintln(os.Stderr, "stpload:", r.SafetyViolation)
				}
				rep.ItemsDelivered += int64(len(r.Output))
				if r.GoodputItemsPerSec > 0 {
					goodputSum += r.GoodputItemsPerSec
					goodputN++
				}
			}
		}
		rep.Waves++
		if *verbose {
			fmt.Printf("wave %3d: sessions=%d complete=%d elapsed=%v\n",
				wave, len(cfgs), waveComplete, time.Since(waveStart).Round(time.Millisecond))
		}

		if time.Since(start) >= *duration {
			break
		}
		if *rate > 0 {
			// Pace wave starts to the target session-start rate.
			next := waveStart.Add(time.Duration(float64(*sessions) / *rate * float64(time.Second)))
			if wait := time.Until(next); wait > 0 {
				time.Sleep(wait)
			}
			if time.Since(start) >= *duration {
				break
			}
		}
	}
	rep.ElapsedSeconds = time.Since(start).Seconds()
	close(samplerStop)
	if n := int64(runtime.NumGoroutine()); n > goroutinePeak.Load() {
		goroutinePeak.Store(n)
	}
	rep.GoroutinesPeak = int(goroutinePeak.Load())
	rep.MaxRSSBytes = cliutil.MaxRSSBytes()

	snap := reg.Snapshot()
	// The report is an aggregate document; the per-session event stream
	// would dwarf it (and overflows the bounded buffer under load anyway).
	snap.Events, snap.DroppedEvents = nil, 0
	rep.Metrics = snap
	rep.DroppedByCause = make(map[string]int64)
	for name, v := range snap.Counters {
		switch {
		case strings.HasPrefix(name, "wire_frames_tx_total"):
			rep.FramesTx += v
		case strings.HasPrefix(name, "wire_frames_rx_total"):
			rep.FramesRx += v
		case strings.HasPrefix(name, "wire_frames_dropped_total"):
			if v > 0 {
				rep.DroppedByCause[dropCause(name)] = v
				if dropCause(name) == "inbox_full" {
					rep.InboxDrops = v
				}
			}
		case name == "wire_retransmits_total":
			rep.Retransmits = v
		}
	}
	if rep.ElapsedSeconds > 0 {
		rep.FramesPerSec = float64(rep.FramesTx) / rep.ElapsedSeconds
	}
	if goodputN > 0 {
		rep.GoodputMean = goodputSum / float64(goodputN)
	}
	if h, ok := snap.Histograms["wire_batch_frames"]; ok {
		rep.BatchFrames = &h
	}
	if supervised {
		rep.CrashScheduleDigest = fmt.Sprintf("%016x", runDigest.Sum64())
		if h, ok := snap.Histograms["wire_stabilize_time_seconds"]; ok {
			rep.StabilizeTime = &h
		}
	}

	fmt.Printf("stpload: transport=%s engine=%s proto=%s impair=%s waves=%d sessions=%d complete=%d violations=%d frames/s=%.0f rss=%dMB goroutines_peak=%d\n",
		rep.Transport, rep.Engine, rep.Proto, rep.Impair, rep.Waves, rep.Sessions, rep.Completed, rep.Violations,
		rep.FramesPerSec, rep.MaxRSSBytes>>20, rep.GoroutinesPeak)
	if supervised {
		fmt.Printf("stpload: chaos preset=%s policy=%s incarnations=%d crashes=%d scrambled=%d watchdog=%d bad_writes=%d post_stab_violations=%d digest=%s\n",
			rep.CrashPreset, rep.RestartPolicy, rep.Incarnations, rep.Crashes, rep.ScrambledRestarts,
			rep.WatchdogEscalations, rep.BadWrites, rep.PostStabViolations, rep.CrashScheduleDigest)
	}

	if *reportTo != "" {
		if err := writeReport(*reportTo, rep); err != nil {
			fmt.Fprintln(os.Stderr, "stpload:", err)
			return 1
		}
	}
	// Exit contract: load and chaos may slow sessions down or leave them
	// incomplete, but a single prefix-safety violation — or, under
	// crash-restart chaos, a single bad write outside every recovery
	// window — fails the run.
	code := 0
	if rep.Violations > 0 || rep.PostStabViolations > 0 {
		code = 1
	}
	return metrics.Finish("stpload", code, os.Stderr)
}

// runNode joins a distributed cluster as a client node (sender halves)
// and serves assignments until the master shuts the sweep down.
func runNode(master, name, dataHost string, verbose bool) int {
	if err := cliutil.HostPort("master", master); err != nil {
		fmt.Fprintln(os.Stderr, "stpload:", err)
		return 2
	}
	if name == "" {
		name = fmt.Sprintf("cli-%d", os.Getpid())
	}
	cfg := cluster.NodeConfig{
		Master: master, Role: cluster.RoleClient,
		Name: name, DataHost: dataHost,
	}
	if verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "stpload: "+format+"\n", args...)
		}
	}
	if err := cluster.RunNode(context.Background(), cfg); err != nil {
		fmt.Fprintln(os.Stderr, "stpload:", err)
		return 1
	}
	fmt.Printf("stpload: node %s done\n", name)
	return 0
}

// dropCause extracts the cause label from a
// wire_frames_dropped_total{cause="..."} counter name.
func dropCause(name string) string {
	if i := strings.Index(name, `cause="`); i >= 0 {
		rest := name[i+len(`cause="`):]
		if j := strings.IndexByte(rest, '"'); j >= 0 {
			return rest[:j]
		}
	}
	return name
}

// writeReport marshals rep to path ("-" = stdout).
func writeReport(path string, rep report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
