// Command stpmaster coordinates a distributed STP cluster sweep: it
// waits for a fleet of stpserve nodes (receiver halves) and stpload
// nodes (sender halves) to connect over the line-JSON control plane,
// then drives every sessions × rate × impairment cell of the evaluation
// grid across the fleet — each cell runs over fresh peer-addressed UDP
// sockets whose addresses the master exchanges — and writes the
// aggregated bench document (per-cell latency percentiles, throughput,
// violation and drop counts) as JSON.
//
// The exit contract mirrors the single-process tools: load may slow
// sessions down or leave them incomplete, but a single prefix-safety
// violation anywhere in the fleet fails the run.
//
// Usage:
//
//	stpmaster sweep -listen 127.0.0.1:7700 -servers 2 -clients 2 \
//	    -proto alpha -sessions 4,16 -rates 0,100 -impairs none,burst-drop \
//	    -report BENCH_cluster.json
//
// then on each node machine:
//
//	stpserve -master 127.0.0.1:7700 -node-name srv-a
//	stpload  -master 127.0.0.1:7700 -node-name cli-a
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"seqtx/internal/chanmodel"
	"seqtx/internal/cliutil"
	"seqtx/internal/cluster"
	"seqtx/internal/faults"
	"seqtx/internal/registry"
	"seqtx/internal/wire"
)

func main() {
	os.Exit(run())
}

func run() int {
	// "sweep" is the (only) subcommand; accept and shift it so the
	// documented invocation works, but don't require it.
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "sweep" {
		args = args[1:]
	}
	fs := flag.NewFlagSet("stpmaster", flag.ExitOnError)
	var (
		listen   = fs.String("listen", "127.0.0.1:7700", "control-plane listen address (host:port; :0 = kernel-assigned)")
		servers  = fs.Int("servers", 2, "stpserve nodes to wait for (must equal -clients)")
		clients  = fs.Int("clients", 2, "stpload nodes to wait for")
		proto    = fs.String("proto", "alpha", "protocol: "+strings.Join(registry.ProtocolNames(), "|"))
		m        = fs.Int("m", 8, "domain / sender-alphabet size parameter")
		items    = fs.Int("items", 6, "input items per session (repetition-free, so at most -m)")
		timeout  = fs.Int("timeout", 0, "hybrid timeout (ticks; 0 = protocol default)")
		window   = fs.Int("window", 4, "modseq sequence-number window")
		capBound = fs.Int("cap", 0, "channel-capacity bound c for the stab protocol (0 = its default)")
		sessions = fs.String("sessions", "8", "comma-separated sessions-per-cell axis, e.g. 4,16,64")
		rates    = fs.String("rates", "0", "comma-separated client session-start rates per second (0 = unpaced), e.g. 0,100")
		impairs  = fs.String("impairs", "none", "comma-separated impairment presets ("+strings.Join(wire.ImpairPresetNames(), "|")+") or channel-model specs ("+chanmodel.SpecSyntax+"; commas inside parentheses do not split)")
		chaos    = fs.String("crash-presets", "none", "comma-separated crash-restart preset axis (process-fault presets from "+strings.Join(faults.PresetNames(), "|")+"); cells run under wire.ServeSupervised, each node crashing its own half")
		restart  = fs.String("restart-policy", "preset", "chaos restart policy: preset|amnesia|scramble")
		cellTO   = fs.Duration("cell-timeout", 0, "per-cell node timeout: a node that misses it fails only that cell (its pair is dropped, the sweep continues); 0 = any node failure aborts the sweep")
		tick     = fs.Duration("tick", wire.DefaultTick, "per-process pacing tick")
		deadline = fs.Duration("deadline", 30*time.Second, "per-session deadline")
		seed     = fs.Int64("seed", 1, "base seed (cell c, session i derives from seed+c*stride+i)")
		engine   = fs.String("engine", "loop", "node-side session engine: loop|goroutine")
		assemble = fs.Duration("assemble-timeout", 60*time.Second, "how long to wait for the fleet to connect")
		reportTo = fs.String("report", "BENCH_cluster.json", "write the bench document to this file (\"-\" = stdout)")
		verbose  = fs.Bool("v", false, "log fleet assembly and per-cell progress")
	)
	fs.Parse(args)

	for _, check := range []error{
		cliutil.HostPort("listen", *listen),
		cliutil.Positive("servers", *servers),
		cliutil.Positive("clients", *clients),
		cliutil.Positive("m", *m),
		cliutil.Positive("items", *items),
		cliutil.NonNegative("timeout", *timeout),
	} {
		if check != nil {
			fmt.Fprintln(os.Stderr, "stpmaster:", check)
			return 2
		}
	}
	sessionsAxis, err := parseInts(*sessions)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stpmaster: -sessions: %v\n", err)
		return 2
	}
	ratesAxis, err := parseFloats(*rates)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stpmaster: -rates: %v\n", err)
		return 2
	}
	// Depth-aware split: model specs like k-del(k=2,n=16) carry commas.
	impairAxis := chanmodel.SplitSpecs(*impairs)
	for _, im := range impairAxis {
		if _, err := wire.ImpairSpec(im, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "stpmaster:", err)
			return 2
		}
	}
	if _, err := wire.ParseEngine(*engine); err != nil {
		fmt.Fprintln(os.Stderr, "stpmaster:", err)
		return 2
	}

	cfg := cluster.MasterConfig{
		Listen:  *listen,
		Servers: *servers,
		Clients: *clients,
		Sweep: cluster.SweepConfig{
			Proto: *proto, M: *m, Items: *items,
			Timeout: *timeout, Window: *window, Cap: *capBound,
			Sessions: sessionsAxis, Rates: ratesAxis, Impairs: impairAxis,
			CrashPresets: splitList(*chaos), RestartPolicy: *restart,
			Tick: *tick, Deadline: *deadline, Seed: *seed, Engine: *engine,
		},
		AssembleTimeout: *assemble,
		CellTimeout:     *cellTO,
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "stpmaster: "+format+"\n", args...)
		}
	}
	master, err := cluster.NewMaster(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stpmaster:", err)
		return 2
	}
	fmt.Printf("stpmaster: control plane on %s, waiting for %d servers + %d clients\n",
		master.Addr(), *servers, *clients)

	doc, err := master.Run(context.Background())
	if err != nil {
		fmt.Fprintln(os.Stderr, "stpmaster:", err)
		return 1
	}

	for _, cell := range doc.Cells {
		fmt.Printf("stpmaster: cell %v: complete=%d/%d violations=%d p50=%.1fms p99=%.1fms throughput=%.1f items/s foreign=%d\n",
			cell.Cell, cell.Completed, cell.Sessions, cell.Violations,
			cell.Latency.P50, cell.Latency.P99, cell.ThroughputItemsPerSec, cell.ForeignDrops)
		if cell.Cell.Chaos != "" {
			fmt.Printf("stpmaster:   chaos: incarnations=%d bad-writes=%d post-stab-violations=%d watchdogs=%d\n",
				cell.Incarnations, cell.BadWrites, cell.PostStabViolations, cell.WatchdogEscalations)
		}
		if cell.Err != "" {
			fmt.Printf("stpmaster:   cell failed: %s\n", cell.Err)
		}
	}
	fmt.Printf("stpmaster: sweep done: cells=%d (%d failed) sessions=%d complete=%d safety violations %d\n",
		len(doc.Cells), doc.FailedCells, doc.TotalSessions, doc.TotalCompleted, doc.TotalViolations)

	if *reportTo != "" {
		if err := writeDoc(*reportTo, doc); err != nil {
			fmt.Fprintln(os.Stderr, "stpmaster:", err)
			return 1
		}
	}
	if doc.TotalViolations > 0 {
		return 1
	}
	return 0
}

// splitList splits a comma-separated flag, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", f, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty axis")
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range splitList(s) {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", f, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty axis")
	}
	return out, nil
}

// writeDoc marshals the bench document to path ("-" = stdout).
func writeDoc(path string, doc *cluster.BenchDoc) error {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
