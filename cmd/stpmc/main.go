// Command stpmc model-checks STP protocols: exhaustive safety
// exploration, product refutation (the executable impossibility proof),
// and boundedness verdicts.
//
// Usage:
//
//	stpmc explore   -proto abp -m 2 -input 0,1 -channel reorder -depth 12
//	stpmc refute    -proto naive -m 2 -x1 0,1 -x2 0,1,0 -channel dup
//	stpmc bounded   -proto hybrid -m 2 -input 0,1,0,1 -channel del -budget 60
//	stpmc stabilize -proto stab -m 3 -cap 2 -input 2,0,1 -channel bounded
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"seqtx/internal/cliutil"
	"seqtx/internal/mc"
	"seqtx/internal/protocol/hybrid"
	"seqtx/internal/registry"
	"seqtx/internal/sim"
	"seqtx/internal/trace"
)

func main() {
	os.Exit(run())
}

func run() int {
	if len(os.Args) < 2 {
		usage()
		return 2
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	var metricsFlags cliutil.Metrics
	var (
		proto    = fs.String("proto", "alpha", "protocol: "+strings.Join(registry.ProtocolNames(), "|"))
		m        = fs.Int("m", 2, "domain size parameter")
		timeout  = fs.Int("timeout", hybrid.DefaultTimeout, "hybrid timeout")
		window   = fs.Int("window", 4, "modseq sequence-number window")
		input    = fs.String("input", "0,1", "input sequence (explore/bounded)")
		x1s      = fs.String("x1", "0,1", "first input (refute)")
		x2s      = fs.String("x2", "0,1,0", "second input (refute)")
		kindName = fs.String("channel", "dup", "channel: "+strings.Join(registry.KindNames(), "|"))
		depth    = fs.Int("depth", 12, "exploration depth")
		states   = fs.Int("states", 1<<17, "state cap")
		budget   = fs.Int("budget", 40, "recovery budget (bounded)")
		weak     = fs.Bool("weak", false, "weak boundedness (old messages allowed)")
		workers  = fs.Int("workers", 0, "BFS worker goroutines (0 = GOMAXPROCS, 1 = sequential; results are identical)")
		faulty   = fs.Bool("faulty", true, "sample points from a one-loss run (bounded)")
		outFile  = fs.String("o", "", "write the counterexample run as JSON (explore/stabilize; replay with stpsim -replay)")
		capBound = fs.Int("cap", 2, "channel-capacity bound assumed by stabilizing protocols")
		scramble = fs.Int("scrambles", 24, "scrambled (S,R) root pairs (stabilize)")
		junk     = fs.Int("junk", 4, "seeded channel fillings per scramble pair (stabilize)")
		seed     = fs.Int64("seed", 1, "root-corruption seed (stabilize)")
	)
	metricsFlags.AddFlags(fs)
	if err := fs.Parse(os.Args[2:]); err != nil {
		return 2
	}
	for _, check := range []error{
		cliutil.NonNegative("m", *m),
		cliutil.NonNegative("workers", *workers),
		cliutil.NonNegative("budget", *budget),
		cliutil.Positive("depth", *depth),
		cliutil.Positive("states", *states),
		cliutil.Positive("cap", *capBound),
		cliutil.Positive("scrambles", *scramble),
		cliutil.Positive("junk", *junk),
	} {
		if check != nil {
			fmt.Fprintln(os.Stderr, "stpmc:", check)
			return 2
		}
	}
	reg := metricsFlags.Registry()
	// emitMetrics writes the snapshot (no-op without -metrics) and turns a
	// write failure into a usage-style exit without masking the verdict.
	emitMetrics := func(code int) int {
		return metricsFlags.Finish("stpmc", code, os.Stderr)
	}
	spec, err := registry.Protocol(*proto, registry.Params{M: *m, Timeout: *timeout, Window: *window, Cap: *capBound})
	if err != nil {
		fmt.Fprintln(os.Stderr, "stpmc:", err)
		return 2
	}
	kind, err := registry.Kind(*kindName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stpmc:", err)
		return 2
	}

	switch cmd {
	case "explore":
		x, perr := cliutil.ParseSeq(*input)
		if perr != nil {
			fmt.Fprintln(os.Stderr, "stpmc:", perr)
			return 2
		}
		res, eerr := mc.Explore(spec, x, kind, mc.ExploreConfig{
			MaxDepth: *depth, MaxStates: *states,
			EngineConfig: mc.EngineConfig{Workers: *workers, Obs: reg},
		})
		if eerr != nil {
			fmt.Fprintln(os.Stderr, "stpmc:", eerr)
			return emitMetrics(1)
		}
		fmt.Printf("explored %d states to depth %d (truncated %v)\n", res.States, res.Depth, res.Truncated)
		if res.Violation != nil {
			fmt.Printf("SAFETY VIOLATION:\n%s", res.Violation)
			if *outFile != "" {
				if werr := writeWitness(*outFile, spec.Name, res.Violation); werr != nil {
					fmt.Fprintln(os.Stderr, "stpmc:", werr)
					return emitMetrics(1)
				}
				fmt.Printf("witness written to %s\n", *outFile)
			}
			return emitMetrics(1)
		}
		fmt.Println("safety holds in every explored state")
		return emitMetrics(0)

	case "refute":
		x1, e1 := cliutil.ParseSeq(*x1s)
		x2, e2 := cliutil.ParseSeq(*x2s)
		if e1 != nil || e2 != nil {
			fmt.Fprintln(os.Stderr, "stpmc: bad inputs:", e1, e2)
			return 2
		}
		res, rerr := mc.Refute(spec, x1, x2, kind, mc.ExploreConfig{
			MaxDepth: *depth, MaxStates: *states,
			EngineConfig: mc.EngineConfig{Workers: *workers, Obs: reg},
		})
		if rerr != nil {
			fmt.Fprintln(os.Stderr, "stpmc:", rerr)
			return emitMetrics(1)
		}
		fmt.Printf("explored %d product states (truncated %v)\n", res.States, res.Truncated)
		if res.Violation == nil {
			fmt.Println("no receiver-indistinguishable counterexample within bounds")
			return emitMetrics(0)
		}
		fmt.Printf("COUNTEREXAMPLE (the paper's Lemma 1/3 adversary):\n%s", res.Violation)
		return emitMetrics(1)

	case "bounded":
		x, perr := cliutil.ParseSeq(*input)
		if perr != nil {
			fmt.Fprintln(os.Stderr, "stpmc:", perr)
			return 2
		}
		cfg := mc.BoundedConfig{
			Budget: *budget, OldMessagesAllowed: *weak,
			EngineConfig: mc.EngineConfig{Workers: *workers, Obs: reg},
		}
		if *faulty && !*weak {
			cfg.Sampler = sim.NewBudgetDropper(1, 1)
		}
		rep, berr := mc.CheckBounded(spec, x, kind, cfg)
		if berr != nil {
			fmt.Fprintln(os.Stderr, "stpmc:", berr)
			return emitMetrics(1)
		}
		variant := "Definition 2 (fresh messages only)"
		if *weak {
			variant = "weak (§5; old messages allowed, t_i points)"
		}
		fmt.Printf("variant     %s\nsamples     %d\nmax recovery %d steps\nunrecovered %d\nbounded     %v\n",
			variant, rep.Samples, rep.MaxRecovery, rep.Unrecovered, rep.Bounded())
		return emitMetrics(0)

	case "stabilize":
		x, perr := cliutil.ParseSeq(*input)
		if perr != nil {
			fmt.Fprintln(os.Stderr, "stpmc:", perr)
			return 2
		}
		// Stabilization proofs need the frontier to DRAIN, not merely to
		// be sampled: unless -depth was given explicitly, use the mode's
		// own exhaustive default instead of explore's shallow one.
		sdepth := *depth
		depthSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "depth" {
				depthSet = true
			}
		})
		if !depthSet {
			sdepth = 512
		}
		res, serr := mc.CheckStabilize(spec, x, kind, mc.StabilizeConfig{
			MaxDepth: sdepth, MaxStates: *states,
			Scrambles: *scramble, ChannelJunk: *junk, Seed: *seed,
			EngineConfig: mc.EngineConfig{Workers: *workers, Obs: reg},
		})
		if serr != nil {
			fmt.Fprintln(os.Stderr, "stpmc:", serr)
			return emitMetrics(1)
		}
		claims := "claims self-stabilization"
		if !registry.Stabilizing(*proto) {
			claims = "makes no stabilization claim"
		}
		fmt.Printf("corrupted roots %d (%s)\n", res.Roots, claims)
		fmt.Printf("explored %d quotient states to depth %d (exhausted %v, truncated %v)\n",
			res.States, res.Depth, res.Exhausted, res.Truncated)
		fmt.Printf("bad-write edges %d, worst stabilization depth %d, converging roots %d/%d\n",
			res.BadWrites, res.LastBadDepth, res.ConvergedRoots, res.Roots)
		if res.Refuted {
			fmt.Printf("REFUTED: does not stabilize (root scramble=%d junk=%d, cycle %d steps):\n%s",
				res.WitnessRootScramble, res.WitnessRootJunk, res.WitnessCycleLen, res.Witness)
			if *outFile != "" {
				if werr := writeWitness(*outFile, spec.Name, res.Witness); werr != nil {
					fmt.Fprintln(os.Stderr, "stpmc:", werr)
					return emitMetrics(1)
				}
				fmt.Printf("witness written to %s\n", *outFile)
			}
			return emitMetrics(1)
		}
		if res.Stabilizes() {
			fmt.Println("PROVEN: every explored corrupted start admits only finitely many bad writes")
			return emitMetrics(0)
		}
		fmt.Println("inconclusive: bounds truncated the graph before a proof or refutation")
		return emitMetrics(1)

	default:
		usage()
		return 2
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: stpmc <explore|refute|bounded|stabilize> [flags]; run 'stpmc explore -h' etc.")
}

// writeWitness saves the counterexample's input and action schedule as a
// JSON trace that stpsim -replay can re-run.
func writeWitness(path, name string, w *mc.Witness) error {
	tr := &trace.Trace{Name: name, Input: w.Input}
	for i, act := range w.Actions {
		tr.Append(trace.Entry{Time: i, Act: act})
	}
	data, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
