// Command stpserve runs STP protocols as live communicating processes:
// N concurrent sender/receiver sessions multiplexed over an in-process or
// UDP-loopback transport, with optional link impairments replayed from
// the shared fault presets. It exits 0 iff no session violated safety
// (and, with -require-complete, every session finished its tape).
//
// With -crash-preset, sessions run under crash-restart supervision:
// endpoint processes are killed at the preset's scheduled ticks and
// restarted with amnesia or into scrambled state per -restart-policy;
// the run then fails on any post-stabilization violation (a bad write
// outside every recovery window) instead of strict prefix safety.
//
// Usage:
//
//	stpserve -transport inproc -sessions 64 -impair burst-drop
//	stpserve -transport udp -sessions 8 -duration 10s
//	stpserve -transport det -impair dup-replay -seed 7   # sim cross-check
//	stpserve -proto stab -crash-preset crash-scramble-both -v
//
// With -master, stpserve instead joins a distributed cluster as a
// server node: it runs the receiver halves of the sessions an stpmaster
// coordinator assigns it, over peer-addressed UDP toward a remote
// stpload client node. Every session flag is then ignored — the
// assignment carries the configuration.
//
//	stpserve -master 127.0.0.1:7700 -node-name srv-a -data-host 10.0.0.5
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"seqtx/internal/chanmodel"
	"seqtx/internal/channel"
	"seqtx/internal/cliutil"
	"seqtx/internal/cluster"
	"seqtx/internal/faults"
	"seqtx/internal/obs"
	"seqtx/internal/protocol"
	"seqtx/internal/protocol/hybrid"
	"seqtx/internal/registry"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
	"seqtx/internal/wire"
)

func main() {
	os.Exit(run())
}

func run() int {
	var metrics cliutil.Metrics
	var (
		proto     = flag.String("proto", "alpha", "protocol: "+strings.Join(registry.ProtocolNames(), "|"))
		m         = flag.Int("m", 8, "domain / sender-alphabet size parameter")
		timeout   = flag.Int("timeout", hybrid.DefaultTimeout, "hybrid timeout (ticks)")
		window    = flag.Int("window", 4, "modseq sequence-number window")
		sessions  = flag.Int("sessions", 8, "number of concurrent sessions")
		items     = flag.Int("items", 6, "input items per session (repetition-free, so at most -m)")
		transport = flag.String("transport", "inproc", "transport: inproc|udp|det")
		engineStr = flag.String("engine", "loop", "session engine for live transports: loop|goroutine")
		inboxSize = flag.Int("inbox", 0, "per-session inbox capacity (0 = wire default)")
		evSample  = flag.Uint64("event-sample", 1, "emit lifecycle events for every Nth session id (1 = every session)")
		impair    = flag.String("impair", "none", "impairment preset ("+strings.Join(wire.ImpairPresetNames(), "|")+") or channel-model spec ("+chanmodel.SpecSyntax+")")
		crashPre  = flag.String("crash-preset", "none", "crash-restart chaos preset (e.g. crash-scramble-both); runs sessions supervised")
		restart   = flag.String("restart-policy", "preset", "restart state for crashed processes: preset|amnesia|scramble")
		capBound  = flag.Int("cap", 0, "channel-capacity bound c for the stab protocol (0 = its default)")
		seed      = flag.Int64("seed", 1, "base seed (session i uses seed+i)")
		tick      = flag.Duration("tick", wire.DefaultTick, "per-process pacing tick")
		duration  = flag.Duration("duration", 0, "overall wall-clock cap (0 = until sessions settle)")
		deadline  = flag.Duration("deadline", 30*time.Second, "per-session deadline (0 = none)")
		require   = flag.Bool("require-complete", false, "also fail if any session did not finish its tape")
		verbose   = flag.Bool("v", false, "print one line per session")

		master   = flag.String("master", "", "join a cluster as a server node: stpmaster control address (host:port); session flags then come from the assignment")
		nodeName = flag.String("node-name", "", "cluster node name (default srv-<pid>)")
		dataHost = flag.String("data-host", "", "host/IP the data-plane UDP sockets bind on (default 127.0.0.1; on a real fleet, the interface the peer can reach)")
	)
	metrics.AddFlags(flag.CommandLine)
	flag.Parse()

	if *master != "" {
		return runNode(*master, *nodeName, *dataHost, *verbose)
	}

	for _, check := range []error{
		cliutil.Positive("sessions", *sessions),
		cliutil.Positive("items", *items),
		cliutil.Positive("m", *m),
		cliutil.NonNegative("timeout", *timeout),
	} {
		if check != nil {
			fmt.Fprintln(os.Stderr, "stpserve:", check)
			return 2
		}
	}
	if *tick <= 0 {
		fmt.Fprintf(os.Stderr, "stpserve: -tick must be > 0, got %v\n", *tick)
		return 2
	}
	if *duration < 0 || *deadline < 0 {
		fmt.Fprintln(os.Stderr, "stpserve: -duration and -deadline must be >= 0")
		return 2
	}
	if *items > *m {
		fmt.Fprintf(os.Stderr, "stpserve: -items %d exceeds -m %d (inputs are repetition-free); raise -m\n", *items, *m)
		return 2
	}

	params := registry.Params{M: *m, Timeout: *timeout, Window: *window, Seed: *seed, Cap: *capBound}
	opts, err := wire.ImpairSpec(*impair, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stpserve:", err)
		return 2
	}
	engine, err := wire.ParseEngine(*engineStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stpserve:", err)
		return 2
	}
	if *inboxSize < 0 {
		fmt.Fprintln(os.Stderr, "stpserve: -inbox must be >= 0")
		return 2
	}

	var chaos *chaosPlan
	if *crashPre != "" && *crashPre != "none" {
		spec, err := faults.PresetSpec(*crashPre)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stpserve:", err)
			return 2
		}
		if len(spec.Crashes) == 0 {
			fmt.Fprintf(os.Stderr, "stpserve: preset %q schedules no process crashes; link impairments go via -impair\n", *crashPre)
			return 2
		}
		policy, err := wire.ParseRestartPolicy(*restart)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stpserve:", err)
			return 2
		}
		if *transport == "det" {
			fmt.Fprintln(os.Stderr, "stpserve: -crash-preset needs a live transport (inproc or udp); the det runner replays crash plans via the sim")
			return 2
		}
		chaos = &chaosPlan{preset: *crashPre, crashes: spec.Crashes, policy: policy, seed: *seed}
	}

	inputs := make([]seq.Seq, *sessions)
	src := rand.NewSource(0)
	rng := rand.New(src)
	for i := range inputs {
		src.Seed(*seed + int64(i))
		x, err := seq.RandomRepetitionFree(rng, *m, *items)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stpserve:", err)
			return 2
		}
		inputs[i] = x
	}

	var code int
	switch *transport {
	case "det":
		code = runDet(*proto, params, inputs, *seed, opts, *verbose)
	case "inproc", "udp":
		code = runLive(*transport, *proto, params, inputs, opts, chaos, metrics.Registry(),
			liveOptions{engine: engine, inboxSize: *inboxSize, eventSampleEvery: *evSample},
			*tick, *duration, *deadline, *require, *verbose)
	default:
		fmt.Fprintf(os.Stderr, "stpserve: unknown transport %q (have det, inproc, udp)\n", *transport)
		return 2
	}
	return metrics.Finish("stpserve", code, os.Stderr)
}

// runNode joins a distributed cluster as a server node (receiver
// halves) and serves assignments until the master shuts the sweep down.
func runNode(master, name, dataHost string, verbose bool) int {
	if err := cliutil.HostPort("master", master); err != nil {
		fmt.Fprintln(os.Stderr, "stpserve:", err)
		return 2
	}
	if name == "" {
		name = fmt.Sprintf("srv-%d", os.Getpid())
	}
	cfg := cluster.NodeConfig{
		Master: master, Role: cluster.RoleServer,
		Name: name, DataHost: dataHost,
	}
	if verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "stpserve: "+format+"\n", args...)
		}
	}
	if err := cluster.RunNode(context.Background(), cfg); err != nil {
		fmt.Fprintln(os.Stderr, "stpserve:", err)
		return 1
	}
	fmt.Printf("stpserve: node %s done\n", name)
	return 0
}

// liveOptions carries the engine-selection flags into runLive.
type liveOptions struct {
	engine           wire.Engine
	inboxSize        int
	eventSampleEvery uint64
}

// chaosPlan carries the resolved -crash-preset schedule into runLive.
type chaosPlan struct {
	preset  string
	crashes []faults.CrashPoint
	policy  wire.RestartPolicy
	seed    int64
}

// runLive drives the sessions over a real transport; with a chaos plan
// they run supervised, crash-restarted per the plan's schedule.
func runLive(transport, proto string, params registry.Params, inputs []seq.Seq,
	opts wire.Options, chaos *chaosPlan, reg *obs.Registry, live liveOptions,
	tick, duration, deadline time.Duration, require, verbose bool) int {

	var (
		tr  wire.Transport
		err error
	)
	switch transport {
	case "udp":
		tr, err = wire.NewUDP(reg)
	default:
		tr = wire.NewInproc(0, reg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "stpserve:", err)
		return 1
	}
	if tr, err = wire.NewImpairment(tr, opts, reg); err != nil {
		fmt.Fprintln(os.Stderr, "stpserve:", err)
		return 1
	}

	cfgs := make([]wire.SessionConfig, len(inputs))
	for i, x := range inputs {
		s, r, err := registry.Pair(proto, params, x)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stpserve:", err)
			return 2
		}
		cfgs[i] = wire.SessionConfig{
			ID:        uint64(i + 1),
			Sender:    s,
			Receiver:  r,
			Input:     x,
			Tick:      tick,
			Deadline:  deadline,
			InboxSize: live.inboxSize,
		}
	}

	ctx := context.Background()
	if duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, duration)
		defer cancel()
	}
	if chaos != nil {
		return runSupervised(ctx, tr, cfgs, proto, params, inputs, chaos, reg, live, require, verbose)
	}
	reports, err := wire.Serve(ctx, wire.ServeConfig{
		Transport: tr, Sessions: cfgs, Obs: reg,
		Engine: live.engine, EventSampleEvery: live.eventSampleEvery,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "stpserve:", err)
		return 1
	}

	complete, violations := 0, 0
	for _, rep := range reports {
		if rep.Complete {
			complete++
		}
		if rep.SafetyViolation != nil {
			violations++
			fmt.Fprintln(os.Stderr, "stpserve:", rep.SafetyViolation)
		}
		if verbose {
			fmt.Printf("session %3d: complete=%-5v items=%d/%d frames=%d acks=%d retransmits=%d elapsed=%v goodput=%.1f items/s\n",
				rep.ID, rep.Complete, len(rep.Output), len(rep.Input),
				rep.FramesTx, rep.AcksTx, rep.Retransmits,
				rep.Elapsed.Round(time.Millisecond), rep.GoodputItemsPerSec)
		}
	}
	fmt.Printf("stpserve: transport=%s engine=%s proto=%s sessions=%d complete=%d safety violations %d\n",
		tr.Name(), live.engine, proto, len(reports), complete, violations)
	if violations > 0 {
		return 1
	}
	if require && complete != len(reports) {
		fmt.Fprintf(os.Stderr, "stpserve: -require-complete: %d of %d sessions incomplete\n",
			len(reports)-complete, len(reports))
		return 1
	}
	return 0
}

// runSupervised runs the fleet under crash-restart supervision and
// reports chaos outcomes: incarnations, stabilization episodes, and —
// the failure signal — bad writes outside every recovery window.
func runSupervised(ctx context.Context, tr wire.Transport, cfgs []wire.SessionConfig,
	proto string, params registry.Params, inputs []seq.Seq, chaos *chaosPlan,
	reg *obs.Registry, live liveOptions, require, verbose bool) int {

	reports, err := wire.ServeSupervised(ctx, wire.ChaosServeConfig{
		ServeConfig: wire.ServeConfig{
			Transport: tr, Sessions: cfgs, Obs: reg,
			Engine: live.engine, EventSampleEvery: live.eventSampleEvery,
		},
		Chaos: wire.ChaosConfig{
			Crashes: chaos.crashes,
			Policy:  chaos.policy,
			Seed:    chaos.seed,
		},
		Rebuild: func(i int) (protocol.Sender, protocol.Receiver, error) {
			return registry.Pair(proto, params, inputs[i])
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "stpserve:", err)
		return 1
	}

	complete, incarnations, crashes, postStab := 0, 0, 0, 0
	for _, rep := range reports {
		if rep.Complete {
			complete++
		}
		incarnations += len(rep.Incarnations)
		for _, ic := range rep.Incarnations {
			if ic.Ended == "crash" {
				crashes++
			}
		}
		postStab += rep.PostStabViolations
		if rep.PostStabViolations > 0 {
			fmt.Fprintf(os.Stderr, "stpserve: session %d: %d post-stabilization violations\n",
				rep.ID, rep.PostStabViolations)
		}
		if verbose {
			var worst time.Duration
			for _, t := range rep.StabilizeTimes {
				if t > worst {
					worst = t
				}
			}
			fmt.Printf("session %3d: complete=%-5v incarnations=%d crashes+watchdogs=%d bad_writes=%d post_stab=%d worst_stabilize=%v digest=%016x\n",
				rep.ID, rep.Complete, len(rep.Incarnations),
				len(rep.Incarnations)-1, rep.BadWrites, rep.PostStabViolations,
				worst.Round(time.Millisecond), rep.CrashScheduleDigest)
		}
	}
	fmt.Printf("stpserve: transport=%s proto=%s chaos=%s policy=%s sessions=%d complete=%d incarnations=%d crashes=%d post-stabilization violations %d\n",
		tr.Name(), proto, chaos.preset, chaos.policy, len(reports), complete, incarnations, crashes, postStab)
	if postStab > 0 {
		return 1
	}
	if require && complete != len(reports) {
		fmt.Fprintf(os.Stderr, "stpserve: -require-complete: %d of %d sessions incomplete\n",
			len(reports)-complete, len(reports))
		return 1
	}
	return 0
}

// runDet runs each session through the deterministic single-goroutine
// wire runner and cross-checks the recorded schedule against the
// lock-step simulator on a dup link: the two output tapes must agree
// byte for byte.
func runDet(proto string, params registry.Params, inputs []seq.Seq, seed int64,
	opts wire.Options, verbose bool) int {

	violations, mismatches := 0, 0
	for i, x := range inputs {
		s, r, err := registry.Pair(proto, params, x)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stpserve:", err)
			return 2
		}
		res, err := wire.DetRun(wire.DetConfig{
			Sender:    s,
			Receiver:  r,
			Input:     x,
			Seed:      seed + int64(i),
			DupEveryN: opts.DupEveryN,
			SessionID: uint64(i + 1),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "stpserve:", err)
			return 1
		}
		if res.SafetyViolation != nil {
			violations++
			fmt.Fprintln(os.Stderr, "stpserve:", res.SafetyViolation)
		}

		spec, err := registry.Protocol(proto, params)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stpserve:", err)
			return 2
		}
		link, err := channel.NewLinkOfKind(channel.KindDup)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stpserve:", err)
			return 1
		}
		w, err := sim.New(spec, x, link)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stpserve:", err)
			return 1
		}
		simRes, err := sim.Run(w, sim.NewScripted(res.Script, sim.NewRoundRobin()),
			sim.Config{MaxSteps: len(res.Script), StopWhenComplete: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, "stpserve: sim replay:", err)
			return 1
		}
		match := simRes.Output.Equal(res.Output)
		if !match {
			mismatches++
			fmt.Fprintf(os.Stderr, "stpserve: session %d: wire output %s != sim output %s\n",
				i+1, res.Output, simRes.Output)
		}
		if verbose {
			fmt.Printf("session %3d: complete=%-5v steps=%d frames=%d acks=%d sim-match=%v\n",
				i+1, res.Complete, res.Steps, res.FramesTx, res.AcksTx, match)
		}
	}
	fmt.Printf("stpserve: transport=det proto=%s sessions=%d sim-mismatches=%d safety violations %d\n",
		proto, len(inputs), mismatches, violations)
	if violations > 0 || mismatches > 0 {
		return 1
	}
	return 0
}
