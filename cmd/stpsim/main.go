// Command stpsim runs one STP protocol on one channel under one
// adversary and prints the trace and verdicts.
//
// Usage:
//
//	stpsim -proto alpha -m 4 -input 2,0,3,1 -channel dup -adversary replayer
//	stpsim -proto hybrid -input 0,1,0,1 -channel del -adversary dropper -trace
//	stpsim -proto abp -input 0,1 -channel reorder -adversary random -seed 3
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"seqtx/internal/channel"
	"seqtx/internal/cliutil"
	"seqtx/internal/protocol/hybrid"
	"seqtx/internal/registry"
	"seqtx/internal/sim"
	"seqtx/internal/trace"
)

func main() {
	os.Exit(run())
}

func run() int {
	var metrics cliutil.Metrics
	var (
		proto     = flag.String("proto", "alpha", "protocol: "+strings.Join(registry.ProtocolNames(), "|"))
		m         = flag.Int("m", 4, "domain / sender-alphabet size parameter")
		timeout   = flag.Int("timeout", hybrid.DefaultTimeout, "hybrid timeout (ticks)")
		window    = flag.Int("window", 4, "modseq sequence-number window")
		input     = flag.String("input", "0,1", "comma-separated data items")
		kindName  = flag.String("channel", "dup", "channel: "+strings.Join(registry.KindNames(), "|"))
		advName   = flag.String("adversary", "roundrobin", "adversary: "+strings.Join(registry.AdversaryNames(), "|"))
		seed      = flag.Int64("seed", 1, "adversary seed")
		budget    = flag.Int("budget", 2, "dropper budget / replayer period / withholder hold")
		maxSteps  = flag.Int("max-steps", 5000, "step bound")
		showTrace = flag.Bool("trace", false, "print the full trace")
		replay    = flag.String("replay", "", "JSON witness file (from stpmc -o): replay its schedule, then round-robin")
	)
	metrics.AddFlags(flag.CommandLine)
	flag.Parse()

	for _, check := range []error{
		cliutil.NonNegative("m", *m),
		cliutil.NonNegative("budget", *budget),
		cliutil.Positive("max-steps", *maxSteps),
	} {
		if check != nil {
			fmt.Fprintln(os.Stderr, "stpsim:", check)
			return 2
		}
	}

	x, err := cliutil.ParseSeq(*input)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stpsim:", err)
		return 2
	}
	params := registry.Params{M: *m, Timeout: *timeout, Window: *window, Seed: *seed, Budget: *budget}
	spec, err := registry.Protocol(*proto, params)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stpsim:", err)
		return 2
	}
	kind, err := registry.Kind(*kindName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stpsim:", err)
		return 2
	}
	adv, err := registry.Adversary(*advName, params)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stpsim:", err)
		return 2
	}
	replaySteps := 0
	if *replay != "" {
		data, rerr := os.ReadFile(*replay)
		if rerr != nil {
			fmt.Fprintln(os.Stderr, "stpsim:", rerr)
			return 2
		}
		var tr trace.Trace
		if jerr := json.Unmarshal(data, &tr); jerr != nil {
			fmt.Fprintln(os.Stderr, "stpsim:", jerr)
			return 2
		}
		if len(tr.Input) > 0 {
			x = tr.Input
		}
		adv = sim.NewScripted(tr.Actions(), sim.NewRoundRobin())
		replaySteps = tr.Len()
	}

	link, err := channel.NewLinkOfKind(kind)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stpsim:", err)
		return 1
	}
	w, err := sim.New(spec, x, link)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stpsim:", err)
		return 1
	}
	if *showTrace {
		w.StartTrace()
	}
	cfg := sim.Config{MaxSteps: *maxSteps, StopWhenComplete: true, Obs: metrics.Registry()}
	if *replay != "" {
		// Replay the whole witness schedule: the violating action is often
		// the very last one, after the output already looks complete.
		cfg.StopWhenComplete = false
		if n := replaySteps; n > 0 && n < cfg.MaxSteps {
			cfg.MaxSteps = n
		}
	}
	res, err := sim.Run(w, adv, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stpsim:", err)
		return 1
	}
	if code := metrics.Finish("stpsim", 0, os.Stderr); code != 0 {
		return code
	}
	if *showTrace {
		fmt.Print(w.Trace)
	}
	fmt.Printf("protocol   %s\nchannel    %s\nadversary  %s\n", spec.Name, kind, adv.Name())
	fmt.Printf("input X    %s\noutput Y   %s\n", x, res.Output)
	fmt.Printf("steps      %d\ncomplete   %v\nquiescent  %v\n", res.Steps, res.OutputComplete, res.Quiescent)
	if res.SafetyViolation != nil {
		fmt.Printf("SAFETY VIOLATION: %v\n", res.SafetyViolation)
		return 1
	}
	fmt.Println("safety     ok (Y is a prefix of X throughout)")
	if len(res.LearnTimes) > 0 {
		parts := make([]string, len(res.LearnTimes))
		for i, t := range res.LearnTimes {
			parts[i] = fmt.Sprint(t)
		}
		fmt.Printf("t_i        %s\n", strings.Join(parts, " "))
	}
	return 0
}
