// Command stpsoak runs a fault-injection soak campaign: the protocol zoo
// × channel kinds × adversaries × fault plans matrix, every run seeded,
// watchdogged, and audited, with safety counterexamples shrunk to
// minimal replayable traces. The report is a JSON artifact.
//
// Usage:
//
//	stpsoak                          # the full standard campaign
//	stpsoak -campaign smoke          # the small CI campaign
//	stpsoak -seed 7 -runs 3 -o report.json
//	stpsoak -budget 30s              # stop scheduling new cases after 30s
//
// The exit status is 0 when the campaign met its expectations (every
// cell that promised to survive did), 1 when any unexpected violation
// surfaced, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"seqtx/internal/cliutil"
	"seqtx/internal/obs"
	"seqtx/internal/soak"
)

func main() {
	os.Exit(run())
}

func run() int {
	var metrics cliutil.Metrics
	var (
		campaign  = flag.String("campaign", "standard", "campaign: standard|smoke")
		seed      = flag.Int64("seed", 1, "base seed (run r of a cell uses seed+r)")
		runs      = flag.Int("runs", 1, "seeded runs per matrix cell")
		maxSteps  = flag.Int("max-steps", 0, "per-run step bound (0 = campaign default)")
		deadline  = flag.Int("deadline", 0, "progress-watchdog deadline in steps (0 = default)")
		wallClock = flag.Duration("run-timeout", 0, "per-run wall-clock budget (0 = default)")
		budget    = flag.Duration("budget", 0, "whole-campaign wall-clock budget: cases not started in time are dropped (0 = unlimited)")
		workers   = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		noShrink  = flag.Bool("no-shrink", false, "skip counterexample minimization")
		out       = flag.String("o", "", "write the JSON report to this file (default stdout)")
		quiet     = flag.Bool("q", false, "suppress the human summary on stderr")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for the campaign's duration")
	)
	metrics.AddFlags(flag.CommandLine)
	flag.Parse()

	for _, check := range []error{
		cliutil.Positive("runs", *runs),
		cliutil.NonNegative("max-steps", *maxSteps),
		cliutil.NonNegative("deadline", *deadline),
		cliutil.NonNegative("workers", *workers),
	} {
		if check != nil {
			fmt.Fprintln(os.Stderr, "stpsoak:", check)
			return 2
		}
	}

	if *pprofAddr != "" {
		addr, stop, err := obs.StartPprof(*pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stpsoak:", err)
			return 2
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "stpsoak: pprof listening on http://%s/debug/pprof/\n", addr)
	}

	var cmp *soak.Campaign
	switch *campaign {
	case "standard":
		cmp = soak.StandardCampaign(*seed, *runs)
	case "smoke":
		cmp = soak.SmokeCampaign(*seed)
	default:
		fmt.Fprintf(os.Stderr, "stpsoak: unknown campaign %q (have standard, smoke)\n", *campaign)
		return 2
	}
	if *maxSteps > 0 {
		cmp.Config.MaxSteps = *maxSteps
	}
	if *deadline > 0 {
		cmp.Config.ProgressDeadline = *deadline
	}
	if *wallClock > 0 {
		cmp.Config.MaxWallClock = *wallClock
	}
	if *workers > 0 {
		cmp.Config.Workers = *workers
	}
	cmp.Config.DisableShrink = *noShrink
	cmp.Config.Obs = metrics.Registry()
	snapshot := func(code int) int {
		return metrics.Finish("stpsoak", code, os.Stderr)
	}

	if *budget > 0 {
		// Trim the case list to what plausibly fits the budget: run the
		// campaign in slices and stop scheduling when time is up. Slicing
		// keeps the per-case results identical to an unbudgeted run (each
		// case is independently seeded), so a budgeted report is a prefix
		// of the full one.
		start := time.Now()
		all := cmp.Cases
		var runsOut []soak.RunReport
		const slice = 16
		for lo := 0; lo < len(all); lo += slice {
			if time.Since(start) > *budget {
				fmt.Fprintf(os.Stderr, "stpsoak: budget exhausted after %d/%d cases\n", lo, len(all))
				break
			}
			part := *cmp
			part.Cases = all[lo:min(lo+slice, len(all))]
			runsOut = append(runsOut, part.Run().Runs...)
		}
		cmp.Cases = all[:len(runsOut)]
		rep := &soak.Report{Campaign: cmp.Name, Runs: runsOut}
		return snapshot(emit(rep, *out, *quiet))
	}
	return snapshot(emit(cmp.Run(), *out, *quiet))
}

// emit finalizes, renders, and scores the report.
func emit(rep *soak.Report, outPath string, quiet bool) int {
	rep.Finalize()
	w := os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stpsoak:", err)
			return 2
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteJSON(w); err != nil {
		fmt.Fprintln(os.Stderr, "stpsoak:", err)
		return 2
	}
	if !quiet {
		s := rep.Summary
		fmt.Fprintf(os.Stderr,
			"stpsoak: %s campaign: %d runs — %d complete, %d expected violations (%d shrunk), %d unexpected, %d inconclusive\n",
			rep.Campaign, s.Total, s.Complete, s.ExpectedViolations, s.Shrunk, s.UnexpectedViolations, s.Inconclusive)
		for _, run := range rep.Unexpected() {
			fmt.Fprintf(os.Stderr, "stpsoak: UNEXPECTED %s: %s — %s\n", run.ID(), run.Violation, run.Error)
		}
	}
	if !rep.Ok() {
		return 1
	}
	return 0
}
