package seqtx_test

import (
	"fmt"

	"seqtx"
)

// ExampleTransmit moves a sequence with the paper's tight protocol over a
// reordering, duplicating channel.
func ExampleTransmit() {
	spec := seqtx.TightProtocol(4)
	res, err := seqtx.Transmit(spec, seqtx.Sequence(2, 0, 3, 1),
		seqtx.ChannelDup, seqtx.FairRoundRobin())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("output:", res.Output)
	fmt.Println("safe:", res.SafetyViolation == nil)
	// Output:
	// output: 2.0.3.1
	// safe: true
}

// ExampleAlpha prints the paper's tight bound for small alphabets.
func ExampleAlpha() {
	for m := 0; m <= 4; m++ {
		a, err := seqtx.Alpha(m)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("alpha(%d) = %d\n", m, a)
	}
	// Output:
	// alpha(0) = 1
	// alpha(1) = 2
	// alpha(2) = 5
	// alpha(3) = 16
	// alpha(4) = 65
}

// ExampleTightProtocol shows the alpha(m) wall: inputs with repeated
// items are outside the protocol's X.
func ExampleTightProtocol() {
	spec := seqtx.TightProtocol(3)
	_, err := spec.NewSender(seqtx.Sequence(1, 2, 1))
	fmt.Println("repeating input accepted:", err == nil)
	// Output:
	// repeating input accepted: false
}

// ExampleRefuteSafety replays Theorem 1 against a protocol that claims
// more than alpha(m) sequences.
func ExampleRefuteSafety() {
	naive, err := seqtx.NaiveProtocol(2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := seqtx.RefuteSafety(naive, seqtx.Sequence(0, 1), seqtx.Sequence(0, 1, 0),
		seqtx.ChannelDup, seqtx.ExploreConfig{MaxDepth: 12, MaxStates: 1 << 15})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("counterexample found:", res.Violation != nil)
	fmt.Println("violated input:", res.Violation.ViolatedInput)
	// Output:
	// counterexample found: true
	// violated input: 0.1
}

// ExampleCheckBounded evaluates the paper's Definition 2 on the tight
// protocol: constant recovery using only fresh messages.
func ExampleCheckBounded() {
	rep, err := seqtx.CheckBounded(seqtx.TightProtocol(3), seqtx.Sequence(1, 2, 0),
		seqtx.ChannelDel, seqtx.BoundedConfig{Budget: 12})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("bounded:", rep.Bounded())
	// Output:
	// bounded: true
}

// ExampleEncodedProtocol carries a repeating sequence by encoding the set
// X into repetition-free message strings (the paper's mu).
func ExampleEncodedProtocol() {
	x, err := seqtx.NewSeqSet(
		seqtx.Sequence(0, 0, 0),
		seqtx.Sequence(1, 1),
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	spec, err := seqtx.EncodedProtocol(x, 2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := seqtx.Transmit(spec, seqtx.Sequence(0, 0, 0), seqtx.ChannelDup, seqtx.FairRoundRobin())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("output:", res.Output)
	// Output:
	// output: 0.0.0
}
