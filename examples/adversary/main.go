// Adversary: watch Theorem 1 break a protocol. The naive protocol claims
// to carry every sequence — more than alpha(m) — so the paper says a
// duplicating, reordering channel must be able to fool the receiver. The
// product model checker plays that channel: it steers two runs with
// different inputs so the receiver's complete-history views stay equal,
// until the shared output is wrong for one of them.
package main

import (
	"fmt"
	"os"

	"seqtx"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "adversary:", err)
		os.Exit(1)
	}
}

func run() error {
	naive, err := seqtx.NaiveProtocol(2)
	if err != nil {
		return err
	}
	x1 := seqtx.Sequence(0, 1)
	x2 := seqtx.Sequence(0, 1, 0)
	fmt.Printf("naive protocol, inputs X1 = %s and X2 = %s (|X| exceeds alpha(2) = 5 overall)\n\n", x1, x2)

	res, err := seqtx.RefuteSafety(naive, x1, x2, seqtx.ChannelDup,
		seqtx.ExploreConfig{MaxDepth: 12, MaxStates: 1 << 16})
	if err != nil {
		return err
	}
	if res.Violation == nil {
		return fmt.Errorf("no violation found (explored %d product states)", res.States)
	}
	fmt.Printf("explored %d product states; counterexample found:\n\n%s\n", res.States, res.Violation)
	fmt.Println("Legend: L/R = environment action in run 1/run 2 only (invisible to R);")
	fmt.Println("        B = receiver-visible event applied to both runs in lockstep.")

	// Contrast: inside the alpha(m) budget the same search finds nothing.
	tight := seqtx.TightProtocol(2)
	ok, err := seqtx.RefuteSafety(tight, seqtx.Sequence(0, 1), seqtx.Sequence(1, 0),
		seqtx.ChannelDup, seqtx.ExploreConfig{MaxDepth: 10, MaxStates: 1 << 15})
	if err != nil {
		return err
	}
	fmt.Printf("\ntight protocol, X1 = 0.1 vs X2 = 1.0: violation == nil? %v (states %d)\n",
		ok.Violation == nil, ok.States)
	return nil
}
