// Boundedness: the §5 taxonomy, measured. Three protocols, three fates:
//
//   - the tight protocol is BOUNDED: from any point, a constant number of
//     fresh messages re-teaches the receiver the next item;
//   - the AFWZ-style protocol is UNBOUNDED outright: bar its single
//     in-flight copy and no extension makes progress at all;
//   - the hybrid is the paper's subtle case: WEAKLY bounded (from every
//     t_i point a short extension exists — using the in-flight message)
//     yet not bounded (fresh-only recovery must detour through the whole
//     remaining suffix).
package main

import (
	"fmt"
	"os"

	"seqtx"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "boundedness:", err)
		os.Exit(1)
	}
}

func run() error {
	type subject struct {
		name  string
		spec  seqtx.Spec
		kind  seqtx.ChannelKind
		input seqtx.Seq
	}
	subjects := []subject{
		{"tight (alpha)", seqtx.TightProtocol(8), seqtx.ChannelDel, seqtx.Sequence(3, 1, 4, 0, 5, 2)},
		{"afwz (reverse)", seqtx.AFWZProtocol(2), seqtx.ChannelDel, seqtx.Sequence(0, 1, 0, 1, 0, 1)},
		{"hybrid (§5)", seqtx.HybridProtocol(2, 4), seqtx.ChannelDel, seqtx.Sequence(0, 1, 0, 1, 0, 1)},
	}
	fmt.Println("protocol         weakly bounded (max recovery)   bounded per Definition 2")
	fmt.Println("---------------  ------------------------------  ------------------------")
	for _, s := range subjects {
		weak, err := seqtx.CheckBounded(s.spec, s.input, s.kind, seqtx.BoundedConfig{
			Budget:             60,
			OldMessagesAllowed: true,
		})
		if err != nil {
			return err
		}
		strict, err := seqtx.CheckBounded(s.spec, s.input, s.kind, seqtx.BoundedConfig{
			Budget:  60,
			Sampler: seqtx.Dropper(1, 1), // sample the points of a faulty run
		})
		if err != nil {
			return err
		}
		strictDesc := fmt.Sprintf("true (max %d fresh steps)", strict.MaxRecovery)
		if !strict.Bounded() {
			strictDesc = fmt.Sprintf("false (%d/%d points unrecoverable)", strict.Unrecovered, strict.Samples)
		}
		fmt.Printf("%-15s  %-30s  %s\n", s.name,
			fmt.Sprintf("%v (max %d steps)", weak.Bounded(), weak.MaxRecovery), strictDesc)
	}

	fmt.Println("\nwhy it matters (§5): a weakly bounded protocol can still 'never fully recover from")
	fmt.Println("faults' — inject one loss and watch the hybrid's next learning event recede with |X|:")
	for _, n := range []int{4, 8, 16, 32} {
		input := make(seqtx.Seq, n)
		for i := range input {
			input[i] = seqtx.Item(i % 2)
		}
		res, err := seqtx.Transmit(seqtx.HybridProtocol(2, 4), input, seqtx.ChannelDel, seqtx.Dropper(0, 1))
		if err != nil {
			return err
		}
		gap, prev := 0, 0
		for _, t := range res.LearnTimes {
			if t-prev > gap {
				gap = t - prev
			}
			prev = t
		}
		fmt.Printf("  n = %-3d  largest learning gap = %d steps\n", n, gap)
	}
	return nil
}
