// Datalink: the protocol lineage the paper's introduction situates STP in
// ([BSW69] alternating bit, sliding windows, [Ste76] Stenning), raced on
// the same lossy FIFO link — and then pushed across the boundary that the
// paper's theorems draw: the moment the channel may reorder, every
// finite-numbered scheme breaks, and the model checker shows the run that
// does it.
package main

import (
	"fmt"
	"os"

	"seqtx"
	"seqtx/internal/registry"
	"seqtx/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "datalink:", err)
		os.Exit(1)
	}
}

func run() error {
	input := make(seqtx.Seq, 16)
	for i := range input {
		input[i] = seqtx.Item(i % 2)
	}
	protos := []struct {
		name   string
		params registry.Params
	}{
		{"abp", registry.Params{M: 2}},
		{"gobackn", registry.Params{M: 2, Window: 4}},
		{"selrepeat", registry.Params{M: 2, Window: 4}},
		{"stenning", registry.Params{M: 2}},
	}

	fmt.Printf("racing the data-link family: %d items over a lossy, duplicating FIFO\n\n", len(input))
	fmt.Println("protocol          steps/item (mean over 20 seeds, 3 losses each)")
	fmt.Println("---------------   ---------------------------------------------")
	for _, p := range protos {
		spec, err := registry.Protocol(p.name, p.params)
		if err != nil {
			return err
		}
		var perItem []float64
		for seed := int64(0); seed < 20; seed++ {
			res, err := seqtx.Transmit(spec, input, seqtx.ChannelFIFO, seqtx.Dropper(seed, 3))
			if err != nil {
				return err
			}
			if res.SafetyViolation != nil || !res.OutputComplete {
				return fmt.Errorf("%s failed on FIFO: complete=%v violation=%v",
					spec.Name, res.OutputComplete, res.SafetyViolation)
			}
			perItem = append(perItem, float64(res.Steps)/float64(len(input)))
		}
		s := stats.Summarize(perItem)
		bar := ""
		for i := 0.0; i < s.Mean*4; i++ {
			bar += "#"
		}
		fmt.Printf("%-17s %5.2f  %s\n", spec.Name, s.Mean, bar)
	}

	fmt.Println("\nnow let the channel reorder (the paper's setting). Frame-number collisions")
	fmt.Println("need inputs longer than the number space, so the check uses the smallest")
	fmt.Println("windows — but NO window survives inputs beyond its number space:")
	boundary := []struct {
		name   string
		params registry.Params
	}{
		{"abp", registry.Params{M: 1}},
		{"gobackn", registry.Params{M: 1, Window: 1}},
		{"selrepeat", registry.Params{M: 1, Window: 1}},
		{"stenning", registry.Params{M: 1}},
	}
	for _, p := range boundary {
		spec, err := registry.Protocol(p.name, p.params)
		if err != nil {
			return err
		}
		res, err := seqtx.Explore(spec, seqtx.Sequence(0, 0, 0), seqtx.ChannelDel,
			seqtx.ExploreConfig{MaxDepth: 22, MaxStates: 1 << 19})
		if err != nil {
			return err
		}
		verdict := "no violation found (safe within bounds)"
		if res.Violation != nil {
			verdict = fmt.Sprintf("BROKEN in %d steps: Y = %s", len(res.Violation.Actions), res.Violation.Output)
		}
		fmt.Printf("  %-18s %s\n", spec.Name, verdict)
	}
	fmt.Println("\nevery finite-numbered scheme breaks once the input outgrows its alphabet; only the")
	fmt.Println("unbounded one survives — that is the alpha(m) bound at work (Theorems 1 and 2)")
	return nil
}
