// Filetransfer: move arbitrary bytes across a deleting, reordering
// channel with the §5 hybrid protocol — the realistic face of the paper's
// trade-off. Any fixed finite alphabet caps the number of distinguishable
// sequences at alpha(m), so to carry arbitrary payloads the hybrid pays
// with unbounded fault recovery instead: a single lost message mid-stream
// sends the rest of the payload the long way (reverse order, then the
// completeness message).
package main

import (
	"fmt"
	"os"

	"seqtx"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "filetransfer:", err)
		os.Exit(1)
	}
}

func run() error {
	payload := []byte("tight bounds for the sequence transmission problem")
	input := make(seqtx.Seq, len(payload))
	for i, b := range payload {
		input[i] = seqtx.Item(b)
	}
	// Domain = bytes. The hybrid's alphabet is 4*256+2 messages — still
	// finite and independent of the payload length.
	spec := seqtx.HybridProtocol(256, 6)

	fmt.Printf("payload: %d bytes over a del channel\n\n", len(payload))

	// Clean link: the transfer stays in its alternating-bit phase and the
	// bytes arrive one by one.
	res, err := seqtx.Transmit(spec, input, seqtx.ChannelDel, seqtx.FairRoundRobin())
	if err != nil {
		return err
	}
	report("clean link", res, payload)

	// One deleted message: the §5 story. The transfer detours through the
	// reverse-order stream; everything still arrives, later and batched.
	res, err = seqtx.Transmit(spec, input, seqtx.ChannelDel, seqtx.Dropper(3, 1))
	if err != nil {
		return err
	}
	report("one loss", res, payload)
	gap := 0
	prev := 0
	for _, t := range res.LearnTimes {
		if t-prev > gap {
			gap = t - prev
		}
		prev = t
	}
	fmt.Printf("\nlargest silent gap after the loss: %d steps — proportional to the remaining payload\n", gap)
	fmt.Println("(the tight protocol recovers in O(1), but could never carry arbitrary bytes: alpha-bound)")
	return nil
}

func report(label string, res seqtx.RunResult, payload []byte) {
	got := make([]byte, len(res.Output))
	for i, it := range res.Output {
		got[i] = byte(it)
	}
	fmt.Printf("%-12s steps %-6d delivered %q\n", label, res.Steps, string(got))
	if string(got) != string(payload) {
		fmt.Printf("%-12s MISMATCH!\n", label)
	}
}
