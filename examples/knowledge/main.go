// Knowledge: the paper derives everything "using formal reasoning about
// knowledge" (§2.3). This example computes K_R directly: explore all runs
// of the tight protocol over every allowable input, then ask, view by
// view, when the receiver KNOWS each data item — i.e. when every run that
// could have produced its local history agrees on the item.
package main

import (
	"fmt"
	"os"

	"seqtx"
	"seqtx/internal/protocol/alphaproto"
	"seqtx/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "knowledge:", err)
		os.Exit(1)
	}
}

func run() error {
	const m = 2
	spec := seqtx.TightProtocol(m)
	inputs := seqtx.RepetitionFreeSequences(m)
	fmt.Printf("exploring all runs of the tight protocol over all %d allowable inputs (m = %d)\n\n",
		len(inputs), m)
	analysis, err := seqtx.AnalyzeKnowledge(spec, inputs, seqtx.ChannelDup,
		seqtx.KnowledgeConfig{Depth: 10})
	if err != nil {
		return err
	}

	views := []struct {
		label string
		view  trace.View
	}{
		{"initial (nothing seen)", trace.View{}},
		{"after a tick", trace.View{{IsTick: true}}},
		{"after receiving d:1", trace.View{{Msg: alphaproto.DataMsg(1)}}},
		{"after d:1 then d:0", trace.View{{Msg: alphaproto.DataMsg(1)}, {Msg: alphaproto.DataMsg(0)}}},
		{"after d:1, d:1 (duplicate)", trace.View{{Msg: alphaproto.DataMsg(1)}, {Msg: alphaproto.DataMsg(1)}}},
	}
	for _, v := range views {
		if !analysis.Reached(v.view) {
			fmt.Printf("%-28s (view not reachable)\n", v.label)
			continue
		}
		fmt.Printf("%-28s consistent inputs: %d;", v.label, analysis.ClassSize(v.view))
		for i := 1; i <= 2; i++ {
			val, knows, err := analysis.Knows(v.view, i)
			if err != nil {
				return err
			}
			if knows {
				fmt.Printf("  K_R(x_%d = %d)", i, int(val))
			} else {
				fmt.Printf("  ¬K_R(x_%d)", i)
			}
		}
		fmt.Println()
	}

	// The paper's stability lemma: once R knows x_i it never un-knows it.
	if err := analysis.CheckStability(m); err != nil {
		return fmt.Errorf("stability check failed: %w", err)
	}
	fmt.Println("\nstability verified: K_R(x_i) persists along every explored extension (complete-history interpretation)")

	// The learning times t_i along a concrete fair run.
	input := seqtx.Sequence(1, 0)
	times, err := seqtx.LearnTimes(analysis, spec, input, seqtx.ChannelDup, seqtx.FairRoundRobin(), 10)
	if err != nil {
		return err
	}
	fmt.Printf("\nlearning times on X = %s under the fair round-robin schedule: t_1 = %d, t_2 = %d\n",
		input, times[0], times[1])
	return nil
}
