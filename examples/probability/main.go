// Probability: the paper's closing question (§6) — "how allowing a small
// chance of error would affect our results" — answered empirically. The
// modseq protocol (sequence numbers mod M) carries EVERY sequence with a
// finite alphabet, which Theorems 1 and 2 forbid for certain-correctness:
// the model checker duly finds a failing run for every window M. But under
// random rather than adversarial channels, widening M buys failure
// probability, geometrically.
package main

import (
	"fmt"
	"os"

	"seqtx"
	"seqtx/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "probability:", err)
		os.Exit(1)
	}
}

func run() error {
	input := seqtx.Sequence(0, 1, 2, 0, 1, 2, 1, 0) // 8 items over 3 values

	fmt.Println("modseq: Stenning with sequence numbers mod M over a duplicating channel")
	fmt.Println("input:", input)
	fmt.Println()

	// Part 1: the POSSIBILITY of failure (the theorems' side).
	spec2, err := seqtx.ModseqProtocol(3, 2)
	if err != nil {
		return err
	}
	ex, err := seqtx.Explore(spec2, input[:4], seqtx.ChannelDup,
		seqtx.ExploreConfig{MaxDepth: 14, MaxStates: 1 << 17})
	if err != nil {
		return err
	}
	if ex.Violation == nil {
		return fmt.Errorf("expected an adversarial violation for window 2")
	}
	fmt.Printf("window 2, adversarial channel: violation in %d steps (Theorem 1 satisfied)\n\n",
		len(ex.Violation.Actions))

	// Part 2: the PROBABILITY of failure (the §6 side).
	fmt.Println("window M   |M^S|   violation rate under 200 random replaying runs")
	fmt.Println("--------   -----   -----------------------------------------------")
	for _, window := range []int{1, 2, 4, 6, 8} {
		spec, err := seqtx.ModseqProtocol(3, window)
		if err != nil {
			return err
		}
		est, err := seqtx.MonteCarlo(spec, input, seqtx.ChannelDup, seqtx.MonteCarloConfig{
			Trials: 200,
			Seed:   11,
			NewAdversary: func(trial int) seqtx.Adversary {
				return sim.NewReplayer(int64(trial), 3)
			},
		})
		if err != nil {
			return err
		}
		bar := ""
		for i := 0; i < int(est.ViolationRate()*40); i++ {
			bar += "#"
		}
		fmt.Printf("%8d   %5d   %5.1f%%  %s\n", window, 3*window, 100*est.ViolationRate(), bar)
	}
	fmt.Println("\nzero is impossible (Theorem 1); small is a purchase (alphabet size M·|D|)")
	return nil
}
