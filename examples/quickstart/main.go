// Quickstart: transmit a sequence with the paper's tight protocol over a
// reordering, duplicating channel, and bump into the alpha(m) wall.
package main

import (
	"fmt"
	"os"

	"seqtx"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	const m = 4 // sender alphabet (= domain) size
	a, err := seqtx.Alpha(m)
	if err != nil {
		return err
	}
	fmt.Printf("With |M^S| = %d the paper allows at most alpha(%d) = %d input sequences.\n", m, m, a)
	fmt.Printf("The tight protocol achieves exactly that: every repetition-free sequence over %d items.\n\n", m)

	spec := seqtx.TightProtocol(m)
	input := seqtx.Sequence(2, 0, 3, 1)

	// A hostile but fair schedule: the channel withholds everything for a
	// while, then delivers with random reordering and replayed duplicates.
	for _, adv := range []seqtx.Adversary{
		seqtx.FairRoundRobin(),
		seqtx.Withholder(30),
		seqtx.Replayer(7, 2),
	} {
		res, err := seqtx.Transmit(spec, input, seqtx.ChannelDup, adv)
		if err != nil {
			return err
		}
		fmt.Printf("adversary %-16s X = %s  ->  Y = %s  (steps %d, safe %v)\n",
			adv.Name(), input, res.Output, res.Steps, res.SafetyViolation == nil)
	}

	// The wall: a sequence with a repeated item is outside X.
	if _, err := spec.NewSender(seqtx.Sequence(1, 2, 1)); err != nil {
		fmt.Printf("\nAs the bound demands, 1.2.1 is rejected: %v\n", err)
	}

	// But a set of your choosing fits, as long as |X| <= alpha(m) and its
	// prefix structure embeds: the encoded variant finds the mapping mu.
	x, err := seqtx.NewSeqSet(
		seqtx.Sequence(1, 1, 1),
		seqtx.Sequence(0, 0),
		seqtx.Sequence(2),
	)
	if err != nil {
		return err
	}
	encoded, err := seqtx.EncodedProtocol(x, m)
	if err != nil {
		return err
	}
	res, err := seqtx.Transmit(encoded, seqtx.Sequence(1, 1, 1), seqtx.ChannelDup, seqtx.FairRandom(1))
	if err != nil {
		return err
	}
	fmt.Printf("\nEncoded protocol carries repeating sequences too: X = 1.1.1 -> Y = %s (safe %v)\n",
		res.Output, res.SafetyViolation == nil)
	return nil
}
