module seqtx

go 1.22
