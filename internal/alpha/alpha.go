// Package alpha implements the combinatorics behind the paper's tight
// bound: the function
//
//	alpha(m) = m! * sum_{k=0..m} 1/k!
//
// which counts the sequences over an m-letter alphabet that contain no
// repetitions (including the empty sequence). Theorems 1 and 2 of the
// paper state that alpha(|M^S|) bounds |X| for X-STP(dup) and for bounded
// X-STP(del), and that the bound is tight.
//
// The package also implements the "arrangement tree" of repetition-free
// strings — ranking, unranking, enumeration — and the prefix-monotone
// encoder mu : X -> repetition-free strings whose existence the paper
// shows is necessary and sufficient for solving X-STP(dup) (§3, end).
package alpha

import (
	"fmt"
	"math/big"

	"seqtx/internal/seq"
)

// MaxExact is the largest m for which Alpha can return an exact uint64.
// alpha(20) ≈ 6.61e18 still fits in a uint64; alpha(21) does not.
const MaxExact = 20

// Alpha returns alpha(m) exactly. It uses the recurrence
//
//	alpha(0) = 1
//	alpha(m) = m*alpha(m-1) + 1
//
// (a repetition-free sequence is either empty or a first letter — m
// choices — followed by a repetition-free sequence over the remaining m-1
// letters). It returns an error for negative m or m > MaxExact.
func Alpha(m int) (uint64, error) {
	if m < 0 {
		return 0, fmt.Errorf("alpha: negative alphabet size %d", m)
	}
	if m > MaxExact {
		return 0, fmt.Errorf("alpha: alpha(%d) overflows uint64 (max m = %d); use AlphaBig", m, MaxExact)
	}
	var a uint64 = 1
	for k := 1; k <= m; k++ {
		a = uint64(k)*a + 1
	}
	return a, nil
}

// MustAlpha is Alpha for m known to be in range; it panics otherwise.
// Intended for tests and experiment code with fixed small m.
func MustAlpha(m int) uint64 {
	a, err := Alpha(m)
	if err != nil {
		panic(err)
	}
	return a
}

// AlphaBig returns alpha(m) as a big.Int for any m >= 0.
func AlphaBig(m int) (*big.Int, error) {
	if m < 0 {
		return nil, fmt.Errorf("alpha: negative alphabet size %d", m)
	}
	a := big.NewInt(1)
	for k := 1; k <= m; k++ {
		a.Mul(a, big.NewInt(int64(k)))
		a.Add(a, big.NewInt(1))
	}
	return a, nil
}

// FloorEFactorial returns floor(e * m!) for m >= 1, which the paper's
// formula equals (the tail sum_{k>m} m!/k! is strictly below 1 for m >= 1).
// Exposed so tests can cross-check the closed form. Returns an error when
// m < 1 (the identity fails at m = 0: alpha(0) = 1 but floor(e) = 2) or
// when the result would overflow.
func FloorEFactorial(m int) (uint64, error) {
	if m < 1 {
		return 0, fmt.Errorf("alpha: floor(e*m!) identity requires m >= 1, got %d", m)
	}
	// Compute floor(e*m!) exactly as alpha(m): avoid float error entirely.
	// This function exists to document the identity; the real cross-check
	// against an independent computation is done with big.Float in tests.
	return Alpha(m)
}

// CountByLength returns, for k = 0..m, the number of repetition-free
// sequences of exactly k items over an m-letter alphabet: m!/(m-k)!
// (partial permutations). The values sum to alpha(m).
func CountByLength(m int) ([]uint64, error) {
	if m < 0 || m > MaxExact {
		return nil, fmt.Errorf("alpha: m = %d out of range [0,%d]", m, MaxExact)
	}
	out := make([]uint64, m+1)
	var v uint64 = 1
	out[0] = 1
	for k := 1; k <= m; k++ {
		v *= uint64(m - k + 1)
		out[k] = v
	}
	return out, nil
}

// SubtreeSize returns the number of nodes in an arrangement-tree subtree
// rooted at depth d (0 <= d <= m): alpha(m-d), the repetition-free
// sequences over the m-d still-unused letters.
func SubtreeSize(m, d int) (uint64, error) {
	if d < 0 || d > m {
		return 0, fmt.Errorf("alpha: depth %d out of range [0,%d]", d, m)
	}
	return Alpha(m - d)
}

// Rank returns the zero-based rank of the repetition-free sequence s in
// the depth-first enumeration of the arrangement tree over m letters
// (the order produced by seq.RepetitionFree). It returns an error if s
// has a repetition or an out-of-range item.
func Rank(m int, s seq.Seq) (uint64, error) {
	if m < 0 || m > MaxExact {
		return 0, fmt.Errorf("alpha: m = %d out of range [0,%d]", m, MaxExact)
	}
	used := make([]bool, m)
	var rank uint64
	for d, x := range s {
		if int(x) < 0 || int(x) >= m {
			return 0, fmt.Errorf("alpha: item %d out of domain [0,%d)", int(x), m)
		}
		if used[x] {
			return 0, fmt.Errorf("alpha: sequence %s repeats item %d", s, int(x))
		}
		// Count unused items below x: each owns a subtree of alpha(m-d-1)
		// nodes that is enumerated before x's subtree.
		idx := 0
		for i := 0; i < int(x); i++ {
			if !used[i] {
				idx++
			}
		}
		sub, err := Alpha(m - d - 1)
		if err != nil {
			return 0, err
		}
		rank += 1 + uint64(idx)*sub
		used[x] = true
	}
	return rank, nil
}

// Unrank inverts Rank: it returns the repetition-free sequence over m
// letters whose depth-first rank is r. It returns an error if
// r >= alpha(m).
func Unrank(m int, r uint64) (seq.Seq, error) {
	total, err := Alpha(m)
	if err != nil {
		return nil, err
	}
	if r >= total {
		return nil, fmt.Errorf("alpha: rank %d out of range [0,%d)", r, total)
	}
	used := make([]bool, m)
	var s seq.Seq
	for d := 0; r > 0; d++ {
		r-- // step past the current node; r now indexes into the subtrees
		sub, err := Alpha(m - d - 1)
		if err != nil {
			return nil, err
		}
		idx := r / sub
		r %= sub
		// Find the (idx+1)-th unused item.
		item := -1
		for i, cnt := 0, uint64(0); i < m; i++ {
			if used[i] {
				continue
			}
			if cnt == idx {
				item = i
				break
			}
			cnt++
		}
		if item < 0 {
			return nil, fmt.Errorf("alpha: internal unrank error at depth %d", d)
		}
		used[item] = true
		s = append(s, seq.Item(item))
	}
	return s, nil
}
