package alpha

import (
	"math/big"
	"testing"
	"testing/quick"

	"seqtx/internal/seq"
)

func TestAlphaSmallValues(t *testing.T) {
	t.Parallel()
	// alpha(m) = m! sum 1/k!: 1, 2, 5, 16, 65, 326, 1957, 13700, 109601.
	want := []uint64{1, 2, 5, 16, 65, 326, 1957, 13700, 109601}
	for m, w := range want {
		got, err := Alpha(m)
		if err != nil {
			t.Fatal(err)
		}
		if got != w {
			t.Errorf("Alpha(%d) = %d, want %d", m, got, w)
		}
	}
}

func TestAlphaErrors(t *testing.T) {
	t.Parallel()
	if _, err := Alpha(-1); err == nil {
		t.Error("Alpha(-1) succeeded")
	}
	if _, err := Alpha(MaxExact + 1); err == nil {
		t.Error("Alpha(21) succeeded, want overflow error")
	}
	if _, err := Alpha(MaxExact); err != nil {
		t.Errorf("Alpha(%d) failed: %v", MaxExact, err)
	}
}

func TestAlphaMatchesEnumeration(t *testing.T) {
	t.Parallel()
	for m := 0; m <= 7; m++ {
		want := len(seq.RepetitionFree(m))
		got := MustAlpha(m)
		if got != uint64(want) {
			t.Errorf("Alpha(%d) = %d, enumeration gives %d", m, got, want)
		}
	}
}

func TestAlphaBigMatchesExact(t *testing.T) {
	t.Parallel()
	for m := 0; m <= MaxExact; m++ {
		b, err := AlphaBig(m)
		if err != nil {
			t.Fatal(err)
		}
		if b.Cmp(new(big.Int).SetUint64(MustAlpha(m))) != 0 {
			t.Errorf("AlphaBig(%d) = %s != Alpha = %d", m, b, MustAlpha(m))
		}
	}
	if _, err := AlphaBig(-2); err == nil {
		t.Error("AlphaBig(-2) succeeded")
	}
	// Beyond uint64 range it still works.
	if _, err := AlphaBig(30); err != nil {
		t.Errorf("AlphaBig(30) failed: %v", err)
	}
}

func TestFloorEFactorialIdentity(t *testing.T) {
	t.Parallel()
	// Independent high-precision check: alpha(m) == floor(e*m!) for m>=1.
	const prec = 256
	e := bigE(prec)
	fact := big.NewFloat(1).SetPrec(prec)
	for m := 1; m <= 15; m++ {
		fact.Mul(fact, big.NewFloat(float64(m)))
		prod := new(big.Float).SetPrec(prec).Mul(e, fact)
		floor, _ := prod.Int(nil)
		if floor.Cmp(new(big.Int).SetUint64(MustAlpha(m))) != 0 {
			t.Errorf("floor(e*%d!) = %s, alpha = %d", m, floor, MustAlpha(m))
		}
		got, err := FloorEFactorial(m)
		if err != nil {
			t.Fatal(err)
		}
		if got != MustAlpha(m) {
			t.Errorf("FloorEFactorial(%d) = %d", m, got)
		}
	}
	if _, err := FloorEFactorial(0); err == nil {
		t.Error("FloorEFactorial(0) succeeded; identity fails at m=0")
	}
}

// bigE computes e = sum 1/k! to the given precision.
func bigE(prec uint) *big.Float {
	e := big.NewFloat(0).SetPrec(prec)
	term := big.NewFloat(1).SetPrec(prec)
	for k := 1; k <= 60; k++ {
		e.Add(e, term)
		term.Quo(term, big.NewFloat(float64(k)))
	}
	return e
}

func TestCountByLength(t *testing.T) {
	t.Parallel()
	counts, err := CountByLength(3)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 3, 6, 6}
	for k, w := range want {
		if counts[k] != w {
			t.Errorf("CountByLength(3)[%d] = %d, want %d", k, counts[k], w)
		}
	}
	var sum uint64
	for _, c := range counts {
		sum += c
	}
	if sum != MustAlpha(3) {
		t.Errorf("sum = %d, want alpha(3) = %d", sum, MustAlpha(3))
	}
	if _, err := CountByLength(-1); err == nil {
		t.Error("CountByLength(-1) succeeded")
	}
}

func TestSubtreeSize(t *testing.T) {
	t.Parallel()
	got, err := SubtreeSize(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != MustAlpha(3) {
		t.Errorf("SubtreeSize(4,1) = %d, want %d", got, MustAlpha(3))
	}
	if _, err := SubtreeSize(3, 4); err == nil {
		t.Error("SubtreeSize(3,4) succeeded")
	}
}

func TestRankUnrankRoundTrip(t *testing.T) {
	t.Parallel()
	for m := 0; m <= 5; m++ {
		all := seq.RepetitionFree(m)
		for want, s := range all {
			r, err := Rank(m, s)
			if err != nil {
				t.Fatalf("Rank(%d, %s): %v", m, s, err)
			}
			if r != uint64(want) {
				t.Errorf("Rank(%d, %s) = %d, want %d (DFS position)", m, s, r, want)
			}
			back, err := Unrank(m, r)
			if err != nil {
				t.Fatalf("Unrank(%d, %d): %v", m, r, err)
			}
			if !back.Equal(s) {
				t.Errorf("Unrank(Rank(%s)) = %s", s, back)
			}
		}
	}
}

func TestRankErrors(t *testing.T) {
	t.Parallel()
	if _, err := Rank(2, seq.FromInts(0, 0)); err == nil {
		t.Error("Rank of repeating sequence succeeded")
	}
	if _, err := Rank(2, seq.FromInts(5)); err == nil {
		t.Error("Rank of out-of-domain item succeeded")
	}
	if _, err := Unrank(2, MustAlpha(2)); err == nil {
		t.Error("Unrank past alpha(m) succeeded")
	}
}

func TestUnrankProperty(t *testing.T) {
	t.Parallel()
	f := func(raw uint32) bool {
		m := 6
		r := uint64(raw) % MustAlpha(m)
		s, err := Unrank(m, r)
		if err != nil {
			return false
		}
		if s.HasRepetition() {
			return false
		}
		back, err := Rank(m, s)
		return err == nil && back == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestAlphaRecurrenceProperty(t *testing.T) {
	t.Parallel()
	// alpha(m) = m*alpha(m-1) + 1 for all exact m.
	for m := 1; m <= MaxExact; m++ {
		if MustAlpha(m) != uint64(m)*MustAlpha(m-1)+1 {
			t.Errorf("recurrence fails at m = %d", m)
		}
	}
}
