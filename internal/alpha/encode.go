package alpha

import (
	"fmt"
	"sort"
	"strings"

	"seqtx/internal/msg"
	"seqtx/internal/seq"
)

// Encoding is a prefix-monotone injection mu from a set X of data
// sequences into the repetition-free strings over an alphabet of m
// messages — the object the paper shows must exist for any solution to
// X-STP(dup) (§3, end): mu(X1) is a prefix of mu(X2) exactly when X1 is a
// prefix of X2.
type Encoding struct {
	m        int
	alphabet msg.Alphabet
	codes    map[string][]msg.Msg // seq.Key -> repetition-free message string
}

// Alphabet returns the message alphabet the encoding maps into.
func (e *Encoding) Alphabet() msg.Alphabet { return e.alphabet }

// Code returns mu(x) for a member sequence x.
func (e *Encoding) Code(x seq.Seq) ([]msg.Msg, error) {
	c, ok := e.codes[x.Key()]
	if !ok {
		return nil, fmt.Errorf("alpha: sequence %s not in encoded set", x)
	}
	return c, nil
}

// Members returns the canonical keys of all encoded sequences, sorted.
func (e *Encoding) Members() []string {
	keys := make([]string, 0, len(e.codes))
	for k := range e.codes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Validate checks the defining properties on every pair of members:
// prefix relations among codes hold exactly when they hold among the data
// sequences (this subsumes injectivity for duplicate-free sets), and every
// code is a repetition-free string over the alphabet.
func (e *Encoding) Validate(x *seq.Set) error {
	for _, s := range x.Seqs() {
		c, err := e.Code(s)
		if err != nil {
			return err
		}
		seen := make(map[msg.Msg]struct{}, len(c))
		for _, m := range c {
			if !e.alphabet.Contains(m) {
				return fmt.Errorf("alpha: code for %s uses %q outside alphabet %s", s, m, e.alphabet)
			}
			if _, dup := seen[m]; dup {
				return fmt.Errorf("alpha: code for %s repeats message %q", s, m)
			}
			seen[m] = struct{}{}
		}
	}
	for _, s1 := range x.Seqs() {
		for _, s2 := range x.Seqs() {
			c1, _ := e.Code(s1)
			c2, _ := e.Code(s2)
			wantPrefix := s1.IsPrefixOf(s2)
			gotPrefix := msgIsPrefix(c1, c2)
			if wantPrefix != gotPrefix {
				return fmt.Errorf("alpha: prefix monotonicity violated: %s vs %s (data prefix=%v, code prefix=%v)",
					s1, s2, wantPrefix, gotPrefix)
			}
		}
	}
	return nil
}

func msgIsPrefix(a, b []msg.Msg) bool {
	if len(a) > len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ErrNotEncodable is returned (wrapped) by Encode when no prefix-monotone
// injection into the repetition-free strings over m messages exists.
var ErrNotEncodable = fmt.Errorf("alpha: set is not prefix-monotone encodable")

// maxEncodeMembers bounds the exact search; beyond it the partition
// enumeration could be too expensive.
const maxEncodeMembers = 64

// Encode searches for a prefix-monotone encoding of x into repetition-free
// strings over an m-message alphabet ("c0".."c<m-1>"). The search is exact
// (backtracking over arrangement-tree embeddings with memoized
// infeasibility), so it either returns a valid Encoding or reports that
// none exists by returning an error wrapping ErrNotEncodable.
//
// The structure of the problem: X's members, ordered by the prefix
// relation, form a forest (the prefixes of a sequence are a chain). The
// codomain — repetition-free strings ordered by prefix — is the
// "arrangement tree", whose subtrees at equal depth are isomorphic, so
// only depths matter during the search. A forest embeds strictly below a
// depth-d node by splitting its trees among child subtrees; two trees may
// share a child subtree only if neither root sits at the subtree's root
// (they must remain incomparable). This is exactly the paper's remark that
// antichains of size up to m! encode (the m! leaves), prefix chains need
// one alphabet letter per link, and alpha(m) is the overall ceiling.
func Encode(x *seq.Set, m int) (*Encoding, error) {
	if m < 0 {
		return nil, fmt.Errorf("alpha: negative alphabet size %d", m)
	}
	if x.Size() > maxEncodeMembers {
		return nil, fmt.Errorf("alpha: set of %d sequences exceeds exact-search limit %d", x.Size(), maxEncodeMembers)
	}
	if m <= MaxExact {
		if a := MustAlpha(m); uint64(x.Size()) > a {
			return nil, fmt.Errorf("%w: |X| = %d > alpha(%d) = %d", ErrNotEncodable, x.Size(), m, a)
		}
	}
	msgs := make([]msg.Msg, m)
	for i := range msgs {
		msgs[i] = msg.Msg(fmt.Sprintf("c%d", i))
	}
	alphabet := msg.MustNewAlphabet(msgs...)
	enc := &Encoding{m: m, alphabet: alphabet, codes: make(map[string][]msg.Msg, x.Size())}

	forest := buildMemberForest(x)
	emb := &embedder{m: m, alphabet: alphabet, infeasible: make(map[string]bool), codes: enc.codes}

	// If the member forest has a single root, that root may map to the
	// empty code (the arrangement-tree root): every other member is its
	// descendant, so the "ε is a prefix of everything" comparabilities are
	// exactly the required ones. Try that placement first — it saves a
	// letter — and fall back to placing the whole forest strictly below ε.
	ok := false
	if len(forest) == 1 {
		emb.codes[forest[0].s.Key()] = []msg.Msg{}
		ok = emb.place(forest[0].children, nil)
		if !ok {
			delete(emb.codes, forest[0].s.Key())
		}
	}
	if !ok {
		ok = emb.place(forest, nil)
	}
	if !ok {
		return nil, fmt.Errorf("%w: no arrangement-tree embedding over %d messages", ErrNotEncodable, m)
	}
	if err := enc.Validate(x); err != nil {
		return nil, fmt.Errorf("alpha: internal error: produced encoding invalid: %w", err)
	}
	return enc, nil
}

// memberNode is a node in the member forest: a member sequence of X
// together with the members that extend it minimally.
type memberNode struct {
	s        seq.Seq
	children []*memberNode
	height   int    // longest chain of members strictly below
	size     int    // members in this subtree including itself
	shape    string // canonical shape id (children shapes, sorted)
}

func buildMemberForest(x *seq.Set) []*memberNode {
	members := append([]seq.Seq{}, x.Seqs()...)
	sort.Slice(members, func(i, j int) bool {
		if len(members[i]) != len(members[j]) {
			return len(members[i]) < len(members[j])
		}
		return members[i].Key() < members[j].Key()
	})
	nodes := make([]*memberNode, 0, len(members))
	var roots []*memberNode
	for _, s := range members {
		n := &memberNode{s: s}
		var parent *memberNode
		for _, cand := range nodes {
			if len(cand.s) < len(s) && cand.s.IsPrefixOf(s) {
				if parent == nil || len(cand.s) > len(parent.s) {
					parent = cand
				}
			}
		}
		if parent != nil {
			parent.children = append(parent.children, n)
		} else {
			roots = append(roots, n)
		}
		nodes = append(nodes, n)
	}
	var fill func(n *memberNode)
	fill = func(n *memberNode) {
		n.size = 1
		n.height = 0
		shapes := make([]string, 0, len(n.children))
		for _, c := range n.children {
			fill(c)
			n.size += c.size
			if c.height+1 > n.height {
				n.height = c.height + 1
			}
			shapes = append(shapes, c.shape)
		}
		sort.Strings(shapes)
		n.shape = "(" + strings.Join(shapes, "") + ")"
	}
	for _, r := range roots {
		fill(r)
	}
	return roots
}

// embedder performs the exact embedding search. Paths carry the concrete
// letters consumed so far; feasibility is memoized purely on (multiset of
// tree shapes, remaining letters), exploiting subtree isomorphism.
type embedder struct {
	m          int
	alphabet   msg.Alphabet
	infeasible map[string]bool // forest key at depth -> known infeasible
	codes      map[string][]msg.Msg
}

func forestKey(trees []*memberNode, remaining int) string {
	shapes := make([]string, len(trees))
	for i, t := range trees {
		shapes[i] = t.shape
	}
	sort.Strings(shapes)
	return fmt.Sprintf("%d|%s", remaining, strings.Join(shapes, ""))
}

// place embeds the forest strictly below the node identified by path
// (depth len(path)), assigning codes. It returns false iff no embedding
// exists; on false, codes may contain leftovers from abandoned branches,
// which are either overwritten on later attempts or discarded on failure.
func (e *embedder) place(trees []*memberNode, path []msg.Msg) bool {
	if len(trees) == 0 {
		return true
	}
	remaining := e.m - len(path)
	key := forestKey(trees, remaining)
	if e.infeasible[key] {
		return false
	}
	if remaining == 0 {
		e.infeasible[key] = true
		return false
	}
	// Prune: chains need letters; members need capacity.
	total := 0
	for _, t := range trees {
		if t.height+1 > remaining {
			e.infeasible[key] = true
			return false
		}
		total += t.size
	}
	if remaining <= MaxExact && uint64(total) > MustAlpha(remaining)-1 {
		e.infeasible[key] = true
		return false
	}

	// Which concrete letters are free below this path.
	used := make(map[msg.Msg]struct{}, len(path))
	for _, m := range path {
		used[m] = struct{}{}
	}
	var freeLetters []msg.Msg
	for _, m := range e.alphabet.Msgs() {
		if _, ok := used[m]; !ok {
			freeLetters = append(freeLetters, m)
		}
	}

	// Sort trees hardest-first for better pruning; identical shapes
	// adjacent for symmetry breaking during partitioning.
	order := append([]*memberNode{}, trees...)
	sort.Slice(order, func(i, j int) bool {
		if order[i].shape != order[j].shape {
			return order[i].shape > order[j].shape
		}
		return order[i].s.Key() < order[j].s.Key()
	})

	ok := e.partition(order, nil, freeLetters, path)
	if !ok {
		e.infeasible[key] = true
	}
	return ok
}

// partition distributes order[idx:] among groups (each group will occupy
// one child subtree on its own letter), then recurses into each group.
// groups is the partial partition built so far.
func (e *embedder) partition(order []*memberNode, groups [][]*memberNode, freeLetters []msg.Msg, path []msg.Msg) bool {
	// Fully partitioned: realize each group in its own child subtree.
	if allAssigned(order, groups) {
		return e.realize(groups, freeLetters, path)
	}
	idx := assignedCount(groups)
	t := order[idx]
	// Symmetry breaking: an item identical in shape to the previous one
	// may only go into the group of its predecessor or a later group.
	minGroup := 0
	if idx > 0 && order[idx-1].shape == t.shape {
		minGroup = groupOf(groups, order[idx-1])
	}
	for g := minGroup; g < len(groups); g++ {
		groups[g] = append(groups[g], t)
		if e.partition(order, groups, freeLetters, path) {
			return true
		}
		groups[g] = groups[g][:len(groups[g])-1]
	}
	if len(groups) < len(freeLetters) {
		groups = append(groups, []*memberNode{t})
		if e.partition(order, groups, freeLetters, path) {
			return true
		}
	}
	return false
}

func assignedCount(groups [][]*memberNode) int {
	n := 0
	for _, g := range groups {
		n += len(g)
	}
	return n
}

func allAssigned(order []*memberNode, groups [][]*memberNode) bool {
	return assignedCount(groups) == len(order)
}

func groupOf(groups [][]*memberNode, t *memberNode) int {
	for i, g := range groups {
		for _, x := range g {
			if x == t {
				return i
			}
		}
	}
	return 0
}

// realize embeds each group into its own child subtree rooted one letter
// below path. A singleton group may place its tree's root at the subtree
// root (code = path+letter) or sink deeper; a larger group must sink: its
// roots stay mutually incomparable, so none may sit at the shared subtree
// root.
func (e *embedder) realize(groups [][]*memberNode, freeLetters []msg.Msg, path []msg.Msg) bool {
	if len(groups) > len(freeLetters) {
		return false
	}
	for i, g := range groups {
		letter := freeLetters[i]
		childPath := append(append([]msg.Msg{}, path...), letter)
		if len(g) == 1 {
			t := g[0]
			// Option A: place at the subtree root.
			e.codes[t.s.Key()] = childPath
			if e.place(t.children, childPath) {
				continue
			}
			delete(e.codes, t.s.Key())
			// Option B: sink the whole singleton group deeper.
			if e.place(g, childPath) {
				continue
			}
			return false
		}
		if !e.place(g, childPath) {
			return false
		}
	}
	return true
}
