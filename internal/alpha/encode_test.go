package alpha

import (
	"errors"
	"math/rand"
	"testing"

	"seqtx/internal/seq"
)

func TestEncodeRepetitionFreeSet(t *testing.T) {
	t.Parallel()
	// The paper's tight X: all repetition-free sequences over m items
	// encode into exactly m messages (identity-like embedding).
	for m := 0; m <= 3; m++ {
		x := seq.RepetitionFreeSet(m)
		enc, err := Encode(x, m)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if err := enc.Validate(x); err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
	}
}

func TestEncodeRejectsOversizedSet(t *testing.T) {
	t.Parallel()
	// alpha(2) = 5; six sequences cannot encode over two messages.
	x := seq.MustNewSet(
		seq.Seq{},
		seq.FromInts(0),
		seq.FromInts(1),
		seq.FromInts(0, 1),
		seq.FromInts(1, 0),
		seq.FromInts(0, 0), // the repeating intruder
	)
	_, err := Encode(x, 2)
	if !errors.Is(err, ErrNotEncodable) {
		t.Fatalf("err = %v, want ErrNotEncodable", err)
	}
}

func TestEncodeChainLimit(t *testing.T) {
	t.Parallel()
	// A chain of k+1 nested sequences needs k letters: 0 < 0.0 < 0.0.0
	// requires m >= 2 when ε is absent, and fails for m = 1 even though
	// |X| = 2 <= alpha(1) = 2 holds for the 2-chain below.
	chain2 := seq.MustNewSet(seq.FromInts(0), seq.FromInts(0, 0))
	if _, err := Encode(chain2, 1); err != nil {
		t.Errorf("2-chain over m=1 should encode: %v", err)
	}
	chain3 := seq.MustNewSet(seq.FromInts(0), seq.FromInts(0, 0), seq.FromInts(0, 0, 0))
	if _, err := Encode(chain3, 2); err != nil {
		t.Errorf("3-chain over m=2 should encode: %v", err)
	}
	if _, err := Encode(chain3, 1); !errors.Is(err, ErrNotEncodable) {
		t.Errorf("3-chain over m=1 encoded, want ErrNotEncodable")
	}
}

func TestEncodeAntichainUpToFactorial(t *testing.T) {
	t.Parallel()
	// The paper: any antichain with |X| <= m! encodes (the m! leaves).
	// m = 3: an antichain of 6 sequences with long repetitive bodies.
	var seqs []seq.Seq
	for i := 0; i < 6; i++ {
		// Pairwise incomparable: distinct first two items encode i.
		s := seq.FromInts(i/3, 2-i%3, 0, 0, 0)
		seqs = append(seqs, s)
	}
	x := seq.MustNewSet(seqs...)
	enc, err := Encode(x, 3)
	if err != nil {
		t.Fatalf("antichain of 6 over m=3: %v", err)
	}
	if err := enc.Validate(x); err != nil {
		t.Fatal(err)
	}
	// An antichain of m!+1 = 7 incomparable sequences cannot encode.
	extra := append(append([]seq.Seq{}, seqs...), seq.FromInts(9, 9))
	x7 := seq.MustNewSet(extra...)
	if _, err := Encode(x7, 3); !errors.Is(err, ErrNotEncodable) {
		t.Errorf("antichain of 7 over m=3 encoded, want ErrNotEncodable")
	}
}

func TestEncodeEmptySequenceMember(t *testing.T) {
	t.Parallel()
	x := seq.MustNewSet(seq.Seq{}, seq.FromInts(7), seq.FromInts(7, 7))
	enc, err := Encode(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := enc.Code(seq.Seq{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c) != 0 {
		t.Errorf("code of ε = %v, want empty", c)
	}
}

func TestEncodeCodeUnknownSequence(t *testing.T) {
	t.Parallel()
	x := seq.MustNewSet(seq.FromInts(1))
	enc, err := Encode(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enc.Code(seq.FromInts(2)); err == nil {
		t.Error("Code of non-member succeeded")
	}
}

func TestEncodeMixedStructure(t *testing.T) {
	t.Parallel()
	// Mixed chains and antichains exercising group sharing: requires
	// splitting trees across shared first letters.
	x := seq.MustNewSet(
		seq.FromInts(0),
		seq.FromInts(0, 0),
		seq.FromInts(1),
		seq.FromInts(2),
		seq.FromInts(2, 2),
	)
	// |X| = 5 = alpha(2); but two 2-chains plus a singleton over m=2?
	// Chains need 2 letters each and must be incomparable... exact search
	// decides. Over m=3 it must work comfortably.
	if enc, err := Encode(x, 3); err != nil {
		t.Fatalf("m=3: %v", err)
	} else if err := enc.Validate(x); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRandomizedSetsValidate(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		m := 2 + rng.Intn(3) // 2..4
		n := 1 + rng.Intn(6)
		var seqs []seq.Seq
		seen := map[string]struct{}{}
		for len(seqs) < n {
			s := seq.Random(rng, 3, rng.Intn(4))
			if _, dup := seen[s.Key()]; dup {
				continue
			}
			seen[s.Key()] = struct{}{}
			seqs = append(seqs, s)
		}
		x := seq.MustNewSet(seqs...)
		enc, err := Encode(x, m)
		if errors.Is(err, ErrNotEncodable) {
			continue // fine: the search is exact, infeasible sets exist
		}
		if err != nil {
			t.Fatalf("trial %d: unexpected error: %v", trial, err)
		}
		if err := enc.Validate(x); err != nil {
			t.Fatalf("trial %d: invalid encoding: %v", trial, err)
		}
	}
}

func TestEncodeExactness(t *testing.T) {
	t.Parallel()
	// Brute-force cross-check on tiny instances: compare the search's
	// verdict with exhaustive assignment of codes for all subsets of
	// sequences drawn from a small pool, m = 2.
	pool := []seq.Seq{
		{},
		seq.FromInts(0),
		seq.FromInts(1),
		seq.FromInts(0, 0),
		seq.FromInts(0, 1),
	}
	m := 2
	codes := seq.RepetitionFree(m) // 5 candidate codes as item sequences
	for mask := 1; mask < 1<<len(pool); mask++ {
		var members []seq.Seq
		for i, s := range pool {
			if mask&(1<<i) != 0 {
				members = append(members, s)
			}
		}
		x := seq.MustNewSet(members...)
		_, err := Encode(x, m)
		got := err == nil
		want := bruteForceEncodable(members, codes)
		if got != want {
			t.Errorf("mask %b: Encode = %v, brute force = %v", mask, got, want)
		}
	}
}

// bruteForceEncodable tries every injective assignment of codes to members
// and checks prefix monotonicity both ways.
func bruteForceEncodable(members, codes []seq.Seq) bool {
	n := len(members)
	if n > len(codes) {
		return false
	}
	assign := make([]int, n)
	usedCode := make([]bool, len(codes))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == n {
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					wantP := members[a].IsPrefixOf(members[b])
					gotP := codes[assign[a]].IsPrefixOf(codes[assign[b]])
					if wantP != gotP {
						return false
					}
				}
			}
			return true
		}
		for c := range codes {
			if usedCode[c] {
				continue
			}
			usedCode[c] = true
			assign[i] = c
			if rec(i + 1) {
				return true
			}
			usedCode[c] = false
		}
		return false
	}
	return rec(0)
}
