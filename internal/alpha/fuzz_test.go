package alpha

import (
	"testing"

	"seqtx/internal/seq"
)

// FuzzEncode throws arbitrary small sequence sets at the exact embedding
// search: whenever it claims success the produced encoding must validate
// (prefix relations preserved and reflected, codes repetition-free).
func FuzzEncode(f *testing.F) {
	f.Add([]byte{0, 1, 2}, 2)
	f.Add([]byte{0, 0, 1, 1, 2}, 3)
	f.Add([]byte{}, 1)
	f.Add([]byte{3, 3, 3, 3, 3, 3}, 4)
	f.Fuzz(func(t *testing.T, raw []byte, m int) {
		if m < 0 || m > 4 {
			return
		}
		// Decode raw into up to 6 short sequences over items 0..3: each
		// byte contributes (len, items...) greedily.
		var seqs []seq.Seq
		seen := map[string]struct{}{}
		i := 0
		for i < len(raw) && len(seqs) < 6 {
			l := int(raw[i]) % 4
			i++
			var s seq.Seq
			for j := 0; j < l && i < len(raw); j++ {
				s = append(s, seq.Item(raw[i]%4))
				i++
			}
			if _, dup := seen[s.Key()]; dup {
				continue
			}
			seen[s.Key()] = struct{}{}
			seqs = append(seqs, s)
		}
		if len(seqs) == 0 {
			return
		}
		x, err := seq.NewSet(seqs...)
		if err != nil {
			t.Fatalf("set construction: %v", err)
		}
		enc, err := Encode(x, m)
		if err != nil {
			return // infeasibility is a legitimate outcome
		}
		if verr := enc.Validate(x); verr != nil {
			t.Fatalf("Encode claimed success but produced an invalid encoding: %v", verr)
		}
	})
}

// FuzzRankUnrank checks the bijection on arbitrary ranks and alphabet
// sizes.
func FuzzRankUnrank(f *testing.F) {
	f.Add(3, uint64(7))
	f.Add(6, uint64(1956))
	f.Add(0, uint64(0))
	f.Fuzz(func(t *testing.T, m int, r uint64) {
		if m < 0 || m > 8 {
			return
		}
		total := MustAlpha(m)
		r %= total
		s, err := Unrank(m, r)
		if err != nil {
			t.Fatalf("Unrank(%d, %d): %v", m, r, err)
		}
		if s.HasRepetition() {
			t.Fatalf("Unrank produced repetition: %s", s)
		}
		back, err := Rank(m, s)
		if err != nil {
			t.Fatalf("Rank(%d, %s): %v", m, s, err)
		}
		if back != r {
			t.Fatalf("Rank(Unrank(%d)) = %d", r, back)
		}
	})
}
