package chanmodel

import (
	"fmt"

	"seqtx/internal/channel"
	"seqtx/internal/msg"
	"seqtx/internal/sim"
	"seqtx/internal/trace"
)

// Adversary realizes a channel model inside the simulator: a
// sim.Adversary whose S→R deliveries and drops follow the model's
// decision schedule exactly, while ticks and the R→S direction run the
// fair round-robin rotation (the model impairs the data direction, as
// the wire impairment layer does).
//
// The schedule is consumed one decision per offered symbol:
//
//   - duplication families (Kind() == channel.KindDup) draw one decision
//     per distinct message VALUE the first time it becomes deliverable —
//     dup channels collapse retransmissions of the same value, exactly as
//     the wire collapses nothing but the sim's dup half keeps counts at
//     one. Pass delivers the value once, Dup twice; after that the value
//     is left alone (a fair schedule: everything sent is delivered at
//     least once).
//   - deletion families (Kind() == channel.KindDel) draw one decision per
//     COPY: every retransmission is a fresh offered symbol with an
//     independent fate, which is what makes retransmitting protocols live
//     under loss.
//
// The realized decision stream (Realized) is byte-identical to
// ScheduleBytes(model, seed, n) by construction; the cross-realization
// test in internal/wire pins the same property for the wire side.
type Adversary struct {
	model Model
	seed  int64
	sched *Schedule

	phase   int
	rotS2R  int
	rotR2S  int
	dupLeft map[msg.Msg]int // dup family: remaining deliveries per value
	pending map[msg.Msg][]Decision
	done    map[msg.Msg]int // loss family: copies delivered or dropped by us
	offered map[msg.Msg]int // loss family: copies already given a decision
	record  []byte
	recMax  int
}

var _ sim.Adversary = (*Adversary)(nil)

// NewAdversary returns the scripted-delivery realization of model for
// the given seed. The world's S→R half must be of the model's Kind.
func NewAdversary(model Model, seed int64) *Adversary {
	return &Adversary{
		model:   model,
		seed:    seed,
		sched:   model.Schedule(seed),
		dupLeft: make(map[msg.Msg]int),
		pending: make(map[msg.Msg][]Decision),
		done:    make(map[msg.Msg]int),
		offered: make(map[msg.Msg]int),
	}
}

// Reset clears the per-world tracking state (seen values, per-copy
// bookkeeping, rotation cursors) while keeping the schedule stream and
// the realized-decision record, so one adversary can drive a sequence
// of fresh worlds off a single continuous schedule — the sim analogue
// of one wire impairment instance serving session after session.
func (a *Adversary) Reset() {
	a.phase, a.rotS2R, a.rotR2S = 0, 0, 0
	a.dupLeft = make(map[msg.Msg]int)
	a.pending = make(map[msg.Msg][]Decision)
	a.done = make(map[msg.Msg]int)
	a.offered = make(map[msg.Msg]int)
}

// RecordRealized keeps the first n realized decisions for Realized.
func (a *Adversary) RecordRealized(n int) { a.recMax = n }

// Realized returns the recorded realized decision stream.
func (a *Adversary) Realized() []byte { return a.record }

// Name implements sim.Adversary.
func (a *Adversary) Name() string {
	return fmt.Sprintf("chanmodel(%s,seed=%d)", a.model.Spec(), a.seed)
}

// draw consumes the next schedule decision, recording it if asked.
func (a *Adversary) draw() Decision {
	d := a.sched.Next()
	if len(a.record) < a.recMax {
		a.record = append(a.record, byte(d))
	}
	return d
}

// Choose implements sim.Adversary: the 4-phase fair rotation
// (tickS → S→R → tickR → R→S), with the S→R phase scripted by the model.
func (a *Adversary) Choose(w *sim.World, _ []trace.Action) trace.Action {
	for i := 0; i < 4; i++ {
		phase := (a.phase + i) % 4
		switch phase {
		case 0:
			a.phase = (phase + 1) % 4
			return trace.TickS()
		case 1:
			if act, ok := a.chooseS2R(w); ok {
				a.phase = (phase + 1) % 4
				return act
			}
		case 2:
			a.phase = (phase + 1) % 4
			return trace.TickR()
		case 3:
			if m, ok := a.nextFair(w, channel.RToS); ok {
				a.phase = (phase + 1) % 4
				return trace.Deliver(channel.RToS, m)
			}
		}
	}
	a.phase = 1
	return trace.TickS()
}

// chooseS2R picks the next scripted action on the data direction, or
// reports false when the schedule has nothing executable now.
func (a *Adversary) chooseS2R(w *sim.World) (trace.Action, bool) {
	if a.model.Kind() == channel.KindDup {
		return a.chooseDup(w)
	}
	return a.chooseLoss(w)
}

// chooseDup handles duplication families: one decision per new value,
// then deliver values that still have deliveries left, rotating.
func (a *Adversary) chooseDup(w *sim.World) (trace.Action, bool) {
	sup := w.Link.Half(channel.SToR).Deliverable().Support()
	for _, m := range sup {
		if _, seen := a.dupLeft[m]; !seen {
			if a.draw() == Dup {
				a.dupLeft[m] = 2
			} else {
				a.dupLeft[m] = 1
			}
		}
	}
	live := sup[:0]
	for _, m := range sup {
		if a.dupLeft[m] > 0 {
			live = append(live, m)
		}
	}
	if len(live) == 0 {
		return trace.Action{}, false
	}
	m := live[a.rotS2R%len(live)]
	a.rotS2R++
	a.dupLeft[m]--
	return trace.Deliver(channel.SToR, m), true
}

// chooseLoss handles deletion families: one decision per copy. The
// number of copies of value m ever sent is Deliverable()[m] plus the
// copies this adversary already delivered or dropped (it is the only
// consumer); newly appeared copies are decided in sorted-value order.
func (a *Adversary) chooseLoss(w *sim.World) (trace.Action, bool) {
	half := w.Link.Half(channel.SToR)
	deliverable := half.Deliverable()
	sup := deliverable.Support()
	for _, m := range sup {
		sent := deliverable.Get(m) + a.done[m]
		for a.offered[m] < sent {
			a.offered[m]++
			a.pending[m] = append(a.pending[m], a.draw())
		}
	}
	live := sup[:0]
	for _, m := range sup {
		if len(a.pending[m]) > 0 {
			live = append(live, m)
		}
	}
	if len(live) == 0 {
		return trace.Action{}, false
	}
	m := live[a.rotS2R%len(live)]
	a.rotS2R++
	d := a.pending[m][0]
	a.pending[m] = a.pending[m][1:]
	a.done[m]++
	if d == Drop && half.CanDrop(m) {
		return trace.Drop(channel.SToR, m), true
	}
	return trace.Deliver(channel.SToR, m), true
}

// nextFair rotates through the sorted deliverable set of a direction —
// the un-modeled side's fair scheduler.
func (a *Adversary) nextFair(w *sim.World, d channel.Dir) (msg.Msg, bool) {
	sup := w.Link.Half(d).Deliverable().Support()
	if len(sup) == 0 {
		return "", false
	}
	m := sup[a.rotR2S%len(sup)]
	a.rotR2S++
	return m, true
}
