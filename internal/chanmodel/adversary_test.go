package chanmodel_test

import (
	"bytes"
	"testing"

	"seqtx/internal/chanmodel"
	"seqtx/internal/channel"
	"seqtx/internal/registry"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
)

func input(m, items int) seq.Seq {
	x := make(seq.Seq, items)
	for i := range x {
		x[i] = seq.Item(i % m)
	}
	return x
}

// TestAdversaryDupFamilyLiveSafe runs the dup-channel protocols under
// the i.i.d. duplication model: every run must complete with no safety
// violation. Only protocols safe on dup channels qualify — afwz and
// hybrid are del-channel protocols (Theorem 1: replayed acks break
// their gating), so they are exactly NOT in this list.
func TestAdversaryDupFamilyLiveSafe(t *testing.T) {
	model := chanmodel.MustParse("iid-dup(p=0.3)")
	for _, proto := range []string{"alpha", "stenning"} {
		for seed := int64(1); seed <= 5; seed++ {
			spec, err := registry.Protocol(proto, registry.Params{M: 4})
			if err != nil {
				t.Fatal(err)
			}
			adv := chanmodel.NewAdversary(model, seed)
			res, err := sim.RunProtocol(spec, input(4, 4), model.Kind(), adv,
				sim.Config{MaxSteps: 20000, StopWhenComplete: true})
			if err != nil {
				t.Fatalf("%s seed %d: %v", proto, seed, err)
			}
			if res.SafetyViolation != nil {
				t.Errorf("%s seed %d: safety violation: %v", proto, seed, res.SafetyViolation)
			}
			if !res.OutputComplete {
				t.Errorf("%s seed %d: incomplete after %d steps (Y=%s)", proto, seed, res.Steps, res.Output)
			}
		}
	}
}

// TestAdversaryLossFamilyLiveSafe runs retransmitting protocols on a
// del channel under loss models: retransmitted copies get independent
// decisions, so completion is reached with probability 1.
func TestAdversaryLossFamilyLiveSafe(t *testing.T) {
	for _, ms := range []string{
		"iid-loss(p=0.3)",
		"k-del(k=4,n=16)",
		"ge(pgb=0.1,pbg=0.4,lg=0.02,lb=0.8)",
	} {
		model := chanmodel.MustParse(ms)
		for _, proto := range []string{"alpha", "stenning"} {
			for seed := int64(1); seed <= 5; seed++ {
				spec, err := registry.Protocol(proto, registry.Params{M: 4})
				if err != nil {
					t.Fatal(err)
				}
				adv := chanmodel.NewAdversary(model, seed)
				res, err := sim.RunProtocol(spec, input(4, 4), model.Kind(), adv,
					sim.Config{MaxSteps: 40000, StopWhenComplete: true})
				if err != nil {
					t.Fatalf("%s/%s seed %d: %v", ms, proto, seed, err)
				}
				if res.SafetyViolation != nil {
					t.Errorf("%s/%s seed %d: safety violation: %v", ms, proto, seed, res.SafetyViolation)
				}
				if !res.OutputComplete {
					t.Errorf("%s/%s seed %d: incomplete after %d steps (Y=%s)",
						ms, proto, seed, res.Steps, res.Output)
				}
			}
		}
	}
}

// TestAdversaryLossFamilySafeOnNonRetransmitters: afwz and hybrid never
// retransmit data, so under genuine probabilistic loss they may stall —
// but they must stall SAFELY (zero prefix violations), which is the
// guarantee the frontier's zero-violation criterion rests on.
func TestAdversaryLossFamilySafeOnNonRetransmitters(t *testing.T) {
	model := chanmodel.MustParse("iid-loss(p=0.2)")
	for _, proto := range []string{"afwz", "hybrid"} {
		for seed := int64(1); seed <= 8; seed++ {
			spec, err := registry.Protocol(proto, registry.Params{M: 4, Timeout: 4})
			if err != nil {
				t.Fatal(err)
			}
			adv := chanmodel.NewAdversary(model, seed)
			res, err := sim.RunProtocol(spec, input(4, 4), model.Kind(), adv,
				sim.Config{MaxSteps: 20000, StopWhenComplete: true})
			if err != nil {
				t.Fatalf("%s seed %d: %v", proto, seed, err)
			}
			if res.SafetyViolation != nil {
				t.Errorf("%s seed %d: safety violation: %v", proto, seed, res.SafetyViolation)
			}
		}
	}
}

// TestAdversaryRealizedMatchesSchedule pins the sim half of the
// cross-realization contract: the decision stream the adversary
// actually consumed is byte-identical to the model's reference
// schedule for the same seed.
func TestAdversaryRealizedMatchesSchedule(t *testing.T) {
	for _, ms := range []string{"iid-dup(p=0.3)", "iid-loss(p=0.25)", "k-del(k=2,n=8)"} {
		model := chanmodel.MustParse(ms)
		// One adversary across sequential runs: its schedule is a single
		// continuous stream, so the realized decisions accumulate.
		adv := chanmodel.NewAdversary(model, 99)
		adv.RecordRealized(1 << 20)
		for run := 0; run < 16; run++ {
			spec, err := registry.Protocol("alpha", registry.Params{M: 5})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sim.RunProtocol(spec, input(5, 5), model.Kind(), adv,
				sim.Config{MaxSteps: 40000, StopWhenComplete: true}); err != nil {
				t.Fatal(err)
			}
			adv.Reset()
		}
		got := adv.Realized()
		if len(got) < 64 {
			t.Fatalf("%s: only %d decisions realized, too few to pin", ms, len(got))
		}
		want := chanmodel.ScheduleBytes(model, 99, len(got))
		if !bytes.Equal(got, want) {
			t.Errorf("%s: realized decision stream diverges from reference schedule\n got %q\nwant %q",
				ms, got, want)
		}
	}
}

// TestAdversaryDeterministic pins that equal (model, seed) pairs
// produce identical runs end to end.
func TestAdversaryDeterministic(t *testing.T) {
	model := chanmodel.MustParse("ge(pgb=0.1,pbg=0.4,lg=0.02,lb=0.8)")
	run := func() (int, string) {
		spec, err := registry.Protocol("alpha", registry.Params{M: 4})
		if err != nil {
			t.Fatal(err)
		}
		adv := chanmodel.NewAdversary(model, 7)
		res, err := sim.RunProtocol(spec, input(4, 4), channel.KindDel, adv,
			sim.Config{MaxSteps: 40000, StopWhenComplete: true})
		if err != nil {
			t.Fatal(err)
		}
		return res.Steps, res.Output.String()
	}
	s1, o1 := run()
	s2, o2 := run()
	if s1 != s2 || o1 != o2 {
		t.Errorf("same (model, seed) diverged: (%d, %s) vs (%d, %s)", s1, o1, s2, o2)
	}
}
