package chanmodel

import (
	"bytes"
	"math"
	"testing"

	"seqtx/internal/channel"
)

// drain pulls n decisions and tallies them.
func drain(m Model, seed int64, n int) (pass, drop, dup int) {
	s := m.Schedule(seed)
	for i := 0; i < n; i++ {
		switch s.Next() {
		case Pass:
			pass++
		case Drop:
			drop++
		case Dup:
			dup++
		}
	}
	return
}

// binomialCI returns a 5-sigma half-width for an empirical rate with n
// samples at true rate p — wide enough that a correct generator passes
// with overwhelming probability on any fixed seed, tight enough that a
// swapped or constant rate fails.
func binomialCI(p float64, n int) float64 {
	return 5 * math.Sqrt(p*(1-p)/float64(n))
}

func TestEmpiricalRates(t *testing.T) {
	const n = 200_000
	cases := []struct {
		spec string
		// inflate widens the CI for models with correlated decisions
		// (Gilbert–Elliott's Markov chain); 1 for i.i.d. families.
		inflate float64
	}{
		{"iid-dup(p=0.25)", 1},
		{"iid-dup(p=0.02)", 1},
		{"iid-loss(p=0.1)", 1},
		{"iid-loss(p=0.5)", 1},
		{"k-del(k=2,n=16)", 1},
		{"k-del(k=1,n=4)", 1},
		{"ge(pgb=0.05,pbg=0.5,lg=0.01,lb=0.5)", 4},
		{"ge(pgb=0.1,pbg=0.3,lg=0,lb=1)", 4},
	}
	for _, tc := range cases {
		m := MustParse(tc.spec)
		for seed := int64(1); seed <= 3; seed++ {
			pass, drop, dup := drain(m, seed, n)
			if pass+drop+dup != n {
				t.Fatalf("%s seed %d: decisions do not sum: %d+%d+%d != %d",
					tc.spec, seed, pass, drop, dup, n)
			}
			gotDrop := float64(drop) / n
			gotDup := float64(dup) / n
			if ci := tc.inflate * binomialCI(m.DropRate(), n); math.Abs(gotDrop-m.DropRate()) > ci {
				t.Errorf("%s seed %d: empirical drop rate %.5f, want %.5f ± %.5f",
					tc.spec, seed, gotDrop, m.DropRate(), ci)
			}
			if ci := tc.inflate * binomialCI(m.DupRate(), n); math.Abs(gotDup-m.DupRate()) > ci {
				t.Errorf("%s seed %d: empirical dup rate %.5f, want %.5f ± %.5f",
					tc.spec, seed, gotDup, m.DupRate(), ci)
			}
		}
	}
}

func TestScheduleSeedDeterminism(t *testing.T) {
	specs := []string{
		"iid-dup(p=0.25)",
		"iid-loss(p=0.1)",
		"k-del(k=2,n=16)",
		"ge(pgb=0.05,pbg=0.5,lg=0.01,lb=0.5)",
	}
	const n = 4096
	for _, spec := range specs {
		m := MustParse(spec)
		a := ScheduleBytes(m, 42, n)
		b := ScheduleBytes(m, 42, n)
		if !bytes.Equal(a, b) {
			t.Errorf("%s: equal seeds produced different schedules", spec)
		}
		// A freshly parsed equal model must agree too (schedules are a
		// function of the value, not the instance).
		c := ScheduleBytes(MustParse(spec), 42, n)
		if !bytes.Equal(a, c) {
			t.Errorf("%s: equal models produced different schedules", spec)
		}
		d := ScheduleBytes(m, 43, n)
		if bytes.Equal(a, d) {
			t.Errorf("%s: different seeds produced identical schedules", spec)
		}
	}
}

func TestKDelExactPerBlock(t *testing.T) {
	for _, tc := range []struct{ k, n int }{{2, 16}, {1, 4}, {0, 8}, {4, 4}} {
		m, err := NewKDel(tc.k, tc.n)
		if err != nil {
			t.Fatalf("NewKDel(%d,%d): %v", tc.k, tc.n, err)
		}
		s := m.Schedule(7)
		const blocks = 500
		for b := 0; b < blocks; b++ {
			drops := 0
			for i := 0; i < tc.n; i++ {
				if s.Next() == Drop {
					drops++
				}
			}
			if drops != tc.k {
				t.Fatalf("k-del(k=%d,n=%d): block %d dropped %d symbols, want exactly %d",
					tc.k, tc.n, b, drops, tc.k)
			}
		}
	}
}

// TestKDelPositionsUniform checks the deleted positions are spread over
// the block, not pinned to a fixed offset.
func TestKDelPositionsUniform(t *testing.T) {
	m := MustParse("k-del(k=1,n=8)").(KDel)
	s := m.Schedule(11)
	const blocks = 8000
	hits := make([]int, m.N)
	for b := 0; b < blocks; b++ {
		for i := 0; i < m.N; i++ {
			if s.Next() == Drop {
				hits[i]++
			}
		}
	}
	want := float64(blocks) / float64(m.N)
	ci := 5 * math.Sqrt(want*(1-1/float64(m.N)))
	for i, h := range hits {
		if math.Abs(float64(h)-want) > ci {
			t.Errorf("k-del position %d dropped %d times, want %.0f ± %.0f", i, h, want, ci)
		}
	}
}

func TestGEBurstiness(t *testing.T) {
	// With lg=0 and lb=1 every drop is a bad-state symbol, so mean burst
	// length of consecutive drops ≈ mean bad-state dwell time 1/pbg.
	m := MustParse("ge(pgb=0.05,pbg=0.25,lg=0,lb=1)")
	s := m.Schedule(3)
	const n = 400_000
	bursts, dropTotal := 0, 0
	inBurst := false
	for i := 0; i < n; i++ {
		if s.Next() == Drop {
			dropTotal++
			if !inBurst {
				bursts++
				inBurst = true
			}
		} else {
			inBurst = false
		}
	}
	if bursts == 0 {
		t.Fatal("ge produced no drop bursts")
	}
	mean := float64(dropTotal) / float64(bursts)
	// Dwell time is geometric with mean 1/pbg = 4; allow a wide band.
	if mean < 2.5 || mean > 6 {
		t.Errorf("ge mean burst length %.2f, want ≈ 4 (1/pbg)", mean)
	}
}

func TestModelValidation(t *testing.T) {
	bad := []func() error{
		func() error { _, err := NewIIDDup(-0.1); return err },
		func() error { _, err := NewIIDDup(1.5); return err },
		func() error { _, err := NewIIDDup(math.NaN()); return err },
		func() error { _, err := NewIIDLoss(2); return err },
		func() error { _, err := NewKDel(5, 4); return err },
		func() error { _, err := NewKDel(-1, 4); return err },
		func() error { _, err := NewKDel(1, 0); return err },
		func() error { _, err := NewGE(0.5, 0, 0, 1); return err },
		func() error { _, err := NewGE(math.NaN(), 0.5, 0, 0); return err },
	}
	for i, f := range bad {
		if f() == nil {
			t.Errorf("bad constructor case %d: want error, got nil", i)
		}
	}
}

func TestCompatible(t *testing.T) {
	dup := MustParse("iid-dup(p=0.25)")
	loss := MustParse("iid-loss(p=0.1)")
	if err := Compatible(dup, channel.KindDup); err != nil {
		t.Errorf("iid-dup on dup channel: %v", err)
	}
	if err := Compatible(dup, channel.KindDel); err == nil {
		t.Error("iid-dup on del channel: want error (del cannot duplicate)")
	}
	if err := Compatible(loss, channel.KindDel); err != nil {
		t.Errorf("iid-loss on del channel: %v", err)
	}
	if err := Compatible(loss, channel.KindDup); err == nil {
		t.Error("iid-loss on dup channel: want error (dup cannot delete)")
	}
	if err := Compatible(loss, channel.KindDupDel); err != nil {
		t.Errorf("iid-loss on dup+del channel: %v", err)
	}
}

func TestDropDupRates(t *testing.T) {
	// GE stationary rate: πB = pgb/(pgb+pbg).
	ge := MustParse("ge(pgb=0.1,pbg=0.3,lg=0,lb=1)")
	want := 0.1 / (0.1 + 0.3)
	if got := ge.DropRate(); math.Abs(got-want) > 1e-12 {
		t.Errorf("ge stationary drop rate %.6f, want %.6f", got, want)
	}
	// Degenerate never-transitioning chain.
	flat := MustParse("ge(pgb=0,pbg=0,lg=0.2,lb=0.9)")
	if got := flat.DropRate(); got != 0.2 {
		t.Errorf("ge(pgb=0,pbg=0) drop rate %.3f, want lg=0.2", got)
	}
	if got := MustParse("k-del(k=2,n=16)").DropRate(); got != 0.125 {
		t.Errorf("k-del(2,16) drop rate %.4f, want 0.125", got)
	}
}
