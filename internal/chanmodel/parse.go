package chanmodel

import (
	"fmt"
	"strconv"
	"strings"
)

// Families lists the model family names, sorted.
func Families() []string {
	return []string{"ge", "iid-dup", "iid-loss", "k-del"}
}

// SpecSyntax is the one-line grammar shown in CLI usage strings.
const SpecSyntax = "iid-dup(p=0.25) | iid-loss(p=0.1) | k-del(k=2,n=16) | ge(pgb=0.05,pbg=0.5,lg=0.01,lb=0.5)"

// Parse builds a model from its spec string: a family name followed by a
// parenthesized, comma-separated key=value list. Whitespace around
// tokens is ignored. Every family's keys are mandatory except ge's,
// which default to the classic bursty profile (pgb=0.05, pbg=0.5,
// lg=0.01, lb=0.5) for the keys left out.
func Parse(spec string) (Model, error) {
	s := strings.TrimSpace(spec)
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return nil, fmt.Errorf("chanmodel: spec %q: want family(key=value,...), e.g. %s", spec, SpecSyntax)
	}
	family := strings.TrimSpace(s[:open])
	kv, err := parseArgs(s[open+1 : len(s)-1])
	if err != nil {
		return nil, fmt.Errorf("chanmodel: spec %q: %w", spec, err)
	}
	used := func(keys ...string) error {
		for k := range kv {
			found := false
			for _, want := range keys {
				if k == want {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("chanmodel: spec %q: unknown key %q (want %s)",
					spec, k, strings.Join(keys, ", "))
			}
		}
		return nil
	}
	switch family {
	case "iid-dup":
		if err := used("p"); err != nil {
			return nil, err
		}
		p, err := needFloat(kv, "p", spec)
		if err != nil {
			return nil, err
		}
		m, err := NewIIDDup(p)
		if err != nil {
			return nil, err
		}
		return m, nil
	case "iid-loss":
		if err := used("p"); err != nil {
			return nil, err
		}
		p, err := needFloat(kv, "p", spec)
		if err != nil {
			return nil, err
		}
		m, err := NewIIDLoss(p)
		if err != nil {
			return nil, err
		}
		return m, nil
	case "k-del":
		if err := used("k", "n"); err != nil {
			return nil, err
		}
		k, err := needInt(kv, "k", spec)
		if err != nil {
			return nil, err
		}
		n, err := needInt(kv, "n", spec)
		if err != nil {
			return nil, err
		}
		m, err := NewKDel(k, n)
		if err != nil {
			return nil, err
		}
		return m, nil
	case "ge":
		if err := used("pgb", "pbg", "lg", "lb"); err != nil {
			return nil, err
		}
		get := func(key string, def float64) (float64, error) {
			if _, ok := kv[key]; !ok {
				return def, nil
			}
			return needFloat(kv, key, spec)
		}
		pgb, err := get("pgb", 0.05)
		if err != nil {
			return nil, err
		}
		pbg, err := get("pbg", 0.5)
		if err != nil {
			return nil, err
		}
		lg, err := get("lg", 0.01)
		if err != nil {
			return nil, err
		}
		lb, err := get("lb", 0.5)
		if err != nil {
			return nil, err
		}
		m, err := NewGE(pgb, pbg, lg, lb)
		if err != nil {
			return nil, err
		}
		return m, nil
	default:
		return nil, fmt.Errorf("chanmodel: spec %q: unknown family %q (have %s)",
			spec, family, strings.Join(Families(), ", "))
	}
}

// MustParse is Parse for known-good specs; it panics otherwise.
// Intended for tests and default grids.
func MustParse(spec string) Model {
	m, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return m
}

// ParseList parses a comma-separated list of specs. Because specs
// themselves contain commas inside parentheses, the list is split at
// depth-zero commas only: "iid-loss(p=0.1),k-del(k=2,n=16)" is two
// specs.
func ParseList(list string) ([]Model, error) {
	var models []Model
	for _, part := range SplitSpecs(list) {
		m, err := Parse(part)
		if err != nil {
			return nil, err
		}
		models = append(models, m)
	}
	if len(models) == 0 {
		return nil, fmt.Errorf("chanmodel: empty model list")
	}
	return models, nil
}

// SplitSpecs splits a comma-separated spec list at depth-zero commas,
// trimming whitespace and dropping empty entries.
func SplitSpecs(list string) []string {
	var out []string
	depth, start := 0, 0
	flush := func(end int) {
		if part := strings.TrimSpace(list[start:end]); part != "" {
			out = append(out, part)
		}
	}
	for i := 0; i < len(list); i++ {
		switch list[i] {
		case '(':
			depth++
		case ')':
			if depth > 0 {
				depth--
			}
		case ',':
			if depth == 0 {
				flush(i)
				start = i + 1
			}
		}
	}
	flush(len(list))
	return out
}

// parseArgs parses "k1=v1,k2=v2" into a map, rejecting duplicates.
func parseArgs(args string) (map[string]string, error) {
	kv := make(map[string]string)
	for _, part := range strings.Split(args, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			return nil, fmt.Errorf("argument %q is not key=value", part)
		}
		key := strings.TrimSpace(part[:eq])
		val := strings.TrimSpace(part[eq+1:])
		if key == "" || val == "" {
			return nil, fmt.Errorf("argument %q has an empty key or value", part)
		}
		if _, dup := kv[key]; dup {
			return nil, fmt.Errorf("duplicate key %q", key)
		}
		kv[key] = val
	}
	return kv, nil
}

func needFloat(kv map[string]string, key, spec string) (float64, error) {
	raw, ok := kv[key]
	if !ok {
		return 0, fmt.Errorf("chanmodel: spec %q: missing key %q", spec, key)
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, fmt.Errorf("chanmodel: spec %q: key %q: %v", spec, key, err)
	}
	return v, nil
}

func needInt(kv map[string]string, key, spec string) (int, error) {
	raw, ok := kv[key]
	if !ok {
		return 0, fmt.Errorf("chanmodel: spec %q: missing key %q", spec, key)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("chanmodel: spec %q: key %q: %v", spec, key, err)
	}
	return v, nil
}
