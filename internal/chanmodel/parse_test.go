package chanmodel

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	specs := []string{
		"iid-dup(p=0.25)",
		"iid-dup(p=0)",
		"iid-dup(p=1)",
		"iid-loss(p=0.1)",
		"k-del(k=2,n=16)",
		"k-del(k=0,n=4)",
		"ge(pgb=0.05,pbg=0.5,lg=0.01,lb=0.5)",
	}
	for _, spec := range specs {
		m, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if got := m.Spec(); got != spec {
			t.Errorf("Parse(%q).Spec() = %q, not canonical", spec, got)
		}
		again, err := Parse(m.Spec())
		if err != nil {
			t.Fatalf("Parse(Spec()) of %q: %v", spec, err)
		}
		if !reflect.DeepEqual(m, again) {
			t.Errorf("%q: Parse(Spec()) != original model: %#v vs %#v", spec, again, m)
		}
	}
}

func TestParseTolerantForms(t *testing.T) {
	cases := map[string]string{
		" iid-dup( p = 0.25 ) ":  "iid-dup(p=0.25)",
		"k-del( n=16 , k=2 )":    "k-del(k=2,n=16)", // key order free
		"ge()":                   "ge(pgb=0.05,pbg=0.5,lg=0.01,lb=0.5)",
		"ge(lb=0.9)":             "ge(pgb=0.05,pbg=0.5,lg=0.01,lb=0.9)",
		"iid-loss(p=1e-1)":       "iid-loss(p=0.1)",
	}
	for in, want := range cases {
		m, err := Parse(in)
		if err != nil {
			t.Errorf("Parse(%q): %v", in, err)
			continue
		}
		if got := m.Spec(); got != want {
			t.Errorf("Parse(%q).Spec() = %q, want %q", in, got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"iid-dup",
		"iid-dup(",
		"iid-dup)",
		"iid-dup(p=0.25",
		"bogus(p=0.5)",
		"iid-dup(q=0.5)",
		"iid-dup(p=0.5,p=0.6)",
		"iid-dup(p=)",
		"iid-dup(=0.5)",
		"iid-dup(p=zebra)",
		"iid-dup(p=1.5)",
		"iid-dup(p=NaN)",
		"k-del(k=2)",
		"k-del(n=8)",
		"k-del(k=2.5,n=8)",
		"k-del(k=9,n=8)",
		"ge(pgb=2)",
		"ge(zzz=1)",
		"iid-dup(p=0.5) trailing",
	}
	for _, spec := range bad {
		if m, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): want error, got %v", spec, m)
		}
	}
}

func TestParseList(t *testing.T) {
	models, err := ParseList("iid-loss(p=0.1), k-del(k=2,n=16),ge(lb=0.9)")
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 3 {
		t.Fatalf("ParseList: got %d models, want 3", len(models))
	}
	if models[1].Family() != "k-del" {
		t.Errorf("ParseList order: models[1] = %s, want k-del", models[1].Spec())
	}
	if _, err := ParseList(""); err == nil {
		t.Error("ParseList(\"\"): want error")
	}
	if _, err := ParseList("iid-loss(p=0.1),nope(x=1)"); err == nil {
		t.Error("ParseList with a bad entry: want error")
	}
}

func TestSplitSpecs(t *testing.T) {
	got := SplitSpecs("a(x=1,y=2), b(z=3) ,, c")
	want := []string{"a(x=1,y=2)", "b(z=3)", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SplitSpecs = %q, want %q", got, want)
	}
}

// FuzzParseSpec checks the parser never panics, and that every accepted
// spec canonicalizes to a fixed point: Parse(m.Spec()).Spec() == m.Spec().
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"iid-dup(p=0.25)",
		"iid-loss(p=0.1)",
		"k-del(k=2,n=16)",
		"ge(pgb=0.05,pbg=0.5,lg=0.01,lb=0.5)",
		"ge()",
		"k-del(k=,n=16)",
		"iid-dup(p=1e300)",
		"x(",
		"((((,,,=",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		m, err := Parse(spec)
		if err != nil {
			if m != nil {
				t.Fatalf("Parse(%q) returned both a model and an error", spec)
			}
			return
		}
		canon := m.Spec()
		again, err := Parse(canon)
		if err != nil {
			t.Fatalf("Parse(%q) accepted but canonical %q rejected: %v", spec, canon, err)
		}
		if again.Spec() != canon {
			t.Fatalf("canonical form not a fixed point: %q -> %q -> %q", spec, canon, again.Spec())
		}
		if strings.TrimSpace(m.Family()) == "" {
			t.Fatalf("Parse(%q): empty family", spec)
		}
	})
}
