package channel

import (
	"encoding/binary"
	"fmt"

	"seqtx/internal/msg"
)

// DefaultBoundedCap is the per-direction capacity used by New for
// KindBounded. It matches the stabilizing protocol's default capacity
// assumption (stab.DefaultCapacity): acceptance thresholds of c+1 are
// sound exactly when the channel never holds more than c copies.
const DefaultBoundedCap = 2

// Bounded is a reordering, deleting half of finite capacity: at most cap
// copies are in flight at once, and a Send into a full channel loses the
// new copy (a legal del-channel behaviour, forced rather than chosen).
// This is the channel model of the self-stabilization literature
// (Dolev–Dubois–Potop-Butucaru–Tixeuil, arXiv 1104.3947): stabilizing
// data-link protocols count message copies, and the counting argument
// needs "at most c stale copies can ever exist" to be a property of the
// channel, not of the schedule. Every bounded run is also a del run (the
// overflow loss is a drop the del adversary could have chosen), so safety
// on del implies safety on bounded; the converse fails — and the bounded
// model is the one where corrupted-state recovery is provable with a
// finite state space.
type Bounded struct {
	inflight  msg.Counts
	cap       int
	sentTotal int
	lost      int
}

var _ Half = (*Bounded)(nil)

// NewBounded returns an empty bounded half with the given capacity
// (values < 1 select DefaultBoundedCap).
func NewBounded(capacity int) *Bounded {
	if capacity < 1 {
		capacity = DefaultBoundedCap
	}
	return &Bounded{inflight: msg.Counts{}, cap: capacity}
}

// Kind returns KindBounded.
func (b *Bounded) Kind() Kind { return KindBounded }

// Cap returns the capacity bound.
func (b *Bounded) Cap() int { return b.cap }

// Send adds one in-flight copy of m, or loses it if the channel is full.
func (b *Bounded) Send(m msg.Msg) {
	b.sentTotal++
	if b.inflight.Total() >= b.cap {
		b.lost++
		return
	}
	b.inflight.Add(m, 1)
}

// Deliverable returns a copy of the in-flight multiset.
func (b *Bounded) Deliverable() msg.Counts { return b.inflight.Clone() }

// CanDeliver reports whether at least one copy of m is in flight.
func (b *Bounded) CanDeliver(m msg.Msg) bool { return b.inflight.Get(m) > 0 }

// Deliver consumes one in-flight copy of m.
func (b *Bounded) Deliver(m msg.Msg) error {
	if !b.CanDeliver(m) {
		return fmt.Errorf("channel: bounded: no copy of %q in flight", m)
	}
	b.inflight.Add(m, -1)
	return nil
}

// CanDrop reports whether a copy of m can be silently deleted.
func (b *Bounded) CanDrop(m msg.Msg) bool { return b.inflight.Get(m) > 0 }

// Drop silently deletes one in-flight copy of m.
func (b *Bounded) Drop(m msg.Msg) error {
	if !b.CanDeliver(m) {
		return fmt.Errorf("channel: bounded: no copy of %q in flight to drop", m)
	}
	b.inflight.Add(m, -1)
	b.lost++
	return nil
}

// SentTotal returns the number of Send calls (including overflow losses).
func (b *Bounded) SentTotal() int { return b.sentTotal }

// Lost returns how many copies were lost (overflow plus drops).
func (b *Bounded) Lost() int { return b.lost }

// Pending returns the number of copies currently in flight.
func (b *Bounded) Pending() int { return b.inflight.Total() }

// Clone returns an independent copy.
func (b *Bounded) Clone() Half {
	return &Bounded{
		inflight:  b.inflight.Clone(),
		cap:       b.cap,
		sentTotal: b.sentTotal,
		lost:      b.lost,
	}
}

// Key returns the canonical in-flight multiset plus the capacity (halves
// of different capacity behave differently on overflow).
func (b *Bounded) Key() string {
	return fmt.Sprintf("bounded(%d){%s}", b.cap, b.inflight.Key())
}

// EncodeKey appends the binary counterpart of Key.
func (b *Bounded) EncodeKey(buf []byte) []byte {
	buf = append(buf, byte(KindBounded))
	buf = binary.AppendUvarint(buf, uint64(b.cap))
	return b.inflight.EncodeKey(buf)
}
