// Package channel implements the unreliable channel models of the paper
// (§2.2): bidirectional links whose directional halves can reorder and
// duplicate messages (STP(dup)), reorder and delete messages (STP(del)),
// only reorder (a fairness-idealized del channel), or behave as a FIFO
// queue with loss and duplication (the classic data-link substrate used by
// the alternating-bit protocol, for the §5 comparisons).
//
// A Half exposes exactly the paper's dlvrble vector: for dup channels a
// 0/1 flag per message ("was mu ever sent"), for del channels the number
// of copies sent and not yet delivered. All nondeterminism (which message
// to deliver, what to drop) is exercised by the adversary in package sim;
// a Half only answers what is currently possible.
package channel

import (
	"fmt"

	"seqtx/internal/msg"
)

// Kind identifies a channel model.
type Kind int

// Channel model kinds.
const (
	// KindDup reorders and duplicates: once sent, a message can be
	// delivered any number of times and never disappears.
	KindDup Kind = iota + 1
	// KindDel reorders and deletes: each sent copy can be delivered at
	// most once, and the adversary may silently drop copies.
	KindDel
	// KindReorder only reorders: each copy is delivered exactly once,
	// eventually. (A del channel restricted to its fair behaviours.)
	KindReorder
	// KindFIFO preserves order but may lose and duplicate (the [BSW69]
	// data-link substrate; delivery is only possible from the queue head).
	KindFIFO
	// KindDupDel reorders, duplicates, AND deletes — the full fault menu
	// of the paper's introduction. Dropping erases a message type.
	KindDupDel
	// KindBounded reorders and deletes under a finite capacity: at most
	// DefaultBoundedCap copies in flight, overflow sends are lost. The
	// channel model of the self-stabilization literature (every bounded
	// run is a del run, but corrupted-state recovery is only provable
	// here, where "at most c stale copies" is a channel property).
	KindBounded
)

// String returns the conventional name of the kind.
func (k Kind) String() string {
	switch k {
	case KindDup:
		return "dup"
	case KindDel:
		return "del"
	case KindReorder:
		return "reorder"
	case KindFIFO:
		return "fifo"
	case KindDupDel:
		return "dup+del"
	case KindBounded:
		return "bounded"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Half is one direction of a bidirectional link. Implementations are
// deterministic given the operation sequence; cloning and canonical keys
// support the model checker.
type Half interface {
	// Kind returns the channel model.
	Kind() Kind
	// Send adds one copy of m to the channel.
	Send(m msg.Msg)
	// Deliverable returns the current dlvrble vector: the multiset of
	// messages the environment could deliver next. For dup halves every
	// count is 1 (delivery never exhausts); for FIFO halves only the head
	// appears. The result is a fresh copy.
	Deliverable() msg.Counts
	// CanDeliver reports whether m could be delivered now.
	CanDeliver(m msg.Msg) bool
	// Deliver removes (where applicable) and returns confirmation that one
	// copy of m was handed to the recipient. It is an error if
	// !CanDeliver(m).
	Deliver(m msg.Msg) error
	// CanDrop reports whether the model permits silently deleting a copy
	// of m now.
	CanDrop(m msg.Msg) bool
	// Drop silently deletes one copy of m. It is an error if !CanDrop(m).
	Drop(m msg.Msg) error
	// SentTotal returns the total number of Send calls so far.
	SentTotal() int
	// Clone returns an independent deep copy.
	Clone() Half
	// Key returns a canonical encoding of the half's state, equal for
	// behaviourally identical states.
	Key() string
	// EncodeKey appends a canonical, self-delimiting binary encoding of
	// the half's state to buf and returns the extended slice. It must
	// induce exactly the same equivalence on states as Key — equal bytes
	// iff equal Key strings — while allocating nothing beyond buf growth.
	// This is the model checker's fast path; Key stays as the
	// human-readable debug view.
	EncodeKey(buf []byte) []byte
}

// compile-time conformance checks live with each implementation.

// New returns an empty half of the given kind with default options
// (FIFO halves allow both loss and duplication).
func New(k Kind) (Half, error) {
	switch k {
	case KindDup:
		return NewDup(), nil
	case KindDel:
		return NewDel(), nil
	case KindReorder:
		return NewReorder(), nil
	case KindFIFO:
		return NewFIFO(true, true), nil
	case KindDupDel:
		return NewDupDel(), nil
	case KindBounded:
		return NewBounded(DefaultBoundedCap), nil
	default:
		return nil, fmt.Errorf("channel: unknown kind %d", int(k))
	}
}
