package channel

import (
	"testing"

	"seqtx/internal/msg"
)

func TestKindString(t *testing.T) {
	t.Parallel()
	tests := []struct {
		k    Kind
		want string
	}{
		{KindDup, "dup"},
		{KindDel, "del"},
		{KindReorder, "reorder"},
		{KindFIFO, "fifo"},
		{Kind(99), "Kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(tt.k), got, tt.want)
		}
	}
}

func TestNewKnownKinds(t *testing.T) {
	t.Parallel()
	for _, k := range []Kind{KindDup, KindDel, KindReorder, KindFIFO} {
		h, err := New(k)
		if err != nil {
			t.Fatalf("New(%v): %v", k, err)
		}
		if h.Kind() != k {
			t.Errorf("New(%v).Kind() = %v", k, h.Kind())
		}
	}
	if _, err := New(Kind(0)); err == nil {
		t.Error("New(0) succeeded")
	}
}

func TestDupSemantics(t *testing.T) {
	t.Parallel()
	d := NewDup()
	if d.CanDeliver("a") {
		t.Error("empty dup can deliver")
	}
	d.Send("a")
	d.Send("a") // duplicate send collapses into the set
	d.Send("b")
	if got := d.SentTotal(); got != 3 {
		t.Errorf("SentTotal() = %d, want 3", got)
	}
	// Delivery never exhausts: deliver "a" many times.
	for i := 0; i < 5; i++ {
		if err := d.Deliver("a"); err != nil {
			t.Fatalf("Deliver #%d: %v", i, err)
		}
	}
	if !d.CanDeliver("a") || !d.CanDeliver("b") {
		t.Error("dup lost deliverability after deliveries")
	}
	dv := d.Deliverable()
	if dv.Get("a") != 1 || dv.Get("b") != 1 {
		t.Errorf("Deliverable() = %v, want 0/1 flags", dv)
	}
	if err := d.Deliver("c"); err == nil {
		t.Error("delivered a never-sent message")
	}
	if d.CanDrop("a") {
		t.Error("dup can drop")
	}
	if err := d.Drop("a"); err == nil {
		t.Error("dropped on a dup channel")
	}
}

func TestDupCloneAndKey(t *testing.T) {
	t.Parallel()
	d := NewDup()
	d.Send("b")
	d.Send("a")
	c := d.Clone()
	c.Send("z")
	if d.CanDeliver("z") {
		t.Error("Clone shares state")
	}
	d2 := NewDup()
	d2.Send("a")
	d2.Send("b")
	if d.Key() != d2.Key() {
		t.Errorf("keys differ for same sent-set: %q vs %q", d.Key(), d2.Key())
	}
}

func TestDelSemantics(t *testing.T) {
	t.Parallel()
	d := NewDel()
	d.Send("a")
	d.Send("a")
	if got := d.Deliverable().Get("a"); got != 2 {
		t.Errorf("two copies in flight, Deliverable = %d", got)
	}
	if err := d.Deliver("a"); err != nil {
		t.Fatal(err)
	}
	if got := d.Deliverable().Get("a"); got != 1 {
		t.Errorf("after one delivery, in flight = %d, want 1", got)
	}
	if err := d.Drop("a"); err != nil {
		t.Fatal(err)
	}
	if d.CanDeliver("a") {
		t.Error("copy deliverable after deliver+drop of both copies")
	}
	if err := d.Deliver("a"); err == nil {
		t.Error("delivered with zero in flight (creation!)")
	}
	if d.Dropped() != 1 {
		t.Errorf("Dropped() = %d, want 1", d.Dropped())
	}
	if d.Kind() != KindDel {
		t.Errorf("Kind() = %v", d.Kind())
	}
}

func TestReorderForbidsDrop(t *testing.T) {
	t.Parallel()
	r := NewReorder()
	r.Send("a")
	if r.CanDrop("a") {
		t.Error("reorder can drop")
	}
	if err := r.Drop("a"); err == nil {
		t.Error("dropped on a reorder channel")
	}
	if r.Kind() != KindReorder {
		t.Errorf("Kind() = %v", r.Kind())
	}
	if err := r.Deliver("a"); err != nil {
		t.Fatal(err)
	}
	if r.Pending() != 0 {
		t.Errorf("Pending() = %d, want 0", r.Pending())
	}
}

func TestDelCloneIndependent(t *testing.T) {
	t.Parallel()
	d := NewDel()
	d.Send("a")
	c := d.Clone().(*Del)
	if err := c.Deliver("a"); err != nil {
		t.Fatal(err)
	}
	if !d.CanDeliver("a") {
		t.Error("Clone shares in-flight multiset")
	}
	if d.Key() == c.Key() {
		t.Error("different states share key")
	}
}

func TestFIFOOrdering(t *testing.T) {
	t.Parallel()
	f := NewFIFO(true, true)
	f.Send("a")
	f.Send("b")
	if f.CanDeliver("b") {
		t.Error("non-head deliverable")
	}
	if err := f.Deliver("b"); err == nil {
		t.Error("delivered out of order")
	}
	if err := f.Deliver("a"); err != nil {
		t.Fatal(err)
	}
	if !f.CanDeliver("b") {
		t.Error("head not deliverable after dequeue")
	}
	if f.Len() != 1 {
		t.Errorf("Len() = %d, want 1", f.Len())
	}
}

func TestFIFODuplication(t *testing.T) {
	t.Parallel()
	f := NewFIFO(false, true)
	f.Send("a")
	if err := f.DeliverKeep("a"); err != nil {
		t.Fatal(err)
	}
	if !f.CanDeliver("a") {
		t.Error("DeliverKeep consumed the head")
	}
	if err := f.Deliver("a"); err != nil {
		t.Fatal(err)
	}
	if f.Len() != 0 {
		t.Errorf("Len() = %d, want 0", f.Len())
	}
	noDup := NewFIFO(true, false)
	noDup.Send("a")
	if err := noDup.DeliverKeep("a"); err == nil {
		t.Error("DeliverKeep succeeded with duplication disabled")
	}
}

func TestFIFOLoss(t *testing.T) {
	t.Parallel()
	f := NewFIFO(true, false)
	f.Send("a")
	f.Send("b")
	if err := f.Drop("a"); err != nil {
		t.Fatal(err)
	}
	if !f.CanDeliver("b") {
		t.Error("head after drop is not b")
	}
	if f.Dropped() != 1 {
		t.Errorf("Dropped() = %d", f.Dropped())
	}
	noLoss := NewFIFO(false, true)
	noLoss.Send("x")
	if err := noLoss.Drop("x"); err == nil {
		t.Error("Drop succeeded with loss disabled")
	}
	if noLoss.CanDrop("x") {
		t.Error("CanDrop true with loss disabled")
	}
}

func TestFIFOCloneIndependent(t *testing.T) {
	t.Parallel()
	f := NewFIFO(true, true)
	f.Send("a")
	c := f.Clone().(*FIFO)
	c.Send("b")
	if f.Len() != 1 || c.Len() != 2 {
		t.Errorf("lens = %d, %d; want 1, 2", f.Len(), c.Len())
	}
	if f.Key() == c.Key() {
		t.Error("different queues share key")
	}
}

func TestLinkAlphabetEnforcement(t *testing.T) {
	t.Parallel()
	l, err := NewLinkOfKind(KindDup)
	if err != nil {
		t.Fatal(err)
	}
	l.EnforceAlphabets(msg.MustNewAlphabet("a", "b"), msg.MustNewAlphabet("ack"))
	if err := l.Send(SToR, "a"); err != nil {
		t.Fatal(err)
	}
	if err := l.Send(SToR, "z"); err == nil {
		t.Error("sender escaped M^S")
	}
	if err := l.Send(RToS, "ack"); err != nil {
		t.Fatal(err)
	}
	if err := l.Send(RToS, "a"); err == nil {
		t.Error("receiver escaped M^R")
	}
	if size, finite := l.SenderAlphabetSize(); !finite || size != 2 {
		t.Errorf("SenderAlphabetSize() = %d,%v; want 2,true", size, finite)
	}
}

func TestLinkUnboundedAlphabet(t *testing.T) {
	t.Parallel()
	l, err := NewLinkOfKind(KindDel)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Send(SToR, "seq:123456"); err != nil {
		t.Fatal(err)
	}
	if _, finite := l.SenderAlphabetSize(); finite {
		t.Error("unenforced link reports finite alphabet")
	}
}

func TestLinkCloneAndKey(t *testing.T) {
	t.Parallel()
	l, err := NewLinkOfKind(KindDel)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Send(SToR, "a"); err != nil {
		t.Fatal(err)
	}
	c := l.Clone()
	if err := c.Send(RToS, "k"); err != nil {
		t.Fatal(err)
	}
	if l.Half(RToS).CanDeliver("k") {
		t.Error("clone shares halves")
	}
	if l.Key() == c.Key() {
		t.Error("different link states share key")
	}
	if err := l.Send(Dir(9), "a"); err == nil {
		t.Error("bad direction accepted")
	}
	if got := SToR.String(); got != "S→R" {
		t.Errorf("SToR.String() = %q", got)
	}
	if got := RToS.String(); got != "R→S" {
		t.Errorf("RToS.String() = %q", got)
	}
	if got := Dir(9).String(); got != "Dir(9)" {
		t.Errorf("Dir(9).String() = %q", got)
	}
}

func TestDelNoCreationProperty(t *testing.T) {
	t.Parallel()
	// Invariant: deliveries+drops never exceed sends per message.
	d := NewDel()
	sent := map[msg.Msg]int{}
	out := map[msg.Msg]int{}
	ops := []struct {
		op string
		m  msg.Msg
	}{
		{"send", "a"}, {"send", "b"}, {"deliver", "a"}, {"send", "a"},
		{"drop", "a"}, {"deliver", "b"}, {"deliver", "a"}, {"drop", "b"},
	}
	for _, o := range ops {
		switch o.op {
		case "send":
			d.Send(o.m)
			sent[o.m]++
		case "deliver":
			if d.CanDeliver(o.m) {
				if err := d.Deliver(o.m); err != nil {
					t.Fatal(err)
				}
				out[o.m]++
			}
		case "drop":
			if d.CanDrop(o.m) {
				if err := d.Drop(o.m); err != nil {
					t.Fatal(err)
				}
				out[o.m]++
			}
		}
		for m, n := range out {
			if n > sent[m] {
				t.Fatalf("message %q: out %d > sent %d", m, n, sent[m])
			}
		}
	}
}

func TestDupDelSemantics(t *testing.T) {
	t.Parallel()
	d := NewDupDel()
	if d.Kind() != KindDupDel {
		t.Fatalf("Kind() = %v", d.Kind())
	}
	d.Send("a")
	// Duplication still works.
	for i := 0; i < 3; i++ {
		if err := d.Deliver("a"); err != nil {
			t.Fatal(err)
		}
	}
	// Deletion erases the type.
	if !d.CanDrop("a") {
		t.Fatal("CanDrop = false")
	}
	if err := d.Drop("a"); err != nil {
		t.Fatal(err)
	}
	if d.CanDeliver("a") {
		t.Error("erased type still deliverable")
	}
	if err := d.Drop("a"); err == nil {
		t.Error("dropped an absent type")
	}
	// Resending restores deliverability.
	d.Send("a")
	if !d.CanDeliver("a") {
		t.Error("resent type not deliverable")
	}
	if got := d.Dropped(); got != 1 {
		t.Errorf("Dropped() = %d", got)
	}
	// Clone independence and distinct kind keys.
	c := d.Clone()
	if err := c.Drop("a"); err != nil {
		t.Fatal(err)
	}
	if !d.CanDeliver("a") {
		t.Error("clone shares sent-set")
	}
	pure := NewDup()
	pure.Send("a")
	if pure.Key() == d.Key() {
		t.Error("dup and dup+del halves share key")
	}
}

func TestNewKindDupDel(t *testing.T) {
	t.Parallel()
	h, err := New(KindDupDel)
	if err != nil {
		t.Fatal(err)
	}
	if h.Kind() != KindDupDel {
		t.Errorf("Kind() = %v", h.Kind())
	}
	if KindDupDel.String() != "dup+del" {
		t.Errorf("String() = %q", KindDupDel.String())
	}
}
