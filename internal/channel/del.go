package channel

import (
	"fmt"

	"seqtx/internal/msg"
)

// Del is a reordering, deleting half: the channel holds a multiset of
// in-flight copies (the paper's del dlvrble vector: copies sent and not
// yet delivered, §2.2). Delivery consumes a copy; the adversary may also
// silently drop copies. It cannot duplicate or create messages, which is
// what makes counting-based protocols sound: the receiver's received
// multiset is always a sub-multiset of what was actually sent.
type Del struct {
	inflight  msg.Counts
	allowDrop bool
	sentTotal int
	dropped   int
}

var _ Half = (*Del)(nil)

// NewDel returns an empty del half (drops allowed).
func NewDel() *Del {
	return &Del{inflight: msg.Counts{}, allowDrop: true}
}

// NewReorder returns an empty reorder-only half: a del half whose copies
// cannot be dropped, so every copy is delivered exactly once. This is the
// restriction of a del channel to its finite-delay-fair behaviours.
func NewReorder() *Del {
	return &Del{inflight: msg.Counts{}}
}

// Kind returns KindDel or KindReorder depending on drop permission.
func (d *Del) Kind() Kind {
	if d.allowDrop {
		return KindDel
	}
	return KindReorder
}

// Send adds one in-flight copy of m.
func (d *Del) Send(m msg.Msg) {
	d.inflight.Add(m, 1)
	d.sentTotal++
}

// Deliverable returns a copy of the in-flight multiset.
func (d *Del) Deliverable() msg.Counts { return d.inflight.Clone() }

// CanDeliver reports whether at least one copy of m is in flight.
func (d *Del) CanDeliver(m msg.Msg) bool { return d.inflight.Get(m) > 0 }

// Deliver consumes one in-flight copy of m.
func (d *Del) Deliver(m msg.Msg) error {
	if !d.CanDeliver(m) {
		return fmt.Errorf("channel: %s: no copy of %q in flight", d.Kind(), m)
	}
	d.inflight.Add(m, -1)
	return nil
}

// CanDrop reports whether the model allows silently deleting a copy of m.
func (d *Del) CanDrop(m msg.Msg) bool { return d.allowDrop && d.inflight.Get(m) > 0 }

// Drop silently deletes one in-flight copy of m.
func (d *Del) Drop(m msg.Msg) error {
	if !d.allowDrop {
		return fmt.Errorf("channel: reorder channels cannot delete messages (%q)", m)
	}
	if !d.CanDeliver(m) {
		return fmt.Errorf("channel: del: no copy of %q in flight to drop", m)
	}
	d.inflight.Add(m, -1)
	d.dropped++
	return nil
}

// SentTotal returns the number of Send calls.
func (d *Del) SentTotal() int { return d.sentTotal }

// Dropped returns how many copies were dropped so far.
func (d *Del) Dropped() int { return d.dropped }

// Pending returns the number of copies currently in flight.
func (d *Del) Pending() int { return d.inflight.Total() }

// Clone returns an independent copy.
func (d *Del) Clone() Half {
	return &Del{
		inflight:  d.inflight.Clone(),
		allowDrop: d.allowDrop,
		sentTotal: d.sentTotal,
		dropped:   d.dropped,
	}
}

// Key returns the canonical in-flight multiset. Totals are excluded: two
// halves with equal in-flight multisets behave identically forever.
func (d *Del) Key() string {
	return d.Kind().String() + "{" + d.inflight.Key() + "}"
}

// EncodeKey appends the binary counterpart of Key: the kind tag and the
// canonical in-flight multiset.
func (d *Del) EncodeKey(buf []byte) []byte {
	buf = append(buf, byte(d.Kind()))
	return d.inflight.EncodeKey(buf)
}
