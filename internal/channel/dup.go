package channel

import (
	"fmt"
	"sort"
	"strings"

	"seqtx/internal/msg"
)

// Dup is a reordering, duplicating half: the deliverable set is the set of
// messages ever sent (the paper's dup dlvrble vector, §2.2), and delivery
// never removes anything — the channel can produce unboundedly many copies
// of any past message. On the pure dup channel deletion is impossible
// (Property 1c: everything sent is eventually delivered in full); the
// combined dup+del variant (NewDupDel) additionally lets the adversary
// erase a message type — "all copies deleted" — realizing the full fault
// menu of the paper's introduction (delay, reorder, lose, duplicate).
type Dup struct {
	sent      map[msg.Msg]struct{}
	allowDrop bool
	sentTotal int
	dropped   int
}

var _ Half = (*Dup)(nil)

// NewDup returns an empty dup half.
func NewDup() *Dup {
	return &Dup{sent: make(map[msg.Msg]struct{})}
}

// NewDupDel returns an empty combined half: reordering, duplication, and
// deletion all at once.
func NewDupDel() *Dup {
	return &Dup{sent: make(map[msg.Msg]struct{}), allowDrop: true}
}

// Kind returns KindDup or KindDupDel.
func (d *Dup) Kind() Kind {
	if d.allowDrop {
		return KindDupDel
	}
	return KindDup
}

// Send records that m has been sent; from now on m is deliverable forever.
func (d *Dup) Send(m msg.Msg) {
	d.sent[m] = struct{}{}
	d.sentTotal++
}

// Deliverable returns a 0/1 vector over the messages ever sent.
func (d *Dup) Deliverable() msg.Counts {
	c := make(msg.Counts, len(d.sent))
	for m := range d.sent {
		c[m] = 1
	}
	return c
}

// CanDeliver reports whether m was ever sent.
func (d *Dup) CanDeliver(m msg.Msg) bool {
	_, ok := d.sent[m]
	return ok
}

// Deliver checks deliverability; the deliverable set is unchanged
// (duplication).
func (d *Dup) Deliver(m msg.Msg) error {
	if !d.CanDeliver(m) {
		return fmt.Errorf("channel: dup: %q was never sent", m)
	}
	return nil
}

// CanDrop reports whether m can be erased: never on the pure dup half
// (§2.2 (c)); on the combined half, whenever m is currently deliverable.
func (d *Dup) CanDrop(m msg.Msg) bool { return d.allowDrop && d.CanDeliver(m) }

// Drop erases every copy of m (the deliverable set forgets the type). It
// fails on a pure dup half.
func (d *Dup) Drop(m msg.Msg) error {
	if !d.allowDrop {
		return fmt.Errorf("channel: dup channels cannot delete messages (%q)", m)
	}
	if !d.CanDeliver(m) {
		return fmt.Errorf("channel: dup+del: %q is not deliverable", m)
	}
	delete(d.sent, m)
	d.dropped++
	return nil
}

// Dropped returns how many types were erased so far.
func (d *Dup) Dropped() int { return d.dropped }

// SentTotal returns the number of Send calls.
func (d *Dup) SentTotal() int { return d.sentTotal }

// Clone returns an independent copy.
func (d *Dup) Clone() Half {
	cp := &Dup{
		sent:      make(map[msg.Msg]struct{}, len(d.sent)),
		allowDrop: d.allowDrop,
		sentTotal: d.sentTotal,
		dropped:   d.dropped,
	}
	for m := range d.sent {
		cp.sent[m] = struct{}{}
	}
	return cp
}

// Key returns the sorted sent-set. sentTotal is deliberately excluded:
// two dup halves with the same sent-set behave identically forever.
func (d *Dup) Key() string {
	msgs := make([]string, 0, len(d.sent))
	for m := range d.sent {
		msgs = append(msgs, string(m))
	}
	sort.Strings(msgs)
	return d.Kind().String() + "{" + strings.Join(msgs, ",") + "}"
}
