package channel

import (
	"encoding/binary"
	"fmt"
	"slices"
	"strings"

	"seqtx/internal/msg"
)

// Dup is a reordering, duplicating half: the deliverable set is the set of
// messages ever sent (the paper's dup dlvrble vector, §2.2), and delivery
// never removes anything — the channel can produce unboundedly many copies
// of any past message. On the pure dup channel deletion is impossible
// (Property 1c: everything sent is eventually delivered in full); the
// combined dup+del variant (NewDupDel) additionally lets the adversary
// erase a message type — "all copies deleted" — realizing the full fault
// menu of the paper's introduction (delay, reorder, lose, duplicate).
type Dup struct {
	// sent is the set of messages ever sent, kept sorted. A sorted slice
	// beats a map here: the model checker clones a half on every explored
	// transition and keys it right after, so cloning must be one copy and
	// canonical iteration must be free. Membership tests are binary
	// searches over a set bounded by the protocol alphabet size.
	sent      []msg.Msg
	allowDrop bool
	sentTotal int
	dropped   int
}

var _ Half = (*Dup)(nil)

// NewDup returns an empty dup half.
func NewDup() *Dup {
	return &Dup{}
}

// NewDupDel returns an empty combined half: reordering, duplication, and
// deletion all at once.
func NewDupDel() *Dup {
	return &Dup{allowDrop: true}
}

// Kind returns KindDup or KindDupDel.
func (d *Dup) Kind() Kind {
	if d.allowDrop {
		return KindDupDel
	}
	return KindDup
}

// Send records that m has been sent; from now on m is deliverable forever.
func (d *Dup) Send(m msg.Msg) {
	if i, ok := slices.BinarySearch(d.sent, m); !ok {
		d.sent = slices.Insert(d.sent, i, m)
	}
	d.sentTotal++
}

// Deliverable returns a 0/1 vector over the messages ever sent.
func (d *Dup) Deliverable() msg.Counts {
	c := make(msg.Counts, len(d.sent))
	for _, m := range d.sent {
		c[m] = 1
	}
	return c
}

// CanDeliver reports whether m was ever sent.
func (d *Dup) CanDeliver(m msg.Msg) bool {
	_, ok := slices.BinarySearch(d.sent, m)
	return ok
}

// Deliver checks deliverability; the deliverable set is unchanged
// (duplication).
func (d *Dup) Deliver(m msg.Msg) error {
	if !d.CanDeliver(m) {
		return fmt.Errorf("channel: dup: %q was never sent", m)
	}
	return nil
}

// CanDrop reports whether m can be erased: never on the pure dup half
// (§2.2 (c)); on the combined half, whenever m is currently deliverable.
func (d *Dup) CanDrop(m msg.Msg) bool { return d.allowDrop && d.CanDeliver(m) }

// Drop erases every copy of m (the deliverable set forgets the type). It
// fails on a pure dup half.
func (d *Dup) Drop(m msg.Msg) error {
	if !d.allowDrop {
		return fmt.Errorf("channel: dup channels cannot delete messages (%q)", m)
	}
	i, ok := slices.BinarySearch(d.sent, m)
	if !ok {
		return fmt.Errorf("channel: dup+del: %q is not deliverable", m)
	}
	d.sent = slices.Delete(d.sent, i, i+1)
	d.dropped++
	return nil
}

// Dropped returns how many types were erased so far.
func (d *Dup) Dropped() int { return d.dropped }

// SentTotal returns the number of Send calls.
func (d *Dup) SentTotal() int { return d.sentTotal }

// Clone returns an independent copy.
func (d *Dup) Clone() Half {
	cp := *d
	cp.sent = slices.Clone(d.sent)
	return &cp
}

// Key returns the sorted sent-set. sentTotal is deliberately excluded:
// two dup halves with the same sent-set behave identically forever.
func (d *Dup) Key() string {
	msgs := make([]string, len(d.sent))
	for i, m := range d.sent {
		msgs[i] = string(m)
	}
	return d.Kind().String() + "{" + strings.Join(msgs, ",") + "}"
}

// EncodeKey appends the binary counterpart of Key: the kind tag and the
// sorted sent-set, each message length-prefixed.
func (d *Dup) EncodeKey(buf []byte) []byte {
	buf = append(buf, byte(d.Kind()))
	buf = binary.AppendUvarint(buf, uint64(len(d.sent)))
	for _, m := range d.sent {
		buf = msg.AppendMsg(buf, m)
	}
	return buf
}
