package channel

import (
	"encoding/binary"
	"fmt"
	"strings"

	"seqtx/internal/msg"
)

// FIFO is an order-preserving half with optional loss and duplication —
// the classic data-link physical layer ([BSW69], and the substrate the §5
// hybrid's alternating-bit phase assumes). Only the queue head is
// deliverable. Duplication is modelled as delivering the head without
// consuming it; loss as dropping the head. Both are equivalent in power to
// duplicating/losing arbitrary queue elements, because the queue is only
// observable through head deliveries.
type FIFO struct {
	queue     []msg.Msg
	allowLoss bool
	allowDup  bool
	sentTotal int
	dropped   int
}

var _ Half = (*FIFO)(nil)

// NewFIFO returns an empty FIFO half with the given fault permissions.
func NewFIFO(allowLoss, allowDup bool) *FIFO {
	return &FIFO{allowLoss: allowLoss, allowDup: allowDup}
}

// Kind returns KindFIFO.
func (f *FIFO) Kind() Kind { return KindFIFO }

// AllowsLoss reports whether the half may drop messages.
func (f *FIFO) AllowsLoss() bool { return f.allowLoss }

// AllowsDup reports whether the half may duplicate messages.
func (f *FIFO) AllowsDup() bool { return f.allowDup }

// Send enqueues one copy of m.
func (f *FIFO) Send(m msg.Msg) {
	f.queue = append(f.queue, m)
	f.sentTotal++
}

// DeliverKeep delivers the head without consuming it: a duplication. The
// recipient receives a copy while the original stays queued.
func (f *FIFO) DeliverKeep(m msg.Msg) error {
	if !f.allowDup {
		return fmt.Errorf("channel: fifo: duplication disabled")
	}
	if !f.CanDeliver(m) {
		return fmt.Errorf("channel: fifo: %q is not at the head", m)
	}
	return nil
}

// Deliverable returns the head message (if any) with count 1.
func (f *FIFO) Deliverable() msg.Counts {
	c := msg.Counts{}
	if len(f.queue) > 0 {
		c[f.queue[0]] = 1
	}
	return c
}

// CanDeliver reports whether m is the queue head.
func (f *FIFO) CanDeliver(m msg.Msg) bool {
	return len(f.queue) > 0 && f.queue[0] == m
}

// Deliver hands the head to the recipient and consumes it.
func (f *FIFO) Deliver(m msg.Msg) error {
	if !f.CanDeliver(m) {
		return fmt.Errorf("channel: fifo: %q is not at the head", m)
	}
	f.queue = f.queue[1:]
	return nil
}

// CanDrop reports whether the head is m and loss is allowed.
func (f *FIFO) CanDrop(m msg.Msg) bool {
	return f.allowLoss && len(f.queue) > 0 && f.queue[0] == m
}

// Drop loses the head copy of m.
func (f *FIFO) Drop(m msg.Msg) error {
	if !f.allowLoss {
		return fmt.Errorf("channel: fifo: loss disabled")
	}
	if !f.CanDeliver(m) {
		return fmt.Errorf("channel: fifo: %q is not at the head", m)
	}
	f.queue = f.queue[1:]
	f.dropped++
	return nil
}

// SentTotal returns the number of Send calls.
func (f *FIFO) SentTotal() int { return f.sentTotal }

// Dropped returns how many copies were lost.
func (f *FIFO) Dropped() int { return f.dropped }

// Len returns the queue length.
func (f *FIFO) Len() int { return len(f.queue) }

// Clone returns an independent copy.
func (f *FIFO) Clone() Half {
	cp := &FIFO{
		queue:     append([]msg.Msg(nil), f.queue...),
		allowLoss: f.allowLoss,
		allowDup:  f.allowDup,
		sentTotal: f.sentTotal,
		dropped:   f.dropped,
	}
	return cp
}

// Key returns the queue contents in order.
func (f *FIFO) Key() string {
	parts := make([]string, len(f.queue))
	for i, m := range f.queue {
		parts[i] = string(m)
	}
	return "fifo[" + strings.Join(parts, ",") + "]"
}

// EncodeKey appends the binary counterpart of Key: the kind tag and the
// queue contents in order, each message length-prefixed.
func (f *FIFO) EncodeKey(buf []byte) []byte {
	buf = append(buf, byte(KindFIFO))
	buf = binary.AppendUvarint(buf, uint64(len(f.queue)))
	for _, m := range f.queue {
		buf = msg.AppendMsg(buf, m)
	}
	return buf
}
