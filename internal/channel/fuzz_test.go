package channel

import (
	"testing"

	"seqtx/internal/msg"
)

// TestDupDelDeliverableIsSnapshot pins that Deliverable() hands out a
// fresh copy: campaign code iterates and mutates these counts freely, and
// a shared map would corrupt the half.
func TestDupDelDeliverableIsSnapshot(t *testing.T) {
	t.Parallel()
	d := NewDupDel()
	d.Send("a")
	c := d.Deliverable()
	c.Add("b", 3)
	delete(c, "a")
	if d.CanDeliver("b") {
		t.Error("mutating the snapshot injected a message into the half")
	}
	if !d.CanDeliver("a") {
		t.Error("mutating the snapshot erased a message from the half")
	}
}

// fuzzKinds fixes the kind decode order for the fuzzer.
var fuzzKinds = []Kind{KindDup, KindDel, KindReorder, KindFIFO, KindDupDel}

// FuzzHalfCloneKeyConsistency drives every channel kind through an
// arbitrary interleaving of Send/Deliver/Drop (plus FIFO duplication) and
// checks the contracts the simulator and model checker lean on:
//
//   - a Clone and its original, fed identical operations, report
//     identical Keys and identical operation outcomes (determinism);
//   - mutating a clone never changes the original's Key (independence);
//   - CanDeliver/CanDrop exactly predict Deliver/Drop success;
//   - everything in Deliverable() is deliverable.
//
// Each op byte decodes as (message, operation); messages come from a
// 4-letter alphabet so collisions (re-sends, double drops) are frequent.
func FuzzHalfCloneKeyConsistency(f *testing.F) {
	f.Add(byte(0), []byte{})
	f.Add(byte(1), []byte{0, 4, 8, 1, 5, 9})
	f.Add(byte(3), []byte{0, 0, 4, 4, 8, 2, 6, 10})
	f.Add(byte(4), []byte{3, 7, 11, 3, 7, 11, 0, 1, 2})
	f.Fuzz(func(t *testing.T, kindSel byte, ops []byte) {
		kind := fuzzKinds[int(kindSel)%len(fuzzKinds)]
		h, err := New(kind)
		if err != nil {
			t.Fatal(err)
		}
		mirror := h.Clone()
		if mirror.Key() != h.Key() {
			t.Fatalf("%s: fresh clone key %q != original %q", kind, mirror.Key(), h.Key())
		}
		for i, op := range ops {
			m := msg.Msg(rune('a' + int(op)%4))
			kindOp := (int(op) / 4) % 4
			applied, err1 := applyFuzzOp(h, kindOp, m)
			applied2, err2 := applyFuzzOp(mirror, kindOp, m)
			if applied != applied2 || (err1 == nil) != (err2 == nil) {
				t.Fatalf("%s: op %d (%s %q) diverged: original (%v, %v) vs clone (%v, %v)",
					kind, i, opName(kindOp), m, applied, err1, applied2, err2)
			}
			if h.Key() != mirror.Key() {
				t.Fatalf("%s: op %d (%s %q): keys diverged under identical ops:\n  %q\n  %q",
					kind, i, opName(kindOp), m, h.Key(), mirror.Key())
			}
			// Independence: a throwaway clone's mutations must not leak back.
			before := h.Key()
			scratch := h.Clone()
			scratch.Send("zz")
			_ = scratch.Deliver("zz")
			if h.Key() != before {
				t.Fatalf("%s: op %d: mutating a clone changed the original key", kind, i)
			}
			// Every advertised deliverable must actually deliver on a probe
			// clone.
			for _, dm := range h.Deliverable().Support() {
				if !h.CanDeliver(dm) {
					t.Fatalf("%s: op %d: %q in Deliverable() but CanDeliver is false", kind, i, dm)
				}
				probe := h.Clone()
				if err := probe.Deliver(dm); err != nil {
					t.Fatalf("%s: op %d: advertised %q failed to deliver: %v", kind, i, dm, err)
				}
			}
		}
		if h.SentTotal() != mirror.SentTotal() {
			t.Fatalf("%s: SentTotal diverged: %d vs %d", kind, h.SentTotal(), mirror.SentTotal())
		}
	})
}

// applyFuzzOp performs one decoded operation, gated on the Can* guards so
// the guard itself is what the fuzzer validates: a guard that says yes
// must be followed by success, one that says no skips (and a failure
// after a yes fails the test via the returned error).
func applyFuzzOp(h Half, kindOp int, m msg.Msg) (applied bool, err error) {
	switch kindOp {
	case 0:
		h.Send(m)
		return true, nil
	case 1:
		if !h.CanDeliver(m) {
			return false, nil
		}
		return true, h.Deliver(m)
	case 2:
		if !h.CanDrop(m) {
			return false, nil
		}
		return true, h.Drop(m)
	default:
		f, ok := h.(*FIFO)
		if !ok || !f.AllowsDup() || !f.CanDeliver(m) {
			return false, nil
		}
		return true, f.DeliverKeep(m)
	}
}

func opName(kindOp int) string {
	return [...]string{"send", "deliver", "drop", "deliver+dup"}[kindOp]
}
