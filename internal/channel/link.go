package channel

import (
	"fmt"

	"seqtx/internal/msg"
)

// Dir identifies a direction on the bidirectional link.
type Dir int

// Link directions.
const (
	// SToR carries the sender's messages to the receiver.
	SToR Dir = iota + 1
	// RToS carries the receiver's messages (acknowledgements) back.
	RToS
)

// String names the direction.
func (d Dir) String() string {
	switch d {
	case SToR:
		return "S→R"
	case RToS:
		return "R→S"
	default:
		return fmt.Sprintf("Dir(%d)", int(d))
	}
}

// Link is the bidirectional communication channel between S and R: two
// independent halves of the same kind. A Link optionally enforces the
// finite message alphabets M^S and M^R: the paper's bounds are functions
// of |M^S|, so protocols must declare what they use. A nil alphabet
// disables enforcement (used for the unbounded-header Stenning baseline,
// which deliberately violates the finite-alphabet assumption).
type Link struct {
	sToR      Half
	rToS      Half
	senderAlp *msg.Alphabet // M^S, nil = unbounded
	recvAlp   *msg.Alphabet // M^R, nil = unbounded
}

// NewLink builds a link from two halves (typically the same kind).
func NewLink(sToR, rToS Half) *Link {
	return &Link{sToR: sToR, rToS: rToS}
}

// NewLinkOfKind builds a link whose halves are both of kind k.
func NewLinkOfKind(k Kind) (*Link, error) {
	a, err := New(k)
	if err != nil {
		return nil, err
	}
	b, err := New(k)
	if err != nil {
		return nil, err
	}
	return NewLink(a, b), nil
}

// EnforceAlphabets restricts sends: the sender may only send messages in
// ms (the paper's M^S) and the receiver only messages in mr (M^R).
func (l *Link) EnforceAlphabets(ms, mr msg.Alphabet) {
	l.senderAlp = &ms
	l.recvAlp = &mr
}

// Half returns the half carrying messages in direction d.
func (l *Link) Half(d Dir) Half {
	if d == SToR {
		return l.sToR
	}
	return l.rToS
}

// SenderAlphabetSize returns |M^S| and whether it is finite (enforced).
func (l *Link) SenderAlphabetSize() (int, bool) {
	if l.senderAlp == nil {
		return 0, false
	}
	return l.senderAlp.Size(), true
}

// Send places one copy of m on the half in direction d, enforcing the
// declared alphabet if any.
func (l *Link) Send(d Dir, m msg.Msg) error {
	switch d {
	case SToR:
		if l.senderAlp != nil && !l.senderAlp.Contains(m) {
			return fmt.Errorf("channel: sender message %q outside M^S = %s", m, l.senderAlp)
		}
	case RToS:
		if l.recvAlp != nil && !l.recvAlp.Contains(m) {
			return fmt.Errorf("channel: receiver message %q outside M^R = %s", m, l.recvAlp)
		}
	default:
		return fmt.Errorf("channel: bad direction %d", int(d))
	}
	l.Half(d).Send(m)
	return nil
}

// Clone returns an independent deep copy of the link.
func (l *Link) Clone() *Link {
	return &Link{
		sToR:      l.sToR.Clone(),
		rToS:      l.rToS.Clone(),
		senderAlp: l.senderAlp,
		recvAlp:   l.recvAlp,
	}
}

// Key returns a canonical encoding of both halves' states.
func (l *Link) Key() string {
	return l.sToR.Key() + "|" + l.rToS.Key()
}

// EncodeKey appends the binary counterpart of Key: both halves' canonical
// encodings in direction order. Each half encoding is self-delimiting, so
// the concatenation stays unambiguous.
func (l *Link) EncodeKey(buf []byte) []byte {
	buf = l.sToR.EncodeKey(buf)
	return l.rToS.EncodeKey(buf)
}
