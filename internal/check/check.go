// Package check audits recorded traces against the model's ground rules:
// the safety property (Y a prefix of X), the channel conservation laws
// ("messages cannot be created by the channel", §2.2 — deliveries never
// exceed sends, per direction and per message, with the multiset version
// for del channels), and schedule fairness measurements. The auditors are
// independent re-implementations of invariants the simulator maintains
// online, so they double as meta-tests of the harness itself, and they
// let external tools validate imported traces.
package check

import (
	"fmt"

	"seqtx/internal/channel"
	"seqtx/internal/msg"
	"seqtx/internal/seq"
	"seqtx/internal/trace"
)

// Report is the outcome of an audit.
type Report struct {
	// Steps audited.
	Steps int
	// Output is Y as reconstructed from the trace.
	Output seq.Seq
	// SafetyOK reports Y remained a prefix of X at every step.
	SafetyOK bool
	// ConservationOK reports no message was delivered more often than
	// sent (counting per copy for del-style audits, per type for dup).
	ConservationOK bool
	// Errors lists every violation found (empty when all OK).
	Errors []error
	// MaxDeliveryLag is the largest number of steps any delivered copy
	// spent in flight (a fairness measurement; 0 if nothing delivered).
	MaxDeliveryLag int
}

// Ok reports whether the audit found no violations.
func (r *Report) Ok() bool { return len(r.Errors) == 0 }

// Mode selects the conservation law to enforce.
type Mode int

// Audit modes.
const (
	// ModeDup checks set semantics: a message may be delivered any number
	// of times, but only after it was sent at least once, and drops are
	// forbidden.
	ModeDup Mode = iota + 1
	// ModeDel checks multiset semantics: deliveries + drops never exceed
	// sends, per message.
	ModeDel
)

// Audit replays the trace's bookkeeping and verifies every invariant.
// The trace must carry the entries of a full run (sim.World records them
// when tracing is enabled).
func Audit(tr *trace.Trace, mode Mode) (*Report, error) {
	if tr == nil {
		return nil, fmt.Errorf("check: nil trace")
	}
	rep := &Report{SafetyOK: true, ConservationOK: true}
	states := map[channel.Dir]*dirState{
		channel.SToR: {sent: msg.Counts{}, delivered: msg.Counts{}, dropped: msg.Counts{}, sentAt: map[msg.Msg]int{}},
		channel.RToS: {sent: msg.Counts{}, delivered: msg.Counts{}, dropped: msg.Counts{}, sentAt: map[msg.Msg]int{}},
	}
	var y seq.Seq
	for i, e := range tr.Entries {
		rep.Steps++
		// 1. Route this step's sends.
		sendDir := sendDirOf(e.Act)
		for _, m := range e.Sends {
			st := states[sendDir]
			st.sent.Add(m, 1)
			if _, ok := st.sentAt[m]; !ok {
				st.sentAt[m] = e.Time
			}
		}
		// 2. Account the action itself.
		switch e.Act.Kind {
		case trace.ActDeliver, trace.ActDeliverDup:
			st := states[e.Act.Dir]
			st.delivered.Add(e.Act.Msg, 1)
			if at, ok := st.sentAt[e.Act.Msg]; ok {
				if lag := e.Time - at; lag > rep.MaxDeliveryLag {
					rep.MaxDeliveryLag = lag
				}
				delete(st.sentAt, e.Act.Msg)
			}
			if err := checkConservation(st, e.Act, mode, i); err != nil {
				rep.ConservationOK = false
				rep.Errors = append(rep.Errors, err)
			}
		case trace.ActDrop:
			st := states[e.Act.Dir]
			st.dropped.Add(e.Act.Msg, 1)
			if mode == ModeDup {
				rep.ConservationOK = false
				rep.Errors = append(rep.Errors,
					fmt.Errorf("check: step %d: drop on a dup channel (cannot delete)", i))
			} else if err := checkConservation(st, e.Act, mode, i); err != nil {
				rep.ConservationOK = false
				rep.Errors = append(rep.Errors, err)
			}
		}
		// 3. Safety on the output tape.
		y = append(y, e.Writes...)
		if !y.IsPrefixOf(tr.Input) {
			if rep.SafetyOK {
				rep.Errors = append(rep.Errors, fmt.Errorf(
					"check: step %d: Y = %s is not a prefix of X = %s", i, y, tr.Input))
			}
			rep.SafetyOK = false
		}
	}
	rep.Output = y
	return rep, nil
}

// sendDirOf tells which half the stepped process's sends land on: sender
// steps (ticks and R→S deliveries) send toward R, receiver steps send
// toward S.
func sendDirOf(a trace.Action) channel.Dir {
	switch a.Kind {
	case trace.ActTickS:
		return channel.SToR
	case trace.ActTickR:
		return channel.RToS
	case trace.ActDeliver, trace.ActDeliverDup:
		if a.Dir == channel.SToR {
			return channel.RToS // R received, R replies toward S
		}
		return channel.SToR
	default:
		return channel.SToR // drops step nobody; no sends occur
	}
}

// dirState is the audited bookkeeping for one link direction.
type dirState struct {
	sent      msg.Counts
	delivered msg.Counts
	dropped   msg.Counts
	sentAt    map[msg.Msg]int // earliest undelivered send time per type
}

func checkConservation(st *dirState, a trace.Action, mode Mode, step int) error {
	m := a.Msg
	switch mode {
	case ModeDup:
		if st.sent.Get(m) == 0 {
			return fmt.Errorf("check: step %d: %q delivered but never sent (creation)", step, m)
		}
	case ModeDel:
		if st.delivered.Get(m)+st.dropped.Get(m) > st.sent.Get(m) {
			return fmt.Errorf(
				"check: step %d: %q consumed %d+%d times but sent only %d (creation/duplication)",
				step, m, st.delivered.Get(m), st.dropped.Get(m), st.sent.Get(m))
		}
	default:
		return fmt.Errorf("check: unknown mode %d", int(mode))
	}
	return nil
}
