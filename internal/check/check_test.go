package check_test

import (
	"math/rand"
	"testing"

	"seqtx/internal/channel"
	"seqtx/internal/check"
	"seqtx/internal/msg"
	"seqtx/internal/protocol/alphaproto"
	"seqtx/internal/protocol/stenning"
	"seqtx/internal/registry"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
	"seqtx/internal/trace"
)

func tracedRun(t *testing.T, kind channel.Kind, adv sim.Adversary, input seq.Seq) *trace.Trace {
	t.Helper()
	link, err := channel.NewLinkOfKind(kind)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sim.New(alphaproto.MustNew(4), input, link)
	if err != nil {
		t.Fatal(err)
	}
	w.StartTrace()
	if _, err := sim.Run(w, adv, sim.Config{MaxSteps: 3000, StopWhenComplete: true}); err != nil {
		t.Fatal(err)
	}
	return w.Trace
}

func TestAuditNilTrace(t *testing.T) {
	t.Parallel()
	if _, err := check.Audit(nil, check.ModeDup); err == nil {
		t.Fatal("nil trace accepted")
	}
}

func TestAuditCleanDupRun(t *testing.T) {
	t.Parallel()
	tr := tracedRun(t, channel.KindDup, sim.NewRoundRobin(), seq.FromInts(1, 3, 0))
	rep, err := check.Audit(tr, check.ModeDup)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("clean run failed audit: %v", rep.Errors)
	}
	if !rep.Output.Equal(seq.FromInts(1, 3, 0)) {
		t.Errorf("Output = %s", rep.Output)
	}
	if rep.Steps != tr.Len() {
		t.Errorf("Steps = %d, want %d", rep.Steps, tr.Len())
	}
}

func TestAuditCleanDelRunWithDrops(t *testing.T) {
	t.Parallel()
	tr := tracedRun(t, channel.KindDel, sim.NewBudgetDropper(2, 4), seq.FromInts(2, 1))
	rep, err := check.Audit(tr, check.ModeDel)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("del run failed audit: %v", rep.Errors)
	}
}

func TestAuditDetectsCreation(t *testing.T) {
	t.Parallel()
	// Hand-forge a trace that delivers a never-sent message.
	tr := &trace.Trace{Input: seq.FromInts(0)}
	tr.Append(trace.Entry{Time: 0, Act: trace.Deliver(channel.SToR, "phantom")})
	rep, err := check.Audit(tr, check.ModeDup)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ConservationOK {
		t.Fatal("creation not detected (dup mode)")
	}
	rep, err = check.Audit(tr, check.ModeDel)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ConservationOK {
		t.Fatal("creation not detected (del mode)")
	}
}

func TestAuditDetectsDuplicationInDelMode(t *testing.T) {
	t.Parallel()
	// One send, two deliveries: fine for dup, a violation for del.
	tr := &trace.Trace{Input: seq.FromInts(0)}
	tr.Append(trace.Entry{Time: 0, Act: trace.TickS(), Sends: []msgT{"m"}})
	tr.Append(trace.Entry{Time: 1, Act: trace.Deliver(channel.SToR, "m")})
	tr.Append(trace.Entry{Time: 2, Act: trace.Deliver(channel.SToR, "m")})
	rep, err := check.Audit(tr, check.ModeDup)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ConservationOK {
		t.Fatalf("dup mode rejected a legal duplication: %v", rep.Errors)
	}
	rep, err = check.Audit(tr, check.ModeDel)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ConservationOK {
		t.Fatal("del mode accepted a duplication")
	}
}

func TestAuditDetectsDropOnDup(t *testing.T) {
	t.Parallel()
	tr := &trace.Trace{Input: seq.FromInts(0)}
	tr.Append(trace.Entry{Time: 0, Act: trace.TickS(), Sends: []msgT{"m"}})
	tr.Append(trace.Entry{Time: 1, Act: trace.Drop(channel.SToR, "m")})
	rep, err := check.Audit(tr, check.ModeDup)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ConservationOK {
		t.Fatal("drop on dup channel accepted")
	}
	rep, err = check.Audit(tr, check.ModeDel)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ConservationOK {
		t.Fatalf("legal del drop rejected: %v", rep.Errors)
	}
}

func TestAuditDetectsUnsafeOutput(t *testing.T) {
	t.Parallel()
	tr := &trace.Trace{Input: seq.FromInts(0, 1)}
	tr.Append(trace.Entry{Time: 0, Act: trace.TickR(), Writes: seq.FromInts(1)})
	rep, err := check.Audit(tr, check.ModeDup)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SafetyOK {
		t.Fatal("unsafe write not flagged")
	}
}

func TestAuditMeasuresDeliveryLag(t *testing.T) {
	t.Parallel()
	tr := &trace.Trace{Input: seq.FromInts(0)}
	tr.Append(trace.Entry{Time: 0, Act: trace.TickS(), Sends: []msgT{"m"}})
	tr.Append(trace.Entry{Time: 1, Act: trace.TickR()})
	tr.Append(trace.Entry{Time: 2, Act: trace.TickR()})
	tr.Append(trace.Entry{Time: 3, Act: trace.Deliver(channel.SToR, "m")})
	rep, err := check.Audit(tr, check.ModeDup)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxDeliveryLag != 3 {
		t.Errorf("MaxDeliveryLag = %d, want 3", rep.MaxDeliveryLag)
	}
}

// TestAuditFuzzedRuns cross-validates the simulator against the auditor on
// many random schedules and both channel modes.
func TestAuditFuzzedRuns(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		input, err := seq.RandomRepetitionFree(rng, 4, 1+rng.Intn(4))
		if err != nil {
			t.Fatal(err)
		}
		kind := channel.KindDup
		mode := check.ModeDup
		var adv sim.Adversary = sim.NewFinDelay(sim.NewRandom(int64(trial)), 8)
		if trial%2 == 1 {
			kind = channel.KindDel
			mode = check.ModeDel
			adv = sim.NewBudgetDropper(int64(trial), 3)
		}
		tr := tracedRun(t, kind, adv, input)
		rep, err := check.Audit(tr, mode)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Ok() {
			t.Fatalf("trial %d (%s): audit failed: %v", trial, kind, rep.Errors)
		}
	}
}

// TestAuditStenningUnbounded audits a protocol with an unbounded alphabet,
// exercising the per-type maps with many distinct messages.
func TestAuditStenningUnbounded(t *testing.T) {
	t.Parallel()
	link, err := channel.NewLinkOfKind(channel.KindDel)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sim.New(stenning.New(), seq.FromInts(0, 0, 0, 0), link)
	if err != nil {
		t.Fatal(err)
	}
	w.StartTrace()
	if _, err := sim.Run(w, sim.NewRoundRobin(), sim.Config{MaxSteps: 500, StopWhenComplete: true}); err != nil {
		t.Fatal(err)
	}
	rep, err := check.Audit(w.Trace, check.ModeDel)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("stenning audit failed: %v", rep.Errors)
	}
}

// msgT abbreviates msg.Msg in forged trace entries.
type msgT = msg.Msg

// TestAuditAllProtocolFamilies audits traced runs of every protocol in
// the repository on its lawful channel, under both friendly and faulty
// schedules: the simulator must respect the conservation laws everywhere.
func TestAuditAllProtocolFamilies(t *testing.T) {
	t.Parallel()
	repFree := seq.FromInts(1, 0) // the tight protocol's X is repetition-free (m = 2)
	general := seq.FromInts(0, 1, 1, 0)
	cases := []struct {
		name  string
		proto string
		kind  channel.Kind
		mode  check.Mode
		input seq.Seq
	}{
		{"alpha-dup", "alpha", channel.KindDup, check.ModeDup, repFree},
		{"alpha-del", "alpha", channel.KindDel, check.ModeDel, repFree},
		{"afwz", "afwz", channel.KindDel, check.ModeDel, general},
		{"hybrid", "hybrid", channel.KindDel, check.ModeDel, general},
		{"abp", "abp", channel.KindFIFO, check.ModeDel, general},
		{"gobackn", "gobackn", channel.KindFIFO, check.ModeDel, general},
		{"selrepeat", "selrepeat", channel.KindFIFO, check.ModeDel, general},
		{"stenning", "stenning", channel.KindDel, check.ModeDel, general},
		{"modseq", "modseq", channel.KindDup, check.ModeDup, general},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			spec, err := registry.Protocol(c.proto, registry.Params{M: 2, Timeout: 4, Window: 4})
			if err != nil {
				t.Fatal(err)
			}
			for seed := int64(0); seed < 4; seed++ {
				link, lerr := channel.NewLinkOfKind(c.kind)
				if lerr != nil {
					t.Fatal(lerr)
				}
				w, werr := sim.New(spec, c.input, link)
				if werr != nil {
					t.Fatal(werr)
				}
				w.StartTrace()
				var adv sim.Adversary = sim.NewRoundRobin()
				if seed%2 == 1 && c.kind != channel.KindDup {
					adv = sim.NewBudgetDropper(seed, 1)
				}
				if _, rerr := sim.Run(w, adv, sim.Config{MaxSteps: 2000, StopWhenComplete: true}); rerr != nil {
					t.Fatal(rerr)
				}
				rep, aerr := check.Audit(w.Trace, c.mode)
				if aerr != nil {
					t.Fatal(aerr)
				}
				if !rep.Ok() {
					t.Fatalf("seed %d: audit failed: %v", seed, rep.Errors)
				}
			}
		})
	}
}
