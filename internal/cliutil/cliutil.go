// Package cliutil factors the flag plumbing shared by the stp* commands:
// input-sequence parsing, the -metrics/-metrics-format snapshot pair, and
// numeric flag validation with uniform error text. Keeping it here means
// every CLI rejects bad values the same way (clear message on stderr,
// exit 2) instead of each command clamping or ignoring them differently.
package cliutil

import (
	"flag"
	"fmt"
	"net"
	"strconv"
	"strings"

	"seqtx/internal/obs"
	"seqtx/internal/seq"
)

// ParseSeq parses a comma-separated list of data items ("0,3,1") into a
// sequence. An empty or all-space argument is the empty sequence.
func ParseSeq(arg string) (seq.Seq, error) {
	arg = strings.TrimSpace(arg)
	if arg == "" {
		return seq.Seq{}, nil
	}
	var s seq.Seq
	for _, f := range strings.Split(arg, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad item %q: %w", f, err)
		}
		s = append(s, seq.Item(v))
	}
	return s, nil
}

// NonNegative rejects negative flag values with a uniform message. The
// zero value stays legal (conventionally "use the default").
func NonNegative(name string, v int) error {
	if v < 0 {
		return fmt.Errorf("-%s must be >= 0, got %d", name, v)
	}
	return nil
}

// Positive rejects zero and negative flag values with a uniform message.
func Positive(name string, v int) error {
	if v <= 0 {
		return fmt.Errorf("-%s must be > 0, got %d", name, v)
	}
	return nil
}

// HostPort rejects flag values that are not a host:port address (the
// cluster control- and data-plane flags). The port must be present —
// cluster addresses are always concrete or explicitly :0 — and the host
// may be empty ("listen on all interfaces") or any name or IP.
func HostPort(name, v string) error {
	if v == "" {
		return fmt.Errorf("-%s must be host:port, got empty", name)
	}
	if _, _, err := net.SplitHostPort(v); err != nil {
		return fmt.Errorf("-%s must be host:port: %v", name, err)
	}
	return nil
}

// Metrics bundles the -metrics/-metrics-format flag pair and the
// write-after-run plumbing shared by every stp* command.
type Metrics struct {
	// Path is the snapshot destination ("" = disabled, "-" = stdout).
	Path string
	// Format is the snapshot format (obs.FormatProm or obs.FormatJSON).
	Format string

	reg *obs.Registry
}

// AddFlags registers the flag pair on fs.
func (m *Metrics) AddFlags(fs *flag.FlagSet) {
	fs.StringVar(&m.Path, "metrics", "",
		"write a metrics snapshot to this file after the run (- = stdout)")
	fs.StringVar(&m.Format, "metrics-format", obs.FormatProm,
		"metrics snapshot format: prom|json")
}

// Enabled reports whether a snapshot was requested.
func (m *Metrics) Enabled() bool { return m.Path != "" }

// Registry returns the registry instrumented code should write into: a
// live one (created on first call) when -metrics was given, nil otherwise
// (the obs nil-sink fast path).
func (m *Metrics) Registry() *obs.Registry {
	if !m.Enabled() {
		return nil
	}
	if m.reg == nil {
		m.reg = obs.NewRegistry()
	}
	return m.reg
}

// Finish writes the snapshot (a no-op when disabled) and merges a write
// failure into the exit code: a failed snapshot turns success into a
// usage-style exit 2 but never masks a non-zero verdict. prefix labels
// the error message with the command name.
func (m *Metrics) Finish(prefix string, code int, errw interface{ Write([]byte) (int, error) }) int {
	if !m.Enabled() {
		return code
	}
	if err := obs.WriteSnapshotFile(m.Registry(), m.Path, m.Format); err != nil {
		fmt.Fprintf(errw, "%s: %v\n", prefix, err)
		if code == 0 {
			return 2
		}
	}
	return code
}
