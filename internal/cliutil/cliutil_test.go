package cliutil

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"seqtx/internal/seq"
)

func TestParseSeq(t *testing.T) {
	cases := []struct {
		in   string
		want seq.Seq
		ok   bool
	}{
		{"", seq.Seq{}, true},
		{"  ", seq.Seq{}, true},
		{"0,1,2", seq.Seq{0, 1, 2}, true},
		{" 3 , 1 ", seq.Seq{3, 1}, true},
		{"1,x", nil, false},
	}
	for _, c := range cases {
		got, err := ParseSeq(c.in)
		if (err == nil) != c.ok {
			t.Fatalf("ParseSeq(%q) error = %v, want ok=%v", c.in, err, c.ok)
		}
		if c.ok && !got.Equal(c.want) {
			t.Fatalf("ParseSeq(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestValidators(t *testing.T) {
	if err := NonNegative("workers", -1); err == nil || !strings.Contains(err.Error(), "-workers") {
		t.Fatalf("NonNegative(-1) = %v, want named error", err)
	}
	if err := NonNegative("workers", 0); err != nil {
		t.Fatalf("NonNegative(0) = %v, want nil", err)
	}
	if err := Positive("runs", 0); err == nil || !strings.Contains(err.Error(), "-runs") {
		t.Fatalf("Positive(0) = %v, want named error", err)
	}
	if err := Positive("runs", 3); err != nil {
		t.Fatalf("Positive(3) = %v, want nil", err)
	}
}

func TestHostPort(t *testing.T) {
	for _, good := range []string{"127.0.0.1:9000", ":0", "example.com:80", "[::1]:7700"} {
		if err := HostPort("master", good); err != nil {
			t.Errorf("HostPort(%q) = %v, want nil", good, err)
		}
	}
	for _, bad := range []string{"", "127.0.0.1", "host:port:extra", "[::1]"} {
		if err := HostPort("master", bad); err == nil || !strings.Contains(err.Error(), "-master") {
			t.Errorf("HostPort(%q) = %v, want named error", bad, err)
		}
	}
}

func TestMetricsDisabled(t *testing.T) {
	var m Metrics
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	m.AddFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if m.Enabled() {
		t.Fatal("metrics enabled without -metrics")
	}
	if m.Registry() != nil {
		t.Fatal("disabled metrics must hand out the nil registry (obs fast path)")
	}
	var buf bytes.Buffer
	if code := m.Finish("t", 0, &buf); code != 0 || buf.Len() != 0 {
		t.Fatalf("disabled Finish = %d (%q), want 0 and no output", code, buf.String())
	}
}

func TestMetricsWriteAndFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.prom")
	m := Metrics{Path: path, Format: "prom"}
	m.Registry().Counter("cli_test_total").Inc()
	var buf bytes.Buffer
	if code := m.Finish("t", 0, &buf); code != 0 {
		t.Fatalf("Finish = %d (%s), want 0", code, buf.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "cli_test_total 1") {
		t.Fatalf("snapshot missing counter:\n%s", data)
	}

	// A write failure turns success into exit 2 but never masks a verdict.
	bad := Metrics{Path: filepath.Join(dir, "no", "such", "dir.prom"), Format: "prom"}
	bad.Registry()
	if code := bad.Finish("t", 0, &buf); code != 2 {
		t.Fatalf("failed Finish on success = %d, want 2", code)
	}
	if code := bad.Finish("t", 1, &buf); code != 1 {
		t.Fatalf("failed Finish on verdict 1 = %d, want 1 (never mask)", code)
	}
}
