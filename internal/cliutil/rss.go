package cliutil

import (
	"bytes"
	"os"
	"strconv"
)

// MaxRSSBytes reports the process's peak resident set size in bytes
// (VmHWM from /proc/self/status), or 0 where the proc filesystem is
// unavailable. The load generator embeds it in its JSON report so a
// scale sweep can plot memory against fleet size without an external
// profiler.
func MaxRSSBytes() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range bytes.Split(data, []byte("\n")) {
		if !bytes.HasPrefix(line, []byte("VmHWM:")) {
			continue
		}
		fields := bytes.Fields(line[len("VmHWM:"):])
		if len(fields) < 1 {
			return 0
		}
		kb, err := strconv.ParseInt(string(fields[0]), 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}
