package cluster

import (
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestClusterChaosCell drives a sweep with a crash-restart axis: the
// "none" cell runs unsupervised, the crash-sender cell runs every
// session under wire.ServeSupervised with the client crashing its
// sender halves on the preset schedule. The burst-drop impairment
// keeps sessions alive past the preset's crash ticks, so the crashes
// genuinely fire; amnesia restarts of an alpha sender replay the tape
// from the start, which the receiver absorbs safely — every session
// still completes with zero post-stabilization violations.
func TestClusterChaosCell(t *testing.T) {
	doc := runFleet(t, 1, 1, SweepConfig{
		Proto: "alpha", M: 24, Items: 24,
		Sessions:      []int{2},
		Impairs:       []string{"burst-drop"},
		CrashPresets:  []string{"none", "crash-sender"},
		RestartPolicy: "amnesia",
		Tick:          time.Millisecond,
		Deadline:      30 * time.Second,
		Seed:          5,
	})
	if len(doc.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(doc.Cells))
	}
	plain, chaos := doc.Cells[0], doc.Cells[1]
	if plain.Cell.Chaos != "" || chaos.Cell.Chaos != "crash-sender" {
		t.Fatalf("cell keys: %v / %v", plain.Cell, chaos.Cell)
	}
	if plain.Incarnations != 0 {
		t.Errorf("unsupervised cell reported %d incarnations", plain.Incarnations)
	}
	for name, cell := range map[string]BenchCell{"plain": plain, "chaos": chaos} {
		if cell.Completed != 2 || cell.Sessions != 2 {
			t.Errorf("%s cell: completed %d/%d, want 2/2", name, cell.Completed, cell.Sessions)
		}
		if cell.Violations != 0 {
			t.Errorf("%s cell: %d violations", name, cell.Violations)
		}
	}
	if chaos.PostStabViolations != 0 {
		t.Errorf("chaos cell: %d post-stabilization violations", chaos.PostStabViolations)
	}
	// Both nodes supervised: baseline is one incarnation per session per
	// node (2 sessions × 2 nodes = 4); every client session crashes at
	// least once during the burst-drop stall, so the total exceeds it.
	if chaos.Incarnations <= 4 {
		t.Errorf("chaos cell: %d incarnations, want > 4 (crashes must fire)", chaos.Incarnations)
	}
}

// TestClusterChaosValidation pins the sweep-config gate: link presets
// don't belong on the chaos axis, and bad restart policies are
// rejected.
func TestClusterChaosValidation(t *testing.T) {
	base := func() MasterConfig {
		return MasterConfig{Listen: "127.0.0.1:0", Servers: 1, Clients: 1}
	}
	cfg := base()
	cfg.Sweep.CrashPresets = []string{"burst-drop"}
	if _, err := NewMaster(cfg); err == nil || !strings.Contains(err.Error(), "impairs axis") {
		t.Errorf("link preset accepted on chaos axis: %v", err)
	}
	cfg = base()
	cfg.Sweep.CrashPresets = []string{"no-such-preset"}
	if _, err := NewMaster(cfg); err == nil {
		t.Error("unknown chaos preset accepted")
	}
	cfg = base()
	cfg.Sweep.RestartPolicy = "chaotic"
	if _, err := NewMaster(cfg); err == nil {
		t.Error("unknown restart policy accepted")
	}
}

// wedgedServer speaks just enough of the control protocol to get a cell
// assigned — hello, ready with a real (but deaf) UDP address, start —
// and then never reports, simulating a hung node. It returns when the
// master gives up on it and closes the conn.
func wedgedServer(t *testing.T, master, name string) {
	t.Helper()
	nc, err := net.Dial("tcp", master)
	if err != nil {
		t.Errorf("wedged node dial: %v", err)
		return
	}
	defer nc.Close()
	c := newConn(nc)
	if err := c.send(envelope{Type: TypeHello, Hello: &Hello{Role: RoleServer, Name: name}}); err != nil {
		t.Errorf("wedged node hello: %v", err)
		return
	}
	if _, err := c.recv(TypePrepare); err != nil {
		t.Errorf("wedged node prepare: %v", err)
		return
	}
	// A real socket that never answers: the peer's datagrams land in a
	// kernel buffer nobody reads.
	uc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Errorf("wedged node bind: %v", err)
		return
	}
	defer uc.Close()
	if err := c.send(envelope{Type: TypeReady, Ready: &Ready{DataAddr: uc.LocalAddr().String()}}); err != nil {
		t.Errorf("wedged node ready: %v", err)
		return
	}
	if _, err := c.recv(TypeStart); err != nil {
		t.Errorf("wedged node start: %v", err)
		return
	}
	// Wedge: never report. The next recv only returns once the master
	// has culled this pair and closed the conn.
	c.recv("")
}

// TestClusterCellTimeoutDropsWedgedPair is the per-cell recovery
// regression: a fleet of two pairs, one server wedged. With
// CellTimeout set, the first cell fails only for the wedged pair — its
// reports are dropped, BenchCell.Err names it — and the second cell
// runs to completion on the surviving pair.
func TestClusterCellTimeoutDropsWedgedPair(t *testing.T) {
	master, err := NewMaster(MasterConfig{
		Listen: "127.0.0.1:0", Servers: 2, Clients: 2,
		Sweep: SweepConfig{
			Proto: "alpha", M: 8, Items: 3,
			Sessions: []int{2, 2},
			Tick:     500 * time.Microsecond,
			Deadline: 2 * time.Second,
			Seed:     9,
		},
		AssembleTimeout: 10 * time.Second,
		CellTimeout:     5 * time.Second,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatalf("NewMaster: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	// Healthy pair: names sort the wedged server into pair 0 ("server-a"
	// pairs with "client-a") so the test exercises mid-list removal too.
	for _, spec := range []struct{ role, name string }{
		{RoleServer, "server-b"},
		{RoleClient, "client-a"},
		{RoleClient, "client-b"},
	} {
		wg.Add(1)
		go func(role, name string) {
			defer wg.Done()
			// The healthy nodes may see their conn closed mid-sweep (the
			// wedged pair's partner) — that is expected, not a test failure.
			_ = RunNode(ctx, NodeConfig{
				Master: master.Addr(), Role: role, Name: name, Logf: t.Logf,
			})
		}(spec.role, spec.name)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		wedgedServer(t, master.Addr(), "server-a")
	}()

	doc, err := master.Run(ctx)
	if err != nil {
		t.Fatalf("master.Run: %v", err)
	}
	wg.Wait()

	if len(doc.Cells) != 2 {
		t.Fatalf("cells = %d, want 2 (sweep must continue past the wedged pair)", len(doc.Cells))
	}
	first, second := doc.Cells[0], doc.Cells[1]
	if first.Err == "" || !strings.Contains(first.Err, "server-a") {
		t.Errorf("first cell err = %q, want the wedged pair named", first.Err)
	}
	if doc.FailedCells != 1 {
		t.Errorf("failed cells = %d, want 1", doc.FailedCells)
	}
	// The healthy pair's share of cell 1 (1 of 2 sessions) still
	// completed and was aggregated despite the dead pair.
	if first.Completed != 1 {
		t.Errorf("first cell completed = %d, want 1 (the surviving pair's session)", first.Completed)
	}
	// Cell 2 runs on the surviving pair alone: all sessions, no error.
	if second.Err != "" {
		t.Errorf("second cell err = %q, want clean", second.Err)
	}
	if second.Completed != 2 || second.Violations != 0 {
		t.Errorf("second cell: completed=%d violations=%d, want 2/0", second.Completed, second.Violations)
	}
}
