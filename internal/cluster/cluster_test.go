package cluster

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// runFleet starts a master plus the named fleet in-process over real
// TCP/UDP sockets and returns the sweep document.
func runFleet(t *testing.T, servers, clients int, sweep SweepConfig) *BenchDoc {
	t.Helper()
	master, err := NewMaster(MasterConfig{
		Listen: "127.0.0.1:0", Servers: servers, Clients: clients,
		Sweep: sweep, AssembleTimeout: 10 * time.Second,
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("NewMaster: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	nodeErrs := make(chan error, servers+clients)
	spawn := func(role string, i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := RunNode(ctx, NodeConfig{
				Master: master.Addr(), Role: role,
				Name: roleName(role, i), Logf: t.Logf,
			})
			if err != nil {
				nodeErrs <- err
			}
		}()
	}
	for i := 0; i < servers; i++ {
		spawn(RoleServer, i)
	}
	for i := 0; i < clients; i++ {
		spawn(RoleClient, i)
	}
	doc, err := master.Run(ctx)
	if err != nil {
		t.Fatalf("master.Run: %v", err)
	}
	wg.Wait()
	close(nodeErrs)
	for err := range nodeErrs {
		t.Errorf("node: %v", err)
	}
	return doc
}

func roleName(role string, i int) string {
	return role + "-" + string(rune('a'+i))
}

func TestMasterConfigValidation(t *testing.T) {
	if _, err := NewMaster(MasterConfig{Listen: "127.0.0.1:0", Servers: 2, Clients: 1}); err == nil {
		t.Error("unequal servers/clients accepted")
	}
	if _, err := NewMaster(MasterConfig{Listen: "127.0.0.1:0", Servers: 0, Clients: 0}); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := NewMaster(MasterConfig{
		Listen: "127.0.0.1:0", Servers: 1, Clients: 1,
		Sweep: SweepConfig{M: 4, Items: 9},
	}); err == nil || !strings.Contains(err.Error(), "repetition-free") {
		t.Errorf("items > m accepted: %v", err)
	}
	if err := RunNode(context.Background(), NodeConfig{Master: "127.0.0.1:1", Role: "observer", Name: "x"}); err == nil {
		t.Error("unknown role accepted")
	}
}

// TestClusterSingleCell runs the smallest real fleet — one server, one
// client, one cell — and checks the full contract: every session
// completes, zero violations, latency and throughput populated, and the
// data plane genuinely crossed sockets (frames on both sides).
func TestClusterSingleCell(t *testing.T) {
	doc := runFleet(t, 1, 1, SweepConfig{
		Proto: "alpha", M: 8, Items: 5,
		Sessions: []int{6},
		Tick:     500 * time.Microsecond,
		Deadline: 30 * time.Second,
		Seed:     7,
	})
	if len(doc.Cells) != 1 {
		t.Fatalf("cells = %d, want 1", len(doc.Cells))
	}
	cell := doc.Cells[0]
	if cell.Sessions != 6 || cell.Completed != 6 {
		t.Errorf("completed %d/%d, want 6/6", cell.Completed, cell.Sessions)
	}
	if cell.Violations != 0 {
		t.Errorf("violations = %d, want 0", cell.Violations)
	}
	if cell.ItemsDelivered != 6*5 {
		t.Errorf("items delivered = %d, want 30", cell.ItemsDelivered)
	}
	if cell.Latency.P50 <= 0 || cell.Latency.P99 < cell.Latency.P50 {
		t.Errorf("latency summary degenerate: %+v", cell.Latency)
	}
	if cell.ThroughputItemsPerSec <= 0 {
		t.Errorf("throughput = %g, want > 0", cell.ThroughputItemsPerSec)
	}
	if cell.FramesTx == 0 || cell.FramesRx == 0 {
		t.Errorf("no frames crossed the wire: tx=%d rx=%d", cell.FramesTx, cell.FramesRx)
	}
	if len(cell.Nodes) != 2 {
		t.Errorf("node reports = %d, want 2", len(cell.Nodes))
	}
}

// TestClusterSweepGrid drives a multi-node fleet through a 2×2×2 grid —
// sessions × rate × impairment — the shape the stpmaster CLI runs. The
// impaired, rate-paced cells may finish slower but must stay safe, and
// the rate>0 cells exercise the paced client path (goroutine starts over
// a shared mux) against Serve-driven servers.
func TestClusterSweepGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cell sweep in -short mode")
	}
	sweep := SweepConfig{
		Proto: "alpha", M: 8, Items: 4,
		Sessions: []int{2, 4},
		Rates:    []float64{0, 200},
		Impairs:  []string{"none", "burst-drop"},
		Tick:     500 * time.Microsecond,
		Deadline: 20 * time.Second,
		Seed:     11,
	}
	doc := runFleet(t, 2, 2, sweep)
	if want := 8; len(doc.Cells) != want {
		t.Fatalf("cells = %d, want %d", len(doc.Cells), want)
	}
	if doc.TotalViolations != 0 {
		t.Errorf("violations = %d, want 0", doc.TotalViolations)
	}
	if doc.TotalSessions != 2*(2+4)*2 {
		t.Errorf("total sessions = %d, want %d", doc.TotalSessions, 2*(2+4)*2)
	}
	if doc.TotalCompleted != doc.TotalSessions {
		t.Errorf("completed %d/%d sessions", doc.TotalCompleted, doc.TotalSessions)
	}
	for _, cell := range doc.Cells {
		if cell.ItemsDelivered != int64(cell.Cell.Sessions)*4 {
			t.Errorf("cell %v: items = %d, want %d", cell.Cell, cell.ItemsDelivered, cell.Cell.Sessions*4)
		}
		// The 4-session cells split 2+2 across the two pairs; the
		// 2-session cells run 1 per pair. Every node must have reported.
		if len(cell.Nodes) != 4 {
			t.Errorf("cell %v: node reports = %d, want 4", cell.Cell, len(cell.Nodes))
		}
	}
}

// TestClusterCellIsolation runs two consecutive cells and checks the
// second is clean: fresh sockets per cell mean no cross-cell session-id
// collisions or stale-datagram leaks (which would surface as violations
// or incomplete tapes in cell 2).
func TestClusterCellIsolation(t *testing.T) {
	doc := runFleet(t, 1, 1, SweepConfig{
		Proto: "alpha", M: 8, Items: 3,
		Sessions: []int{3, 3},
		Tick:     500 * time.Microsecond,
		Deadline: 20 * time.Second,
		Seed:     3,
	})
	if len(doc.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(doc.Cells))
	}
	for i, cell := range doc.Cells {
		if cell.Completed != 3 || cell.Violations != 0 {
			t.Errorf("cell %d: completed=%d violations=%d, want 3/0", i, cell.Completed, cell.Violations)
		}
	}
}
