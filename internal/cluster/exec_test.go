package cluster

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"testing"
	"time"
)

// TestClusterHelperProcess is not a test: it is the node entry point the
// fork/exec round-trip re-invokes the test binary into. Guarded by env
// so a normal `go test` run skips straight past it.
func TestClusterHelperProcess(t *testing.T) {
	if os.Getenv("STP_CLUSTER_HELPER") != "1" {
		t.Skip("helper process entry point")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	err := RunNode(ctx, NodeConfig{
		Master: os.Getenv("STP_CLUSTER_MASTER"),
		Role:   os.Getenv("STP_CLUSTER_ROLE"),
		Name:   os.Getenv("STP_CLUSTER_NAME"),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "helper node:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// TestClusterTwoProcessRoundTrip is the real multi-process check: the
// server node and the client node are separate OS processes (the test
// binary re-exec'd), so the control plane crosses real TCP and the data
// plane crosses real peer-addressed UDP between distinct address
// spaces — nothing can accidentally share a transport struct the way
// the loopback-era wire tests did.
func TestClusterTwoProcessRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("fork/exec round-trip in -short mode")
	}
	master, err := NewMaster(MasterConfig{
		Listen: "127.0.0.1:0", Servers: 1, Clients: 1,
		Sweep: SweepConfig{
			Proto: "alpha", M: 8, Items: 5,
			Sessions: []int{4},
			Tick:     time.Millisecond,
			Deadline: 30 * time.Second,
			Seed:     21,
		},
		AssembleTimeout: 15 * time.Second,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatalf("NewMaster: %v", err)
	}

	spawn := func(role string) *exec.Cmd {
		cmd := exec.Command(os.Args[0], "-test.run=TestClusterHelperProcess")
		cmd.Env = append(os.Environ(),
			"STP_CLUSTER_HELPER=1",
			"STP_CLUSTER_MASTER="+master.Addr(),
			"STP_CLUSTER_ROLE="+role,
			"STP_CLUSTER_NAME="+role+"-proc",
		)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("spawn %s: %v", role, err)
		}
		return cmd
	}
	serverProc := spawn(RoleServer)
	clientProc := spawn(RoleClient)
	defer serverProc.Process.Kill()
	defer clientProc.Process.Kill()

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	doc, err := master.Run(ctx)
	if err != nil {
		t.Fatalf("master.Run: %v", err)
	}
	if err := serverProc.Wait(); err != nil {
		t.Errorf("server process: %v", err)
	}
	if err := clientProc.Wait(); err != nil {
		t.Errorf("client process: %v", err)
	}

	if len(doc.Cells) != 1 {
		t.Fatalf("cells = %d, want 1", len(doc.Cells))
	}
	cell := doc.Cells[0]
	if cell.Completed != 4 || cell.Violations != 0 {
		t.Errorf("completed=%d violations=%d, want 4/0", cell.Completed, cell.Violations)
	}
	if cell.ItemsDelivered != 4*5 {
		t.Errorf("items delivered = %d, want 20", cell.ItemsDelivered)
	}
	if cell.FramesTx == 0 || cell.FramesRx == 0 {
		t.Errorf("no cross-process frames: tx=%d rx=%d", cell.FramesTx, cell.FramesRx)
	}
}
