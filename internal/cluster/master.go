package cluster

import (
	"context"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"
)

// MasterConfig configures the sweep coordinator.
type MasterConfig struct {
	// Listen is the control-plane TCP address (":0" for kernel-assigned;
	// Master.Addr reports the concrete one).
	Listen string
	// Servers and Clients size the fleet the master waits for. They must
	// be equal: client i pairs 1:1 with server i, because a UDPPeer
	// validates exactly one remote source.
	Servers int
	Clients int
	// Sweep is the evaluation grid.
	Sweep SweepConfig
	// AssembleTimeout bounds the wait for the fleet to connect and say
	// hello (0 = 30s).
	AssembleTimeout time.Duration
	// CellTimeout, when positive, bounds each cell's control-plane wait
	// per node: a node that fails to deliver its ready or report inside
	// the window fails only that cell — the master records the failure
	// in BenchCell.Err, drops the wedged node's pair from the fleet, and
	// continues the sweep with the survivors. Zero keeps the strict
	// behavior: any node failure aborts the whole sweep. Set it above
	// the session deadline, or healthy-but-slow cells will be culled.
	CellTimeout time.Duration
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// Master coordinates a distributed sweep: it waits for the configured
// fleet to connect, then drives every cell through the two-phase
// prepare/start handshake and aggregates the nodes' reports.
type Master struct {
	cfg MasterConfig
	ln  net.Listener
	// steady is the conn deadline to restore after a timed cell (the
	// ctx deadline when Run has one, else zero = none).
	steady time.Time
}

// NewMaster validates the config and binds the control listener (so the
// concrete address is known before any node starts).
func NewMaster(cfg MasterConfig) (*Master, error) {
	if cfg.Servers < 1 || cfg.Clients < 1 {
		return nil, fmt.Errorf("cluster: master needs at least 1 server and 1 client, got %d/%d", cfg.Servers, cfg.Clients)
	}
	if cfg.Servers != cfg.Clients {
		return nil, fmt.Errorf("cluster: master needs servers == clients (1:1 pairing), got %d servers, %d clients", cfg.Servers, cfg.Clients)
	}
	if err := cfg.Sweep.normalize(); err != nil {
		return nil, err
	}
	if cfg.AssembleTimeout <= 0 {
		cfg.AssembleTimeout = 30 * time.Second
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("cluster: master listen: %w", err)
	}
	return &Master{cfg: cfg, ln: ln}, nil
}

// Addr returns the bound control-plane address.
func (m *Master) Addr() string { return m.ln.Addr().String() }

// Close releases the control listener (Run closes it itself on return).
func (m *Master) Close() error { return m.ln.Close() }

func (m *Master) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// node is a connected fleet member.
type node struct {
	*conn
	hello Hello
}

// Run assembles the fleet, drives the sweep, shuts the nodes down, and
// returns the aggregated bench document. The error covers control-plane
// failures; per-session outcomes (violations included) live in the doc.
func (m *Master) Run(ctx context.Context) (*BenchDoc, error) {
	defer m.ln.Close()
	servers, clients, err := m.assemble(ctx)
	if err != nil {
		return nil, err
	}
	all := append(append([]*node{}, servers...), clients...)
	defer func() {
		for _, n := range all {
			n.send(envelope{Type: TypeShutdown, Shutdown: true})
			n.close()
		}
	}()
	if d, ok := ctx.Deadline(); ok {
		m.steady = d
		for _, n := range all {
			n.c.SetDeadline(d)
		}
	}

	doc := &BenchDoc{
		Proto:         m.cfg.Sweep.Proto,
		M:             m.cfg.Sweep.M,
		Items:         m.cfg.Sweep.Items,
		Engine:        m.cfg.Sweep.Engine,
		Servers:       len(servers),
		Clients:       len(clients),
		Seed:          m.cfg.Sweep.Seed,
		TickMS:        float64(m.cfg.Sweep.Tick) / float64(time.Millisecond),
		Deadline:      m.cfg.Sweep.Deadline.String(),
		RestartPolicy: m.cfg.Sweep.RestartPolicy,
	}
	for ci, key := range m.cfg.Sweep.cells() {
		if len(servers) == 0 {
			return doc, fmt.Errorf("cluster: no live node pairs remain after %d cells (%d failed)",
				len(doc.Cells), doc.FailedCells)
		}
		cell, dead, err := m.runCell(ci, key, servers, clients)
		if err != nil {
			return doc, fmt.Errorf("cluster: cell %v: %w", key, err)
		}
		doc.Cells = append(doc.Cells, *cell)
		doc.TotalSessions += cell.Sessions
		doc.TotalCompleted += cell.Completed
		doc.TotalViolations += cell.Violations
		if cell.Err != "" {
			doc.FailedCells++
			m.logf("cell %v: dropped pairs: %s", key, cell.Err)
		}
		// Cull dead pairs (descending so earlier indices stay valid). The
		// wedged node's conn is poisoned — a late report would desync the
		// framing — and its partner has no peer for future cells, so both
		// go. Shutdown is best-effort; the close is what matters.
		for i := len(dead) - 1; i >= 0; i-- {
			p := dead[i]
			for _, n := range []*node{servers[p], clients[p]} {
				n.send(envelope{Type: TypeShutdown, Shutdown: true})
				n.close()
			}
			servers = append(servers[:p], servers[p+1:]...)
			clients = append(clients[:p], clients[p+1:]...)
		}
		m.logf("cell %v: completed=%d/%d violations=%d p50=%.1fms p99=%.1fms throughput=%.1f items/s",
			key, cell.Completed, cell.Sessions, cell.Violations,
			cell.Latency.P50, cell.Latency.P99, cell.ThroughputItemsPerSec)
	}
	return doc, nil
}

// assemble accepts control connections until the configured fleet has
// said hello. Extra or unknown-role connections are rejected.
func (m *Master) assemble(ctx context.Context) (servers, clients []*node, err error) {
	deadline := time.Now().Add(m.cfg.AssembleTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	type tln interface{ SetDeadline(time.Time) error }
	if dl, ok := m.ln.(tln); ok {
		dl.SetDeadline(deadline)
	}
	defer func() {
		if err != nil {
			for _, n := range append(servers, clients...) {
				n.close()
			}
		}
	}()
	for len(servers) < m.cfg.Servers || len(clients) < m.cfg.Clients {
		c, aerr := m.ln.Accept()
		if aerr != nil {
			return servers, clients, fmt.Errorf("cluster: master accept (%d/%d servers, %d/%d clients connected): %w",
				len(servers), m.cfg.Servers, len(clients), m.cfg.Clients, aerr)
		}
		c.SetDeadline(deadline)
		n := &node{conn: newConn(c)}
		env, herr := n.recv(TypeHello)
		if herr != nil || env.Hello == nil {
			c.Close()
			continue
		}
		n.hello = *env.Hello
		switch {
		case n.hello.Role == RoleServer && len(servers) < m.cfg.Servers:
			servers = append(servers, n)
		case n.hello.Role == RoleClient && len(clients) < m.cfg.Clients:
			clients = append(clients, n)
		default:
			c.Close()
			continue
		}
		c.SetDeadline(time.Time{})
		m.logf("node %q connected as %s (%d/%d servers, %d/%d clients)",
			n.hello.Name, n.hello.Role, len(servers), m.cfg.Servers, len(clients), m.cfg.Clients)
	}
	// Deterministic pairing: sort each role by node name so the same
	// fleet always forms the same pairs regardless of connect order.
	byName := func(ns []*node) {
		sort.Slice(ns, func(i, j int) bool { return ns[i].hello.Name < ns[j].hello.Name })
	}
	byName(servers)
	byName(clients)
	return servers, clients, nil
}

// runCell drives one grid cell across every pair: prepare both ends,
// exchange their bound data addresses, start them, and collect reports.
// With MasterConfig.CellTimeout set, a node failure marks its pair dead
// (returned indices, ascending) instead of aborting; the cell
// aggregates whatever reports survived, with BenchCell.Err describing
// the losses.
func (m *Master) runCell(ci int, key CellKey, servers, clients []*node) (*BenchCell, []int, error) {
	pairs := len(servers)
	sw := &m.cfg.Sweep
	seedBase := sw.Seed + int64(ci)*CellSeedStride

	// failure[p] non-empty marks pair p dead this cell; abort(p, err)
	// routes an error either into it (timed mode) or out (strict mode).
	failure := make([]string, pairs)
	strict := m.cfg.CellTimeout <= 0
	if !strict {
		dl := time.Now().Add(m.cfg.CellTimeout)
		for _, n := range append(append([]*node{}, servers...), clients...) {
			n.c.SetDeadline(dl)
		}
		defer func() {
			for p := 0; p < pairs; p++ {
				if failure[p] == "" {
					servers[p].c.SetDeadline(m.steady)
					clients[p].c.SetDeadline(m.steady)
				}
			}
		}()
	}

	// Split the cell's sessions across pairs; earlier pairs absorb the
	// remainder. A pair's assignment is identical for both ends except
	// for the client-side Rate and Impair.
	asgn := make([]Assignment, pairs)
	firstID := uint64(1)
	for p := 0; p < pairs; p++ {
		n := key.Sessions / pairs
		if p < key.Sessions%pairs {
			n++
		}
		asgn[p] = Assignment{
			Cell:       key,
			Proto:      sw.Proto,
			M:          sw.M,
			Items:      sw.Items,
			Timeout:    sw.Timeout,
			Window:     sw.Window,
			Cap:        sw.Cap,
			Sessions:   n,
			FirstID:    firstID,
			Seed:       seedBase,
			TickNS:     int64(sw.Tick),
			DeadlineNS: int64(sw.Deadline),
			Engine:     sw.Engine,
			// Chaos is shared by both ends: each node applies only the
			// crash points targeting its own half.
			Chaos:         key.Chaos,
			RestartPolicy: sw.RestartPolicy,
		}
		firstID += uint64(n)
	}

	// Phase 1: prepare both ends of every pair, collect their bound
	// data-plane addresses. Every node advances concurrently — binding a
	// socket is quick, but a straggler must not serialize the fleet.
	type bound struct {
		addr string
		err  error
	}
	prep := func(n *node, a Assignment, out *bound) {
		if err := n.send(envelope{Type: TypePrepare, Prepare: &a}); err != nil {
			out.err = err
			return
		}
		env, err := n.recv(TypeReady)
		if err != nil {
			out.err = err
			return
		}
		if env.Ready != nil && env.Ready.Err != "" {
			out.err = fmt.Errorf("cluster: node %q: %s", n.hello.Name, env.Ready.Err)
			return
		}
		if env.Ready == nil || env.Ready.DataAddr == "" {
			out.err = fmt.Errorf("cluster: node %q sent empty ready", n.hello.Name)
			return
		}
		out.addr = env.Ready.DataAddr
	}
	srvBound := make([]bound, pairs)
	cliBound := make([]bound, pairs)
	var wg sync.WaitGroup
	for p := 0; p < pairs; p++ {
		ca := asgn[p]
		ca.Rate = key.Rate
		ca.Impair = key.Impair
		wg.Add(2)
		go func(p int) { defer wg.Done(); prep(servers[p], asgn[p], &srvBound[p]) }(p)
		go func(p int, ca Assignment) { defer wg.Done(); prep(clients[p], ca, &cliBound[p]) }(p, ca)
	}
	wg.Wait()
	for p := 0; p < pairs; p++ {
		var perr error
		switch {
		case srvBound[p].err != nil:
			perr = fmt.Errorf("prepare server %q: %w", servers[p].hello.Name, srvBound[p].err)
		case cliBound[p].err != nil:
			perr = fmt.Errorf("prepare client %q: %w", clients[p].hello.Name, cliBound[p].err)
		}
		if perr != nil {
			if strict {
				return nil, nil, perr
			}
			failure[p] = perr.Error()
		}
	}

	// Phase 2: cross the addresses and start both ends of every live
	// pair. From the first start onward the data plane is live; the
	// cell clock starts here.
	cellStart := time.Now()
	for p := 0; p < pairs; p++ {
		if failure[p] != "" {
			continue
		}
		var serr error
		if serr = servers[p].send(envelope{Type: TypeStart, Start: &Start{PeerAddr: cliBound[p].addr}}); serr == nil {
			serr = clients[p].send(envelope{Type: TypeStart, Start: &Start{PeerAddr: srvBound[p].addr}})
		}
		if serr != nil {
			if strict {
				return nil, nil, serr
			}
			failure[p] = serr.Error()
		}
	}

	// Collect every live node's report (they arrive as each node's half
	// of the cell finishes).
	type slot struct {
		n    *node
		pair int
	}
	var waiting []slot
	for p := 0; p < pairs; p++ {
		if failure[p] == "" {
			waiting = append(waiting, slot{servers[p], p}, slot{clients[p], p})
		}
	}
	reports := make([]NodeReport, len(waiting))
	errs := make([]error, len(waiting))
	wg.Add(len(waiting))
	for i, s := range waiting {
		go func(i int, n *node) {
			defer wg.Done()
			env, err := n.recv(TypeReport)
			if err != nil {
				errs[i] = err
				return
			}
			if env.Report == nil {
				errs[i] = fmt.Errorf("cluster: node %q sent empty report", n.hello.Name)
				return
			}
			reports[i] = *env.Report
		}(i, s.n)
	}
	wg.Wait()
	var ok []NodeReport
	for i, s := range waiting {
		var rerr error
		switch {
		case errs[i] != nil:
			rerr = fmt.Errorf("report from %q: %w", s.n.hello.Name, errs[i])
		case reports[i].Err != "":
			rerr = fmt.Errorf("node %q failed: %s", s.n.hello.Name, reports[i].Err)
		default:
			ok = append(ok, reports[i])
			continue
		}
		if strict {
			return nil, nil, rerr
		}
		if failure[s.pair] == "" {
			failure[s.pair] = rerr.Error()
		}
	}

	cell := aggregate(key, ok, time.Since(cellStart))
	var dead []int
	var msgs []string
	for p, f := range failure {
		if f != "" {
			dead = append(dead, p)
			msgs = append(msgs, fmt.Sprintf("pair %s↔%s: %s",
				servers[p].hello.Name, clients[p].hello.Name, f))
		}
	}
	cell.Err = strings.Join(msgs, "; ")
	return &cell, dead, nil
}
