package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"

	"seqtx/internal/faults"
	"seqtx/internal/obs"
	"seqtx/internal/protocol"
	"seqtx/internal/registry"
	"seqtx/internal/seq"
	"seqtx/internal/wire"
)

// NodeConfig configures one fleet member.
type NodeConfig struct {
	// Master is the coordinator's control-plane address.
	Master string
	// Role is RoleServer (receiver halves) or RoleClient (sender halves).
	Role string
	// Name identifies the node in reports and pairs the fleet
	// deterministically (the master sorts each role by name).
	Name string
	// DataHost is the local host/IP the data-plane sockets bind on
	// ("" = 127.0.0.1). On a real multi-machine fleet this is the
	// interface the peer can reach.
	DataHost string
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// RunNode connects to the master and serves cells until shutdown: for
// each assignment it binds a fresh peer-addressed UDP socket, reports
// the bound address, waits for the peer's address, runs its halves of
// the cell's sessions, and reports the outcome. A fresh socket per cell
// keeps cells isolated — a late datagram from the previous cell arrives
// at a dead port instead of a live mux (and would be rejected as
// foreign even if the kernel reused the port, since the peer binds anew
// too).
func RunNode(ctx context.Context, cfg NodeConfig) error {
	if cfg.Role != RoleServer && cfg.Role != RoleClient {
		return fmt.Errorf("cluster: node role must be %q or %q, got %q", RoleServer, RoleClient, cfg.Role)
	}
	if cfg.Name == "" {
		return fmt.Errorf("cluster: node needs a name")
	}
	if cfg.DataHost == "" {
		cfg.DataHost = "127.0.0.1"
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", cfg.Master)
	if err != nil {
		return fmt.Errorf("cluster: node %q dial master: %w", cfg.Name, err)
	}
	c := newConn(nc)
	defer c.close()
	if dl, ok := ctx.Deadline(); ok {
		nc.SetDeadline(dl)
	}
	if err := c.send(envelope{Type: TypeHello, Hello: &Hello{Role: cfg.Role, Name: cfg.Name}}); err != nil {
		return err
	}
	logf("node %s (%s): connected to master %s", cfg.Name, cfg.Role, cfg.Master)

	for {
		env, err := c.recv("")
		if err != nil {
			return fmt.Errorf("cluster: node %q: %w", cfg.Name, err)
		}
		switch env.Type {
		case TypePrepare:
			if env.Prepare == nil {
				return fmt.Errorf("cluster: node %q: empty prepare", cfg.Name)
			}
			if err := runCellNode(ctx, cfg, c, *env.Prepare, logf); err != nil {
				return err
			}
		case TypeShutdown:
			logf("node %s: shutdown", cfg.Name)
			return nil
		default:
			return fmt.Errorf("cluster: node %q: unexpected %q outside a cell", cfg.Name, env.Type)
		}
	}
}

// runCellNode serves one assignment end to end: bind → ready → start →
// run → report. Node-level failures are reported to the master (in the
// ready or report envelope) AND returned, so both sides see them.
func runCellNode(ctx context.Context, cfg NodeConfig, c *conn, asgn Assignment, logf func(string, ...any)) error {
	host := wire.SenderEnd
	if cfg.Role == RoleServer {
		host = wire.ReceiverEnd
	}
	reg := obs.NewRegistry()

	fail := func(stage string, err error) error {
		werr := fmt.Errorf("cluster: node %q %s: %w", cfg.Name, stage, err)
		c.send(envelope{Type: TypeReady, Ready: &Ready{Err: werr.Error()}})
		return werr
	}

	peer, err := wire.NewUDPPeer(host, net.JoinHostPort(cfg.DataHost, "0"), "", reg)
	if err != nil {
		return fail("bind", err)
	}
	defer peer.Close()

	// The transport the sessions see: the raw peer, or the peer behind
	// the cell's impairment preset (the peer reference stays in hand for
	// SetRemote/LocalAddr, which the wrapper hides).
	var tr wire.Transport = peer
	if asgn.Impair != "" && asgn.Impair != "none" {
		opts, err := wire.ImpairSpec(asgn.Impair, asgn.Seed)
		if err != nil {
			return fail("impair", err)
		}
		if tr, err = wire.NewImpairment(peer, opts, reg); err != nil {
			return fail("impair", err)
		}
	}
	engine, err := wire.ParseEngine(asgn.Engine)
	if err != nil {
		return fail("engine", err)
	}
	chaosOn, chaosPts, chaosPolicy, err := nodeChaos(asgn, cfg.Role)
	if err != nil {
		return fail("chaos", err)
	}
	cfgs, err := buildHalves(asgn, host)
	if err != nil {
		return fail("sessions", err)
	}

	if err := c.send(envelope{Type: TypeReady, Ready: &Ready{DataAddr: peer.LocalAddr().String()}}); err != nil {
		return err
	}
	env, err := c.recv(TypeStart)
	if err != nil {
		return fmt.Errorf("cluster: node %q: %w", cfg.Name, err)
	}
	if env.Start == nil || env.Start.PeerAddr == "" {
		return fmt.Errorf("cluster: node %q: empty start", cfg.Name)
	}
	if err := peer.SetRemote(env.Start.PeerAddr); err != nil {
		rep := NodeReport{Node: cfg.Name, Role: cfg.Role, Err: err.Error()}
		c.send(envelope{Type: TypeReport, Report: &rep})
		return fmt.Errorf("cluster: node %q: %w", cfg.Name, err)
	}
	logf("node %s: cell %v: %d sessions, data %s ↔ %s",
		cfg.Name, asgn.Cell, asgn.Sessions, peer.LocalAddr(), env.Start.PeerAddr)

	start := time.Now()
	var rep NodeReport
	var runErr error
	switch {
	case chaosOn:
		// Chaos cells run every session under crash-restart supervision,
		// BOTH halves: the node with the preset's crash points injects
		// them, and the peer node still needs the supervised audit — a
		// restarted remote process legitimately replays or rewrites, which
		// the strict prefix audit would misread as a violation. Rate
		// pacing does not compose with supervision and is ignored.
		if cfg.Role == RoleClient && asgn.Rate > 0 {
			logf("node %s: cell %v: chaos cell ignores rate pacing", cfg.Name, asgn.Cell)
		}
		var sreports []wire.SupervisedReport
		sreports, runErr = wire.ServeSupervised(ctx, wire.ChaosServeConfig{
			ServeConfig: wire.ServeConfig{
				Transport: tr, Sessions: cfgs, Obs: reg, Engine: engine,
			},
			Chaos: wire.ChaosConfig{Crashes: chaosPts, Policy: chaosPolicy, Seed: asgn.Seed},
			Rebuild: func(i int) (protocol.Sender, protocol.Receiver, error) {
				return registry.Pair(asgn.Proto, asgnParams(asgn), cfgs[i].Input)
			},
		})
		rep = summarizeSupervisedNode(cfg, sreports, reg, time.Since(start))
	case cfg.Role == RoleClient && asgn.Rate > 0:
		var reports []wire.Report
		reports, runErr = runPaced(ctx, tr, cfgs, reg, engine, asgn.Rate)
		rep = summarizeNode(cfg, reports, reg, time.Since(start))
	default:
		var reports []wire.Report
		reports, runErr = wire.Serve(ctx, wire.ServeConfig{
			Transport: tr, Sessions: cfgs, Obs: reg, Engine: engine,
		})
		rep = summarizeNode(cfg, reports, reg, time.Since(start))
	}
	if runErr != nil {
		rep.Err = runErr.Error()
	}
	if err := c.send(envelope{Type: TypeReport, Report: &rep}); err != nil {
		return err
	}
	logf("node %s: cell %v: complete=%d/%d violations=%d foreign=%d",
		cfg.Name, asgn.Cell, rep.Completed, rep.Sessions, rep.Violations, rep.ForeignDrops)
	return runErr
}

// buildHalves derives this node's session configs from the assignment.
// Both ends of a pair call this with the same assignment (modulo Rate
// and Impair) and different hosts, so session id i's input tape X is
// derived identically on both machines — the receiver half needs X for
// the prefix audit, and shipping tapes through the control plane would
// couple its size to the data plane's.
func buildHalves(asgn Assignment, host wire.End) ([]wire.SessionConfig, error) {
	if asgn.Sessions <= 0 {
		return nil, fmt.Errorf("non-positive session count %d", asgn.Sessions)
	}
	params := asgnParams(asgn)
	tick := time.Duration(asgn.TickNS)
	deadline := time.Duration(asgn.DeadlineNS)
	src := rand.NewSource(0)
	rng := rand.New(src)
	cfgs := make([]wire.SessionConfig, asgn.Sessions)
	for j := range cfgs {
		id := asgn.FirstID + uint64(j)
		sessSeed := asgn.Seed + int64(id)
		src.Seed(sessSeed)
		x, err := seq.RandomRepetitionFree(rng, asgn.M, asgn.Items)
		if err != nil {
			return nil, err
		}
		s, r, err := registry.Pair(asgn.Proto, params, x)
		if err != nil {
			return nil, err
		}
		cfgs[j] = wire.SessionConfig{
			ID: id, Sender: s, Receiver: r, Input: x,
			Tick: tick, Deadline: deadline, Seed: sessSeed,
			Half: host,
		}
	}
	return cfgs, nil
}

// asgnParams maps an assignment's protocol parameters to the registry's.
func asgnParams(asgn Assignment) registry.Params {
	return registry.Params{
		M: asgn.M, Timeout: asgn.Timeout, Window: asgn.Window,
		Seed: asgn.Seed, Cap: asgn.Cap,
	}
}

// nodeChaos resolves an assignment's chaos preset for this node: whether
// supervision is on at all, and which of the preset's crash points this
// node injects — only those targeting its own half, since the other
// half's process lives on the peer machine.
func nodeChaos(asgn Assignment, role string) (on bool, pts []faults.CrashPoint, policy wire.RestartPolicy, err error) {
	policy, err = wire.ParseRestartPolicy(asgn.RestartPolicy)
	if err != nil {
		return false, nil, 0, err
	}
	if asgn.Chaos == "" || asgn.Chaos == "none" {
		return false, nil, policy, nil
	}
	spec, err := faults.PresetSpec(asgn.Chaos)
	if err != nil {
		return false, nil, 0, err
	}
	who := faults.Sender
	if role == RoleServer {
		who = faults.Receiver
	}
	for _, p := range spec.Crashes {
		if p.Who == who {
			pts = append(pts, p)
		}
	}
	return true, pts, policy, nil
}

// runPaced is the client-side rate-paced variant of wire.Serve: session
// starts are spaced 1/rate apart, so a cell ramps load instead of
// slamming every sender on at once.
func runPaced(ctx context.Context, tr wire.Transport, cfgs []wire.SessionConfig,
	reg *obs.Registry, engine wire.Engine, rate float64) ([]wire.Report, error) {

	mux := wire.NewMuxConfig(tr, wire.MuxConfig{Obs: reg, Engine: engine})
	sessions := make([]*wire.Session, len(cfgs))
	for i, sc := range cfgs {
		s, err := mux.NewSession(sc)
		if err != nil {
			mux.Close()
			return nil, err
		}
		sessions[i] = s
	}
	interval := time.Duration(float64(time.Second) / rate)
	reports := make([]wire.Report, len(sessions))
	var wg sync.WaitGroup
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
pacing:
	for i, s := range sessions {
		wg.Add(1)
		go func(i int, s *wire.Session) {
			defer wg.Done()
			reports[i] = s.Run(ctx)
		}(i, s)
		if i == len(sessions)-1 {
			break
		}
		select {
		case <-ticker.C:
		case <-ctx.Done():
			// Start the rest unpaced so every session still runs (and
			// reports) before shutdown.
			for j := i + 1; j < len(sessions); j++ {
				wg.Add(1)
				go func(j int, s *wire.Session) {
					defer wg.Done()
					reports[j] = s.Run(ctx)
				}(j, sessions[j])
			}
			break pacing
		}
	}
	wg.Wait()
	if err := mux.Close(); err != nil {
		return reports, fmt.Errorf("cluster: closing transport: %w", err)
	}
	return reports, nil
}

// summarizeNode folds the node's session reports and wire counters into
// its NodeReport for the cell.
func summarizeNode(cfg NodeConfig, reports []wire.Report,
	reg *obs.Registry, elapsed time.Duration) NodeReport {

	rep := NodeReport{
		Node: cfg.Name, Role: cfg.Role,
		Sessions:       len(reports),
		ElapsedSeconds: elapsed.Seconds(),
	}
	for _, r := range reports {
		if r.Complete {
			rep.Completed++
			if cfg.Role == RoleClient && r.Elapsed > 0 {
				rep.LatenciesMS = append(rep.LatenciesMS,
					float64(r.Elapsed)/float64(time.Millisecond))
			}
		}
		if r.SafetyViolation != nil {
			rep.Violations++
		}
		if cfg.Role == RoleServer {
			rep.ItemsDelivered += int64(len(r.Output))
		}
	}
	foldWireCounters(&rep, reg)
	return rep
}

// summarizeSupervisedNode is the chaos-cell counterpart: a session's
// safety verdict is its post-stabilization bad-write count (bad writes
// inside a recovery window are stabilization debt, not violations), and
// the incarnation/watchdog totals ride along for the cell report.
func summarizeSupervisedNode(cfg NodeConfig, reports []wire.SupervisedReport,
	reg *obs.Registry, elapsed time.Duration) NodeReport {

	rep := NodeReport{
		Node: cfg.Name, Role: cfg.Role,
		Sessions:       len(reports),
		ElapsedSeconds: elapsed.Seconds(),
	}
	for _, r := range reports {
		if r.Complete {
			rep.Completed++
			if cfg.Role == RoleClient && r.Elapsed > 0 {
				rep.LatenciesMS = append(rep.LatenciesMS,
					float64(r.Elapsed)/float64(time.Millisecond))
			}
		}
		if r.PostStabViolations > 0 {
			rep.Violations++
		}
		rep.Incarnations += len(r.Incarnations)
		rep.BadWrites += r.BadWrites
		rep.PostStabViolations += r.PostStabViolations
		rep.WatchdogEscalations += r.WatchdogEscalations
		if cfg.Role == RoleServer {
			rep.ItemsDelivered += int64(len(r.Output))
		}
	}
	foldWireCounters(&rep, reg)
	return rep
}

// foldWireCounters copies the cell registry's wire counters into the
// report.
func foldWireCounters(rep *NodeReport, reg *obs.Registry) {
	for name, v := range reg.Snapshot().Counters {
		switch {
		case strings.HasPrefix(name, "wire_frames_tx_total"):
			rep.FramesTx += v
		case strings.HasPrefix(name, "wire_frames_rx_total"):
			rep.FramesRx += v
		case name == `wire_frames_dropped_total{cause="foreign"}`:
			rep.ForeignDrops = v
		case name == `wire_frames_dropped_total{cause="backpressure"}`:
			rep.BackpressureDrops = v
		case name == `wire_frames_dropped_total{cause="oversize"}`:
			rep.OversizeDrops = v
		}
	}
}
