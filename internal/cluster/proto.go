// Package cluster is the distributed runtime for the wire data plane: a
// coordinator (the master) hands out per-cell session assignments to a
// fleet of nodes over a small line-JSON control protocol, the nodes run
// the sender and receiver halves of each session over peer-addressed UDP
// (wire.UDPPeer), and the master aggregates their reports into a bench
// document. It is the multi-process counterpart of wire.Serve: the same
// sessions, the same safety audit, but the two ends of every link live
// in different processes — typically on different machines — so nothing
// can lean on the loopback-era assumption that one struct owns both
// sockets.
//
// Control protocol (line-delimited JSON over one TCP connection per
// node, master-driven, strictly request/response from the node's view):
//
//	node → master   hello{role,name}           once, on connect
//	master → node   prepare{assignment}        per cell: bind your socket
//	node → master   ready{data_addr}           concrete host:port bound
//	master → node   start{peer_addr}           the opposite end's address
//	node → master   report{node_report}        when the cell finishes
//	master → node   shutdown{}                 sweep done, exit
//
// The two-phase prepare/start exchange exists because a node must bind
// before its address is known (kernel-assigned ports), and both ends'
// addresses must be exchanged before either can validate datagram
// sources: a UDPPeer rejects every datagram until its remote is set.
package cluster

import (
	"encoding/json"
	"fmt"
	"net"
)

// Node roles.
const (
	RoleServer = "server" // runs receiver halves (the output-tape side)
	RoleClient = "client" // runs sender halves (the load-generating side)
)

// Message types carried in the envelope's Type field.
const (
	TypeHello    = "hello"
	TypePrepare  = "prepare"
	TypeReady    = "ready"
	TypeStart    = "start"
	TypeReport   = "report"
	TypeShutdown = "shutdown"
)

// Hello introduces a node to the master.
type Hello struct {
	Role string `json:"role"`
	Name string `json:"name"`
}

// Assignment is one node's share of one sweep cell: which sessions to
// run, as which half, derived from which seed. The sender and receiver
// assignments for a pair differ only in Rate and Impair (client-side
// concerns); everything the session machines are built from — proto,
// params, ids, seeds — is identical, which is what lets both processes
// derive the same input tape X independently.
type Assignment struct {
	Cell CellKey `json:"cell"`

	// Protocol construction parameters (mirror registry.Params).
	Proto   string `json:"proto"`
	M       int    `json:"m"`
	Items   int    `json:"items"`
	Timeout int    `json:"timeout,omitempty"`
	Window  int    `json:"window,omitempty"`
	Cap     int    `json:"cap,omitempty"`

	// Sessions is this node's share of the cell; session j of this node
	// has wire id FirstID+j and derives its input from Seed+int64(id).
	Sessions int    `json:"sessions"`
	FirstID  uint64 `json:"first_id"`
	Seed     int64  `json:"seed"`

	// TickNS / DeadlineNS pace the sessions (nanoseconds; JSON-friendly).
	TickNS     int64 `json:"tick_ns"`
	DeadlineNS int64 `json:"deadline_ns"`

	// Rate paces client-side session starts (sessions/sec; 0 = all at
	// once). Servers ignore it — receiver halves just wait for traffic.
	Rate float64 `json:"rate,omitempty"`

	// Impair names the wire impairment preset the client applies to its
	// transport ("" or "none" = clean link). Impairing one end suffices:
	// the preset shapes both directions of that end's socket.
	Impair string `json:"impair,omitempty"`

	// Engine selects the session executor ("loop" default, "goroutine").
	Engine string `json:"engine,omitempty"`

	// Chaos names the crash-restart preset driving wire.ServeSupervised
	// on this node ("" or "none" = plain wire.Serve). Unlike Impair it is
	// shared by both ends of a pair: each node applies only the crash
	// points that target its own half — the client crashes senders, the
	// server crashes receivers — so one preset name describes the whole
	// pair's process-fault schedule.
	Chaos string `json:"chaos,omitempty"`
	// RestartPolicy optionally overrides the preset's per-point scramble
	// flags ("preset", "amnesia", "scramble").
	RestartPolicy string `json:"restart_policy,omitempty"`
}

// Ready carries the concrete data-plane address a node bound for the
// cell (kernel-assigned port resolved), or the node's failure to bind.
type Ready struct {
	DataAddr string `json:"data_addr,omitempty"`
	Err      string `json:"err,omitempty"`
}

// Start points a node at its peer's bound data-plane address.
type Start struct {
	PeerAddr string `json:"peer_addr"`
}

// NodeReport is one node's outcome for one cell.
type NodeReport struct {
	Node string `json:"node"`
	Role string `json:"role"`

	Sessions   int `json:"sessions"`
	Completed  int `json:"completed"`
	Violations int `json:"violations"`

	// ItemsDelivered counts output-tape items (meaningful on servers:
	// the receiver half owns the tape).
	ItemsDelivered int64 `json:"items_delivered"`

	// LatenciesMS are per-completed-session elapsed times (meaningful on
	// clients: a sender half's life spans first send to final ack).
	LatenciesMS []float64 `json:"latencies_ms,omitempty"`

	// Wire counters for the cell (from the node's per-cell registry).
	FramesTx          int64 `json:"frames_tx"`
	FramesRx          int64 `json:"frames_rx"`
	ForeignDrops      int64 `json:"foreign_drops"`
	BackpressureDrops int64 `json:"backpressure_drops"`
	OversizeDrops     int64 `json:"oversize_drops"`

	ElapsedSeconds float64 `json:"elapsed_seconds"`

	// Chaos tallies, populated when the cell ran under crash-restart
	// supervision. Violations above then counts sessions with
	// post-stabilization bad writes (the supervised analogue of a strict
	// prefix violation); these fields keep the raw totals.
	Incarnations        int `json:"incarnations,omitempty"`
	BadWrites           int `json:"bad_writes,omitempty"`
	PostStabViolations  int `json:"post_stab_violations,omitempty"`
	WatchdogEscalations int `json:"watchdog_escalations,omitempty"`

	// Err reports a node-level failure (bind error, bad assignment);
	// session-level outcomes stay in the counts above.
	Err string `json:"err,omitempty"`
}

// envelope is the single wire message: Type plus exactly one payload.
type envelope struct {
	Type     string      `json:"type"`
	Hello    *Hello      `json:"hello,omitempty"`
	Prepare  *Assignment `json:"prepare,omitempty"`
	Ready    *Ready      `json:"ready,omitempty"`
	Start    *Start      `json:"start,omitempty"`
	Report   *NodeReport `json:"report,omitempty"`
	Shutdown bool        `json:"shutdown,omitempty"`
}

// conn wraps one control connection with its codecs. json.Encoder
// terminates every message with a newline, giving the line-JSON framing
// for free; json.Decoder streams them back out.
type conn struct {
	c   net.Conn
	enc *json.Encoder
	dec *json.Decoder
}

func newConn(c net.Conn) *conn {
	return &conn{c: c, enc: json.NewEncoder(c), dec: json.NewDecoder(c)}
}

func (c *conn) send(env envelope) error {
	if err := c.enc.Encode(env); err != nil {
		return fmt.Errorf("cluster: send %s: %w", env.Type, err)
	}
	return nil
}

// recv reads the next envelope and checks its type; wantType "" accepts
// anything (the node's dispatch loop).
func (c *conn) recv(wantType string) (envelope, error) {
	var env envelope
	if err := c.dec.Decode(&env); err != nil {
		return env, fmt.Errorf("cluster: recv: %w", err)
	}
	if wantType != "" && env.Type != wantType {
		return env, fmt.Errorf("cluster: recv: got %q, want %q", env.Type, wantType)
	}
	return env, nil
}

func (c *conn) close() error { return c.c.Close() }
