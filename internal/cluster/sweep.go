package cluster

import (
	"fmt"
	"time"

	"seqtx/internal/faults"
	"seqtx/internal/stats"
	"seqtx/internal/wire"
)

// SweepConfig is the evaluation grid the master drives: every
// combination of Sessions × Rates × Impairs is one cell, run across the
// whole node fleet before the next cell starts.
type SweepConfig struct {
	// Protocol construction parameters, shared by every cell.
	Proto   string
	M       int
	Items   int
	Timeout int
	Window  int
	Cap     int

	// The grid axes. Zero-length axes default to a single neutral value.
	Sessions []int     // total concurrent sessions per cell (split across node pairs)
	Rates    []float64 // client session-start pacing, sessions/sec (0 = unpaced)
	Impairs  []string  // wire impairment presets ("none" = clean)
	// CrashPresets is the chaos axis: process-fault preset names (from
	// faults.PresetNames) whose crash points each node applies to its
	// own half under wire.ServeSupervised ("none" = unsupervised).
	CrashPresets []string

	// RestartPolicy overrides the chaos presets' per-point scramble
	// flags for every supervised cell ("", "preset", "amnesia",
	// "scramble").
	RestartPolicy string

	// Pacing shared by every session.
	Tick     time.Duration
	Deadline time.Duration

	// Seed is the base seed; cell c, session id i derives its input from
	// Seed + c*CellSeedStride + i, so no two cells share a tape stream.
	Seed int64

	// Engine selects the node-side session executor ("" = "loop").
	Engine string
}

// CellSeedStride spaces the per-cell seed bases far enough apart that no
// realistic cell's id range collides with the next cell's.
const CellSeedStride = 1 << 20

// CellKey identifies one cell of the sweep grid. Chaos is "" for
// unsupervised cells (the "none" axis value), so pre-chaos keys
// compare equal to their modern form.
type CellKey struct {
	Sessions int     `json:"sessions"`
	Rate     float64 `json:"rate"`
	Impair   string  `json:"impair"`
	Chaos    string  `json:"chaos,omitempty"`
}

func (k CellKey) String() string {
	s := fmt.Sprintf("sessions=%d rate=%g impair=%s", k.Sessions, k.Rate, k.Impair)
	if k.Chaos != "" {
		s += " chaos=" + k.Chaos
	}
	return s
}

// normalize fills defaulted axes and validates the grid.
func (c *SweepConfig) normalize() error {
	if c.Proto == "" {
		c.Proto = "alpha"
	}
	if c.M <= 0 {
		c.M = 8
	}
	if c.Items <= 0 {
		c.Items = 6
	}
	if c.Items > c.M {
		return fmt.Errorf("cluster: sweep items %d exceeds m %d (inputs are repetition-free)", c.Items, c.M)
	}
	if len(c.Sessions) == 0 {
		c.Sessions = []int{8}
	}
	for _, n := range c.Sessions {
		if n <= 0 {
			return fmt.Errorf("cluster: sweep sessions axis has non-positive value %d", n)
		}
	}
	if len(c.Rates) == 0 {
		c.Rates = []float64{0}
	}
	for _, r := range c.Rates {
		if r < 0 {
			return fmt.Errorf("cluster: sweep rates axis has negative value %g", r)
		}
	}
	if len(c.Impairs) == 0 {
		c.Impairs = []string{"none"}
	}
	if len(c.CrashPresets) == 0 {
		c.CrashPresets = []string{"none"}
	}
	for _, name := range c.CrashPresets {
		if name == "none" {
			continue
		}
		spec, err := faults.PresetSpec(name)
		if err != nil {
			return fmt.Errorf("cluster: sweep crash-presets axis: %w", err)
		}
		if !spec.ProcessFaults() {
			return fmt.Errorf("cluster: sweep crash preset %q injects no process faults — link impairments belong on the impairs axis", name)
		}
	}
	if _, err := wire.ParseRestartPolicy(c.RestartPolicy); err != nil {
		return err
	}
	if c.Tick <= 0 {
		c.Tick = time.Millisecond
	}
	if c.Deadline <= 0 {
		c.Deadline = 30 * time.Second
	}
	if c.Engine == "" {
		c.Engine = "loop"
	}
	return nil
}

// cells enumerates the grid in deterministic order: sessions outermost,
// then rate, then impairment, then chaos preset ("none" → "" in the
// key, keeping unsupervised keys in their historical shape).
func (c *SweepConfig) cells() []CellKey {
	keys := make([]CellKey, 0, len(c.Sessions)*len(c.Rates)*len(c.Impairs)*len(c.CrashPresets))
	for _, n := range c.Sessions {
		for _, r := range c.Rates {
			for _, im := range c.Impairs {
				for _, ch := range c.CrashPresets {
					if ch == "none" {
						ch = ""
					}
					keys = append(keys, CellKey{Sessions: n, Rate: r, Impair: im, Chaos: ch})
				}
			}
		}
	}
	return keys
}

// LatencyMS summarizes per-session completion latency in milliseconds.
type LatencyMS struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

// BenchCell is one cell's aggregated outcome across the fleet.
type BenchCell struct {
	Cell CellKey `json:"cell"`

	Sessions   int `json:"sessions"`
	Completed  int `json:"completed"`
	Violations int `json:"violations"`

	ItemsDelivered        int64   `json:"items_delivered"`
	ThroughputItemsPerSec float64 `json:"throughput_items_per_sec"`
	Latency               LatencyMS `json:"latency_ms"`

	FramesTx          int64 `json:"frames_tx"`
	FramesRx          int64 `json:"frames_rx"`
	ForeignDrops      int64 `json:"foreign_drops"`
	BackpressureDrops int64 `json:"backpressure_drops"`
	OversizeDrops     int64 `json:"oversize_drops"`

	ElapsedSeconds float64 `json:"elapsed_seconds"`

	// Chaos tallies, summed across the fleet (zero for unsupervised
	// cells).
	Incarnations        int `json:"incarnations,omitempty"`
	BadWrites           int `json:"bad_writes,omitempty"`
	PostStabViolations  int `json:"post_stab_violations,omitempty"`
	WatchdogEscalations int `json:"watchdog_escalations,omitempty"`

	// Err records a cell-level failure (e.g. a node pair dropped by the
	// per-cell timeout); the aggregates above then cover only the
	// surviving nodes.
	Err string `json:"err,omitempty"`

	// Nodes keeps each node's raw report for the cell (latency samples
	// stripped — the summary above carries them).
	Nodes []NodeReport `json:"nodes"`
}

// BenchDoc is the sweep's output document (BENCH_cluster.json).
type BenchDoc struct {
	Proto    string  `json:"proto"`
	M        int     `json:"m"`
	Items    int     `json:"items"`
	Engine   string  `json:"engine"`
	Servers  int     `json:"servers"`
	Clients  int     `json:"clients"`
	Seed     int64   `json:"seed"`
	TickMS   float64 `json:"tick_ms"`
	Deadline string  `json:"deadline"`

	Cells []BenchCell `json:"cells"`

	// RestartPolicy echoes the chaos restart-policy override, when set.
	RestartPolicy string `json:"restart_policy,omitempty"`

	TotalSessions   int `json:"total_sessions"`
	TotalCompleted  int `json:"total_completed"`
	TotalViolations int `json:"total_violations"`
	// FailedCells counts cells that lost node pairs to the per-cell
	// timeout (their BenchCell.Err is set).
	FailedCells int `json:"failed_cells,omitempty"`
}

// aggregate folds one cell's node reports into a BenchCell. Latency
// percentiles come from the client side (a sender half's elapsed spans
// first send to final ack — the full round-trip pipeline); item and
// violation counts come from wherever they were observed (the receiver
// half owns the tape, so servers report deliveries; either side can
// observe a violation).
func aggregate(key CellKey, reports []NodeReport, elapsed time.Duration) BenchCell {
	cell := BenchCell{Cell: key, ElapsedSeconds: elapsed.Seconds()}
	var lat []float64
	for _, r := range reports {
		if r.Role == RoleClient {
			cell.Sessions += r.Sessions
			lat = append(lat, r.LatenciesMS...)
		}
		cell.Violations += r.Violations
		cell.ItemsDelivered += r.ItemsDelivered
		cell.FramesTx += r.FramesTx
		cell.FramesRx += r.FramesRx
		cell.ForeignDrops += r.ForeignDrops
		cell.BackpressureDrops += r.BackpressureDrops
		cell.OversizeDrops += r.OversizeDrops
		if r.Role == RoleServer {
			cell.Completed += r.Completed
		}
		cell.Incarnations += r.Incarnations
		cell.BadWrites += r.BadWrites
		cell.PostStabViolations += r.PostStabViolations
		cell.WatchdogEscalations += r.WatchdogEscalations
		stripped := r
		stripped.LatenciesMS = nil
		cell.Nodes = append(cell.Nodes, stripped)
	}
	if s := stats.Summarize(lat); s.N > 0 {
		cell.Latency = LatencyMS{P50: s.P50, P90: s.P90, P99: s.P99, Mean: s.Mean, Max: s.Max}
	}
	if cell.ElapsedSeconds > 0 {
		cell.ThroughputItemsPerSec = float64(cell.ItemsDelivered) / cell.ElapsedSeconds
	}
	return cell
}
