// Package epistemic implements the paper's knowledge machinery (§2.3):
// indistinguishability of points under the complete history
// interpretation, the knowledge operator K_R, and the learning times t_i
// — "the first time in r where R knows the values of the first i data
// elements".
//
// Knowledge is computed relative to an explored set of runs, obtained by
// exhaustively expanding every environment choice (Property 1b) up to a
// depth, across a set of candidate inputs. R's complete-history local
// state is its view — the chronological list of its own events — so two
// points are ~_R-indistinguishable exactly when their views are equal,
// and
//
//	(R, r, t) |= K_R(x_i = d)
//
// holds iff every explored point with the same view has x_i = d.
//
// Caveat (inherent to finite exploration): the explored set
// under-approximates the full run set, so "does not know" verdicts are
// sound (a confusion exhibited within the explored runs exists in the
// full system a fortiori), while "knows" verdicts are relative to the
// exploration depth. The tests choose assertions accordingly.
package epistemic

import (
	"fmt"

	"seqtx/internal/channel"
	"seqtx/internal/protocol"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
	"seqtx/internal/trace"
)

// Analysis indexes, for every receiver view reached in the exploration,
// the set of inputs whose runs can produce that view.
type Analysis struct {
	classes map[string]map[string]seq.Seq // view key -> input key -> input
	views   map[string]trace.View         // view key -> the view itself
	// Truncated reports whether any exploration hit its bounds.
	Truncated bool
	// States is the total number of (world, view) nodes visited.
	States int
}

// Config bounds the exploration.
type Config struct {
	// Depth is the BFS depth per input (required > 0).
	Depth int
	// MaxStates caps the per-input node count (0 = 1<<19).
	MaxStates int
}

// Analyze explores every run (all environment choices) of spec on each
// candidate input over the channel kind, up to the configured depth, and
// returns the view-class index.
func Analyze(spec protocol.Spec, inputs []seq.Seq, kind channel.Kind, cfg Config) (*Analysis, error) {
	if cfg.Depth <= 0 {
		return nil, fmt.Errorf("epistemic: Depth must be positive, got %d", cfg.Depth)
	}
	if cfg.MaxStates == 0 {
		cfg.MaxStates = 1 << 19
	}
	a := &Analysis{
		classes: make(map[string]map[string]seq.Seq),
		views:   make(map[string]trace.View),
	}
	for _, x := range inputs {
		if err := a.explore(spec, x, kind, cfg); err != nil {
			return nil, err
		}
	}
	return a, nil
}

type epiNode struct {
	w     *sim.World
	view  trace.View
	depth int
}

func (a *Analysis) explore(spec protocol.Spec, input seq.Seq, kind channel.Kind, cfg Config) error {
	link, err := channel.NewLinkOfKind(kind)
	if err != nil {
		return err
	}
	w, err := sim.New(spec, input, link)
	if err != nil {
		return err
	}
	start := &epiNode{w: w}
	a.record(start.view, input)
	seen := map[string]struct{}{w.Key() + "#" + start.view.Key(): {}}
	frontier := []*epiNode{start}
	states := 1
	a.States++
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		if cur.depth >= cfg.Depth {
			a.Truncated = true
			continue
		}
		for _, act := range cur.w.Enabled() {
			next := cur.w.Clone()
			if aerr := next.Apply(act); aerr != nil {
				return fmt.Errorf("epistemic: applying %s: %w", act, aerr)
			}
			view := cur.view
			switch {
			case act.Kind == trace.ActTickR:
				view = append(view.CloneView(), trace.ViewEvent{IsTick: true})
			case (act.Kind == trace.ActDeliver || act.Kind == trace.ActDeliverDup) && act.Dir == channel.SToR:
				view = append(view.CloneView(), trace.ViewEvent{Msg: act.Msg})
			}
			if len(view) != len(cur.view) {
				a.record(view, input)
			}
			key := next.Key() + "#" + view.Key()
			if _, ok := seen[key]; ok {
				continue
			}
			if states >= cfg.MaxStates {
				a.Truncated = true
				continue
			}
			seen[key] = struct{}{}
			states++
			a.States++
			frontier = append(frontier, &epiNode{w: next, view: view, depth: cur.depth + 1})
		}
	}
	return nil
}

func (a *Analysis) record(v trace.View, input seq.Seq) {
	k := v.Key()
	cls, ok := a.classes[k]
	if !ok {
		cls = make(map[string]seq.Seq)
		a.classes[k] = cls
		a.views[k] = v.CloneView()
	}
	cls[input.Key()] = input.Clone()
}

// Reached reports whether the view was reached in the exploration.
func (a *Analysis) Reached(v trace.View) bool {
	_, ok := a.classes[v.Key()]
	return ok
}

// ClassSize returns the number of distinct inputs that can produce v.
func (a *Analysis) ClassSize(v trace.View) int { return len(a.classes[v.Key()]) }

// Knows evaluates K_R(x_i) at any point with view v (i is 1-based, the
// paper's convention): it returns the value d with K_R(x_i = d) and true,
// or false when no such d exists — either because two indistinguishable
// inputs disagree on x_i, or because some indistinguishable input is too
// short to have an x_i. It errors if the view was never reached.
func (a *Analysis) Knows(v trace.View, i int) (seq.Item, bool, error) {
	cls, ok := a.classes[v.Key()]
	if !ok {
		return 0, false, fmt.Errorf("epistemic: view %q not reached in the exploration", v.Key())
	}
	if i < 1 {
		return 0, false, fmt.Errorf("epistemic: item index %d < 1", i)
	}
	var (
		val   seq.Item
		first = true
	)
	for _, x := range cls {
		if i > len(x) {
			return 0, false, nil // some indistinguishable run has no x_i
		}
		if first {
			val = x[i-1]
			first = false
			continue
		}
		if x[i-1] != val {
			return 0, false, nil
		}
	}
	if first {
		return 0, false, fmt.Errorf("epistemic: empty class for view %q", v.Key())
	}
	return val, true, nil
}

// CheckStability verifies the paper's observation that K_R(x_i) is stable
// under the complete history interpretation: whenever a view v knows x_i,
// every reached extension of v knows it with the same value. It returns
// the first violation found, or nil. Stability is checked for items
// 1..maxItem over all recorded views.
func (a *Analysis) CheckStability(maxItem int) error {
	for key, v := range a.views {
		if len(v) == 0 {
			continue
		}
		parent := v[:len(v)-1]
		if !a.Reached(parent) {
			// The exploration records every prefix of a recorded view (it
			// extends views one event at a time), so this cannot happen.
			return fmt.Errorf("epistemic: view %q reached but its prefix was not", key)
		}
		for i := 1; i <= maxItem; i++ {
			pv, pknows, err := a.Knows(parent, i)
			if err != nil {
				return err
			}
			if !pknows {
				continue
			}
			cv, cknows, err := a.Knows(v, i)
			if err != nil {
				return err
			}
			if !cknows || cv != pv {
				return fmt.Errorf(
					"epistemic: stability violated: view %q knows x_%d = %d but extension %q does not",
					parent.Key(), i, int(pv), key)
			}
		}
	}
	return nil
}

// LearnTimes drives a single run of spec on input with the adversary and
// returns, for each i, the paper's t_i relative to this analysis: the
// first step at which R's view knows x_1 .. x_i. Entries are -1 when the
// run ends (maxSteps) before R learns item i. The analysis must have been
// built with the same spec and channel kind, and with an input set
// containing this input.
func LearnTimes(a *Analysis, spec protocol.Spec, input seq.Seq, kind channel.Kind, adv sim.Adversary, maxSteps int) ([]int, error) {
	link, err := channel.NewLinkOfKind(kind)
	if err != nil {
		return nil, err
	}
	w, err := sim.New(spec, input, link)
	if err != nil {
		return nil, err
	}
	w.StartTrace()
	times := make([]int, len(input))
	for i := range times {
		times[i] = -1
	}
	learned := 0
	checkNow := func(t int) error {
		view := w.Trace.ReceiverView(-1)
		if !a.Reached(view) {
			// Beyond the exploration depth: stop attributing knowledge.
			return nil
		}
		for learned < len(input) {
			_, knows, kerr := a.Knows(view, learned+1)
			if kerr != nil {
				return kerr
			}
			if !knows {
				break
			}
			times[learned] = t
			learned++
		}
		return nil
	}
	if err := checkNow(0); err != nil {
		return nil, err
	}
	for step := 0; step < maxSteps && learned < len(input); step++ {
		if err := w.Apply(adv.Choose(w, w.Enabled())); err != nil {
			return nil, err
		}
		if err := checkNow(w.Time); err != nil {
			return nil, err
		}
	}
	return times, nil
}
