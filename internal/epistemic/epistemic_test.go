package epistemic

import (
	"testing"

	"seqtx/internal/channel"
	"seqtx/internal/protocol/alphaproto"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
	"seqtx/internal/trace"
)

func analyzeAlpha(t *testing.T, m, depth int) (*Analysis, []seq.Seq) {
	t.Helper()
	inputs := seq.RepetitionFree(m)
	a, err := Analyze(alphaproto.MustNew(m), inputs, channel.KindDup, Config{Depth: depth})
	if err != nil {
		t.Fatal(err)
	}
	return a, inputs
}

func TestAnalyzeValidation(t *testing.T) {
	t.Parallel()
	if _, err := Analyze(alphaproto.MustNew(1), nil, channel.KindDup, Config{}); err == nil {
		t.Fatal("zero depth accepted")
	}
}

func TestInitialViewKnowsNothing(t *testing.T) {
	t.Parallel()
	a, _ := analyzeAlpha(t, 2, 8)
	// The empty view is Property 1a: R starts identically in all runs, so
	// it cannot know x_1 (inputs 0... and 1... both reach it).
	_, knows, err := a.Knows(trace.View{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if knows {
		t.Fatal("R knows x_1 before receiving anything")
	}
	if a.ClassSize(trace.View{}) < 2 {
		t.Errorf("empty view class has %d inputs, want >= 2", a.ClassSize(trace.View{}))
	}
}

func TestKnowledgeAfterFirstDataMessage(t *testing.T) {
	t.Parallel()
	a, _ := analyzeAlpha(t, 2, 8)
	// After receiving d:1, every consistent input starts with item 1.
	v := trace.View{{Msg: alphaproto.DataMsg(1)}}
	val, knows, err := a.Knows(v, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !knows || val != 1 {
		t.Fatalf("after d:1, Knows(x_1) = (%d, %v), want (1, true)", int(val), knows)
	}
	// But x_2 is still open: 1, 1.0 are both live.
	_, knows, err = a.Knows(v, 2)
	if err != nil {
		t.Fatal(err)
	}
	if knows {
		t.Fatal("R knows x_2 after one message")
	}
}

func TestKnowledgeIndexValidation(t *testing.T) {
	t.Parallel()
	a, _ := analyzeAlpha(t, 1, 6)
	if _, _, err := a.Knows(trace.View{}, 0); err == nil {
		t.Error("item index 0 accepted")
	}
	if _, _, err := a.Knows(trace.View{{Msg: "nonsense"}}, 1); err == nil {
		t.Error("unreached view accepted")
	}
}

func TestStability(t *testing.T) {
	t.Parallel()
	// The paper: under the complete history interpretation K_R(x_i) is
	// stable. Verify over the whole explored class structure.
	a, _ := analyzeAlpha(t, 2, 10)
	if err := a.CheckStability(2); err != nil {
		t.Fatal(err)
	}
}

func TestLearnTimesMatchWriteOrder(t *testing.T) {
	t.Parallel()
	a, _ := analyzeAlpha(t, 2, 12)
	input := seq.FromInts(1, 0)
	times, err := LearnTimes(a, alphaproto.MustNew(2), input, channel.KindDup,
		sim.NewRoundRobin(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 {
		t.Fatalf("times = %v", times)
	}
	if times[0] < 0 {
		t.Fatal("x_1 never learned within the explored horizon")
	}
	if times[1] >= 0 && times[1] < times[0] {
		t.Errorf("t_2 = %d before t_1 = %d", times[1], times[0])
	}
}

func TestKnowledgeIsSoundForNaiveConfusion(t *testing.T) {
	t.Parallel()
	// Negative soundness: for the tight protocol R can NEVER know the
	// input's length from data messages alone (0 vs 0.1 share views until
	// d:1 arrives). Exhibit: after receiving only d:0, inputs 0 and 0.1
	// both remain possible, so x_2 is unknown.
	a, _ := analyzeAlpha(t, 2, 8)
	v := trace.View{{Msg: alphaproto.DataMsg(0)}}
	if _, knows, err := a.Knows(v, 2); err != nil {
		t.Fatal(err)
	} else if knows {
		t.Fatal("R claims to know x_2 after seeing only d:0")
	}
}

func TestTicksDoNotTeach(t *testing.T) {
	t.Parallel()
	a, _ := analyzeAlpha(t, 2, 8)
	// A view of pure ticks is as ignorant as the empty view.
	v := trace.View{{IsTick: true}, {IsTick: true}}
	if !a.Reached(v) {
		t.Skip("tick-only view beyond explored depth")
	}
	if _, knows, err := a.Knows(v, 1); err != nil {
		t.Fatal(err)
	} else if knows {
		t.Fatal("ticks taught R the first item")
	}
}

func TestAnalysisAccumulatesAcrossInputs(t *testing.T) {
	t.Parallel()
	a, inputs := analyzeAlpha(t, 2, 6)
	if a.States == 0 {
		t.Fatal("no states explored")
	}
	if got := a.ClassSize(trace.View{}); got != len(inputs) {
		t.Errorf("empty view class = %d, want all %d inputs", got, len(inputs))
	}
}
