// Package expt implements the reproduction experiments T1–T8 indexed in
// DESIGN.md. The paper (a pure theory paper) has no measured tables or
// figures; the experiments turn each theorem and each §5 separation into
// an executable check whose output tables EXPERIMENTS.md records:
//
//	T1  alpha(m): formula = enumeration = floor(e·m!)        (R1)
//	T2  tightness of alpha(m) on dup channels                (R3)
//	T3  impossibility beyond alpha(m) on dup channels        (R2, Thm 1)
//	T4  tightness + boundedness of alpha(m) on del channels  (R6)
//	T5  impossibility beyond alpha(m) on del channels        (R5, Thm 2)
//	T6  unboundedness of the AFWZ-style protocol (series)    (R7)
//	T7  channel preconditions: ABP vs reordering; Stenning   (§5 premises)
//	T8  the boundedness matrix and fault-recovery scaling    (R7)
package expt

import (
	"fmt"
	"sort"

	"seqtx/internal/tablefmt"
)

// Options tune experiment scope.
type Options struct {
	// Deep enables the expensive variants (the 2-state × 2-state protocol
	// search, larger m, longer series). Default keeps the full suite
	// under about a minute.
	Deep bool
	// Seed feeds the seeded adversaries.
	Seed int64
}

// Experiment is one named reproduction target.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) ([]*tablefmt.Table, error)
}

// All returns the experiments in index order.
func All() []Experiment {
	return []Experiment{
		{ID: "T1", Title: "alpha(m): formula vs enumeration vs floor(e*m!)", Run: RunT1},
		{ID: "T2", Title: "Tightness on dup channels (Theorem 1 construction)", Run: RunT2},
		{ID: "T3", Title: "Impossibility past alpha(m) on dup channels (Theorem 1)", Run: RunT3},
		{ID: "T4", Title: "Tightness and boundedness on del channels (Theorem 2 construction)", Run: RunT4},
		{ID: "T5", Title: "Impossibility past alpha(m) on del channels (Theorem 2)", Run: RunT5},
		{ID: "T6", Title: "Unboundedness of the AFWZ-style protocol (series)", Run: RunT6},
		{ID: "T7", Title: "Channel preconditions: ABP vs reordering; Stenning baseline", Run: RunT7},
		{ID: "T8", Title: "Boundedness matrix and fault-recovery scaling (§5)", Run: RunT8},
		{ID: "T9", Title: "Probabilistic STP beyond alpha(m) (§6 outlook)", Run: RunT9},
		{ID: "T10", Title: "Knowledge dynamics: view classes and the learning times t_i (§2.3)", Run: RunT10},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0, len(All()))
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("expt: unknown experiment %q (have %v)", id, ids)
}
