package expt

import (
	"fmt"
	"strings"
	"testing"
)

func runExpt(t *testing.T, id string) string {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run(Options{Seed: 1})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tables) == 0 {
		t.Fatalf("%s produced no tables", id)
	}
	var b strings.Builder
	for _, tab := range tables {
		b.WriteString(tab.String())
		if len(tab.Rows) == 0 {
			t.Errorf("%s: table %q has no rows", id, tab.Title)
		}
	}
	return b.String()
}

func TestByIDUnknown(t *testing.T) {
	t.Parallel()
	if _, err := ByID("T99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestAllHaveDistinctIDs(t *testing.T) {
	t.Parallel()
	seen := map[string]struct{}{}
	for _, e := range All() {
		if _, dup := seen[e.ID]; dup {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = struct{}{}
		if e.Run == nil || e.Title == "" {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
}

func TestT1AllRowsAgree(t *testing.T) {
	t.Parallel()
	out := runExpt(t, "T1")
	if strings.Contains(out, "false") {
		t.Errorf("T1 has a disagreeing row:\n%s", out)
	}
}

func TestT2NoViolationsNoIncompletes(t *testing.T) {
	t.Parallel()
	e, err := ByID("T2")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		if row[3] != "0" || row[4] != "0" {
			t.Errorf("T2 row %v has violations or incompletes", row)
		}
	}
}

func TestT3FindsAllViolationsAndNoSolutions(t *testing.T) {
	t.Parallel()
	out := runExpt(t, "T3")
	if strings.Contains(out, "NONE FOUND") {
		t.Errorf("T3a missed a violation:\n%s", out)
	}
	// T3b's solutions column must be all zeros.
	e, _ := ByID("T3")
	tables, err := e.Run(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[1].Rows {
		if row[3] != "0" {
			t.Errorf("T3b found a 'solution': %v", row)
		}
	}
}

func TestT4BoundedEverywhere(t *testing.T) {
	t.Parallel()
	e, _ := ByID("T4")
	tables, err := e.Run(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		if row[3] != "0" || row[4] != "0" {
			t.Errorf("T4a row %v has violations or incompletes", row)
		}
	}
	for _, row := range tables[1].Rows {
		if row[5] != "true" {
			t.Errorf("T4b row %v not bounded", row)
		}
	}
}

func TestT5ExpectedVerdicts(t *testing.T) {
	t.Parallel()
	out := runExpt(t, "T5")
	if strings.Contains(out, "EXPECTED VIOLATION NOT FOUND") {
		t.Errorf("T5 missed a violation:\n%s", out)
	}
	if strings.Contains(out, "UNEXPECTED") {
		t.Errorf("T5 refuted the tight protocol:\n%s", out)
	}
}

func TestT6SlopeReported(t *testing.T) {
	t.Parallel()
	out := runExpt(t, "T6")
	if !strings.Contains(out, "grows linearly") {
		t.Errorf("T6 missing the slope note:\n%s", out)
	}
	if !strings.Contains(out, "false") { // the bounded column of T6b
		t.Errorf("T6b should report unbounded verdicts:\n%s", out)
	}
}

func TestT7ABPVerdictsSplitByChannel(t *testing.T) {
	t.Parallel()
	e, _ := ByID("T7")
	tables, err := e.Run(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	finiteNumbered := func(proto string) bool {
		return strings.HasPrefix(proto, "abp") || strings.HasPrefix(proto, "gobackn") ||
			strings.HasPrefix(proto, "selrepeat")
	}
	for _, row := range tables[0].Rows {
		proto, ch, viol := row[0], row[1], row[5]
		switch {
		case finiteNumbered(proto) && ch == "fifo" && viol != "none":
			t.Errorf("%s unsafe on FIFO: %v", proto, row)
		case finiteNumbered(proto) && (ch == "del" || ch == "reorder") && viol == "none":
			t.Errorf("%s safe under reordering (should break): %v", proto, row)
		case proto == "stenning" && viol != "none":
			t.Errorf("Stenning unsafe: %v", row)
		}
	}
}

func TestT8MatrixMatchesPaper(t *testing.T) {
	t.Parallel()
	e, _ := ByID("T8")
	tables, err := e.Run(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	matrix := tables[0]
	for _, row := range matrix.Rows {
		name, weak, bounded := row[0], row[3], row[4]
		if !strings.HasPrefix(weak, "true") {
			t.Errorf("%s not weakly bounded: %v", name, row)
		}
		wantBounded := strings.HasPrefix(name, "alpha")
		isBounded := strings.HasPrefix(bounded, "true")
		if wantBounded != isBounded {
			t.Errorf("%s bounded = %v, want %v (row %v)", name, isBounded, wantBounded, row)
		}
	}
}

func TestT9PossibilityAndProbability(t *testing.T) {
	t.Parallel()
	e, _ := ByID("T9")
	tables, err := e.Run(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// T9a: a violation must exist for every window.
	for _, row := range tables[0].Rows {
		if row[2] != "yes" {
			t.Errorf("T9a window %s: no violation found (contradicts Theorem 1): %v", row[0], row)
		}
	}
	// T9b: the widest window (>= input length) must be collision-free, and
	// window 1 must fail in a large share of runs.
	rows := tables[1].Rows
	first, last := rows[0], rows[len(rows)-1]
	if first[2] == "0.0%" {
		t.Errorf("T9b window 1 never failed: %v", first)
	}
	for _, cell := range last[2:] {
		if cell != "0.0%" {
			t.Errorf("T9b widest window failed: %v", last)
		}
	}
}

func TestT10KnowledgeAgreement(t *testing.T) {
	t.Parallel()
	e, _ := ByID("T10")
	tables, err := e.Run(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// T10a: class sizes never grow along the run.
	prev := 1 << 30
	for _, row := range tables[0].Rows {
		var n int
		if _, err := fmt.Sscanf(row[2], "%d", &n); err != nil {
			t.Fatalf("bad class size %q", row[2])
		}
		if n > prev {
			t.Errorf("class grew: %v", tables[0].Rows)
		}
		prev = n
	}
	// T10b: every row agrees.
	for _, row := range tables[1].Rows {
		if row[5] != "true" {
			t.Errorf("t_i mismatch: %v", row)
		}
	}
}
