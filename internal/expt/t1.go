package expt

import (
	"fmt"

	"seqtx/internal/alpha"
	"seqtx/internal/seq"
	"seqtx/internal/tablefmt"
)

// RunT1 reproduces R1: the closed form alpha(m) = m! sum_{k<=m} 1/k!
// equals both the exhaustive count of repetition-free sequences and
// floor(e*m!) (m >= 1). It also tabulates the split by sequence length
// (partial permutations) and the m! antichain ceiling the paper mentions.
func RunT1(opts Options) ([]*tablefmt.Table, error) {
	maxM := 12
	enumTo := 7
	if opts.Deep {
		enumTo = 8
	}
	t := tablefmt.New("T1: alpha(m) three ways",
		"m", "alpha(m) recurrence", "enumerated", "floor(e*m!)", "m! (antichain cap)", "agree")
	fact := uint64(1)
	for m := 0; m <= maxM; m++ {
		if m > 0 {
			fact *= uint64(m)
		}
		a, err := alpha.Alpha(m)
		if err != nil {
			return nil, err
		}
		enum := "-"
		agree := true
		if m <= enumTo {
			n := len(seq.RepetitionFree(m))
			enum = fmt.Sprint(n)
			agree = agree && uint64(n) == a
		}
		floorE := "-"
		if m >= 1 {
			fe, err := alpha.FloorEFactorial(m)
			if err != nil {
				return nil, err
			}
			floorE = fmt.Sprint(fe)
			agree = agree && fe == a
		}
		t.AddRow(fmt.Sprint(m), fmt.Sprint(a), enum, floorE, fmt.Sprint(fact), fmt.Sprint(agree))
	}
	t.AddNote("enumeration exhaustive for m <= %d; identity alpha(m) = floor(e*m!) holds for m >= 1 only", enumTo)

	lens := tablefmt.New("T1b: repetition-free sequences by length (m = 6)",
		"length k", "count m!/(m-k)!")
	counts, err := alpha.CountByLength(6)
	if err != nil {
		return nil, err
	}
	var sum uint64
	for k, c := range counts {
		lens.AddRow(fmt.Sprint(k), fmt.Sprint(c))
		sum += c
	}
	lens.AddNote("sum = %d = alpha(6)", sum)
	return []*tablefmt.Table{t, lens}, nil
}
