package expt

import (
	"fmt"

	"seqtx/internal/channel"
	"seqtx/internal/epistemic"
	"seqtx/internal/protocol/alphaproto"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
	"seqtx/internal/tablefmt"
	"seqtx/internal/trace"
)

// RunT10 makes the paper's knowledge machinery (§2.3) quantitative for
// the tight protocol:
//
//   - T10a traces the receiver's epistemic state along a canonical run:
//     after each event, how many inputs remain consistent with R's
//     complete-history view (the ~_R equivalence class), and which items
//     R knows (K_R(x_i)). The class shrinks exactly at data deliveries
//     and never grows — the stability the paper proves for the complete
//     history interpretation.
//   - T10b cross-validates the learning times: for the tight protocol the
//     epistemic t_i (first time K_R(x_1..x_i) holds, computed over the
//     exhaustively explored run set) coincides with the step at which R
//     writes item i — R writes as soon as it knows, which is what makes
//     write times a sound proxy in T4/T6/T8.
func RunT10(opts Options) ([]*tablefmt.Table, error) {
	const m = 2
	spec := alphaproto.MustNew(m)
	inputs := seq.RepetitionFree(m)
	depth := 12
	if opts.Deep {
		depth = 14
	}
	analysis, err := epistemic.Analyze(spec, inputs, channel.KindDup, epistemic.Config{Depth: depth})
	if err != nil {
		return nil, err
	}
	if err := analysis.CheckStability(m); err != nil {
		return nil, fmt.Errorf("expt: knowledge stability: %w", err)
	}

	input := seq.FromInts(1, 0)
	classes := tablefmt.New(fmt.Sprintf("T10a: receiver view classes along a fair run (X = %s, all %d inputs explored)", input, len(inputs)),
		"step", "R's event", "consistent inputs", "K_R(x_1)", "K_R(x_2)")

	link, err := channel.NewLinkOfKind(channel.KindDup)
	if err != nil {
		return nil, err
	}
	w, err := sim.New(spec, input, link)
	if err != nil {
		return nil, err
	}
	w.StartTrace()
	adv := sim.NewRoundRobin()
	prevViewLen := -1
	for step := 0; step <= 10; step++ {
		view := w.Trace.ReceiverView(-1)
		if len(view) != prevViewLen && analysis.Reached(view) {
			prevViewLen = len(view)
			event := "(start)"
			if len(view) > 0 {
				event = view[len(view)-1].Key()
			}
			k1 := knowsCell(analysis, view, 1)
			k2 := knowsCell(analysis, view, 2)
			classes.AddRow(fmt.Sprint(w.Time), event,
				fmt.Sprint(analysis.ClassSize(view)), k1, k2)
		}
		if w.OutputComplete() {
			break
		}
		if err := w.Apply(adv.Choose(w, w.Enabled())); err != nil {
			return nil, err
		}
	}
	classes.AddNote("classes only shrink: K_R is stable under the complete history interpretation (verified over the full exploration)")

	times := tablefmt.New("T10b: epistemic t_i vs write step (tight protocol, round-robin schedule)",
		"input X", "t_1 (knows)", "write step 1", "t_2 (knows)", "write step 2", "agree")
	for _, x := range inputs {
		if len(x) != 2 {
			continue
		}
		epi, terr := epistemic.LearnTimes(analysis, spec, x, channel.KindDup, sim.NewRoundRobin(), 11)
		if terr != nil {
			return nil, terr
		}
		res, rerr := sim.RunProtocol(spec, x, channel.KindDup, sim.NewRoundRobin(),
			sim.Config{MaxSteps: 11, StopWhenComplete: true})
		if rerr != nil {
			return nil, rerr
		}
		agree := len(epi) == 2 && len(res.LearnTimes) == 2 &&
			epi[0] == res.LearnTimes[0]+1 && epi[1] == res.LearnTimes[1]+1
		times.AddRow(x.String(),
			fmt.Sprint(epi[0]), fmt.Sprint(res.LearnTimes[0]+1),
			fmt.Sprint(epi[1]), fmt.Sprint(res.LearnTimes[1]+1),
			fmt.Sprint(agree))
	}
	times.AddNote("knowledge arrives in the same step as the write (write steps shown at post-step time, matching t_i's convention)")
	return []*tablefmt.Table{classes, times}, nil
}

func knowsCell(a *epistemic.Analysis, view trace.View, i int) string {
	val, knows, err := a.Knows(view, i)
	if err != nil {
		return "err"
	}
	if !knows {
		return "¬K"
	}
	return fmt.Sprintf("= %d", int(val))
}
