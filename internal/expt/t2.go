package expt

import (
	"fmt"

	"seqtx/internal/channel"
	"seqtx/internal/protocol/alphaproto"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
	"seqtx/internal/stats"
	"seqtx/internal/tablefmt"
)

// RunT2 reproduces R3 (tightness for dup): for each m, run the paper's
// protocol on EVERY one of the alpha(m) repetition-free inputs, under a
// battery of adversarial schedules on a reordering+duplicating channel.
// The theorem's construction predicts zero safety violations and full
// liveness on every fair schedule; the table reports the exhaustive tally.
func RunT2(opts Options) ([]*tablefmt.Table, error) {
	maxM := 4
	if opts.Deep {
		maxM = 5
	}
	t := tablefmt.New("T2: tight protocol on dup channels — all alpha(m) inputs × adversaries",
		"m", "|X|=alpha(m)", "runs", "safety violations", "incomplete", "steps p50", "steps max")
	for m := 1; m <= maxM; m++ {
		spec, err := alphaproto.New(m)
		if err != nil {
			return nil, err
		}
		inputs := seq.RepetitionFree(m)
		var (
			runs, violations, incomplete int
			steps                        []float64
		)
		for _, input := range inputs {
			for _, adv := range dupAdversaries(opts.Seed) {
				res, rerr := sim.RunProtocol(spec, input, channel.KindDup, adv,
					sim.Config{MaxSteps: 5000, StopWhenComplete: true})
				if rerr != nil {
					return nil, rerr
				}
				runs++
				if res.SafetyViolation != nil {
					violations++
				}
				if !res.OutputComplete {
					incomplete++
				}
				steps = append(steps, float64(res.Steps))
			}
		}
		s := stats.Summarize(steps)
		t.AddRow(fmt.Sprint(m), fmt.Sprint(len(inputs)), fmt.Sprint(runs),
			fmt.Sprint(violations), fmt.Sprint(incomplete),
			fmt.Sprintf("%.0f", s.P50), fmt.Sprintf("%.0f", s.Max))
	}
	t.AddNote("adversaries: round-robin, withheld deliveries, random fair, replaying duplicates")
	return []*tablefmt.Table{t}, nil
}

// dupAdversaries is the T2/T4 schedule battery (fresh instances per run).
func dupAdversaries(seed int64) []sim.Adversary {
	return []sim.Adversary{
		sim.NewRoundRobin(),
		sim.NewWithholder(25),
		sim.NewFinDelay(sim.NewRandom(seed+1), 10),
		sim.NewFinDelay(sim.NewReplayer(seed+2, 2), 12),
	}
}
