package expt

import (
	"fmt"

	"seqtx/internal/alpha"
	"seqtx/internal/channel"
	"seqtx/internal/mc"
	"seqtx/internal/protocol/naive"
	"seqtx/internal/seq"
	"seqtx/internal/tablefmt"
)

// RunT3 reproduces R2 (Theorem 1): past alpha(m), dup channels defeat any
// protocol. Two executable forms:
//
//  1. Refutation of the natural over-claiming protocol (the tight
//     protocol minus duplicate suppression, whose X is all sequences):
//     the product model checker finds two R-indistinguishable runs with
//     different inputs whose shared output breaks safety — the same
//     object the paper's dup-decisive tuples construct.
//  2. Exhaustive protocol-space search at m = 1, |X| = 3 > alpha(1) = 2:
//     every finite-state protocol in the slice fails. (The deep variant
//     widens the slice to 2-state receivers; ~2.5 minutes.)
func RunT3(opts Options) ([]*tablefmt.Table, error) {
	refute := tablefmt.New("T3a: product refutation of the over-claiming protocol (dup)",
		"m", "X1", "X2", "violated input", "witness steps", "product states")
	cases := []struct {
		m      int
		x1, x2 seq.Seq
	}{
		{1, seq.FromInts(0), seq.FromInts(0, 0)},
		{2, seq.FromInts(0, 1), seq.FromInts(0, 1, 0)},
		{2, seq.FromInts(0), seq.FromInts(0, 0)},
		{3, seq.FromInts(0, 1, 2), seq.FromInts(0, 1, 2, 0)},
	}
	for _, c := range cases {
		spec, err := naive.NewWriteEveryData(c.m)
		if err != nil {
			return nil, err
		}
		res, err := mc.Refute(spec, c.x1, c.x2, channel.KindDup,
			mc.ExploreConfig{MaxDepth: 14, MaxStates: 1 << 17})
		if err != nil {
			return nil, err
		}
		violated, steps := "NONE FOUND", "-"
		if res.Violation != nil {
			violated = res.Violation.ViolatedInput.String()
			steps = fmt.Sprint(len(res.Violation.Actions))
		}
		refute.AddRow(fmt.Sprint(c.m), c.x1.String(), c.x2.String(), violated, steps, fmt.Sprint(res.States))
	}
	refute.AddNote("each witness is a pair of runs with equal receiver views throughout (Lemma 1's construction)")

	search := tablefmt.New("T3b: exhaustive protocol search, m = 1, X = {ε, 0, 0.0}, |X| = 3 > alpha(1) = 2",
		"sender states", "receiver states", "receivers examined", "solutions found")
	slices := [][2]int{{1, 1}, {2, 1}}
	if opts.Deep {
		slices = append(slices, [2]int{3, 1}, [2]int{2, 2})
	}
	for _, sl := range slices {
		res, err := mc.SearchProtocols(mc.SearchConfig{
			SenderStates:   sl[0],
			ReceiverStates: sl[1],
			Kind:           channel.KindDup,
			Depth:          10,
			LiveSteps:      80,
		})
		if err != nil {
			return nil, err
		}
		search.AddRow(fmt.Sprint(sl[0]), fmt.Sprint(sl[1]),
			fmt.Sprint(res.Receivers), fmt.Sprint(res.Solutions))
	}
	a1 := alpha.MustAlpha(1)
	search.AddNote("Theorem 1 predicts 0 solutions whenever |X| > alpha(m); here alpha(1) = %d", a1)
	return []*tablefmt.Table{refute, search}, nil
}
