package expt

import (
	"fmt"

	"seqtx/internal/channel"
	"seqtx/internal/mc"
	"seqtx/internal/protocol/alphaproto"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
	"seqtx/internal/stats"
	"seqtx/internal/tablefmt"
)

// RunT4 reproduces R6 (tightness for del): the tight protocol with
// retransmission solves all alpha(m) repetition-free inputs on a
// reordering+deleting channel, and it is BOUNDED per Definition 2 — from
// every sampled point, the receiver can learn the next item within a
// constant number of steps using only messages sent after the point
// (long-lost copies are never needed).
func RunT4(opts Options) ([]*tablefmt.Table, error) {
	maxM := 4
	if opts.Deep {
		maxM = 5
	}
	t := tablefmt.New("T4a: tight protocol on del channels — all alpha(m) inputs × drop adversaries",
		"m", "|X|=alpha(m)", "runs", "safety violations", "incomplete", "steps p50", "steps max")
	for m := 1; m <= maxM; m++ {
		spec, err := alphaproto.New(m)
		if err != nil {
			return nil, err
		}
		inputs := seq.RepetitionFree(m)
		var (
			runs, violations, incomplete int
			steps                        []float64
		)
		for _, input := range inputs {
			advs := []sim.Adversary{
				sim.NewRoundRobin(),
				sim.NewBudgetDropper(opts.Seed+3, 8),
				sim.NewFinDelay(sim.NewRandomDropper(opts.Seed+4, 0), 10),
				sim.NewWithholder(25),
			}
			for _, adv := range advs {
				res, rerr := sim.RunProtocol(spec, input, channel.KindDel, adv,
					sim.Config{MaxSteps: 8000, StopWhenComplete: true})
				if rerr != nil {
					return nil, rerr
				}
				runs++
				if res.SafetyViolation != nil {
					violations++
				}
				if !res.OutputComplete {
					incomplete++
				}
				steps = append(steps, float64(res.Steps))
			}
		}
		s := stats.Summarize(steps)
		t.AddRow(fmt.Sprint(m), fmt.Sprint(len(inputs)), fmt.Sprint(runs),
			fmt.Sprint(violations), fmt.Sprint(incomplete),
			fmt.Sprintf("%.0f", s.P50), fmt.Sprintf("%.0f", s.Max))
	}

	// Definition 2 check: constant-recovery with fresh messages only.
	b := tablefmt.New("T4b: Definition-2 boundedness of the tight protocol on del channels",
		"m", "input", "sample points", "max recovery (steps)", "unrecovered", "bounded")
	for m := 2; m <= maxM; m++ {
		input := make(seq.Seq, m)
		for i := range input {
			input[i] = seq.Item((i + 1) % m)
		}
		spec, err := alphaproto.New(m)
		if err != nil {
			return nil, err
		}
		rep, err := mc.CheckBounded(spec, input, channel.KindDel, mc.BoundedConfig{Budget: 16})
		if err != nil {
			return nil, err
		}
		b.AddRow(fmt.Sprint(m), input.String(), fmt.Sprint(rep.Samples),
			fmt.Sprint(rep.MaxRecovery), fmt.Sprint(rep.Unrecovered), fmt.Sprint(rep.Bounded()))
	}
	b.AddNote("recovery extensions may deliver only messages sent after the point (dlvrble(r_t,t') >= dlvrble(r_t,t))")
	return []*tablefmt.Table{t, b}, nil
}
