package expt

import (
	"fmt"

	"seqtx/internal/channel"
	"seqtx/internal/mc"
	"seqtx/internal/protocol"
	"seqtx/internal/protocol/alphaproto"
	"seqtx/internal/protocol/naive"
	"seqtx/internal/seq"
	"seqtx/internal/tablefmt"
)

// RunT5 reproduces R5 (Theorem 2): on del channels, bounded protocols die
// past alpha(m). The over-claiming protocol is bounded (constant-recovery
// retransmission), and the product checker refutes it: retransmitted
// copies that the channel withheld arrive late and double-write. As a
// negative control, the tight protocol within its lawful X admits no
// counterexample at the same exploration bounds.
func RunT5(opts Options) ([]*tablefmt.Table, error) {
	t := tablefmt.New("T5: product refutation on del channels (bounded over-claiming protocol)",
		"case", "m", "X1", "X2", "violated input", "witness steps", "product states")
	type c struct {
		name   string
		spec   func(m int) (protocol.Spec, error)
		m      int
		x1, x2 seq.Seq
		expect bool
	}
	cases := []c{
		{"naive, repeat value", naive.NewWriteEveryData, 1, seq.FromInts(0), seq.FromInts(0, 0), true},
		{"naive, repeat value", naive.NewWriteEveryData, 2, seq.FromInts(0, 1), seq.FromInts(0, 1, 0), true},
		{"naive, flood", func(m int) (protocol.Spec, error) { return naive.NewFlood(m) }, 2,
			seq.FromInts(0, 1), seq.FromInts(1, 0), true},
		{"tight protocol (control)", alphaproto.New, 2, seq.FromInts(0, 1), seq.FromInts(1, 0), false},
		{"tight protocol (control)", alphaproto.New, 2, seq.FromInts(0), seq.FromInts(0, 1), false},
	}
	depth := 12
	if opts.Deep {
		depth = 14
	}
	for _, cc := range cases {
		spec, err := cc.spec(cc.m)
		if err != nil {
			return nil, err
		}
		res, err := mc.Refute(spec, cc.x1, cc.x2, channel.KindDel,
			mc.ExploreConfig{MaxDepth: depth, MaxStates: 1 << 17})
		if err != nil {
			return nil, err
		}
		violated, steps := "none", "-"
		if res.Violation != nil {
			violated = res.Violation.ViolatedInput.String()
			steps = fmt.Sprint(len(res.Violation.Actions))
		}
		if cc.expect && res.Violation == nil {
			violated = "EXPECTED VIOLATION NOT FOUND"
		}
		if !cc.expect && res.Violation != nil {
			violated = "UNEXPECTED: " + violated
		}
		t.AddRow(cc.name, fmt.Sprint(cc.m), cc.x1.String(), cc.x2.String(), violated, steps, fmt.Sprint(res.States))
	}
	t.AddNote("controls run within X = repetition-free sequences (|X| = alpha(m)): no counterexample must exist")
	return []*tablefmt.Table{t}, nil
}
