package expt

import (
	"fmt"

	"seqtx/internal/channel"
	"seqtx/internal/mc"
	"seqtx/internal/protocol"
	"seqtx/internal/protocol/afwz"
	"seqtx/internal/protocol/stenning"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
	"seqtx/internal/stats"
	"seqtx/internal/tablefmt"
)

// RunT6 reproduces R7's first half: the AFWZ-style protocol solves STP
// for ALL finite sequences over D — a set far beyond alpha(m) — at the
// price of unboundedness. The series show:
//
//   - t_1 (the step at which R first knows/writes x_1) grows linearly
//     with |X| = n: the receiver learns nothing until the reversed
//     transmission completes, so the time to learn the NEXT item from a
//     fresh start cannot be bounded by any f(i);
//   - the Definition-2 check confirms outright unrecoverability: from a
//     mid-run point, no extension that avoids old messages makes progress
//     at all (the gated single copy IS the old message);
//   - Stenning's unbounded-header protocol, as a contrast, learns x_1 in
//     constant time regardless of n — the cost moved from time into the
//     alphabet.
func RunT6(opts Options) ([]*tablefmt.Table, error) {
	lengths := []int{2, 4, 8, 16, 32}
	if opts.Deep {
		lengths = append(lengths, 48, 64)
	}
	series := tablefmt.New("T6a: time for R to learn x_1 vs |X| = n (round-robin fair schedule)",
		"n", "afwz t_1 (steps)", "stenning t_1 (steps)", "afwz total", "stenning total")
	var ns, afwzT1 []float64
	for _, n := range lengths {
		input := make(seq.Seq, n)
		for i := range input {
			input[i] = seq.Item(i % 2)
		}
		af, err := runOnce(afwz.MustNew(2), input, channel.KindReorder)
		if err != nil {
			return nil, err
		}
		st, err := runOnce(stenning.New(), input, channel.KindReorder)
		if err != nil {
			return nil, err
		}
		series.AddRow(fmt.Sprint(n),
			fmt.Sprint(af.LearnTimes[0]), fmt.Sprint(st.LearnTimes[0]),
			fmt.Sprint(af.Steps), fmt.Sprint(st.Steps))
		ns = append(ns, float64(n))
		afwzT1 = append(afwzT1, float64(af.LearnTimes[0]))
	}
	if _, slope, err := stats.LinearFit(ns, afwzT1); err == nil {
		series.AddNote("afwz t_1 grows linearly: fitted slope %.2f steps per item (bounded protocols would be flat)", slope)
	}

	def2 := tablefmt.New("T6b: Definition-2 verdicts for the AFWZ-style protocol (del channel)",
		"n", "sample points", "unrecovered (fresh-only)", "bounded")
	for _, n := range []int{4, 8, 12} {
		input := make(seq.Seq, n)
		for i := range input {
			input[i] = seq.Item(i % 2)
		}
		rep, err := mc.CheckBounded(afwz.MustNew(2), input, channel.KindDel,
			mc.BoundedConfig{Budget: 40, SampleEvery: 2})
		if err != nil {
			return nil, err
		}
		def2.AddRow(fmt.Sprint(n), fmt.Sprint(rep.Samples),
			fmt.Sprint(rep.Unrecovered), fmt.Sprint(rep.Bounded()))
	}
	def2.AddNote("the gated in-flight copy is an old message; extensions barred from it cannot progress at all")
	return []*tablefmt.Table{series, def2}, nil
}

// runOnce drives one run to completion on the canonical fair schedule and
// errors if the protocol misbehaved (these are positive-result series).
func runOnce(spec protocol.Spec, input seq.Seq, kind channel.Kind) (sim.Result, error) {
	res, err := sim.RunProtocol(spec, input, kind, sim.NewRoundRobin(),
		sim.Config{MaxSteps: 400*len(input) + 400, StopWhenComplete: true})
	if err != nil {
		return res, err
	}
	if res.SafetyViolation != nil {
		return res, fmt.Errorf("expt: %s on %s violated safety: %w", spec.Name, input, res.SafetyViolation)
	}
	if !res.OutputComplete {
		return res, fmt.Errorf("expt: %s on %s did not complete (%d steps)", spec.Name, input, res.Steps)
	}
	return res, nil
}
