package expt

import (
	"fmt"

	"seqtx/internal/channel"
	"seqtx/internal/mc"
	"seqtx/internal/protocol"
	"seqtx/internal/protocol/abp"
	"seqtx/internal/protocol/gobackn"
	"seqtx/internal/protocol/selrepeat"
	"seqtx/internal/protocol/stenning"
	"seqtx/internal/seq"
	"seqtx/internal/tablefmt"
)

// RunT7 establishes the §5 premises by exhaustive exploration:
//
//   - ABP is safe on the FIFO channel with loss and duplication (its
//     classic setting — no violation in the closed/bounded exploration),
//     but UNSAFE the moment the channel may reorder: the checker exhibits
//     the stale-bit run.
//   - Stenning's unbounded-header protocol is safe on every channel model
//     — evidence that the paper's whole difficulty lives in the finite
//     alphabet assumption.
func RunT7(opts Options) ([]*tablefmt.Table, error) {
	depth := 12
	if opts.Deep {
		depth = 14
	}
	t := tablefmt.New("T7: exhaustive safety exploration per protocol × channel",
		"protocol", "channel", "input", "states", "depth", "violation", "witness steps")
	type c struct {
		spec  protocol.Spec
		kind  channel.Kind
		input seq.Seq
		depth int // 0 = the default
	}
	cases := []c{
		{abp.MustNew(2), channel.KindFIFO, seq.FromInts(0, 1), 0},
		{abp.MustNew(2), channel.KindFIFO, seq.FromInts(0, 0), 0},
		{abp.MustNew(2), channel.KindDel, seq.FromInts(0, 1), 0},
		{abp.MustNew(2), channel.KindReorder, seq.FromInts(0, 0, 1), 0},
		{gobackn.MustNew(2, 2), channel.KindFIFO, seq.FromInts(0, 1, 0), 0},
		{gobackn.MustNew(1, 1), channel.KindDel, seq.FromInts(0, 0, 0), 22},
		{selrepeat.MustNew(2, 2), channel.KindFIFO, seq.FromInts(0, 1, 0), 0},
		{selrepeat.MustNew(1, 1), channel.KindDel, seq.FromInts(0, 0, 0), 22},
		{stenning.New(), channel.KindDup, seq.FromInts(0, 0), 0},
		{stenning.New(), channel.KindDel, seq.FromInts(0, 1), 0},
		{stenning.New(), channel.KindFIFO, seq.FromInts(1, 1), 0},
	}
	for _, cc := range cases {
		d := depth
		if cc.depth > 0 {
			// Sliding-window witnesses include the sender's timeout wait.
			d = cc.depth
		}
		res, err := mc.Explore(cc.spec, cc.input, cc.kind, mc.ExploreConfig{
			MaxDepth:  d,
			MaxStates: 1 << 19,
		})
		if err != nil {
			return nil, err
		}
		viol, steps := "none", "-"
		if res.Violation != nil {
			viol = "UNSAFE: " + res.Violation.Output.String()
			steps = fmt.Sprint(len(res.Violation.Actions))
		}
		t.AddRow(cc.spec.Name, cc.kind.String(), cc.input.String(),
			fmt.Sprint(res.States), fmt.Sprint(res.Depth), viol, steps)
	}
	t.AddNote("expected: finite-numbered schemes (abp, gobackn, selrepeat) unsafe exactly under reordering, safe on FIFO; Stenning safe everywhere")
	return []*tablefmt.Table{t}, nil
}
