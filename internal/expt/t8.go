package expt

import (
	"fmt"

	"seqtx/internal/alpha"
	"seqtx/internal/channel"
	"seqtx/internal/mc"
	"seqtx/internal/protocol"
	"seqtx/internal/protocol/afwz"
	"seqtx/internal/protocol/alphaproto"
	"seqtx/internal/protocol/hybrid"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
	"seqtx/internal/stats"
	"seqtx/internal/tablefmt"
)

// RunT8 reproduces R7's second half: the §5 boundedness taxonomy.
//
// T8a is the boundedness matrix. "Bounded" means Definition 2 with a
// constant budget independent of the input; the scaling column shows the
// worst recovery as the input grows — a protocol is bounded only if that
// column stays flat. The hybrid protocol is the paper's centerpiece:
// weakly bounded (constant recovery from the t_i points, old messages
// allowed) yet unbounded (after a fault, the suffix detour makes recovery
// grow with |X|).
//
// T8b measures the §5 fault story directly: inject one loss early and
// measure how long the receiver goes without learning anything new.
func RunT8(opts Options) ([]*tablefmt.Table, error) {
	lengths := []int{4, 8, 16}
	if opts.Deep {
		lengths = append(lengths, 24, 32)
	}
	matrix := tablefmt.New("T8a: boundedness matrix (§5)",
		"protocol", "channel", "|X| solvable", "weakly bounded (max rec)", "bounded (Def 2)", "recovery vs n")
	type row struct {
		name    string
		kind    channel.Kind
		x       string
		mkSpec  func() (specT, error)
		mkInput func(n int) seq.Seq
	}
	alt := func(n int) seq.Seq {
		in := make(seq.Seq, n)
		for i := range in {
			in[i] = seq.Item(i % 2)
		}
		return in
	}
	rows := []row{
		{
			name: "alpha (tight)", kind: channel.KindDel,
			x:      fmt.Sprintf("alpha(m) (= %d at m = 4)", alpha.MustAlpha(4)),
			mkSpec: func() (specT, error) { return alphaproto.New(8) },
			mkInput: func(n int) seq.Seq { // repetition-free: distinct items
				in := make(seq.Seq, n)
				for i := range in {
					in[i] = seq.Item(i)
				}
				return in
			},
		},
		{
			name: "afwz (reverse)", kind: channel.KindDel,
			x:       "all finite sequences",
			mkSpec:  func() (specT, error) { return afwz.New(2) },
			mkInput: alt,
		},
		{
			name: "hybrid (§5)", kind: channel.KindDel,
			x:       "all finite sequences",
			mkSpec:  func() (specT, error) { return hybrid.New(2, 4) },
			mkInput: alt,
		},
	}
	for _, r := range rows {
		spec, err := r.mkSpec()
		if err != nil {
			return nil, err
		}
		// Weak boundedness: recovery from t_i points, old messages allowed.
		weakRep, err := mc.CheckBounded(spec, r.mkInput(6), r.kind,
			mc.BoundedConfig{Budget: 60, OldMessagesAllowed: true})
		if err != nil {
			return nil, err
		}
		weak := fmt.Sprintf("%v (%d)", weakRep.Bounded(), weakRep.MaxRecovery)

		// Definition 2 across growing inputs: flat = bounded.
		var ns, recs []float64
		anyUnrecovered := false
		for _, n := range lengths {
			if r.name == "alpha (tight)" && n > 8 {
				continue // repetition-free inputs need n <= m
			}
			// Sample the points of a run with one injected loss: Definition
			// 2 quantifies over all points, and post-fault points are
			// exactly where unbounded protocols cannot recover quickly.
			rep, err := mc.CheckBounded(spec, r.mkInput(n), r.kind,
				mc.BoundedConfig{
					Budget:      30 + 12*n,
					SampleEvery: 3,
					Sampler:     sim.NewBudgetDropper(opts.Seed, 1),
				})
			if err != nil {
				return nil, err
			}
			if rep.Unrecovered > 0 {
				anyUnrecovered = true
			}
			ns = append(ns, float64(n))
			recs = append(recs, float64(rep.MaxRecovery))
		}
		scaling := "-"
		bounded := "false (unrecoverable)"
		if !anyUnrecovered {
			if _, slope, err := stats.LinearFit(ns, recs); err == nil {
				scaling = fmt.Sprintf("slope %.2f steps/item", slope)
				if slope < 0.5 {
					bounded = fmt.Sprintf("true (const ≈ %.0f)", recs[len(recs)-1])
				} else {
					bounded = "false (grows with |X|)"
				}
			}
		}
		matrix.AddRow(r.name, r.kind.String(), r.x, weak, bounded, scaling)
	}
	matrix.AddNote("Definition 2 demands one f for all inputs: growth with n means no f(i) exists")
	matrix.AddNote("weak boundedness samples the paper's t_i points and may use in-flight (old) messages")

	// T8b: single-fault recovery gap vs n for the hybrid protocol.
	fault := tablefmt.New("T8b: hybrid protocol, one early loss — longest learning gap vs n",
		"n", "largest gap between consecutive learn times (steps)", "total steps")
	var ns, gaps []float64
	for _, n := range lengths {
		input := alt(n)
		res, err := sim.RunProtocol(hybrid.MustNew(2, 4), input, channel.KindDel,
			sim.NewBudgetDropper(opts.Seed, 1), sim.Config{MaxSteps: 3000 + 600*n, StopWhenComplete: true})
		if err != nil {
			return nil, err
		}
		if res.SafetyViolation != nil || !res.OutputComplete {
			return nil, fmt.Errorf("expt: hybrid misbehaved at n=%d: violation=%v complete=%v",
				n, res.SafetyViolation, res.OutputComplete)
		}
		gap := 0
		prev := 0
		for _, t := range res.LearnTimes {
			if t-prev > gap {
				gap = t - prev
			}
			prev = t
		}
		fault.AddRow(fmt.Sprint(n), fmt.Sprint(gap), fmt.Sprint(res.Steps))
		ns = append(ns, float64(n))
		gaps = append(gaps, float64(gap))
	}
	if _, slope, err := stats.LinearFit(ns, gaps); err == nil {
		fault.AddNote("gap slope %.2f steps/item: a single fault costs time proportional to the rest of the input (§5: 'never fully recovers')", slope)
	}
	return []*tablefmt.Table{matrix, fault}, nil
}

// specT aliases protocol.Spec to keep the row table compact.
type specT = protocol.Spec
