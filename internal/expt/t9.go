package expt

import (
	"fmt"
	"math/rand"

	"seqtx/internal/channel"
	"seqtx/internal/mc"
	"seqtx/internal/prob"
	"seqtx/internal/protocol/modseq"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
	"seqtx/internal/tablefmt"
)

// RunT9 implements the paper's §6 outlook as an experiment: probabilistic
// "solutions" to X-STP with |X| > alpha(m). The modseq protocol (Stenning
// with sequence numbers mod M) carries every sequence over D with a
// finite alphabet of M·|D| messages. Theorem 1 guarantees failing runs
// exist for every M — T9a exhibits them by exhaustive model checking —
// but T9b shows the Monte-Carlo failure probability under random fair
// schedules collapsing as the window M grows: the possibility of failure
// is unavoidable, its probability is a design parameter.
func RunT9(opts Options) ([]*tablefmt.Table, error) {
	adversarial := tablefmt.New("T9a: the possibility of failure — exhaustive check per window",
		"window M", "|M^S|", "violation found", "witness steps", "states")
	input3 := seq.FromInts(0, 0, 0)
	for _, window := range []int{1, 2, 3} {
		spec, err := modseq.New(1, window)
		if err != nil {
			return nil, err
		}
		// Input long enough to wrap the window: positions 0..window+1.
		input := make(seq.Seq, window+2)
		if window == 1 {
			input = input3[:2]
		}
		res, err := mc.Explore(spec, input, channel.KindDup, mc.ExploreConfig{
			MaxDepth:  4*window + 8,
			MaxStates: 1 << 18,
		})
		if err != nil {
			return nil, err
		}
		found, steps := "NO (unexpected!)", "-"
		if res.Violation != nil {
			found = "yes"
			steps = fmt.Sprint(len(res.Violation.Actions))
		}
		adversarial.AddRow(fmt.Sprint(window), fmt.Sprint(window*1), found, steps, fmt.Sprint(res.States))
	}
	adversarial.AddNote("Theorem 1: with X = all sequences, every finite window must admit a failing run")

	// Average over random inputs: with a fixed periodic input, a stale
	// message whose position collides mod M can also collide in VALUE
	// (writing the right item by accident), which masks or inflates the
	// failure rate at particular windows.
	const (
		inputsPerWindow = 20
		inputLen        = 12
		domain          = 3
	)
	trialsPerInput := 10
	if opts.Deep {
		trialsPerInput = 50
	}
	totalRuns := inputsPerWindow * trialsPerInput
	replayPeriods := []int{2, 4, 8}
	header := []string{"window M", "|M^S|"}
	for _, p := range replayPeriods {
		header = append(header, fmt.Sprintf("violations @replay 1/%d", p))
	}
	carlo := tablefmt.New(fmt.Sprintf(
		"T9b: the probability of failure — %d runs per cell (dup channel, random inputs, random stale replays)", totalRuns),
		header...)
	rng := rand.New(rand.NewSource(opts.Seed + 77))
	inputs := make([]seq.Seq, inputsPerWindow)
	for i := range inputs {
		inputs[i] = seq.Random(rng, domain, inputLen)
	}
	for _, window := range []int{1, 2, 3, 4, 6, 8, 10, 12} {
		spec, err := modseq.New(domain, window)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprint(window), fmt.Sprint(window * domain)}
		for _, period := range replayPeriods {
			period := period
			var agg prob.Estimate
			for i, input := range inputs {
				base := opts.Seed + int64(1000*i)
				est, perr := prob.Run(spec, input, channel.KindDup, prob.Config{
					Trials: trialsPerInput,
					Seed:   base,
					NewAdversary: func(trial int) sim.Adversary {
						// A live schedule (round-robin core) that replays a
						// uniformly random already-sent message every
						// period-th step: the "random network" of §6.
						return sim.NewReplayer(base+int64(trial), period)
					},
				})
				if perr != nil {
					return nil, perr
				}
				agg.Trials += est.Trials
				agg.Violations += est.Violations
				agg.Completed += est.Completed
				agg.Stalled += est.Stalled
			}
			row = append(row, fmt.Sprintf("%.1f%%", 100*agg.ViolationRate()))
		}
		carlo.AddRow(row...)
	}
	carlo.AddNote("inputs have %d items, so windows M >= %d admit no in-run collision: the Stenning limit", inputLen, inputLen)
	carlo.AddNote("a failure needs a random stale replay to collide with the receiver's expectation mod M (and differ in value)")
	carlo.AddNote("the paper's §6: error probability becomes a resource knob once zero is impossible")
	return []*tablefmt.Table{adversarial, carlo}, nil
}
