package faults

import (
	"encoding/binary"
	"fmt"

	"seqtx/internal/channel"
	"seqtx/internal/msg"
)

// Corrupt wraps a channel half and substitutes messages in flight: every
// everyN-th send is replaced by the message previously sent on the same
// half (if any, and different). Because the substitute was itself a
// legitimate send, corruption never leaves the protocol's declared
// alphabet — it stays inside the paper's finite-alphabet model while
// falsifying the content, which is exactly the "corrupt" fault the
// paper's introduction names and its channels exclude.
//
// The wrapper sits below the link's alphabet enforcement (the link checks
// the original message, the wrapper swaps afterwards), and it is
// deterministic given the send sequence, so corrupted runs replay and
// shrink like any other.
type Corrupt struct {
	inner     channel.Half
	everyN    int
	sends     int
	corrupted int
	prev      msg.Msg
	hasPrev   bool
}

var _ channel.Half = (*Corrupt)(nil)

// NewCorrupt wraps inner with previous-message substitution on every
// everyN-th send (everyN is clamped to >= 1).
func NewCorrupt(inner channel.Half, everyN int) *Corrupt {
	if everyN < 1 {
		everyN = 1
	}
	return &Corrupt{inner: inner, everyN: everyN}
}

// Kind returns the wrapped half's kind.
func (c *Corrupt) Kind() channel.Kind { return c.inner.Kind() }

// Send stores m, or its substitute on corruption steps.
func (c *Corrupt) Send(m msg.Msg) {
	c.sends++
	stored := m
	if c.sends%c.everyN == 0 && c.hasPrev && c.prev != m {
		stored = c.prev
		c.corrupted++
	}
	c.prev = m
	c.hasPrev = true
	c.inner.Send(stored)
}

// Deliverable delegates to the wrapped half.
func (c *Corrupt) Deliverable() msg.Counts { return c.inner.Deliverable() }

// CanDeliver delegates to the wrapped half.
func (c *Corrupt) CanDeliver(m msg.Msg) bool { return c.inner.CanDeliver(m) }

// Deliver delegates to the wrapped half.
func (c *Corrupt) Deliver(m msg.Msg) error { return c.inner.Deliver(m) }

// CanDrop delegates to the wrapped half.
func (c *Corrupt) CanDrop(m msg.Msg) bool { return c.inner.CanDrop(m) }

// Drop delegates to the wrapped half.
func (c *Corrupt) Drop(m msg.Msg) error { return c.inner.Drop(m) }

// SentTotal counts Send calls (corrupted or not).
func (c *Corrupt) SentTotal() int { return c.inner.SentTotal() }

// Corrupted returns how many sends were substituted so far.
func (c *Corrupt) Corrupted() int { return c.corrupted }

// Clone returns an independent deep copy.
func (c *Corrupt) Clone() channel.Half {
	cp := *c
	cp.inner = c.inner.Clone()
	return &cp
}

// Key combines the wrapped key with the corruption phase: two wrapped
// halves behave identically only when the inner states match and the
// next corruption is equally far away.
func (c *Corrupt) Key() string {
	return fmt.Sprintf("corrupt(%d,%d,%s)@%s", c.everyN, c.sends%c.everyN, c.prev, c.inner.Key())
}

// EncodeKey appends the binary counterpart of Key: the corruption
// parameters and phase followed by the wrapped half's encoding.
func (c *Corrupt) EncodeKey(buf []byte) []byte {
	buf = append(buf, 'c')
	buf = binary.AppendUvarint(buf, uint64(c.everyN))
	buf = binary.AppendUvarint(buf, uint64(c.sends%c.everyN))
	buf = msg.AppendMsg(buf, c.prev)
	return c.inner.EncodeKey(buf)
}
