// Package faults layers composable fault plans over the runs model. A
// Plan bundles injections on the three surfaces an STP system exposes:
//
//   - schedule faults, wrapped around any sim.Adversary: burst drops
//     (every droppable copy in a step window is deleted) and
//     partition-then-heal phases (no deliveries on chosen directions for
//     a window) — both are particular resolutions of the channel's legal
//     nondeterminism (Property 1b), i.e. in-model;
//   - channel faults, wrapped around a channel.Half: within-alphabet
//     message substitution ("corruption" that stays inside the paper's
//     finite-alphabet assumption but outside its fault menu — the
//     paper's channels never corrupt);
//   - process faults, injected as scheduler actions: crash-restart of
//     the sender or receiver (local state reset mid-run; the channel and
//     the tapes survive), also outside the model.
//
// The in-model/out-of-model distinction is tracked per plan: the paper's
// theorems promise the tight protocol survives every in-model plan, while
// out-of-model plans are expected to produce counterexamples — the soak
// harness (internal/soak) turns both expectations into checked campaign
// outcomes.
package faults

import (
	"fmt"

	"seqtx/internal/channel"
	"seqtx/internal/sim"
	"seqtx/internal/trace"
)

// Process selects a crash-restart victim.
type Process int

// Crash victims.
const (
	// Sender crashes S.
	Sender Process = iota + 1
	// Receiver crashes R.
	Receiver
)

// String names the process.
func (p Process) String() string {
	switch p {
	case Sender:
		return "sender"
	case Receiver:
		return "receiver"
	default:
		return fmt.Sprintf("Process(%d)", int(p))
	}
}

// HalfWrapper layers a fault onto one directional channel half.
type HalfWrapper func(channel.Half) channel.Half

// Plan is a named, composable bundle of fault injections. The zero value
// is unusable; build plans with NewPlan and the With* methods, which
// return the plan for chaining. A fresh Plan value must be built per run
// (its wrapped adversaries and halves carry per-run state).
type Plan struct {
	name       string
	advWraps   []func(sim.Adversary) sim.Adversary
	halfWraps  map[channel.Dir][]HalfWrapper
	outOfModel bool
	corrupting bool
}

// NewPlan returns an empty (fault-free, in-model) plan.
func NewPlan(name string) *Plan {
	return &Plan{name: name, halfWraps: make(map[channel.Dir][]HalfWrapper)}
}

// Name identifies the plan for reports.
func (p *Plan) Name() string { return p.name }

// InModel reports whether every component of the plan stays within the
// paper's channel model (arbitrary delay, reorder, dup/del as the kind
// permits). Out-of-model components — corruption, crash-restart — clear
// it; for those, a protocol violation is an expected campaign outcome,
// not a bug.
func (p *Plan) InModel() bool { return !p.outOfModel }

// Corrupting reports whether the plan substitutes messages in flight.
// Corrupted runs legitimately fail the channel conservation audit
// (delivered-but-never-sent is precisely what corruption fabricates), so
// auditors skip them.
func (p *Plan) Corrupting() bool { return p.corrupting }

// WithBurstDrop schedules a drop burst: during adversary steps
// [from, from+length) every step that has a droppable copy on dir drops
// one (first in deterministic enabled order). On channels that cannot
// delete (pure dup) the burst is a no-op. A finite burst followed by the
// inner schedule is fair in the limit, and dropping is the del model's
// own fault — in-model.
func (p *Plan) WithBurstDrop(dir channel.Dir, from, length int) *Plan {
	p.advWraps = append(p.advWraps, func(inner sim.Adversary) sim.Adversary {
		return &burstAdv{inner: inner, dir: dir, from: from, until: from + length}
	})
	return p
}

// WithPartition schedules a partition window: during adversary steps
// [from, from+length) no message is delivered or dropped on any of dirs
// (messages are delayed, not lost); the processes keep ticking and any
// non-partitioned direction keeps a round-robin delivery rotation. The
// window then heals. Pure delay — in-model, fair in the limit.
func (p *Plan) WithPartition(from, length int, dirs ...channel.Dir) *Plan {
	blocked := make(map[channel.Dir]bool, len(dirs))
	for _, d := range dirs {
		blocked[d] = true
	}
	p.advWraps = append(p.advWraps, func(inner sim.Adversary) sim.Adversary {
		return &partitionAdv{inner: inner, blocked: blocked, from: from, until: from + length}
	})
	return p
}

// WithCorruption substitutes every nth send on dir with the previously
// sent message on that half (a value genuinely from the protocol's
// alphabet, so the finite-alphabet assumption holds while the content is
// wrong). Out-of-model: the paper's channels never corrupt (§1).
func (p *Plan) WithCorruption(dir channel.Dir, everyN int) *Plan {
	if everyN < 1 {
		everyN = 1
	}
	p.outOfModel = true
	p.corrupting = true
	p.halfWraps[dir] = append(p.halfWraps[dir], func(h channel.Half) channel.Half {
		return NewCorrupt(h, everyN)
	})
	return p
}

// WithCrash schedules crash-restarts of who at the given adversary step
// indices. Out-of-model: the paper's processes never lose state.
func (p *Plan) WithCrash(who Process, at ...int) *Plan {
	p.outOfModel = true
	steps := make(map[int]bool, len(at))
	for _, s := range at {
		steps[s] = true
	}
	p.advWraps = append(p.advWraps, func(inner sim.Adversary) sim.Adversary {
		return &crashAdv{inner: inner, who: who, at: steps}
	})
	return p
}

// WithScramble schedules scramble-restarts of who at the given adversary
// step indices: the victim restarts into seeded-arbitrary local state
// (the self-stabilization adversary) instead of its initial state. Each
// point's corruption seed is derived from seed and the step index with
// SubSeed, so the whole schedule replays byte-exactly from one seed.
// Out-of-model.
func (p *Plan) WithScramble(who Process, seed int64, at ...int) *Plan {
	p.outOfModel = true
	steps := make(map[int]bool, len(at))
	for _, s := range at {
		steps[s] = true
	}
	p.advWraps = append(p.advWraps, func(inner sim.Adversary) sim.Adversary {
		return &crashAdv{inner: inner, who: who, at: steps, scramble: true, seed: seed}
	})
	return p
}

// SubSeed derives a decorrelated sub-seed from seed and lane via the
// SplitMix64 finalizer (Steele, Lea & Flood, OOPSLA 2014). Scramble
// schedules use it to give every crash point its own corruption stream;
// the wire supervisor uses the same derivation so a sim scramble and a
// live scramble with equal (seed, lane) corrupt a process identically.
func SubSeed(seed int64, lane uint64) int64 {
	x := uint64(seed) ^ lane
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return int64(x ^ (x >> 31))
}

// Link builds a link of the given kind with the plan's channel-fault
// wrappers applied to each half.
func (p *Plan) Link(kind channel.Kind) (*channel.Link, error) {
	sToR, err := channel.New(kind)
	if err != nil {
		return nil, err
	}
	rToS, err := channel.New(kind)
	if err != nil {
		return nil, err
	}
	for _, wrap := range p.halfWraps[channel.SToR] {
		sToR = wrap(sToR)
	}
	for _, wrap := range p.halfWraps[channel.RToS] {
		rToS = wrap(rToS)
	}
	return channel.NewLink(sToR, rToS), nil
}

// Wrap layers the plan's schedule and process faults over inner, outermost
// wrap first (so earlier With* calls see the step stream first).
func (p *Plan) Wrap(inner sim.Adversary) sim.Adversary {
	adv := inner
	for i := len(p.advWraps) - 1; i >= 0; i-- {
		adv = p.advWraps[i](adv)
	}
	return adv
}

// burstAdv drops one droppable copy per step during its window.
type burstAdv struct {
	inner       sim.Adversary
	dir         channel.Dir
	from, until int
	step        int
}

// Name implements sim.Adversary.
func (a *burstAdv) Name() string {
	return fmt.Sprintf("burst-drop(%s,%d..%d)+%s", a.dir, a.from, a.until, a.inner.Name())
}

// Choose implements sim.Adversary.
func (a *burstAdv) Choose(w *sim.World, enabled []trace.Action) trace.Action {
	s := a.step
	a.step++
	if s >= a.from && s < a.until {
		for _, act := range enabled {
			if act.Kind == trace.ActDrop && act.Dir == a.dir {
				return act
			}
		}
	}
	return a.inner.Choose(w, enabled)
}

// partitionAdv suppresses deliveries (and drops) on blocked directions
// during its window, running its own deterministic schedule there; the
// inner adversary resumes outside the window.
type partitionAdv struct {
	inner       sim.Adversary
	blocked     map[channel.Dir]bool
	from, until int
	step        int
	phase       int
	rotation    map[channel.Dir]int
}

// Name implements sim.Adversary.
func (a *partitionAdv) Name() string {
	dirs := ""
	for _, d := range []channel.Dir{channel.SToR, channel.RToS} {
		if a.blocked[d] {
			if dirs != "" {
				dirs += ","
			}
			dirs += d.String()
		}
	}
	return fmt.Sprintf("partition(%s,%d..%d)+%s", dirs, a.from, a.until, a.inner.Name())
}

// Choose implements sim.Adversary.
func (a *partitionAdv) Choose(w *sim.World, enabled []trace.Action) trace.Action {
	s := a.step
	a.step++
	if s < a.from || s >= a.until {
		return a.inner.Choose(w, enabled)
	}
	if a.rotation == nil {
		a.rotation = make(map[channel.Dir]int)
	}
	// Inside the window: tickS → deliver on an open dir → tickR → deliver.
	for i := 0; i < 4; i++ {
		phase := (a.phase + i) % 4
		switch phase {
		case 0:
			a.phase = (phase + 1) % 4
			return trace.TickS()
		case 2:
			a.phase = (phase + 1) % 4
			return trace.TickR()
		case 1, 3:
			dir := channel.SToR
			if phase == 3 {
				dir = channel.RToS
			}
			if a.blocked[dir] {
				continue
			}
			sup := w.Link.Half(dir).Deliverable().Support()
			if len(sup) == 0 {
				continue
			}
			m := sup[a.rotation[dir]%len(sup)]
			a.rotation[dir]++
			a.phase = (phase + 1) % 4
			return trace.Deliver(dir, m)
		}
	}
	a.phase = 1
	return trace.TickS()
}

// crashAdv injects crash-restart (or scramble-restart) actions at fixed
// adversary steps.
type crashAdv struct {
	inner    sim.Adversary
	who      Process
	at       map[int]bool
	step     int
	scramble bool
	seed     int64
}

// Name implements sim.Adversary.
func (a *crashAdv) Name() string {
	verb := "crash"
	if a.scramble {
		verb = "scramble"
	}
	return fmt.Sprintf("%s(%s)+%s", verb, a.who, a.inner.Name())
}

// Choose implements sim.Adversary.
func (a *crashAdv) Choose(w *sim.World, enabled []trace.Action) trace.Action {
	s := a.step
	a.step++
	if a.at[s] {
		if a.scramble {
			pointSeed := SubSeed(a.seed, uint64(s))
			if a.who == Sender {
				return trace.ScrambleS(pointSeed)
			}
			return trace.ScrambleR(pointSeed)
		}
		if a.who == Sender {
			return trace.CrashS()
		}
		return trace.CrashR()
	}
	return a.inner.Choose(w, enabled)
}
