package faults

import (
	"testing"

	"seqtx/internal/channel"
	"seqtx/internal/protocol/alphaproto"
	"seqtx/internal/protocol/stenning"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
)

func runWithPlan(t *testing.T, plan *Plan, specName string, kind channel.Kind, maxSteps int) sim.Result {
	t.Helper()
	spec := alphaproto.MustNew(3)
	input := seq.FromInts(2, 0, 1)
	if specName == "stenning" {
		spec = stenning.New()
	}
	link, err := plan.Link(kind)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sim.New(spec, input, link)
	if err != nil {
		t.Fatal(err)
	}
	adv := plan.Wrap(sim.NewFinDelay(sim.NewRandom(7), 10))
	res, err := sim.Run(w, adv, sim.Config{MaxSteps: maxSteps, StopWhenComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPresetNamesBuild(t *testing.T) {
	t.Parallel()
	for _, name := range PresetNames() {
		p, err := Preset(name)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("Preset(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := Preset("no-such-plan"); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestInModelFlags(t *testing.T) {
	t.Parallel()
	wantInModel := map[string]bool{
		"none": true, "burst-drop": true, "partition-heal": true,
		"corrupt": false, "crash-sender": false, "crash-receiver": false,
	}
	for name, want := range wantInModel {
		p, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.InModel() != want {
			t.Errorf("%s: InModel() = %v, want %v", name, p.InModel(), want)
		}
	}
}

func TestTightProtocolSurvivesInModelPresets(t *testing.T) {
	t.Parallel()
	for _, name := range []string{"none", "burst-drop", "partition-heal"} {
		for _, kind := range []channel.Kind{channel.KindDup, channel.KindDel} {
			plan, err := Preset(name)
			if err != nil {
				t.Fatal(err)
			}
			res := runWithPlan(t, plan, "alpha", kind, 5000)
			if res.SafetyViolation != nil {
				t.Errorf("%s/%s: safety violation: %v", name, kind, res.SafetyViolation)
			}
			if !res.OutputComplete {
				t.Errorf("%s/%s: incomplete after %d steps", name, kind, res.Steps)
			}
		}
	}
}

func TestBurstDropActuallyDrops(t *testing.T) {
	t.Parallel()
	plan := NewPlan("test").WithBurstDrop(channel.SToR, 0, 100)
	link, err := plan.Link(channel.KindDel)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sim.New(alphaproto.MustNew(3), seq.FromInts(2, 0, 1), link)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(w, plan.Wrap(sim.NewRoundRobin()), sim.Config{MaxSteps: 100}); err != nil {
		t.Fatal(err)
	}
	if d, ok := link.Half(channel.SToR).(*channel.Del); !ok || d.Dropped() == 0 {
		t.Errorf("burst window dropped nothing (half %T)", link.Half(channel.SToR))
	}
}

func TestCrashReceiverBreaksStenningSafety(t *testing.T) {
	t.Parallel()
	// Stenning is safe on every channel in-model; a receiver crash makes R
	// forget how much of Y it wrote, and when the dup channel re-delivers
	// the early data messages the rewrite violates the prefix property —
	// the canonical out-of-model counterexample.
	plan, err := Preset("crash-receiver")
	if err != nil {
		t.Fatal(err)
	}
	res := runWithPlan(t, plan, "stenning", channel.KindDup, 5000)
	if res.SafetyViolation == nil {
		t.Fatal("stenning survived a receiver crash-restart")
	}
}

func TestCrashSenderSurvivedByTightProtocol(t *testing.T) {
	t.Parallel()
	// The tight protocol's receiver suppresses duplicates, so a sender
	// restart (which retransmits from the beginning) is harmless on a dup
	// channel: the message types are ones R has already dismissed.
	plan, err := Preset("crash-sender")
	if err != nil {
		t.Fatal(err)
	}
	res := runWithPlan(t, plan, "alpha", channel.KindDup, 5000)
	if res.SafetyViolation != nil {
		t.Fatalf("tight protocol violated safety after sender crash: %v", res.SafetyViolation)
	}
	if !res.OutputComplete {
		t.Fatalf("tight protocol incomplete after sender crash (%d steps)", res.Steps)
	}
}

func TestCorruptSubstitutesPreviousSend(t *testing.T) {
	t.Parallel()
	h := NewCorrupt(channel.NewDel(), 2)
	h.Send("a") // 1st: kept
	h.Send("b") // 2nd: substituted with previous ("a")
	h.Send("c") // 3rd: kept
	if h.Corrupted() != 1 {
		t.Fatalf("Corrupted() = %d, want 1", h.Corrupted())
	}
	d := h.Deliverable()
	if d.Get("a") != 2 || d.Get("b") != 0 || d.Get("c") != 1 {
		t.Fatalf("deliverable = %s, want a×2,c×1", d)
	}
}

func TestCorruptCloneIndependence(t *testing.T) {
	t.Parallel()
	h := NewCorrupt(channel.NewDel(), 3)
	h.Send("a")
	cp := h.Clone()
	if cp.Key() != h.Key() {
		t.Fatalf("clone key %q != original %q", cp.Key(), h.Key())
	}
	h.Send("b")
	if cp.Key() == h.Key() {
		t.Fatal("clone tracked original's send")
	}
	if cp.CanDeliver("b") {
		t.Fatal("clone shares inner half with original")
	}
}

func TestPartitionWindowBlocksDeliveries(t *testing.T) {
	t.Parallel()
	plan := NewPlan("test").WithPartition(0, 50, channel.SToR, channel.RToS)
	link, err := plan.Link(channel.KindDup)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sim.New(alphaproto.MustNew(2), seq.FromInts(0, 1), link)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(w, plan.Wrap(sim.NewRoundRobin()), sim.Config{MaxSteps: 300, StopWhenComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OutputComplete {
		t.Fatalf("incomplete after heal: %s", res.Output)
	}
	if len(res.LearnTimes) == 0 || res.LearnTimes[0] < 50 {
		t.Errorf("first item learned at %v, inside the partition window", res.LearnTimes)
	}
}
