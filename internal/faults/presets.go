package faults

import (
	"fmt"
	"sort"
	"strings"

	"seqtx/internal/channel"
)

// Preset names and builds the stock fault plans of the soak harness. A
// fresh plan is built per call (plans carry per-run state). The presets:
//
//	none            fault-free control
//	burst-drop      drop every droppable S→R copy during steps 10..50
//	partition-heal  two full partitions (10..70 and 120..180), healed
//	corrupt         substitute every 7th S→R send (out-of-model)
//	crash-sender    crash-restart S at steps 15 and 45 (out-of-model)
//	crash-receiver  crash-restart R at steps 15 and 45 (out-of-model)
//
// The windows sit early so they land inside short campaign runs (a few
// items complete in tens of steps under a fair schedule).
func Preset(name string) (*Plan, error) {
	build, ok := presets[name]
	if !ok {
		return nil, fmt.Errorf("faults: unknown preset %q (have %s)",
			name, strings.Join(PresetNames(), ", "))
	}
	return build(), nil
}

// PresetNames lists the preset names, sorted.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

var presets = map[string]func() *Plan{
	"none": func() *Plan { return NewPlan("none") },
	"burst-drop": func() *Plan {
		return NewPlan("burst-drop").WithBurstDrop(channel.SToR, 10, 40)
	},
	"partition-heal": func() *Plan {
		return NewPlan("partition-heal").
			WithPartition(10, 60, channel.SToR, channel.RToS).
			WithPartition(120, 60, channel.SToR, channel.RToS)
	},
	"corrupt": func() *Plan {
		return NewPlan("corrupt").WithCorruption(channel.SToR, 7)
	},
	"crash-sender": func() *Plan {
		return NewPlan("crash-sender").WithCrash(Sender, 15, 45)
	},
	"crash-receiver": func() *Plan {
		return NewPlan("crash-receiver").WithCrash(Receiver, 15, 45)
	},
}
