package faults

import (
	"fmt"
	"sort"
	"strings"

	"seqtx/internal/channel"
)

// Spec is the declarative form of a fault plan: windows and rules instead
// of wrapped adversaries. One Spec serves two consumers — Plan builds the
// lock-step scheduler faults for internal/sim, and the live transport
// impairment layer (internal/wire) replays the same windows against real
// links, with window positions counted in frames handled instead of
// adversary steps. Keeping presets declarative guarantees a preset name
// means the same faults in both worlds.
type Spec struct {
	// Name identifies the plan for reports.
	Name string
	// Bursts are burst-drop windows.
	Bursts []BurstWindow
	// Partitions are partition-then-heal windows.
	Partitions []PartitionWindow
	// Corruptions are within-alphabet substitution rules (out-of-model).
	Corruptions []CorruptRule
	// Crashes are crash-restart points (out-of-model, process faults).
	Crashes []CrashPoint
}

// BurstWindow drops every droppable copy on Dir during steps
// [From, From+Length).
type BurstWindow struct {
	Dir          channel.Dir
	From, Length int
}

// PartitionWindow blocks deliveries on Dirs during steps
// [From, From+Length); messages are delayed, not lost.
type PartitionWindow struct {
	From, Length int
	Dirs         []channel.Dir
}

// CorruptRule substitutes every Nth send on Dir with the previously sent
// message on that half.
type CorruptRule struct {
	Dir    channel.Dir
	EveryN int
}

// CrashPoint crash-restarts Who at the given adversary step indices.
// With Scramble set, each restart lands in seeded-arbitrary local state
// (scramble-restart, the self-stabilization adversary) instead of the
// initial state; the per-point corruption seeds come from the seed given
// to PlanSeeded.
type CrashPoint struct {
	Who      Process
	At       []int
	Scramble bool
}

// Plan materializes the spec as a sim-side fault plan with corruption
// seed 0 (sufficient when no crash point scrambles). A fresh plan is
// built per call (plans carry per-run state). Categories are applied in
// declaration order: bursts, partitions, corruptions, crashes.
func (s Spec) Plan() *Plan { return s.PlanSeeded(0) }

// PlanSeeded materializes the spec with the given scramble-corruption
// seed: every scrambling crash point derives its per-step corruption
// streams from it (via SubSeed), so one seed replays the whole fault
// schedule byte-exactly. Non-scrambling specs ignore the seed.
func (s Spec) PlanSeeded(seed int64) *Plan {
	p := NewPlan(s.Name)
	for _, b := range s.Bursts {
		p.WithBurstDrop(b.Dir, b.From, b.Length)
	}
	for _, w := range s.Partitions {
		p.WithPartition(w.From, w.Length, w.Dirs...)
	}
	for _, c := range s.Corruptions {
		p.WithCorruption(c.Dir, c.EveryN)
	}
	for _, c := range s.Crashes {
		if c.Scramble {
			p.WithScramble(c.Who, seed, c.At...)
		} else {
			p.WithCrash(c.Who, c.At...)
		}
	}
	return p
}

// ProcessFaults reports whether the spec includes process faults
// (crash-restarts), which only the lock-step scheduler can inject — a
// live link cannot reset a remote process's state.
func (s Spec) ProcessFaults() bool { return len(s.Crashes) > 0 }

// Preset builds the named stock fault plan. A fresh plan is built per
// call. The presets:
//
//	none            fault-free control
//	burst-drop      drop every droppable S→R copy during steps 10..50
//	partition-heal  two full partitions (10..70 and 120..180), healed
//	corrupt         substitute every 7th S→R send (out-of-model)
//	crash-sender    crash-restart S at steps 15 and 45 (out-of-model)
//	crash-receiver  crash-restart R at steps 15 and 45 (out-of-model)
//
// plus the scramble variants, which restart into seeded-arbitrary local
// state instead of the initial state (the self-stabilization adversary;
// materialize them with Spec.PlanSeeded to pick the corruption streams):
//
//	crash-scramble-sender    scramble-restart S at steps 15 and 45
//	crash-scramble-receiver  scramble-restart R at steps 15 and 45
//	crash-scramble-both      scramble-restart S at 15, 45 and R at 25, 55
//
// The windows sit early so they land inside short campaign runs (a few
// items complete in tens of steps under a fair schedule).
func Preset(name string) (*Plan, error) {
	s, err := PresetSpec(name)
	if err != nil {
		return nil, err
	}
	return s.Plan(), nil
}

// PresetSpec returns the declarative form of a stock preset (see Preset
// for the menu). Specs are value types; callers may tweak a copy.
func PresetSpec(name string) (Spec, error) {
	s, ok := presets[name]
	if !ok {
		return Spec{}, fmt.Errorf("faults: unknown preset %q (have %s)",
			name, strings.Join(PresetNames(), ", "))
	}
	return s, nil
}

// PresetNames lists the preset names, sorted.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

var presets = map[string]Spec{
	"none": {Name: "none"},
	"burst-drop": {
		Name:   "burst-drop",
		Bursts: []BurstWindow{{Dir: channel.SToR, From: 10, Length: 40}},
	},
	"partition-heal": {
		Name: "partition-heal",
		Partitions: []PartitionWindow{
			{From: 10, Length: 60, Dirs: []channel.Dir{channel.SToR, channel.RToS}},
			{From: 120, Length: 60, Dirs: []channel.Dir{channel.SToR, channel.RToS}},
		},
	},
	"corrupt": {
		Name:        "corrupt",
		Corruptions: []CorruptRule{{Dir: channel.SToR, EveryN: 7}},
	},
	"crash-sender": {
		Name:    "crash-sender",
		Crashes: []CrashPoint{{Who: Sender, At: []int{15, 45}}},
	},
	"crash-receiver": {
		Name:    "crash-receiver",
		Crashes: []CrashPoint{{Who: Receiver, At: []int{15, 45}}},
	},
	"crash-scramble-sender": {
		Name:    "crash-scramble-sender",
		Crashes: []CrashPoint{{Who: Sender, At: []int{15, 45}, Scramble: true}},
	},
	"crash-scramble-receiver": {
		Name:    "crash-scramble-receiver",
		Crashes: []CrashPoint{{Who: Receiver, At: []int{15, 45}, Scramble: true}},
	},
	"crash-scramble-both": {
		Name: "crash-scramble-both",
		Crashes: []CrashPoint{
			{Who: Sender, At: []int{15, 45}, Scramble: true},
			{Who: Receiver, At: []int{25, 55}, Scramble: true},
		},
	},
}
