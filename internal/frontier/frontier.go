// Package frontier sweeps protocols across quantitative channel models
// and charts the empirical capacity frontier: goodput (delivered items
// per scheduler step) and completion rate as a function of the channel
// parameter, protocol, and alphabet size m — set against the lock-step
// goodput ceiling and the paper's alpha(m) information bound.
//
// The sweep only pairs protocols with channel kinds they are safe on
// (see SafeOn): afwz and hybrid assume a del channel — Theorem 1's
// replayed acknowledgements break their gating on dup channels — so on
// the iid-dup family they are skipped, not run-and-failed. Under the
// loss families they never retransmit data, so they stall safely;
// their low completion rate IS frontier data, not an error. A cell
// with a prefix-safety violation is a hard failure of the whole sweep.
package frontier

import (
	"fmt"
	"math"
	"math/big"
	"sort"
	"strings"

	"seqtx/internal/alpha"
	"seqtx/internal/chanmodel"
	"seqtx/internal/channel"
	"seqtx/internal/prob"
	"seqtx/internal/protocol/hybrid"
	"seqtx/internal/registry"
	"seqtx/internal/seq"
)

// safeKinds records, for each protocol the frontier knows how to place,
// the channel kinds it is safe on (zero safety violations in every
// run). Protocols absent from the table are rejected by Run: charting
// a frontier for a protocol that can violate safety under the model
// would conflate "slow" with "wrong" on the same axis. Use stpsim or
// stpexp to study unsafe protocols.
var safeKinds = map[string][]channel.Kind{
	// The paper's protocol retransmits and tolerates both duplication
	// and deletion (it is exactly the X-STP(dup)/X-STP(del) solution).
	"alpha": {channel.KindDup, channel.KindDel},
	// Unbounded sequence numbers: safe and live on dup and del.
	"stenning": {channel.KindDup, channel.KindDel},
	// Del-channel-only: replayed acks break the gating premise on dup
	// (Theorem 1). Never retransmits data, so genuine loss stalls it
	// safely — expect completion < 1 under the loss families.
	"afwz": {channel.KindDel},
	// Same del-only premise as afwz (its §5 alternation partner).
	"hybrid": {channel.KindDel},
	// FIFO-only sliding windows: frame numbers modulo a small space are
	// safe exactly because the link preserves order. The frontier
	// realizes their models on channel.KindFIFO and additionally gates
	// them (see fifoFamilies) to the per-copy loss families — never the
	// dup or k-del families, whose realizations reorder.
	"gobackn":   {channel.KindFIFO},
	"selrepeat": {channel.KindFIFO},
}

// fifoOnly marks the windowed protocols whose safety argument requires
// an order-preserving link. Their cells carry a window-depth axis (see
// Config.Windows) and run on the FIFO realization of the model.
var fifoOnly = map[string]bool{"gobackn": true, "selrepeat": true}

// fifoFamilies are the model families whose decision streams the FIFO
// realization preserves order for: per-copy loss only, no duplication
// and no reordering. k-del is excluded — its frontier realization
// deletes by position over a reordering del half — as is iid-dup.
var fifoFamilies = map[string]bool{"iid-loss": true, "ge": true}

// repFree marks protocols whose allowable set X is the repetition-free
// sequences, constraining Items to at most min(Ms). Everything else in
// the safe table accepts arbitrary in-domain tapes, so the pipelined
// sweeps can use tapes much longer than the domain (items i mod m).
var repFree = map[string]bool{"alpha": true}

// SafeOn reports whether the named protocol is in the frontier's
// verified-safe table for the given channel kind.
func SafeOn(proto string, kind channel.Kind) bool {
	for _, k := range safeKinds[proto] {
		if k == kind {
			return true
		}
	}
	return false
}

// FrontierProtocols lists the protocols the frontier can place on at
// least one channel kind, sorted.
func FrontierProtocols() []string {
	names := make([]string, 0, len(safeKinds))
	for n := range safeKinds {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DefaultModels returns the standard evaluation grid: four parameter
// points in each of the four model families.
func DefaultModels() []chanmodel.Model {
	specs := []string{
		"iid-loss(p=0.05)", "iid-loss(p=0.1)", "iid-loss(p=0.2)", "iid-loss(p=0.4)",
		"ge(pgb=0.02,pbg=0.5,lg=0.01,lb=0.5)",
		"ge(pgb=0.05,pbg=0.5,lg=0.01,lb=0.5)",
		"ge(pgb=0.1,pbg=0.5,lg=0.01,lb=0.5)",
		"ge(pgb=0.2,pbg=0.25,lg=0.01,lb=0.5)",
		"k-del(k=1,n=16)", "k-del(k=2,n=16)", "k-del(k=4,n=16)", "k-del(k=8,n=16)",
		"iid-dup(p=0.1)", "iid-dup(p=0.25)", "iid-dup(p=0.5)", "iid-dup(p=0.75)",
	}
	models := make([]chanmodel.Model, len(specs))
	for i, s := range specs {
		models[i] = chanmodel.MustParse(s)
	}
	return models
}

// Config describes one frontier sweep.
type Config struct {
	// Protos are registry protocol names; each must appear in the
	// verified-safe table (see SafeOn).
	Protos []string
	// Models is the channel-model axis (default: DefaultModels()).
	Models []chanmodel.Model
	// Ms is the alphabet-size axis (default: 4, 8).
	Ms []int
	// Items per session input. For repetition-free protocols (alpha)
	// this is capped at min(Ms); the other protocols take the tape
	// 0,1,...,Items-1 reduced mod m, so Items may exceed m (the
	// pipelined window sweeps need long tapes).
	Items int
	// Windows is the window-depth axis for the FIFO-only windowed
	// protocols (gobackn, selrepeat); other protocols ignore it.
	// Default: {4}.
	Windows []int
	// Trials per cell (default 20).
	Trials int
	// MaxSteps bounds each trial (default: prob's 600 + 200·Items).
	MaxSteps int
	// Seed is the base seed; cell c trial i derives from
	// Seed + c·10007 + i, so cells draw disjoint schedule streams.
	Seed int64
	// Parallelism is forwarded to prob.Run (default: GOMAXPROCS).
	Parallelism int
	// Timeout is the hybrid protocol's timeout parameter (0 = default).
	Timeout int
	// Logf, when non-nil, receives per-cell progress lines.
	Logf func(format string, args ...any)
}

func (c *Config) normalize() error {
	if len(c.Protos) == 0 {
		return fmt.Errorf("frontier: no protocols")
	}
	for _, p := range c.Protos {
		if _, ok := safeKinds[p]; !ok {
			return fmt.Errorf("frontier: protocol %q is not in the verified-safe table (have %s); use stpsim/stpexp to study it",
				p, strings.Join(FrontierProtocols(), ", "))
		}
	}
	if len(c.Models) == 0 {
		c.Models = DefaultModels()
	}
	if len(c.Ms) == 0 {
		c.Ms = []int{4, 8}
	}
	minM := c.Ms[0]
	for _, m := range c.Ms {
		if m < 2 {
			return fmt.Errorf("frontier: alphabet size %d < 2", m)
		}
		if m < minM {
			minM = m
		}
	}
	if c.Items <= 0 {
		c.Items = minM
	}
	for _, p := range c.Protos {
		if repFree[p] && c.Items > minM {
			return fmt.Errorf("frontier: %s needs repetition-free inputs, so %d items exceed min m = %d", p, c.Items, minM)
		}
	}
	if len(c.Windows) == 0 {
		c.Windows = []int{4}
	}
	for _, w := range c.Windows {
		if w < 1 {
			return fmt.Errorf("frontier: window depth %d < 1", w)
		}
	}
	if c.Trials <= 0 {
		c.Trials = 20
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return nil
}

// Cell is one (protocol, model, m) point of the frontier.
type Cell struct {
	Proto  string  `json:"proto"`
	Model  string  `json:"model"`  // canonical spec
	Family string  `json:"family"` // model family name
	Kind   string  `json:"kind"`   // channel kind the model realizes
	Param  float64 `json:"param"`  // family's primary parameter
	M      int     `json:"m"`
	// Window is the sliding-window depth for the windowed protocols
	// (0 for the stop-and-wait family).
	Window int `json:"window,omitempty"`
	Items  int  `json:"items"`
	Trials int  `json:"trials"`

	Completed  int `json:"completed"`
	Stalled    int `json:"stalled"`
	Violations int `json:"violations"`
	Steps      int `json:"steps"`
	Delivered  int `json:"delivered"`

	// Goodput is delivered items per scheduler step over all trials.
	Goodput        float64 `json:"goodput"`
	CompletionRate float64 `json:"completion_rate"`
	// Ceiling is the asymptotic lock-step rate: an ideal protocol
	// moves one item per 4 steps (tick S, deliver data, tick R,
	// deliver ack), degraded by the expected drop rate and diluted by
	// duplicates. It is a reference curve, not a hard bound — short
	// runs end right after the last delivery (truncating the final
	// cycle) and lucky seeds see fewer drops than the expectation, so
	// finite-run goodput can sit slightly above it. The hard
	// structural bound is one delivery per 4-step cycle:
	// Delivered <= (Steps + 2·Trials) / 4.
	Ceiling float64 `json:"ceiling"`
	// Efficiency is Goodput / Ceiling (0 when the ceiling is 0; can
	// exceed 1 for the finite-run reasons above).
	Efficiency float64 `json:"efficiency"`
	// AlphaBits is log2(alpha(m)) — the paper's bound on how much
	// sequence information a bounded-alphabet protocol can pin down.
	AlphaBits float64 `json:"alpha_bits"`
}

// Doc is the frontier bench document.
type Doc struct {
	Tool    string   `json:"tool"`
	Protos  []string `json:"protos"`
	Models  []string `json:"models"`
	Ms      []int    `json:"ms"`
	Windows []int    `json:"windows,omitempty"`
	Items   int      `json:"items"`
	Trials  int      `json:"trials"`
	Seed    int64    `json:"seed"`
	Cells   []Cell   `json:"cells"`
	Skipped []string `json:"skipped,omitempty"`

	TotalCells      int `json:"total_cells"`
	TotalViolations int `json:"total_violations"`
}

// Run executes the sweep. Cells run sequentially (each cell's trials
// run in parallel inside prob.Run); results are deterministic for a
// fixed Seed. An error from any cell aborts the sweep; safety
// violations do NOT error — they are tallied so the caller can fail
// the run with the full document in hand.
func Run(cfg Config) (*Doc, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	doc := &Doc{
		Tool:   "stpfrontier",
		Protos: append([]string(nil), cfg.Protos...),
		Ms:     append([]int(nil), cfg.Ms...),
		Items:  cfg.Items,
		Trials: cfg.Trials,
		Seed:   cfg.Seed,
	}
	for _, p := range cfg.Protos {
		if fifoOnly[p] {
			doc.Windows = append([]int(nil), cfg.Windows...)
			break
		}
	}
	for _, m := range cfg.Models {
		doc.Models = append(doc.Models, m.Spec())
	}

	cellIdx := 0
	for _, proto := range cfg.Protos {
		windows := []int{0}
		if fifoOnly[proto] {
			windows = cfg.Windows
		}
		for _, model := range cfg.Models {
			// Realization kind: the model's own kind, except that the
			// FIFO-only windowed protocols run the model's loss stream
			// over an order-preserving FIFO half — and only for the
			// families whose decisions that realization makes sense for.
			kind := model.Kind()
			if fifoOnly[proto] {
				if !fifoFamilies[model.Family()] {
					doc.Skipped = append(doc.Skipped, fmt.Sprintf(
						"%s × %s: FIFO-only protocol is charted only on the order-preserving loss families (iid-loss, ge)",
						proto, model.Spec()))
					continue
				}
				kind = channel.KindFIFO
			}
			if !SafeOn(proto, kind) {
				doc.Skipped = append(doc.Skipped, fmt.Sprintf(
					"%s × %s: %s is not safe on %s channels", proto, model.Spec(), proto, kind))
				continue
			}
			for _, m := range cfg.Ms {
				// Input tape: 0..Items-1 for the repetition-free
				// protocols (identity stays in-domain because normalize
				// capped Items at min m); the same ramp reduced mod m
				// for everyone else — identical across cells at the same
				// m, so only channel, protocol, and window vary.
				input := make(seq.Seq, cfg.Items)
				for i := range input {
					if repFree[proto] {
						input[i] = seq.Item(i)
					} else {
						input[i] = seq.Item(i % m)
					}
				}
				for _, w := range windows {
					cell, err := runCell(cfg, proto, model, kind, m, w, input, cellIdx)
					if err != nil {
						return nil, err
					}
					cellIdx++
					doc.Cells = append(doc.Cells, cell)
					doc.TotalViolations += cell.Violations
					cfg.Logf("cell %s × %s × m=%d w=%d: goodput=%.4f (ceiling %.4f) complete=%d/%d violations=%d",
						proto, model.Spec(), m, w, cell.Goodput, cell.Ceiling,
						cell.Completed, cell.Trials, cell.Violations)
				}
			}
		}
	}
	doc.TotalCells = len(doc.Cells)
	return doc, nil
}

func runCell(cfg Config, proto string, model chanmodel.Model, kind channel.Kind, m, window int, input seq.Seq, cellIdx int) (Cell, error) {
	timeout := cfg.Timeout
	if timeout == 0 {
		timeout = hybrid.DefaultTimeout
	}
	spec, err := registry.Protocol(proto, registry.Params{M: m, Timeout: timeout, Window: window})
	if err != nil {
		return Cell{}, fmt.Errorf("frontier: %w", err)
	}
	est, err := prob.Run(spec, input, kind, prob.Config{
		Trials:      cfg.Trials,
		MaxSteps:    cfg.MaxSteps,
		Seed:        cfg.Seed + int64(cellIdx)*10007,
		Parallelism: cfg.Parallelism,
		Model:       model,
	})
	if err != nil {
		return Cell{}, fmt.Errorf("frontier: %s × %s × m=%d: %w", proto, model.Spec(), m, err)
	}
	cell := Cell{
		Proto: proto, Model: model.Spec(), Family: model.Family(),
		Kind: kind.String(), Param: model.Param(),
		M: m, Window: window, Items: cfg.Items, Trials: est.Trials,
		Completed: est.Completed, Stalled: est.Stalled, Violations: est.Violations,
		Steps: est.Steps, Delivered: est.Items,
		Goodput:        est.Goodput(),
		CompletionRate: est.CompletionRate(),
		Ceiling:        Ceiling(model),
		AlphaBits:      AlphaBits(m),
	}
	if cell.Ceiling > 0 {
		cell.Efficiency = cell.Goodput / cell.Ceiling
	}
	return cell, nil
}

// Ceiling returns the asymptotic lock-step rate for a model: 0.25
// items per step for an ideal stop-and-wait exchange, scaled by the
// fraction of data transmissions that survive and diluted by
// duplicate deliveries burning scheduler steps. See Cell.Ceiling for
// why finite runs can exceed it slightly.
func Ceiling(m chanmodel.Model) float64 {
	return 0.25 * (1 - m.DropRate()) / (1 + m.DupRate())
}

// AlphaBits returns log2(alpha(m)), the information content of the
// paper's bound. Exact via big integers, converted to float at the
// end; +Inf only for astronomically large m.
func AlphaBits(m int) float64 {
	a, err := alpha.AlphaBig(m)
	if err != nil || a.Sign() <= 0 {
		return 0
	}
	// log2(a) = exponent offset + log2 of the mantissa: extract via
	// big.Float to stay exact for m well past float64 range.
	f := new(big.Float).SetInt(a)
	mant := new(big.Float)
	exp := f.MantExp(mant)
	mf, _ := mant.Float64()
	return float64(exp) + math.Log2(mf)
}

// Markdown renders the document as a GitHub-flavored table, grouped by
// model family, for pasting into EXPERIMENTS.md.
func (d *Doc) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Frontier sweep: %d cells, %d trials × %d items each, seed %d.\n",
		d.TotalCells, d.Trials, d.Items, d.Seed)
	fmt.Fprintf(&b, "Goodput = delivered items per scheduler step; ceiling = 0.25·(1−drop)/(1+dup).\n\n")

	byFamily := map[string][]Cell{}
	var families []string
	for _, c := range d.Cells {
		if _, ok := byFamily[c.Family]; !ok {
			families = append(families, c.Family)
		}
		byFamily[c.Family] = append(byFamily[c.Family], c)
	}
	for _, fam := range families {
		fmt.Fprintf(&b, "### %s\n\n", fam)
		b.WriteString("| protocol | model | m | W | alpha bits | complete | goodput | ceiling | efficiency | violations |\n")
		b.WriteString("|---|---|---:|---:|---:|---:|---:|---:|---:|---:|\n")
		cells := byFamily[fam]
		sort.SliceStable(cells, func(i, j int) bool {
			if cells[i].Param != cells[j].Param {
				return cells[i].Param < cells[j].Param
			}
			if cells[i].Proto != cells[j].Proto {
				return cells[i].Proto < cells[j].Proto
			}
			if cells[i].M != cells[j].M {
				return cells[i].M < cells[j].M
			}
			return cells[i].Window < cells[j].Window
		})
		for _, c := range cells {
			w := "-"
			if c.Window > 0 {
				w = fmt.Sprintf("%d", c.Window)
			}
			fmt.Fprintf(&b, "| %s | `%s` | %d | %s | %.1f | %d/%d | %.4f | %.4f | %.0f%% | %d |\n",
				c.Proto, c.Model, c.M, w, c.AlphaBits, c.Completed, c.Trials,
				c.Goodput, c.Ceiling, 100*c.Efficiency, c.Violations)
		}
		b.WriteString("\n")
	}
	if len(d.Skipped) > 0 {
		b.WriteString("Skipped (protocol unsafe on the model's channel kind):\n\n")
		for _, s := range d.Skipped {
			fmt.Fprintf(&b, "- %s\n", s)
		}
	}
	return b.String()
}
