package frontier

import (
	"math"
	"strings"
	"testing"

	"seqtx/internal/alpha"
	"seqtx/internal/chanmodel"
	"seqtx/internal/channel"
)

func TestSafeOnTable(t *testing.T) {
	cases := []struct {
		proto string
		kind  channel.Kind
		want  bool
	}{
		{"alpha", channel.KindDup, true},
		{"alpha", channel.KindDel, true},
		{"stenning", channel.KindDup, true},
		{"stenning", channel.KindDel, true},
		{"afwz", channel.KindDel, true},
		{"afwz", channel.KindDup, false}, // Theorem 1: replayed acks
		{"hybrid", channel.KindDel, true},
		{"hybrid", channel.KindDup, false},
		{"naive", channel.KindDel, false}, // not in the verified table
		// Sliding windows are FIFO-only: frame numbers mod a small space
		// collide under reordering (modseq territory).
		{"gobackn", channel.KindFIFO, true},
		{"gobackn", channel.KindDel, false},
		{"gobackn", channel.KindDup, false},
		{"selrepeat", channel.KindFIFO, true},
		{"selrepeat", channel.KindDel, false},
	}
	for _, c := range cases {
		if got := SafeOn(c.proto, c.kind); got != c.want {
			t.Errorf("SafeOn(%s, %s) = %v, want %v", c.proto, c.kind, got, c.want)
		}
	}
}

func TestDefaultModelsGrid(t *testing.T) {
	models := DefaultModels()
	byFamily := map[string]int{}
	for _, m := range models {
		byFamily[m.Family()]++
	}
	for _, fam := range chanmodel.Families() {
		if byFamily[fam] < 4 {
			t.Errorf("default grid has %d %s points, want >= 4", byFamily[fam], fam)
		}
	}
}

func TestAlphaBits(t *testing.T) {
	// Exact small values: alpha(2) = 5, alpha(3) = 16.
	if got, want := AlphaBits(2), math.Log2(5); math.Abs(got-want) > 1e-12 {
		t.Errorf("AlphaBits(2) = %v, want %v", got, want)
	}
	if got := AlphaBits(3); got != 4 {
		t.Errorf("AlphaBits(3) = %v, want 4", got)
	}
	// Big-int path agrees with the uint64 path where both exist.
	for m := 2; m <= 20; m++ {
		want := math.Log2(float64(alpha.MustAlpha(m)))
		if got := AlphaBits(m); math.Abs(got-want) > 1e-9 {
			t.Errorf("AlphaBits(%d) = %v, want %v", m, got, want)
		}
	}
	// Beyond the uint64 range it keeps growing monotonically.
	if a25, a30 := AlphaBits(25), AlphaBits(30); !(a30 > a25 && a25 > AlphaBits(20)) {
		t.Errorf("AlphaBits not monotone past uint64 range: %v %v", a25, a30)
	}
}

func TestCeiling(t *testing.T) {
	if got := Ceiling(chanmodel.MustParse("iid-loss(p=0.2)")); math.Abs(got-0.25*0.8) > 1e-12 {
		t.Errorf("loss ceiling = %v", got)
	}
	if got := Ceiling(chanmodel.MustParse("iid-dup(p=1)")); math.Abs(got-0.125) > 1e-12 {
		t.Errorf("dup ceiling = %v", got)
	}
}

// TestRunSmallSweep is the end-to-end frontier pin: a small grid over
// two families and three protocols completes with zero violations,
// skips the unsafe afwz × dup pairing, and produces goodput below the
// ceiling for every cell.
func TestRunSmallSweep(t *testing.T) {
	models, err := chanmodel.ParseList("iid-loss(p=0.1),iid-dup(p=0.25)")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := Run(Config{
		Protos: []string{"alpha", "afwz", "stenning"},
		Models: models,
		Ms:     []int{4},
		Items:  4,
		Trials: 6,
		Seed:   7,
	})
	if err != nil {
		t.Fatal(err)
	}
	// alpha and stenning run both models, afwz only the loss model.
	if doc.TotalCells != 5 {
		t.Fatalf("got %d cells, want 5: %+v", doc.TotalCells, doc.Cells)
	}
	if len(doc.Skipped) != 1 || !strings.Contains(doc.Skipped[0], "afwz") {
		t.Errorf("skipped = %v, want the afwz × iid-dup pairing", doc.Skipped)
	}
	if doc.TotalViolations != 0 {
		t.Fatalf("safety violations in a verified-safe sweep: %+v", doc.Cells)
	}
	for _, c := range doc.Cells {
		if c.Trials != 6 {
			t.Errorf("cell %s × %s ran %d trials, want 6", c.Proto, c.Model, c.Trials)
		}
		// The hard structural bound: one data delivery per 4-step cycle,
		// with at most a truncated final cycle per trial.
		if hard := (c.Steps + 2*c.Trials) / 4; c.Delivered > hard || c.Goodput < 0 {
			t.Errorf("cell %s × %s delivered %d in %d steps, exceeds the structural bound %d",
				c.Proto, c.Model, c.Delivered, c.Steps, hard)
		}
		if c.Ceiling <= 0 || c.Ceiling > 0.25 {
			t.Errorf("cell %s × %s ceiling %v outside (0, 0.25]", c.Proto, c.Model, c.Ceiling)
		}
		// Retransmitting protocols complete every trial on this grid.
		if c.Proto != "afwz" && c.Completed != c.Trials {
			t.Errorf("cell %s × %s completed %d/%d", c.Proto, c.Model, c.Completed, c.Trials)
		}
	}
}

// TestRunDeterministic pins that two identical sweeps produce
// identical documents (cells run off disjoint but fixed seed lanes).
func TestRunDeterministic(t *testing.T) {
	cfg := Config{
		Protos: []string{"alpha"},
		Models: []chanmodel.Model{chanmodel.MustParse("ge(pgb=0.05,pbg=0.5,lg=0.01,lb=0.5)")},
		Ms:     []int{4, 6},
		Items:  3,
		Trials: 5,
		Seed:   11,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 1
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cells) != len(b.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(a.Cells), len(b.Cells))
	}
	for i := range a.Cells {
		if a.Cells[i] != b.Cells[i] {
			t.Errorf("cell %d differs across parallelism:\n%+v\n%+v", i, a.Cells[i], b.Cells[i])
		}
	}
}

// TestRunWindowedSweep pins the window-depth axis: the FIFO-only
// windowed protocols sweep every configured depth on the
// order-preserving loss families, skip the dup family outright, and
// stay prefix-safe. Items may exceed m because the windowed protocols
// take arbitrary in-domain tapes (the ramp mod m), unlike alpha's
// repetition-free inputs.
func TestRunWindowedSweep(t *testing.T) {
	models, err := chanmodel.ParseList("iid-loss(p=0.2),iid-dup(p=0.25)")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := Run(Config{
		Protos:  []string{"gobackn", "selrepeat"},
		Models:  models,
		Ms:      []int{4},
		Windows: []int{1, 4},
		Items:   12, // > m: exercises the ramp-mod-m tape
		Trials:  4,
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 protos × 1 admitted model × 1 m × 2 windows.
	if doc.TotalCells != 4 {
		t.Fatalf("got %d cells, want 4: %+v", doc.TotalCells, doc.Cells)
	}
	if len(doc.Skipped) != 2 {
		t.Fatalf("skipped = %v, want both proto × iid-dup pairings", doc.Skipped)
	}
	for _, s := range doc.Skipped {
		if !strings.Contains(s, "iid-dup") || !strings.Contains(s, "FIFO-only") {
			t.Errorf("skip reason %q does not name the FIFO-only gating", s)
		}
	}
	if doc.TotalViolations != 0 {
		t.Fatalf("safety violations in a FIFO-realized sweep: %+v", doc.Cells)
	}
	windows := map[int]int{}
	for _, c := range doc.Cells {
		windows[c.Window]++
		if c.Kind != channel.KindFIFO.String() {
			t.Errorf("cell %s × %s realized on %s, want fifo", c.Proto, c.Model, c.Kind)
		}
		if c.Completed != c.Trials {
			t.Errorf("cell %s W=%d completed %d/%d", c.Proto, c.Window, c.Completed, c.Trials)
		}
	}
	if windows[1] != 2 || windows[4] != 2 {
		t.Errorf("window axis not swept: %v", windows)
	}
	md := doc.Markdown()
	if !strings.Contains(md, "| W |") {
		t.Errorf("markdown missing the window column:\n%s", md)
	}
}

// TestRunRepFreeItemsCap pins that the repetition-free cap still
// applies when alpha is in the sweep: 12 items cannot fit domain 4.
func TestRunRepFreeItemsCap(t *testing.T) {
	_, err := Run(Config{
		Protos: []string{"alpha"},
		Models: []chanmodel.Model{chanmodel.MustParse("iid-loss(p=0.1)")},
		Ms:     []int{4},
		Items:  12,
		Trials: 1,
	})
	if err == nil || !strings.Contains(err.Error(), "repetition-free") {
		t.Fatalf("over-long repetition-free input accepted: %v", err)
	}
}

func TestRunRejectsUnsafeProto(t *testing.T) {
	_, err := Run(Config{Protos: []string{"naive"}, Trials: 1})
	if err == nil || !strings.Contains(err.Error(), "verified-safe") {
		t.Fatalf("unsafe protocol accepted: %v", err)
	}
}

func TestMarkdownRender(t *testing.T) {
	doc, err := Run(Config{
		Protos: []string{"alpha"},
		Models: []chanmodel.Model{chanmodel.MustParse("iid-loss(p=0.2)")},
		Ms:     []int{4},
		Trials: 3,
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	md := doc.Markdown()
	for _, want := range []string{"### iid-loss", "| alpha | `iid-loss(p=0.2)` | 4 |", "goodput"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}
