package mc

import (
	"fmt"

	"seqtx/internal/channel"
	"seqtx/internal/msg"
	"seqtx/internal/protocol"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
	"seqtx/internal/trace"
)

// BoundedReport summarizes a boundedness check (Definition 2, or the weak
// §5 variant when OldMessagesAllowed).
type BoundedReport struct {
	// Samples is the number of points checked.
	Samples int
	// MaxRecovery is the worst-case number of extension steps needed for
	// R to write the next item, over all recovered sample points.
	MaxRecovery int
	// Unrecovered counts sample points with no recovery within Budget —
	// evidence of unboundedness when the budget is generous.
	Unrecovered int
	// PerPosition[i] is the worst recovery when the next item was i+1
	// (0-based i = items already written); -1 marks unrecovered.
	PerPosition map[int]int
	// OldMessagesAllowed records which definition was checked: false =
	// Definition 2 (only messages sent in the extension may be delivered),
	// true = the weak variant.
	OldMessagesAllowed bool
}

// Bounded reports whether every sampled point recovered within budget.
func (r *BoundedReport) Bounded() bool { return r.Unrecovered == 0 }

// BoundedConfig controls the check.
type BoundedConfig struct {
	// Budget is the maximum extension length searched (the constant
	// candidate for f; required > 0).
	Budget int
	// MaxStates caps each per-point BFS (0 = 1<<18).
	MaxStates int
	// OldMessagesAllowed switches to the weak variant: the extension may
	// deliver messages that were already in flight at the sample point.
	// Definition 2 (false) demands recovery from fresh messages alone.
	OldMessagesAllowed bool
	// SampleEvery takes every k-th state of the driving run as a sample
	// point (0 = every state). For the weak variant only the states
	// immediately after a write (the paper's t_i points) are sampled,
	// regardless of this setting.
	SampleEvery int
	// Sampler drives the run whose states are sampled (nil = the
	// canonical fault-free round-robin schedule). Definition 2 quantifies
	// over every point of every run, so checking from the points of a
	// FAULTY run — e.g. sim.NewBudgetDropper — is the stronger test: it
	// is exactly where unbounded protocols fail to recover.
	Sampler sim.Adversary
	// EngineConfig selects the worker count for each per-point recovery
	// search (results are identical for every setting).
	EngineConfig
}

func (c *BoundedConfig) normalize() error {
	if c.Budget <= 0 {
		return fmt.Errorf("mc: Budget must be positive, got %d", c.Budget)
	}
	if c.MaxStates == 0 {
		c.MaxStates = 1 << 18
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 1
	}
	return nil
}

// CheckBounded samples points along a canonical fair run of (spec, input,
// kind) and, from each point with unwritten items remaining, searches for
// an extension in which R writes the next item within Budget steps. Under
// Definition 2 (OldMessagesAllowed == false) the extension may only
// deliver copies sent after the sample point, realizing the paper's
// clause dlvrble(r_t, t') >= dlvrble(r_t, t): long-lost messages stay
// lost. Drops are never used in extensions (they only remove options).
//
// Writes are used as the observable proxy for the paper's knowledge times
// t_i: for every protocol in this repository R writes an item in the same
// step it first knows it, except the batched commits of afwz/hybrid,
// whose writes happen at the commit message — which is also exactly when
// knowledge arrives (the epistemic package verifies this on explored run
// sets).
func CheckBounded(spec protocol.Spec, input seq.Seq, kind channel.Kind, cfg BoundedConfig) (*BoundedReport, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	points, err := samplePoints(spec, input, kind, cfg)
	if err != nil {
		return nil, err
	}
	rep := &BoundedReport{PerPosition: make(map[int]int), OldMessagesAllowed: cfg.OldMessagesAllowed}
	for _, p := range points {
		rep.Samples++
		pos := len(p.Output)
		steps := recoverySearch(p, cfg)
		if steps < 0 {
			rep.Unrecovered++
			rep.PerPosition[pos] = -1
			continue
		}
		if prev, ok := rep.PerPosition[pos]; !ok || (prev >= 0 && steps > prev) {
			rep.PerPosition[pos] = steps
		}
		if steps > rep.MaxRecovery {
			rep.MaxRecovery = steps
		}
	}
	return rep, nil
}

// samplePoints drives a canonical fair run and clones the world at sample
// points that still have items left to write.
func samplePoints(spec protocol.Spec, input seq.Seq, kind channel.Kind, cfg BoundedConfig) ([]*sim.World, error) {
	link, err := channel.NewLinkOfKind(kind)
	if err != nil {
		return nil, err
	}
	w, err := sim.New(spec, input, link)
	if err != nil {
		return nil, err
	}
	var adv sim.Adversary = sim.NewRoundRobin()
	if cfg.Sampler != nil {
		adv = cfg.Sampler
	}
	var points []*sim.World
	maxSteps := 200 * (len(input) + 2)
	prevWritten := -1
	for step := 0; step < maxSteps && !w.OutputComplete(); step++ {
		if cfg.OldMessagesAllowed {
			// Weak variant: sample the paper's t_i points — immediately
			// after a write (including the initial point, "t_0").
			if len(w.Output) != prevWritten {
				prevWritten = len(w.Output)
				points = append(points, w.Clone())
			}
		} else if step%cfg.SampleEvery == 0 {
			points = append(points, w.Clone())
		}
		if err := w.Apply(adv.Choose(w, w.Enabled())); err != nil {
			return nil, err
		}
	}
	return points, nil
}

// freshState tracks, along an extension, how many copies of each message
// were sent after the sample point and not yet delivered in the
// extension. Only these may be delivered under Definition 2.
type freshState map[channel.Dir]msg.Counts

func (f freshState) clone() freshState {
	return freshState{
		channel.SToR: f[channel.SToR].Clone(),
		channel.RToS: f[channel.RToS].Clone(),
	}
}

func (f freshState) key() string {
	return f[channel.SToR].Key() + "/" + f[channel.RToS].Key()
}

// encodeKey appends the binary counterpart of key: both directions'
// self-delimiting multiset encodings.
func (f freshState) encodeKey(buf []byte) []byte {
	buf = f[channel.SToR].EncodeKey(buf)
	return f[channel.RToS].EncodeKey(buf)
}

type recNode struct {
	w     *sim.World
	fresh freshState
	depth int
}

// recoveryCand is one expanded extension step awaiting the level merge.
// Recovery is decided per level: every node of a level sits at the same
// depth, so "some candidate of this level recovered" determines the
// return value independently of candidate order.
type recoveryCand struct {
	node      *recNode
	key       []byte
	hash      uint64
	recovered bool
	skip      bool // apply error or safety-violating "recovery"
}

// recoverySearch BFS-es extensions of the point until R writes another
// item, returning the number of steps or -1 if Budget/MaxStates exhaust.
// Like Explore, it expands each level across cfg.Workers goroutines with
// a deterministic merge, so the result is worker-count independent.
func recoverySearch(point *sim.World, cfg BoundedConfig) int {
	start := &recNode{
		w:     point,
		fresh: freshState{channel.SToR: msg.Counts{}, channel.RToS: msg.Counts{}},
	}
	target := len(point.Output)
	workers := cfg.workerCount()
	scratch := newScratch(workers)
	em := newEngineMetrics(cfg.Obs, "recovery", workers, false)
	em.noteMerge(true) // the sample point itself
	idx := newStateIndex()
	rootKey := start.fresh.encodeKey(start.w.EncodeKey(scratch[0].keyBuf))
	idx.insert(hashBytes(rootKey), stableCopy(rootKey))
	states := 1

	frontier := []*recNode{start}
	var next []*recNode

	expand := func(ws *workerScratch, cur *recNode, emit func(recoveryCand)) {
		ws.acts = appendRecoveryActions(ws.acts[:0], cur, cfg)
		for _, act := range ws.acts {
			nw := cur.w.Clone()
			nw.StartTrace() // observe this step's sends
			if err := nw.Apply(act); err != nil {
				emit(recoveryCand{skip: true}) // impossible action; skip
				continue
			}
			nf := cur.fresh.clone()
			entry := nw.Trace.Entries[len(nw.Trace.Entries)-1]
			sendDir := channel.SToR
			if act.Kind == trace.ActTickR || (act.Kind == trace.ActDeliver && act.Dir == channel.SToR) || (act.Kind == trace.ActDeliverDup && act.Dir == channel.SToR) {
				sendDir = channel.RToS
			}
			for _, m := range entry.Sends {
				nf[sendDir].Add(m, 1)
			}
			if act.Kind == trace.ActDeliver && !cfg.OldMessagesAllowed {
				nf[act.Dir].Add(act.Msg, -1)
			}
			if len(nw.Output) > target {
				// A "recovery" that breaks safety does not count.
				emit(recoveryCand{recovered: nw.SafetyViolation == nil, skip: true})
				continue
			}
			nw.Trace = nil
			ws.keyBuf = nf.encodeKey(nw.EncodeKey(ws.keyBuf[:0]))
			emit(recoveryCand{
				node: &recNode{w: nw, fresh: nf, depth: cur.depth + 1},
				key:  ws.keyBuf,
				hash: hashBytes(ws.keyBuf),
			})
		}
	}

	recovered := false
	merge := func(c recoveryCand) {
		if c.recovered {
			recovered = true
		}
		if c.skip || recovered {
			return
		}
		if idx.contains(c.hash, c.key) {
			em.noteMerge(false)
			return
		}
		if states >= cfg.MaxStates {
			return
		}
		em.noteMerge(true)
		idx.insert(c.hash, stableCopy(c.key))
		states++
		next = append(next, c.node)
	}

	for depth := 0; len(frontier) > 0 && depth < cfg.Budget; depth++ {
		next = next[:0]
		if workers == 1 {
			for _, cur := range frontier {
				em.noteExpand(0)
				expand(&scratch[0], cur, merge)
				if recovered {
					em.flush()
					return depth + 1
				}
			}
		} else {
			bounds := chunkBounds(len(frontier), workers*chunksPerWorker)
			results := make([][]recoveryCand, len(bounds))
			runChunks(workers, bounds, func(worker, chunk int) {
				ws := &scratch[worker]
				out := results[chunk]
				for _, cur := range frontier[bounds[chunk][0]:bounds[chunk][1]] {
					em.noteExpand(worker)
					expand(ws, cur, func(c recoveryCand) {
						if c.key != nil {
							c.key = ws.arena.hold(c.key)
						}
						out = append(out, c)
					})
				}
				results[chunk] = out
			})
			for _, chunk := range results {
				for _, c := range chunk {
					merge(c)
				}
			}
			for i := range scratch {
				scratch[i].arena.reset()
			}
			if recovered {
				em.flush()
				return depth + 1
			}
		}
		em.noteLevel(depth, len(frontier))
		frontier, next = next, frontier
	}
	em.flush()
	return -1
}

// appendRecoveryActions enumerates extension moves: ticks always;
// deliveries of any message under the weak variant, or only messages with
// fresh copies under Definition 2. Duplicating FIFO deliveries of fresh
// heads are included; drops never help recovery and are omitted. It
// appends to acts (a reused per-worker buffer) and returns the extension.
func appendRecoveryActions(acts []trace.Action, cur *recNode, cfg BoundedConfig) []trace.Action {
	acts = append(acts, trace.TickS(), trace.TickR())
	for _, dir := range []channel.Dir{channel.SToR, channel.RToS} {
		half := cur.w.Link.Half(dir)
		for _, m := range half.Deliverable().Support() {
			if !cfg.OldMessagesAllowed && cur.fresh[dir].Get(m) <= 0 {
				continue
			}
			acts = append(acts, trace.Deliver(dir, m))
			if f, ok := half.(*channel.FIFO); ok && f.AllowsDup() {
				acts = append(acts, trace.DeliverDup(dir, m))
			}
		}
	}
	return acts
}
