package mc

import (
	"bytes"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"seqtx/internal/obs"
	"seqtx/internal/trace"
)

// EngineConfig selects how the exploration engines (Explore, Refute, and
// the recovery search behind CheckBounded) expand each BFS level.
//
// The engines are level-synchronized: every node of the current depth is
// expanded before any node of the next, the frontier is split into
// contiguous chunks handed to a worker pool, and the per-chunk results
// are merged by a single goroutine in frontier×action order — the exact
// order the sequential engine processes children in. Results (state
// counts, depth, truncation, the first violation) are therefore identical
// for every worker count; parallelism changes wall-clock time only.
type EngineConfig struct {
	// Workers is the number of goroutines expanding each BFS level.
	// 0 means GOMAXPROCS; 1 selects the in-line sequential path (no
	// goroutines, no chunk staging).
	Workers int
	// Obs, when non-nil, receives engine metrics (states visited, dedup
	// hit rate, frontier sizes, per-worker expansion counts, states/sec)
	// and per-level BFS events. Metrics are accumulated in engine-local
	// scalars and flushed once per run, so they cannot affect exploration
	// order or results; nil disables them for the cost of a few branches.
	Obs *obs.Registry
}

func (e EngineConfig) workerCount() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// hashBytes is FNV-1a 64 over the canonical binary state key.
func hashBytes(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// indexShards is the shard count of stateIndex (a power of two).
const indexShards = 64

// stateIndex deduplicates explored states by their canonical binary keys.
// States are bucketed by key hash and verified by byte equality, so hash
// collisions cannot merge distinct states.
//
// Concurrency contract (the level-synchronized engines guarantee it):
// contains may be called from many goroutines at once, but only while no
// insert is running; insert is called by the single merge goroutine
// between expansion phases. A WaitGroup barrier separates the phases, so
// no locks are needed.
type stateIndex struct {
	shards [indexShards]map[uint64][][]byte
}

func newStateIndex() *stateIndex {
	ix := &stateIndex{}
	for i := range ix.shards {
		ix.shards[i] = make(map[uint64][][]byte)
	}
	return ix
}

func (ix *stateIndex) contains(h uint64, key []byte) bool {
	for _, rec := range ix.shards[h%indexShards][h] {
		if bytes.Equal(rec, key) {
			return true
		}
	}
	return false
}

// insert records key under h. The caller must have checked contains and
// must pass a stable slice (never mutated afterwards).
func (ix *stateIndex) insert(h uint64, key []byte) {
	shard := ix.shards[h%indexShards]
	shard[h] = append(shard[h], key)
}

// stableCopy returns an exact-size private copy of key for the index.
func stableCopy(key []byte) []byte {
	return append(make([]byte, 0, len(key)), key...)
}

// arenaBlock is the keyArena block size.
const arenaBlock = 64 << 10

// keyArena hands out stable byte slices for candidate keys that must
// survive until the level merge, without one allocation per candidate.
// reset recycles the current block; the engines call it once per level,
// after the merge has copied every admitted key out of the arena.
type keyArena struct {
	block []byte
}

func (a *keyArena) reset() {
	a.block = a.block[:0]
}

func (a *keyArena) hold(b []byte) []byte {
	if len(b) > arenaBlock {
		return stableCopy(b)
	}
	if len(a.block)+len(b) > cap(a.block) {
		// The outgrown block stays alive while this level's candidates
		// reference it; it is garbage after the merge.
		a.block = make([]byte, 0, arenaBlock)
	}
	start := len(a.block)
	a.block = append(a.block, b...)
	return a.block[start : start+len(b) : start+len(b)]
}

// workerScratch is the per-worker reusable state: a key encoding buffer,
// an enabled-action buffer, and the candidate-key arena. Reusing them
// across transitions is where the engine sheds most of its allocations.
type workerScratch struct {
	keyBuf []byte
	acts   []trace.Action
	pacts  []ProductAction
	arena  keyArena
}

func newScratch(workers int) []workerScratch {
	return make([]workerScratch, workers)
}

// chunkBounds splits n items into at most k contiguous [lo, hi) ranges of
// near-equal size, in order.
func chunkBounds(n, k int) [][2]int {
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	bounds := make([][2]int, 0, k)
	for i := 0; i < k; i++ {
		lo, hi := i*n/k, (i+1)*n/k
		if lo < hi {
			bounds = append(bounds, [2]int{lo, hi})
		}
	}
	return bounds
}

// chunksPerWorker oversplits levels for load balancing: chunks are claimed
// dynamically, so a worker stuck on a heavy chunk sheds the rest.
const chunksPerWorker = 4

// engineMetrics accumulates one exploration run's observability in plain
// engine-local scalars and flushes them into the registry when the run
// ends. The merge goroutine owns the dedup/state counters; expansion
// counts are per-worker slots owned exclusively by their worker (the same
// ownership discipline as workerScratch), read only after the phase
// barrier. A nil *engineMetrics (observability off) makes every method a
// single-branch no-op.
type engineMetrics struct {
	reg         *obs.Registry
	scope       string // "explore", "refute", "recovery"
	start       time.Time
	frontier    *obs.Histogram
	levelEvents bool
	states      int64
	dedupHits   int64
	dedupMiss   int64
	levels      int64
	expansions  []int64 // nodes expanded, per worker
}

// newEngineMetrics returns nil when reg is nil — the disabled fast path.
// levelEvents enables the per-level event stream; the recovery engine
// turns it off (one bounded check runs thousands of tiny searches, which
// would flood the bounded event buffer with no narrative value).
func newEngineMetrics(reg *obs.Registry, scope string, workers int, levelEvents bool) *engineMetrics {
	if reg == nil {
		return nil
	}
	return &engineMetrics{
		reg:         reg,
		scope:       scope,
		start:       time.Now(),
		frontier:    reg.Histogram("mc_"+scope+"_frontier_size", obs.StepBuckets),
		levelEvents: levelEvents,
		expansions:  make([]int64, workers),
	}
}

// noteExpand records that worker expanded one frontier node.
func (m *engineMetrics) noteExpand(worker int) {
	if m == nil {
		return
	}
	m.expansions[worker]++
}

// noteMerge records one candidate's dedup verdict and, for fresh states,
// the growing state count.
func (m *engineMetrics) noteMerge(fresh bool) {
	if m == nil {
		return
	}
	if fresh {
		m.dedupMiss++
		m.states++
	} else {
		m.dedupHits++
	}
}

// noteLevel records a completed BFS level and emits its event.
func (m *engineMetrics) noteLevel(depth, frontierSize int) {
	if m == nil {
		return
	}
	m.levels++
	m.frontier.Observe(float64(frontierSize))
	if m.levelEvents {
		m.reg.Emit("mc.bfs.level",
			"scope", m.scope,
			"depth", strconv.Itoa(depth),
			"frontier", strconv.Itoa(frontierSize),
			"states", strconv.FormatInt(m.states, 10))
	}
}

// flush publishes the accumulated run into the registry.
func (m *engineMetrics) flush() {
	if m == nil {
		return
	}
	r, scope := m.reg, m.scope
	r.Counter("mc_" + scope + "_runs_total").Inc()
	r.Counter("mc_" + scope + "_states_total").Add(m.states)
	r.Counter("mc_" + scope + "_levels_total").Add(m.levels)
	r.Counter("mc_" + scope + "_dedup_hits_total").Add(m.dedupHits)
	r.Counter("mc_" + scope + "_dedup_misses_total").Add(m.dedupMiss)
	if elapsed := time.Since(m.start).Seconds(); elapsed > 0 {
		r.Gauge("mc_" + scope + "_states_per_sec").Set(float64(m.states) / elapsed)
	}
	for w, n := range m.expansions {
		r.Counter(fmt.Sprintf(`mc_worker_expansions_total{scope=%q,worker="%d"}`, scope, w)).Add(n)
	}
}

// runChunks expands the chunks of one BFS level across the worker pool.
// Worker w owns scratch index w exclusively; chunks are claimed through an
// atomic cursor, and run must only write state owned by its chunk. The
// call returns when every chunk is done (the phase barrier that makes the
// index's lock-free contains sound).
func runChunks(workers int, bounds [][2]int, run func(worker, chunk int)) {
	if workers > len(bounds) {
		workers = len(bounds)
	}
	if workers <= 1 {
		for c := range bounds {
			run(0, c)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				c := int(cursor.Add(1)) - 1
				if c >= len(bounds) {
					return
				}
				run(w, c)
			}
		}(w)
	}
	wg.Wait()
}
