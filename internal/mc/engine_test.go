package mc

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"seqtx/internal/channel"
	"seqtx/internal/registry"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
)

// engineKinds is every channel model, fixed order.
var engineKinds = []channel.Kind{
	channel.KindDup, channel.KindDel, channel.KindReorder,
	channel.KindFIFO, channel.KindDupDel,
}

// engineWorkerCounts are the pool sizes the equivalence tests compare
// against the sequential engine.
func engineWorkerCounts() []int {
	counts := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

func witnessString(w *Witness) string {
	if w == nil {
		return "<none>"
	}
	return w.String()
}

func productWitnessString(w *ProductWitness) string {
	if w == nil {
		return "<none>"
	}
	return w.String()
}

// TestExploreWorkerEquivalence checks the tentpole determinism contract:
// for every protocol in the zoo, on every channel kind, the parallel
// engine reports byte-identical results to the sequential one — same
// state count, depth, truncation, and the same first violation.
func TestExploreWorkerEquivalence(t *testing.T) {
	t.Parallel()
	input := seq.FromInts(0, 1)
	params := registry.Params{M: 2, Timeout: 3, Window: 2}
	for _, proto := range registry.ProtocolNames() {
		spec, err := registry.Protocol(proto, params)
		if err != nil {
			t.Fatalf("building %s: %v", proto, err)
		}
		for _, kind := range engineKinds {
			t.Run(fmt.Sprintf("%s/%s", proto, kind), func(t *testing.T) {
				t.Parallel()
				var base *ExploreResult
				for _, workers := range engineWorkerCounts() {
					cfg := ExploreConfig{
						MaxDepth: 6, MaxStates: 4000,
						EngineConfig: EngineConfig{Workers: workers},
					}
					res, err := Explore(spec, input, kind, cfg)
					if err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
					if base == nil {
						base = res
						continue
					}
					if res.States != base.States || res.Depth != base.Depth ||
						res.Truncated != base.Truncated || res.CompletedState != base.CompletedState {
						t.Fatalf("workers=%d diverged: got {States:%d Depth:%d Truncated:%v Completed:%v}, sequential {States:%d Depth:%d Truncated:%v Completed:%v}",
							workers, res.States, res.Depth, res.Truncated, res.CompletedState,
							base.States, base.Depth, base.Truncated, base.CompletedState)
					}
					if got, want := witnessString(res.Violation), witnessString(base.Violation); got != want {
						t.Fatalf("workers=%d violation diverged:\ngot  %s\nwant %s", workers, got, want)
					}
				}
			})
		}
	}
}

// TestRefuteWorkerEquivalence does the same for the product engine, on a
// case with a violation (naive under duplication) and one without (the
// tight protocol).
func TestRefuteWorkerEquivalence(t *testing.T) {
	t.Parallel()
	cases := []struct {
		proto  string
		x1, x2 seq.Seq
	}{
		{"naive", seq.FromInts(0, 1), seq.FromInts(0, 1, 0)},
		{"alpha", seq.FromInts(0, 1), seq.FromInts(0)},
	}
	for _, tc := range cases {
		spec, err := registry.Protocol(tc.proto, registry.Params{M: 2, Timeout: 3, Window: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range engineKinds {
			t.Run(fmt.Sprintf("%s/%s", tc.proto, kind), func(t *testing.T) {
				t.Parallel()
				var base *ProductResult
				for _, workers := range engineWorkerCounts() {
					cfg := ExploreConfig{
						MaxDepth: 6, MaxStates: 4000,
						EngineConfig: EngineConfig{Workers: workers},
					}
					res, err := Refute(spec, tc.x1, tc.x2, kind, cfg)
					if err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
					if base == nil {
						base = res
						continue
					}
					if res.States != base.States || res.Depth != base.Depth || res.Truncated != base.Truncated {
						t.Fatalf("workers=%d diverged: got {States:%d Depth:%d Truncated:%v}, sequential {States:%d Depth:%d Truncated:%v}",
							workers, res.States, res.Depth, res.Truncated,
							base.States, base.Depth, base.Truncated)
					}
					if got, want := productWitnessString(res.Violation), productWitnessString(base.Violation); got != want {
						t.Fatalf("workers=%d violation diverged:\ngot  %s\nwant %s", workers, got, want)
					}
				}
			})
		}
	}
}

// TestBoundedWorkerEquivalence compares full boundedness reports across
// worker counts, from both fault-free and faulty sample runs.
func TestBoundedWorkerEquivalence(t *testing.T) {
	t.Parallel()
	spec, err := registry.Protocol("alpha", registry.Params{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, faulty := range []bool{false, true} {
		faulty := faulty
		t.Run(fmt.Sprintf("faulty=%v", faulty), func(t *testing.T) {
			t.Parallel()
			var base *BoundedReport
			for _, workers := range engineWorkerCounts() {
				cfg := BoundedConfig{
					Budget: 8, MaxStates: 4000,
					EngineConfig: EngineConfig{Workers: workers},
				}
				if faulty {
					cfg.Sampler = sim.NewBudgetDropper(1, 1)
				}
				rep, err := CheckBounded(spec, seq.FromInts(0, 1), channel.KindDel, cfg)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if base == nil {
					base = rep
					continue
				}
				if rep.Samples != base.Samples || rep.MaxRecovery != base.MaxRecovery || rep.Unrecovered != base.Unrecovered {
					t.Fatalf("workers=%d diverged: got %+v, sequential %+v", workers, rep, base)
				}
				for pos, want := range base.PerPosition {
					if got, ok := rep.PerPosition[pos]; !ok || got != want {
						t.Fatalf("workers=%d PerPosition[%d] = %d, want %d", workers, pos, got, want)
					}
				}
			}
		})
	}
}

// FuzzEncodeKeyMatchesKey drives random walks through random systems and
// checks the engine's core keying contract: two reached states have equal
// EncodeKey bytes exactly when their Key strings are equal, so the binary
// fast path partitions the state space exactly like the debug view.
func FuzzEncodeKeyMatchesKey(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, uint8(0), uint8(0))
	f.Add([]byte{3, 1, 4, 1, 5, 9, 2, 6}, uint8(4), uint8(3))
	f.Add([]byte{0, 0, 0, 0, 1, 1, 1, 1, 2, 2}, uint8(7), uint8(1))
	protos := registry.ProtocolNames()
	f.Fuzz(func(t *testing.T, steps []byte, protoIdx, kindIdx uint8) {
		if len(steps) > 48 {
			steps = steps[:48]
		}
		spec, err := registry.Protocol(protos[int(protoIdx)%len(protos)], registry.Params{M: 2, Timeout: 2, Window: 2})
		if err != nil {
			t.Fatal(err)
		}
		kind := engineKinds[int(kindIdx)%len(engineKinds)]
		link, err := channel.NewLinkOfKind(kind)
		if err != nil {
			t.Fatal(err)
		}
		w, err := sim.New(spec, seq.FromInts(0, 1), link)
		if err != nil {
			t.Fatal(err)
		}
		type rec struct {
			skey string
			bkey []byte
		}
		states := []rec{{w.Key(), w.EncodeKey(nil)}}
		for _, b := range steps {
			acts := w.Enabled()
			if err := w.Apply(acts[int(b)%len(acts)]); err != nil {
				t.Fatalf("applying enabled action: %v", err)
			}
			states = append(states, rec{w.Key(), w.EncodeKey(nil)})
		}
		for i := range states {
			for j := i + 1; j < len(states); j++ {
				sEq := states[i].skey == states[j].skey
				bEq := bytes.Equal(states[i].bkey, states[j].bkey)
				if sEq != bEq {
					t.Errorf("key partition mismatch between steps %d and %d:\nKey equal %v (%q vs %q)\nEncodeKey equal %v (%x vs %x)",
						i, j, sEq, states[i].skey, states[j].skey, bEq, states[i].bkey, states[j].bkey)
				}
			}
		}
	})
}
