// Package mc model-checks STP systems. It makes the paper's proof
// technique executable:
//
//   - Explore: exhaustive bounded BFS over the runs of one (protocol,
//     input, channel) system — every resolution of the environment's
//     nondeterminism (Property 1b) up to a depth — checking safety in
//     every reachable state.
//   - Refute: the product construction behind Lemmas 1–4. Two runs with
//     different inputs are explored in lockstep so that the receiver's
//     complete-history views stay equal ("R cannot tell apart", §2.2);
//     because protocols are deterministic, equal views mean equal
//     receiver states and equal outputs, so reaching a point where the
//     shared output is incompatible with one input is a safety violation
//     for that run. This is exactly how the paper derives Theorems 1 and
//     2 from dup-/del-decisive tuples.
//   - CheckBounded / CheckWeaklyBounded: Definition 2 and the §5 weak
//     variant, as reachability searches over extensions.
//   - SearchProtocols: exhaustive enumeration of small finite-state
//     protocols, verifying the universal impossibility statement on a
//     finite slice.
package mc

import (
	"fmt"
	"strings"

	"seqtx/internal/channel"
	"seqtx/internal/protocol"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
	"seqtx/internal/trace"
)

// ExploreResult reports an exhaustive bounded exploration.
type ExploreResult struct {
	// States is the number of distinct states visited.
	States int
	// Depth is the deepest level fully expanded.
	Depth int
	// Truncated reports whether the state or depth cap stopped expansion
	// before the frontier emptied (if false, the exploration is complete:
	// the system has finitely many reachable states and all were checked).
	Truncated bool
	// Violation is the first safety violation found, with a witness.
	Violation *Witness
	// CompletedState reports whether some reachable state has Y = X.
	CompletedState bool
}

// Witness is a counterexample: the actions leading to a bad state.
type Witness struct {
	Input   seq.Seq
	Actions []trace.Action
	Output  seq.Seq
	Err     error
}

// String renders the witness run.
func (w *Witness) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "input %s, output %s: %v\n", w.Input, w.Output, w.Err)
	for i, a := range w.Actions {
		fmt.Fprintf(&b, "  %3d. %s\n", i+1, a)
	}
	return b.String()
}

// ExploreConfig bounds an exploration.
type ExploreConfig struct {
	// MaxDepth bounds the BFS depth (levels of actions). Required > 0.
	MaxDepth int
	// MaxStates caps the visited-state count (0 = 1<<20).
	MaxStates int
	// EngineConfig selects the worker count (see its doc; results are
	// identical for every setting).
	EngineConfig
}

func (c *ExploreConfig) normalize() error {
	if c.MaxDepth <= 0 {
		return fmt.Errorf("mc: MaxDepth must be positive, got %d", c.MaxDepth)
	}
	if c.MaxStates == 0 {
		c.MaxStates = 1 << 20
	}
	return nil
}

type node struct {
	w      *sim.World
	parent *node
	act    trace.Action
	depth  int
}

func (n *node) path() []trace.Action {
	var acts []trace.Action
	for cur := n; cur.parent != nil; cur = cur.parent {
		acts = append(acts, cur.act)
	}
	for i, j := 0, len(acts)-1; i < j; i, j = i+1, j-1 {
		acts[i], acts[j] = acts[j], acts[i]
	}
	return acts
}

// exploreCand is one expanded transition awaiting the in-order merge.
type exploreCand struct {
	child *node
	key   []byte // canonical binary key; stable until the merge
	hash  uint64
	err   error
}

// Explore runs exhaustive BFS from the initial state of (spec, input,
// kind), checking the safety property in every state. Levels are expanded
// across cfg.Workers goroutines and merged deterministically; the result
// is identical for every worker count (Workers == 1 runs in-line).
func Explore(spec protocol.Spec, input seq.Seq, kind channel.Kind, cfg ExploreConfig) (*ExploreResult, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	link, err := channel.NewLinkOfKind(kind)
	if err != nil {
		return nil, err
	}
	w, err := sim.New(spec, input, link)
	if err != nil {
		return nil, err
	}
	res := &ExploreResult{States: 1}
	workers := cfg.workerCount()
	scratch := newScratch(workers)
	em := newEngineMetrics(cfg.Obs, "explore", workers, true)
	em.noteMerge(true) // the root state
	idx := newStateIndex()
	rootKey := w.EncodeKey(scratch[0].keyBuf)
	idx.insert(hashBytes(rootKey), stableCopy(rootKey))

	frontier := []*node{{w: w}}
	depth := 0
	var next []*node

	// merge admits one candidate, replicating the sequential child
	// processing exactly: violation and completion checks come before
	// dedup, dedup before the state cap, and a capped-out NEW child sets
	// Truncated without being inserted.
	merge := func(c exploreCand) error {
		if c.err != nil {
			return c.err
		}
		cw := c.child.w
		if cw.SafetyViolation != nil && res.Violation == nil {
			res.Violation = &Witness{
				Input:   input.Clone(),
				Actions: c.child.path(),
				Output:  cw.Output.Clone(),
				Err:     cw.SafetyViolation,
			}
		}
		if cw.OutputComplete() {
			res.CompletedState = true
		}
		if idx.contains(c.hash, c.key) {
			em.noteMerge(false)
			return nil
		}
		if res.States >= cfg.MaxStates {
			res.Truncated = true
			return nil
		}
		em.noteMerge(true)
		idx.insert(c.hash, stableCopy(c.key))
		res.States++
		if c.child.depth > res.Depth {
			res.Depth = c.child.depth
		}
		next = append(next, c.child)
		return nil
	}

	// expand produces the candidates of one frontier node in action order.
	expand := func(ws *workerScratch, cur *node, emit func(exploreCand) error) error {
		ws.acts = cur.w.AppendEnabled(ws.acts[:0])
		for _, act := range ws.acts {
			nw := cur.w.Clone()
			if aerr := nw.Apply(act); aerr != nil {
				return emit(exploreCand{err: fmt.Errorf("mc: applying %s: %w", act, aerr)})
			}
			ws.keyBuf = nw.EncodeKey(ws.keyBuf[:0])
			if err := emit(exploreCand{
				child: &node{w: nw, parent: cur, act: act, depth: cur.depth + 1},
				key:   ws.keyBuf,
				hash:  hashBytes(ws.keyBuf),
			}); err != nil {
				return err
			}
		}
		return nil
	}

	for len(frontier) > 0 {
		if depth >= cfg.MaxDepth {
			res.Truncated = true
			break
		}
		next = next[:0]
		if workers == 1 {
			// Sequential path: candidates are merged as they are produced,
			// so keys never need a stable staging copy.
			for _, cur := range frontier {
				em.noteExpand(0)
				if err := expand(&scratch[0], cur, merge); err != nil {
					return nil, err
				}
			}
		} else {
			bounds := chunkBounds(len(frontier), workers*chunksPerWorker)
			results := make([][]exploreCand, len(bounds))
			runChunks(workers, bounds, func(worker, chunk int) {
				ws := &scratch[worker]
				out := results[chunk]
				for _, cur := range frontier[bounds[chunk][0]:bounds[chunk][1]] {
					em.noteExpand(worker)
					stop := expand(ws, cur, func(c exploreCand) error {
						c.key = ws.arena.hold(c.key)
						out = append(out, c)
						if c.err != nil {
							return c.err // halt this chunk; the merge stops here
						}
						return nil
					})
					if stop != nil {
						break
					}
				}
				results[chunk] = out
			})
			for _, chunk := range results {
				for _, c := range chunk {
					if err := merge(c); err != nil {
						return nil, err
					}
				}
			}
			for i := range scratch {
				scratch[i].arena.reset()
			}
		}
		em.noteLevel(depth, len(frontier))
		frontier, next = next, frontier
		depth++
	}
	em.flush()
	return res, nil
}
