// Package mc model-checks STP systems. It makes the paper's proof
// technique executable:
//
//   - Explore: exhaustive bounded BFS over the runs of one (protocol,
//     input, channel) system — every resolution of the environment's
//     nondeterminism (Property 1b) up to a depth — checking safety in
//     every reachable state.
//   - Refute: the product construction behind Lemmas 1–4. Two runs with
//     different inputs are explored in lockstep so that the receiver's
//     complete-history views stay equal ("R cannot tell apart", §2.2);
//     because protocols are deterministic, equal views mean equal
//     receiver states and equal outputs, so reaching a point where the
//     shared output is incompatible with one input is a safety violation
//     for that run. This is exactly how the paper derives Theorems 1 and
//     2 from dup-/del-decisive tuples.
//   - CheckBounded / CheckWeaklyBounded: Definition 2 and the §5 weak
//     variant, as reachability searches over extensions.
//   - SearchProtocols: exhaustive enumeration of small finite-state
//     protocols, verifying the universal impossibility statement on a
//     finite slice.
package mc

import (
	"fmt"

	"seqtx/internal/channel"
	"seqtx/internal/protocol"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
	"seqtx/internal/trace"
)

// ExploreResult reports an exhaustive bounded exploration.
type ExploreResult struct {
	// States is the number of distinct states visited.
	States int
	// Depth is the deepest level fully expanded.
	Depth int
	// Truncated reports whether the state or depth cap stopped expansion
	// before the frontier emptied (if false, the exploration is complete:
	// the system has finitely many reachable states and all were checked).
	Truncated bool
	// Violation is the first safety violation found, with a witness.
	Violation *Witness
	// CompletedState reports whether some reachable state has Y = X.
	CompletedState bool
}

// Witness is a counterexample: the actions leading to a bad state.
type Witness struct {
	Input   seq.Seq
	Actions []trace.Action
	Output  seq.Seq
	Err     error
}

// String renders the witness run.
func (w *Witness) String() string {
	s := fmt.Sprintf("input %s, output %s: %v\n", w.Input, w.Output, w.Err)
	for i, a := range w.Actions {
		s += fmt.Sprintf("  %3d. %s\n", i+1, a)
	}
	return s
}

// ExploreConfig bounds an exploration.
type ExploreConfig struct {
	// MaxDepth bounds the BFS depth (levels of actions). Required > 0.
	MaxDepth int
	// MaxStates caps the visited-state count (0 = 1<<20).
	MaxStates int
}

func (c *ExploreConfig) normalize() error {
	if c.MaxDepth <= 0 {
		return fmt.Errorf("mc: MaxDepth must be positive, got %d", c.MaxDepth)
	}
	if c.MaxStates == 0 {
		c.MaxStates = 1 << 20
	}
	return nil
}

type node struct {
	w      *sim.World
	parent *node
	act    trace.Action
	depth  int
}

func (n *node) path() []trace.Action {
	var acts []trace.Action
	for cur := n; cur.parent != nil; cur = cur.parent {
		acts = append(acts, cur.act)
	}
	for i, j := 0, len(acts)-1; i < j; i, j = i+1, j-1 {
		acts[i], acts[j] = acts[j], acts[i]
	}
	return acts
}

// Explore runs exhaustive BFS from the initial state of (spec, input,
// kind), checking the safety property in every state.
func Explore(spec protocol.Spec, input seq.Seq, kind channel.Kind, cfg ExploreConfig) (*ExploreResult, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	link, err := channel.NewLinkOfKind(kind)
	if err != nil {
		return nil, err
	}
	w, err := sim.New(spec, input, link)
	if err != nil {
		return nil, err
	}
	res := &ExploreResult{}
	seen := map[string]struct{}{w.Key(): {}}
	frontier := []*node{{w: w}}
	res.States = 1
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		if cur.depth >= cfg.MaxDepth {
			res.Truncated = true
			continue
		}
		for _, act := range cur.w.Enabled() {
			next := cur.w.Clone()
			if aerr := next.Apply(act); aerr != nil {
				return nil, fmt.Errorf("mc: applying %s: %w", act, aerr)
			}
			child := &node{w: next, parent: cur, act: act, depth: cur.depth + 1}
			if next.SafetyViolation != nil && res.Violation == nil {
				res.Violation = &Witness{
					Input:   input.Clone(),
					Actions: child.path(),
					Output:  next.Output.Clone(),
					Err:     next.SafetyViolation,
				}
			}
			if next.OutputComplete() {
				res.CompletedState = true
			}
			key := next.Key()
			if _, ok := seen[key]; ok {
				continue
			}
			if res.States >= cfg.MaxStates {
				res.Truncated = true
				continue
			}
			seen[key] = struct{}{}
			res.States++
			if child.depth > res.Depth {
				res.Depth = child.depth
			}
			frontier = append(frontier, child)
		}
	}
	return res, nil
}
