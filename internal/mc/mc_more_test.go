package mc

import (
	"strings"
	"testing"

	"seqtx/internal/channel"
	"seqtx/internal/protocol/abp"
	"seqtx/internal/protocol/afwz"
	"seqtx/internal/protocol/alphaproto"
	"seqtx/internal/protocol/hybrid"
	"seqtx/internal/protocol/stenning"
	"seqtx/internal/seq"
)

// TestRefuteABPOnDelChannel: the stale-bit confusion of ABP under
// reordering is also a two-run indistinguishability failure — the product
// checker finds it without being told the mechanism.
func TestRefuteABPOnDelChannel(t *testing.T) {
	t.Parallel()
	spec := abp.MustNew(2)
	res, err := Refute(spec, seq.FromInts(0, 1), seq.FromInts(0, 1, 0), channel.KindDel,
		ExploreConfig{MaxDepth: 12, MaxStates: 1 << 17})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("product checker missed ABP's reordering failure")
	}
	if !res.Violation.ViolatedInput.Equal(seq.FromInts(0, 1)) {
		t.Errorf("violated input = %s, want 0.1", res.Violation.ViolatedInput)
	}
}

// TestRefuteABPOnFIFOFindsNothing: on its lawful channel the product
// checker (including duplicating deliveries via DeliverKeep) finds no
// confusion at this depth.
func TestRefuteABPOnFIFOFindsNothing(t *testing.T) {
	t.Parallel()
	spec := abp.MustNew(2)
	res, err := Refute(spec, seq.FromInts(0, 1), seq.FromInts(0, 0), channel.KindFIFO,
		ExploreConfig{MaxDepth: 10, MaxStates: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("false positive on FIFO:\n%s", res.Violation)
	}
	if res.States < 10 {
		t.Errorf("suspiciously small product exploration: %d states", res.States)
	}
}

func TestProductWitnessRendering(t *testing.T) {
	t.Parallel()
	spec := abp.MustNew(2)
	res, err := Refute(spec, seq.FromInts(0, 1), seq.FromInts(0, 1, 0), channel.KindDel,
		ExploreConfig{MaxDepth: 12, MaxStates: 1 << 17})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("no witness to render")
	}
	out := res.Violation.String()
	for _, want := range []string{"X1 = 0.1", "X2 = 0.1.0", "R-indistinguishable"} {
		if !strings.Contains(out, want) {
			t.Errorf("witness rendering missing %q:\n%s", want, out)
		}
	}
	// Side labels render.
	if got := Left.String() + Right.String() + Both.String(); got != "LRB" {
		t.Errorf("side labels = %q", got)
	}
	if got := Side(9).String(); got != "Side(9)" {
		t.Errorf("unknown side = %q", got)
	}
}

func TestCheckWeaklyBoundedAFWZ(t *testing.T) {
	t.Parallel()
	// afwz: weak variant (old messages allowed) recovers — the in-flight
	// gated copy is exactly what the weak definition may use.
	rep, err := CheckBounded(afwz.MustNew(2), seq.FromInts(0, 1, 0), channel.KindDel,
		BoundedConfig{Budget: 40, OldMessagesAllowed: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Bounded() {
		t.Fatalf("afwz not weakly bounded: %+v", rep)
	}
	if !rep.OldMessagesAllowed {
		t.Error("report lost the variant flag")
	}
}

func TestCheckBoundedAFWZUnrecoverable(t *testing.T) {
	t.Parallel()
	// Strict Definition 2: the gated copy is old, so fresh-only recovery
	// is impossible from mid-run points.
	rep, err := CheckBounded(afwz.MustNew(2), seq.FromInts(0, 1, 0), channel.KindDel,
		BoundedConfig{Budget: 40})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bounded() {
		t.Fatalf("afwz reported bounded: %+v", rep)
	}
	if rep.Unrecovered == 0 {
		t.Error("no unrecovered points despite unboundedness")
	}
	// PerPosition records -1 markers for unrecovered positions.
	found := false
	for _, v := range rep.PerPosition {
		if v == -1 {
			found = true
		}
	}
	if !found {
		t.Error("PerPosition missing unrecovered markers")
	}
}

func TestCheckBoundedHybridWeak(t *testing.T) {
	t.Parallel()
	rep, err := CheckBounded(hybrid.MustNew(2, 4), seq.FromInts(0, 1, 0, 1), channel.KindDel,
		BoundedConfig{Budget: 60, OldMessagesAllowed: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Bounded() {
		t.Fatalf("hybrid not weakly bounded: %+v", rep)
	}
	if rep.MaxRecovery > 10 {
		t.Errorf("weak recovery suspiciously slow: %d", rep.MaxRecovery)
	}
}

func TestExploreWitnessStringAndOutput(t *testing.T) {
	t.Parallel()
	spec := abp.MustNew(2)
	res, err := Explore(spec, seq.FromInts(0, 1), channel.KindDel, ExploreConfig{MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("expected ABP violation on del channel")
	}
	out := res.Violation.String()
	if !strings.Contains(out, "input 0.1") || !strings.Contains(out, "1.") {
		t.Errorf("witness rendering:\n%s", out)
	}
}

// TestExploreHybridSafeOnDel: exhaustively verify the redesigned hybrid
// admits no safety violation within the exploration bounds — including
// drop actions and the fin parity commit.
func TestExploreHybridSafeOnDel(t *testing.T) {
	t.Parallel()
	spec := hybrid.MustNew(2, 2)
	for _, input := range []seq.Seq{seq.FromInts(0, 1), seq.FromInts(1, 1)} {
		res, err := Explore(spec, input, channel.KindDel, ExploreConfig{
			MaxDepth:  11,
			MaxStates: 1 << 17,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != nil {
			t.Fatalf("hybrid violated safety on %s:\n%s", input, res.Violation)
		}
	}
}

// TestRefuteEncodedProtocolAllPairs is the paper's sufficiency direction
// on an instance: if X is prefix-monotone encodable over m messages, the
// encoded protocol solves X-STP(dup) — so the product checker must find
// no counterexample for ANY pair of members, including the repeating
// sequences that the plain tight protocol cannot carry.
func TestRefuteEncodedProtocolAllPairs(t *testing.T) {
	t.Parallel()
	x := seq.MustNewSet(
		seq.FromInts(0, 0),
		seq.FromInts(1),
		seq.FromInts(1, 1, 1),
	)
	spec, err := alphaproto.NewEncoded(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	members := x.Seqs()
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			res, rerr := Refute(spec, members[i], members[j], channel.KindDup,
				ExploreConfig{MaxDepth: 10, MaxStates: 1 << 15})
			if rerr != nil {
				t.Fatal(rerr)
			}
			if res.Violation != nil {
				t.Fatalf("encoded protocol refuted on pair (%s, %s):\n%s",
					members[i], members[j], res.Violation)
			}
		}
	}
}

// TestProgressStenningDupCloses: Stenning's dup-channel state graph is
// finite and free of doomed states — from every reachable state some
// schedule still completes.
func TestProgressStenningDupCloses(t *testing.T) {
	t.Parallel()
	res, err := CheckProgress(stenning.New(), seq.FromInts(0, 0), channel.KindDup,
		ExploreConfig{MaxDepth: 64, MaxStates: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Skip("stenning dup graph did not close at these bounds")
	}
	if res.Doomed != 0 {
		t.Fatalf("%d doomed states:\n%s", res.Doomed, res.DoomedWitness)
	}
}
