package mc

import (
	"testing"

	"seqtx/internal/channel"
	"seqtx/internal/protocol/alphaproto"
	"seqtx/internal/protocol/naive"
	"seqtx/internal/seq"
)

func TestExploreTightProtocolSafeOnDup(t *testing.T) {
	t.Parallel()
	spec := alphaproto.MustNew(2)
	for _, input := range seq.RepetitionFree(2) {
		res, err := Explore(spec, input, channel.KindDup, ExploreConfig{MaxDepth: 12})
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != nil {
			t.Fatalf("input %s: unexpected violation:\n%s", input, res.Violation)
		}
		if len(input) > 0 && !res.CompletedState {
			t.Errorf("input %s: no completed state reachable at depth 12", input)
		}
	}
}

func TestExploreFindsNaiveDupViolation(t *testing.T) {
	t.Parallel()
	// The trusting receiver writes every data receipt: a duplicated
	// delivery of d:0 corrupts Y on any input that does not repeat 0.
	spec, err := naive.NewWriteEveryData(2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Explore(spec, seq.FromInts(0, 1), channel.KindDup, ExploreConfig{MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("no violation found for the naive protocol on a dup channel")
	}
	if len(res.Violation.Actions) == 0 {
		t.Error("violation witness has no actions")
	}
}

func TestExploreConfigValidation(t *testing.T) {
	t.Parallel()
	spec := alphaproto.MustNew(1)
	if _, err := Explore(spec, seq.Seq{}, channel.KindDup, ExploreConfig{}); err == nil {
		t.Fatal("zero MaxDepth accepted")
	}
}

func TestExploreStateCapTruncates(t *testing.T) {
	t.Parallel()
	spec := alphaproto.MustNew(3)
	res, err := Explore(spec, seq.FromInts(0, 1, 2), channel.KindDel,
		ExploreConfig{MaxDepth: 30, MaxStates: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Error("tiny state cap did not truncate")
	}
	if res.States > 50 {
		t.Errorf("States = %d exceeds cap", res.States)
	}
}

// TestRefuteTheoremOneInstance is the executable Theorem 1 on an
// instance: the naive protocol claims X ⊇ {0.1, 0.1.0}; the product
// checker must find R-indistinguishable runs with diverging outputs.
func TestRefuteTheoremOneInstance(t *testing.T) {
	t.Parallel()
	spec, err := naive.NewWriteEveryData(2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Refute(spec, seq.FromInts(0, 1), seq.FromInts(0, 1, 0), channel.KindDup,
		ExploreConfig{MaxDepth: 12, MaxStates: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("product checker found no violation for the naive protocol")
	}
	w := res.Violation
	if w.String() == "" || len(w.Actions) == 0 {
		t.Error("empty witness")
	}
}

func TestRefuteTightProtocolHasNoCounterexample(t *testing.T) {
	t.Parallel()
	// Within its lawful X (repetition-free over m=2) the tight protocol
	// admits no view-collision attack at this depth.
	spec := alphaproto.MustNew(2)
	res, err := Refute(spec, seq.FromInts(0, 1), seq.FromInts(1, 0), channel.KindDup,
		ExploreConfig{MaxDepth: 10, MaxStates: 1 << 15})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("false positive on the tight protocol:\n%s", res.Violation)
	}
}

func TestRefuteRejectsEqualInputs(t *testing.T) {
	t.Parallel()
	spec := alphaproto.MustNew(2)
	if _, err := Refute(spec, seq.FromInts(0), seq.FromInts(0), channel.KindDup,
		ExploreConfig{MaxDepth: 4}); err == nil {
		t.Fatal("equal inputs accepted")
	}
}

// TestRefuteDelChannelNaive is the Theorem 2 instance: retransmissions on
// a deleting channel double-deliver through the trusting receiver.
func TestRefuteDelChannelNaive(t *testing.T) {
	t.Parallel()
	spec, err := naive.NewWriteEveryData(2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Refute(spec, seq.FromInts(0, 1), seq.FromInts(0, 1, 0), channel.KindDel,
		ExploreConfig{MaxDepth: 12, MaxStates: 1 << 17})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("no violation found on the del channel")
	}
}

func TestCheckBoundedTightProtocolOnDel(t *testing.T) {
	t.Parallel()
	// The paper's R6: the tight protocol with retransmission is bounded —
	// constant recovery from every point, fresh messages only.
	spec := alphaproto.MustNew(3)
	rep, err := CheckBounded(spec, seq.FromInts(2, 0, 1), channel.KindDel,
		BoundedConfig{Budget: 12})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Bounded() {
		t.Fatalf("tight protocol not bounded: %+v", rep)
	}
	if rep.MaxRecovery > 8 {
		t.Errorf("recovery suspiciously slow: %d steps", rep.MaxRecovery)
	}
	if rep.Samples == 0 {
		t.Error("no sample points")
	}
}

func TestCheckBoundedConfigValidation(t *testing.T) {
	t.Parallel()
	spec := alphaproto.MustNew(1)
	if _, err := CheckBounded(spec, seq.Seq{}, channel.KindDel, BoundedConfig{}); err == nil {
		t.Fatal("zero budget accepted")
	}
}

func TestSearchProtocolsTinySlice(t *testing.T) {
	t.Parallel()
	// 1-state senders and receivers: the smallest slice. Theorem 1 says
	// no solution; the search must agree.
	res, err := SearchProtocols(SearchConfig{
		SenderStates:   1,
		ReceiverStates: 1,
		Kind:           channel.KindDup,
		Depth:          8,
		LiveSteps:      60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solutions != 0 {
		t.Fatalf("found %d 'solutions' with |X| = 3 > alpha(1) = 2: %s", res.Solutions, res.Example)
	}
	if res.Receivers != 16 {
		t.Errorf("Receivers = %d, want 4^2 = 16", res.Receivers)
	}
}

func TestSearchProtocolsTwoStateSenders(t *testing.T) {
	t.Parallel()
	res, err := SearchProtocols(SearchConfig{
		SenderStates:   2,
		ReceiverStates: 1,
		Kind:           channel.KindDup,
		Depth:          8,
		LiveSteps:      60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solutions != 0 {
		t.Fatalf("found %d 'solutions': %s", res.Solutions, res.Example)
	}
}

func TestSearchConfigValidation(t *testing.T) {
	t.Parallel()
	if _, err := SearchProtocols(SearchConfig{SenderStates: 0, ReceiverStates: 1}); err == nil {
		t.Fatal("zero sender states accepted")
	}
}
