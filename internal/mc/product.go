package mc

import (
	"fmt"
	"strings"

	"seqtx/internal/channel"
	"seqtx/internal/msg"
	"seqtx/internal/protocol"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
	"seqtx/internal/trace"
)

// Side tags a product action with the run(s) it applies to.
type Side int

// Product action sides.
const (
	// Left applies only to the first run (input X1); the receiver is
	// untouched, so its views stay synchronized.
	Left Side = iota + 1
	// Right applies only to the second run.
	Right
	// Both applies a receiver-visible event to the two runs in lockstep —
	// the construction that keeps (r,t) ~_R (r',t).
	Both
)

// String names the side.
func (s Side) String() string {
	switch s {
	case Left:
		return "L"
	case Right:
		return "R"
	case Both:
		return "B"
	default:
		return fmt.Sprintf("Side(%d)", int(s))
	}
}

// ProductAction is one lockstep-exploration step.
type ProductAction struct {
	Side Side
	// Act is the action on the tagged side; for Side == Both, Act applies
	// to the left run and ActRight to the right run (they may differ in
	// kind — e.g. a consuming delivery on one side paired with a
	// duplicating one on the other — but deliver the same message).
	Act      trace.Action
	ActRight trace.Action
}

// String renders the product action.
func (a ProductAction) String() string {
	if a.Side == Both {
		if a.Act.Key() == a.ActRight.Key() {
			return "B:" + a.Act.String()
		}
		return "B:" + a.Act.String() + "/" + a.ActRight.String()
	}
	return a.Side.String() + ":" + a.Act.String()
}

// ProductWitness is a counterexample pair of runs: different inputs, equal
// receiver views throughout, and an output that is unsafe for one input.
type ProductWitness struct {
	X1, X2  seq.Seq
	Actions []ProductAction
	Output  seq.Seq
	// ViolatedInput is the input whose run's safety broke (X1 or X2).
	ViolatedInput seq.Seq
	Err           error
}

// String renders the witness.
func (w *ProductWitness) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "runs on X1 = %s and X2 = %s, R-indistinguishable throughout;\n", w.X1, w.X2)
	fmt.Fprintf(&b, "shared output %s violates the run on %s: %v\n", w.Output, w.ViolatedInput, w.Err)
	for i, a := range w.Actions {
		fmt.Fprintf(&b, "  %3d. %s\n", i+1, a)
	}
	return b.String()
}

// ProductResult reports a lockstep exploration.
type ProductResult struct {
	States    int
	Depth     int
	Truncated bool
	Violation *ProductWitness
}

type productNode struct {
	w1, w2 *sim.World
	parent *productNode
	act    ProductAction
	depth  int
}

func (n *productNode) path() []ProductAction {
	var acts []ProductAction
	for cur := n; cur.parent != nil; cur = cur.parent {
		acts = append(acts, cur.act)
	}
	for i, j := 0, len(acts)-1; i < j; i, j = i+1, j-1 {
		acts[i], acts[j] = acts[j], acts[i]
	}
	return acts
}

// Refute explores the synchronized product of the runs of (spec, x1) and
// (spec, x2) over the channel kind: the receiver experiences identical
// event sequences in both runs, while each sender side moves freely. It
// reports the first reachable pair of R-indistinguishable points whose
// shared output violates safety for one of the inputs — the executable
// content of the paper's Lemma 1/Lemma 3 adversary. A nil Violation with
// Truncated == false means no such pair exists at all (the exploration
// closed); with Truncated == true it means none exists within the bounds.
func Refute(spec protocol.Spec, x1, x2 seq.Seq, kind channel.Kind, cfg ExploreConfig) (*ProductResult, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if x1.Equal(x2) {
		return nil, fmt.Errorf("mc: product inputs must differ, both are %s", x1)
	}
	mk := func(x seq.Seq) (*sim.World, error) {
		link, err := channel.NewLinkOfKind(kind)
		if err != nil {
			return nil, err
		}
		return sim.New(spec, x, link)
	}
	w1, err := mk(x1)
	if err != nil {
		return nil, err
	}
	w2, err := mk(x2)
	if err != nil {
		return nil, err
	}
	res := &ProductResult{States: 1}
	workers := cfg.workerCount()
	scratch := newScratch(workers)
	em := newEngineMetrics(cfg.Obs, "refute", workers, true)
	em.noteMerge(true) // the root product state
	idx := newStateIndex()
	rootKey := productKey(scratch[0].keyBuf, w1, w2)
	idx.insert(hashBytes(rootKey), stableCopy(rootKey))

	frontier := []*productNode{{w1: w1, w2: w2}}
	depth := 0
	var next []*productNode

	merge := func(c productCand) error {
		if c.err != nil {
			return c.err
		}
		if res.Violation == nil {
			if v := violationOf(c.child.w1, c.child.w2, x1, x2); v != nil {
				v.Actions = c.child.path()
				res.Violation = v
			}
		}
		if idx.contains(c.hash, c.key) {
			em.noteMerge(false)
			return nil
		}
		if res.States >= cfg.MaxStates {
			res.Truncated = true
			return nil
		}
		em.noteMerge(true)
		idx.insert(c.hash, stableCopy(c.key))
		res.States++
		if c.child.depth > res.Depth {
			res.Depth = c.child.depth
		}
		next = append(next, c.child)
		return nil
	}

	expand := func(ws *workerScratch, cur *productNode, emit func(productCand) error) error {
		ws.pacts = appendProductActions(ws.pacts[:0], cur.w1, cur.w2)
		for _, pa := range ws.pacts {
			n1, n2, perr := applyProduct(cur.w1, cur.w2, pa)
			if perr != nil {
				return emit(productCand{err: perr})
			}
			ws.keyBuf = productKey(ws.keyBuf[:0], n1, n2)
			if err := emit(productCand{
				child: &productNode{w1: n1, w2: n2, parent: cur, act: pa, depth: cur.depth + 1},
				key:   ws.keyBuf,
				hash:  hashBytes(ws.keyBuf),
			}); err != nil {
				return err
			}
		}
		return nil
	}

	for len(frontier) > 0 {
		if depth >= cfg.MaxDepth {
			res.Truncated = true
			break
		}
		next = next[:0]
		if workers == 1 {
			for _, cur := range frontier {
				em.noteExpand(0)
				if err := expand(&scratch[0], cur, merge); err != nil {
					return nil, err
				}
			}
		} else {
			bounds := chunkBounds(len(frontier), workers*chunksPerWorker)
			results := make([][]productCand, len(bounds))
			runChunks(workers, bounds, func(worker, chunk int) {
				ws := &scratch[worker]
				out := results[chunk]
				for _, cur := range frontier[bounds[chunk][0]:bounds[chunk][1]] {
					em.noteExpand(worker)
					stop := expand(ws, cur, func(c productCand) error {
						c.key = ws.arena.hold(c.key)
						out = append(out, c)
						if c.err != nil {
							return c.err
						}
						return nil
					})
					if stop != nil {
						break
					}
				}
				results[chunk] = out
			})
			for _, chunk := range results {
				for _, c := range chunk {
					if err := merge(c); err != nil {
						return nil, err
					}
				}
			}
			for i := range scratch {
				scratch[i].arena.reset()
			}
		}
		em.noteLevel(depth, len(frontier))
		frontier, next = next, frontier
		depth++
	}
	em.flush()
	return res, nil
}

// productCand is one expanded product transition awaiting the merge.
type productCand struct {
	child *productNode
	key   []byte
	hash  uint64
	err   error
}

// productKey appends the canonical binary key of the product state: both
// worlds' self-delimiting encodings back to back.
func productKey(buf []byte, a, b *sim.World) []byte {
	buf = a.EncodeKey(buf)
	return b.EncodeKey(buf)
}

func violationOf(w1, w2 *sim.World, x1, x2 seq.Seq) *ProductWitness {
	switch {
	case w1.SafetyViolation != nil:
		return &ProductWitness{
			X1: x1.Clone(), X2: x2.Clone(),
			Output: w1.Output.Clone(), ViolatedInput: x1.Clone(), Err: w1.SafetyViolation,
		}
	case w2.SafetyViolation != nil:
		return &ProductWitness{
			X1: x1.Clone(), X2: x2.Clone(),
			Output: w2.Output.Clone(), ViolatedInput: x2.Clone(), Err: w2.SafetyViolation,
		}
	default:
		return nil
	}
}

// appendProductActions enumerates the product moves: sender-side actions
// on either run alone (invisible to R) and receiver-visible events applied
// to both runs. It appends to acts (exploration loops pass a reused
// buffer) and returns the extended slice.
func appendProductActions(acts []ProductAction, w1, w2 *sim.World) []ProductAction {
	sides := []struct {
		side Side
		w    *sim.World
	}{{Left, w1}, {Right, w2}}
	for _, sw := range sides {
		side, w := sw.side, sw.w
		acts = append(acts, ProductAction{Side: side, Act: trace.TickS()})
		for _, dir := range []channel.Dir{channel.SToR, channel.RToS} {
			half := w.Link.Half(dir)
			for _, m := range half.Deliverable().Support() {
				if dir == channel.RToS {
					acts = append(acts, ProductAction{Side: side, Act: trace.Deliver(dir, m)})
					if f, ok := half.(*channel.FIFO); ok && f.AllowsDup() {
						acts = append(acts, ProductAction{Side: side, Act: trace.DeliverDup(dir, m)})
					}
				}
				// Drops are invisible to R in both directions.
				if half.CanDrop(m) {
					acts = append(acts, ProductAction{Side: side, Act: trace.Drop(dir, m)})
				}
			}
		}
	}
	// Receiver-visible synchronized events.
	acts = append(acts, ProductAction{Side: Both, Act: trace.TickR(), ActRight: trace.TickR()})
	for _, m := range w1.Link.Half(channel.SToR).Deliverable().Support() {
		ways1 := feedWays(w1, m)
		ways2 := feedWays(w2, m)
		for _, a1 := range ways1 {
			for _, a2 := range ways2 {
				acts = append(acts, ProductAction{Side: Both, Act: a1, ActRight: a2})
			}
		}
	}
	return acts
}

// feedWays lists the ways run w can deliver message m to R right now.
func feedWays(w *sim.World, m msg.Msg) []trace.Action {
	half := w.Link.Half(channel.SToR)
	if !half.CanDeliver(m) {
		return nil
	}
	ways := []trace.Action{trace.Deliver(channel.SToR, m)}
	if f, ok := half.(*channel.FIFO); ok && f.AllowsDup() {
		ways = append(ways, trace.DeliverDup(channel.SToR, m))
	}
	return ways
}

func applyProduct(w1, w2 *sim.World, pa ProductAction) (*sim.World, *sim.World, error) {
	n1, n2 := w1, w2
	switch pa.Side {
	case Left:
		n1 = w1.Clone()
		if err := n1.Apply(pa.Act); err != nil {
			return nil, nil, fmt.Errorf("mc: product left %s: %w", pa.Act, err)
		}
	case Right:
		n2 = w2.Clone()
		if err := n2.Apply(pa.Act); err != nil {
			return nil, nil, fmt.Errorf("mc: product right %s: %w", pa.Act, err)
		}
	case Both:
		n1 = w1.Clone()
		n2 = w2.Clone()
		if err := n1.Apply(pa.Act); err != nil {
			return nil, nil, fmt.Errorf("mc: product both/left %s: %w", pa.Act, err)
		}
		if err := n2.Apply(pa.ActRight); err != nil {
			return nil, nil, fmt.Errorf("mc: product both/right %s: %w", pa.ActRight, err)
		}
		if n1.R.Key() != n2.R.Key() {
			return nil, nil, fmt.Errorf(
				"mc: receiver states diverged under identical views (%s vs %s): protocol is nondeterministic",
				n1.R.Key(), n2.R.Key())
		}
	default:
		return nil, nil, fmt.Errorf("mc: bad product side %d", int(pa.Side))
	}
	return n1, n2, nil
}
