package mc

import (
	"fmt"

	"seqtx/internal/channel"
	"seqtx/internal/protocol"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
	"seqtx/internal/trace"
)

// ProgressResult reports a liveness-structure analysis: which reachable
// states still have SOME path to completion (the existential half of
// F-liveness — Property 2 guarantees a fair extension exists exactly when
// some extension completes), and which are doomed: reachable states from
// which no schedule whatsoever can complete the transmission. A protocol
// with doomed states cannot be live under ANY fairness notion, because
// fairness only selects among extensions that exist.
type ProgressResult struct {
	// States is the number of distinct reachable states explored.
	States int
	// Completed is the number of states with Y = X.
	Completed int
	// Doomed is the number of reachable states from which no completion
	// is reachable (within the explored, possibly truncated, graph).
	Doomed int
	// Truncated reports whether bounds cut the exploration; when true,
	// "doomed" is an over-approximation (a deeper path might recover) and
	// should be read as "cannot complete within the horizon".
	Truncated bool
	// DoomedWitness reaches one doomed state, if any.
	DoomedWitness *Witness
}

// CheckProgress explores the reachable state graph of (spec, input, kind)
// to the given bounds and back-propagates completion-reachability.
func CheckProgress(spec protocol.Spec, input seq.Seq, kind channel.Kind, cfg ExploreConfig) (*ProgressResult, error) {
	link, err := channel.NewLinkOfKind(kind)
	if err != nil {
		return nil, err
	}
	w, err := sim.New(spec, input, link)
	if err != nil {
		return nil, err
	}
	return CheckProgressFrom(w, cfg)
}

// CheckProgressFrom runs the analysis from an arbitrary starting state —
// e.g. a world driven into a suspected deadlock — instead of the initial
// one. The world is not modified (exploration clones it).
func CheckProgressFrom(w *sim.World, cfg ExploreConfig) (*ProgressResult, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	input := w.Input

	type gnode struct {
		id       int
		parents  []int
		complete bool
		path     []trace.Action // one shortest path from the root
	}
	res := &ProgressResult{}
	nodes := []*gnode{{id: 0, complete: w.OutputComplete()}}
	index := map[string]int{w.Key(): 0}
	worlds := []*sim.World{w}
	depths := []int{0}
	frontier := []int{0}
	for head := 0; head < len(frontier); head++ {
		cur := frontier[head]
		if depths[cur] >= cfg.MaxDepth {
			res.Truncated = true
			continue
		}
		for _, act := range worlds[cur].Enabled() {
			next := worlds[cur].Clone()
			if aerr := next.Apply(act); aerr != nil {
				return nil, fmt.Errorf("mc: applying %s: %w", act, aerr)
			}
			key := next.Key()
			if id, ok := index[key]; ok {
				nodes[id].parents = append(nodes[id].parents, cur)
				continue
			}
			if len(nodes) >= cfg.MaxStates {
				res.Truncated = true
				continue
			}
			id := len(nodes)
			index[key] = id
			path := append(append([]trace.Action{}, nodes[cur].path...), act)
			nodes = append(nodes, &gnode{id: id, parents: []int{cur}, complete: next.OutputComplete(), path: path})
			worlds = append(worlds, next)
			depths = append(depths, depths[cur]+1)
			frontier = append(frontier, id)
		}
	}
	res.States = len(nodes)

	// Back-propagate completion-reachability.
	canComplete := make([]bool, len(nodes))
	var queue []int
	for _, n := range nodes {
		if n.complete {
			res.Completed++
			canComplete[n.id] = true
			queue = append(queue, n.id)
		}
	}
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		for _, p := range nodes[cur].parents {
			if !canComplete[p] {
				canComplete[p] = true
				queue = append(queue, p)
			}
		}
	}
	for _, n := range nodes {
		if canComplete[n.id] {
			continue
		}
		res.Doomed++
		if res.DoomedWitness == nil {
			res.DoomedWitness = &Witness{
				Input:   input.Clone(),
				Actions: n.path,
				Output:  worlds[n.id].Output.Clone(),
				Err:     fmt.Errorf("mc: no completion reachable from this state (horizon %d)", cfg.MaxDepth),
			}
		}
	}
	return res, nil
}
