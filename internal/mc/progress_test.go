package mc

import (
	"testing"

	"seqtx/internal/channel"
	"seqtx/internal/protocol/alphaproto"
	"seqtx/internal/protocol/hybrid"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
	"seqtx/internal/trace"
)

// TestProgressTightProtocolOnDupCloses: on a dup channel the tight
// protocol's state space is finite (the deliverable SET is bounded), the
// exploration closes, and every reachable state can still complete —
// no schedule, however adversarial, paints the protocol into a corner.
func TestProgressTightProtocolOnDupCloses(t *testing.T) {
	t.Parallel()
	res, err := CheckProgress(alphaproto.MustNew(2), seq.FromInts(0, 1), channel.KindDup,
		ExploreConfig{MaxDepth: 64, MaxStates: 1 << 18})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatalf("exploration did not close (%d states)", res.States)
	}
	if res.Doomed != 0 {
		t.Fatalf("%d doomed states; witness:\n%s", res.Doomed, res.DoomedWitness)
	}
	if res.Completed == 0 {
		t.Fatal("no completed state reachable")
	}
}

// TestProgressHybridDoubleDropDeadlock drives the §5 hybrid into the
// documented two-deletion deadlock (both single-copy streams lose their
// copy) and verifies the analyzer proves no completion is reachable.
func TestProgressHybridDoubleDropDeadlock(t *testing.T) {
	t.Parallel()
	spec := hybrid.MustNew(2, 1) // timeout 1: switches streams quickly
	link, err := channel.NewLinkOfKind(channel.KindDel)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sim.New(spec, seq.FromInts(0, 1, 0, 1), link)
	if err != nil {
		t.Fatal(err)
	}
	// Drive until both streams have a copy in flight, dropping each one.
	dropped := 0
	for step := 0; step < 200 && dropped < 2; step++ {
		// Drop any S→R data copy the moment it appears.
		sup := w.Link.Half(channel.SToR).Deliverable().Support()
		if len(sup) > 0 {
			if err := w.Apply(trace.Drop(channel.SToR, sup[0])); err != nil {
				t.Fatal(err)
			}
			dropped++
			continue
		}
		if err := w.Apply(trace.TickS()); err != nil {
			t.Fatal(err)
		}
	}
	if dropped < 2 {
		t.Fatalf("could not provoke two drops (got %d)", dropped)
	}
	res, err := CheckProgressFrom(w, ExploreConfig{MaxDepth: 64, MaxStates: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Doomed == 0 {
		t.Fatalf("deadlock not detected: %+v", res)
	}
	if res.Completed != 0 {
		t.Fatalf("completion reachable after double drop?! %+v", res)
	}
	if res.DoomedWitness == nil {
		t.Fatal("no doomed witness")
	}
}

// TestProgressHybridSingleDropRecovers: one deletion is survivable — from
// the post-drop state some schedule still completes.
func TestProgressHybridSingleDropRecovers(t *testing.T) {
	t.Parallel()
	spec := hybrid.MustNew(2, 1)
	link, err := channel.NewLinkOfKind(channel.KindDel)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sim.New(spec, seq.FromInts(0, 1), link)
	if err != nil {
		t.Fatal(err)
	}
	// First data copy appears, drop it.
	for step := 0; step < 50; step++ {
		sup := w.Link.Half(channel.SToR).Deliverable().Support()
		if len(sup) > 0 {
			if err := w.Apply(trace.Drop(channel.SToR, sup[0])); err != nil {
				t.Fatal(err)
			}
			break
		}
		if err := w.Apply(trace.TickS()); err != nil {
			t.Fatal(err)
		}
	}
	// A completion must be reachable from here. (The graph as a whole may
	// not close — fin retransmissions grow channel counts — so only the
	// existential claim is asserted.)
	res, err := CheckProgressFrom(w, ExploreConfig{MaxDepth: 40, MaxStates: 1 << 15})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatalf("no completion reachable after a single drop: %+v", res)
	}
}

func TestProgressConfigValidation(t *testing.T) {
	t.Parallel()
	if _, err := CheckProgress(alphaproto.MustNew(1), seq.Seq{}, channel.KindDup, ExploreConfig{}); err == nil {
		t.Fatal("zero depth accepted")
	}
}
