package mc

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"

	"seqtx/internal/channel"
	"seqtx/internal/msg"
	"seqtx/internal/protocol"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
)

// The protocol-space search makes the universal quantifier of Theorems 1
// and 2 executable on a finite slice: for |M^S| = |M^R| = 1 and
// X = {ε, 0, 0.0} (|X| = 3 > alpha(1) = 2, over the domain D = {0}), it
// enumerates EVERY deterministic finite-state receiver up to a state
// bound and, for each input, every finite-state sender — the non-uniform
// model: each input may get its own sender, matching the paper's
// strongest setting — and checks whether any combination is safe (in all
// runs, exhaustively explored) and live (completes under a canonical fair
// schedule within a generous budget). The theorems predict total failure;
// the search confirms it and reports the tally.

// fsmSender is a table-driven sender FSM over M^S = {a}. Events: tick or
// recv("k"). Each transition names a next state and whether to send "a".
type fsmSender struct {
	table fsmSenderTable
	state int
}

// fsmSenderTable[state][event] = (next, send); event 0 = tick, 1 = recv.
type fsmSenderTable [][2]struct {
	next int
	send bool
}

var _ protocol.Sender = (*fsmSender)(nil)

func (s *fsmSender) Step(ev protocol.Event) []msg.Msg {
	e := 0
	if ev.Kind == protocol.Recv {
		if ev.Msg != "k" {
			return nil
		}
		e = 1
	}
	tr := s.table[s.state][e]
	s.state = tr.next
	if tr.send {
		return []msg.Msg{"a"}
	}
	return nil
}

func (s *fsmSender) Alphabet() msg.Alphabet { return msg.MustNewAlphabet("a") }
func (s *fsmSender) Done() bool             { return false }
func (s *fsmSender) Clone() protocol.Sender { cp := *s; return &cp }
func (s *fsmSender) Key() string            { return fmt.Sprintf("fS%d", s.state) }

func (s *fsmSender) EncodeKey(buf []byte) []byte {
	buf = append(buf, 'P')
	return binary.AppendUvarint(buf, uint64(s.state))
}

// fsmReceiver is a table-driven receiver FSM over M^R = {k}, writing items
// of the one-element domain D = {0}.
type fsmReceiver struct {
	table fsmReceiverTable
	state int
}

// fsmReceiverTable[state][event] = (next, send, write).
type fsmReceiverTable [][2]struct {
	next  int
	send  bool
	write bool
}

var _ protocol.Receiver = (*fsmReceiver)(nil)

func (r *fsmReceiver) Step(ev protocol.Event) ([]msg.Msg, seq.Seq) {
	e := 0
	if ev.Kind == protocol.Recv {
		if ev.Msg != "a" {
			return nil, nil
		}
		e = 1
	}
	tr := r.table[r.state][e]
	r.state = tr.next
	var sends []msg.Msg
	if tr.send {
		sends = []msg.Msg{"k"}
	}
	var writes seq.Seq
	if tr.write {
		writes = seq.Seq{0}
	}
	return sends, writes
}

func (r *fsmReceiver) Alphabet() msg.Alphabet   { return msg.MustNewAlphabet("k") }
func (r *fsmReceiver) Clone() protocol.Receiver { cp := *r; return &cp }
func (r *fsmReceiver) Key() string              { return fmt.Sprintf("fR%d", r.state) }

func (r *fsmReceiver) EncodeKey(buf []byte) []byte {
	buf = append(buf, 'p')
	return binary.AppendUvarint(buf, uint64(r.state))
}

// enumerateSenderTables yields every sender table with exactly n states.
func enumerateSenderTables(n int) []fsmSenderTable {
	cells := n * 2
	options := n * 2 // next state × send flag
	var out []fsmSenderTable
	total := 1
	for i := 0; i < cells; i++ {
		total *= options
	}
	for code := 0; code < total; code++ {
		t := make(fsmSenderTable, n)
		c := code
		for st := 0; st < n; st++ {
			for e := 0; e < 2; e++ {
				opt := c % options
				c /= options
				t[st][e].next = opt % n
				t[st][e].send = opt >= n
			}
		}
		out = append(out, t)
	}
	return out
}

// enumerateReceiverTables yields every receiver table with exactly n
// states.
func enumerateReceiverTables(n int) []fsmReceiverTable {
	cells := n * 2
	options := n * 4 // next state × send flag × write flag
	var out []fsmReceiverTable
	total := 1
	for i := 0; i < cells; i++ {
		total *= options
	}
	for code := 0; code < total; code++ {
		t := make(fsmReceiverTable, n)
		c := code
		for st := 0; st < n; st++ {
			for e := 0; e < 2; e++ {
				opt := c % options
				c /= options
				t[st][e].next = opt % n
				t[st][e].send = (opt/n)%2 == 1
				t[st][e].write = (opt / (2 * n)) == 1
			}
		}
		out = append(out, t)
	}
	return out
}

// SearchConfig bounds the protocol-space search.
type SearchConfig struct {
	// SenderStates and ReceiverStates are the FSM sizes (>= 1).
	SenderStates, ReceiverStates int
	// Kind is the channel model to verify against.
	Kind channel.Kind
	// Depth bounds the safety exploration per candidate (default 10).
	Depth int
	// LiveSteps is the completion budget on the canonical fair schedule
	// (default 120).
	LiveSteps int
	// Parallelism is the number of worker goroutines sharing the receiver
	// space (default: GOMAXPROCS). The tally is independent of the worker
	// count — receivers are judged in isolation.
	Parallelism int
	// Engine configures the per-candidate safety explorations. Workers
	// defaults to 1 here, not GOMAXPROCS: the receiver pool above already
	// saturates the cores, so nested level parallelism only adds overhead.
	Engine EngineConfig
}

// SearchResult tallies the outcome.
type SearchResult struct {
	Receivers int // receiver machines examined
	Solutions int // receivers for which every input had a safe+live sender
	// SafePairs counts (receiver, input) combinations that had at least
	// one safe and live sender.
	SafePairs int
	// Example, when Solutions > 0, names one purported solution — which
	// would contradict the theorem and therefore indicates a harness bug
	// or too-small bounds.
	Example string
}

// SearchProtocols runs the exhaustive search over X = {ε, 0, 0.0}.
func SearchProtocols(cfg SearchConfig) (*SearchResult, error) {
	if cfg.SenderStates < 1 || cfg.ReceiverStates < 1 {
		return nil, fmt.Errorf("mc: FSM sizes must be >= 1")
	}
	if cfg.Depth == 0 {
		cfg.Depth = 10
	}
	if cfg.LiveSteps == 0 {
		cfg.LiveSteps = 120
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}
	if cfg.Engine.Workers == 0 {
		cfg.Engine.Workers = 1
	}
	// Hardest input first: most receivers die on 0.0 without paying for
	// the rest.
	inputs := []seq.Seq{seq.FromInts(0, 0), seq.FromInts(0), {}}
	senders := enumerateSenderTables(cfg.SenderStates)
	receivers := enumerateReceiverTables(cfg.ReceiverStates)

	// Receivers are independent: judge them across a worker pool.
	verdicts := make([]receiverVerdict, len(receivers))
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ri := range work {
				verdicts[ri] = judgeReceiver(receivers[ri], senders, inputs, cfg)
			}
		}()
	}
	for ri := range receivers {
		work <- ri
	}
	close(work)
	wg.Wait()

	res := &SearchResult{Receivers: len(receivers)}
	for _, v := range verdicts {
		if v.err != nil {
			return nil, v.err
		}
		res.SafePairs += v.safePairs
		if v.solution {
			res.Solutions++
			if res.Example == "" {
				res.Example = v.example
			}
		}
	}
	return res, nil
}

// receiverVerdict is one receiver machine's outcome in the search.
type receiverVerdict struct {
	safePairs int
	solution  bool
	example   string
	err       error
}

// judgeReceiver decides whether one receiver machine, paired with the best
// available sender per input, constitutes a solution.
func judgeReceiver(rt fsmReceiverTable, senders []fsmSenderTable, inputs []seq.Seq, cfg SearchConfig) (v receiverVerdict) {
	// Cheap necessary condition: to solve 0.0 the receiver must have SOME
	// event path that writes twice (whatever the events). BFS over the
	// bare FSM decides this in microseconds and skips most receivers.
	if !receiverCanWrite(rt, 2) {
		return v
	}
	for _, x := range inputs {
		solved := false
		for _, st := range senders {
			ok, err := candidateWorks(st, rt, x, cfg)
			if err != nil {
				v.err = err
				return v
			}
			if ok {
				solved = true
				break
			}
		}
		if !solved {
			return v
		}
		v.safePairs++
	}
	// A purported solution would contradict Theorem 1/2: double check at
	// twice the depth before believing it.
	deep := cfg
	deep.Depth *= 2
	deep.LiveSteps *= 2
	for _, x := range inputs {
		solved := false
		for _, st := range senders {
			ok, err := candidateWorks(st, rt, x, deep)
			if err != nil {
				v.err = err
				return v
			}
			if ok {
				solved = true
				break
			}
		}
		if !solved {
			return v
		}
	}
	v.solution = true
	v.example = fmt.Sprintf("receiver table %+v", rt)
	return v
}

// receiverCanWrite reports whether some event sequence drives the
// receiver FSM through at least want writes (an over-approximation of any
// real run, hence a sound filter).
func receiverCanWrite(rt fsmReceiverTable, want int) bool {
	type cfg struct{ state, writes int }
	seen := map[cfg]struct{}{{0, 0}: {}}
	frontier := []cfg{{0, 0}}
	for head := 0; head < len(frontier); head++ {
		cur := frontier[head]
		if cur.writes >= want {
			return true
		}
		for e := 0; e < 2; e++ {
			tr := rt[cur.state][e]
			next := cfg{tr.next, cur.writes}
			if tr.write {
				next.writes++
			}
			if next.writes > want {
				next.writes = want
			}
			if _, ok := seen[next]; ok {
				continue
			}
			seen[next] = struct{}{}
			frontier = append(frontier, next)
		}
	}
	return false
}

// candidateWorks checks one (sender, receiver, input) triple: exhaustive
// safety to depth, then liveness on the canonical fair schedule.
func candidateWorks(st fsmSenderTable, rt fsmReceiverTable, input seq.Seq, cfg SearchConfig) (bool, error) {
	spec := protocol.Spec{
		Name: "fsm-candidate",
		NewSender: func(seq.Seq) (protocol.Sender, error) {
			return &fsmSender{table: st}, nil
		},
		NewReceiver: func() (protocol.Receiver, error) {
			return &fsmReceiver{table: rt}, nil
		},
	}
	// Liveness first (cheap): must complete on the canonical schedule.
	live, err := sim.RunProtocol(spec, input, cfg.Kind, sim.NewRoundRobin(),
		sim.Config{MaxSteps: cfg.LiveSteps, StopWhenComplete: true})
	if err != nil {
		return false, err
	}
	if !live.OutputComplete || live.SafetyViolation != nil {
		return false, nil
	}
	// Exhaustive safety to depth.
	ex, err := Explore(spec, input, cfg.Kind, ExploreConfig{MaxDepth: cfg.Depth, MaxStates: 1 << 16, EngineConfig: cfg.Engine})
	if err != nil {
		return false, err
	}
	return ex.Violation == nil, nil
}
