package mc

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"seqtx/internal/channel"
	"seqtx/internal/faults"
	"seqtx/internal/protocol"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
	"seqtx/internal/trace"
)

// This file implements the model checker's stabilization mode: exhaustive
// BFS from CORRUPTED initial configurations (scrambled local states ×
// seeded channel junk), deciding whether the protocol self-stabilizes —
// every infinite run performs only finitely many "bad" writes, after
// which Y's suffix follows consecutive positions of X (the DDPT-style
// convergence property; see internal/protocol/stab).
//
// The state graph is a quotient: nodes are keyed on (s_S, s_R, link,
// alignment automaton) and deliberately EXCLUDE |Y|. Process and channel
// steps never read Y, and the alignment automaton is a deterministic
// function of the write stream, so transitions are well-defined on the
// quotient — and only the quotient has cycles at all (|Y| is monotone).
// A cycle containing a bad-write edge therefore unrolls into a real run
// with infinitely many bad writes: a sound refutation lasso. Conversely,
// if the frontier exhausts with no bad edge inside any strongly connected
// component, every run eventually stops writing badly — a full proof of
// stabilization over the explored corrupted frontier.

// alignState is the suffix-alignment automaton. pos/aligned track the
// candidate "good suffix": while aligned, the next good write is
// Input[pos]. Roots start unaligned — the first write defines where the
// suffix begins.
type alignState struct {
	pos     int32
	aligned bool
}

// step consumes one written item and returns the successor state and
// whether the write was bad. Aligned writes must continue the run
// (Input[pos], pos < n); anything else is bad and re-aligns to just past
// the item's first occurrence in X, or to unaligned for junk outside X.
// An unaligned write of an X value is NOT bad: it is the candidate start
// of the converging suffix (how a corrupted receiver's first write is
// judged).
func (a alignState) step(v seq.Item, input seq.Seq) (alignState, bool) {
	if a.aligned && int(a.pos) < len(input) && input[a.pos] == v {
		return alignState{pos: a.pos + 1, aligned: true}, false
	}
	for i, x := range input {
		if x == v {
			return alignState{pos: int32(i) + 1, aligned: true}, a.aligned
		}
	}
	return alignState{}, true
}

// converged reports the target condition: the suffix ran to the end of X.
func (a alignState) converged(input seq.Seq) bool {
	return a.aligned && int(a.pos) == len(input)
}

func (a alignState) encode(buf []byte) []byte {
	b := byte(0)
	if a.aligned {
		b = 1
	}
	buf = append(buf, b)
	return binary.AppendUvarint(buf, uint64(a.pos))
}

// StabilizeConfig bounds a stabilization check.
type StabilizeConfig struct {
	// MaxDepth bounds the BFS depth (0 = 512).
	MaxDepth int
	// MaxStates caps the visited-state count (0 = 1<<20).
	MaxStates int
	// Scrambles is the number of scrambled (S, R) root pairs (0 = 24).
	Scrambles int
	// ChannelJunk is the number of seeded channel fillings tried per
	// scramble pair, the no-junk filling included (0 = 4).
	ChannelJunk int
	// Seed drives the root corruption (scramble and junk streams are
	// derived per root via faults.SubSeed, so one seed reproduces the
	// whole frontier).
	Seed int64
	// EngineConfig selects the worker count (results are identical for
	// every setting).
	EngineConfig
}

func (c *StabilizeConfig) normalize() {
	if c.MaxDepth <= 0 {
		c.MaxDepth = 512
	}
	if c.MaxStates == 0 {
		c.MaxStates = 1 << 20
	}
	if c.Scrambles <= 0 {
		c.Scrambles = 24
	}
	if c.ChannelJunk <= 0 {
		c.ChannelJunk = 4
	}
}

// StabilizeResult reports a stabilization check.
type StabilizeResult struct {
	// Roots is the number of distinct corrupted starting configurations.
	Roots int
	// States is the number of distinct quotient states visited.
	States int
	// Depth is the deepest level fully expanded.
	Depth int
	// Exhausted reports that the frontier drained within bounds: the
	// quotient graph was explored completely from every root.
	Exhausted bool
	// Truncated reports that MaxDepth or MaxStates stopped expansion.
	Truncated bool
	// BadWrites is the number of distinct bad-write edges in the graph.
	BadWrites int
	// LastBadDepth is the deepest BFS level that traversed a bad-write
	// edge (-1 if none): the worst-case stabilization time in scheduler
	// steps along shortest corrupting schedules — after this many steps
	// from the worst corrupted start, no NEW corruption evidence exists
	// at any further shortest-path depth.
	LastBadDepth int
	// Refuted reports a bad-write edge inside a strongly connected
	// component: a lasso run with infinitely many bad writes exists, so
	// the protocol does not stabilize from this frontier.
	Refuted bool
	// Witness is the refutation lasso (stem from a corrupted root, then
	// the cycle), nil unless Refuted.
	Witness *Witness
	// WitnessCycleLen is the cycle portion's length of the witness.
	WitnessCycleLen int
	// WitnessRootScramble / WitnessRootJunk identify the corrupted root
	// the witness stem starts from: the scramble pair index and junk
	// filling index (deterministic functions of Seed), so the exact
	// corrupted start can be rebuilt. -1 unless Refuted.
	WitnessRootScramble int
	WitnessRootJunk     int
	// ConvergedRoots counts roots from which a fully converged state
	// (suffix aligned through the end of X) is reachable.
	ConvergedRoots int
}

// Stabilizes reports a full proof: every explored corrupted start, with
// the whole quotient graph in bounds, admits only finitely many bad
// writes on every run.
func (r *StabilizeResult) Stabilizes() bool { return r.Exhausted && !r.Refuted }

// stabEdge is one recorded transition of the quotient graph.
type stabEdge struct {
	from, to int32
	act      trace.Action
	bad      bool
}

type stabNode struct {
	w     *sim.World
	align alignState
	depth int
}

// stabCand is one expanded transition awaiting the in-order merge.
type stabCand struct {
	parent int32
	node   *stabNode
	act    trace.Action
	key    []byte
	bad    bool
	err    error
}

// stabDiscovery records how a node was first reached (BFS parent), which
// makes discovery stems shortest paths from the roots.
type stabDiscovery struct {
	parent int32
	act    trace.Action
}

// CheckStabilize explores the corrupted-frontier quotient graph of
// (spec, input, kind) and decides self-stabilization over it. Roots are
// built by scrambling both processes (protocol.ScrambleState) and seeding
// the link with in-alphabet junk; protocols without Scrambler hooks fall
// back to initial-state roots (amnesia), which still exercises channel
// corruption. Levels are expanded across cfg.Workers goroutines with a
// deterministic merge; results are identical for every worker count.
func CheckStabilize(spec protocol.Spec, input seq.Seq, kind channel.Kind, cfg StabilizeConfig) (*StabilizeResult, error) {
	cfg.normalize()
	res := &StabilizeResult{LastBadDepth: -1, WitnessRootScramble: -1, WitnessRootJunk: -1}
	workers := cfg.workerCount()
	scratch := newScratch(workers)
	em := newEngineMetrics(cfg.Obs, "stabilize", workers, true)

	// Quotient bookkeeping: canonical key -> node id, insertion-ordered
	// node table, full edge list (for SCC analysis and witnesses), and
	// per-node discovery parent (for shortest stems).
	ids := make(map[string]int32)
	var nodes []*stabNode
	var edges []stabEdge
	var parents []stabDiscovery
	var rootIDs []int32

	encodeNode := func(buf []byte, n *stabNode) []byte {
		buf = protocol.AppendKey(buf, n.w.S)
		buf = protocol.AppendKey(buf, n.w.R)
		buf = n.w.Link.EncodeKey(buf)
		return n.align.encode(buf)
	}

	var frontier, next []*stabNode
	var frontierIDs, nextIDs []int32

	// merge admits one candidate: edges are recorded for every candidate
	// (duplicates included — cycles live exactly there); only novel keys
	// become nodes.
	merge := func(c stabCand) error {
		if c.err != nil {
			return c.err
		}
		id, seen := ids[string(c.key)]
		if !seen {
			if len(nodes) >= cfg.MaxStates {
				res.Truncated = true
				// The edge's target is unexplored; drop it so the SCC
				// analysis only reasons about materialized nodes.
				return nil
			}
			id = int32(len(nodes))
			ids[string(c.key)] = id
			nodes = append(nodes, c.node)
			parents = append(parents, stabDiscovery{parent: c.parent, act: c.act})
			if c.node.depth > res.Depth {
				res.Depth = c.node.depth
			}
			next = append(next, c.node)
			nextIDs = append(nextIDs, id)
			em.noteMerge(true)
		} else {
			em.noteMerge(false)
		}
		if c.parent >= 0 {
			edges = append(edges, stabEdge{from: c.parent, to: id, act: c.act, bad: c.bad})
			if c.bad {
				res.BadWrites++
				if c.node.depth > res.LastBadDepth {
					res.LastBadDepth = c.node.depth
				}
			}
		} else if !seen {
			rootIDs = append(rootIDs, id)
		}
		return nil
	}

	// Seed the frontier with corrupted roots through the same merge path.
	roots, lanes, err := corruptedRoots(spec, input, kind, cfg)
	if err != nil {
		return nil, err
	}
	rootLane := make(map[int32][2]int)
	for ri, r := range roots {
		scratch[0].keyBuf = encodeNode(scratch[0].keyBuf[:0], r)
		before := len(rootIDs)
		if err := merge(stabCand{parent: -1, node: r, key: scratch[0].keyBuf}); err != nil {
			return nil, err
		}
		if len(rootIDs) > before {
			rootLane[rootIDs[len(rootIDs)-1]] = lanes[ri]
		}
	}
	res.Roots = len(rootIDs)
	frontier, next = next, frontier[:0]
	frontierIDs, nextIDs = nextIDs, frontierIDs[:0]

	expand := func(ws *workerScratch, id int32, cur *stabNode, emit func(stabCand) error) error {
		ws.acts = cur.w.AppendEnabled(ws.acts[:0])
		for _, act := range ws.acts {
			nw := cur.w.Clone()
			before := len(nw.Output)
			if aerr := nw.Apply(act); aerr != nil {
				return emit(stabCand{err: fmt.Errorf("mc: stabilize: applying %s: %w", act, aerr)})
			}
			align := cur.align
			bad := false
			for _, v := range nw.Output[before:] {
				var b bool
				align, b = align.step(v, input)
				bad = bad || b
			}
			child := &stabNode{w: nw, align: align, depth: cur.depth + 1}
			ws.keyBuf = encodeNode(ws.keyBuf[:0], child)
			if err := emit(stabCand{
				parent: id,
				node:   child,
				act:    act,
				key:    ws.keyBuf,
				bad:    bad,
			}); err != nil {
				return err
			}
		}
		return nil
	}

	depth := 0
	for len(frontier) > 0 {
		if depth >= cfg.MaxDepth {
			res.Truncated = true
			break
		}
		next, nextIDs = next[:0], nextIDs[:0]
		if workers == 1 {
			for i, cur := range frontier {
				em.noteExpand(0)
				if err := expand(&scratch[0], frontierIDs[i], cur, merge); err != nil {
					return nil, err
				}
			}
		} else {
			bounds := chunkBounds(len(frontier), workers*chunksPerWorker)
			results := make([][]stabCand, len(bounds))
			runChunks(workers, bounds, func(worker, chunk int) {
				ws := &scratch[worker]
				out := results[chunk]
				for i := bounds[chunk][0]; i < bounds[chunk][1]; i++ {
					em.noteExpand(worker)
					stop := expand(ws, frontierIDs[i], frontier[i], func(c stabCand) error {
						if c.key != nil {
							c.key = ws.arena.hold(c.key)
						}
						out = append(out, c)
						if c.err != nil {
							return c.err
						}
						return nil
					})
					if stop != nil {
						break
					}
				}
				results[chunk] = out
			})
			for _, chunk := range results {
				for _, c := range chunk {
					if err := merge(c); err != nil {
						return nil, err
					}
				}
			}
			for i := range scratch {
				scratch[i].arena.reset()
			}
		}
		em.noteLevel(depth, len(frontier))
		frontier, next = next, frontier
		frontierIDs, nextIDs = nextIDs, frontierIDs
		depth++
	}
	em.flush()
	res.States = len(nodes)
	res.Exhausted = !res.Truncated

	// Lasso analysis: a bad edge whose endpoints share an SCC (or a bad
	// self-loop) witnesses a run with infinitely many bad writes.
	comp := sccOf(int32(len(nodes)), edges)
	for _, e := range edges {
		if !e.bad {
			continue
		}
		if e.from == e.to || comp[e.from] == comp[e.to] {
			res.Refuted = true
			res.Witness, res.WitnessCycleLen = stabWitness(input, e, edges, parents)
			root := e.from
			for parents[root].parent >= 0 {
				root = parents[root].parent
			}
			if lane, ok := rootLane[root]; ok {
				res.WitnessRootScramble, res.WitnessRootJunk = lane[0], lane[1]
			}
			break
		}
	}

	// Convergence reachability: reverse-BFS from converged states.
	if len(nodes) > 0 && len(rootIDs) > 0 {
		radj := make([][]int32, len(nodes))
		for _, e := range edges {
			radj[e.to] = append(radj[e.to], e.from)
		}
		canReach := make([]bool, len(nodes))
		var queue []int32
		for i, n := range nodes {
			if n.align.converged(input) {
				canReach[i] = true
				queue = append(queue, int32(i))
			}
		}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range radj[v] {
				if !canReach[u] {
					canReach[u] = true
					queue = append(queue, u)
				}
			}
		}
		for _, r := range rootIDs {
			if canReach[r] {
				res.ConvergedRoots++
			}
		}
	}
	return res, nil
}

// corruptedRoots builds the scrambled frontier: Scrambles seeded (S, R)
// pairs, each under ChannelJunk seeded link fillings (filling 0 is the
// empty link). Junk is drawn from each direction's own alphabet — the
// adversary corrupts state, not the finite-alphabet assumption — and is
// bounded per direction so unbounded kinds get a finite frontier too.
func corruptedRoots(spec protocol.Spec, input seq.Seq, kind channel.Kind, cfg StabilizeConfig) ([]*stabNode, [][2]int, error) {
	var roots []*stabNode
	var lanes [][2]int
	for i := 0; i < cfg.Scrambles; i++ {
		for j := 0; j < cfg.ChannelJunk; j++ {
			link, err := channel.NewLinkOfKind(kind)
			if err != nil {
				return nil, nil, err
			}
			w, err := sim.New(spec, input, link)
			if err != nil {
				return nil, nil, err
			}
			lane := uint64(i)<<8 | uint64(j)
			protocol.ScrambleState(w.S, faults.SubSeed(cfg.Seed, lane|1<<32))
			protocol.ScrambleState(w.R, faults.SubSeed(cfg.Seed, lane|2<<32))
			if j > 0 {
				rng := rand.New(rand.NewSource(faults.SubSeed(cfg.Seed, lane|3<<32)))
				for _, dir := range []channel.Dir{channel.SToR, channel.RToS} {
					alp := w.S.Alphabet()
					if dir == channel.RToS {
						alp = w.R.Alphabet()
					}
					msgs := alp.Msgs()
					if len(msgs) == 0 {
						continue // unbounded-alphabet baseline: no junk domain
					}
					for k := rng.Intn(3); k > 0; k-- {
						// Send enforces the alphabet; bounded halves shed
						// overflow themselves.
						if err := w.Link.Send(dir, msgs[rng.Intn(len(msgs))]); err != nil {
							return nil, nil, err
						}
					}
				}
			}
			roots = append(roots, &stabNode{w: w, align: alignState{}})
			lanes = append(lanes, [2]int{i, j})
		}
	}
	return roots, lanes, nil
}

// stabWitness assembles the refutation lasso for bad edge e: the shortest
// discovery stem from a root to e.from, then e itself, then a shortest
// path from e.to back to e.from (empty for a self-loop). The combined
// action list replays to a run that can repeat its cycle forever.
func stabWitness(input seq.Seq, e stabEdge, edges []stabEdge, parents []stabDiscovery) (*Witness, int) {
	var stem []trace.Action
	for cur := e.from; parents[cur].parent >= 0; cur = parents[cur].parent {
		stem = append(stem, parents[cur].act)
	}
	for i, j := 0, len(stem)-1; i < j; i, j = i+1, j-1 {
		stem[i], stem[j] = stem[j], stem[i]
	}
	acts := append(stem, e.act)
	cycleLen := 1
	if e.to != e.from {
		back := shortestPath(e.to, e.from, edges)
		acts = append(acts, back...)
		cycleLen += len(back)
	}
	return &Witness{
		Input:   input.Clone(),
		Actions: acts,
		Err: fmt.Errorf("stabilization refuted: a bad write lies on a cycle "+
			"(stem %d steps, cycle %d steps) — the run can repeat it forever",
			len(stem), cycleLen),
	}, cycleLen
}

// shortestPath BFS-es from src to dst over the recorded edges and returns
// the actions along a shortest path.
func shortestPath(src, dst int32, edges []stabEdge) []trace.Action {
	n := int32(0)
	for _, e := range edges {
		if e.from >= n {
			n = e.from + 1
		}
		if e.to >= n {
			n = e.to + 1
		}
	}
	adj := make([][]int, n)
	for i, e := range edges {
		adj[e.from] = append(adj[e.from], i)
	}
	type hop struct {
		prev int32
		edge int
	}
	visited := make([]bool, n)
	hops := make([]hop, n)
	queue := []int32{src}
	visited[src] = true
	hops[src] = hop{prev: -1}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == dst {
			var acts []trace.Action
			for cur := u; hops[cur].prev >= 0; cur = hops[cur].prev {
				acts = append(acts, edges[hops[cur].edge].act)
			}
			for i, j := 0, len(acts)-1; i < j; i, j = i+1, j-1 {
				acts[i], acts[j] = acts[j], acts[i]
			}
			return acts
		}
		for _, ei := range adj[u] {
			v := edges[ei].to
			if !visited[v] {
				visited[v] = true
				hops[v] = hop{prev: u, edge: ei}
				queue = append(queue, v)
			}
		}
	}
	return nil
}

// sccOf computes strongly connected components (iterative Tarjan) and
// returns the component id of every node.
func sccOf(n int32, edges []stabEdge) []int32 {
	adj := make([][]int32, n)
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	comp := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int32
	var counter, comps int32

	type frame struct {
		v    int32
		next int
	}
	for start := int32(0); start < n; start++ {
		if index[start] != unvisited {
			continue
		}
		callStack := []frame{{v: start}}
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, start)
		onStack[start] = true
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			if f.next < len(adj[f.v]) {
				w := adj[f.v][f.next]
				f.next++
				if index[w] == unvisited {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// Pop f.v.
			v := f.v
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				p := callStack[len(callStack)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = comps
					if w == v {
						break
					}
				}
				comps++
			}
		}
	}
	return comp
}
