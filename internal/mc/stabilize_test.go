package mc

import (
	"testing"

	"seqtx/internal/channel"
	"seqtx/internal/protocol"
	"seqtx/internal/protocol/abp"
	"seqtx/internal/protocol/naive"
	"seqtx/internal/protocol/stab"
	"seqtx/internal/seq"
)

// TestStabilizingProvenOnBoundedChannel is the positive half of the
// stabilization mode: the self-stabilizing protocol, on the channel kind
// whose capacity bound it assumes, is PROVEN to converge — the corrupted
// quotient graph exhausts with no bad write on any cycle, so every run
// from every explored corrupted start performs only finitely many bad
// writes, with a finite worst-case stabilization depth.
func TestStabilizingProvenOnBoundedChannel(t *testing.T) {
	t.Parallel()
	spec, err := stab.New(3, channel.DefaultBoundedCap)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CheckStabilize(spec, seq.FromInts(2, 0, 1), channel.KindBounded, StabilizeConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted || res.Truncated {
		t.Fatalf("frontier not exhausted (states=%d depth=%d): no proof", res.States, res.Depth)
	}
	if res.Refuted {
		t.Fatalf("stab refuted on its own model:\n%s", res.Witness)
	}
	if !res.Stabilizes() {
		t.Fatal("Stabilizes() = false on an exhausted, unrefuted check")
	}
	if res.Roots == 0 || res.States < res.Roots {
		t.Fatalf("implausible exploration: roots=%d states=%d", res.Roots, res.States)
	}
	// Corruption must actually have been exercised: some corrupted roots
	// make bad writes before converging, at a finite worst-case depth.
	if res.BadWrites == 0 || res.LastBadDepth < 0 {
		t.Fatalf("no bad writes explored (BadWrites=%d LastBadDepth=%d): frontier too tame",
			res.BadWrites, res.LastBadDepth)
	}
	if res.LastBadDepth > res.Depth {
		t.Fatalf("LastBadDepth %d exceeds explored depth %d", res.LastBadDepth, res.Depth)
	}
	if res.ConvergedRoots == 0 {
		t.Fatal("no root can reach full suffix alignment")
	}
}

// TestStabilizeWorkerCountInvariant pins the engine contract for the new
// mode: the verdict and the explored graph's shape are identical for
// every worker count.
func TestStabilizeWorkerCountInvariant(t *testing.T) {
	t.Parallel()
	spec, err := stab.New(2, channel.DefaultBoundedCap)
	if err != nil {
		t.Fatal(err)
	}
	input := seq.FromInts(1, 0)
	var base *StabilizeResult
	for _, workers := range []int{1, 4} {
		cfg := StabilizeConfig{Seed: 7, Scrambles: 8}
		cfg.Workers = workers
		res, err := CheckStabilize(spec, input, channel.KindBounded, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res
			continue
		}
		if res.States != base.States || res.Depth != base.Depth ||
			res.BadWrites != base.BadWrites || res.LastBadDepth != base.LastBadDepth ||
			res.Refuted != base.Refuted || res.ConvergedRoots != base.ConvergedRoots {
			t.Fatalf("workers=%d diverged: %+v vs %+v", workers, res, base)
		}
	}
}

// TestStabRefutedOnUnboundedDup is the boundary of the positive claim:
// the SAME protocol on an unbounded duplicating channel loses the
// counting argument (the adversary hoards more than c stale copies and
// replays them forever), and the checker finds the lasso.
func TestStabRefutedOnUnboundedDup(t *testing.T) {
	t.Parallel()
	spec, err := stab.New(3, channel.DefaultBoundedCap)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CheckStabilize(spec, seq.FromInts(2, 0, 1), channel.KindDup,
		StabilizeConfig{Seed: 1, Scrambles: 8, MaxStates: 1 << 16, MaxDepth: 48})
	if err != nil {
		t.Fatal(err)
	}
	assertRefuted(t, res)
}

// TestNonStabilizingZooRefuted pins the negative half across the zoo: the
// deliberately weak protocols admit runs with infinitely many bad writes
// from corrupted starts, each refuted with a lasso witness.
func TestNonStabilizingZooRefuted(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		spec func() (protocol.Spec, error)
		kind channel.Kind
	}{
		{"naive/dup", func() (protocol.Spec, error) { return naive.NewWriteEveryData(2) }, channel.KindDup},
		{"flood/dup", func() (protocol.Spec, error) { return naive.NewFlood(2) }, channel.KindDup},
		{"abp/dup", func() (protocol.Spec, error) { return abp.New(2) }, channel.KindDup},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			spec, err := tc.spec()
			if err != nil {
				t.Fatal(err)
			}
			res, err := CheckStabilize(spec, seq.FromInts(0, 1), tc.kind,
				StabilizeConfig{Seed: 3, Scrambles: 8, MaxStates: 1 << 16, MaxDepth: 48})
			if err != nil {
				t.Fatal(err)
			}
			assertRefuted(t, res)
		})
	}
}

func assertRefuted(t *testing.T, res *StabilizeResult) {
	t.Helper()
	if !res.Refuted {
		t.Fatalf("not refuted (states=%d depth=%d badWrites=%d exhausted=%v)",
			res.States, res.Depth, res.BadWrites, res.Exhausted)
	}
	if res.Witness == nil || len(res.Witness.Actions) == 0 {
		t.Fatal("refuted without a witness")
	}
	if res.WitnessCycleLen < 1 {
		t.Fatalf("witness cycle length %d", res.WitnessCycleLen)
	}
	if res.WitnessRootScramble < 0 || res.WitnessRootJunk < 0 {
		t.Fatalf("witness root not identified: scramble=%d junk=%d",
			res.WitnessRootScramble, res.WitnessRootJunk)
	}
	// The shrunken-lasso contract: the stem is a BFS-shortest discovery
	// path and the cycle a shortest return path, so the whole witness
	// stays small on these tiny systems.
	if len(res.Witness.Actions) > 64 {
		t.Fatalf("witness suspiciously long: %d actions", len(res.Witness.Actions))
	}
}
