// Package msg defines message values, finite message alphabets, and count
// vectors over alphabets — the paper's dlvrble vectors (§2.2).
//
// The paper's bounds are stated in terms of the size m of the sender's
// message alphabet M^S. Messages here are opaque strings; protocols define
// their own encodings (e.g. "d:a" for a data message carrying item a, or
// "ack:0" for an alternating-bit acknowledgement).
package msg

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// Msg is a single message value. Protocols choose their own encodings; the
// channel and the model checker treat messages as opaque comparable values.
type Msg string

// Alphabet is a finite, duplicate-free, ordered set of messages. The
// paper's central parameter is m = len(sender's Alphabet).
type Alphabet struct {
	msgs  []Msg
	index map[Msg]int
}

// NewAlphabet builds an alphabet from the given messages. It returns an
// error if a message repeats, since |M| must count distinct messages.
func NewAlphabet(msgs ...Msg) (Alphabet, error) {
	a := Alphabet{
		msgs:  make([]Msg, 0, len(msgs)),
		index: make(map[Msg]int, len(msgs)),
	}
	for _, m := range msgs {
		if _, ok := a.index[m]; ok {
			return Alphabet{}, fmt.Errorf("msg: duplicate message %q in alphabet", m)
		}
		a.index[m] = len(a.msgs)
		a.msgs = append(a.msgs, m)
	}
	return a, nil
}

// MustNewAlphabet is NewAlphabet for statically known inputs; it panics on
// duplicates. Intended for tests, examples, and protocol constructors whose
// alphabets are derived from validated parameters.
func MustNewAlphabet(msgs ...Msg) Alphabet {
	a, err := NewAlphabet(msgs...)
	if err != nil {
		panic(err)
	}
	return a
}

// Size returns the number of distinct messages (the paper's m for M^S).
func (a Alphabet) Size() int { return len(a.msgs) }

// Msgs returns the messages in order. The slice is shared; do not mutate.
func (a Alphabet) Msgs() []Msg { return a.msgs }

// Contains reports whether m is in the alphabet.
func (a Alphabet) Contains(m Msg) bool {
	_, ok := a.index[m]
	return ok
}

// Canonical returns the alphabet's own interned copy of the message whose
// encoding is b, and whether b is in the alphabet at all. The compiler's
// map-lookup special case makes the []byte→string conversion here
// allocation-free, so a receive path that already validates membership
// gets an owned Msg value without copying the payload.
func (a Alphabet) Canonical(b []byte) (Msg, bool) {
	i, ok := a.index[Msg(b)]
	if !ok {
		return "", false
	}
	return a.msgs[i], true
}

// Index returns the position of m in the alphabet's enumeration order.
// Interned codecs use the position as the key into precomputed
// parsed-view tables, so decode is a single map access plus an array
// index.
func (a Alphabet) Index(m Msg) (int, bool) {
	i, ok := a.index[m]
	return i, ok
}

// Lookup is Index for a raw payload: a zero-copy []byte→index lookup
// (the map access via the string(b) conversion does not allocate). A
// receive path can go from wire bytes to a precomputed parsed view
// without ever materializing the string.
func (a Alphabet) Lookup(b []byte) (int, bool) {
	i, ok := a.index[Msg(b)]
	return i, ok
}

// Union returns the union of a and b preserving a's order first. Duplicate
// members across the two alphabets are collapsed.
func (a Alphabet) Union(b Alphabet) Alphabet {
	out := Alphabet{index: make(map[Msg]int, len(a.msgs)+len(b.msgs))}
	for _, m := range append(append([]Msg{}, a.msgs...), b.msgs...) {
		if _, ok := out.index[m]; ok {
			continue
		}
		out.index[m] = len(out.msgs)
		out.msgs = append(out.msgs, m)
	}
	return out
}

// String renders the alphabet as "{m1,m2,...}".
func (a Alphabet) String() string {
	parts := make([]string, len(a.msgs))
	for i, m := range a.msgs {
		parts[i] = string(m)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Counts is a multiset of messages: the paper's dlvrble vector. For dup
// channels entries are 0/1 flags ("was mu ever sent"); for del channels
// they are send-minus-deliver counts. The zero value is an empty multiset.
type Counts map[Msg]int

// Clone returns an independent copy of c.
func (c Counts) Clone() Counts {
	cp := make(Counts, len(c))
	for m, n := range c {
		cp[m] = n
	}
	return cp
}

// Add increases the count of m by delta (which may be negative) and drops
// the entry when it reaches zero so that equal multisets have equal maps.
func (c Counts) Add(m Msg, delta int) {
	n := c[m] + delta
	if n == 0 {
		delete(c, m)
		return
	}
	c[m] = n
}

// Get returns the count of m (zero if absent).
func (c Counts) Get(m Msg) int { return c[m] }

// Total returns the sum of all counts.
func (c Counts) Total() int {
	total := 0
	for _, n := range c {
		total += n
	}
	return total
}

// GE reports whether c[m] >= d[m] for every message m — the paper's
// pointwise >= on dlvrble vectors (Definition 2, clause 2).
func (c Counts) GE(d Counts) bool {
	for m, n := range d {
		if c[m] < n {
			return false
		}
	}
	return true
}

// Equal reports whether c and d are equal as multisets.
func (c Counts) Equal(d Counts) bool { return c.GE(d) && d.GE(c) }

// Support returns the messages with nonzero count, sorted.
func (c Counts) Support() []Msg {
	out := make([]Msg, 0, len(c))
	for m := range c {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AppendMsg appends a self-delimiting binary encoding of m to buf: the
// byte length as a uvarint followed by the raw bytes. Because the length
// prefix makes every message left-to-right parseable, concatenations of
// AppendMsg encodings are unambiguous — two different message sequences
// never produce the same bytes.
func AppendMsg(buf []byte, m Msg) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(m)))
	return append(buf, m...)
}

// EncodeKey appends a canonical, self-delimiting binary encoding of the
// multiset to buf and returns the extended slice: the entry count, then
// the (message, count) pairs in ascending message order. Equal multisets
// produce equal bytes and vice versa (the binary counterpart of Key).
//
// The sorted order is established without allocating: entries are
// emitted by repeated minimum-selection over the map, which is O(k²) map
// scans for k distinct messages — in this codebase k is bounded by the
// protocol alphabet size, so the quadratic term stays far cheaper than a
// sort.Slice call and keeps the model checker's per-transition key
// construction allocation-free.
func (c Counts) EncodeKey(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(c)))
	var last Msg
	for i := 0; i < len(c); i++ {
		var best Msg
		found := false
		for m := range c {
			if i > 0 && m <= last {
				continue
			}
			if found && m >= best {
				continue
			}
			best, found = m, true
		}
		last = best
		buf = AppendMsg(buf, best)
		buf = binary.AppendVarint(buf, int64(c[best]))
	}
	return buf
}

// Key returns a canonical string encoding of the multiset, suitable for
// state hashing in the model checker.
func (c Counts) Key() string {
	if len(c) == 0 {
		return "∅"
	}
	parts := make([]string, 0, len(c))
	for _, m := range c.Support() {
		parts = append(parts, fmt.Sprintf("%s×%d", m, c[m]))
	}
	return strings.Join(parts, ",")
}

// String renders the multiset for humans.
func (c Counts) String() string { return "{" + c.Key() + "}" }
