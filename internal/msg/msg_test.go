package msg

import (
	"testing"
	"testing/quick"
)

func TestNewAlphabetRejectsDuplicates(t *testing.T) {
	t.Parallel()
	if _, err := NewAlphabet("a", "b", "a"); err == nil {
		t.Fatal("duplicate alphabet accepted")
	}
	a, err := NewAlphabet("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() != 2 {
		t.Errorf("Size() = %d, want 2", a.Size())
	}
}

func TestAlphabetContains(t *testing.T) {
	t.Parallel()
	a := MustNewAlphabet("a", "b")
	if !a.Contains("a") || a.Contains("c") {
		t.Error("Contains misbehaves")
	}
}

func TestAlphabetUnion(t *testing.T) {
	t.Parallel()
	a := MustNewAlphabet("a", "b")
	b := MustNewAlphabet("b", "c")
	u := a.Union(b)
	if u.Size() != 3 {
		t.Fatalf("Union size = %d, want 3", u.Size())
	}
	want := []Msg{"a", "b", "c"}
	for i, m := range u.Msgs() {
		if m != want[i] {
			t.Errorf("Union[%d] = %q, want %q", i, m, want[i])
		}
	}
}

func TestAlphabetString(t *testing.T) {
	t.Parallel()
	a := MustNewAlphabet("x", "y")
	if got := a.String(); got != "{x,y}" {
		t.Errorf("String() = %q", got)
	}
}

func TestCountsAddRemovesZeroEntries(t *testing.T) {
	t.Parallel()
	c := Counts{}
	c.Add("a", 2)
	c.Add("a", -2)
	if len(c) != 0 {
		t.Errorf("zero entry retained: %v", c)
	}
	c.Add("b", 1)
	if c.Get("b") != 1 || c.Get("a") != 0 {
		t.Errorf("counts wrong: %v", c)
	}
}

func TestCountsTotal(t *testing.T) {
	t.Parallel()
	c := Counts{"a": 2, "b": 3}
	if got := c.Total(); got != 5 {
		t.Errorf("Total() = %d, want 5", got)
	}
}

func TestCountsGE(t *testing.T) {
	t.Parallel()
	c := Counts{"a": 2, "b": 1}
	d := Counts{"a": 1}
	if !c.GE(d) {
		t.Error("c.GE(d) = false")
	}
	if d.GE(c) {
		t.Error("d.GE(c) = true")
	}
	if !c.GE(Counts{}) {
		t.Error("c.GE(empty) = false")
	}
	if !(Counts{}).GE(nil) {
		t.Error("empty.GE(nil) = false")
	}
}

func TestCountsEqual(t *testing.T) {
	t.Parallel()
	a := Counts{"x": 1}
	b := Counts{}
	b.Add("x", 1)
	if !a.Equal(b) {
		t.Error("equal multisets not Equal")
	}
	b.Add("y", 1)
	if a.Equal(b) {
		t.Error("unequal multisets Equal")
	}
}

func TestCountsCloneIndependent(t *testing.T) {
	t.Parallel()
	a := Counts{"x": 1}
	b := a.Clone()
	b.Add("x", 5)
	if a.Get("x") != 1 {
		t.Error("Clone shares storage")
	}
}

func TestCountsKeyCanonical(t *testing.T) {
	t.Parallel()
	a := Counts{"b": 2, "a": 1}
	b := Counts{}
	b.Add("a", 1)
	b.Add("b", 1)
	b.Add("b", 1)
	if a.Key() != b.Key() {
		t.Errorf("keys differ: %q vs %q", a.Key(), b.Key())
	}
	if (Counts{}).Key() != "∅" {
		t.Errorf("empty key = %q", (Counts{}).Key())
	}
}

func TestCountsSupportSorted(t *testing.T) {
	t.Parallel()
	c := Counts{"z": 1, "a": 2, "m": 3}
	sup := c.Support()
	if len(sup) != 3 || sup[0] != "a" || sup[1] != "m" || sup[2] != "z" {
		t.Errorf("Support() = %v", sup)
	}
}

func TestCountsGEPartialOrderProperty(t *testing.T) {
	t.Parallel()
	mk := func(xs []uint8) Counts {
		c := Counts{}
		for i, v := range xs {
			if i >= 4 {
				break
			}
			c.Add(Msg(rune('a'+i%3)), int(v%3))
		}
		return c
	}
	f := func(a, b, c []uint8) bool {
		x, y, z := mk(a), mk(b), mk(c)
		// reflexive
		if !x.GE(x) {
			return false
		}
		// transitive
		if x.GE(y) && y.GE(z) && !x.GE(z) {
			return false
		}
		// antisymmetric up to Equal
		if x.GE(y) && y.GE(x) && !x.Equal(y) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
