package obs

// Structured run events: the narrative channel next to the numeric
// metrics. Emitters record what happened (run started/finished, watchdog
// fired, violation captured, shrink converged, BFS level completed) with
// small string fields; the buffer is bounded, so a runaway emitter can
// degrade the log (oldest events drop, counted) but never memory.

// Event is one structured occurrence. Fields are flat string pairs so
// the JSON artifact stays diff-able and deterministic (encoding/json
// sorts map keys).
type Event struct {
	// Seq is the 1-based emission index (monotonic per Registry, including
	// dropped events).
	Seq int64 `json:"seq"`
	// Kind names the occurrence, dot-scoped: "soak.run.finished",
	// "sim.watchdog.fired", "mc.bfs.level", "soak.shrink.converged", ...
	Kind   string            `json:"kind"`
	Fields map[string]string `json:"fields,omitempty"`
}

// maxBufferedEvents bounds the per-Registry event buffer.
const maxBufferedEvents = 4096

// eventLog is a bounded FIFO of events, guarded by the Registry mutex.
type eventLog struct {
	buf     []Event
	seq     int64
	dropped int64
}

func (l *eventLog) append(e Event) {
	l.seq++
	e.Seq = l.seq
	if len(l.buf) >= maxBufferedEvents {
		copy(l.buf, l.buf[1:])
		l.buf = l.buf[:len(l.buf)-1]
		l.dropped++
	}
	l.buf = append(l.buf, e)
}

func (l *eventLog) snapshot() []Event {
	if len(l.buf) == 0 {
		return nil
	}
	return append([]Event(nil), l.buf...)
}

func (l *eventLog) reset() {
	l.buf = l.buf[:0]
	l.seq = 0
	l.dropped = 0
}

// Emit records an event with alternating key, value field pairs (a
// trailing unpaired key is ignored). A nil Registry drops it.
func (r *Registry) Emit(kind string, kv ...string) {
	if r == nil {
		return
	}
	e := Event{Kind: kind}
	if len(kv) >= 2 {
		e.Fields = make(map[string]string, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			e.Fields[kv[i]] = kv[i+1]
		}
	}
	r.mu.Lock()
	r.events.append(e)
	r.mu.Unlock()
}
