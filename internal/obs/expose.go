package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
)

// Exposition formats for snapshots.
const (
	// FormatProm is the Prometheus text exposition format (metrics only;
	// events have no Prometheus representation).
	FormatProm = "prom"
	// FormatJSON is the full JSON snapshot, events included.
	FormatJSON = "json"
)

// splitName separates an optional baked-in label suffix from a metric
// name: `foo{worker="3"}` -> (`foo`, `worker="3"`).
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// promValue renders a float in Prometheus text format.
func promValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return fmt.Sprintf("%g", v)
	}
}

// typedNames tracks which base names already got a # TYPE line (several
// labeled series share one).
type typedNames map[string]bool

func (t typedNames) header(w io.Writer, base, typ string) error {
	if t[base] {
		return nil
	}
	t[base] = true
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, typ)
	return err
}

// WritePrometheus renders the snapshot's metrics in the Prometheus text
// exposition format, sorted by name so output is deterministic.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	typed := typedNames{}
	for _, name := range sortedKeys(s.Counters) {
		base, labels := splitName(name)
		if err := typed.header(w, base, "counter"); err != nil {
			return err
		}
		series := base
		if labels != "" {
			series = base + "{" + labels + "}"
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", series, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		base, labels := splitName(name)
		if err := typed.header(w, base, "gauge"); err != nil {
			return err
		}
		series := base
		if labels != "" {
			series = base + "{" + labels + "}"
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", series, promValue(s.Gauges[name])); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		base, labels := splitName(name)
		if err := typed.header(w, base, "histogram"); err != nil {
			return err
		}
		h := s.Histograms[name]
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			le := `le="` + promValue(b.UpperBound) + `"`
			if labels != "" {
				le = labels + "," + le
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", base, le, cum); err != nil {
				return err
			}
		}
		suffix := ""
		if labels != "" {
			suffix = "{" + labels + "}"
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", base, suffix, promValue(h.Sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", base, suffix, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the full snapshot (metrics + events) as indented
// JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteFormat renders the snapshot in the named format (FormatProm or
// FormatJSON).
func (s Snapshot) WriteFormat(w io.Writer, format string) error {
	switch format {
	case FormatProm:
		return s.WritePrometheus(w)
	case FormatJSON:
		return s.WriteJSON(w)
	default:
		return fmt.Errorf("obs: unknown snapshot format %q (have %s, %s)", format, FormatProm, FormatJSON)
	}
}

// WriteSnapshotFile is the CLI helper behind the -metrics flags: it
// renders r's snapshot to path ("-" or "" = stdout) in the given format.
// A nil Registry writes an empty snapshot, so a disabled pipeline still
// produces a parseable artifact.
func WriteSnapshotFile(r *Registry, path, format string) error {
	snap := r.Snapshot()
	if path == "" || path == "-" {
		return snap.WriteFormat(os.Stdout, format)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snap.WriteFormat(f, format); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
