package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// buildSnapshot populates a registry with one of everything.
func buildSnapshot() Snapshot {
	r := NewRegistry()
	r.Counter("soak_cells_total").Add(17)
	r.Counter(`mc_worker_expansions_total{worker="0"}`).Add(5)
	r.Counter(`mc_worker_expansions_total{worker="1"}`).Add(7)
	r.Gauge("mc_explore_states_per_sec").Set(1234.5)
	h := r.Histogram("sim_learn_time_steps", []float64{1, 2, 4})
	h.Observe(1)
	h.Observe(3)
	h.Observe(9)
	r.Emit("soak.run.finished", "case", "alpha/dup/random/none/seed=1", "outcome", "complete")
	return r.Snapshot()
}

// parseProm is a strict-enough Prometheus text parser for the exposition
// this package emits: every non-comment line must be `name{labels} value`
// or `name value` with a numeric value, and every series must be covered
// by a preceding # TYPE.
func parseProm(t *testing.T, text string) map[string]float64 {
	t.Helper()
	series := make(map[string]float64)
	typed := make(map[string]string)
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: empty line", ln+1)
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE comment %q", ln+1, line)
			}
			typed[parts[2]] = parts[3]
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator in %q", ln+1, line)
		}
		name, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil && valStr != "+Inf" {
			t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
		}
		base := name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			if !strings.HasSuffix(base, "}") {
				t.Fatalf("line %d: unbalanced labels in %q", ln+1, name)
			}
			base = base[:i]
		}
		root := base
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(base, suffix) && typed[strings.TrimSuffix(base, suffix)] == "histogram" {
				root = strings.TrimSuffix(base, suffix)
			}
		}
		if typed[root] == "" {
			t.Fatalf("line %d: series %q has no preceding # TYPE", ln+1, name)
		}
		series[name] = val
	}
	return series
}

func TestWritePrometheusParses(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := buildSnapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	series := parseProm(t, buf.String())

	if got := series["soak_cells_total"]; got != 17 {
		t.Errorf("soak_cells_total = %g", got)
	}
	if got := series[`mc_worker_expansions_total{worker="1"}`]; got != 7 {
		t.Errorf("labeled counter = %g", got)
	}
	if got := series["mc_explore_states_per_sec"]; got != 1234.5 {
		t.Errorf("gauge = %g", got)
	}
	// Histogram buckets must be cumulative and end at +Inf == count.
	if got := series[`sim_learn_time_steps_bucket{le="1"}`]; got != 1 {
		t.Errorf("le=1 bucket = %g, want 1", got)
	}
	if got := series[`sim_learn_time_steps_bucket{le="4"}`]; got != 2 {
		t.Errorf("le=4 bucket = %g, want cumulative 2", got)
	}
	if got := series[`sim_learn_time_steps_bucket{le="+Inf"}`]; got != 3 {
		t.Errorf("+Inf bucket = %g, want 3", got)
	}
	if got := series["sim_learn_time_steps_count"]; got != 3 {
		t.Errorf("count = %g", got)
	}
	if got := series["sim_learn_time_steps_sum"]; got != 13 {
		t.Errorf("sum = %g", got)
	}
	// Determinism: a second render is byte-identical.
	var buf2 bytes.Buffer
	if err := buildSnapshot().WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("prometheus rendering is not deterministic")
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	t.Parallel()
	snap := buildSnapshot()
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	// +Inf cannot survive encoding/json; the writer keeps snapshots
	// finite everywhere else, so compare modulo the terminal bucket.
	for name, h := range snap.Histograms {
		bh := back.Histograms[name]
		if len(bh.Buckets) != len(h.Buckets) {
			t.Fatalf("%s: bucket count %d != %d", name, len(bh.Buckets), len(h.Buckets))
		}
		for i := range h.Buckets {
			if h.Buckets[i].Count != bh.Buckets[i].Count {
				t.Errorf("%s bucket %d: count %d != %d", name, i, bh.Buckets[i].Count, h.Buckets[i].Count)
			}
		}
	}
	if !reflect.DeepEqual(snap.Counters, back.Counters) {
		t.Errorf("counters: %v != %v", back.Counters, snap.Counters)
	}
	if !reflect.DeepEqual(snap.Gauges, back.Gauges) {
		t.Errorf("gauges: %v != %v", back.Gauges, snap.Gauges)
	}
	if !reflect.DeepEqual(snap.Events, back.Events) {
		t.Errorf("events: %v != %v", back.Events, snap.Events)
	}
}

// TestJSONInfinityRendersAsString pins that the +Inf bucket bound is
// JSON-encodable: encoding/json rejects +Inf float64, so the Bucket type
// must marshal it safely.
func TestJSONInfinityRendersAsString(t *testing.T) {
	t.Parallel()
	b := Bucket{UpperBound: math.Inf(1), Count: 2}
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatalf("marshal +Inf bucket: %v", err)
	}
	var back Bucket
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(back.UpperBound, 1) || back.Count != 2 {
		t.Fatalf("round trip = %+v", back)
	}
}

func TestWriteSnapshotFile(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	r := NewRegistry()
	r.Counter("a_total").Inc()

	promPath := filepath.Join(dir, "m.prom")
	if err := WriteSnapshotFile(r, promPath, FormatProm); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(promPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "a_total 1") {
		t.Errorf("prom file = %q", data)
	}

	jsonPath := filepath.Join(dir, "m.json")
	if err := WriteSnapshotFile(r, jsonPath, FormatJSON); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("json file does not parse: %v", err)
	}
	if snap.Counters["a_total"] != 1 {
		t.Errorf("snapshot = %+v", snap)
	}

	// A nil registry still writes a parseable (empty) artifact.
	nilPath := filepath.Join(dir, "nil.json")
	if err := WriteSnapshotFile(nil, nilPath, FormatJSON); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(nilPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("nil-registry json does not parse: %v", err)
	}

	if err := WriteSnapshotFile(r, filepath.Join(dir, "x"), "yaml"); err == nil {
		t.Error("unknown format accepted")
	}
}
