package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync/atomic"
)

// Histogram counts observations into fixed buckets (ascending upper
// bounds, +Inf implicit) and tracks the running sum. Observations are
// lock-free; a nil Histogram ignores them.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; immutable after creation
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records v into its bucket (first bound >= v; +Inf otherwise).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the running sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sumBits.Store(0)
}

// Bucket is one histogram bucket in a snapshot: the count of
// observations <= UpperBound (non-cumulative; the renderers cumulate).
type Bucket struct {
	// UpperBound is the bucket's inclusive upper bound; +Inf is the
	// catch-all bucket. Marshalled as the string Prometheus uses for le
	// ("+Inf"), since encoding/json rejects infinite float64s.
	UpperBound float64 `json:"-"`
	Count      int64   `json:"count"`
}

// bucketJSON is the wire form of Bucket.
type bucketJSON struct {
	UpperBound string `json:"le"`
	Count      int64  `json:"count"`
}

// MarshalJSON implements json.Marshaler.
func (b Bucket) MarshalJSON() ([]byte, error) {
	return json.Marshal(bucketJSON{UpperBound: promValue(b.UpperBound), Count: b.Count})
}

// UnmarshalJSON implements json.Unmarshaler.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var bj bucketJSON
	if err := json.Unmarshal(data, &bj); err != nil {
		return err
	}
	switch bj.UpperBound {
	case "+Inf":
		b.UpperBound = math.Inf(1)
	case "-Inf":
		b.UpperBound = math.Inf(-1)
	default:
		v, err := strconv.ParseFloat(bj.UpperBound, 64)
		if err != nil {
			return fmt.Errorf("obs: bad bucket bound %q: %w", bj.UpperBound, err)
		}
		b.UpperBound = v
	}
	b.Count = bj.Count
	return nil
}

// HistogramSnapshot is the point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.Count(),
		Sum:     h.Sum(),
		Buckets: make([]Bucket, len(h.counts)),
	}
	for i := range h.counts {
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		s.Buckets[i] = Bucket{UpperBound: ub, Count: h.counts[i].Load()}
	}
	return s
}

// ExpBuckets returns n ascending bounds start, start*factor, ... — the
// standard exponential ladder for step counts and sizes.
func ExpBuckets(start, factor float64, n int) []float64 {
	bs := make([]float64, n)
	v := start
	for i := range bs {
		bs[i] = v
		v *= factor
	}
	return bs
}

// StepBuckets is the shared ladder for step-count observations (learn
// times, recovery depths, shrink replays): powers of two from 1 to 32768.
var StepBuckets = ExpBuckets(1, 2, 16)

// DurationBuckets is the shared ladder for second-valued durations: 1ms
// to ~32s in powers of two.
var DurationBuckets = ExpBuckets(0.001, 2, 16)

// BatchBuckets is the ladder for coalescing sizes (frames per batch,
// writes per flush): powers of two from 1 to 4096, matching the wire
// layer's maximum batch.
var BatchBuckets = ExpBuckets(1, 2, 13)
