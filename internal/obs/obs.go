// Package obs is the zero-dependency observability layer: atomic
// counters, gauges, and fixed-bucket histograms collected in a Registry,
// a structured run-event sink, and profiling hooks, exposed as Prometheus
// text or a JSON snapshot.
//
// The whole package is built around a nil-sink fast path: a nil *Registry
// hands out nil metric handles, and every method on a nil handle is a
// single-branch no-op. Instrumented code therefore never checks "is
// observability on?" — it acquires its handles once per run (not per
// step) and updates them unconditionally; with observability off the
// updates compile down to a nil check and return. Instrumentation is
// observe-only: it never draws randomness, never feeds back into
// scheduling or protocol choices, and so cannot perturb the determinism
// contracts the sim/mc/soak layers pin (see DESIGN.md).
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil Counter ignores all updates.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n < 0 is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 value. The zero value is ready to use; a nil
// Gauge ignores all updates.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Registry collects named metrics and run events. A nil Registry is the
// disabled sink: every lookup returns nil and every emit is dropped, at
// the cost of one branch. Lookups take a mutex; instrumented code is
// expected to resolve its handles once per run, outside hot loops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	events   eventLog
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (registering on first use) the named counter. Names may
// carry a baked-in Prometheus label suffix, e.g.
// `mc_worker_expansions_total{worker="3"}`.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (registering on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (registering on first use) the named histogram with
// the given ascending bucket upper bounds (a +Inf bucket is implicit).
// Bounds are fixed at first registration; later calls reuse the existing
// histogram regardless of the bounds argument.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Reset zeroes every registered metric and clears the event log, keeping
// the registrations (handles held by instrumented code stay valid).
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.bits.Store(0)
	}
	for _, h := range r.hists {
		h.reset()
	}
	r.events.reset()
}

// Snapshot captures a consistent point-in-time view of every metric and
// the buffered events. A nil Registry yields the zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:      make(map[string]int64, len(r.counters)),
		Gauges:        make(map[string]float64, len(r.gauges)),
		Histograms:    make(map[string]HistogramSnapshot, len(r.hists)),
		Events:        r.events.snapshot(),
		DroppedEvents: r.events.dropped,
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Snapshot is a point-in-time copy of a Registry, ready for rendering.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Events     []Event                      `json:"events,omitempty"`
	// DroppedEvents counts events lost to the bounded event buffer.
	DroppedEvents int64 `json:"dropped_events,omitempty"`
}

// sortedKeys returns m's keys in sorted order (deterministic exposition).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Timer observes an elapsed wall-clock duration into a histogram — the
// lightweight profiling hook. StartTimer on a nil histogram returns a
// dead timer that never reads the clock.
type Timer struct {
	h     *Histogram
	start time.Time
}

// StartTimer begins timing into h (durations observed in seconds).
func StartTimer(h *Histogram) Timer {
	if h == nil {
		return Timer{}
	}
	return Timer{h: h, start: time.Now()}
}

// Stop observes the elapsed time and returns it (0 for a dead timer).
func (t Timer) Stop() time.Duration {
	if t.h == nil {
		return 0
	}
	d := time.Since(t.start)
	t.h.Observe(d.Seconds())
	return d
}
