package obs

import (
	"fmt"
	"math"
	"net/http"
	"sync"
	"testing"
)

// TestNilSinkIsSafe pins the disabled fast path: every operation on a nil
// registry and on nil handles must be a no-op, never a panic.
func TestNilSinkIsSafe(t *testing.T) {
	t.Parallel()
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", StepBuckets)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	c.Inc()
	c.Add(5)
	g.Set(3.5)
	h.Observe(7)
	r.Emit("kind", "k", "v")
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	if tm := StartTimer(nil); tm.Stop() != 0 {
		t.Fatal("dead timer must report 0")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Events) != 0 {
		t.Fatalf("nil snapshot not empty: %+v", snap)
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	c.Add(-10) // counters only go up
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := r.Counter("c"); again != c {
		t.Error("same name must return the same counter")
	}
	g := r.Gauge("g")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Errorf("gauge = %f, want 2.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 100} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 6 {
		t.Errorf("count = %d, want 6", s.Count)
	}
	if math.Abs(s.Sum-108) > 1e-9 {
		t.Errorf("sum = %f, want 108", s.Sum)
	}
	wantCounts := []int64{2, 2, 1, 1} // le=1: {0.5,1}; le=2: {1.5,2}; le=4: {3}; +Inf: {100}
	for i, b := range s.Buckets {
		if b.Count != wantCounts[i] {
			t.Errorf("bucket %d (le=%g) = %d, want %d", i, b.UpperBound, b.Count, wantCounts[i])
		}
	}
	if !math.IsInf(s.Buckets[3].UpperBound, 1) {
		t.Errorf("last bucket bound = %g, want +Inf", s.Buckets[3].UpperBound)
	}
}

func TestResetKeepsRegistrations(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", StepBuckets)
	c.Add(3)
	h.Observe(2)
	r.Emit("e")
	r.Reset()
	if c.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("reset did not zero the metrics")
	}
	if ev := r.Snapshot().Events; len(ev) != 0 {
		t.Fatalf("reset left %d events", len(ev))
	}
	c.Inc() // the old handle must still feed the registry
	if got := r.Snapshot().Counters["c"]; got != 1 {
		t.Fatalf("post-reset counter snapshot = %d, want 1", got)
	}
}

func TestEventsOrderAndBound(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.Emit("first", "k", "v", "dangling") // trailing unpaired key ignored
	r.Emit("second")
	snap := r.Snapshot()
	if len(snap.Events) != 2 || snap.Events[0].Kind != "first" || snap.Events[1].Kind != "second" {
		t.Fatalf("events = %+v", snap.Events)
	}
	if snap.Events[0].Seq != 1 || snap.Events[1].Seq != 2 {
		t.Fatalf("seqs = %d, %d", snap.Events[0].Seq, snap.Events[1].Seq)
	}
	if got := snap.Events[0].Fields; len(got) != 1 || got["k"] != "v" {
		t.Fatalf("fields = %v", got)
	}
	for i := 0; i < maxBufferedEvents+10; i++ {
		r.Emit("flood")
	}
	snap = r.Snapshot()
	if len(snap.Events) != maxBufferedEvents {
		t.Fatalf("buffer holds %d events, want %d", len(snap.Events), maxBufferedEvents)
	}
	if snap.DroppedEvents != 12 {
		t.Fatalf("dropped = %d, want 12", snap.DroppedEvents)
	}
	if last := snap.Events[len(snap.Events)-1]; last.Seq != int64(maxBufferedEvents+12) {
		t.Fatalf("last seq = %d, want %d", last.Seq, maxBufferedEvents+12)
	}
}

// TestConcurrentUpdates exercises every update path from many goroutines
// at once; run under -race this is the package's data-race proof, and the
// final counts prove no increment was lost.
func TestConcurrentUpdates(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("shared_total")
			own := r.Counter(fmt.Sprintf(`worker_total{worker="%d"}`, g))
			h := r.Histogram("obs_hist", StepBuckets)
			for i := 0; i < per; i++ {
				c.Inc()
				own.Inc()
				h.Observe(float64(i % 7))
				r.Gauge("level").Set(float64(i))
				if i%100 == 0 {
					r.Emit("tick", "g", fmt.Sprint(g))
				}
			}
		}(g)
	}
	wg.Wait()
	snap := r.Snapshot()
	if got := snap.Counters["shared_total"]; got != goroutines*per {
		t.Errorf("shared counter = %d, want %d", got, goroutines*per)
	}
	for g := 0; g < goroutines; g++ {
		name := fmt.Sprintf(`worker_total{worker="%d"}`, g)
		if got := snap.Counters[name]; got != per {
			t.Errorf("%s = %d, want %d", name, got, per)
		}
	}
	if got := snap.Histograms["obs_hist"].Count; got != goroutines*per {
		t.Errorf("histogram count = %d, want %d", got, goroutines*per)
	}
}

func TestStartPprofServes(t *testing.T) {
	t.Parallel()
	addr, stop, err := StartPprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop() //nolint:errcheck
	resp, err := http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}
