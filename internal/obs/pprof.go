package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// StartPprof serves the standard net/http/pprof handlers on addr (e.g.
// "localhost:6060") on a private mux, so importing this package never
// mutates http.DefaultServeMux. It returns the bound address (useful with
// ":0") and a shutdown func. This is the opt-in profiling hook behind
// stpsoak -pprof.
func StartPprof(addr string) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: pprof listen on %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return ln.Addr().String(), srv.Close, nil
}
