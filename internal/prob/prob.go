// Package prob implements the probabilistic evaluation the paper's §6
// asks for: "it would be interesting to see how allowing a small chance
// of error would affect our results". Instead of an adversarial channel,
// runs are driven by seeded random schedules, and the quantity of
// interest is the empirical probability that a protocol violates safety
// or fails to complete.
//
// Theorems 1 and 2 say the POSSIBILITY of failure is unavoidable once
// |X| > alpha(m); this package measures how small the PROBABILITY can be
// made (e.g. by widening modseq's sequence-number window).
package prob

import (
	"fmt"
	"runtime"
	"sync"

	"seqtx/internal/chanmodel"
	"seqtx/internal/channel"
	"seqtx/internal/protocol"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
)

// Estimate is a Monte-Carlo tally over independent runs.
type Estimate struct {
	Trials     int
	Violations int // runs that broke safety
	Completed  int // runs with Y = X within the step budget
	Stalled    int // runs that neither completed nor violated
	Steps      int // scheduler steps summed over all trials
	Items      int // output items delivered summed over all trials
}

// ViolationRate returns the fraction of trials that broke safety.
func (e Estimate) ViolationRate() float64 {
	if e.Trials == 0 {
		return 0
	}
	return float64(e.Violations) / float64(e.Trials)
}

// CompletionRate returns the fraction of trials that delivered all of X.
func (e Estimate) CompletionRate() float64 {
	if e.Trials == 0 {
		return 0
	}
	return float64(e.Completed) / float64(e.Trials)
}

// Goodput returns delivered items per scheduler step, aggregated over
// all trials — the frontier's y-axis. Zero when no steps ran.
func (e Estimate) Goodput() float64 {
	if e.Steps == 0 {
		return 0
	}
	return float64(e.Items) / float64(e.Steps)
}

// String renders the estimate.
func (e Estimate) String() string {
	return fmt.Sprintf("trials=%d violations=%d (%.1f%%) completed=%d stalled=%d",
		e.Trials, e.Violations, 100*e.ViolationRate(), e.Completed, e.Stalled)
}

// Config controls a Monte-Carlo campaign.
type Config struct {
	// Trials is the number of independent runs (required > 0).
	Trials int
	// MaxSteps bounds each run (default 600 + 200·|X|).
	MaxSteps int
	// Seed seeds trial i with Seed + i.
	Seed int64
	// FairnessBudget is the finite-delay budget wrapped around the random
	// schedule (default 8). Larger budgets mean harsher reordering and
	// more stale traffic.
	FairnessBudget int
	// DropWeight biases the random schedule toward drop actions on del
	// channels (0 = never drop).
	DropWeight int
	// Parallelism is the number of worker goroutines running trials
	// (default: GOMAXPROCS). Results are independent of the worker count.
	Parallelism int
	// NewAdversary, when set, overrides the default random schedule: trial
	// i runs under NewAdversary(i). Note that the finite-delay wrapper is
	// NOT applied to custom adversaries: on dup channels forced redelivery
	// of everything overdue floods the receiver with stale copies, which
	// models a hostile network rather than a merely random one. Custom
	// factories must guarantee liveness themselves (e.g. build on
	// sim.NewRoundRobin or sim.NewReplayer).
	NewAdversary func(trial int) sim.Adversary
	// Model, when set, drives every trial with the quantitative channel
	// model instead of the adversarial random schedule: trial i runs
	// under chanmodel.NewAdversary(Model, Seed+i). The channel kind
	// passed to Run should be Model.Kind() (checked). Mutually exclusive
	// with NewAdversary; DropWeight and FairnessBudget are ignored.
	Model chanmodel.Model
}

func (c *Config) normalize(inputLen int) error {
	if c.Trials <= 0 {
		return fmt.Errorf("prob: Trials must be positive, got %d", c.Trials)
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 600 + 200*inputLen
	}
	if c.FairnessBudget == 0 {
		c.FairnessBudget = 8
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return nil
}

// Run estimates failure probabilities of (spec, input, kind) under random
// fair schedules. Trials are independent and run across Parallelism
// workers; the tally is deterministic for a fixed Seed regardless of the
// worker count (each trial's adversary is seeded by its index alone).
func Run(spec protocol.Spec, input seq.Seq, kind channel.Kind, cfg Config) (Estimate, error) {
	if err := cfg.normalize(len(input)); err != nil {
		return Estimate{}, err
	}
	if cfg.Model != nil {
		if cfg.NewAdversary != nil {
			return Estimate{}, fmt.Errorf("prob: Model and NewAdversary are mutually exclusive")
		}
		if err := chanmodel.Compatible(cfg.Model, kind); err != nil {
			return Estimate{}, fmt.Errorf("prob: %w", err)
		}
	}
	type outcome struct {
		violation bool
		completed bool
		steps     int
		items     int
		err       error
	}
	outcomes := make([]outcome, cfg.Trials)
	trials := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range trials {
				var adv sim.Adversary
				switch {
				case cfg.Model != nil:
					adv = chanmodel.NewAdversary(cfg.Model, cfg.Seed+int64(i))
				case cfg.NewAdversary != nil:
					adv = cfg.NewAdversary(i)
				case cfg.DropWeight > 0:
					adv = sim.NewFinDelay(sim.NewRandomDropper(cfg.Seed+int64(i), cfg.DropWeight), cfg.FairnessBudget)
				default:
					adv = sim.NewFinDelay(sim.NewRandom(cfg.Seed+int64(i)), cfg.FairnessBudget)
				}
				res, err := sim.RunProtocol(spec, input, kind, adv, sim.Config{
					MaxSteps:         cfg.MaxSteps,
					StopWhenComplete: true,
				})
				outcomes[i] = outcome{
					violation: res.SafetyViolation != nil,
					completed: res.OutputComplete,
					steps:     res.Steps,
					items:     len(res.Output),
					err:       err,
				}
			}
		}()
	}
	for i := 0; i < cfg.Trials; i++ {
		trials <- i
	}
	close(trials)
	wg.Wait()

	var est Estimate
	for i, o := range outcomes {
		if o.err != nil {
			return est, fmt.Errorf("prob: trial %d: %w", i, o.err)
		}
		est.Trials++
		est.Steps += o.steps
		est.Items += o.items
		switch {
		case o.violation:
			est.Violations++
		case o.completed:
			est.Completed++
		default:
			est.Stalled++
		}
	}
	return est, nil
}
