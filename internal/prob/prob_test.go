package prob

import (
	"testing"

	"seqtx/internal/chanmodel"
	"seqtx/internal/channel"
	"seqtx/internal/protocol/alphaproto"
	"seqtx/internal/protocol/modseq"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
)

func TestConfigValidation(t *testing.T) {
	t.Parallel()
	spec := alphaproto.MustNew(2)
	if _, err := Run(spec, seq.FromInts(0), channel.KindDup, Config{}); err == nil {
		t.Fatal("zero trials accepted")
	}
}

func TestTightProtocolNeverFails(t *testing.T) {
	t.Parallel()
	// Monte Carlo over the tight protocol within its lawful X: zero
	// violations, full completion — probability 0 of failure matches the
	// theorem's possibility 0.
	est, err := Run(alphaproto.MustNew(3), seq.FromInts(2, 0, 1), channel.KindDup, Config{
		Trials: 50,
		Seed:   9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.Violations != 0 {
		t.Errorf("tight protocol violated safety in %d/%d random runs", est.Violations, est.Trials)
	}
	if est.Completed != est.Trials {
		t.Errorf("completed %d/%d (stalled %d)", est.Completed, est.Trials, est.Stalled)
	}
	if est.ViolationRate() != 0 || est.CompletionRate() != 1 {
		t.Errorf("rates = %f, %f", est.ViolationRate(), est.CompletionRate())
	}
}

func TestModseqWindowOneFailsOften(t *testing.T) {
	t.Parallel()
	// The degenerate window: stale replays collide constantly.
	est, err := Run(modseq.MustNew(2, 1), seq.FromInts(0, 1, 0, 1), channel.KindDup, Config{
		Trials: 40,
		Seed:   4,
		NewAdversary: func(trial int) sim.Adversary {
			return sim.NewReplayer(int64(trial)+100, 2)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.Violations == 0 {
		t.Error("window-1 modseq survived heavy replay in every run")
	}
}

func TestWideWindowFailsRarely(t *testing.T) {
	t.Parallel()
	// Window >= input length: no in-run modular collision is possible.
	est, err := Run(modseq.MustNew(2, 8), seq.FromInts(0, 1, 0, 1), channel.KindDup, Config{
		Trials: 30,
		Seed:   5,
		NewAdversary: func(trial int) sim.Adversary {
			return sim.NewReplayer(int64(trial)+200, 2)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.Violations != 0 {
		t.Errorf("window-8 modseq violated safety %d times on a 4-item input", est.Violations)
	}
	if est.Completed != est.Trials {
		t.Errorf("completed %d/%d", est.Completed, est.Trials)
	}
}

func TestDropWeightPathOnDelChannel(t *testing.T) {
	t.Parallel()
	// The default factory with drops: the tight protocol still never
	// violates; completion may occasionally stall within budget, which is
	// acceptable — random drops are not fairness-bounded.
	est, err := Run(alphaproto.MustNew(3), seq.FromInts(1, 2), channel.KindDel, Config{
		Trials:     30,
		Seed:       6,
		DropWeight: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.Violations != 0 {
		t.Errorf("tight protocol violated safety under random drops: %d", est.Violations)
	}
	if est.Trials != 30 {
		t.Errorf("Trials = %d", est.Trials)
	}
	if est.String() == "" {
		t.Error("empty String()")
	}
}

func TestEmptyEstimateRates(t *testing.T) {
	t.Parallel()
	var e Estimate
	if e.ViolationRate() != 0 || e.CompletionRate() != 0 || e.Goodput() != 0 {
		t.Error("zero estimate has nonzero rates")
	}
}

func TestModelDrivenEstimate(t *testing.T) {
	t.Parallel()
	// A quantitative channel model instead of the adversarial schedule:
	// the tight protocol under 20% i.i.d. loss completes every trial
	// (retransmissions draw fresh decisions) without violations, and the
	// goodput accounting is populated and bounded by the lock-step ideal.
	model := chanmodel.MustParse("iid-loss(p=0.2)")
	est, err := Run(alphaproto.MustNew(3), seq.FromInts(1, 2, 0), model.Kind(), Config{
		Trials: 40,
		Seed:   11,
		Model:  model,
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.Violations != 0 {
		t.Errorf("tight protocol violated safety under iid-loss: %d", est.Violations)
	}
	if est.Completed != est.Trials {
		t.Errorf("completed %d/%d (stalled %d)", est.Completed, est.Trials, est.Stalled)
	}
	if est.Steps == 0 || est.Items != 3*est.Trials {
		t.Errorf("accounting: Steps=%d Items=%d want Items=%d", est.Steps, est.Items, 3*est.Trials)
	}
	if g := est.Goodput(); g <= 0 || g > 0.25 {
		t.Errorf("goodput %.4f outside (0, 0.25] (lock-step ideal is 1 item / 4 steps)", g)
	}
}

func TestModelDeterministicAcrossParallelism(t *testing.T) {
	t.Parallel()
	model := chanmodel.MustParse("ge(pgb=0.1,pbg=0.4,lg=0.02,lb=0.8)")
	run := func(par int) Estimate {
		est, err := Run(alphaproto.MustNew(3), seq.FromInts(0, 1, 2), model.Kind(), Config{
			Trials: 24, Seed: 3, Model: model, Parallelism: par,
		})
		if err != nil {
			t.Fatal(err)
		}
		return est
	}
	if a, b := run(1), run(8); a != b {
		t.Errorf("estimate depends on worker count: %+v vs %+v", a, b)
	}
}

func TestModelKindMismatchRejected(t *testing.T) {
	t.Parallel()
	model := chanmodel.MustParse("iid-loss(p=0.2)")
	if _, err := Run(alphaproto.MustNew(2), seq.FromInts(0), channel.KindDup, Config{
		Trials: 1, Model: model,
	}); err == nil {
		t.Error("loss model on a dup channel accepted")
	}
	if _, err := Run(alphaproto.MustNew(2), seq.FromInts(0), channel.KindDel, Config{
		Trials: 1, Model: model,
		NewAdversary: func(int) sim.Adversary { return sim.NewRoundRobin() },
	}); err == nil {
		t.Error("Model together with NewAdversary accepted")
	}
}
