package prob

import (
	"testing"

	"seqtx/internal/channel"
	"seqtx/internal/protocol/alphaproto"
	"seqtx/internal/protocol/modseq"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
)

func TestConfigValidation(t *testing.T) {
	t.Parallel()
	spec := alphaproto.MustNew(2)
	if _, err := Run(spec, seq.FromInts(0), channel.KindDup, Config{}); err == nil {
		t.Fatal("zero trials accepted")
	}
}

func TestTightProtocolNeverFails(t *testing.T) {
	t.Parallel()
	// Monte Carlo over the tight protocol within its lawful X: zero
	// violations, full completion — probability 0 of failure matches the
	// theorem's possibility 0.
	est, err := Run(alphaproto.MustNew(3), seq.FromInts(2, 0, 1), channel.KindDup, Config{
		Trials: 50,
		Seed:   9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.Violations != 0 {
		t.Errorf("tight protocol violated safety in %d/%d random runs", est.Violations, est.Trials)
	}
	if est.Completed != est.Trials {
		t.Errorf("completed %d/%d (stalled %d)", est.Completed, est.Trials, est.Stalled)
	}
	if est.ViolationRate() != 0 || est.CompletionRate() != 1 {
		t.Errorf("rates = %f, %f", est.ViolationRate(), est.CompletionRate())
	}
}

func TestModseqWindowOneFailsOften(t *testing.T) {
	t.Parallel()
	// The degenerate window: stale replays collide constantly.
	est, err := Run(modseq.MustNew(2, 1), seq.FromInts(0, 1, 0, 1), channel.KindDup, Config{
		Trials: 40,
		Seed:   4,
		NewAdversary: func(trial int) sim.Adversary {
			return sim.NewReplayer(int64(trial)+100, 2)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.Violations == 0 {
		t.Error("window-1 modseq survived heavy replay in every run")
	}
}

func TestWideWindowFailsRarely(t *testing.T) {
	t.Parallel()
	// Window >= input length: no in-run modular collision is possible.
	est, err := Run(modseq.MustNew(2, 8), seq.FromInts(0, 1, 0, 1), channel.KindDup, Config{
		Trials: 30,
		Seed:   5,
		NewAdversary: func(trial int) sim.Adversary {
			return sim.NewReplayer(int64(trial)+200, 2)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.Violations != 0 {
		t.Errorf("window-8 modseq violated safety %d times on a 4-item input", est.Violations)
	}
	if est.Completed != est.Trials {
		t.Errorf("completed %d/%d", est.Completed, est.Trials)
	}
}

func TestDropWeightPathOnDelChannel(t *testing.T) {
	t.Parallel()
	// The default factory with drops: the tight protocol still never
	// violates; completion may occasionally stall within budget, which is
	// acceptable — random drops are not fairness-bounded.
	est, err := Run(alphaproto.MustNew(3), seq.FromInts(1, 2), channel.KindDel, Config{
		Trials:     30,
		Seed:       6,
		DropWeight: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.Violations != 0 {
		t.Errorf("tight protocol violated safety under random drops: %d", est.Violations)
	}
	if est.Trials != 30 {
		t.Errorf("Trials = %d", est.Trials)
	}
	if est.String() == "" {
		t.Error("empty String()")
	}
}

func TestEmptyEstimateRates(t *testing.T) {
	t.Parallel()
	var e Estimate
	if e.ViolationRate() != 0 || e.CompletionRate() != 0 {
		t.Error("zero estimate has nonzero rates")
	}
}
