// Package abp implements the alternating-bit protocol ([BSW69]; the "ABP"
// of the paper's §5): stop-and-wait with a one-bit header, retransmitting
// on every spontaneous step. Its guarantees are channel-dependent, which
// is exactly why the paper uses it:
//
//   - On a FIFO channel with loss and duplication it solves STP for every
//     sequence: the bit distinguishes "new item" from "retransmission".
//   - Under reordering it is unsafe: a stale data message whose bit
//     happens to match the receiver's expectation is accepted as new.
//     Experiment T7 exhibits the violating run found by the model checker.
//
// Message alphabets are finite but the solvable X (on FIFO) is infinite —
// no contradiction with Theorem 1/2, whose channels reorder.
package abp

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"

	"seqtx/internal/msg"
	"seqtx/internal/protocol"
	"seqtx/internal/seq"
)

// DataMsg encodes item v under alternating bit b.
func DataMsg(b int, v seq.Item) msg.Msg { return msg.Msg(fmt.Sprintf("b:%d:%d", b&1, int(v))) }

// AckMsg encodes the acknowledgement for bit b.
func AckMsg(b int) msg.Msg { return msg.Msg(fmt.Sprintf("k:%d", b&1)) }

// tables is the per-m interned codec: every member of M^S/M^R with send
// singletons, write singletons, and a decode map, byte-identical to
// DataMsg/AckMsg. Shared read-only by every process built at the same m.
type tables struct {
	senderAlpha   msg.Alphabet
	receiverAlpha msg.Alphabet
	ack           [2]msg.Msg
	ackSend       [2][]msg.Msg
	dataSend      [2][][]msg.Msg // [bit][value]
	writeOne      []seq.Seq
	dataVal       map[msg.Msg]bitValue
}

type bitValue struct{ b, v int }

var tablesCache sync.Map // int (m) → *tables

func tablesFor(m int) *tables {
	if t, ok := tablesCache.Load(m); ok {
		return t.(*tables)
	}
	if m < 0 {
		m = 0
	}
	t := &tables{
		writeOne: make([]seq.Seq, m),
		dataVal:  make(map[msg.Msg]bitValue, 2*m),
	}
	senderMsgs := make([]msg.Msg, 0, 2*m)
	for b := 0; b < 2; b++ {
		t.ack[b] = AckMsg(b)
		t.ackSend[b] = []msg.Msg{t.ack[b]}
		t.dataSend[b] = make([][]msg.Msg, m)
		for v := 0; v < m; v++ {
			dm := DataMsg(b, seq.Item(v))
			senderMsgs = append(senderMsgs, dm)
			t.dataSend[b][v] = []msg.Msg{dm}
			t.dataVal[dm] = bitValue{b, v}
		}
	}
	for v := 0; v < m; v++ {
		t.writeOne[v] = seq.Seq{seq.Item(v)}
	}
	t.senderAlpha = msg.MustNewAlphabet(senderMsgs...)
	t.receiverAlpha = msg.MustNewAlphabet(t.ack[0], t.ack[1])
	actual, _ := tablesCache.LoadOrStore(m, t)
	return actual.(*tables)
}

// write returns the shared one-item tape for v, allocating only for
// out-of-domain values (which only corrupted messages can carry).
func (t *tables) write(v int) seq.Seq {
	if v >= 0 && v < len(t.writeOne) {
		return t.writeOne[v]
	}
	return seq.Seq{seq.Item(v)}
}

// New returns the protocol spec for domain size m.
func New(m int) (protocol.Spec, error) {
	if m < 0 {
		return protocol.Spec{}, fmt.Errorf("abp: negative domain size %d", m)
	}
	return protocol.Spec{
		Name:        fmt.Sprintf("abp(m=%d)", m),
		Description: "alternating-bit stop-and-wait; safe on FIFO, unsafe under reordering",
		NewSender: func(input seq.Seq) (protocol.Sender, error) {
			for _, v := range input {
				if int(v) < 0 || int(v) >= m {
					return nil, fmt.Errorf("abp: item %d outside domain of size %d", int(v), m)
				}
			}
			return &sender{m: m, t: tablesFor(m), input: input.Clone()}, nil
		},
		NewReceiver: func() (protocol.Receiver, error) {
			return &receiver{m: m, t: tablesFor(m)}, nil
		},
	}, nil
}

// MustNew is New for validated parameters; it panics on error.
func MustNew(m int) protocol.Spec {
	s, err := New(m)
	if err != nil {
		panic(err)
	}
	return s
}

// sender transmits input[idx] under bit idx%2, retransmitting each tick,
// advancing on the matching acknowledgement.
type sender struct {
	m     int
	t     *tables
	input seq.Seq
	idx   int
}

var _ protocol.Sender = (*sender)(nil)

func (s *sender) Step(ev protocol.Event) []msg.Msg {
	switch ev.Kind {
	case protocol.Recv:
		if s.idx < len(s.input) && ev.Msg == s.t.ack[s.idx&1] {
			s.idx++
		}
		return nil
	case protocol.Tick:
		if s.idx < len(s.input) {
			if v := int(s.input[s.idx]); v >= 0 && v < s.m {
				return s.t.dataSend[s.idx&1][v]
			}
			return []msg.Msg{DataMsg(s.idx, s.input[s.idx])}
		}
		return nil
	default:
		return nil
	}
}

func (s *sender) Alphabet() msg.Alphabet { return s.t.senderAlpha }

func (s *sender) Done() bool { return s.idx >= len(s.input) }

func (s *sender) Clone() protocol.Sender {
	// The input tape is never mutated after construction, so clones share
	// it: the model checker clones on every explored transition.
	return &sender{m: s.m, t: s.t, input: s.input, idx: s.idx}
}

func (s *sender) Key() string { return fmt.Sprintf("abpS{%d}", s.idx) }

func (s *sender) EncodeKey(buf []byte) []byte {
	buf = append(buf, 'B')
	return binary.AppendUvarint(buf, uint64(s.idx))
}

// Scramble implements protocol.Scrambler: the position lands anywhere in
// [0, len(input)] — the only field ABP's sender has.
func (s *sender) Scramble(rng *rand.Rand) {
	s.idx = rng.Intn(len(s.input) + 1)
}

// receiver accepts data whose bit matches its expectation, acknowledging
// every data message with the bit it carried.
type receiver struct {
	m       int
	t       *tables
	written int
}

var _ protocol.Receiver = (*receiver)(nil)

func (r *receiver) Step(ev protocol.Event) ([]msg.Msg, seq.Seq) {
	if ev.Kind != protocol.Recv {
		return nil, nil
	}
	bv, ok := r.t.dataVal[ev.Msg]
	if !ok {
		// Non-canonical spelling (corruption): the pre-interning parse,
		// which accepts a superset of the table's encodings. The scanned
		// locals live only in this branch so the fast path stays
		// allocation-free (&b would otherwise spill bv to the heap on
		// every call).
		var b, v int
		if _, err := fmt.Sscanf(string(ev.Msg), "b:%d:%d", &b, &v); err != nil {
			return nil, nil
		}
	}
	if bv.b == r.written&1 {
		r.written++
		return r.t.ackSend[bv.b&1], r.t.write(bv.v)
	}
	// Retransmission of the previous item: re-acknowledge its bit.
	return r.t.ackSend[bv.b&1], nil
}

func (r *receiver) Alphabet() msg.Alphabet { return r.t.receiverAlpha }

func (r *receiver) Clone() protocol.Receiver {
	cp := *r
	return &cp
}

// Key quotients the state to the expected bit: Step reads written only
// as written&1, so states of equal parity are behaviourally identical.
// (The write count itself is recoverable from |Y|, which every global
// state key tracks separately — the quotient merges nothing at the world
// level; it matters to the stabilization checker, whose recurrence
// analysis needs behavioural state to be finite.)
func (r *receiver) Key() string { return fmt.Sprintf("abpR{%d}", r.written&1) }

func (r *receiver) EncodeKey(buf []byte) []byte {
	return append(buf, 'b', byte(r.written&1))
}

// Scramble implements protocol.Scrambler: the expected bit flips or not.
func (r *receiver) Scramble(rng *rand.Rand) {
	r.written = rng.Intn(2)
}
