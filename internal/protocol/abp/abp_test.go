package abp_test

import (
	"testing"

	"seqtx/internal/channel"
	"seqtx/internal/protocol"
	"seqtx/internal/protocol/abp"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
	"seqtx/internal/trace"
)

func TestValidation(t *testing.T) {
	t.Parallel()
	if _, err := abp.New(-1); err == nil {
		t.Fatal("negative m accepted")
	}
	spec := abp.MustNew(2)
	if _, err := spec.NewSender(seq.FromInts(3)); err == nil {
		t.Error("out-of-domain input accepted")
	}
	if _, err := spec.NewSender(seq.FromInts(0, 0, 1)); err != nil {
		t.Errorf("repetitions must be allowed on FIFO: %v", err)
	}
}

func TestAlphabetSizes(t *testing.T) {
	t.Parallel()
	spec := abp.MustNew(3)
	s, _ := spec.NewSender(seq.FromInts(0))
	if got := s.Alphabet().Size(); got != 6 {
		t.Errorf("|M^S| = %d, want 2m = 6", got)
	}
	r, _ := spec.NewReceiver()
	if got := r.Alphabet().Size(); got != 2 {
		t.Errorf("|M^R| = %d, want 2", got)
	}
}

func TestCompletesOnLossyDupFIFO(t *testing.T) {
	t.Parallel()
	spec := abp.MustNew(2)
	input := seq.FromInts(0, 0, 1, 0, 1, 1) // repetitions stress the bit logic
	advs := []sim.Adversary{
		sim.NewRoundRobin(),
		sim.NewBudgetDropper(1, 6),
		sim.NewFinDelay(sim.NewRandom(4), 10),
	}
	for _, adv := range advs {
		res, err := sim.RunProtocol(spec, input, channel.KindFIFO, adv,
			sim.Config{MaxSteps: 6000, StopWhenComplete: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.SafetyViolation != nil {
			t.Errorf("%s: safety on FIFO: %v", adv.Name(), res.SafetyViolation)
		}
		if !res.OutputComplete {
			t.Errorf("%s: incomplete: %s", adv.Name(), res.Output)
		}
	}
}

func TestDuplicationOnFIFOIsHarmless(t *testing.T) {
	t.Parallel()
	// Hand-drive duplicated deliveries: adjacent copies must be rejected
	// by the bit check.
	spec := abp.MustNew(2)
	r, _ := spec.NewReceiver()
	sends, writes := r.Step(protocol.RecvEvent(abp.DataMsg(0, 1)))
	if len(writes) != 1 || len(sends) != 1 || sends[0] != abp.AckMsg(0) {
		t.Fatalf("first copy: %v %v", sends, writes)
	}
	sends, writes = r.Step(protocol.RecvEvent(abp.DataMsg(0, 1)))
	if len(writes) != 0 {
		t.Fatalf("duplicate accepted: wrote %v", writes)
	}
	if len(sends) != 1 || sends[0] != abp.AckMsg(0) {
		t.Fatalf("duplicate not re-acked: %v", sends)
	}
}

func TestSenderIgnoresWrongBitAck(t *testing.T) {
	t.Parallel()
	spec := abp.MustNew(2)
	s, _ := spec.NewSender(seq.FromInts(1, 0))
	s.Step(protocol.TickEvent())
	s.Step(protocol.RecvEvent(abp.AckMsg(1))) // wrong bit
	if s.Done() {
		t.Fatal("wrong-bit ack advanced the sender")
	}
	out := s.Step(protocol.TickEvent())
	if len(out) != 1 || out[0] != abp.DataMsg(0, 1) {
		t.Fatalf("tick sends %v, want b:0:1", out)
	}
	s.Step(protocol.RecvEvent(abp.AckMsg(0)))
	out = s.Step(protocol.TickEvent())
	if len(out) != 1 || out[0] != abp.DataMsg(1, 0) {
		t.Fatalf("tick sends %v, want b:1:0", out)
	}
}

// TestUnsafeUnderReordering exhibits §5's premise: ABP breaks on a
// reordering channel. A stale data message with a matching bit is
// accepted as new. We drive the run by hand.
func TestUnsafeUnderReordering(t *testing.T) {
	t.Parallel()
	spec := abp.MustNew(2)
	link, err := channel.NewLinkOfKind(channel.KindDel) // reorder+delete
	if err != nil {
		t.Fatal(err)
	}
	// X = 0.1: a stale duplicate of b:0:0 delivered after item 2 makes
	// Y = 0.1.0, not a prefix of X.
	w, err := sim.New(spec, seq.FromInts(0, 1), link)
	if err != nil {
		t.Fatal(err)
	}
	steps := []trace.Action{
		trace.TickS(), // send b:0:0 (copy 1)
		trace.TickS(), // retransmit b:0:0 (copy 2)
		trace.Deliver(channel.SToR, abp.DataMsg(0, 0)), // R writes 0, acks k:0
		trace.Deliver(channel.RToS, abp.AckMsg(0)),     // S advances
		trace.TickS(), // send b:1:1
		trace.Deliver(channel.SToR, abp.DataMsg(1, 1)), // R writes 1, acks k:1
		trace.Deliver(channel.SToR, abp.DataMsg(0, 0)), // STALE copy 2: bit matches!
	}
	for i, act := range steps {
		if err := w.Apply(act); err != nil {
			t.Fatalf("step %d (%s): %v", i, act, err)
		}
	}
	if w.SafetyViolation == nil {
		t.Fatalf("no safety violation; output = %s", w.Output)
	}
}
