// Package afwz implements a stand-in for the protocol of [AFWZ89]
// ("Reliable communication using unreliable channels", cited by the paper
// as a manuscript): a solution to X-STP(del) for the countable X of ALL
// finite sequences over a finite domain — beyond alpha(m) — that is
// correspondingly NOT bounded in the sense of Definition 2.
//
// The paper only tells us what it needs from [AFWZ89] (§5): the sender
// reads the whole input sequence and transmits the data items in REVERSE
// order, the receiver thereby learns a suffix, and the number of steps the
// receiver needs for the next data item depends on the history of the run
// (unboundedness). This package realizes those properties with a gated
// unary handshake (the substitution is recorded in DESIGN.md):
//
//	S sends x_n, then x_{n-1}, ..., then x_1, then an "end" marker — one
//	message at a time, sending the next only after an acknowledgement for
//	the previous arrived. R acknowledges every delivery and buffers the
//	arriving items; when "end" arrives it writes the whole sequence.
//
// Why this is safe in EVERY run of a del channel (which cannot duplicate
// or create messages): S has sent k+1 messages only if it received k
// acknowledgements; R sends one acknowledgement per delivery; so all k
// previous messages were delivered before message k+1 was even sent.
// Delivery order therefore equals send order despite reordering, and the
// buffer R holds at "end" is exactly x_n, ..., x_1.
//
// Liveness holds on the finite-delay-fair runs (every sent copy is
// eventually delivered — the fairness the paper itself adopts at the end
// of §3). If the adversary deletes a copy the protocol stalls, safely:
// with a single copy ever in flight, a deletion is an unfair run.
//
// Why it is unbounded (Definition 2): R knows no x_i — not even x_1 —
// until "end" arrives, because before that it cannot know how many items
// remain; so t_1 = ... = t_n = (time of "end"), and the number of steps to
// learn the next item from an arbitrary point grows with |X| rather than
// being bounded by any f(i). Experiment T6 measures exactly this.
//
// Restriction: this is a del/reorder-channel protocol. On dup channels
// the gating premise fails (replayed acknowledgements let S rush ahead of
// undelivered items), as it must: Theorem 1 says X-STP(dup) is unsolvable
// for this X. Experiments exercise it only on del and reorder links.
package afwz

import (
	"encoding/binary"
	"fmt"
	"strings"
	"sync"

	"seqtx/internal/msg"
	"seqtx/internal/protocol"
	"seqtx/internal/seq"
)

// ItemMsg encodes the reverse-order data message for item v.
func ItemMsg(v seq.Item) msg.Msg { return msg.Msg(fmt.Sprintf("r:%d", int(v))) }

// EndMsg is the end-of-sequence marker.
const EndMsg = msg.Msg("end")

// AckMsg is the receiver's (only) message.
const AckMsg = msg.Msg("ack")

// ackSend and endSend are the shared one-message send slices for the
// constant messages (see the Step contract in package protocol).
var (
	ackSend = []msg.Msg{AckMsg}
	endSend = []msg.Msg{EndMsg}
)

// tables is the per-m interned codec: item messages with send
// singletons and a decode map, byte-identical to ItemMsg.
type tables struct {
	senderAlpha msg.Alphabet
	itemSend    [][]msg.Msg
	itemVal     map[msg.Msg]seq.Item
}

var tablesCache sync.Map // int (m) → *tables

func tablesFor(m int) *tables {
	if t, ok := tablesCache.Load(m); ok {
		return t.(*tables)
	}
	if m < 0 {
		m = 0
	}
	t := &tables{
		itemSend: make([][]msg.Msg, m),
		itemVal:  make(map[msg.Msg]seq.Item, m),
	}
	msgs := make([]msg.Msg, 0, m+1)
	for v := 0; v < m; v++ {
		im := ItemMsg(seq.Item(v))
		msgs = append(msgs, im)
		t.itemSend[v] = []msg.Msg{im}
		t.itemVal[im] = seq.Item(v)
	}
	msgs = append(msgs, EndMsg)
	t.senderAlpha = msg.MustNewAlphabet(msgs...)
	actual, _ := tablesCache.LoadOrStore(m, t)
	return actual.(*tables)
}

// New returns the protocol spec for domain size m. X is every finite
// sequence over the domain; |M^S| = m+1, |M^R| = 1.
func New(m int) (protocol.Spec, error) {
	if m < 0 {
		return protocol.Spec{}, fmt.Errorf("afwz: negative domain size %d", m)
	}
	return protocol.Spec{
		Name:        fmt.Sprintf("afwz(m=%d)", m),
		Description: "gated reverse-order transmission: all finite sequences, unbounded recovery",
		NewSender: func(input seq.Seq) (protocol.Sender, error) {
			for _, v := range input {
				if int(v) < 0 || int(v) >= m {
					return nil, fmt.Errorf("afwz: item %d outside domain of size %d", int(v), m)
				}
			}
			return &sender{m: m, t: tablesFor(m), input: input.Clone()}, nil
		},
		NewReceiver: func() (protocol.Receiver, error) {
			return &receiver{m: m, t: tablesFor(m)}, nil
		},
	}, nil
}

// MustNew is New for validated parameters; it panics on error.
func MustNew(m int) protocol.Spec {
	s, err := New(m)
	if err != nil {
		panic(err)
	}
	return s
}

// sender walks the input backwards, strictly gated on acknowledgements:
// message k+1 (0-based: the k-th reverse item, or "end" at k = n) is sent
// only while acks == k, and only once per run — a copy, once sent, is
// never re-sent, so at most one copy is ever in flight.
type sender struct {
	m     int
	t     *tables
	input seq.Seq
	acks  int // acknowledgements received
	sent  int // messages sent (acks <= sent <= acks+1)
}

var _ protocol.Sender = (*sender)(nil)

func (s *sender) Step(ev protocol.Event) []msg.Msg {
	switch ev.Kind {
	case protocol.Recv:
		if ev.Msg == AckMsg && s.acks < s.sent {
			s.acks++
		}
		return nil
	case protocol.Tick:
		if s.sent > s.acks || s.sent > len(s.input) {
			return nil // gate closed, or everything (incl. end) sent
		}
		defer func() { s.sent++ }()
		if s.sent == len(s.input) {
			return endSend
		}
		// Reverse order: the k-th message carries x_{n-k} (1-based x).
		if v := int(s.input[len(s.input)-1-s.sent]); v >= 0 && v < s.m {
			return s.t.itemSend[v]
		}
		return []msg.Msg{ItemMsg(s.input[len(s.input)-1-s.sent])}
	default:
		return nil
	}
}

func (s *sender) Alphabet() msg.Alphabet { return s.t.senderAlpha }

func (s *sender) Done() bool { return s.acks > len(s.input) }

func (s *sender) Clone() protocol.Sender {
	// The input tape is never mutated after construction, so clones share
	// it: the model checker clones on every explored transition.
	return &sender{m: s.m, t: s.t, input: s.input, acks: s.acks, sent: s.sent}
}

func (s *sender) Key() string { return fmt.Sprintf("afwzS{a=%d,s=%d}", s.acks, s.sent) }

func (s *sender) EncodeKey(buf []byte) []byte {
	buf = append(buf, 'F')
	buf = binary.AppendUvarint(buf, uint64(s.acks))
	return binary.AppendUvarint(buf, uint64(s.sent))
}

// receiver buffers reverse-order arrivals and commits them on "end".
type receiver struct {
	m      int
	t      *tables
	buffer seq.Seq // arrivals in order: x_n, x_{n-1}, ...
	done   bool
}

var _ protocol.Receiver = (*receiver)(nil)

func (r *receiver) Step(ev protocol.Event) ([]msg.Msg, seq.Seq) {
	if ev.Kind != protocol.Recv {
		return nil, nil
	}
	if ev.Msg == EndMsg {
		if r.done {
			return ackSend, nil
		}
		r.done = true
		// Commit: the buffer holds x_n .. x_1; write it reversed.
		out := make(seq.Seq, len(r.buffer))
		for i, v := range r.buffer {
			out[len(out)-1-i] = v
		}
		return ackSend, out
	}
	v, ok := r.t.itemVal[ev.Msg]
	if !ok {
		// Non-canonical spelling (corruption): the pre-interning parse,
		// which accepts a superset of the table's encodings. The scanned
		// local lives only in this branch so the fast path stays
		// allocation-free.
		var pv int
		if _, err := fmt.Sscanf(string(ev.Msg), "r:%d", &pv); err != nil {
			return nil, nil
		}
	}
	if !r.done {
		r.buffer = append(r.buffer, v)
	}
	return ackSend, nil
}

func (r *receiver) Alphabet() msg.Alphabet { return msg.MustNewAlphabet(AckMsg) }

func (r *receiver) Clone() protocol.Receiver {
	return &receiver{m: r.m, t: r.t, buffer: r.buffer.Clone(), done: r.done}
}

func (r *receiver) Key() string {
	parts := make([]string, len(r.buffer))
	for i, v := range r.buffer {
		parts[i] = fmt.Sprintf("%d", int(v))
	}
	return fmt.Sprintf("afwzR{%s,done=%v}", strings.Join(parts, "."), r.done)
}

func (r *receiver) EncodeKey(buf []byte) []byte {
	buf = append(buf, 'f')
	buf = r.buffer.EncodeKey(buf)
	return append(buf, boolByte(r.done))
}

// boolByte encodes a flag as a single key byte.
func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}
