package afwz_test

import (
	"testing"

	"seqtx/internal/channel"
	"seqtx/internal/protocol/afwz"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
	"seqtx/internal/trace"
)

func TestValidation(t *testing.T) {
	t.Parallel()
	if _, err := afwz.New(-1); err == nil {
		t.Fatal("negative m accepted")
	}
	spec := afwz.MustNew(2)
	if _, err := spec.NewSender(seq.FromInts(7)); err == nil {
		t.Error("out-of-domain input accepted")
	}
	if _, err := spec.NewSender(seq.FromInts(0, 0, 1, 1)); err != nil {
		t.Errorf("repeating input must be allowed: %v", err)
	}
}

func TestAlphabetSizes(t *testing.T) {
	t.Parallel()
	spec := afwz.MustNew(3)
	s, _ := spec.NewSender(seq.FromInts(0))
	if got := s.Alphabet().Size(); got != 4 {
		t.Errorf("|M^S| = %d, want m+1 = 4", got)
	}
	r, _ := spec.NewReceiver()
	if got := r.Alphabet().Size(); got != 1 {
		t.Errorf("|M^R| = %d, want 1", got)
	}
}

func TestCompletesOnDelAndReorder(t *testing.T) {
	t.Parallel()
	spec := afwz.MustNew(2)
	inputs := []seq.Seq{
		{},
		seq.FromInts(0),
		seq.FromInts(0, 0, 0),
		seq.FromInts(1, 0, 1, 0, 1),
		seq.FromInts(0, 1, 1, 0, 0, 1, 1, 1),
	}
	for _, kind := range []channel.Kind{channel.KindDel, channel.KindReorder} {
		for _, input := range inputs {
			res, err := sim.RunProtocol(spec, input, kind, sim.NewRoundRobin(),
				sim.Config{MaxSteps: 5000, StopWhenComplete: true})
			if err != nil {
				t.Fatalf("%s/%s: %v", kind, input, err)
			}
			if res.SafetyViolation != nil {
				t.Errorf("%s/%s: safety: %v", kind, input, res.SafetyViolation)
			}
			if !res.OutputComplete {
				t.Errorf("%s/%s: incomplete: %s", kind, input, res.Output)
			}
		}
	}
}

func TestWritesAreAllAtTheEnd(t *testing.T) {
	t.Parallel()
	// The defining behaviour: R learns (and writes) everything only when
	// "end" arrives — all learn times are equal.
	spec := afwz.MustNew(2)
	input := seq.FromInts(0, 1, 0, 1)
	res, err := sim.RunProtocol(spec, input, channel.KindReorder, sim.NewRoundRobin(),
		sim.Config{MaxSteps: 5000, StopWhenComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LearnTimes) != len(input) {
		t.Fatalf("LearnTimes = %v", res.LearnTimes)
	}
	for i := 1; i < len(res.LearnTimes); i++ {
		if res.LearnTimes[i] != res.LearnTimes[0] {
			t.Errorf("writes not simultaneous: %v", res.LearnTimes)
		}
	}
}

func TestGatingKeepsOneCopyInFlight(t *testing.T) {
	t.Parallel()
	spec := afwz.MustNew(2)
	link, err := channel.NewLinkOfKind(channel.KindDel)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sim.New(spec, seq.FromInts(1, 0, 1), link)
	if err != nil {
		t.Fatal(err)
	}
	adv := sim.NewRoundRobin()
	for i := 0; i < 200 && !w.OutputComplete(); i++ {
		if total := w.Link.Half(channel.SToR).Deliverable().Total(); total > 1 {
			t.Fatalf("gating violated: %d copies in flight", total)
		}
		if total := w.Link.Half(channel.RToS).Deliverable().Total(); total > 1 {
			t.Fatalf("ack gating violated: %d acks in flight", total)
		}
		if err := w.Apply(adv.Choose(w, w.Enabled())); err != nil {
			t.Fatal(err)
		}
	}
	if !w.OutputComplete() {
		t.Fatal("run did not complete")
	}
}

func TestDeletionStallsSafely(t *testing.T) {
	t.Parallel()
	// Drop the single in-flight copy: the protocol must stall (no fresh
	// sends, no writes) but never violate safety. This is the unfair-run
	// behaviour of a del channel.
	spec := afwz.MustNew(2)
	link, err := channel.NewLinkOfKind(channel.KindDel)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sim.New(spec, seq.FromInts(1, 0), link)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Apply(trace.TickS()); err != nil {
		t.Fatal(err)
	}
	// Drop the only copy.
	sup := w.Link.Half(channel.SToR).Deliverable().Support()
	if len(sup) != 1 {
		t.Fatalf("expected one in-flight message, got %v", sup)
	}
	if err := w.Link.Half(channel.SToR).Drop(sup[0]); err != nil {
		t.Fatal(err)
	}
	// Run a long fair schedule: nothing can happen anymore.
	res, err := sim.Run(w, sim.NewRoundRobin(), sim.Config{MaxSteps: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.SafetyViolation != nil {
		t.Errorf("stall violated safety: %v", res.SafetyViolation)
	}
	if len(res.Output) != 0 {
		t.Errorf("stalled run wrote %s", res.Output)
	}
}
