package afwz

import (
	"math/rand"

	"seqtx/internal/protocol"
	"seqtx/internal/seq"
)

// Scramble implements protocol.Scrambler: sent lands anywhere in
// [0, len(input)] and acks anywhere at or below it (the structural
// invariant the Step code indexes by; the logical gate state within it is
// arbitrary).
func (s *sender) Scramble(rng *rand.Rand) {
	s.sent = rng.Intn(len(s.input) + 1)
	s.acks = rng.Intn(s.sent + 1)
}

var _ protocol.Scrambler = (*sender)(nil)

// Scramble implements protocol.Scrambler: an arbitrary partial arrival
// buffer (reverse-order protocol: junk here becomes junk writes when the
// end marker arrives) and an arbitrary done flag.
func (r *receiver) Scramble(rng *rand.Rand) {
	k := rng.Intn(4)
	r.buffer = r.buffer[:0]
	for i := 0; i < k && r.m > 0; i++ {
		r.buffer = append(r.buffer, seq.Item(rng.Intn(r.m)))
	}
	r.done = rng.Intn(2) == 1
}

var _ protocol.Scrambler = (*receiver)(nil)
