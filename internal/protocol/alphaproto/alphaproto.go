// Package alphaproto implements the paper's tight protocol (§3 end, §4
// end): the finite-state solution to X-STP(dup) and X-STP(del) for the
// set X of repetition-free sequences over a domain D of size m, which has
// |X| = alpha(m) — matching the impossibility bound of Theorems 1 and 2.
//
// Protocol (quoting the paper): "S sends the data items in sequence and
// waits for the appropriate acknowledgements for each. R awaits the
// arrival of some new message (i.e., one different than any of the
// previously received messages); it then writes the new data item and
// sends the appropriate acknowledgement to S. Hence, reordering is dealt
// with by simply allowing the processors to ignore previously received
// messages."
//
// The same machine works on both channel models:
//
//   - dup: duplicates of old data messages are ignored by R because their
//     values were already seen — this is exactly why X must be
//     repetition-free;
//   - del: S retransmits the current item on every tick until it is
//     acknowledged, and R re-acknowledges duplicates (retransmissions), so
//     losses are repaired. The protocol is f-bounded with constant f: from
//     any point, one retransmission plus one acknowledgement round trip —
//     all fresh messages — teaches R the next item (Definition 2).
//
// Message alphabets: M^S = {d:v | v in D} and M^R = {a:v | v in D}, so
// |M^S| = m as in the paper (acknowledgements name the value because the
// ack channel also reorders; the paper's "appropriate acknowledgements").
package alphaproto

import (
	"encoding/binary"
	"fmt"
	"strings"

	"seqtx/internal/msg"
	"seqtx/internal/protocol"
	"seqtx/internal/seq"
)

// DataMsg encodes the data message for item v.
func DataMsg(v seq.Item) msg.Msg { return msg.Msg(fmt.Sprintf("d:%d", int(v))) }

// AckMsg encodes the acknowledgement for item v.
func AckMsg(v seq.Item) msg.Msg { return msg.Msg(fmt.Sprintf("a:%d", int(v))) }

// senderAlphabet returns M^S for domain size m.
func senderAlphabet(m int) msg.Alphabet { return InternFor(m).SenderAlphabet() }

// receiverAlphabet returns M^R for domain size m.
func receiverAlphabet(m int) msg.Alphabet { return InternFor(m).ReceiverAlphabet() }

// New returns the protocol spec for domain size m. Senders reject inputs
// that repeat an item or leave the domain: those are outside this
// protocol's X (and, by Theorems 1 and 2, outside any protocol's X at
// this alphabet size, up to re-encoding).
func New(m int) (protocol.Spec, error) {
	if m < 0 {
		return protocol.Spec{}, fmt.Errorf("alphaproto: negative domain size %d", m)
	}
	return protocol.Spec{
		Name:        fmt.Sprintf("alpha(m=%d)", m),
		Description: "the paper's tight protocol: new-value writes, value acknowledgements",
		NewSender: func(input seq.Seq) (protocol.Sender, error) {
			for _, v := range input {
				if int(v) < 0 || int(v) >= m {
					return nil, fmt.Errorf("alphaproto: item %d outside domain of size %d", int(v), m)
				}
			}
			if input.HasRepetition() {
				return nil, fmt.Errorf("alphaproto: input %s repeats an item; X is the repetition-free sequences", input)
			}
			return &sender{m: m, t: InternFor(m), input: input.Clone()}, nil
		},
		NewReceiver: func() (protocol.Receiver, error) {
			return &receiver{m: m, t: InternFor(m), seen: make(map[seq.Item]bool)}, nil
		},
	}, nil
}

// MustNew is New for validated parameters; it panics on error.
func MustNew(m int) protocol.Spec {
	s, err := New(m)
	if err != nil {
		panic(err)
	}
	return s
}

// sender is S: transmit input[idx] every tick until its ack arrives.
type sender struct {
	m     int
	t     *Intern
	input seq.Seq
	idx   int // next unacknowledged position
}

var _ protocol.Sender = (*sender)(nil)

func (s *sender) Step(ev protocol.Event) []msg.Msg {
	switch ev.Kind {
	case protocol.Recv:
		if s.idx < len(s.input) && ev.Msg == s.t.Ack(s.input[s.idx]) {
			s.idx++
		}
		return nil
	case protocol.Tick:
		if s.idx < len(s.input) {
			return s.t.DataSend(s.input[s.idx])
		}
		return nil
	default:
		return nil
	}
}

func (s *sender) Alphabet() msg.Alphabet { return s.t.SenderAlphabet() }
func (s *sender) Done() bool             { return s.idx >= len(s.input) }

func (s *sender) Clone() protocol.Sender {
	// The input tape is never mutated after construction, so clones share
	// it: the model checker clones on every explored transition.
	return &sender{m: s.m, t: s.t, input: s.input, idx: s.idx}
}

func (s *sender) Key() string {
	// The input is fixed per run; idx fully determines behaviour.
	return fmt.Sprintf("alphaS{idx=%d}", s.idx)
}

func (s *sender) EncodeKey(buf []byte) []byte {
	buf = append(buf, 'A')
	return binary.AppendUvarint(buf, uint64(s.idx))
}

// receiver is R: write each never-before-seen value, acknowledge every
// data message (first sight or duplicate).
type receiver struct {
	m       int
	t       *Intern
	seen    map[seq.Item]bool
	written seq.Seq
}

var _ protocol.Receiver = (*receiver)(nil)

func (r *receiver) Step(ev protocol.Event) ([]msg.Msg, seq.Seq) {
	if ev.Kind != protocol.Recv {
		return nil, nil
	}
	v, ok := r.t.DataValue(ev.Msg)
	if !ok {
		return nil, nil // not a data message; ignore
	}
	if r.seen[v] {
		// Duplicate: re-acknowledge (repairs lost acks on del channels).
		return r.t.AckSend(v), nil
	}
	r.seen[v] = true
	r.written = append(r.written, v)
	return r.t.AckSend(v), r.t.Write(v)
}

func (r *receiver) Alphabet() msg.Alphabet { return r.t.ReceiverAlphabet() }

func (r *receiver) Clone() protocol.Receiver {
	seen := make(map[seq.Item]bool, len(r.seen))
	for k, v := range r.seen {
		seen[k] = v
	}
	return &receiver{m: r.m, t: r.t, seen: seen, written: r.written.Clone()}
}

func (r *receiver) Key() string {
	// The written order determines the seen set and all future behaviour.
	parts := make([]string, len(r.written))
	for i, v := range r.written {
		parts[i] = fmt.Sprintf("%d", int(v))
	}
	return "alphaR{" + strings.Join(parts, ".") + "}"
}

func (r *receiver) EncodeKey(buf []byte) []byte {
	buf = append(buf, 'a')
	return r.written.EncodeKey(buf)
}
