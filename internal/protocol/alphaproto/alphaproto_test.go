package alphaproto_test

import (
	"testing"

	"seqtx/internal/channel"
	"seqtx/internal/protocol"
	"seqtx/internal/protocol/alphaproto"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
)

func TestNewValidatesParameters(t *testing.T) {
	t.Parallel()
	if _, err := alphaproto.New(-1); err == nil {
		t.Fatal("negative m accepted")
	}
	spec := alphaproto.MustNew(2)
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := spec.NewSender(seq.FromInts(0, 0)); err == nil {
		t.Error("repeating input accepted")
	}
	if _, err := spec.NewSender(seq.FromInts(5)); err == nil {
		t.Error("out-of-domain input accepted")
	}
	if _, err := spec.NewSender(seq.FromInts(1, 0)); err != nil {
		t.Errorf("valid input rejected: %v", err)
	}
}

func TestAlphabetSizesMatchPaper(t *testing.T) {
	t.Parallel()
	// |M^S| = |M^R| = m, the paper's protocol.
	spec := alphaproto.MustNew(3)
	s, err := spec.NewSender(seq.FromInts(0))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Alphabet().Size(); got != 3 {
		t.Errorf("|M^S| = %d, want 3", got)
	}
	r, err := spec.NewReceiver()
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Alphabet().Size(); got != 3 {
		t.Errorf("|M^R| = %d, want 3", got)
	}
}

func TestSenderIgnoresWrongAcks(t *testing.T) {
	t.Parallel()
	spec := alphaproto.MustNew(3)
	s, err := spec.NewSender(seq.FromInts(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Wrong-value ack: no progress.
	s.Step(protocol.RecvEvent(alphaproto.AckMsg(2)))
	sends := s.Step(protocol.TickEvent())
	if len(sends) != 1 || sends[0] != alphaproto.DataMsg(1) {
		t.Fatalf("after stray ack, tick sends %v, want d:1", sends)
	}
	// Right ack advances.
	s.Step(protocol.RecvEvent(alphaproto.AckMsg(1)))
	sends = s.Step(protocol.TickEvent())
	if len(sends) != 1 || sends[0] != alphaproto.DataMsg(2) {
		t.Fatalf("tick sends %v, want d:2", sends)
	}
	if s.Done() {
		t.Error("Done before final ack")
	}
	s.Step(protocol.RecvEvent(alphaproto.AckMsg(2)))
	if !s.Done() {
		t.Error("not Done after all acks")
	}
	if got := s.Step(protocol.TickEvent()); len(got) != 0 {
		t.Errorf("done sender still sends %v", got)
	}
}

func TestReceiverWritesNewValuesOnceAndReacks(t *testing.T) {
	t.Parallel()
	spec := alphaproto.MustNew(2)
	r, err := spec.NewReceiver()
	if err != nil {
		t.Fatal(err)
	}
	sends, writes := r.Step(protocol.RecvEvent(alphaproto.DataMsg(1)))
	if len(writes) != 1 || writes[0] != 1 {
		t.Fatalf("first receipt: writes %v", writes)
	}
	if len(sends) != 1 || sends[0] != alphaproto.AckMsg(1) {
		t.Fatalf("first receipt: sends %v", sends)
	}
	// Duplicate: re-ack, no write.
	sends, writes = r.Step(protocol.RecvEvent(alphaproto.DataMsg(1)))
	if len(writes) != 0 {
		t.Fatalf("duplicate wrote %v", writes)
	}
	if len(sends) != 1 || sends[0] != alphaproto.AckMsg(1) {
		t.Fatalf("duplicate re-ack: sends %v", sends)
	}
	// Ticks and foreign messages are no-ops.
	if s, w := r.Step(protocol.TickEvent()); len(s)+len(w) != 0 {
		t.Error("tick produced activity")
	}
	if s, w := r.Step(protocol.RecvEvent("junk")); len(s)+len(w) != 0 {
		t.Error("junk message produced activity")
	}
}

func TestCloneAndKeyDiscipline(t *testing.T) {
	t.Parallel()
	spec := alphaproto.MustNew(2)
	s, _ := spec.NewSender(seq.FromInts(0, 1))
	c := s.Clone()
	if s.Key() != c.Key() {
		t.Error("clone has different key")
	}
	c.Step(protocol.RecvEvent(alphaproto.AckMsg(0)))
	if s.Key() == c.Key() {
		t.Error("diverged clones share key")
	}
	r, _ := spec.NewReceiver()
	rc := r.Clone()
	rc.Step(protocol.RecvEvent(alphaproto.DataMsg(1)))
	if r.Key() == rc.Key() {
		t.Error("diverged receiver clones share key")
	}
}

// TestAllSequencesAllChannels is the heart of T2/T4 in miniature: every
// repetition-free input over m completes safely on dup and del channels
// under several adversaries.
func TestAllSequencesAllChannels(t *testing.T) {
	t.Parallel()
	const m = 3
	spec := alphaproto.MustNew(m)
	advs := func() []sim.Adversary {
		return []sim.Adversary{
			sim.NewRoundRobin(),
			sim.NewFinDelay(sim.NewRandom(7), 10),
			sim.NewFinDelay(sim.NewReplayer(3, 2), 12),
			sim.NewWithholder(20),
		}
	}
	for _, kind := range []channel.Kind{channel.KindDup, channel.KindDel, channel.KindReorder} {
		for _, input := range seq.RepetitionFree(m) {
			for i, adv := range advs() {
				if kind != channel.KindDup && i == 2 {
					continue // replayer targets dup semantics
				}
				res, err := sim.RunProtocol(spec, input, kind, adv, sim.Config{MaxSteps: 4000, StopWhenComplete: true})
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", kind, input, adv.Name(), err)
				}
				if res.SafetyViolation != nil {
					t.Errorf("%s/%s/%s: safety: %v", kind, input, adv.Name(), res.SafetyViolation)
				}
				if !res.OutputComplete {
					t.Errorf("%s/%s/%s: incomplete output %s", kind, input, adv.Name(), res.Output)
				}
			}
		}
	}
}

func TestDelChannelWithDropsRecovers(t *testing.T) {
	t.Parallel()
	spec := alphaproto.MustNew(4)
	for seed := int64(0); seed < 8; seed++ {
		res, err := sim.RunProtocol(spec, seq.FromInts(3, 1, 0, 2), channel.KindDel,
			sim.NewBudgetDropper(seed, 10), sim.Config{MaxSteps: 5000, StopWhenComplete: true})
		if err != nil {
			t.Fatal(err)
		}
		if !res.OutputComplete || res.SafetyViolation != nil {
			t.Errorf("seed %d: complete=%v violation=%v", seed, res.OutputComplete, res.SafetyViolation)
		}
	}
}

func TestEmptyInput(t *testing.T) {
	t.Parallel()
	spec := alphaproto.MustNew(2)
	res, err := sim.RunProtocol(spec, seq.Seq{}, channel.KindDup, sim.NewRoundRobin(),
		sim.Config{MaxSteps: 10, StopWhenComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OutputComplete || len(res.Output) != 0 {
		t.Errorf("empty input: complete=%v output=%s", res.OutputComplete, res.Output)
	}
}

// TestDupDelChannel exercises the full fault menu: reorder + duplicate +
// delete. The tight protocol's retransmission restores erased types and
// its duplicate suppression absorbs replays, so it survives both at once.
func TestDupDelChannel(t *testing.T) {
	t.Parallel()
	spec := alphaproto.MustNew(3)
	for seed := int64(0); seed < 6; seed++ {
		res, err := sim.RunProtocol(spec, seq.FromInts(2, 0, 1), channel.KindDupDel,
			sim.NewBudgetDropper(seed, 4), sim.Config{MaxSteps: 5000, StopWhenComplete: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.SafetyViolation != nil {
			t.Errorf("seed %d: safety: %v", seed, res.SafetyViolation)
		}
		if !res.OutputComplete {
			t.Errorf("seed %d: incomplete: %s", seed, res.Output)
		}
	}
	// And under replay pressure with erasures mixed in.
	res, err := sim.RunProtocol(spec, seq.FromInts(1, 2, 0), channel.KindDupDel,
		sim.NewFinDelay(sim.NewRandomDropper(7, 1), 10), sim.Config{MaxSteps: 8000, StopWhenComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.SafetyViolation != nil || !res.OutputComplete {
		t.Errorf("random dup+del: complete=%v violation=%v", res.OutputComplete, res.SafetyViolation)
	}
}
