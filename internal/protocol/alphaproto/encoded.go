package alphaproto

import (
	"encoding/binary"
	"fmt"
	"strings"

	"seqtx/internal/alpha"
	"seqtx/internal/msg"
	"seqtx/internal/protocol"
	"seqtx/internal/seq"
)

// NewEncoded generalizes the tight protocol from the canonical X
// (repetition-free sequences over D) to an arbitrary finite set X of data
// sequences, provided X is prefix-monotone encodable over m messages —
// the exact condition the paper identifies as necessary (§3, end). The
// sender transmits the repetition-free code mu(X) symbol by symbol with
// value acknowledgements; the receiver, which knows the code table (R's
// protocol may depend on the set X, only not on the chosen X), writes
// data items as soon as the received code prefix pins them down.
//
// Prefix monotonicity is what makes eager writing safe: if the received
// code string equals mu(X1) for a member X1, then mu(X1) is a prefix of
// mu(X) for the actual input X, hence X1 is a prefix of X, so writing
// X1's items can never violate safety.
func NewEncoded(x *seq.Set, m int) (protocol.Spec, error) {
	enc, err := alpha.Encode(x, m)
	if err != nil {
		return protocol.Spec{}, fmt.Errorf("alphaproto: %w", err)
	}
	// Receiver-side decode table: code-string key -> member data sequence.
	decode := make(map[string]seq.Seq, x.Size())
	for _, member := range x.Seqs() {
		code, cerr := enc.Code(member)
		if cerr != nil {
			return protocol.Spec{}, cerr
		}
		decode[codeKey(code)] = member.Clone()
	}
	senderAlp := enc.Alphabet()
	ackMsgs := make([]msg.Msg, senderAlp.Size())
	// Interned per-symbol views, shared by every sender/receiver built
	// from this spec: the ack for each code symbol, its one-message
	// send slice, and the symbol's own send slice (indexed by alphabet
	// position), so Step allocates nothing.
	ackFor := make(map[msg.Msg]msg.Msg, senderAlp.Size())
	ackSend := make(map[msg.Msg][]msg.Msg, senderAlp.Size())
	symSend := make([][]msg.Msg, senderAlp.Size())
	for i, c := range senderAlp.Msgs() {
		ackMsgs[i] = msg.Msg("k:" + string(c))
		ackFor[c] = ackMsgs[i]
		ackSend[c] = []msg.Msg{ackMsgs[i]}
		symSend[i] = []msg.Msg{c}
	}
	recvAlp := msg.MustNewAlphabet(ackMsgs...)

	return protocol.Spec{
		Name:        fmt.Sprintf("alpha-encoded(m=%d,|X|=%d)", m, x.Size()),
		Description: "tight protocol over an encoded arbitrary X (prefix-monotone mu)",
		NewSender: func(input seq.Seq) (protocol.Sender, error) {
			code, cerr := enc.Code(input)
			if cerr != nil {
				return nil, fmt.Errorf("alphaproto: input %s not in X: %w", input, cerr)
			}
			// codeSend[k] is the interned send slice for code[k].
			codeSend := make([][]msg.Msg, len(code))
			ackWait := make([]msg.Msg, len(code))
			for k, c := range code {
				if i, ok := senderAlp.Index(c); ok {
					codeSend[k] = symSend[i]
				} else {
					codeSend[k] = []msg.Msg{c}
				}
				ackWait[k] = msg.Msg("k:" + string(c))
			}
			return &encSender{alphabet: senderAlp, code: code, codeSend: codeSend, ackWait: ackWait}, nil
		},
		NewReceiver: func() (protocol.Receiver, error) {
			return &encReceiver{alphabet: recvAlp, decode: decode, ackSend: ackSend}, nil
		},
	}, nil
}

func codeKey(code []msg.Msg) string {
	parts := make([]string, len(code))
	for i, c := range code {
		parts[i] = string(c)
	}
	return strings.Join(parts, "/")
}

// encSender transmits the code symbols of mu(input) with stop-and-wait on
// value acknowledgements, retransmitting on every tick.
type encSender struct {
	alphabet msg.Alphabet
	code     []msg.Msg
	codeSend [][]msg.Msg // interned per-position send slices
	ackWait  []msg.Msg   // interned expected ack per position
	idx      int
}

var _ protocol.Sender = (*encSender)(nil)

func (s *encSender) Step(ev protocol.Event) []msg.Msg {
	switch ev.Kind {
	case protocol.Recv:
		if s.idx < len(s.code) && ev.Msg == s.ackWait[s.idx] {
			s.idx++
		}
		return nil
	case protocol.Tick:
		if s.idx < len(s.code) {
			return s.codeSend[s.idx]
		}
		return nil
	default:
		return nil
	}
}

func (s *encSender) Alphabet() msg.Alphabet { return s.alphabet }
func (s *encSender) Done() bool             { return s.idx >= len(s.code) }

func (s *encSender) Clone() protocol.Sender {
	return &encSender{alphabet: s.alphabet, code: s.code, codeSend: s.codeSend, ackWait: s.ackWait, idx: s.idx}
}

func (s *encSender) Key() string { return fmt.Sprintf("encS{idx=%d}", s.idx) }

func (s *encSender) EncodeKey(buf []byte) []byte {
	buf = append(buf, 'E')
	return binary.AppendUvarint(buf, uint64(s.idx))
}

// encReceiver accumulates new code symbols in arrival order, acknowledges
// everything, and writes data items whenever the accumulated code string
// matches a member's full code.
type encReceiver struct {
	alphabet  msg.Alphabet
	decode    map[string]seq.Seq
	ackSend   map[msg.Msg][]msg.Msg // interned ack slice per code symbol
	seen      map[msg.Msg]bool
	codeSoFar []msg.Msg
	written   int // items written so far
}

// ack returns the interned ack slice for symbol m, falling back to
// building one for out-of-alphabet symbols (same bytes as before).
func (r *encReceiver) ack(m msg.Msg) []msg.Msg {
	if a, ok := r.ackSend[m]; ok {
		return a
	}
	return []msg.Msg{msg.Msg("k:" + string(m))}
}

var _ protocol.Receiver = (*encReceiver)(nil)

func (r *encReceiver) Step(ev protocol.Event) ([]msg.Msg, seq.Seq) {
	if ev.Kind != protocol.Recv {
		// A member may have the empty code (its data is then a prefix of
		// every member's, so writing it blind is safe); commit it on the
		// first spontaneous step.
		return nil, r.tryWrite()
	}
	if r.seen == nil {
		r.seen = make(map[msg.Msg]bool)
	}
	if r.seen[ev.Msg] {
		return r.ack(ev.Msg), nil
	}
	r.seen[ev.Msg] = true
	r.codeSoFar = append(r.codeSoFar, ev.Msg)
	return r.ack(ev.Msg), r.tryWrite()
}

// tryWrite commits the data items pinned down by the received code prefix.
func (r *encReceiver) tryWrite() seq.Seq {
	member, ok := r.decode[codeKey(r.codeSoFar)]
	if !ok || len(member) <= r.written {
		return nil
	}
	writes := member[r.written:].Clone()
	r.written = len(member)
	return writes
}

func (r *encReceiver) Alphabet() msg.Alphabet { return r.alphabet }

func (r *encReceiver) Clone() protocol.Receiver {
	seen := make(map[msg.Msg]bool, len(r.seen))
	for k, v := range r.seen {
		seen[k] = v
	}
	return &encReceiver{
		alphabet:  r.alphabet,
		decode:    r.decode,
		ackSend:   r.ackSend,
		seen:      seen,
		codeSoFar: append([]msg.Msg(nil), r.codeSoFar...),
		written:   r.written,
	}
}

func (r *encReceiver) Key() string {
	return fmt.Sprintf("encR{%s|w=%d}", codeKey(r.codeSoFar), r.written)
}

func (r *encReceiver) EncodeKey(buf []byte) []byte {
	buf = append(buf, 'e')
	buf = binary.AppendUvarint(buf, uint64(len(r.codeSoFar)))
	for _, m := range r.codeSoFar {
		buf = msg.AppendMsg(buf, m)
	}
	return binary.AppendUvarint(buf, uint64(r.written))
}
