package alphaproto_test

import (
	"testing"

	"seqtx/internal/channel"
	"seqtx/internal/protocol/alphaproto"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
)

func TestEncodedRejectsUnencodableSet(t *testing.T) {
	t.Parallel()
	// Six sequences over m=2: beyond alpha(2) = 5.
	x := seq.MustNewSet(
		seq.Seq{}, seq.FromInts(0), seq.FromInts(1),
		seq.FromInts(0, 1), seq.FromInts(1, 0), seq.FromInts(0, 0),
	)
	if _, err := alphaproto.NewEncoded(x, 2); err == nil {
		t.Fatal("oversized X accepted")
	}
}

func TestEncodedTransmitsRepeatingSequences(t *testing.T) {
	t.Parallel()
	// The encoded protocol's whole point: X may contain repetitions as
	// long as |X| fits; mu maps them to repetition-free codes.
	x := seq.MustNewSet(
		seq.FromInts(0, 0, 0),
		seq.FromInts(1, 1),
		seq.FromInts(2),
	)
	spec, err := alphaproto.NewEncoded(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, input := range x.Seqs() {
		for _, kind := range []channel.Kind{channel.KindDup, channel.KindDel} {
			res, rerr := sim.RunProtocol(spec, input, kind, sim.NewRoundRobin(),
				sim.Config{MaxSteps: 2000, StopWhenComplete: true})
			if rerr != nil {
				t.Fatalf("%s/%s: %v", kind, input, rerr)
			}
			if res.SafetyViolation != nil {
				t.Errorf("%s/%s: %v", kind, input, res.SafetyViolation)
			}
			if !res.OutputComplete {
				t.Errorf("%s/%s: incomplete output %s", kind, input, res.Output)
			}
		}
	}
}

func TestEncodedPrefixChainWritesEagerly(t *testing.T) {
	t.Parallel()
	// X = {0, 0.0}: mu(0) may be the empty code, in which case R writes
	// "0" before receiving anything — legitimately, since every member
	// starts with 0. Safety must hold for both inputs regardless.
	x := seq.MustNewSet(seq.FromInts(0), seq.FromInts(0, 0))
	spec, err := alphaproto.NewEncoded(x, 1)
	if err != nil {
		t.Fatalf("2-chain should encode over m=1: %v", err)
	}
	for _, input := range x.Seqs() {
		res, rerr := sim.RunProtocol(spec, input, channel.KindDup, sim.NewRoundRobin(),
			sim.Config{MaxSteps: 500, StopWhenComplete: true})
		if rerr != nil {
			t.Fatal(rerr)
		}
		if res.SafetyViolation != nil {
			t.Errorf("input %s: %v", input, res.SafetyViolation)
		}
		if !res.OutputComplete {
			t.Errorf("input %s: incomplete %s", input, res.Output)
		}
	}
}

func TestEncodedRejectsNonMemberInput(t *testing.T) {
	t.Parallel()
	x := seq.MustNewSet(seq.FromInts(0))
	spec, err := alphaproto.NewEncoded(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.NewSender(seq.FromInts(1)); err == nil {
		t.Fatal("non-member input accepted")
	}
}

func TestEncodedSurvivesReplayAndDrops(t *testing.T) {
	t.Parallel()
	x := seq.MustNewSet(
		seq.FromInts(0, 0),
		seq.FromInts(1),
		seq.FromInts(1, 1, 1),
	)
	spec, err := alphaproto.NewEncoded(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Replay on dup.
	res, err := sim.RunProtocol(spec, seq.FromInts(0, 0), channel.KindDup,
		sim.NewFinDelay(sim.NewReplayer(5, 2), 10), sim.Config{MaxSteps: 3000, StopWhenComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.SafetyViolation != nil || !res.OutputComplete {
		t.Errorf("replay: complete=%v violation=%v", res.OutputComplete, res.SafetyViolation)
	}
	// Drops on del.
	res, err = sim.RunProtocol(spec, seq.FromInts(1, 1, 1), channel.KindDel,
		sim.NewBudgetDropper(2, 6), sim.Config{MaxSteps: 3000, StopWhenComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.SafetyViolation != nil || !res.OutputComplete {
		t.Errorf("drops: complete=%v violation=%v output=%s", res.OutputComplete, res.SafetyViolation, res.Output)
	}
}
