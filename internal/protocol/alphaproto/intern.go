package alphaproto

import (
	"fmt"
	"sync"

	"seqtx/internal/msg"
	"seqtx/internal/seq"
)

// Intern is the per-m interned codec for the "d:v" / "a:v" encodings:
// every member of M^S and M^R precomputed at construction, with send
// singletons, write singletons, and decode maps, so the Step hot path
// formats and parses nothing. The encodings are byte-identical to
// DataMsg/AckMsg — the tables only change who pays for the bytes.
//
// alphaproto, naive (both variants), and stab share these message
// formats, so they share one cache: InternFor(m) returns the same
// read-only table for every construction at the same m, across
// simulator worlds, model-checker clones, and wire sessions.
type Intern struct {
	m int

	senderAlpha   msg.Alphabet
	receiverAlpha msg.Alphabet

	data []msg.Msg // data[v] = "d:v"
	ack  []msg.Msg // ack[v] = "a:v"

	// Send singletons, one per message: Step returns these shared
	// read-only slices instead of allocating (see the Step contract in
	// package protocol).
	dataSend [][]msg.Msg
	ackSend  [][]msg.Msg

	// Write singletons: the one-item tapes receivers return.
	writeOne []seq.Seq

	// Decode: canonical encoding → value. Misses fall back to the
	// original Sscanf parse so non-canonical spellings ("d:07",
	// trailing bytes) behave exactly as before interning.
	dataVal map[msg.Msg]seq.Item
	ackVal  map[msg.Msg]seq.Item
}

var internCache sync.Map // int (m) → *Intern

// InternFor returns the shared interned codec for domain size m.
func InternFor(m int) *Intern {
	if t, ok := internCache.Load(m); ok {
		return t.(*Intern)
	}
	if m < 0 {
		m = 0
	}
	t := &Intern{
		m:        m,
		data:     make([]msg.Msg, m),
		ack:      make([]msg.Msg, m),
		dataSend: make([][]msg.Msg, m),
		ackSend:  make([][]msg.Msg, m),
		writeOne: make([]seq.Seq, m),
		dataVal:  make(map[msg.Msg]seq.Item, m),
		ackVal:   make(map[msg.Msg]seq.Item, m),
	}
	for v := 0; v < m; v++ {
		item := seq.Item(v)
		t.data[v] = msg.Msg(fmt.Sprintf("d:%d", v))
		t.ack[v] = msg.Msg(fmt.Sprintf("a:%d", v))
		t.dataSend[v] = []msg.Msg{t.data[v]}
		t.ackSend[v] = []msg.Msg{t.ack[v]}
		t.writeOne[v] = seq.Seq{item}
		t.dataVal[t.data[v]] = item
		t.ackVal[t.ack[v]] = item
	}
	t.senderAlpha = msg.MustNewAlphabet(t.data...)
	t.receiverAlpha = msg.MustNewAlphabet(t.ack...)
	actual, _ := internCache.LoadOrStore(m, t)
	return actual.(*Intern)
}

// SenderAlphabet returns the interned M^S.
func (t *Intern) SenderAlphabet() msg.Alphabet { return t.senderAlpha }

// ReceiverAlphabet returns the interned M^R.
func (t *Intern) ReceiverAlphabet() msg.Alphabet { return t.receiverAlpha }

// Data returns the interned data message for v (formats only outside
// the domain, which validated senders never are).
func (t *Intern) Data(v seq.Item) msg.Msg {
	if i := int(v); i >= 0 && i < t.m {
		return t.data[i]
	}
	return DataMsg(v)
}

// Ack returns the interned acknowledgement for v.
func (t *Intern) Ack(v seq.Item) msg.Msg {
	if i := int(v); i >= 0 && i < t.m {
		return t.ack[i]
	}
	return AckMsg(v)
}

// DataSend returns the shared one-message send slice for data v.
func (t *Intern) DataSend(v seq.Item) []msg.Msg {
	if i := int(v); i >= 0 && i < t.m {
		return t.dataSend[i]
	}
	return []msg.Msg{DataMsg(v)}
}

// AckSend returns the shared one-message send slice for ack v.
func (t *Intern) AckSend(v seq.Item) []msg.Msg {
	if i := int(v); i >= 0 && i < t.m {
		return t.ackSend[i]
	}
	return []msg.Msg{AckMsg(v)}
}

// Write returns the shared one-item write tape for v.
func (t *Intern) Write(v seq.Item) seq.Seq {
	if i := int(v); i >= 0 && i < t.m {
		return t.writeOne[i]
	}
	return seq.Seq{v}
}

// DataValue decodes a data message: table hit for the canonical
// members, Sscanf fallback for everything else (same acceptance as the
// pre-interning parse, including non-canonical spellings and
// out-of-domain values).
func (t *Intern) DataValue(m msg.Msg) (seq.Item, bool) {
	if v, ok := t.dataVal[m]; ok {
		return v, true
	}
	var v seq.Item
	if _, err := fmt.Sscanf(string(m), "d:%d", (*int)(&v)); err != nil {
		return 0, false
	}
	return v, true
}

// AckValue decodes an acknowledgement, with the same fallback contract
// as DataValue.
func (t *Intern) AckValue(m msg.Msg) (seq.Item, bool) {
	if v, ok := t.ackVal[m]; ok {
		return v, true
	}
	var v seq.Item
	if _, err := fmt.Sscanf(string(m), "a:%d", (*int)(&v)); err != nil {
		return 0, false
	}
	return v, true
}
