package alphaproto

import (
	"math/rand"

	"seqtx/internal/protocol"
	"seqtx/internal/seq"
)

// Scramble implements protocol.Scrambler: the position lands anywhere in
// [0, len(input)].
func (s *sender) Scramble(rng *rand.Rand) {
	s.idx = rng.Intn(len(s.input) + 1)
}

var _ protocol.Scrambler = (*sender)(nil)

// Scramble implements protocol.Scrambler: the receiver restarts with an
// arbitrary write history — a random subset of the domain in a random
// order, with the seen set matching it (seen is derived from written, so
// a type-valid state keeps them consistent). A poisoned seen set is the
// interesting corruption: the receiver will silently refuse values it
// never actually wrote.
func (r *receiver) Scramble(rng *rand.Rand) {
	perm := rng.Perm(r.m)
	k := 0
	if r.m > 0 {
		k = rng.Intn(r.m + 1)
	}
	r.seen = make(map[seq.Item]bool, k)
	r.written = r.written[:0]
	for _, v := range perm[:k] {
		r.seen[seq.Item(v)] = true
		r.written = append(r.written, seq.Item(v))
	}
}

var _ protocol.Scrambler = (*receiver)(nil)
