// Package gobackn implements the Go-Back-N sliding-window protocol over
// the FIFO channel with loss and duplication — the classic data-link
// pipelining refinement of the alternating-bit protocol (the [BSW69]
// lineage the paper's introduction situates STP in).
//
// The sender keeps up to Window unacknowledged frames in flight, each
// numbered modulo Window+1; the receiver accepts only the next expected
// number and acknowledges cumulatively. On a timeout the sender re-sends
// the whole outstanding window ("go back n").
//
// Relevance to the paper: Go-Back-N needs only Window+1 distinct numbers
// BECAUSE the channel preserves order. Under reordering, frame numbers
// taken modulo anything collide exactly like modseq's (experiment T9/T7
// territory), and the alpha(m) bound bites again. The package exhibits
// the boundary: safe and fast on FIFO, refutable on reordering channels.
// The benchmark ablation measures the pipelining win over stop-and-wait.
package gobackn

import (
	"encoding/binary"
	"fmt"
	"sync"

	"seqtx/internal/msg"
	"seqtx/internal/protocol"
	"seqtx/internal/seq"
)

// DataMsg encodes item v under frame number n (modulo window+1).
func DataMsg(mod, n int, v seq.Item) msg.Msg {
	return msg.Msg(fmt.Sprintf("g:%d:%d", n%mod, int(v)))
}

// AckMsg encodes the cumulative acknowledgement "expecting frame n next".
func AckMsg(mod, n int) msg.Msg { return msg.Msg(fmt.Sprintf("ga:%d", n%mod)) }

// tables is the per-(m, window) interned codec: every member of
// M^S/M^R with send singletons, write singletons, and decode maps,
// byte-identical to DataMsg/AckMsg.
type tables struct {
	senderAlpha   msg.Alphabet
	receiverAlpha msg.Alphabet
	data          [][]msg.Msg   // data[n][v] = "g:n:v"
	ack           []msg.Msg     // ack[n] = "ga:n"
	ackSend       [][]msg.Msg   // ackSend[n]
	dataSend      [][][]msg.Msg // dataSend[n][v]
	writeOne      []seq.Seq     // writeOne[v]
	dataVal       map[msg.Msg]frameValue
	ackVal        map[msg.Msg]int
}

type frameValue struct{ n, v int }

type tablesKey struct{ m, window int }

var tablesCache sync.Map // tablesKey → *tables

func tablesFor(m, window int) *tables {
	key := tablesKey{m, window}
	if t, ok := tablesCache.Load(key); ok {
		return t.(*tables)
	}
	if m < 0 {
		m = 0
	}
	mod := window + 1
	t := &tables{
		data:     make([][]msg.Msg, mod),
		ack:      make([]msg.Msg, mod),
		ackSend:  make([][]msg.Msg, mod),
		dataSend: make([][][]msg.Msg, mod),
		writeOne: make([]seq.Seq, m),
		dataVal:  make(map[msg.Msg]frameValue, mod*m),
		ackVal:   make(map[msg.Msg]int, mod),
	}
	senderMsgs := make([]msg.Msg, 0, mod*m)
	for n := 0; n < mod; n++ {
		t.ack[n] = AckMsg(mod, n)
		t.ackSend[n] = []msg.Msg{t.ack[n]}
		t.ackVal[t.ack[n]] = n
		t.data[n] = make([]msg.Msg, m)
		t.dataSend[n] = make([][]msg.Msg, m)
		for v := 0; v < m; v++ {
			dm := DataMsg(mod, n, seq.Item(v))
			senderMsgs = append(senderMsgs, dm)
			t.data[n][v] = dm
			t.dataSend[n][v] = []msg.Msg{dm}
			t.dataVal[dm] = frameValue{n, v}
		}
	}
	for v := 0; v < m; v++ {
		t.writeOne[v] = seq.Seq{seq.Item(v)}
	}
	t.senderAlpha = msg.MustNewAlphabet(senderMsgs...)
	t.receiverAlpha = msg.MustNewAlphabet(t.ack...)
	actual, _ := tablesCache.LoadOrStore(key, t)
	return actual.(*tables)
}

// New returns the protocol spec for domain size m and window >= 1.
// The frame-number space is window+1 (the classic minimum for Go-Back-N),
// so |M^S| = (window+1)·m and |M^R| = window+1.
func New(m, window int) (protocol.Spec, error) {
	if m < 0 {
		return protocol.Spec{}, fmt.Errorf("gobackn: negative domain size %d", m)
	}
	if window < 1 {
		return protocol.Spec{}, fmt.Errorf("gobackn: window %d < 1", window)
	}
	return protocol.Spec{
		Name:        fmt.Sprintf("gobackn(m=%d,W=%d)", m, window),
		Description: "Go-Back-N sliding window over FIFO: pipelined stop-and-wait",
		NewSender: func(input seq.Seq) (protocol.Sender, error) {
			for _, v := range input {
				if int(v) < 0 || int(v) >= m {
					return nil, fmt.Errorf("gobackn: item %d outside domain of size %d", int(v), m)
				}
			}
			return &sender{m: m, window: window, t: tablesFor(m, window), input: input.Clone()}, nil
		},
		NewReceiver: func() (protocol.Receiver, error) {
			return &receiver{m: m, window: window, t: tablesFor(m, window)}, nil
		},
	}, nil
}

// MustNew is New for validated parameters; it panics on error.
func MustNew(m, window int) protocol.Spec {
	s, err := New(m, window)
	if err != nil {
		panic(err)
	}
	return s
}

// timeoutTicks is how many spontaneous steps the sender waits without a
// new cumulative ack before going back and re-sending the window.
const timeoutTicks = 6

type sender struct {
	m      int
	window int
	t      *tables
	input  seq.Seq

	base    int // lowest unacknowledged position
	next    int // next position to send fresh (base <= next <= base+window)
	stalled int // ticks since the last ack progress

	// scratch is the reused go-back burst buffer. It is only ever
	// returned from Step (whose contract says the slice is valid until
	// the next Step) and nil'd on Clone, so model-checker clones never
	// share it across workers.
	scratch []msg.Msg
}

var _ protocol.Sender = (*sender)(nil)

func (s *sender) mod() int { return s.window + 1 }

func (s *sender) Step(ev protocol.Event) []msg.Msg {
	switch ev.Kind {
	case protocol.Recv:
		n, ok := s.t.ackVal[ev.Msg]
		if !ok {
			// Non-canonical spelling (corruption): the pre-interning
			// parse, which accepts a superset of the table's encodings.
			// The scanned local lives only in this branch so the fast
			// path stays allocation-free.
			var pn int
			if _, err := fmt.Sscanf(string(ev.Msg), "ga:%d", &pn); err != nil {
				return nil
			}
			n = pn
		}
		// Cumulative ack: the receiver expects frame n next. The true
		// expectation position p lies in [base, next], whose span is at
		// most the window, so p is the unique position there congruent to
		// n modulo window+1 — slide base to it.
		for s.base < s.next && s.base%s.mod() != n {
			s.base++
			s.stalled = 0
		}
		return nil
	case protocol.Tick:
		if s.base >= len(s.input) {
			return nil // everything acknowledged
		}
		if s.next < len(s.input) && s.next < s.base+s.window {
			// Pipeline: send a fresh frame.
			var m []msg.Msg
			if v := int(s.input[s.next]); v >= 0 && v < s.m {
				m = s.t.dataSend[s.next%s.mod()][v]
			} else {
				m = []msg.Msg{DataMsg(s.mod(), s.next, s.input[s.next])}
			}
			s.next++
			return m
		}
		// Window full (or input exhausted): wait for acks, then go back.
		s.stalled++
		if s.stalled > timeoutTicks {
			s.stalled = 0
			// Go back n: retransmit the whole outstanding window in one
			// burst (each frame is a separate message on the link),
			// reusing the scratch buffer across bursts.
			burst := s.scratch[:0]
			for i := s.base; i < s.next; i++ {
				if v := int(s.input[i]); v >= 0 && v < s.m {
					burst = append(burst, s.t.data[i%s.mod()][v])
				} else {
					burst = append(burst, DataMsg(s.mod(), i, s.input[i]))
				}
			}
			s.scratch = burst
			return burst
		}
		return nil
	default:
		return nil
	}
}

func (s *sender) Alphabet() msg.Alphabet { return s.t.senderAlpha }

func (s *sender) Done() bool { return s.base >= len(s.input) }

func (s *sender) Clone() protocol.Sender {
	// The input tape is never mutated after construction, so the clone
	// shares it: the model checker clones on every explored transition.
	// The burst scratch is NOT shared: parallel-BFS workers stepping two
	// clones concurrently must not race on one buffer.
	cp := *s
	cp.scratch = nil
	return &cp
}

func (s *sender) Key() string {
	return fmt.Sprintf("gbnS{b=%d,n=%d,st=%d}", s.base, s.next, s.stalled)
}

func (s *sender) EncodeKey(buf []byte) []byte {
	buf = append(buf, 'G')
	buf = binary.AppendUvarint(buf, uint64(s.base))
	buf = binary.AppendUvarint(buf, uint64(s.next))
	return binary.AppendUvarint(buf, uint64(s.stalled))
}

// receiver accepts in-order frames only, acking cumulatively with the
// next expected frame number (re-acking on out-of-order arrivals, which
// on FIFO means "frames lost ahead of me — go back").
type receiver struct {
	m      int
	window int
	t      *tables
	next   int // positions delivered so far
}

var _ protocol.Receiver = (*receiver)(nil)

func (r *receiver) mod() int { return r.window + 1 }

func (r *receiver) Step(ev protocol.Event) ([]msg.Msg, seq.Seq) {
	if ev.Kind != protocol.Recv {
		return nil, nil
	}
	fv, ok := r.t.dataVal[ev.Msg]
	if !ok {
		// Non-canonical spelling (corruption): the pre-interning parse,
		// which accepts a superset of the table's encodings. The scanned
		// locals live only in this branch so the fast path stays
		// allocation-free.
		var n, v int
		if _, err := fmt.Sscanf(string(ev.Msg), "g:%d:%d", &n, &v); err != nil {
			return nil, nil
		}
		fv = frameValue{n, v}
	}
	if fv.n == r.next%r.mod() {
		r.next++
		if fv.v >= 0 && fv.v < r.m {
			return r.t.ackSend[r.next%r.mod()], r.t.writeOne[fv.v]
		}
		return r.t.ackSend[r.next%r.mod()], seq.Seq{seq.Item(fv.v)}
	}
	// Unexpected frame: re-ack the current expectation so the sender
	// learns where to resume.
	return r.t.ackSend[r.next%r.mod()], nil
}

func (r *receiver) Alphabet() msg.Alphabet { return r.t.receiverAlpha }

func (r *receiver) Clone() protocol.Receiver {
	cp := *r
	return &cp
}

func (r *receiver) Key() string { return fmt.Sprintf("gbnR{%d}", r.next) }

func (r *receiver) EncodeKey(buf []byte) []byte {
	buf = append(buf, 'g')
	return binary.AppendUvarint(buf, uint64(r.next))
}
