// Package gobackn implements the Go-Back-N sliding-window protocol over
// the FIFO channel with loss and duplication — the classic data-link
// pipelining refinement of the alternating-bit protocol (the [BSW69]
// lineage the paper's introduction situates STP in).
//
// The sender keeps up to Window unacknowledged frames in flight, each
// numbered modulo Window+1; the receiver accepts only the next expected
// number and acknowledges cumulatively. On a timeout the sender re-sends
// the whole outstanding window ("go back n").
//
// Relevance to the paper: Go-Back-N needs only Window+1 distinct numbers
// BECAUSE the channel preserves order. Under reordering, frame numbers
// taken modulo anything collide exactly like modseq's (experiment T9/T7
// territory), and the alpha(m) bound bites again. The package exhibits
// the boundary: safe and fast on FIFO, refutable on reordering channels.
// The benchmark ablation measures the pipelining win over stop-and-wait.
package gobackn

import (
	"encoding/binary"
	"fmt"

	"seqtx/internal/msg"
	"seqtx/internal/protocol"
	"seqtx/internal/seq"
)

// DataMsg encodes item v under frame number n (modulo window+1).
func DataMsg(mod, n int, v seq.Item) msg.Msg {
	return msg.Msg(fmt.Sprintf("g:%d:%d", n%mod, int(v)))
}

// AckMsg encodes the cumulative acknowledgement "expecting frame n next".
func AckMsg(mod, n int) msg.Msg { return msg.Msg(fmt.Sprintf("ga:%d", n%mod)) }

// New returns the protocol spec for domain size m and window >= 1.
// The frame-number space is window+1 (the classic minimum for Go-Back-N),
// so |M^S| = (window+1)·m and |M^R| = window+1.
func New(m, window int) (protocol.Spec, error) {
	if m < 0 {
		return protocol.Spec{}, fmt.Errorf("gobackn: negative domain size %d", m)
	}
	if window < 1 {
		return protocol.Spec{}, fmt.Errorf("gobackn: window %d < 1", window)
	}
	return protocol.Spec{
		Name:        fmt.Sprintf("gobackn(m=%d,W=%d)", m, window),
		Description: "Go-Back-N sliding window over FIFO: pipelined stop-and-wait",
		NewSender: func(input seq.Seq) (protocol.Sender, error) {
			for _, v := range input {
				if int(v) < 0 || int(v) >= m {
					return nil, fmt.Errorf("gobackn: item %d outside domain of size %d", int(v), m)
				}
			}
			return &sender{m: m, window: window, input: input.Clone()}, nil
		},
		NewReceiver: func() (protocol.Receiver, error) {
			return &receiver{m: m, window: window}, nil
		},
	}, nil
}

// MustNew is New for validated parameters; it panics on error.
func MustNew(m, window int) protocol.Spec {
	s, err := New(m, window)
	if err != nil {
		panic(err)
	}
	return s
}

// timeoutTicks is how many spontaneous steps the sender waits without a
// new cumulative ack before going back and re-sending the window.
const timeoutTicks = 6

type sender struct {
	m      int
	window int
	input  seq.Seq

	base    int // lowest unacknowledged position
	next    int // next position to send fresh (base <= next <= base+window)
	stalled int // ticks since the last ack progress
}

var _ protocol.Sender = (*sender)(nil)

func (s *sender) mod() int { return s.window + 1 }

func (s *sender) Step(ev protocol.Event) []msg.Msg {
	switch ev.Kind {
	case protocol.Recv:
		var n int
		if _, err := fmt.Sscanf(string(ev.Msg), "ga:%d", &n); err != nil {
			return nil
		}
		// Cumulative ack: the receiver expects frame n next. The true
		// expectation position p lies in [base, next], whose span is at
		// most the window, so p is the unique position there congruent to
		// n modulo window+1 — slide base to it.
		for s.base < s.next && s.base%s.mod() != n {
			s.base++
			s.stalled = 0
		}
		return nil
	case protocol.Tick:
		if s.base >= len(s.input) {
			return nil // everything acknowledged
		}
		if s.next < len(s.input) && s.next < s.base+s.window {
			// Pipeline: send a fresh frame.
			m := DataMsg(s.mod(), s.next, s.input[s.next])
			s.next++
			return []msg.Msg{m}
		}
		// Window full (or input exhausted): wait for acks, then go back.
		s.stalled++
		if s.stalled > timeoutTicks {
			s.stalled = 0
			// Go back n: retransmit the whole outstanding window in one
			// burst (each frame is a separate message on the link).
			var burst []msg.Msg
			for i := s.base; i < s.next; i++ {
				burst = append(burst, DataMsg(s.mod(), i, s.input[i]))
			}
			return burst
		}
		return nil
	default:
		return nil
	}
}

func (s *sender) Alphabet() msg.Alphabet {
	msgs := make([]msg.Msg, 0, s.mod()*s.m)
	for n := 0; n < s.mod(); n++ {
		for v := 0; v < s.m; v++ {
			msgs = append(msgs, DataMsg(s.mod(), n, seq.Item(v)))
		}
	}
	return msg.MustNewAlphabet(msgs...)
}

func (s *sender) Done() bool { return s.base >= len(s.input) }

func (s *sender) Clone() protocol.Sender {
	// The input tape is never mutated after construction, so the clone
	// shares it: the model checker clones on every explored transition.
	cp := *s
	return &cp
}

func (s *sender) Key() string {
	return fmt.Sprintf("gbnS{b=%d,n=%d,st=%d}", s.base, s.next, s.stalled)
}

func (s *sender) EncodeKey(buf []byte) []byte {
	buf = append(buf, 'G')
	buf = binary.AppendUvarint(buf, uint64(s.base))
	buf = binary.AppendUvarint(buf, uint64(s.next))
	return binary.AppendUvarint(buf, uint64(s.stalled))
}

// receiver accepts in-order frames only, acking cumulatively with the
// next expected frame number (re-acking on out-of-order arrivals, which
// on FIFO means "frames lost ahead of me — go back").
type receiver struct {
	m      int
	window int
	next   int // positions delivered so far
}

var _ protocol.Receiver = (*receiver)(nil)

func (r *receiver) mod() int { return r.window + 1 }

func (r *receiver) Step(ev protocol.Event) ([]msg.Msg, seq.Seq) {
	if ev.Kind != protocol.Recv {
		return nil, nil
	}
	var n, v int
	if _, err := fmt.Sscanf(string(ev.Msg), "g:%d:%d", &n, &v); err != nil {
		return nil, nil
	}
	if n == r.next%r.mod() {
		r.next++
		return []msg.Msg{AckMsg(r.mod(), r.next)}, seq.Seq{seq.Item(v)}
	}
	// Unexpected frame: re-ack the current expectation so the sender
	// learns where to resume.
	return []msg.Msg{AckMsg(r.mod(), r.next)}, nil
}

func (r *receiver) Alphabet() msg.Alphabet {
	msgs := make([]msg.Msg, 0, r.mod())
	for n := 0; n < r.mod(); n++ {
		msgs = append(msgs, AckMsg(r.mod(), n))
	}
	return msg.MustNewAlphabet(msgs...)
}

func (r *receiver) Clone() protocol.Receiver {
	cp := *r
	return &cp
}

func (r *receiver) Key() string { return fmt.Sprintf("gbnR{%d}", r.next) }

func (r *receiver) EncodeKey(buf []byte) []byte {
	buf = append(buf, 'g')
	return binary.AppendUvarint(buf, uint64(r.next))
}
