package gobackn_test

import (
	"math/rand"
	"testing"

	"seqtx/internal/channel"
	"seqtx/internal/mc"
	"seqtx/internal/protocol"
	"seqtx/internal/protocol/gobackn"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
	"seqtx/internal/trace"
)

func TestValidation(t *testing.T) {
	t.Parallel()
	if _, err := gobackn.New(-1, 2); err == nil {
		t.Error("negative m accepted")
	}
	if _, err := gobackn.New(2, 0); err == nil {
		t.Error("zero window accepted")
	}
	spec := gobackn.MustNew(2, 3)
	if _, err := spec.NewSender(seq.FromInts(5)); err == nil {
		t.Error("out-of-domain input accepted")
	}
}

func TestAlphabetSizes(t *testing.T) {
	t.Parallel()
	spec := gobackn.MustNew(2, 3) // mod = 4
	s, _ := spec.NewSender(seq.FromInts(0))
	if got := s.Alphabet().Size(); got != 8 {
		t.Errorf("|M^S| = %d, want (W+1)·m = 8", got)
	}
	r, _ := spec.NewReceiver()
	if got := r.Alphabet().Size(); got != 4 {
		t.Errorf("|M^R| = %d, want W+1 = 4", got)
	}
}

func TestCompletesOnCleanFIFO(t *testing.T) {
	t.Parallel()
	for _, w := range []int{1, 2, 4, 7} {
		spec := gobackn.MustNew(2, w)
		input := seq.FromInts(0, 1, 1, 0, 1, 0, 0, 1, 1, 0)
		res, err := sim.RunProtocol(spec, input, channel.KindFIFO, sim.NewRoundRobin(),
			sim.Config{MaxSteps: 3000, StopWhenComplete: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.SafetyViolation != nil {
			t.Errorf("W=%d: safety: %v", w, res.SafetyViolation)
		}
		if !res.OutputComplete {
			t.Errorf("W=%d: incomplete: %s", w, res.Output)
		}
	}
}

func TestSurvivesLossAndDuplication(t *testing.T) {
	t.Parallel()
	spec := gobackn.MustNew(2, 3)
	input := seq.FromInts(1, 0, 1, 1, 0, 0, 1)
	for seed := int64(0); seed < 10; seed++ {
		res, err := sim.RunProtocol(spec, input, channel.KindFIFO,
			sim.NewBudgetDropper(seed, 5), sim.Config{MaxSteps: 20000, StopWhenComplete: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.SafetyViolation != nil {
			t.Errorf("seed %d: safety: %v", seed, res.SafetyViolation)
		}
		if !res.OutputComplete {
			t.Errorf("seed %d: incomplete: %s (%d steps)", seed, res.Output, res.Steps)
		}
	}
}

func TestRandomizedFIFOFuzz(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		w := 1 + rng.Intn(5)
		spec := gobackn.MustNew(3, w)
		input := seq.Random(rng, 3, 1+rng.Intn(10))
		res, err := sim.RunProtocol(spec, input, channel.KindFIFO,
			sim.NewBudgetDropper(int64(trial), rng.Intn(4)),
			sim.Config{MaxSteps: 30000, StopWhenComplete: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.SafetyViolation != nil {
			t.Fatalf("trial %d (W=%d, X=%s): %v", trial, w, input, res.SafetyViolation)
		}
		if !res.OutputComplete {
			t.Fatalf("trial %d (W=%d, X=%s): incomplete %s", trial, w, input, res.Output)
		}
	}
}

// TestUnsafeUnderReordering: like every mod-numbered scheme, Go-Back-N
// needs the channel's order; the model checker finds the collision on a
// del channel.
func TestUnsafeUnderReordering(t *testing.T) {
	t.Parallel()
	spec := gobackn.MustNew(1, 1) // mod 2, domain {0}
	// The witness is deep: it includes the sender's 6-tick timeout before
	// the go-back burst that creates the colliding stale copy.
	res, err := mc.Explore(spec, seq.FromInts(0, 0, 0), channel.KindDel,
		mc.ExploreConfig{MaxDepth: 22, MaxStates: 1 << 19})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("no violation under reordering")
	}
}

func TestPipelineActuallyPipelines(t *testing.T) {
	t.Parallel()
	// With window 4 the sender should have several frames in flight
	// before any ack returns.
	spec := gobackn.MustNew(2, 4)
	link, err := channel.NewLinkOfKind(channel.KindFIFO)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sim.New(spec, seq.FromInts(0, 1, 0, 1, 0), link)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := w.Apply(trace.TickS()); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.Link.Half(channel.SToR).(*channel.FIFO).Len(); got != 4 {
		t.Errorf("frames in flight after 4 ticks = %d, want 4", got)
	}
}

func TestSenderCumulativeAckSlides(t *testing.T) {
	t.Parallel()
	spec := gobackn.MustNew(2, 3) // mod 4
	s, _ := spec.NewSender(seq.FromInts(0, 1, 0, 1))
	// Send three frames.
	for i := 0; i < 3; i++ {
		if out := s.Step(protocol.TickEvent()); len(out) != 1 {
			t.Fatalf("tick %d sent %v", i, out)
		}
	}
	// Cumulative ack "expecting frame 2": positions 0 and 1 acknowledged.
	s.Step(protocol.RecvEvent(gobackn.AckMsg(4, 2)))
	if s.Done() {
		t.Fatal("done too early")
	}
	// Ack everything sent so far plus the last frame.
	if out := s.Step(protocol.TickEvent()); len(out) != 1 {
		t.Fatalf("fourth frame not sent: %v", out)
	}
	s.Step(protocol.RecvEvent(gobackn.AckMsg(4, 0))) // expecting frame 0 = position 4
	if !s.Done() {
		t.Fatalf("not done after full cumulative ack: %s", s.Key())
	}
}
