package gobackn

import (
	"math/rand"

	"seqtx/internal/protocol"
)

// Scramble implements protocol.Scrambler: base and next land anywhere
// consistent with the window's structural bounds (the ranges the Step
// code indexes by); the stall clock is arbitrary.
func (s *sender) Scramble(rng *rand.Rand) {
	n := len(s.input)
	s.base = rng.Intn(n + 1)
	hi := s.base + s.window
	if hi > n {
		hi = n
	}
	s.next = s.base + rng.Intn(hi-s.base+1)
	s.stalled = rng.Intn(timeoutTicks + 1)
}

var _ protocol.Scrambler = (*sender)(nil)

// Scramble implements protocol.Scrambler: the delivered-position counter
// lands on an arbitrary small value — its residue mod the window is all
// the protocol ever consults, so this covers every behavioural state.
func (r *receiver) Scramble(rng *rand.Rand) {
	r.next = rng.Intn(2 * (r.window + 1))
}

var _ protocol.Scrambler = (*receiver)(nil)
