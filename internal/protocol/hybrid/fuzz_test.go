package hybrid_test

import (
	"testing"

	"seqtx/internal/channel"
	"seqtx/internal/protocol/hybrid"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
)

// FuzzHybridSafety feeds the §5 hybrid arbitrary inputs, timeouts, and
// random drop-happy schedules: safety must hold in every run, no matter
// how many copies the channel deletes (liveness is only promised for at
// most one deletion, so completion is not asserted here).
func FuzzHybridSafety(f *testing.F) {
	f.Add([]byte{0, 1, 0, 1}, 4, int64(1), 1)
	f.Add([]byte{1, 1, 1}, 2, int64(9), 3)
	f.Add([]byte{}, 1, int64(0), 0)
	f.Fuzz(func(t *testing.T, raw []byte, timeout int, seed int64, dropWeight int) {
		if timeout < 1 || timeout > 16 || len(raw) > 10 {
			return
		}
		if dropWeight < 0 || dropWeight > 3 {
			return
		}
		input := make(seq.Seq, len(raw))
		for i, b := range raw {
			input[i] = seq.Item(b % 2)
		}
		spec := hybrid.MustNew(2, timeout)
		adv := sim.NewFinDelay(sim.NewRandomDropper(seed, dropWeight), 8)
		res, err := sim.RunProtocol(spec, input, channel.KindDel, adv,
			sim.Config{MaxSteps: 2500, StopWhenComplete: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.SafetyViolation != nil {
			t.Fatalf("input %s timeout %d seed %d drops %d: %v",
				input, timeout, seed, dropWeight, res.SafetyViolation)
		}
	})
}
