// Package hybrid implements the protocol sketched in the paper's §5: the
// weakly-bounded-but-unbounded solution to STP for all finite sequences,
// used to argue that weak boundedness ([LMF88]-style) admits protocols
// that "never fully recover from faults" and hence to motivate the
// stronger Definition 2.
//
// Quoting §5: "S transmits the data items in sequence and R writes and
// acknowledges them using an Alternating Bit protocol (ABP), until one of
// the processors fails to receive a message in time. (We are assuming
// here some global clock and known message delivery times.) This
// processor then starts to execute the [AFWZ89] protocol, using a
// different message alphabet ... S reads the whole input sequence and
// transmits the data items in reverse order. Thus, after having learnt
// some prefix of the sequence, R starts to learn some of its suffix. If
// the old lost message is delivered, the processors resume executions of
// the original protocol. Thus, the processors alternate ... until S sends
// a special message indicating to R that the prefix and the suffix learnt
// consist of the whole sequence."
//
// The channel is the paper's reordering, deleting link. That forces the
// defining design constraint: NO data message is ever retransmitted.
// On a reordering channel a retransmitted alternating-bit frame is the
// classic stale-copy hazard (experiment T7 exhibits it), so both streams
// send every copy exactly once, gated on acknowledgements — which is
// precisely why a genuine loss cannot be repaired in place and recovery
// must go the long way around, making the protocol unbounded:
//
//   - prefix stream (the ABP of §5): items x_1, x_2, ... forward, one in
//     flight, alternating bits, advancing on the matching ack. A timeout
//     ("fails to receive a message in time") switches S to the suffix
//     stream; a late ack ("the old lost message is delivered") switches
//     it back.
//   - suffix stream (the [AFWZ89] phase): items x_n, x_{n-1}, ... in
//     reverse order under a disjoint alphabet, same single-copy gating.
//     R buffers them: it "learns a suffix".
//   - the two streams may overlap in at most one position (each stream
//     refuses to move once the covered regions touch, except that either
//     may take the single boundary item the other has in flight — that is
//     what lets a lost copy be covered from the other side). When
//     acknowledged prefix + suffix cover the input, S repeatedly sends
//     the §5 completeness message "fin", which carries one bit: the
//     parity of |X|. From it R resolves the 0-or-1 overlap between its
//     written prefix and its buffered suffix and commits the tail.
//
// Guarantees (experiment T8 measures them):
//
//   - Safety in every run: single-copy gating makes each stream's arrival
//     order equal its send order despite reordering, and the fin parity
//     makes the commit exact.
//   - Liveness on finite-delay-fair runs (every copy eventually
//     delivered), with tolerance for one deletion: the surviving stream
//     covers the lost position from the other side.
//   - Weakly bounded: from every t_i point there is an extension, using
//     the in-flight (old) messages, in which R learns the next item in a
//     constant number of steps.
//   - NOT bounded (Definition 2): from a point whose in-flight copy is
//     barred (fresh messages only — the long-lost-message clause), the
//     only road to the next write is the whole remaining suffix plus fin,
//     so recovery grows with |X| and no f(i) bounds it.
package hybrid

import (
	"encoding/binary"
	"fmt"
	"sync"

	"seqtx/internal/msg"
	"seqtx/internal/protocol"
	"seqtx/internal/seq"
)

// PrefixMsg encodes the forward (ABP) data message: item v under bit b.
func PrefixMsg(b int, v seq.Item) msg.Msg { return msg.Msg(fmt.Sprintf("p:%d:%d", b&1, int(v))) }

// SuffixMsg encodes the backward (AFWZ-style) data message.
func SuffixMsg(b int, v seq.Item) msg.Msg { return msg.Msg(fmt.Sprintf("s:%d:%d", b&1, int(v))) }

// FinMsg is the §5 completeness message; it carries the parity of |X|,
// from which R resolves the one-position overlap of its two streams.
func FinMsg(nParity int) msg.Msg { return msg.Msg(fmt.Sprintf("fin:%d", nParity&1)) }

// PrefixAck acknowledges a forward data message by bit.
func PrefixAck(b int) msg.Msg { return msg.Msg(fmt.Sprintf("pk:%d", b&1)) }

// SuffixAck acknowledges a backward data message by bit.
func SuffixAck(b int) msg.Msg { return msg.Msg(fmt.Sprintf("sk:%d", b&1)) }

// FinAck acknowledges fin.
const FinAck = msg.Msg("fk")

// DefaultTimeout is the default number of sender ticks waiting for an
// acknowledgement before the sender assumes a loss and switches streams.
const DefaultTimeout = 8

// finAckSend is the shared one-message send slice for FinAck.
var finAckSend = []msg.Msg{FinAck}

// Decoded message kinds (tables.decode).
const (
	kindFin = iota
	kindPrefix
	kindSuffix
)

// view is a precomputed parse of a canonical sender message: its stream
// kind, bit (or fin parity, in b), and carried value.
type view struct {
	kind int
	b, v int
}

// tables is the per-m interned codec: every member of M^S/M^R with send
// singletons, write singletons, and a decode map, byte-identical to
// PrefixMsg/SuffixMsg/FinMsg/PrefixAck/SuffixAck.
type tables struct {
	senderAlpha   msg.Alphabet
	receiverAlpha msg.Alphabet

	prefixSend [2][][]msg.Msg // prefixSend[b][v] = {"p:b:v"}
	suffixSend [2][][]msg.Msg // suffixSend[b][v] = {"s:b:v"}
	finSend    [2][]msg.Msg   // finSend[par] = {"fin:par"}

	prefixAck     [2]msg.Msg // "pk:b"
	suffixAck     [2]msg.Msg // "sk:b"
	prefixAckSend [2][]msg.Msg
	suffixAckSend [2][]msg.Msg

	writeOne []seq.Seq // writeOne[v]

	decode map[msg.Msg]view
}

var tablesCache sync.Map // int (m) → *tables

func tablesFor(m int) *tables {
	if t, ok := tablesCache.Load(m); ok {
		return t.(*tables)
	}
	if m < 0 {
		m = 0
	}
	t := &tables{
		writeOne: make([]seq.Seq, m),
		decode:   make(map[msg.Msg]view, 4*m+2),
	}
	senderMsgs := make([]msg.Msg, 0, 4*m+2)
	for b := 0; b < 2; b++ {
		t.prefixSend[b] = make([][]msg.Msg, m)
		for v := 0; v < m; v++ {
			pm := PrefixMsg(b, seq.Item(v))
			senderMsgs = append(senderMsgs, pm)
			t.prefixSend[b][v] = []msg.Msg{pm}
			t.decode[pm] = view{kind: kindPrefix, b: b, v: v}
		}
	}
	for b := 0; b < 2; b++ {
		t.suffixSend[b] = make([][]msg.Msg, m)
		for v := 0; v < m; v++ {
			sm := SuffixMsg(b, seq.Item(v))
			senderMsgs = append(senderMsgs, sm)
			t.suffixSend[b][v] = []msg.Msg{sm}
			t.decode[sm] = view{kind: kindSuffix, b: b, v: v}
		}
	}
	for par := 0; par < 2; par++ {
		fm := FinMsg(par)
		senderMsgs = append(senderMsgs, fm)
		t.finSend[par] = []msg.Msg{fm}
		t.decode[fm] = view{kind: kindFin, b: par}
	}
	for b := 0; b < 2; b++ {
		t.prefixAck[b] = PrefixAck(b)
		t.suffixAck[b] = SuffixAck(b)
		t.prefixAckSend[b] = []msg.Msg{t.prefixAck[b]}
		t.suffixAckSend[b] = []msg.Msg{t.suffixAck[b]}
	}
	for v := 0; v < m; v++ {
		t.writeOne[v] = seq.Seq{seq.Item(v)}
	}
	t.senderAlpha = msg.MustNewAlphabet(senderMsgs...)
	t.receiverAlpha = msg.MustNewAlphabet(
		PrefixAck(0), PrefixAck(1), SuffixAck(0), SuffixAck(1), FinAck,
	)
	actual, _ := tablesCache.LoadOrStore(m, t)
	return actual.(*tables)
}

// New returns the protocol spec for domain size m with the given timeout
// (ticks without progress before a phase switch; >= 1).
func New(m, timeout int) (protocol.Spec, error) {
	if m < 0 {
		return protocol.Spec{}, fmt.Errorf("hybrid: negative domain size %d", m)
	}
	if timeout < 1 {
		return protocol.Spec{}, fmt.Errorf("hybrid: timeout %d < 1", timeout)
	}
	return protocol.Spec{
		Name:        fmt.Sprintf("hybrid(m=%d,to=%d)", m, timeout),
		Description: "§5 ABP/AFWZ alternation on a reordering channel: weakly bounded, not bounded",
		NewSender: func(input seq.Seq) (protocol.Sender, error) {
			for _, v := range input {
				if int(v) < 0 || int(v) >= m {
					return nil, fmt.Errorf("hybrid: item %d outside domain of size %d", int(v), m)
				}
			}
			return &sender{m: m, timeout: timeout, t: tablesFor(m), input: input.Clone(), lo: len(input)}, nil
		},
		NewReceiver: func() (protocol.Receiver, error) {
			return &receiver{m: m, t: tablesFor(m)}, nil
		},
	}, nil
}

// MustNew is New for validated parameters; it panics on error.
func MustNew(m, timeout int) protocol.Spec {
	s, err := New(m, timeout)
	if err != nil {
		panic(err)
	}
	return s
}

// sender phases.
const (
	phasePrefix = iota // ABP on x_{p+1}
	phaseSuffix        // AFWZ-style on x_{lo}
)

// sender bookkeeping, all 0-based over input positions:
//
//	prefix stream has sent positions 0..hi-1 and has acks for 0..p-1;
//	suffix stream has sent positions lo..n-1 and has acks for the last b.
//
// Stream invariants: p <= hi <= p+1 and n-lo-1 <= b+1 (one copy in flight
// per stream), and hi <= lo+1 (the covered regions overlap in at most one
// position).
type sender struct {
	m       int
	timeout int
	t       *tables
	input   seq.Seq

	p  int // acknowledged prefix length
	hi int // prefix positions sent
	b  int // acknowledged suffix length
	lo int // n - (suffix positions sent)

	phase   int
	stalled int  // ticks waiting for the outstanding ack in this phase
	finDone bool // fin acknowledged
}

var _ protocol.Sender = (*sender)(nil)

// covered reports whether acknowledged prefix + suffix span the input
// (possibly overlapping in one position).
func (s *sender) covered() bool { return s.p+s.b >= len(s.input) }

func (s *sender) Step(ev protocol.Event) []msg.Msg {
	switch ev.Kind {
	case protocol.Recv:
		s.recv(ev.Msg)
		return nil
	case protocol.Tick:
		return s.tick()
	default:
		return nil
	}
}

func (s *sender) recv(m msg.Msg) {
	switch m {
	case FinAck:
		if s.covered() {
			s.finDone = true
		}
	case s.t.prefixAck[s.p&1]:
		if s.hi > s.p {
			s.p++
			// "If the old lost message is delivered, the processors
			// resume executions of the original protocol."
			if s.phase == phasePrefix {
				s.stalled = 0
			} else if !s.covered() {
				s.phase = phasePrefix
				s.stalled = 0
			}
		}
	case s.t.suffixAck[s.b&1]:
		if len(s.input)-s.lo > s.b {
			s.b++
			if s.phase == phaseSuffix {
				s.stalled = 0
			}
		}
	}
}

// tick: data copies are sent exactly once (see the package comment); a
// phase with a copy in flight only waits, and after timeout ticks it
// hands the link to the other stream. fin, which carries no data, is the
// only message retransmitted.
func (s *sender) tick() []msg.Msg {
	if s.covered() {
		if s.finDone {
			return nil
		}
		return s.t.finSend[len(s.input)&1]
	}
	switch s.phase {
	case phasePrefix:
		return s.tickPrefix()
	default:
		return s.tickSuffix()
	}
}

func (s *sender) tickPrefix() []msg.Msg {
	if s.hi > s.p { // copy in flight: wait, then switch
		s.stalled++
		if s.stalled > s.timeout {
			s.phase = phaseSuffix
			s.stalled = 0
		}
		return nil
	}
	if s.hi <= s.lo && s.hi < len(s.input) {
		// Fresh position. hi <= lo keeps the overlap at one position: the
		// boundary item the suffix stream may have in flight.
		var m []msg.Msg
		if v := int(s.input[s.hi]); v >= 0 && v < s.m {
			m = s.t.prefixSend[s.hi&1][v]
		} else {
			m = []msg.Msg{PrefixMsg(s.hi, s.input[s.hi])}
		}
		s.hi++
		s.stalled = 0
		return m
	}
	// Nothing to send forward; the missing work is the suffix stream's.
	s.phase = phaseSuffix
	s.stalled = 0
	return nil
}

func (s *sender) tickSuffix() []msg.Msg {
	sent := len(s.input) - s.lo
	if sent > s.b { // copy in flight: wait, then switch
		s.stalled++
		if s.stalled > s.timeout {
			s.phase = phasePrefix
			s.stalled = 0
		}
		return nil
	}
	if s.lo >= s.hi && s.lo > 0 {
		// Fresh position lo-1. lo >= hi mirrors the prefix gate.
		s.lo--
		s.stalled = 0
		if v := int(s.input[s.lo]); v >= 0 && v < s.m {
			return s.t.suffixSend[sent&1][v]
		}
		return []msg.Msg{SuffixMsg(sent, s.input[s.lo])}
	}
	s.phase = phasePrefix
	s.stalled = 0
	return nil
}

func (s *sender) Alphabet() msg.Alphabet { return s.t.senderAlpha }

func (s *sender) Done() bool { return s.finDone }

func (s *sender) Clone() protocol.Sender {
	// The input tape is never mutated after construction, so the clone
	// shares it: the model checker clones on every explored transition.
	cp := *s
	return &cp
}

func (s *sender) Key() string {
	return fmt.Sprintf("hyS{p=%d,hi=%d,b=%d,lo=%d,ph=%d,st=%d,fd=%v}",
		s.p, s.hi, s.b, s.lo, s.phase, s.stalled, s.finDone)
}

func (s *sender) EncodeKey(buf []byte) []byte {
	buf = append(buf, 'H')
	buf = binary.AppendUvarint(buf, uint64(s.p))
	buf = binary.AppendUvarint(buf, uint64(s.hi))
	buf = binary.AppendUvarint(buf, uint64(s.b))
	buf = binary.AppendUvarint(buf, uint64(s.lo))
	buf = binary.AppendUvarint(buf, uint64(s.phase))
	buf = binary.AppendUvarint(buf, uint64(s.stalled))
	return append(buf, boolByte(s.finDone))
}

// receiver is mode-less: it reacts to whichever stream's messages arrive.
// Single-copy gating means each stream's messages arrive in send order
// with the expected bit; the bits are kept as cheap sanity armor.
type receiver struct {
	m        int
	t        *tables
	written  int     // prefix items written (the ABP stream)
	buffer   seq.Seq // suffix items in arrival order: x_n, x_{n-1}, ...
	finished bool
}

var _ protocol.Receiver = (*receiver)(nil)

func (r *receiver) Step(ev protocol.Event) ([]msg.Msg, seq.Seq) {
	if ev.Kind != protocol.Recv {
		return nil, nil
	}
	w, ok := r.t.decode[ev.Msg]
	if !ok {
		// Non-canonical spelling (corruption): the pre-interning parses,
		// attempted in the original fin → p → s order, which accept a
		// superset of the table's encodings. The scanned locals live
		// only in this branch so the fast path stays allocation-free.
		var b, v int
		if _, err := fmt.Sscanf(string(ev.Msg), "fin:%d", &b); err == nil {
			w = view{kind: kindFin, b: b}
		} else if _, err := fmt.Sscanf(string(ev.Msg), "p:%d:%d", &b, &v); err == nil {
			w = view{kind: kindPrefix, b: b, v: v}
		} else if _, err := fmt.Sscanf(string(ev.Msg), "s:%d:%d", &b, &v); err == nil {
			w = view{kind: kindSuffix, b: b, v: v}
		} else {
			return nil, nil
		}
	}
	switch w.kind {
	case kindFin:
		if r.finished {
			return finAckSend, nil
		}
		r.finished = true
		return finAckSend, r.commit(w.b)
	case kindPrefix:
		if !r.finished && w.b == r.written&1 {
			r.written++
			if w.v >= 0 && w.v < r.m {
				return r.t.prefixAckSend[w.b&1], r.t.writeOne[w.v]
			}
			return r.t.prefixAckSend[w.b&1], seq.Seq{seq.Item(w.v)}
		}
		return r.t.prefixAckSend[w.b&1], nil
	default: // kindSuffix
		if !r.finished && w.b == len(r.buffer)&1 {
			r.buffer = append(r.buffer, seq.Item(w.v))
		}
		return r.t.suffixAckSend[w.b&1], nil
	}
}

// commit writes the buffered suffix after the written prefix. The overlap
// between the two streams is 0 or 1 positions (sender invariant
// hi <= lo+1); its exact value is (written + |buffer| - n) and n's parity
// arrives with fin, so overlap = (written + |buffer| + parity) mod 2.
func (r *receiver) commit(nParity int) seq.Seq {
	overlap := (r.written + len(r.buffer) + nParity) & 1
	out := make(seq.Seq, 0, len(r.buffer))
	for i := len(r.buffer) - 1 - overlap; i >= 0; i-- {
		out = append(out, r.buffer[i])
	}
	return out
}

func (r *receiver) Alphabet() msg.Alphabet { return r.t.receiverAlpha }

func (r *receiver) Clone() protocol.Receiver {
	cp := *r
	cp.buffer = r.buffer.Clone()
	return &cp
}

func (r *receiver) Key() string {
	return fmt.Sprintf("hyR{w=%d,buf=%s,fin=%v}", r.written, r.buffer, r.finished)
}

func (r *receiver) EncodeKey(buf []byte) []byte {
	buf = append(buf, 'h')
	buf = binary.AppendUvarint(buf, uint64(r.written))
	buf = r.buffer.EncodeKey(buf)
	return append(buf, boolByte(r.finished))
}

// boolByte encodes a flag as a single key byte.
func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}
