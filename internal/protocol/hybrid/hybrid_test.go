package hybrid_test

import (
	"math/rand"
	"testing"

	"seqtx/internal/channel"
	"seqtx/internal/protocol/hybrid"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
)

func TestValidation(t *testing.T) {
	t.Parallel()
	if _, err := hybrid.New(-1, 4); err == nil {
		t.Fatal("negative m accepted")
	}
	if _, err := hybrid.New(2, 0); err == nil {
		t.Fatal("zero timeout accepted")
	}
	spec := hybrid.MustNew(2, 4)
	if _, err := spec.NewSender(seq.FromInts(9)); err == nil {
		t.Error("out-of-domain input accepted")
	}
	if _, err := spec.NewSender(seq.FromInts(0, 0, 1, 1, 0)); err != nil {
		t.Errorf("repeating input must be allowed: %v", err)
	}
}

func TestAlphabetSizes(t *testing.T) {
	t.Parallel()
	spec := hybrid.MustNew(3, 4)
	s, _ := spec.NewSender(seq.FromInts(0))
	if got := s.Alphabet().Size(); got != 14 {
		t.Errorf("|M^S| = %d, want 4m+2 = 14", got)
	}
	r, _ := spec.NewReceiver()
	if got := r.Alphabet().Size(); got != 5 {
		t.Errorf("|M^R| = %d, want 5", got)
	}
}

func TestFaultFreeCompletesIncrementally(t *testing.T) {
	t.Parallel()
	// Without faults the run stays in the ABP phase: every item is
	// learned incrementally (strictly increasing learn times).
	spec := hybrid.MustNew(2, hybrid.DefaultTimeout)
	input := seq.FromInts(0, 1, 1, 0, 0, 1)
	for _, kind := range []channel.Kind{channel.KindDel, channel.KindReorder} {
		res, err := sim.RunProtocol(spec, input, kind, sim.NewRoundRobin(),
			sim.Config{MaxSteps: 5000, StopWhenComplete: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.SafetyViolation != nil {
			t.Fatalf("%s: safety: %v", kind, res.SafetyViolation)
		}
		if !res.OutputComplete {
			t.Fatalf("%s: incomplete: %s", kind, res.Output)
		}
		if len(res.LearnTimes) != len(input) {
			t.Fatalf("%s: LearnTimes = %v", kind, res.LearnTimes)
		}
		for i := 1; i < len(res.LearnTimes); i++ {
			if res.LearnTimes[i] <= res.LearnTimes[i-1] {
				t.Errorf("%s: fault-free run not incremental: %v", kind, res.LearnTimes)
			}
		}
	}
}

func TestRecoversFromOneDrop(t *testing.T) {
	t.Parallel()
	// The §5 story: a single deletion is survived — the surviving stream
	// covers the lost position and fin commits the tail.
	spec := hybrid.MustNew(2, 4)
	input := seq.FromInts(1, 0, 0, 1, 1, 0, 1)
	for seed := int64(0); seed < 10; seed++ {
		res, err := sim.RunProtocol(spec, input, channel.KindDel,
			sim.NewBudgetDropper(seed, 1), sim.Config{MaxSteps: 20000, StopWhenComplete: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.SafetyViolation != nil {
			t.Errorf("seed %d: safety: %v", seed, res.SafetyViolation)
		}
		if !res.OutputComplete {
			t.Errorf("seed %d: incomplete: %s (steps %d)", seed, res.Output, res.Steps)
		}
	}
}

func TestRandomizedDelayAndReorder(t *testing.T) {
	t.Parallel()
	// Random inputs under heavy delay/reordering (no deletion): safety
	// and liveness must hold throughout.
	rng := rand.New(rand.NewSource(99))
	spec := hybrid.MustNew(3, 3)
	for trial := 0; trial < 25; trial++ {
		input := seq.Random(rng, 3, 1+rng.Intn(9))
		res, err := sim.RunProtocol(spec, input, channel.KindReorder,
			sim.NewFinDelay(sim.NewRandom(int64(trial)), 12),
			sim.Config{MaxSteps: 30000, StopWhenComplete: true})
		if err != nil {
			t.Fatalf("trial %d (input %s): %v", trial, input, err)
		}
		if res.SafetyViolation != nil {
			t.Fatalf("trial %d (input %s): safety: %v", trial, input, res.SafetyViolation)
		}
		if !res.OutputComplete {
			t.Fatalf("trial %d (input %s): incomplete: %s", trial, input, res.Output)
		}
	}
}

func TestSafetyUnderArbitraryDrops(t *testing.T) {
	t.Parallel()
	// With more than one deletion liveness may be lost (the streams can
	// both stall), but safety must never break: whatever was written is a
	// prefix of X.
	rng := rand.New(rand.NewSource(7))
	spec := hybrid.MustNew(2, 3)
	for trial := 0; trial < 30; trial++ {
		input := seq.Random(rng, 2, 2+rng.Intn(8))
		res, err := sim.RunProtocol(spec, input, channel.KindDel,
			sim.NewRandomDropper(int64(trial), 1), sim.Config{MaxSteps: 4000})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.SafetyViolation != nil {
			t.Fatalf("trial %d (input %s): safety: %v", trial, input, res.SafetyViolation)
		}
	}
}

func TestEmptyAndSingletonInputs(t *testing.T) {
	t.Parallel()
	spec := hybrid.MustNew(2, 4)
	for _, input := range []seq.Seq{{}, seq.FromInts(1)} {
		res, err := sim.RunProtocol(spec, input, channel.KindDel, sim.NewRoundRobin(),
			sim.Config{MaxSteps: 2000, StopWhenComplete: true})
		if err != nil {
			t.Fatal(err)
		}
		if !res.OutputComplete || res.SafetyViolation != nil {
			t.Errorf("input %s: complete=%v violation=%v", input, res.OutputComplete, res.SafetyViolation)
		}
	}
}

// TestSingleLossForcesSuffixDetour is the §5 behaviour: after the first
// data message is lost, the receiver learns nothing until the whole
// suffix has arrived in reverse plus fin — everything commits at once.
func TestSingleLossForcesSuffixDetour(t *testing.T) {
	t.Parallel()
	spec := hybrid.MustNew(2, 3)
	n := 10
	input := make(seq.Seq, n)
	for i := range input {
		input[i] = seq.Item(i % 2)
	}
	res, err := sim.RunProtocol(spec, input, channel.KindDel,
		sim.NewBudgetDropper(0, 1), sim.Config{MaxSteps: 30000, StopWhenComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.SafetyViolation != nil {
		t.Fatalf("safety: %v", res.SafetyViolation)
	}
	if !res.OutputComplete {
		t.Fatalf("incomplete: %s", res.Output)
	}
	last := res.LearnTimes[len(res.LearnTimes)-1]
	group := 0
	for i := len(res.LearnTimes) - 1; i >= 0 && res.LearnTimes[i] == last; i-- {
		group++
	}
	if group < n/2 {
		t.Errorf("expected a batched suffix commit; learn times %v", res.LearnTimes)
	}
}

// TestOverlapParityResolution drives the boundary case where one position
// is delivered by both streams: the fin parity must prevent a duplicate
// write. A lost prefix ACK (not data) leaves R with the item written while
// the sender covers the same position from the suffix side.
func TestOverlapParityResolution(t *testing.T) {
	t.Parallel()
	spec := hybrid.MustNew(2, 2)
	for _, n := range []int{1, 2, 3, 5, 8} {
		input := make(seq.Seq, n)
		for i := range input {
			input[i] = seq.Item((i + 1) % 2)
		}
		// Drop the second deliverable copy (usually the first ack).
		for seed := int64(0); seed < 6; seed++ {
			res, err := sim.RunProtocol(spec, input, channel.KindDel,
				sim.NewBudgetDropper(seed, 1), sim.Config{MaxSteps: 20000, StopWhenComplete: true})
			if err != nil {
				t.Fatal(err)
			}
			if res.SafetyViolation != nil {
				t.Fatalf("n=%d seed=%d: duplicate write: %v", n, seed, res.SafetyViolation)
			}
			if !res.OutputComplete {
				t.Fatalf("n=%d seed=%d: incomplete %s", n, seed, res.Output)
			}
		}
	}
}
