package hybrid

import (
	"math/rand"

	"seqtx/internal/protocol"
	"seqtx/internal/seq"
)

// Scramble implements protocol.Scrambler: every cursor lands anywhere in
// the structural ranges the Step code indexes by (p <= hi <= n for the
// prefix stream, lo <= n with b <= n-lo for the suffix stream); phase,
// stall clock, and fin state are arbitrary.
func (s *sender) Scramble(rng *rand.Rand) {
	n := len(s.input)
	s.hi = rng.Intn(n + 1)
	s.p = rng.Intn(s.hi + 1)
	s.lo = rng.Intn(n + 1)
	s.b = rng.Intn(n - s.lo + 1)
	s.phase = rng.Intn(2)
	s.stalled = rng.Intn(s.timeout + 1)
	s.finDone = rng.Intn(2) == 1
}

var _ protocol.Scrambler = (*sender)(nil)

// Scramble implements protocol.Scrambler: an arbitrary prefix progress
// counter, an arbitrary suffix arrival buffer (junk included), and an
// arbitrary finished flag.
func (r *receiver) Scramble(rng *rand.Rand) {
	r.written = rng.Intn(7)
	k := rng.Intn(4)
	r.buffer = r.buffer[:0]
	for i := 0; i < k && r.m > 0; i++ {
		r.buffer = append(r.buffer, seq.Item(rng.Intn(r.m)))
	}
	r.finished = rng.Intn(2) == 1
}

var _ protocol.Scrambler = (*receiver)(nil)
