// Package modseq implements the paper's §6 outlook — "it is conceivable
// that we sometimes can be satisfied with 'solutions' to X-STP with
// |X| > alpha(m) that, although having the POSSIBILITY of failure,
// present an acceptably low PROBABILITY of failure" — as a concrete
// protocol: Stenning's scheme with sequence numbers reduced modulo a
// window M.
//
// The alphabet is finite (M·|D| data messages + M acknowledgements), and
// the allowable X is every sequence over D — far beyond alpha(m). By
// Theorem 1/2 this cannot be safe in every run, and indeed the product
// model checker exhibits the failure: a stale data message whose position
// collides modulo M with the receiver's expectation is accepted as
// current (experiment T9 prints the witness). But against a RANDOM
// channel rather than an adversarial one, a collision requires a stale
// copy to survive M full protocol rounds, so the failure probability
// decays rapidly with M — which T9 measures by Monte Carlo.
//
// This is exactly the trade the paper's conclusion anticipates: pay
// alphabet (M times more messages) to push the failure probability down,
// without ever reaching the impossible zero.
package modseq

import (
	"encoding/binary"
	"fmt"
	"sync"

	"seqtx/internal/msg"
	"seqtx/internal/protocol"
	"seqtx/internal/seq"
)

// DataMsg encodes item v at position i, reduced modulo the window.
func DataMsg(window, i int, v seq.Item) msg.Msg {
	return msg.Msg(fmt.Sprintf("d:%d:%d", i%window, int(v)))
}

// AckMsg encodes the acknowledgement for position i modulo the window.
func AckMsg(window, i int) msg.Msg {
	return msg.Msg(fmt.Sprintf("a:%d", i%window))
}

// tables is the per-(m, window) interned codec: every member of
// M^S/M^R with send singletons, write singletons, and a decode map,
// byte-identical to DataMsg/AckMsg.
type tables struct {
	senderAlpha   msg.Alphabet
	receiverAlpha msg.Alphabet
	ack           []msg.Msg     // ack[i] = "a:i", i in [0, window)
	ackSend       [][]msg.Msg   // ackSend[i]
	dataSend      [][][]msg.Msg // dataSend[i][v]
	writeOne      []seq.Seq     // writeOne[v]
	dataVal       map[msg.Msg]posValue
}

type posValue struct{ i, v int }

type tablesKey struct{ m, window int }

var tablesCache sync.Map // tablesKey → *tables

func tablesFor(m, window int) *tables {
	key := tablesKey{m, window}
	if t, ok := tablesCache.Load(key); ok {
		return t.(*tables)
	}
	if m < 0 {
		m = 0
	}
	t := &tables{
		ack:      make([]msg.Msg, window),
		ackSend:  make([][]msg.Msg, window),
		dataSend: make([][][]msg.Msg, window),
		writeOne: make([]seq.Seq, m),
		dataVal:  make(map[msg.Msg]posValue, window*m),
	}
	senderMsgs := make([]msg.Msg, 0, window*m)
	for i := 0; i < window; i++ {
		t.ack[i] = AckMsg(window, i)
		t.ackSend[i] = []msg.Msg{t.ack[i]}
		t.dataSend[i] = make([][]msg.Msg, m)
		for v := 0; v < m; v++ {
			dm := DataMsg(window, i, seq.Item(v))
			senderMsgs = append(senderMsgs, dm)
			t.dataSend[i][v] = []msg.Msg{dm}
			t.dataVal[dm] = posValue{i, v}
		}
	}
	for v := 0; v < m; v++ {
		t.writeOne[v] = seq.Seq{seq.Item(v)}
	}
	t.senderAlpha = msg.MustNewAlphabet(senderMsgs...)
	t.receiverAlpha = msg.MustNewAlphabet(t.ack...)
	actual, _ := tablesCache.LoadOrStore(key, t)
	return actual.(*tables)
}

// New returns the protocol spec for domain size m and sequence-number
// window M >= 1. |M^S| = M·m, |M^R| = M. Window 1 degenerates to the
// naive write-everything protocol; window 2 is ABP-with-value-payloads.
func New(m, window int) (protocol.Spec, error) {
	if m < 0 {
		return protocol.Spec{}, fmt.Errorf("modseq: negative domain size %d", m)
	}
	if window < 1 {
		return protocol.Spec{}, fmt.Errorf("modseq: window %d < 1", window)
	}
	return protocol.Spec{
		Name:        fmt.Sprintf("modseq(m=%d,M=%d)", m, window),
		Description: "Stenning with sequence numbers mod M: probabilistic STP (§6 outlook)",
		NewSender: func(input seq.Seq) (protocol.Sender, error) {
			for _, v := range input {
				if int(v) < 0 || int(v) >= m {
					return nil, fmt.Errorf("modseq: item %d outside domain of size %d", int(v), m)
				}
			}
			return &sender{m: m, window: window, t: tablesFor(m, window), input: input.Clone()}, nil
		},
		NewReceiver: func() (protocol.Receiver, error) {
			return &receiver{m: m, window: window, t: tablesFor(m, window)}, nil
		},
	}, nil
}

// MustNew is New for validated parameters; it panics on error.
func MustNew(m, window int) protocol.Spec {
	s, err := New(m, window)
	if err != nil {
		panic(err)
	}
	return s
}

// sender retransmits the lowest unacknowledged position each tick,
// advancing on an acknowledgement that matches it modulo the window.
type sender struct {
	m      int
	window int
	t      *tables
	input  seq.Seq
	next   int
}

var _ protocol.Sender = (*sender)(nil)

func (s *sender) Step(ev protocol.Event) []msg.Msg {
	switch ev.Kind {
	case protocol.Recv:
		if s.next < len(s.input) && ev.Msg == s.t.ack[s.next%s.window] {
			s.next++
		}
		return nil
	case protocol.Tick:
		if s.next < len(s.input) {
			if v := int(s.input[s.next]); v >= 0 && v < s.m {
				return s.t.dataSend[s.next%s.window][v]
			}
			return []msg.Msg{DataMsg(s.window, s.next, s.input[s.next])}
		}
		return nil
	default:
		return nil
	}
}

func (s *sender) Alphabet() msg.Alphabet { return s.t.senderAlpha }

func (s *sender) Done() bool { return s.next >= len(s.input) }

func (s *sender) Clone() protocol.Sender {
	// The input tape is never mutated after construction, so the clone
	// shares it: the model checker clones on every explored transition.
	cp := *s
	return &cp
}

func (s *sender) Key() string { return fmt.Sprintf("modseqS{%d}", s.next) }

func (s *sender) EncodeKey(buf []byte) []byte {
	buf = append(buf, 'M')
	return binary.AppendUvarint(buf, uint64(s.next))
}

// receiver writes a data message whose number matches its expectation
// modulo the window; anything else is re-acknowledged as stale. The
// soundness hole (by design): a stale copy from M positions ago matches.
type receiver struct {
	m      int
	window int
	t      *tables
	next   int
}

var _ protocol.Receiver = (*receiver)(nil)

func (r *receiver) Step(ev protocol.Event) ([]msg.Msg, seq.Seq) {
	if ev.Kind != protocol.Recv {
		return nil, nil
	}
	pv, ok := r.t.dataVal[ev.Msg]
	if !ok {
		// Non-canonical spelling (corruption): the pre-interning parse,
		// which accepts a superset of the table's encodings. The scanned
		// locals live only in this branch so the fast path stays
		// allocation-free.
		var i, v int
		if _, err := fmt.Sscanf(string(ev.Msg), "d:%d:%d", &i, &v); err != nil {
			return nil, nil
		}
	}
	if pv.i == r.next%r.window {
		r.next++
		if pv.v >= 0 && pv.v < r.m {
			return r.t.ackSend[pv.i], r.t.writeOne[pv.v]
		}
		return r.t.ackSend[pv.i], seq.Seq{seq.Item(pv.v)}
	}
	// Stale (mod-window) retransmission: re-acknowledge it so the sender
	// can advance past a lost acknowledgement.
	if pv.i >= 0 && pv.i < r.window {
		return r.t.ackSend[pv.i], nil
	}
	return []msg.Msg{msg.Msg(fmt.Sprintf("a:%d", pv.i))}, nil
}

func (r *receiver) Alphabet() msg.Alphabet { return r.t.receiverAlpha }

func (r *receiver) Clone() protocol.Receiver {
	cp := *r
	return &cp
}

func (r *receiver) Key() string { return fmt.Sprintf("modseqR{%d}", r.next) }

func (r *receiver) EncodeKey(buf []byte) []byte {
	buf = append(buf, 'm')
	return binary.AppendUvarint(buf, uint64(r.next))
}
