package modseq_test

import (
	"testing"

	"seqtx/internal/channel"
	"seqtx/internal/mc"
	"seqtx/internal/protocol"
	"seqtx/internal/protocol/modseq"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
)

func TestValidation(t *testing.T) {
	t.Parallel()
	if _, err := modseq.New(-1, 4); err == nil {
		t.Error("negative m accepted")
	}
	if _, err := modseq.New(2, 0); err == nil {
		t.Error("zero window accepted")
	}
	spec := modseq.MustNew(2, 4)
	if _, err := spec.NewSender(seq.FromInts(5)); err == nil {
		t.Error("out-of-domain input accepted")
	}
}

func TestAlphabetSizes(t *testing.T) {
	t.Parallel()
	spec := modseq.MustNew(3, 4)
	s, _ := spec.NewSender(seq.FromInts(0))
	if got := s.Alphabet().Size(); got != 12 {
		t.Errorf("|M^S| = %d, want M·m = 12", got)
	}
	r, _ := spec.NewReceiver()
	if got := r.Alphabet().Size(); got != 4 {
		t.Errorf("|M^R| = %d, want M = 4", got)
	}
}

func TestCompletesOnFriendlySchedules(t *testing.T) {
	t.Parallel()
	spec := modseq.MustNew(2, 4)
	input := seq.FromInts(0, 1, 1, 0, 0, 1, 0)
	for _, kind := range []channel.Kind{channel.KindDup, channel.KindDel, channel.KindReorder} {
		res, err := sim.RunProtocol(spec, input, kind, sim.NewRoundRobin(),
			sim.Config{MaxSteps: 4000, StopWhenComplete: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.SafetyViolation != nil || !res.OutputComplete {
			t.Errorf("%s: complete=%v violation=%v", kind, res.OutputComplete, res.SafetyViolation)
		}
	}
}

func TestSurvivesModerateDrops(t *testing.T) {
	t.Parallel()
	spec := modseq.MustNew(2, 8)
	input := seq.FromInts(1, 0, 1, 1, 0)
	for seed := int64(0); seed < 6; seed++ {
		res, err := sim.RunProtocol(spec, input, channel.KindDel,
			sim.NewBudgetDropper(seed, 5), sim.Config{MaxSteps: 6000, StopWhenComplete: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.SafetyViolation != nil || !res.OutputComplete {
			t.Errorf("seed %d: complete=%v violation=%v", seed, res.OutputComplete, res.SafetyViolation)
		}
	}
}

// TestAdversarialFailureExists is the theorem side of §6: the protocol is
// NOT safe in every run — the model checker finds the modular collision.
func TestAdversarialFailureExists(t *testing.T) {
	t.Parallel()
	// Window 2 on a dup channel: input long enough to wrap the window.
	spec := modseq.MustNew(1, 2)
	input := seq.FromInts(0, 0, 0) // positions 0,1,2; 2 ≡ 0 (mod 2)
	res, err := mc.Explore(spec, input, channel.KindDup, mc.ExploreConfig{
		MaxDepth:  14,
		MaxStates: 1 << 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("no violation found: modseq would contradict Theorem 1")
	}
}

// TestWindowOneIsNaive sanity-checks the degenerate case.
func TestWindowOneIsNaive(t *testing.T) {
	t.Parallel()
	spec := modseq.MustNew(2, 1)
	res, err := mc.Explore(spec, seq.FromInts(0, 1), channel.KindDup,
		mc.ExploreConfig{MaxDepth: 8, MaxStates: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("window 1 must be as broken as the naive protocol")
	}
}

func TestSenderReceiverKeysTrackState(t *testing.T) {
	t.Parallel()
	spec := modseq.MustNew(2, 4)
	s, _ := spec.NewSender(seq.FromInts(0, 1))
	c := s.Clone()
	c.Step(protocol.RecvEvent(modseq.AckMsg(4, 0)))
	if s.Key() == c.Key() {
		t.Error("diverged sender clones share key")
	}
	r, _ := spec.NewReceiver()
	rc := r.Clone()
	rc.Step(protocol.RecvEvent(modseq.DataMsg(4, 0, 1)))
	if r.Key() == rc.Key() {
		t.Error("diverged receiver clones share key")
	}
}
