package modseq

import (
	"math/rand"

	"seqtx/internal/protocol"
)

// Scramble implements protocol.Scrambler.
func (s *sender) Scramble(rng *rand.Rand) {
	s.next = rng.Intn(len(s.input) + 1)
}

var _ protocol.Scrambler = (*sender)(nil)

// Scramble implements protocol.Scrambler: only the residue mod the
// window matters behaviourally; small arbitrary values cover it.
func (r *receiver) Scramble(rng *rand.Rand) {
	r.next = rng.Intn(2 * (r.window + 1))
}

var _ protocol.Scrambler = (*receiver)(nil)
