// Package naive implements deliberately unsound protocols: the natural
// attempts a designer might make at solving X-STP for sets X larger than
// alpha(m). They are the concrete victims for the impossibility
// experiments (T3, T5): Theorems 1 and 2 say every such attempt must fail,
// and the model checker exhibits the failing runs.
package naive

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"seqtx/internal/msg"
	"seqtx/internal/protocol"
	"seqtx/internal/protocol/alphaproto"
	"seqtx/internal/seq"
)

// NewWriteEveryData returns the "trusting" protocol over domain size m:
// identical to the paper's tight protocol except that the receiver writes
// the value of every data message it receives, instead of only
// never-before-seen values, and the sender accepts inputs with repeated
// items. Its X is every sequence over D, so |X| > alpha(m) as soon as
// lengths exceed m — and indeed a duplicating (or retransmitting-on-del)
// channel makes R write spurious copies: a safety violation.
func NewWriteEveryData(m int) (protocol.Spec, error) {
	if m < 0 {
		return protocol.Spec{}, fmt.Errorf("naive: negative domain size %d", m)
	}
	return protocol.Spec{
		Name:        fmt.Sprintf("naive-write-every(m=%d)", m),
		Description: "tight protocol minus duplicate suppression: unsafe under duplication",
		NewSender: func(input seq.Seq) (protocol.Sender, error) {
			for _, v := range input {
				if int(v) < 0 || int(v) >= m {
					return nil, fmt.Errorf("naive: item %d outside domain of size %d", int(v), m)
				}
			}
			return &posSender{m: m, t: alphaproto.InternFor(m), input: input.Clone()}, nil
		},
		NewReceiver: func() (protocol.Receiver, error) {
			return &trustingReceiver{m: m, t: alphaproto.InternFor(m)}, nil
		},
	}, nil
}

// posSender transmits input[idx] until a matching-value ack arrives. With
// repeated items in X the value ack is ambiguous — which is precisely the
// ambiguity the paper's bound formalizes.
type posSender struct {
	m     int
	t     *alphaproto.Intern
	input seq.Seq
	idx   int
}

var _ protocol.Sender = (*posSender)(nil)

func (s *posSender) Step(ev protocol.Event) []msg.Msg {
	switch ev.Kind {
	case protocol.Recv:
		if s.idx < len(s.input) && ev.Msg == s.t.Ack(s.input[s.idx]) {
			s.idx++
		}
		return nil
	case protocol.Tick:
		if s.idx < len(s.input) {
			return s.t.DataSend(s.input[s.idx])
		}
		return nil
	default:
		return nil
	}
}

func (s *posSender) Alphabet() msg.Alphabet { return s.t.SenderAlphabet() }

func (s *posSender) Done() bool { return s.idx >= len(s.input) }

func (s *posSender) Clone() protocol.Sender {
	// The input tape is never mutated after construction, so clones share
	// it: the model checker clones on every explored transition.
	return &posSender{m: s.m, t: s.t, input: s.input, idx: s.idx}
}

func (s *posSender) Key() string { return fmt.Sprintf("naiveS{idx=%d}", s.idx) }

func (s *posSender) EncodeKey(buf []byte) []byte {
	buf = append(buf, 'N')
	return binary.AppendUvarint(buf, uint64(s.idx))
}

// Scramble implements protocol.Scrambler.
func (s *posSender) Scramble(rng *rand.Rand) {
	s.idx = rng.Intn(len(s.input) + 1)
}

// trustingReceiver writes every data message's value on receipt.
type trustingReceiver struct {
	m       int
	t       *alphaproto.Intern
	written int
}

var _ protocol.Receiver = (*trustingReceiver)(nil)

func (r *trustingReceiver) Step(ev protocol.Event) ([]msg.Msg, seq.Seq) {
	if ev.Kind != protocol.Recv {
		return nil, nil
	}
	v, ok := r.t.DataValue(ev.Msg)
	if !ok {
		return nil, nil
	}
	r.written++
	return r.t.AckSend(v), r.t.Write(v)
}

func (r *trustingReceiver) Alphabet() msg.Alphabet { return r.t.ReceiverAlphabet() }

func (r *trustingReceiver) Clone() protocol.Receiver {
	cp := *r
	return &cp
}

// Key is constant: Step never reads written, so every trusting-receiver
// state is behaviourally identical. (The write count is recoverable from
// |Y|, which global state keys track separately; the constant key is what
// lets the stabilization checker close its recurrence analysis and
// exhibit the protocol's unbounded junk-writing as a lasso.)
func (r *trustingReceiver) Key() string { return "naiveR{}" }

func (r *trustingReceiver) EncodeKey(buf []byte) []byte {
	return append(buf, 'n')
}

// Scramble implements protocol.Scrambler: the trusting receiver keeps no
// behaviourally meaningful state, so an arbitrary restart state is the
// initial state. Implementing the hook records that explicitly.
func (r *trustingReceiver) Scramble(*rand.Rand) {}

// NewFlood returns the ack-free protocol over domain size m: the sender
// just emits each item once per tick position with no feedback channel at
// all. Unsafe under reordering even without duplication — the receiver
// has no way to recover the order.
func NewFlood(m int) (protocol.Spec, error) {
	if m < 0 {
		return protocol.Spec{}, fmt.Errorf("naive: negative domain size %d", m)
	}
	return protocol.Spec{
		Name:        fmt.Sprintf("naive-flood(m=%d)", m),
		Description: "no acknowledgements: sender streams, receiver writes arrivals",
		NewSender: func(input seq.Seq) (protocol.Sender, error) {
			for _, v := range input {
				if int(v) < 0 || int(v) >= m {
					return nil, fmt.Errorf("naive: item %d outside domain of size %d", int(v), m)
				}
			}
			return &floodSender{m: m, t: alphaproto.InternFor(m), input: input.Clone()}, nil
		},
		NewReceiver: func() (protocol.Receiver, error) {
			return &trustingReceiver{m: m, t: alphaproto.InternFor(m)}, nil
		},
	}, nil
}

// floodSender sends the next item on each tick, never waiting.
type floodSender struct {
	m     int
	t     *alphaproto.Intern
	input seq.Seq
	idx   int
}

var _ protocol.Sender = (*floodSender)(nil)

func (s *floodSender) Step(ev protocol.Event) []msg.Msg {
	if ev.Kind != protocol.Tick || s.idx >= len(s.input) {
		return nil
	}
	m := s.t.DataSend(s.input[s.idx])
	s.idx++
	return m
}

func (s *floodSender) Alphabet() msg.Alphabet { return s.t.SenderAlphabet() }

func (s *floodSender) Done() bool { return s.idx >= len(s.input) }

func (s *floodSender) Clone() protocol.Sender {
	// The input tape is never mutated after construction, so clones share
	// it: the model checker clones on every explored transition.
	return &floodSender{m: s.m, t: s.t, input: s.input, idx: s.idx}
}

func (s *floodSender) Key() string { return fmt.Sprintf("floodS{idx=%d}", s.idx) }

func (s *floodSender) EncodeKey(buf []byte) []byte {
	buf = append(buf, 'O')
	return binary.AppendUvarint(buf, uint64(s.idx))
}

// Scramble implements protocol.Scrambler.
func (s *floodSender) Scramble(rng *rand.Rand) {
	s.idx = rng.Intn(len(s.input) + 1)
}
