package naive_test

import (
	"testing"

	"seqtx/internal/channel"
	"seqtx/internal/protocol"
	"seqtx/internal/protocol/alphaproto"
	"seqtx/internal/protocol/naive"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
	"seqtx/internal/trace"
)

func TestValidation(t *testing.T) {
	t.Parallel()
	if _, err := naive.NewWriteEveryData(-1); err == nil {
		t.Error("negative m accepted")
	}
	if _, err := naive.NewFlood(-1); err == nil {
		t.Error("negative m accepted")
	}
	spec, err := naive.NewWriteEveryData(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.NewSender(seq.FromInts(5)); err == nil {
		t.Error("out-of-domain input accepted")
	}
	if _, err := spec.NewSender(seq.FromInts(0, 0)); err != nil {
		t.Errorf("repeating input must be accepted (that is the point): %v", err)
	}
	flood, err := naive.NewFlood(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := flood.NewSender(seq.FromInts(7)); err == nil {
		t.Error("flood accepted out-of-domain input")
	}
}

func TestWriteEveryDataWorksWhenChannelIsKind(t *testing.T) {
	t.Parallel()
	// On a friendly schedule with no duplication the naive protocol
	// actually completes — the point is that it is not SAFE, not that it
	// never works.
	spec, err := naive.NewWriteEveryData(2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunProtocol(spec, seq.FromInts(0, 1, 0), channel.KindReorder,
		sim.NewRoundRobin(), sim.Config{MaxSteps: 500, StopWhenComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OutputComplete {
		t.Fatalf("incomplete on friendly schedule: %s", res.Output)
	}
}

func TestWriteEveryDataBrokenByReplay(t *testing.T) {
	t.Parallel()
	// A duplicating channel replaying old data messages forces a wrong
	// write on an input that does not repeat the value.
	spec, err := naive.NewWriteEveryData(2)
	if err != nil {
		t.Fatal(err)
	}
	link, err := channel.NewLinkOfKind(channel.KindDup)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sim.New(spec, seq.FromInts(0, 1), link)
	if err != nil {
		t.Fatal(err)
	}
	steps := []trace.Action{
		trace.TickS(),
		trace.Deliver(channel.SToR, alphaproto.DataMsg(0)),
		trace.Deliver(channel.RToS, alphaproto.AckMsg(0)),
		trace.TickS(),
		trace.Deliver(channel.SToR, alphaproto.DataMsg(1)),
		trace.Deliver(channel.SToR, alphaproto.DataMsg(0)), // replay!
	}
	for i, act := range steps {
		if err := w.Apply(act); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if w.SafetyViolation == nil {
		t.Fatalf("no violation; output %s", w.Output)
	}
}

func TestFloodBrokenByReordering(t *testing.T) {
	t.Parallel()
	spec, err := naive.NewFlood(2)
	if err != nil {
		t.Fatal(err)
	}
	link, err := channel.NewLinkOfKind(channel.KindDel)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sim.New(spec, seq.FromInts(0, 1), link)
	if err != nil {
		t.Fatal(err)
	}
	steps := []trace.Action{
		trace.TickS(), // sends d:0
		trace.TickS(), // sends d:1
		trace.Deliver(channel.SToR, alphaproto.DataMsg(1)), // out of order
	}
	for i, act := range steps {
		if err := w.Apply(act); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if w.SafetyViolation == nil {
		t.Fatalf("no violation; output %s", w.Output)
	}
}

func TestFloodSenderStreamsWithoutAcks(t *testing.T) {
	t.Parallel()
	spec, err := naive.NewFlood(3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := spec.NewSender(seq.FromInts(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if s.Done() {
		t.Error("done before sending")
	}
	first := s.Step(protocol.TickEvent())
	second := s.Step(protocol.TickEvent())
	if len(first) != 1 || len(second) != 1 || first[0] == second[0] {
		t.Errorf("flood sends = %v, %v", first, second)
	}
	if !s.Done() {
		t.Error("not done after streaming both items")
	}
	if got := s.Step(protocol.TickEvent()); len(got) != 0 {
		t.Errorf("done sender sent %v", got)
	}
}
