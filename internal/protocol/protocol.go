// Package protocol defines the interface between STP protocols and the
// runs model: deterministic sender/receiver state machines driven by
// events (ticks and message deliveries), exactly as in the paper's §2.1 —
// all nondeterminism belongs to the environment, and determinism of the
// processes loses no generality because the correctness criteria quantify
// over every run.
//
// Senders are created from the full input sequence, which makes the
// framework non-uniform in the paper's sense (§2.1, footnote 2): a
// sender's code may depend arbitrarily on X. The impossibility experiments
// therefore apply to this stronger model, as do the paper's theorems.
package protocol

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"seqtx/internal/msg"
	"seqtx/internal/seq"
)

// EventKind distinguishes the two things that can happen to a process.
type EventKind int

// Event kinds.
const (
	// Tick is a spontaneous step: the process acts on its own (retransmit,
	// advance a timeout clock, ...). The paper's processes may move at any
	// point; ticks are how the scheduler grants them steps.
	Tick EventKind = iota + 1
	// Recv delivers one message (§2.2: at most one per step, never in the
	// step it was sent).
	Recv
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case Tick:
		return "tick"
	case Recv:
		return "recv"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is a single step input for a process.
type Event struct {
	Kind EventKind
	Msg  msg.Msg // valid when Kind == Recv
}

// TickEvent returns the spontaneous-step event.
func TickEvent() Event { return Event{Kind: Tick} }

// RecvEvent returns a delivery event for m.
func RecvEvent(m msg.Msg) Event { return Event{Kind: Recv, Msg: m} }

// String renders the event.
func (e Event) String() string {
	if e.Kind == Recv {
		return "recv(" + string(e.Msg) + ")"
	}
	return e.Kind.String()
}

// Sender is the sender process S. Implementations must be deterministic:
// equal states fed equal events produce equal successor states and sends.
//
// Slice ownership: the slices Step returns (sends here, and sends and
// writes on Receiver) are only valid until the same process's next Step.
// Implementations may return shared read-only singletons from interned
// codec tables or reuse scratch buffers across steps — that is what
// keeps the step path allocation-free. Callers therefore either consume
// the slice before stepping again (iterate, route, compare) or copy it;
// they must never mutate it or hold it across steps.
type Sender interface {
	// Step processes one event and returns the messages S sends in this
	// step (each is placed on the S->R half by the scheduler). The
	// returned slice follows the ownership contract above: valid until
	// the next Step, not to be mutated or retained.
	Step(ev Event) (sends []msg.Msg)
	// Alphabet returns M^S, the finite set of messages S may ever send.
	// An empty alphabet (Size 0) declares "unbounded" (used only by the
	// Stenning baseline, which deliberately leaves the paper's model).
	Alphabet() msg.Alphabet
	// Done reports whether S has transmitted everything and received all
	// the acknowledgements it needs: a quiescence hint for experiments.
	Done() bool
	// Clone returns an independent deep copy (model checking support).
	Clone() Sender
	// Key returns a canonical encoding of the local state s_S; equal keys
	// must imply behaviourally identical states.
	Key() string
}

// Receiver is the receiver process R.
type Receiver interface {
	// Step processes one event and returns messages to send back to S and
	// the data items R writes onto the output tape Y in this step, in
	// order. Writes are irrevocable (safety is judged on them). Both
	// returned slices follow the ownership contract on Sender.Step:
	// valid until the next Step, not to be mutated or retained.
	Step(ev Event) (sends []msg.Msg, writes seq.Seq)
	// Alphabet returns M^R.
	Alphabet() msg.Alphabet
	// Clone returns an independent deep copy.
	Clone() Receiver
	// Key returns a canonical encoding of the local state s_R.
	Key() string
}

// KeyAppender is optionally implemented by Sender and Receiver states
// that can append a canonical binary encoding of their local state
// directly into a caller-provided buffer. The contract mirrors Key: two
// states of the same type produce equal bytes exactly when their Key
// strings are equal. Implementations must be self-delimiting (length-
// prefix every variable-length atom) so that concatenations of encodings
// remain unambiguous, and must not allocate beyond growing buf.
//
// The model checker keys every explored state; EncodeKey is its fast
// path, while Key stays as the human-readable debug view. Every protocol
// in this repository implements it; external or test states may omit it
// and fall back to the Key string via AppendKey.
type KeyAppender interface {
	EncodeKey(buf []byte) []byte
}

// AppendKey appends state's canonical encoding to buf: the binary fast
// path when state implements KeyAppender, otherwise the Key string,
// length-prefixed to keep the result self-delimiting.
func AppendKey(buf []byte, state interface{ Key() string }) []byte {
	if ka, ok := state.(KeyAppender); ok {
		return ka.EncodeKey(buf)
	}
	s := state.Key()
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// Scrambler is optionally implemented by Sender and Receiver states whose
// local state can be overwritten with an arbitrary type-valid value — the
// self-stabilization adversary of the Dolev–Dubois–Potop-Butucaru–Tixeuil
// line: a process restarts (or is hit by a transient fault) into *any*
// state its variables can hold, not just the initial one.
//
// Scramble must keep the state structurally sound (no out-of-range slice
// indices, no nil maps the Step code dereferences) while corrupting every
// logically meaningful field within its natural domain; it must be
// deterministic in the stream drawn from rng so a scrambled state is
// reproducible from the seed alone. Protocol invariants (for example
// "acks never exceeds the threshold") are exactly what Scramble is meant
// to break — a stabilizing protocol recovers anyway, a non-stabilizing
// one is refuted by the checker.
type Scrambler interface {
	Scramble(rng *rand.Rand)
}

// ScrambleState scrambles state with a fresh seeded RNG when it
// implements Scrambler and reports whether it did. Callers that need an
// amnesia fallback (restart into the initial state) rebuild the process
// first and then call this; a false return means the rebuilt initial
// state was kept as-is.
func ScrambleState(state any, seed int64) bool {
	sc, ok := state.(Scrambler)
	if !ok {
		return false
	}
	sc.Scramble(rand.New(rand.NewSource(seed)))
	return true
}

// Spec packages a protocol family: constructors plus metadata. The
// receiver constructor takes no input (Property 1a: R's initial state is
// the same in all runs — R must not know X in advance); the sender
// constructor takes the whole input sequence.
type Spec struct {
	// Name identifies the protocol (registry key).
	Name string
	// Description is a one-line summary for CLI listings.
	Description string
	// NewSender builds S for the given input. It returns an error if the
	// input is outside the protocol's allowable set X.
	NewSender func(input seq.Seq) (Sender, error)
	// NewReceiver builds R in its unique initial state.
	NewReceiver func() (Receiver, error)
}

// Validate checks the spec is fully populated.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("protocol: spec missing name")
	}
	if s.NewSender == nil || s.NewReceiver == nil {
		return fmt.Errorf("protocol: spec %q missing constructors", s.Name)
	}
	return nil
}
