package protocol

import (
	"testing"

	"seqtx/internal/seq"
)

func TestEventConstructorsAndStrings(t *testing.T) {
	t.Parallel()
	tick := TickEvent()
	if tick.Kind != Tick || tick.String() != "tick" {
		t.Errorf("tick event = %+v (%s)", tick, tick)
	}
	recv := RecvEvent("m1")
	if recv.Kind != Recv || recv.Msg != "m1" || recv.String() != "recv(m1)" {
		t.Errorf("recv event = %+v (%s)", recv, recv)
	}
	if got := Tick.String(); got != "tick" {
		t.Errorf("Tick.String() = %q", got)
	}
	if got := Recv.String(); got != "recv" {
		t.Errorf("Recv.String() = %q", got)
	}
	if got := EventKind(9).String(); got != "EventKind(9)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestSpecValidate(t *testing.T) {
	t.Parallel()
	ok := Spec{
		Name:        "x",
		NewSender:   func(seq.Seq) (Sender, error) { return nil, nil },
		NewReceiver: func() (Receiver, error) { return nil, nil },
	}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	if err := (Spec{}).Validate(); err == nil {
		t.Error("empty spec accepted")
	}
	if err := (Spec{Name: "x"}).Validate(); err == nil {
		t.Error("spec without constructors accepted")
	}
}
