package selrepeat

import (
	"math/rand"

	"seqtx/internal/protocol"
	"seqtx/internal/seq"
)

// Scramble implements protocol.Scrambler: window endpoints land anywhere
// consistent with the structural bounds the Step code indexes by, with an
// arbitrary subset of the outstanding window marked acknowledged.
func (s *sender) Scramble(rng *rand.Rand) {
	n := len(s.input)
	s.base = rng.Intn(n + 1)
	hi := s.base + s.window
	if hi > n {
		hi = n
	}
	s.next = s.base + rng.Intn(hi-s.base+1)
	s.acked = make(map[int]bool)
	for i := s.base; i < s.next; i++ {
		if rng.Intn(2) == 1 {
			s.acked[i] = true
		}
	}
	s.stalled = rng.Intn(timeoutTicks + 1)
}

var _ protocol.Scrambler = (*sender)(nil)

// Scramble implements protocol.Scrambler: an arbitrary delivered count
// plus an arbitrary out-of-order buffer ahead of it (junk items included
// — exactly the state a transient fault could leave behind).
func (r *receiver) Scramble(rng *rand.Rand) {
	r.next = rng.Intn(2 * (r.window + 1))
	r.buffered = make(map[int]seq.Item)
	for i := r.next + 1; i < r.next+r.window; i++ {
		if r.m > 0 && rng.Intn(3) == 0 {
			r.buffered[i] = seq.Item(rng.Intn(r.m))
		}
	}
}

var _ protocol.Scrambler = (*receiver)(nil)
