// Package selrepeat implements the Selective Repeat sliding-window
// protocol over the FIFO channel with loss and duplication: the classic
// refinement of Go-Back-N in which the receiver buffers out-of-order...
// except that on a FIFO link nothing arrives out of order — frames arrive
// in send order with gaps where copies were lost. Selective Repeat's win
// over Go-Back-N is therefore that a loss costs ONE retransmission
// instead of a whole window: the receiver acknowledges each frame
// individually, and the sender retransmits only the unacknowledged ones.
//
// The frame-number space is 2·Window (the textbook minimum: the
// receiver's acceptance window and the sender's retransmission window
// must never overlap modulo the number space).
//
// Relevance to the paper: a third point on the alphabet-vs-performance
// curve of the data-link lineage ([BSW69], [Ste76]). Like every
// mod-numbered scheme it is safe only because the channel preserves
// order; the model checker exhibits its failure under reordering, and the
// alpha(m) bound explains why no amount of cleverness can avoid that.
package selrepeat

import (
	"encoding/binary"
	"fmt"
	"strings"

	"seqtx/internal/msg"
	"seqtx/internal/protocol"
	"seqtx/internal/seq"
)

// DataMsg encodes item v under frame number n (modulo 2·window).
func DataMsg(mod, n int, v seq.Item) msg.Msg {
	return msg.Msg(fmt.Sprintf("s:%d:%d", n%mod, int(v)))
}

// AckMsg encodes the individual acknowledgement of frame n.
func AckMsg(mod, n int) msg.Msg { return msg.Msg(fmt.Sprintf("sa:%d", n%mod)) }

// New returns the protocol spec for domain size m and window >= 1.
// |M^S| = 2·window·m, |M^R| = 2·window.
func New(m, window int) (protocol.Spec, error) {
	if m < 0 {
		return protocol.Spec{}, fmt.Errorf("selrepeat: negative domain size %d", m)
	}
	if window < 1 {
		return protocol.Spec{}, fmt.Errorf("selrepeat: window %d < 1", window)
	}
	return protocol.Spec{
		Name:        fmt.Sprintf("selrepeat(m=%d,W=%d)", m, window),
		Description: "Selective Repeat sliding window over FIFO: per-frame retransmission",
		NewSender: func(input seq.Seq) (protocol.Sender, error) {
			for _, v := range input {
				if int(v) < 0 || int(v) >= m {
					return nil, fmt.Errorf("selrepeat: item %d outside domain of size %d", int(v), m)
				}
			}
			return &sender{m: m, window: window, input: input.Clone(), acked: map[int]bool{}}, nil
		},
		NewReceiver: func() (protocol.Receiver, error) {
			return &receiver{m: m, window: window, buffered: map[int]seq.Item{}}, nil
		},
	}, nil
}

// MustNew is New for validated parameters; it panics on error.
func MustNew(m, window int) protocol.Spec {
	s, err := New(m, window)
	if err != nil {
		panic(err)
	}
	return s
}

// timeoutTicks is how long the sender waits with a full window before
// retransmitting its unacknowledged frames.
const timeoutTicks = 6

type sender struct {
	m      int
	window int
	input  seq.Seq

	base    int          // lowest unacknowledged position
	next    int          // next position never sent
	acked   map[int]bool // individually acknowledged positions >= base
	stalled int
}

var _ protocol.Sender = (*sender)(nil)

func (s *sender) mod() int { return 2 * s.window }

func (s *sender) Step(ev protocol.Event) []msg.Msg {
	switch ev.Kind {
	case protocol.Recv:
		var n int
		if _, err := fmt.Sscanf(string(ev.Msg), "sa:%d", &n); err != nil {
			return nil
		}
		// The acknowledged position is the unique one in [base, next)
		// congruent to n (the window never spans mod() positions).
		for p := s.base; p < s.next; p++ {
			if p%s.mod() == n {
				if !s.acked[p] {
					s.acked[p] = true
					s.stalled = 0
				}
				break
			}
		}
		for s.acked[s.base] {
			delete(s.acked, s.base)
			s.base++
		}
		return nil
	case protocol.Tick:
		if s.base >= len(s.input) {
			return nil
		}
		if s.next < len(s.input) && s.next < s.base+s.window {
			m := DataMsg(s.mod(), s.next, s.input[s.next])
			s.next++
			return []msg.Msg{m}
		}
		s.stalled++
		if s.stalled > timeoutTicks {
			s.stalled = 0
			// Selective: retransmit only the unacknowledged frames.
			var burst []msg.Msg
			for p := s.base; p < s.next; p++ {
				if !s.acked[p] {
					burst = append(burst, DataMsg(s.mod(), p, s.input[p]))
				}
			}
			return burst
		}
		return nil
	default:
		return nil
	}
}

func (s *sender) Alphabet() msg.Alphabet {
	msgs := make([]msg.Msg, 0, s.mod()*s.m)
	for n := 0; n < s.mod(); n++ {
		for v := 0; v < s.m; v++ {
			msgs = append(msgs, DataMsg(s.mod(), n, seq.Item(v)))
		}
	}
	return msg.MustNewAlphabet(msgs...)
}

func (s *sender) Done() bool { return s.base >= len(s.input) }

func (s *sender) Clone() protocol.Sender {
	// The input tape is never mutated after construction, so the clone
	// shares it: the model checker clones on every explored transition.
	cp := *s
	cp.acked = make(map[int]bool, len(s.acked))
	for k, v := range s.acked {
		cp.acked[k] = v
	}
	return &cp
}

func (s *sender) Key() string {
	acked := make([]string, 0, len(s.acked))
	for p := s.base; p < s.next; p++ {
		if s.acked[p] {
			acked = append(acked, fmt.Sprint(p))
		}
	}
	return fmt.Sprintf("srS{b=%d,n=%d,a=%s,st=%d}", s.base, s.next, strings.Join(acked, "."), s.stalled)
}

func (s *sender) EncodeKey(buf []byte) []byte {
	buf = append(buf, 'S')
	buf = binary.AppendUvarint(buf, uint64(s.base))
	buf = binary.AppendUvarint(buf, uint64(s.next))
	count := 0
	for p := s.base; p < s.next; p++ {
		if s.acked[p] {
			count++
		}
	}
	buf = binary.AppendUvarint(buf, uint64(count))
	for p := s.base; p < s.next; p++ {
		if s.acked[p] {
			buf = binary.AppendUvarint(buf, uint64(p))
		}
	}
	return binary.AppendUvarint(buf, uint64(s.stalled))
}

// receiver accepts any frame inside its window, buffers it, acknowledges
// it individually, and writes buffered items as the in-order prefix
// fills in.
type receiver struct {
	m        int
	window   int
	next     int              // positions written so far
	buffered map[int]seq.Item // accepted positions >= next awaiting the gap
}

var _ protocol.Receiver = (*receiver)(nil)

func (r *receiver) mod() int { return 2 * r.window }

func (r *receiver) Step(ev protocol.Event) ([]msg.Msg, seq.Seq) {
	if ev.Kind != protocol.Recv {
		return nil, nil
	}
	var n, v int
	if _, err := fmt.Sscanf(string(ev.Msg), "s:%d:%d", &n, &v); err != nil {
		return nil, nil
	}
	// Identify the position: within the acceptance window [next,
	// next+window) it is the unique one congruent to n. A frame congruent
	// to an already-delivered position (the trailing window) is a
	// retransmission: re-ack it but do not buffer.
	pos := -1
	for p := r.next; p < r.next+r.window; p++ {
		if p%r.mod() == n {
			pos = p
			break
		}
	}
	if pos < 0 {
		// Trailing window: a duplicate of something already delivered.
		return []msg.Msg{msg.Msg(fmt.Sprintf("sa:%d", n))}, nil
	}
	r.buffered[pos] = seq.Item(v)
	var writes seq.Seq
	for {
		item, ok := r.buffered[r.next]
		if !ok {
			break
		}
		delete(r.buffered, r.next)
		writes = append(writes, item)
		r.next++
	}
	return []msg.Msg{AckMsg(r.mod(), pos)}, writes
}

func (r *receiver) Alphabet() msg.Alphabet {
	msgs := make([]msg.Msg, 0, r.mod())
	for n := 0; n < r.mod(); n++ {
		msgs = append(msgs, msg.Msg(fmt.Sprintf("sa:%d", n)))
	}
	return msg.MustNewAlphabet(msgs...)
}

func (r *receiver) Clone() protocol.Receiver {
	cp := *r
	cp.buffered = make(map[int]seq.Item, len(r.buffered))
	for k, v := range r.buffered {
		cp.buffered[k] = v
	}
	return &cp
}

func (r *receiver) Key() string {
	buf := make([]string, 0, len(r.buffered))
	for p := r.next; p < r.next+r.window; p++ {
		if v, ok := r.buffered[p]; ok {
			buf = append(buf, fmt.Sprintf("%d=%d", p, int(v)))
		}
	}
	return fmt.Sprintf("srR{%d|%s}", r.next, strings.Join(buf, ","))
}

func (r *receiver) EncodeKey(buf []byte) []byte {
	buf = append(buf, 'V')
	buf = binary.AppendUvarint(buf, uint64(r.next))
	buf = binary.AppendUvarint(buf, uint64(len(r.buffered)))
	for p := r.next; p < r.next+r.window; p++ {
		if v, ok := r.buffered[p]; ok {
			buf = binary.AppendUvarint(buf, uint64(p))
			buf = binary.AppendVarint(buf, int64(v))
		}
	}
	return buf
}
