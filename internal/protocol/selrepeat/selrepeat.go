// Package selrepeat implements the Selective Repeat sliding-window
// protocol over the FIFO channel with loss and duplication: the classic
// refinement of Go-Back-N in which the receiver buffers out-of-order...
// except that on a FIFO link nothing arrives out of order — frames arrive
// in send order with gaps where copies were lost. Selective Repeat's win
// over Go-Back-N is therefore that a loss costs ONE retransmission
// instead of a whole window: the receiver acknowledges each frame
// individually, and the sender retransmits only the unacknowledged ones.
//
// The frame-number space is 2·Window (the textbook minimum: the
// receiver's acceptance window and the sender's retransmission window
// must never overlap modulo the number space).
//
// Relevance to the paper: a third point on the alphabet-vs-performance
// curve of the data-link lineage ([BSW69], [Ste76]). Like every
// mod-numbered scheme it is safe only because the channel preserves
// order; the model checker exhibits its failure under reordering, and the
// alpha(m) bound explains why no amount of cleverness can avoid that.
package selrepeat

import (
	"encoding/binary"
	"fmt"
	"strings"
	"sync"

	"seqtx/internal/msg"
	"seqtx/internal/protocol"
	"seqtx/internal/seq"
)

// DataMsg encodes item v under frame number n (modulo 2·window).
func DataMsg(mod, n int, v seq.Item) msg.Msg {
	return msg.Msg(fmt.Sprintf("s:%d:%d", n%mod, int(v)))
}

// AckMsg encodes the individual acknowledgement of frame n.
func AckMsg(mod, n int) msg.Msg { return msg.Msg(fmt.Sprintf("sa:%d", n%mod)) }

// tables is the per-(m, window) interned codec: every member of
// M^S/M^R with send singletons, write singletons, and decode maps,
// byte-identical to DataMsg/AckMsg.
type tables struct {
	senderAlpha   msg.Alphabet
	receiverAlpha msg.Alphabet
	data          [][]msg.Msg // data[n][v] = "s:n:v"
	ack           []msg.Msg   // ack[n] = "sa:n"
	ackSend       [][]msg.Msg // ackSend[n]
	writeOne      []seq.Seq   // writeOne[v]
	dataVal       map[msg.Msg]frameValue
	ackVal        map[msg.Msg]int
}

type frameValue struct{ n, v int }

type tablesKey struct{ m, window int }

var tablesCache sync.Map // tablesKey → *tables

func tablesFor(m, window int) *tables {
	key := tablesKey{m, window}
	if t, ok := tablesCache.Load(key); ok {
		return t.(*tables)
	}
	if m < 0 {
		m = 0
	}
	mod := 2 * window
	t := &tables{
		data:     make([][]msg.Msg, mod),
		ack:      make([]msg.Msg, mod),
		ackSend:  make([][]msg.Msg, mod),
		writeOne: make([]seq.Seq, m),
		dataVal:  make(map[msg.Msg]frameValue, mod*m),
		ackVal:   make(map[msg.Msg]int, mod),
	}
	senderMsgs := make([]msg.Msg, 0, mod*m)
	for n := 0; n < mod; n++ {
		t.ack[n] = AckMsg(mod, n)
		t.ackSend[n] = []msg.Msg{t.ack[n]}
		t.ackVal[t.ack[n]] = n
		t.data[n] = make([]msg.Msg, m)
		for v := 0; v < m; v++ {
			dm := DataMsg(mod, n, seq.Item(v))
			senderMsgs = append(senderMsgs, dm)
			t.data[n][v] = dm
			t.dataVal[dm] = frameValue{n, v}
		}
	}
	for v := 0; v < m; v++ {
		t.writeOne[v] = seq.Seq{seq.Item(v)}
	}
	t.senderAlpha = msg.MustNewAlphabet(senderMsgs...)
	t.receiverAlpha = msg.MustNewAlphabet(t.ack...)
	actual, _ := tablesCache.LoadOrStore(key, t)
	return actual.(*tables)
}

// New returns the protocol spec for domain size m and window >= 1.
// |M^S| = 2·window·m, |M^R| = 2·window.
func New(m, window int) (protocol.Spec, error) {
	if m < 0 {
		return protocol.Spec{}, fmt.Errorf("selrepeat: negative domain size %d", m)
	}
	if window < 1 {
		return protocol.Spec{}, fmt.Errorf("selrepeat: window %d < 1", window)
	}
	return protocol.Spec{
		Name:        fmt.Sprintf("selrepeat(m=%d,W=%d)", m, window),
		Description: "Selective Repeat sliding window over FIFO: per-frame retransmission",
		NewSender: func(input seq.Seq) (protocol.Sender, error) {
			for _, v := range input {
				if int(v) < 0 || int(v) >= m {
					return nil, fmt.Errorf("selrepeat: item %d outside domain of size %d", int(v), m)
				}
			}
			return &sender{m: m, window: window, t: tablesFor(m, window), input: input.Clone(), acked: map[int]bool{}}, nil
		},
		NewReceiver: func() (protocol.Receiver, error) {
			return &receiver{m: m, window: window, t: tablesFor(m, window), buffered: map[int]seq.Item{}}, nil
		},
	}, nil
}

// MustNew is New for validated parameters; it panics on error.
func MustNew(m, window int) protocol.Spec {
	s, err := New(m, window)
	if err != nil {
		panic(err)
	}
	return s
}

// timeoutTicks is how long the sender waits with a full window before
// retransmitting its unacknowledged frames.
const timeoutTicks = 6

type sender struct {
	m      int
	window int
	t      *tables
	input  seq.Seq

	base    int          // lowest unacknowledged position
	next    int          // next position never sent
	acked   map[int]bool // individually acknowledged positions >= base
	stalled int

	// scratch is the reused retransmission burst buffer. It is only
	// ever returned from Step (valid until the next Step, per the Step
	// contract) and nil'd on Clone, so model-checker clones never share
	// it across workers.
	scratch []msg.Msg
}

var _ protocol.Sender = (*sender)(nil)

func (s *sender) mod() int { return 2 * s.window }

func (s *sender) Step(ev protocol.Event) []msg.Msg {
	switch ev.Kind {
	case protocol.Recv:
		n, ok := s.t.ackVal[ev.Msg]
		if !ok {
			// Non-canonical spelling (corruption): the pre-interning
			// parse, which accepts a superset of the table's encodings.
			// The scanned local lives only in this branch so the fast
			// path stays allocation-free.
			var pn int
			if _, err := fmt.Sscanf(string(ev.Msg), "sa:%d", &pn); err != nil {
				return nil
			}
			n = pn
		}
		// The acknowledged position is the unique one in [base, next)
		// congruent to n (the window never spans mod() positions).
		for p := s.base; p < s.next; p++ {
			if p%s.mod() == n {
				if !s.acked[p] {
					s.acked[p] = true
					s.stalled = 0
				}
				break
			}
		}
		for s.acked[s.base] {
			delete(s.acked, s.base)
			s.base++
		}
		return nil
	case protocol.Tick:
		if s.base >= len(s.input) {
			return nil
		}
		if s.next < len(s.input) && s.next < s.base+s.window {
			var m []msg.Msg
			if v := int(s.input[s.next]); v >= 0 && v < s.m {
				m = s.scratch[:0]
				m = append(m, s.t.data[s.next%s.mod()][v])
				s.scratch = m
			} else {
				m = []msg.Msg{DataMsg(s.mod(), s.next, s.input[s.next])}
			}
			s.next++
			return m
		}
		s.stalled++
		if s.stalled > timeoutTicks {
			s.stalled = 0
			// Selective: retransmit only the unacknowledged frames,
			// reusing the scratch buffer across bursts.
			burst := s.scratch[:0]
			for p := s.base; p < s.next; p++ {
				if !s.acked[p] {
					if v := int(s.input[p]); v >= 0 && v < s.m {
						burst = append(burst, s.t.data[p%s.mod()][v])
					} else {
						burst = append(burst, DataMsg(s.mod(), p, s.input[p]))
					}
				}
			}
			s.scratch = burst
			if len(burst) == 0 {
				return nil
			}
			return burst
		}
		return nil
	default:
		return nil
	}
}

func (s *sender) Alphabet() msg.Alphabet { return s.t.senderAlpha }

func (s *sender) Done() bool { return s.base >= len(s.input) }

func (s *sender) Clone() protocol.Sender {
	// The input tape is never mutated after construction, so the clone
	// shares it: the model checker clones on every explored transition.
	// The burst scratch is NOT shared: parallel-BFS workers stepping two
	// clones concurrently must not race on one buffer.
	cp := *s
	cp.scratch = nil
	cp.acked = make(map[int]bool, len(s.acked))
	for k, v := range s.acked {
		cp.acked[k] = v
	}
	return &cp
}

func (s *sender) Key() string {
	acked := make([]string, 0, len(s.acked))
	for p := s.base; p < s.next; p++ {
		if s.acked[p] {
			acked = append(acked, fmt.Sprint(p))
		}
	}
	return fmt.Sprintf("srS{b=%d,n=%d,a=%s,st=%d}", s.base, s.next, strings.Join(acked, "."), s.stalled)
}

func (s *sender) EncodeKey(buf []byte) []byte {
	buf = append(buf, 'S')
	buf = binary.AppendUvarint(buf, uint64(s.base))
	buf = binary.AppendUvarint(buf, uint64(s.next))
	count := 0
	for p := s.base; p < s.next; p++ {
		if s.acked[p] {
			count++
		}
	}
	buf = binary.AppendUvarint(buf, uint64(count))
	for p := s.base; p < s.next; p++ {
		if s.acked[p] {
			buf = binary.AppendUvarint(buf, uint64(p))
		}
	}
	return binary.AppendUvarint(buf, uint64(s.stalled))
}

// receiver accepts any frame inside its window, buffers it, acknowledges
// it individually, and writes buffered items as the in-order prefix
// fills in.
type receiver struct {
	m        int
	window   int
	t        *tables
	next     int              // positions written so far
	buffered map[int]seq.Item // accepted positions >= next awaiting the gap

	// wscratch is the reused gap-fill write buffer, nil'd on Clone for
	// the same reason as the sender's burst scratch.
	wscratch seq.Seq
}

var _ protocol.Receiver = (*receiver)(nil)

func (r *receiver) mod() int { return 2 * r.window }

func (r *receiver) Step(ev protocol.Event) ([]msg.Msg, seq.Seq) {
	if ev.Kind != protocol.Recv {
		return nil, nil
	}
	fv, ok := r.t.dataVal[ev.Msg]
	if !ok {
		// Non-canonical spelling (corruption): the pre-interning parse,
		// which accepts a superset of the table's encodings. The scanned
		// locals live only in this branch so the fast path stays
		// allocation-free.
		var pn, pvv int
		if _, err := fmt.Sscanf(string(ev.Msg), "s:%d:%d", &pn, &pvv); err != nil {
			return nil, nil
		}
		fv = frameValue{pn, pvv}
	}
	n, v := fv.n, fv.v
	// Identify the position: within the acceptance window [next,
	// next+window) it is the unique one congruent to n. A frame congruent
	// to an already-delivered position (the trailing window) is a
	// retransmission: re-ack it but do not buffer.
	pos := -1
	for p := r.next; p < r.next+r.window; p++ {
		if p%r.mod() == n {
			pos = p
			break
		}
	}
	if pos < 0 {
		// Trailing window: a duplicate of something already delivered.
		// (The raw parsed n, not n%mod: a corrupted frame with an
		// out-of-range number is echoed back exactly as before.)
		if n >= 0 && n < r.mod() {
			return r.t.ackSend[n], nil
		}
		return []msg.Msg{msg.Msg(fmt.Sprintf("sa:%d", n))}, nil
	}
	r.buffered[pos] = seq.Item(v)
	writes := r.wscratch[:0]
	for {
		item, bok := r.buffered[r.next]
		if !bok {
			break
		}
		delete(r.buffered, r.next)
		writes = append(writes, item)
		r.next++
	}
	r.wscratch = writes
	if len(writes) == 0 {
		return r.t.ackSend[pos%r.mod()], nil
	}
	return r.t.ackSend[pos%r.mod()], writes
}

func (r *receiver) Alphabet() msg.Alphabet { return r.t.receiverAlpha }

func (r *receiver) Clone() protocol.Receiver {
	cp := *r
	cp.wscratch = nil
	cp.buffered = make(map[int]seq.Item, len(r.buffered))
	for k, v := range r.buffered {
		cp.buffered[k] = v
	}
	return &cp
}

func (r *receiver) Key() string {
	buf := make([]string, 0, len(r.buffered))
	for p := r.next; p < r.next+r.window; p++ {
		if v, ok := r.buffered[p]; ok {
			buf = append(buf, fmt.Sprintf("%d=%d", p, int(v)))
		}
	}
	return fmt.Sprintf("srR{%d|%s}", r.next, strings.Join(buf, ","))
}

func (r *receiver) EncodeKey(buf []byte) []byte {
	buf = append(buf, 'V')
	buf = binary.AppendUvarint(buf, uint64(r.next))
	buf = binary.AppendUvarint(buf, uint64(len(r.buffered)))
	for p := r.next; p < r.next+r.window; p++ {
		if v, ok := r.buffered[p]; ok {
			buf = binary.AppendUvarint(buf, uint64(p))
			buf = binary.AppendVarint(buf, int64(v))
		}
	}
	return buf
}
