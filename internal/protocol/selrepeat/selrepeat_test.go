package selrepeat_test

import (
	"math/rand"
	"testing"

	"seqtx/internal/channel"
	"seqtx/internal/mc"
	"seqtx/internal/protocol"
	"seqtx/internal/protocol/selrepeat"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
)

func TestValidation(t *testing.T) {
	t.Parallel()
	if _, err := selrepeat.New(-1, 2); err == nil {
		t.Error("negative m accepted")
	}
	if _, err := selrepeat.New(2, 0); err == nil {
		t.Error("zero window accepted")
	}
	spec := selrepeat.MustNew(2, 2)
	if _, err := spec.NewSender(seq.FromInts(9)); err == nil {
		t.Error("out-of-domain input accepted")
	}
}

func TestAlphabetSizes(t *testing.T) {
	t.Parallel()
	spec := selrepeat.MustNew(3, 2) // mod = 4
	s, _ := spec.NewSender(seq.FromInts(0))
	if got := s.Alphabet().Size(); got != 12 {
		t.Errorf("|M^S| = %d, want 2W·m = 12", got)
	}
	r, _ := spec.NewReceiver()
	if got := r.Alphabet().Size(); got != 4 {
		t.Errorf("|M^R| = %d, want 2W = 4", got)
	}
}

func TestCompletesOnCleanFIFO(t *testing.T) {
	t.Parallel()
	for _, w := range []int{1, 2, 4} {
		spec := selrepeat.MustNew(2, w)
		input := seq.FromInts(0, 1, 1, 0, 1, 0, 0, 1)
		res, err := sim.RunProtocol(spec, input, channel.KindFIFO, sim.NewRoundRobin(),
			sim.Config{MaxSteps: 3000, StopWhenComplete: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.SafetyViolation != nil {
			t.Errorf("W=%d: safety: %v", w, res.SafetyViolation)
		}
		if !res.OutputComplete {
			t.Errorf("W=%d: incomplete: %s", w, res.Output)
		}
	}
}

func TestSurvivesLossAndDuplication(t *testing.T) {
	t.Parallel()
	spec := selrepeat.MustNew(2, 3)
	input := seq.FromInts(1, 0, 1, 1, 0, 0, 1, 0)
	for seed := int64(0); seed < 10; seed++ {
		res, err := sim.RunProtocol(spec, input, channel.KindFIFO,
			sim.NewBudgetDropper(seed, 5), sim.Config{MaxSteps: 20000, StopWhenComplete: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.SafetyViolation != nil {
			t.Errorf("seed %d: safety: %v", seed, res.SafetyViolation)
		}
		if !res.OutputComplete {
			t.Errorf("seed %d: incomplete: %s (%d steps)", seed, res.Output, res.Steps)
		}
	}
}

func TestRandomizedFIFOFuzz(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		w := 1 + rng.Intn(4)
		spec := selrepeat.MustNew(3, w)
		input := seq.Random(rng, 3, 1+rng.Intn(10))
		res, err := sim.RunProtocol(spec, input, channel.KindFIFO,
			sim.NewBudgetDropper(int64(trial), rng.Intn(4)),
			sim.Config{MaxSteps: 30000, StopWhenComplete: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.SafetyViolation != nil {
			t.Fatalf("trial %d (W=%d, X=%s): %v", trial, w, input, res.SafetyViolation)
		}
		if !res.OutputComplete {
			t.Fatalf("trial %d (W=%d, X=%s): incomplete %s", trial, w, input, res.Output)
		}
	}
}

// TestBuffersAcrossGap: a lost middle frame is delivered later and the
// buffered successor is committed with it in one batch.
func TestBuffersAcrossGap(t *testing.T) {
	t.Parallel()
	spec := selrepeat.MustNew(2, 2) // mod 4
	r, _ := spec.NewReceiver()
	// Frame 1 (position 1) arrives before position 0: buffered, acked.
	sends, writes := r.Step(protocol.RecvEvent(selrepeat.DataMsg(4, 1, 1)))
	if len(writes) != 0 {
		t.Fatalf("gap write: %v", writes)
	}
	if len(sends) != 1 || sends[0] != selrepeat.AckMsg(4, 1) {
		t.Fatalf("ack: %v", sends)
	}
	// Position 0 arrives: both items committed in order.
	_, writes = r.Step(protocol.RecvEvent(selrepeat.DataMsg(4, 0, 0)))
	if !writes.Equal(seq.FromInts(0, 1)) {
		t.Fatalf("batched commit = %v, want 0.1", writes)
	}
}

// TestUnsafeUnderReordering: mod-numbered frames collide without order.
func TestUnsafeUnderReordering(t *testing.T) {
	t.Parallel()
	spec := selrepeat.MustNew(1, 1) // mod 2, domain {0}
	res, err := mc.Explore(spec, seq.FromInts(0, 0, 0), channel.KindDel,
		mc.ExploreConfig{MaxDepth: 22, MaxStates: 1 << 19})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("no violation under reordering")
	}
}

func TestSenderSelectiveRetransmission(t *testing.T) {
	t.Parallel()
	spec := selrepeat.MustNew(2, 3) // mod 6
	s, _ := spec.NewSender(seq.FromInts(0, 1, 0))
	// Send all three frames.
	for i := 0; i < 3; i++ {
		if out := s.Step(protocol.TickEvent()); len(out) != 1 {
			t.Fatalf("tick %d: %v", i, out)
		}
	}
	// Ack the middle frame only.
	s.Step(protocol.RecvEvent(selrepeat.AckMsg(6, 1)))
	// Time out: only frames 0 and 2 retransmitted.
	var burst []string
	for i := 0; i < 10 && len(burst) == 0; i++ {
		for _, m := range s.Step(protocol.TickEvent()) {
			burst = append(burst, string(m))
		}
	}
	if len(burst) != 2 {
		t.Fatalf("selective burst = %v, want 2 frames", burst)
	}
	if burst[0] != string(selrepeat.DataMsg(6, 0, 0)) || burst[1] != string(selrepeat.DataMsg(6, 2, 0)) {
		t.Fatalf("burst contents = %v", burst)
	}
	if s.Done() {
		t.Fatal("done with unacked frames")
	}
	s.Step(protocol.RecvEvent(selrepeat.AckMsg(6, 0)))
	s.Step(protocol.RecvEvent(selrepeat.AckMsg(6, 2)))
	if !s.Done() {
		t.Fatalf("not done after all acks: %s", s.Key())
	}
}
