// Package stab implements a self-stabilizing STP variant in the style of
// Dolev–Dubois–Potop-Butucaru–Tixeuil (arXiv 1104.3947): a stabilizing
// data-link protocol over bounded-capacity unreliable channels. Unlike
// every other protocol in the zoo, its correctness claim quantifies over
// *arbitrary initial states*: start the sender, the receiver, and the
// channel in any corrupted configuration and the write suffix eventually
// becomes a contiguous suffix of X.
//
// The mechanism is bounded-counter resynchronization. Assume at most c
// stale copies can survive in each channel direction (the capacity bound;
// the paper's del/reorder/FIFO channels seeded with at most c junk
// messages satisfy it, an unboundedly-duplicating channel does not — and
// indeed no protocol stabilizes there, which the model checker's
// stabilization mode confirms with a lasso witness). Then:
//
//   - the receiver accepts a value only after c+1 copies of it arrive
//     while it is the current candidate: at most c of those can be stale,
//     so at least one was sent by the sender recently;
//   - the sender advances only after c+1 acknowledgements of the current
//     item: at least one is fresh, so the receiver really has accepted it;
//   - inputs are restricted to repetition-free sequences, so a value
//     identifies its position in X and "continue the suffix" is
//     unambiguous after any corruption.
//
// From an arbitrary state the damage is bounded: a scrambled counter can
// force at most one spurious acceptance, after which every further
// acceptance consumes c+1 copies of a value, and stale copies are never
// replenished. The suffix of writes is prefix-safe after finitely many
// steps — the stabilization time the checker measures.
package stab

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"seqtx/internal/msg"
	"seqtx/internal/protocol"
	"seqtx/internal/protocol/alphaproto"
	"seqtx/internal/seq"
)

// DefaultCapacity is the channel-capacity bound c assumed when the
// constructor is given 0: acceptance thresholds are c+1.
const DefaultCapacity = 2

// New returns the stabilizing protocol spec for domain size m under
// channel-capacity bound c (0 selects DefaultCapacity). The allowable
// input set X is the repetition-free sequences over the domain — the same
// restriction the paper's tight protocol lives with, and what makes
// resynchronization after corruption unambiguous.
func New(m, c int) (protocol.Spec, error) {
	if m < 0 {
		return protocol.Spec{}, fmt.Errorf("stab: negative domain size %d", m)
	}
	if c < 0 {
		return protocol.Spec{}, fmt.Errorf("stab: negative capacity bound %d", c)
	}
	if c == 0 {
		c = DefaultCapacity
	}
	cc := c
	return protocol.Spec{
		Name:        fmt.Sprintf("stab(m=%d,c=%d)", m, cc),
		Description: "self-stabilizing bounded-counter resynchronization [DDPT, arXiv 1104.3947]",
		NewSender: func(input seq.Seq) (protocol.Sender, error) {
			if input.HasRepetition() {
				return nil, fmt.Errorf("stab: input %s has repetitions (X is the repetition-free set)", input)
			}
			for _, v := range input {
				if int(v) < 0 || int(v) >= m {
					return nil, fmt.Errorf("stab: item %d outside domain of size %d", int(v), m)
				}
			}
			return &sender{m: m, c: cc, t: alphaproto.InternFor(m), input: input.Clone()}, nil
		},
		NewReceiver: func() (protocol.Receiver, error) {
			return &receiver{m: m, c: cc, t: alphaproto.InternFor(m)}, nil
		},
	}, nil
}

// sender retransmits input[idx] each tick and advances after c+1
// acknowledgements of it: at most c acknowledgements can be stale, so the
// (c+1)-th proves the receiver currently holds input[idx] as its latest
// accepted value.
type sender struct {
	m, c  int
	t     *alphaproto.Intern
	input seq.Seq
	idx   int // next item to deliver; len(input) when done
	acks  int // matching acknowledgements accumulated for input[idx]
}

var _ protocol.Sender = (*sender)(nil)
var _ protocol.Scrambler = (*sender)(nil)

func (s *sender) Step(ev protocol.Event) []msg.Msg {
	switch ev.Kind {
	case protocol.Recv:
		if s.idx < len(s.input) && ev.Msg == s.t.Ack(s.input[s.idx]) {
			s.acks++
			if s.acks >= s.c+1 {
				s.idx++
				s.acks = 0
			}
		}
		return nil
	case protocol.Tick:
		if s.idx < len(s.input) {
			return s.t.DataSend(s.input[s.idx])
		}
		return nil
	default:
		return nil
	}
}

func (s *sender) Alphabet() msg.Alphabet { return s.t.SenderAlphabet() }

func (s *sender) Done() bool { return s.idx >= len(s.input) }

func (s *sender) Clone() protocol.Sender {
	// The input tape is never mutated after construction, so clones share it.
	return &sender{m: s.m, c: s.c, t: s.t, input: s.input, idx: s.idx, acks: s.acks}
}

func (s *sender) Key() string { return fmt.Sprintf("stabS{idx=%d,acks=%d}", s.idx, s.acks) }

func (s *sender) EncodeKey(buf []byte) []byte {
	buf = append(buf, 'Z')
	buf = binary.AppendUvarint(buf, uint64(s.idx))
	return binary.AppendUvarint(buf, uint64(s.acks))
}

// Scramble implements protocol.Scrambler: position and counter land
// anywhere in their type-valid ranges.
func (s *sender) Scramble(rng *rand.Rand) {
	s.idx = rng.Intn(len(s.input) + 1)
	s.acks = rng.Intn(s.c + 1)
}

// receiver counts copies of a candidate value and accepts after c+1,
// acknowledging only values it has accepted (so the sender's counter
// measures genuine acceptances, not echoes).
type receiver struct {
	m, c int
	t    *alphaproto.Intern
	have bool     // an accepted value exists
	last seq.Item // most recently accepted (and written) value
	cand seq.Item // candidate being counted; meaningful when cnt > 0
	cnt  int      // consecutive-candidate copies seen
}

var _ protocol.Receiver = (*receiver)(nil)
var _ protocol.Scrambler = (*receiver)(nil)

func (r *receiver) Step(ev protocol.Event) ([]msg.Msg, seq.Seq) {
	if ev.Kind != protocol.Recv {
		return nil, nil
	}
	v, ok := r.t.DataValue(ev.Msg)
	if !ok {
		return nil, nil
	}
	if int(v) < 0 || int(v) >= r.m {
		return nil, nil
	}
	item := v
	if r.have && item == r.last {
		// Retransmission of the accepted value: re-acknowledge, the
		// sender may still be collecting its c+1 acks.
		return r.t.AckSend(item), nil
	}
	if r.cnt > 0 && item == r.cand {
		r.cnt++
	} else {
		r.cand, r.cnt = item, 1
	}
	if r.cnt >= r.c+1 {
		r.have, r.last = true, item
		r.cnt = 0
		return r.t.AckSend(item), r.t.Write(item)
	}
	return nil, nil
}

func (r *receiver) Alphabet() msg.Alphabet { return r.t.ReceiverAlphabet() }

func (r *receiver) Clone() protocol.Receiver {
	cp := *r
	return &cp
}

func (r *receiver) Key() string {
	h := 0
	if r.have {
		h = 1
	}
	return fmt.Sprintf("stabR{have=%d,last=%d,cand=%d,cnt=%d}", h, int(r.last), int(r.cand), r.cnt)
}

func (r *receiver) EncodeKey(buf []byte) []byte {
	buf = append(buf, 'z')
	h := byte(0)
	if r.have {
		h = 1
	}
	buf = append(buf, h)
	buf = binary.AppendUvarint(buf, uint64(int(r.last)))
	buf = binary.AppendUvarint(buf, uint64(int(r.cand)))
	return binary.AppendUvarint(buf, uint64(r.cnt))
}

// Scramble implements protocol.Scrambler: every field lands anywhere in
// its type-valid range, including counter values one arrival away from a
// spurious acceptance — the worst transient fault the theory allows.
func (r *receiver) Scramble(rng *rand.Rand) {
	r.have = rng.Intn(2) == 1
	if r.m > 0 {
		r.last = seq.Item(rng.Intn(r.m))
		r.cand = seq.Item(rng.Intn(r.m))
	}
	r.cnt = rng.Intn(r.c + 1)
}
