package stab_test

import (
	"testing"

	"seqtx/internal/channel"
	"seqtx/internal/protocol"
	"seqtx/internal/protocol/stab"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
)

func mustSpec(t *testing.T, m, c int) protocol.Spec {
	t.Helper()
	spec, err := stab.New(m, c)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestValidation(t *testing.T) {
	t.Parallel()
	if _, err := stab.New(-1, 1); err == nil {
		t.Fatal("negative m accepted")
	}
	if _, err := stab.New(3, -1); err == nil {
		t.Fatal("negative capacity accepted")
	}
	spec := mustSpec(t, 3, 1)
	if _, err := spec.NewSender(seq.FromInts(0, 1, 0)); err == nil {
		t.Error("repeated input accepted: X must be repetition-free")
	}
	if _, err := spec.NewSender(seq.FromInts(0, 3)); err == nil {
		t.Error("out-of-domain input accepted")
	}
}

func TestAlphabetSizes(t *testing.T) {
	t.Parallel()
	spec := mustSpec(t, 4, 2)
	s, err := spec.NewSender(seq.FromInts(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Alphabet().Size(); got != 4 {
		t.Errorf("|M^S| = %d, want m = 4", got)
	}
	r, _ := spec.NewReceiver()
	if got := r.Alphabet().Size(); got != 4 {
		t.Errorf("|M^R| = %d, want m = 4", got)
	}
}

// From the clean initial state the protocol is an ordinary (slow) STP
// solution on the channels whose capacity honours its counting bound:
// the capacity-bounded channel (at most c stale copies can exist, so
// c+1 matching copies imply a fresh one) and FIFO (order itself retires
// stale copies). On unbounded del/reorder/dup channels the adversary can
// hoard c+1 stale copies and replay them — which is exactly why the
// stabilization literature states its results for bounded channels.
func TestCompletesFromCleanStart(t *testing.T) {
	t.Parallel()
	spec := mustSpec(t, 4, 2)
	input := seq.FromInts(2, 0, 3)
	for _, kind := range []channel.Kind{channel.KindFIFO, channel.KindBounded} {
		advs := []sim.Adversary{
			sim.NewRoundRobin(),
			sim.NewFinDelay(sim.NewRandom(7), 10),
		}
		for _, adv := range advs {
			res, err := sim.RunProtocol(spec, input, kind, adv,
				sim.Config{MaxSteps: 20000, StopWhenComplete: true})
			if err != nil {
				t.Fatal(err)
			}
			if res.SafetyViolation != nil {
				t.Errorf("%s/%s: safety: %v", kind, adv.Name(), res.SafetyViolation)
			}
			if !res.OutputComplete {
				t.Errorf("%s/%s: incomplete: %s", kind, adv.Name(), res.Output)
			}
		}
	}
}

// Scrambling is deterministic in the seed: equal seeds produce equal
// corrupted states (the replay property every fault consumer relies on).
func TestScrambleDeterministic(t *testing.T) {
	t.Parallel()
	spec := mustSpec(t, 5, 2)
	input := seq.FromInts(0, 1, 2, 3, 4)
	for seed := int64(0); seed < 20; seed++ {
		a, _ := spec.NewSender(input)
		b, _ := spec.NewSender(input)
		if !protocol.ScrambleState(a, seed) || !protocol.ScrambleState(b, seed) {
			t.Fatal("stab sender must implement protocol.Scrambler")
		}
		if a.Key() != b.Key() {
			t.Fatalf("seed %d: sender scramble diverged: %s vs %s", seed, a.Key(), b.Key())
		}
		ra, _ := spec.NewReceiver()
		rb, _ := spec.NewReceiver()
		if !protocol.ScrambleState(ra, seed) || !protocol.ScrambleState(rb, seed) {
			t.Fatal("stab receiver must implement protocol.Scrambler")
		}
		if ra.Key() != rb.Key() {
			t.Fatalf("seed %d: receiver scramble diverged: %s vs %s", seed, ra.Key(), rb.Key())
		}
	}
}

// A run started from scrambled local states converges back to writing a
// contiguous suffix of X: after the last write that breaks alignment,
// everything written is X[k:] for some k. This is the package's headline
// claim, checked here on one seeded fair schedule per scramble seed (the
// exhaustive version lives in the model checker's stabilization mode).
func TestRecoversFromScrambledState(t *testing.T) {
	t.Parallel()
	spec := mustSpec(t, 5, 2)
	input := seq.FromInts(3, 1, 4, 0, 2)
	for seed := int64(1); seed <= 15; seed++ {
		link, err := channel.NewLinkOfKind(channel.KindBounded)
		if err != nil {
			t.Fatal(err)
		}
		w, err := sim.New(spec, input, link)
		if err != nil {
			t.Fatal(err)
		}
		protocol.ScrambleState(w.S, seed)
		protocol.ScrambleState(w.R, seed+1000)
		if w.S.Done() {
			continue // scrambled straight past the end: vacuously stable
		}
		adv := sim.NewFinDelay(sim.NewRandom(seed), 10)
		steps := 0
		for ; steps < 30000 && !w.Quiescent(); steps++ {
			if err := w.Apply(adv.Choose(w, w.Enabled())); err != nil {
				t.Fatal(err)
			}
		}
		if !w.Quiescent() {
			t.Fatalf("seed %d: not quiescent after %d steps (Y=%s)", seed, steps, w.Output)
		}
		y := w.Output
		// Liveness across the corruption: the remaining items were
		// delivered — in particular the final one.
		if idxOf(input, input[len(input)-1]) < 0 || !contains(y, input[len(input)-1]) {
			t.Errorf("seed %d: final item of X never written (Y=%s)", seed, y)
		}
		// Stabilization: the writes after the last alignment break form
		// a contiguous run in X (the converged suffix); breaks are the
		// finitely many scramble-induced bad writes.
		breaks := 0
		for i := 1; i < len(y); i++ {
			a, b := idxOf(input, y[i-1]), idxOf(input, y[i])
			if a < 0 || b != a+1 {
				breaks++
			}
		}
		// A scrambled start can cause at most a handful of bad writes:
		// one per spurious acceptance, each consuming stale copies that
		// are never replenished.
		if breaks > 3 {
			t.Errorf("seed %d: %d alignment breaks in Y=%s — not converging", seed, breaks, y)
		}
	}
}

func idxOf(x seq.Seq, v seq.Item) int {
	for i, it := range x {
		if it == v {
			return i
		}
	}
	return -1
}

func contains(x seq.Seq, v seq.Item) bool { return idxOf(x, v) >= 0 }
