package stenning

import (
	"math/rand"

	"seqtx/internal/protocol"
)

// Scramble implements protocol.Scrambler.
func (s *sender) Scramble(rng *rand.Rand) {
	s.next = rng.Intn(len(s.input) + 1)
}

var _ protocol.Scrambler = (*sender)(nil)

// Scramble implements protocol.Scrambler: the receiver's position
// counter lands on an arbitrary small value — ahead of the sender it
// stalls the transfer, behind it it re-writes old positions.
func (r *receiver) Scramble(rng *rand.Rand) {
	r.next = rng.Intn(9)
}

var _ protocol.Scrambler = (*receiver)(nil)
