// Package stenning implements Stenning's data transfer protocol [Ste76]:
// every data message carries an unbounded sequence number, the receiver
// writes messages in sequence-number order, and acknowledgements echo the
// number. It solves STP for every sequence over any domain, on every
// channel model — dup, del, reorder, FIFO — precisely because it abandons
// the paper's central resource bound: its message alphabet is infinite.
//
// It is the baseline that locates the difficulty: Theorems 1 and 2 say
// that with |M^S| = m finite you can distinguish at most alpha(m) input
// sequences; unbounded headers make |M^S| infinite and the problem
// trivial. The package exists so experiments can show the contrast.
package stenning

import (
	"encoding/binary"
	"fmt"

	"seqtx/internal/msg"
	"seqtx/internal/protocol"
	"seqtx/internal/seq"
)

// dataMsg encodes item v at position i (0-based).
func dataMsg(i int, v seq.Item) msg.Msg { return msg.Msg(fmt.Sprintf("d:%d:%d", i, int(v))) }

// ackMsg encodes the acknowledgement for position i.
func ackMsg(i int) msg.Msg { return msg.Msg(fmt.Sprintf("a:%d", i)) }

// internMax bounds the receiver's dynamic decode cache. Stenning's
// alphabet is unbounded, so unlike the finite-alphabet protocols the
// codec cannot be precomputed; instead each instance interns decodes as
// they arrive, up to this many distinct encodings. Past the bound the
// slow path (the original Sscanf parse) still handles every message
// correctly — the cache only changes who pays for the parse.
const internMax = 4096

// New returns the protocol spec. There is no domain-size parameter: the
// sequence-number scheme carries any items whatsoever.
func New() protocol.Spec {
	return protocol.Spec{
		Name:        "stenning",
		Description: "unbounded sequence numbers [Ste76]: trivially correct, infinite alphabet",
		NewSender: func(input seq.Seq) (protocol.Sender, error) {
			return &sender{input: input.Clone()}, nil
		},
		NewReceiver: func() (protocol.Receiver, error) {
			return &receiver{}, nil
		},
	}
}

// sender retransmits the lowest unacknowledged item each tick.
type sender struct {
	input seq.Seq
	next  int // lowest unacknowledged position

	// Dynamic intern of the current position's frame and expected ack:
	// rebuilt once per advance, so the steady retransmit/ack-compare
	// cycle formats nothing. The cached values are replaced, never
	// mutated, so Clone's value copy safely shares them.
	curSend []msg.Msg // {"d:next:v"}; valid iff non-nil and curFor == next
	curFor  int
	ackWait msg.Msg // "a:next"; valid iff non-empty and ackFor == next
	ackFor  int
}

var _ protocol.Sender = (*sender)(nil)

func (s *sender) Step(ev protocol.Event) []msg.Msg {
	switch ev.Kind {
	case protocol.Recv:
		if s.ackWait == "" || s.ackFor != s.next {
			s.ackWait = ackMsg(s.next)
			s.ackFor = s.next
		}
		if ev.Msg == s.ackWait {
			s.next++
			return nil
		}
		// Non-canonical spelling (corruption): the pre-interning parse,
		// which accepts a superset of the canonical encoding.
		var i int
		if _, err := fmt.Sscanf(string(ev.Msg), "a:%d", &i); err == nil && i == s.next {
			s.next++
		}
		return nil
	case protocol.Tick:
		if s.next < len(s.input) {
			if s.curSend == nil || s.curFor != s.next {
				s.curSend = []msg.Msg{dataMsg(s.next, s.input[s.next])}
				s.curFor = s.next
			}
			return s.curSend
		}
		return nil
	default:
		return nil
	}
}

// Alphabet declares unboundedness by returning the empty alphabet.
func (s *sender) Alphabet() msg.Alphabet { return msg.Alphabet{} }

func (s *sender) Done() bool { return s.next >= len(s.input) }

func (s *sender) Clone() protocol.Sender {
	// The input tape is never mutated after construction, so clones share
	// it: the model checker clones on every explored transition.
	return &sender{input: s.input, next: s.next}
}

func (s *sender) Key() string { return fmt.Sprintf("stenS{%d}", s.next) }

func (s *sender) EncodeKey(buf []byte) []byte {
	buf = append(buf, 'T')
	return binary.AppendUvarint(buf, uint64(s.next))
}

// decoded is a cached parse of a data message, with the interned ack
// send slice and write singleton for its position and value.
type decoded struct {
	i, v    int
	ackSend []msg.Msg
	write   seq.Seq
}

// receiver writes position next when it arrives; every receipt of a
// position <= next is acknowledged (re-acks repair lost acknowledgements).
type receiver struct {
	next int // number of items written

	// cache dynamically interns decodes (bounded by internMax). It is
	// keyed by the exact received bytes, so caching non-canonical
	// spellings is sound: the Sscanf parse is deterministic per byte
	// string. Not part of behavioural state (Key ignores it), and nil'd
	// on Clone so model-checker workers never share the map.
	cache map[msg.Msg]decoded
}

var _ protocol.Receiver = (*receiver)(nil)

func (r *receiver) Step(ev protocol.Event) ([]msg.Msg, seq.Seq) {
	if ev.Kind != protocol.Recv {
		return nil, nil
	}
	d, ok := r.cache[ev.Msg]
	if !ok {
		var i, v int
		if _, err := fmt.Sscanf(string(ev.Msg), "d:%d:%d", &i, &v); err != nil {
			return nil, nil
		}
		d = decoded{i: i, v: v, ackSend: []msg.Msg{ackMsg(i)}, write: seq.Seq{seq.Item(v)}}
		if len(r.cache) < internMax {
			if r.cache == nil {
				r.cache = make(map[msg.Msg]decoded)
			}
			r.cache[ev.Msg] = d
		}
	}
	switch {
	case d.i == r.next:
		r.next++
		return d.ackSend, d.write
	case d.i < r.next:
		// Stale retransmission: re-acknowledge so the sender advances.
		return d.ackSend, nil
	default:
		// Out-of-order future message (reordering): ignore; the sender
		// will retransmit once earlier items are acknowledged.
		return nil, nil
	}
}

// Alphabet declares unboundedness by returning the empty alphabet.
func (r *receiver) Alphabet() msg.Alphabet { return msg.Alphabet{} }

func (r *receiver) Clone() protocol.Receiver {
	cp := *r
	cp.cache = nil
	return &cp
}

func (r *receiver) Key() string { return fmt.Sprintf("stenR{%d}", r.next) }

func (r *receiver) EncodeKey(buf []byte) []byte {
	buf = append(buf, 't')
	return binary.AppendUvarint(buf, uint64(r.next))
}
