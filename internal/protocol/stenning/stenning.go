// Package stenning implements Stenning's data transfer protocol [Ste76]:
// every data message carries an unbounded sequence number, the receiver
// writes messages in sequence-number order, and acknowledgements echo the
// number. It solves STP for every sequence over any domain, on every
// channel model — dup, del, reorder, FIFO — precisely because it abandons
// the paper's central resource bound: its message alphabet is infinite.
//
// It is the baseline that locates the difficulty: Theorems 1 and 2 say
// that with |M^S| = m finite you can distinguish at most alpha(m) input
// sequences; unbounded headers make |M^S| infinite and the problem
// trivial. The package exists so experiments can show the contrast.
package stenning

import (
	"encoding/binary"
	"fmt"

	"seqtx/internal/msg"
	"seqtx/internal/protocol"
	"seqtx/internal/seq"
)

// dataMsg encodes item v at position i (0-based).
func dataMsg(i int, v seq.Item) msg.Msg { return msg.Msg(fmt.Sprintf("d:%d:%d", i, int(v))) }

// ackMsg encodes the acknowledgement for position i.
func ackMsg(i int) msg.Msg { return msg.Msg(fmt.Sprintf("a:%d", i)) }

// New returns the protocol spec. There is no domain-size parameter: the
// sequence-number scheme carries any items whatsoever.
func New() protocol.Spec {
	return protocol.Spec{
		Name:        "stenning",
		Description: "unbounded sequence numbers [Ste76]: trivially correct, infinite alphabet",
		NewSender: func(input seq.Seq) (protocol.Sender, error) {
			return &sender{input: input.Clone()}, nil
		},
		NewReceiver: func() (protocol.Receiver, error) {
			return &receiver{}, nil
		},
	}
}

// sender retransmits the lowest unacknowledged item each tick.
type sender struct {
	input seq.Seq
	next  int // lowest unacknowledged position
}

var _ protocol.Sender = (*sender)(nil)

func (s *sender) Step(ev protocol.Event) []msg.Msg {
	switch ev.Kind {
	case protocol.Recv:
		var i int
		if _, err := fmt.Sscanf(string(ev.Msg), "a:%d", &i); err == nil && i == s.next {
			s.next++
		}
		return nil
	case protocol.Tick:
		if s.next < len(s.input) {
			return []msg.Msg{dataMsg(s.next, s.input[s.next])}
		}
		return nil
	default:
		return nil
	}
}

// Alphabet declares unboundedness by returning the empty alphabet.
func (s *sender) Alphabet() msg.Alphabet { return msg.Alphabet{} }

func (s *sender) Done() bool { return s.next >= len(s.input) }

func (s *sender) Clone() protocol.Sender {
	// The input tape is never mutated after construction, so clones share
	// it: the model checker clones on every explored transition.
	return &sender{input: s.input, next: s.next}
}

func (s *sender) Key() string { return fmt.Sprintf("stenS{%d}", s.next) }

func (s *sender) EncodeKey(buf []byte) []byte {
	buf = append(buf, 'T')
	return binary.AppendUvarint(buf, uint64(s.next))
}

// receiver writes position next when it arrives; every receipt of a
// position <= next is acknowledged (re-acks repair lost acknowledgements).
type receiver struct {
	next int // number of items written
}

var _ protocol.Receiver = (*receiver)(nil)

func (r *receiver) Step(ev protocol.Event) ([]msg.Msg, seq.Seq) {
	if ev.Kind != protocol.Recv {
		return nil, nil
	}
	var (
		i int
		v int
	)
	if _, err := fmt.Sscanf(string(ev.Msg), "d:%d:%d", &i, &v); err != nil {
		return nil, nil
	}
	switch {
	case i == r.next:
		r.next++
		return []msg.Msg{ackMsg(i)}, seq.Seq{seq.Item(v)}
	case i < r.next:
		// Stale retransmission: re-acknowledge so the sender advances.
		return []msg.Msg{ackMsg(i)}, nil
	default:
		// Out-of-order future message (reordering): ignore; the sender
		// will retransmit once earlier items are acknowledged.
		return nil, nil
	}
}

// Alphabet declares unboundedness by returning the empty alphabet.
func (r *receiver) Alphabet() msg.Alphabet { return msg.Alphabet{} }

func (r *receiver) Clone() protocol.Receiver {
	cp := *r
	return &cp
}

func (r *receiver) Key() string { return fmt.Sprintf("stenR{%d}", r.next) }

func (r *receiver) EncodeKey(buf []byte) []byte {
	buf = append(buf, 't')
	return binary.AppendUvarint(buf, uint64(r.next))
}
