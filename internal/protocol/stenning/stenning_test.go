package stenning_test

import (
	"testing"

	"seqtx/internal/channel"
	"seqtx/internal/protocol"
	"seqtx/internal/protocol/stenning"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
)

func TestCompletesOnEveryChannelKind(t *testing.T) {
	t.Parallel()
	spec := stenning.New()
	input := seq.FromInts(1, 1, 0, 2, 1) // repetitions are fine here
	for _, kind := range []channel.Kind{channel.KindDup, channel.KindDel, channel.KindReorder, channel.KindFIFO} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			res, err := sim.RunProtocol(spec, input, kind, sim.NewRoundRobin(),
				sim.Config{MaxSteps: 3000, StopWhenComplete: true})
			if err != nil {
				t.Fatal(err)
			}
			if res.SafetyViolation != nil {
				t.Fatalf("safety: %v", res.SafetyViolation)
			}
			if !res.OutputComplete {
				t.Fatalf("incomplete: %s after %d steps", res.Output, res.Steps)
			}
		})
	}
}

func TestSurvivesReplayDropsAndDelay(t *testing.T) {
	t.Parallel()
	spec := stenning.New()
	input := seq.FromInts(0, 0, 0, 0) // maximally ambiguous values
	advs := []sim.Adversary{
		sim.NewFinDelay(sim.NewReplayer(11, 2), 10),
		sim.NewBudgetDropper(5, 8),
		sim.NewWithholder(40),
		sim.NewFinDelay(sim.NewRandom(3), 10),
	}
	kinds := []channel.Kind{channel.KindDup, channel.KindDel, channel.KindDel, channel.KindDup}
	for i, adv := range advs {
		res, err := sim.RunProtocol(spec, input, kinds[i], adv,
			sim.Config{MaxSteps: 6000, StopWhenComplete: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.SafetyViolation != nil {
			t.Errorf("%s: safety: %v", adv.Name(), res.SafetyViolation)
		}
		if !res.OutputComplete {
			t.Errorf("%s: incomplete: %s", adv.Name(), res.Output)
		}
	}
}

func TestUnboundedAlphabetDeclared(t *testing.T) {
	t.Parallel()
	spec := stenning.New()
	s, err := spec.NewSender(seq.FromInts(0))
	if err != nil {
		t.Fatal(err)
	}
	if s.Alphabet().Size() != 0 {
		t.Error("stenning should declare an unbounded (empty) alphabet")
	}
	r, err := spec.NewReceiver()
	if err != nil {
		t.Fatal(err)
	}
	if r.Alphabet().Size() != 0 {
		t.Error("receiver should declare an unbounded (empty) alphabet")
	}
}

func TestSenderStopAndWaitDiscipline(t *testing.T) {
	t.Parallel()
	spec := stenning.New()
	s, _ := spec.NewSender(seq.FromInts(7, 8))
	first := s.Step(protocol.TickEvent())
	if len(first) != 1 || string(first[0]) != "d:0:7" {
		t.Fatalf("first tick sends %v", first)
	}
	// Without an ack, retransmit the same message.
	second := s.Step(protocol.TickEvent())
	if len(second) != 1 || second[0] != first[0] {
		t.Fatalf("retransmission sends %v", second)
	}
	s.Step(protocol.RecvEvent("a:0"))
	third := s.Step(protocol.TickEvent())
	if len(third) != 1 || string(third[0]) != "d:1:8" {
		t.Fatalf("after ack, tick sends %v", third)
	}
	// Stale ack ignored.
	s.Step(protocol.RecvEvent("a:0"))
	if s.Done() {
		t.Error("Done after stale ack")
	}
	s.Step(protocol.RecvEvent("a:1"))
	if !s.Done() {
		t.Error("not Done after final ack")
	}
}

func TestReceiverOrderingDiscipline(t *testing.T) {
	t.Parallel()
	spec := stenning.New()
	r, _ := spec.NewReceiver()
	// Future message ignored.
	sends, writes := r.Step(protocol.RecvEvent("d:1:5"))
	if len(sends)+len(writes) != 0 {
		t.Fatalf("future message handled: %v %v", sends, writes)
	}
	// In-order message written and acked.
	sends, writes = r.Step(protocol.RecvEvent("d:0:4"))
	if len(writes) != 1 || writes[0] != 4 || len(sends) != 1 || string(sends[0]) != "a:0" {
		t.Fatalf("in-order message: %v %v", sends, writes)
	}
	// Stale message re-acked, not written.
	sends, writes = r.Step(protocol.RecvEvent("d:0:4"))
	if len(writes) != 0 || len(sends) != 1 || string(sends[0]) != "a:0" {
		t.Fatalf("stale message: %v %v", sends, writes)
	}
	// Junk ignored; clone independence.
	if s2, w2 := r.Step(protocol.RecvEvent("junk")); len(s2)+len(w2) != 0 {
		t.Error("junk handled")
	}
	c := r.Clone()
	c.Step(protocol.RecvEvent("d:1:6"))
	if r.Key() == c.Key() {
		t.Error("diverged clones share key")
	}
}
