// Package steptest provides shared steady-state Step fixtures for the
// protocol zoo: for each registry protocol, a warmed sender/receiver
// pair plus one in-alphabet message per hot parse path, chosen so that
// repeating the path does not grow protocol state. The wire
// alloc-contract tests and the registry Step micro-benchmarks both
// drive these fixtures, so "zero allocations per steady-state Step"
// and "ns per steady-state Step" are measured on exactly the same
// paths:
//
//   - tick: the warmed sender's spontaneous step (retransmission,
//     window stall/burst cycle, or gated nil).
//   - recv-data: the warmed receiver parsing a duplicate/stale data
//     message and answering with a re-acknowledgement.
//   - recv-ack: the warmed sender parsing an acknowledgement that does
//     not advance it.
package steptest

import (
	"fmt"

	"seqtx/internal/msg"
	"seqtx/internal/protocol"
	"seqtx/internal/protocol/abp"
	"seqtx/internal/protocol/afwz"
	"seqtx/internal/protocol/alphaproto"
	"seqtx/internal/protocol/gobackn"
	"seqtx/internal/protocol/hybrid"
	"seqtx/internal/protocol/modseq"
	"seqtx/internal/protocol/selrepeat"
	"seqtx/internal/registry"
	"seqtx/internal/seq"
)

// Fixture describes one protocol's steady-state Step exercise.
type Fixture struct {
	// Name is the registry protocol name.
	Name   string
	Params registry.Params
	Input  seq.Seq
	// Finite reports a bounded message alphabet: the zero-alloc Step
	// contract is enforced for these fixtures. Stenning's unbounded
	// counters are benchmarked but not alloc-bounded (its steady paths
	// hit the dynamic intern cache, its cold paths may allocate).
	Finite bool
	// Data is an in-alphabet data message the warmed receiver answers
	// with a re-acknowledgement (or, for the trusting receivers, a
	// fresh write) without growing its reachable state.
	Data msg.Msg
	// Ack is an alphabet-shaped acknowledgement the warmed sender
	// parses but does not advance on.
	Ack msg.Msg
	// warm drives a freshly constructed pair into the steady state.
	warm func(s protocol.Sender, r protocol.Receiver)
}

// New builds a fresh sender/receiver pair for the fixture and warms it
// into the steady state.
func (f Fixture) New() (protocol.Sender, protocol.Receiver, error) {
	spec, err := registry.Protocol(f.Name, f.Params)
	if err != nil {
		return nil, nil, err
	}
	s, err := spec.NewSender(f.Input)
	if err != nil {
		return nil, nil, err
	}
	r, err := spec.NewReceiver()
	if err != nil {
		return nil, nil, err
	}
	if f.warm != nil {
		f.warm(s, r)
	}
	return s, r, nil
}

func tick(s protocol.Sender, n int) {
	for i := 0; i < n; i++ {
		s.Step(protocol.TickEvent())
	}
}

func deliver(r protocol.Receiver, ms ...msg.Msg) {
	for _, m := range ms {
		r.Step(protocol.RecvEvent(m))
	}
}

// Fixtures returns the steady-state fixture table covering every
// registry protocol. Inputs use m = 4; the windowed family gets an
// 8-item tape so a full window is outstanding in the steady state.
func Fixtures() []Fixture {
	const m = 4
	short := seq.Seq{0, 1, 2, 3}
	long := seq.Seq{0, 1, 2, 3, 0, 1, 2, 3}
	params := registry.Params{M: m, Timeout: 4, Window: 4, Cap: 2}

	return []Fixture{
		{
			// Fresh sender retransmits d:0 every tick; the receiver has
			// seen value 0, so a second copy is a dup re-ack.
			Name: "alpha", Params: params, Input: short, Finite: true,
			Data: alphaproto.DataMsg(0),
			Ack:  alphaproto.AckMsg(1),
			warm: func(s protocol.Sender, r protocol.Receiver) {
				deliver(r, alphaproto.DataMsg(0))
			},
		},
		{
			// After one tick the gate is closed (sent > acks): ticks are
			// nil. The receiver is driven to done by "end", after which
			// item messages are pure re-acks; the sender ignores acks
			// once acks == sent.
			Name: "afwz", Params: params, Input: short, Finite: true,
			Data: afwz.ItemMsg(0),
			Ack:  afwz.AckMsg,
			warm: func(s protocol.Sender, r protocol.Receiver) {
				tick(s, 1)
				deliver(r, afwz.EndMsg)
				s.Step(protocol.RecvEvent(afwz.AckMsg)) // acks == sent: further acks ignored
			},
		},
		{
			// Both streams have a copy in flight after the first two
			// sends: ticks alternate stall phases forever. The fresh
			// receiver re-acks a wrong-parity prefix message; the sender
			// ignores a wrong-parity suffix ack.
			Name: "hybrid", Params: params, Input: short, Finite: true,
			Data: hybrid.PrefixMsg(1, 0),
			Ack:  hybrid.SuffixAck(1),
			warm: func(s protocol.Sender, r protocol.Receiver) {
				sends := 0
				for i := 0; i < 64 && sends < 2; i++ {
					if len(s.Step(protocol.TickEvent())) > 0 {
						sends++
					}
				}
			},
		},
		{
			// Receiver expects bit 1 after one delivery, so a bit-0 data
			// message is a retransmission re-ack; the sender expects k:0.
			Name: "abp", Params: params, Input: short, Finite: true,
			Data: abp.DataMsg(0, 0),
			Ack:  abp.AckMsg(1),
			warm: func(s protocol.Sender, r protocol.Receiver) {
				deliver(r, abp.DataMsg(0, 0))
			},
		},
		{
			// Unbounded alphabet: steady paths are a stale-position
			// re-ack and a non-matching ack parse.
			Name: "stenning", Params: params, Input: short, Finite: false,
			Data: msg.Msg("d:0:0"),
			Ack:  msg.Msg("a:1"),
			warm: func(s protocol.Sender, r protocol.Receiver) {
				deliver(r, msg.Msg("d:0:0"))
			},
		},
		{
			// The trusting receiver writes every data message; the
			// position sender ignores acks for values it is not at.
			Name: "naive", Params: params, Input: short, Finite: true,
			Data: alphaproto.DataMsg(0),
			Ack:  alphaproto.AckMsg(1),
		},
		{
			// The flood sender exhausts its tape during warmup and then
			// ticks nil; receiver/ack paths match naive's.
			Name: "flood", Params: params, Input: short, Finite: true,
			Data: alphaproto.DataMsg(0),
			Ack:  alphaproto.AckMsg(1),
			warm: func(s protocol.Sender, r protocol.Receiver) {
				tick(s, len(short))
			},
		},
		{
			// Frame 1 is stale while the receiver expects 0; ack a:1
			// does not match the sender's expected a:0.
			Name: "modseq", Params: params, Input: short, Finite: true,
			Data: modseq.DataMsg(4, 1, 0),
			Ack:  modseq.AckMsg(4, 1),
		},
		{
			// Window full after 4 ticks: the sender cycles stall →
			// go-back burst. The receiver has delivered frame 0, so a
			// second copy re-acks the expectation; ga:0 equals the
			// sender's base and slides nothing.
			Name: "gobackn", Params: params, Input: long, Finite: true,
			Data: gobackn.DataMsg(5, 0, 0),
			Ack:  gobackn.AckMsg(5, 0),
			warm: func(s protocol.Sender, r protocol.Receiver) {
				tick(s, 4)
				deliver(r, gobackn.DataMsg(5, 0, 0))
			},
		},
		{
			// Window full after 4 ticks: the sender cycles stall →
			// selective burst. A redelivered frame 0 lands in the
			// trailing window (pure re-ack); sa:5 is outside [base,
			// next) and acknowledges nothing.
			Name: "selrepeat", Params: params, Input: long, Finite: true,
			Data: selrepeat.DataMsg(8, 0, 0),
			Ack:  selrepeat.AckMsg(8, 5),
			warm: func(s protocol.Sender, r protocol.Receiver) {
				tick(s, 4)
				deliver(r, selrepeat.DataMsg(8, 0, 0))
			},
		},
		{
			// Receiver has accepted value 0 (c+1 = 3 copies): more
			// copies are re-acks. The sender expects a:0, so a:1 is
			// ignored.
			Name: "stab", Params: params, Input: short, Finite: true,
			Data: alphaproto.DataMsg(0),
			Ack:  alphaproto.AckMsg(1),
			warm: func(s protocol.Sender, r protocol.Receiver) {
				deliver(r, alphaproto.DataMsg(0), alphaproto.DataMsg(0), alphaproto.DataMsg(0))
			},
		},
	}
}

// Steady asserts the fixture's three paths really are steady: running
// each path twice on a warmed pair must leave the process state key
// unchanged by the second run. It returns a descriptive error naming
// the offending path. Used by the contract tests so a fixture that
// silently drifts (and so measures a cold path) fails loudly.
func Steady(f Fixture) error {
	// tick: the sender may cycle through a bounded stall/burst loop, so
	// compare the key after one full extra cycle instead of per-step.
	s, _, err := f.New()
	if err != nil {
		return err
	}
	const cycle = 16
	tick(s, cycle)
	before := s.Key()
	keys := make(map[string]bool)
	steady := false
	for i := 0; i < cycle; i++ {
		tick(s, 1)
		if s.Key() == before {
			steady = true
			break
		}
		if keys[s.Key()] {
			steady = true // closed a cycle that excludes before's phase point
			break
		}
		keys[s.Key()] = true
	}
	if !steady {
		return fmt.Errorf("steptest %s: tick path is not steady (key %q never recurs)", f.Name, before)
	}

	s2, r, err := f.New()
	if err != nil {
		return err
	}
	deliver(r, f.Data)
	before = r.Key()
	deliver(r, f.Data)
	if r.Key() != before && f.Name != "naive" && f.Name != "flood" {
		return fmt.Errorf("steptest %s: recv-data path mutates receiver: %q -> %q", f.Name, before, r.Key())
	}

	s2.Step(protocol.RecvEvent(f.Ack))
	before = s2.Key()
	s2.Step(protocol.RecvEvent(f.Ack))
	if s2.Key() != before {
		return fmt.Errorf("steptest %s: recv-ack path mutates sender: %q -> %q", f.Name, before, s2.Key())
	}
	return nil
}
