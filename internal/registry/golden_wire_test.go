package registry_test

// The golden wire-format regression test pins every registered
// protocol's observable message behaviour byte-for-byte: the full
// sender/receiver alphabet enumerations (order included — encode
// tables index by alphabet position) and digests of deterministic wire
// runs (DetRun schedules + output tapes) across several seeds and dup
// cadences. The goldens were recorded before the interned-codec
// refactor; any change to a message encoding, an alphabet enumeration
// order, or a DetRun schedule is a regression, not data.
//
// Regenerate (only for an intentional format change) with:
//
//	go test ./internal/registry/ -run TestGoldenWireFormat -update-golden

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"seqtx/internal/registry"
	"seqtx/internal/seq"
	"seqtx/internal/wire"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden wire-format file")

type goldenEntry struct {
	SpecName         string   `json:"spec_name"`
	SenderAlphabet   []string `json:"sender_alphabet"`
	ReceiverAlphabet []string `json:"receiver_alphabet"`
	// Det maps "seed=S,dup=N" to a digest of the DetRun schedule
	// (action kinds, directions, and message bytes), the output tape,
	// and the frame counters.
	Det map[string]string `json:"det"`
}

const goldenPath = "testdata/wire_golden.json"

func goldenParams() registry.Params {
	return registry.Params{M: 4, Timeout: 4, Window: 4, Cap: 2}
}

func goldenInput() seq.Seq { return seq.Seq{0, 1, 2, 3} }

func buildGoldenEntry(t *testing.T, name string) goldenEntry {
	t.Helper()
	spec, err := registry.Protocol(name, goldenParams())
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	s, err := spec.NewSender(goldenInput())
	if err != nil {
		t.Fatalf("%s sender: %v", name, err)
	}
	r, err := spec.NewReceiver()
	if err != nil {
		t.Fatalf("%s receiver: %v", name, err)
	}
	e := goldenEntry{
		SpecName: spec.Name,
		Det:      map[string]string{},
	}
	for _, m := range s.Alphabet().Msgs() {
		e.SenderAlphabet = append(e.SenderAlphabet, string(m))
	}
	for _, m := range r.Alphabet().Msgs() {
		e.ReceiverAlphabet = append(e.ReceiverAlphabet, string(m))
	}

	for _, seed := range []int64{1, 2, 3} {
		for _, dup := range []int{0, 3} {
			s, err := spec.NewSender(goldenInput())
			if err != nil {
				t.Fatalf("%s sender: %v", name, err)
			}
			r, err := spec.NewReceiver()
			if err != nil {
				t.Fatalf("%s receiver: %v", name, err)
			}
			res, err := wire.DetRun(wire.DetConfig{
				Sender:    s,
				Receiver:  r,
				Input:     goldenInput(),
				Seed:      seed,
				DupEveryN: dup,
			})
			if err != nil {
				t.Fatalf("%s det seed=%d dup=%d: %v", name, seed, dup, err)
			}
			h := fnv.New64a()
			for _, act := range res.Script {
				fmt.Fprintf(h, "%d|%d|%s\n", int(act.Kind), int(act.Dir), string(act.Msg))
			}
			fmt.Fprintf(h, "out=%v complete=%v steps=%d frames=%d acks=%d",
				res.Output, res.Complete, res.Steps, res.FramesTx, res.AcksTx)
			e.Det[fmt.Sprintf("seed=%d,dup=%d", seed, dup)] = fmt.Sprintf("%016x", h.Sum64())
		}
	}
	return e
}

func TestGoldenWireFormat(t *testing.T) {
	got := map[string]goldenEntry{}
	for _, name := range registry.ProtocolNames() {
		got[name] = buildGoldenEntry(t, name)
	}

	if *updateGolden {
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden rewritten: %s (%d protocols)", goldenPath, len(got))
		return
	}

	blob, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	var want map[string]goldenEntry
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatalf("parse golden: %v", err)
	}

	var names []string
	for n := range want {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(got) != len(want) {
		t.Errorf("protocol count changed: golden has %d, registry has %d", len(want), len(got))
	}
	for _, name := range names {
		w, g := want[name], got[name]
		if g.SpecName == "" {
			t.Errorf("%s: in golden but not in registry", name)
			continue
		}
		if g.SpecName != w.SpecName {
			t.Errorf("%s: spec name changed: %q -> %q", name, w.SpecName, g.SpecName)
		}
		if !reflect.DeepEqual(g.SenderAlphabet, w.SenderAlphabet) {
			t.Errorf("%s: sender alphabet changed:\n golden: %v\n got:    %v", name, w.SenderAlphabet, g.SenderAlphabet)
		}
		if !reflect.DeepEqual(g.ReceiverAlphabet, w.ReceiverAlphabet) {
			t.Errorf("%s: receiver alphabet changed:\n golden: %v\n got:    %v", name, w.ReceiverAlphabet, g.ReceiverAlphabet)
		}
		for k, wd := range w.Det {
			if gd := g.Det[k]; gd != wd {
				t.Errorf("%s: DetRun schedule digest changed at %s: %s -> %s", name, k, wd, gd)
			}
		}
	}
}
