// Package registry names the protocols, channel kinds, and adversaries of
// this repository for command-line tools and configuration: one place to
// parse "alpha", "dup+del", or "replayer" into the corresponding
// constructors, with current parameter values threaded through.
package registry

import (
	"fmt"
	"sort"
	"strings"

	"seqtx/internal/channel"
	"seqtx/internal/protocol"
	"seqtx/internal/protocol/abp"
	"seqtx/internal/protocol/afwz"
	"seqtx/internal/protocol/alphaproto"
	"seqtx/internal/protocol/gobackn"
	"seqtx/internal/protocol/hybrid"
	"seqtx/internal/protocol/modseq"
	"seqtx/internal/protocol/naive"
	"seqtx/internal/protocol/selrepeat"
	"seqtx/internal/protocol/stab"
	"seqtx/internal/protocol/stenning"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
)

// Params carries the numeric knobs a named constructor may need.
type Params struct {
	// M is the domain / alphabet size parameter.
	M int
	// Timeout is the hybrid protocol's phase-switch timeout.
	Timeout int
	// Window is the modseq sequence-number window.
	Window int
	// Seed feeds seeded adversaries.
	Seed int64
	// Budget is the dropper budget / replayer period / withholder hold.
	Budget int
	// Cap is the channel-capacity bound the stabilizing protocol assumes
	// (0 selects the protocol's default).
	Cap int
}

// protocolEntry describes one named protocol.
type protocolEntry struct {
	describe string
	build    func(Params) (protocol.Spec, error)
	// stabilizing marks protocols that claim self-stabilization: they
	// converge to prefix-safe transmission from arbitrary local state
	// (given the channel-capacity bound they were built with). The
	// model checker's stabilization mode verifies the claim; for every
	// other protocol it is expected to find a refutation.
	stabilizing bool
}

var protocols = map[string]protocolEntry{
	"alpha": {
		describe: "the paper's tight protocol (uses M)",
		build:    func(p Params) (protocol.Spec, error) { return alphaproto.New(p.M) },
	},
	"afwz": {
		describe: "gated reverse-order [AFWZ89] stand-in (uses M)",
		build:    func(p Params) (protocol.Spec, error) { return afwz.New(p.M) },
	},
	"hybrid": {
		describe: "§5 ABP/AFWZ alternation (uses M, Timeout)",
		build:    func(p Params) (protocol.Spec, error) { return hybrid.New(p.M, p.Timeout) },
	},
	"abp": {
		describe: "alternating-bit stop-and-wait (uses M)",
		build:    func(p Params) (protocol.Spec, error) { return abp.New(p.M) },
	},
	"stenning": {
		describe: "unbounded sequence numbers [Ste76]",
		build:    func(Params) (protocol.Spec, error) { return stenning.New(), nil },
	},
	"naive": {
		describe: "over-claiming protocol, unsafe past alpha(m) (uses M)",
		build:    func(p Params) (protocol.Spec, error) { return naive.NewWriteEveryData(p.M) },
	},
	"flood": {
		describe: "ack-free streaming, unsafe under reordering (uses M)",
		build:    func(p Params) (protocol.Spec, error) { return naive.NewFlood(p.M) },
	},
	"modseq": {
		describe: "Stenning mod Window: probabilistic STP (uses M, Window)",
		build:    func(p Params) (protocol.Spec, error) { return modseq.New(p.M, p.Window) },
	},
	"gobackn": {
		describe: "Go-Back-N sliding window over FIFO (uses M, Window)",
		build:    func(p Params) (protocol.Spec, error) { return gobackn.New(p.M, p.Window) },
	},
	"selrepeat": {
		describe: "Selective Repeat sliding window over FIFO (uses M, Window)",
		build:    func(p Params) (protocol.Spec, error) { return selrepeat.New(p.M, p.Window) },
	},
	"stab": {
		describe:    "self-stabilizing bounded-counter resynchronization (uses M, Cap)",
		build:       func(p Params) (protocol.Spec, error) { return stab.New(p.M, p.Cap) },
		stabilizing: true,
	},
}

// Stabilizing reports whether the named protocol claims self-stabilization
// (recovery from arbitrary local state). Unknown names report false.
func Stabilizing(name string) bool {
	e, ok := protocols[name]
	return ok && e.stabilizing
}

// StabilizingNames lists the registered protocols that claim
// self-stabilization, sorted.
func StabilizingNames() []string {
	names := make([]string, 0, 1)
	for n, e := range protocols {
		if e.stabilizing {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Protocol builds the named protocol with the given parameters.
func Protocol(name string, p Params) (protocol.Spec, error) {
	e, ok := protocols[name]
	if !ok {
		return protocol.Spec{}, fmt.Errorf("registry: unknown protocol %q (have %s)",
			name, strings.Join(ProtocolNames(), ", "))
	}
	return e.build(p)
}

// ProtocolNames lists the registered protocol names, sorted.
func ProtocolNames() []string {
	names := make([]string, 0, len(protocols))
	for n := range protocols {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DescribeProtocol returns the one-line description of a registered name.
func DescribeProtocol(name string) (string, error) {
	e, ok := protocols[name]
	if !ok {
		return "", fmt.Errorf("registry: unknown protocol %q (have %s)",
			name, strings.Join(ProtocolNames(), ", "))
	}
	return e.describe, nil
}

// Pair builds a connected sender/receiver pair of the named protocol for
// the given input — the live transport runtime's entry point: a wire
// session is wired up by protocol name, and the two processes it hosts
// come from here. The input is validated by the protocol's own
// constructor (it must lie in the protocol's allowable set X).
func Pair(name string, p Params, input seq.Seq) (protocol.Sender, protocol.Receiver, error) {
	spec, err := Protocol(name, p)
	if err != nil {
		return nil, nil, err
	}
	s, err := spec.NewSender(input)
	if err != nil {
		return nil, nil, fmt.Errorf("registry: building %s sender: %w", name, err)
	}
	r, err := spec.NewReceiver()
	if err != nil {
		return nil, nil, fmt.Errorf("registry: building %s receiver: %w", name, err)
	}
	return s, r, nil
}

var kinds = map[string]channel.Kind{
	"dup":     channel.KindDup,
	"del":     channel.KindDel,
	"reorder": channel.KindReorder,
	"fifo":    channel.KindFIFO,
	"dupdel":  channel.KindDupDel,
	"dup+del": channel.KindDupDel,
	"bounded": channel.KindBounded,
}

// Kind parses a channel-kind name.
func Kind(name string) (channel.Kind, error) {
	k, ok := kinds[name]
	if !ok {
		return 0, fmt.Errorf("registry: unknown channel %q (have %s)",
			name, strings.Join(KindNames(), ", "))
	}
	return k, nil
}

// KindNames lists the channel-kind names, sorted (aliases included).
func KindNames() []string {
	names := make([]string, 0, len(kinds))
	for n := range kinds {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// adversaryEntry describes one named adversary.
type adversaryEntry struct {
	describe string
	build    func(Params) sim.Adversary
}

var adversaries = map[string]adversaryEntry{
	"roundrobin": {
		describe: "deterministic fair schedule",
		build:    func(Params) sim.Adversary { return sim.NewRoundRobin() },
	},
	"random": {
		describe: "seeded random schedule under finite-delay fairness (uses Seed)",
		build:    func(p Params) sim.Adversary { return sim.NewFinDelay(sim.NewRandom(p.Seed), 10) },
	},
	"replayer": {
		describe: "round-robin plus periodic stale replays (uses Seed, Budget as period)",
		build: func(p Params) sim.Adversary {
			return sim.NewFinDelay(sim.NewReplayer(p.Seed, max(1, p.Budget)), 12)
		},
	},
	"dropper": {
		describe: "deletes up to Budget copies, then fair (uses Seed, Budget)",
		build:    func(p Params) sim.Adversary { return sim.NewBudgetDropper(p.Seed, p.Budget) },
	},
	"withholder": {
		describe: "stalls all deliveries for 10×Budget steps, then fair (uses Budget)",
		build:    func(p Params) sim.Adversary { return sim.NewWithholder(10 * p.Budget) },
	},
	"starver": {
		describe: "maximally delays the oldest undelivered message, under finite-delay fairness",
		build:    func(Params) sim.Adversary { return sim.NewFinDelay(sim.NewStarver(), 12) },
	},
	"eclipse": {
		describe: "isolates S→R for 10×Budget steps, then fair (uses Budget)",
		build:    func(p Params) sim.Adversary { return sim.NewEclipse(channel.SToR, 10*max(1, p.Budget)) },
	},
	"phased": {
		describe: "alternates 10×Budget-step healthy and partitioned phases forever (uses Budget)",
		build: func(p Params) sim.Adversary {
			return sim.NewPhasedPartition(10*max(1, p.Budget), 10*max(1, p.Budget))
		},
	},
}

// Adversary builds the named adversary with the given parameters.
func Adversary(name string, p Params) (sim.Adversary, error) {
	e, ok := adversaries[name]
	if !ok {
		return nil, fmt.Errorf("registry: unknown adversary %q (have %s)",
			name, strings.Join(AdversaryNames(), ", "))
	}
	return e.build(p), nil
}

// AdversaryNames lists the adversary names, sorted.
func AdversaryNames() []string {
	names := make([]string, 0, len(adversaries))
	for n := range adversaries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
