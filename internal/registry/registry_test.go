package registry

import (
	"testing"

	"seqtx/internal/channel"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
)

func defaults() Params {
	return Params{M: 2, Timeout: 4, Window: 4, Seed: 1, Budget: 2}
}

func TestEveryProtocolBuildsAndRuns(t *testing.T) {
	t.Parallel()
	for _, name := range ProtocolNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec, err := Protocol(name, defaults())
			if err != nil {
				t.Fatal(err)
			}
			if err := spec.Validate(); err != nil {
				t.Fatal(err)
			}
			if desc, derr := DescribeProtocol(name); derr != nil || desc == "" {
				t.Errorf("describe: %q, %v", desc, derr)
			}
			// Pick a channel each protocol is correct on and check a run.
			kind := channel.KindDup
			switch name {
			case "afwz", "hybrid":
				kind = channel.KindReorder
			case "abp", "gobackn", "selrepeat":
				kind = channel.KindFIFO
			case "flood", "naive":
				kind = channel.KindFIFO // even these work without faults... on FIFO order holds
			}
			input := seq.FromInts(0, 1)
			res, err := sim.RunProtocol(spec, input, kind, sim.NewRoundRobin(),
				sim.Config{MaxSteps: 2000, StopWhenComplete: true})
			if err != nil {
				t.Fatal(err)
			}
			if !res.OutputComplete {
				t.Fatalf("%s did not complete on %s: %s", name, kind, res.Output)
			}
		})
	}
}

func TestUnknownNames(t *testing.T) {
	t.Parallel()
	if _, err := Protocol("nope", defaults()); err == nil {
		t.Error("unknown protocol accepted")
	}
	if _, err := DescribeProtocol("nope"); err == nil {
		t.Error("unknown describe accepted")
	}
	if _, err := Kind("nope"); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := Adversary("nope", defaults()); err == nil {
		t.Error("unknown adversary accepted")
	}
}

func TestKindAliases(t *testing.T) {
	t.Parallel()
	k1, err := Kind("dupdel")
	if err != nil {
		t.Fatal(err)
	}
	k2, err := Kind("dup+del")
	if err != nil {
		t.Fatal(err)
	}
	if k1 != channel.KindDupDel || k2 != channel.KindDupDel {
		t.Errorf("aliases resolve to %v, %v", k1, k2)
	}
	for _, name := range []string{"dup", "del", "reorder", "fifo"} {
		if _, err := Kind(name); err != nil {
			t.Errorf("Kind(%q): %v", name, err)
		}
	}
}

func TestEveryAdversaryBuildsWithName(t *testing.T) {
	t.Parallel()
	for _, name := range AdversaryNames() {
		adv, err := Adversary(name, defaults())
		if err != nil {
			t.Fatal(err)
		}
		if adv.Name() == "" {
			t.Errorf("%s: empty adversary name", name)
		}
	}
}

func TestInvalidParamsPropagate(t *testing.T) {
	t.Parallel()
	p := defaults()
	p.M = -1
	if _, err := Protocol("alpha", p); err == nil {
		t.Error("negative M accepted by alpha")
	}
	p = defaults()
	p.Window = 0
	if _, err := Protocol("modseq", p); err == nil {
		t.Error("zero window accepted by modseq")
	}
}
