package registry

import (
	"testing"

	"seqtx/internal/protocol"
	"seqtx/internal/seq"
)

// TestEveryProtocolScrambles pins the zoo-wide corrupted-start hook: every
// registered protocol's sender and receiver implement protocol.Scrambler,
// scrambling is deterministic in the seed, and a scrambled pair survives
// being stepped (ticks plus cross-delivery of whatever it emits) without
// panicking — the property the sim scramble-restart policy and the wire
// supervisor's scrambled incarnations rely on.
func TestEveryProtocolScrambles(t *testing.T) {
	params := Params{M: 3, Timeout: 4, Window: 3, Cap: 2}
	input := seq.FromInts(0, 1, 2)
	for _, name := range ProtocolNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 8; seed++ {
				s, r, err := Pair(name, params, input)
				if err != nil {
					t.Fatalf("Pair(%s): %v", name, err)
				}
				if !protocol.ScrambleState(s, seed) {
					t.Fatalf("%s sender does not implement protocol.Scrambler", name)
				}
				if !protocol.ScrambleState(r, seed) {
					t.Fatalf("%s receiver does not implement protocol.Scrambler", name)
				}

				// Determinism in the seed.
				s2, r2, err := Pair(name, params, input)
				if err != nil {
					t.Fatalf("Pair(%s): %v", name, err)
				}
				protocol.ScrambleState(s2, seed)
				protocol.ScrambleState(r2, seed)
				if s.Key() != s2.Key() || r.Key() != r2.Key() {
					t.Fatalf("%s seed %d: scramble not deterministic: %q vs %q / %q vs %q",
						name, seed, s.Key(), s2.Key(), r.Key(), r2.Key())
				}

				// A scrambled pair must be steppable: drive ticks and
				// cross-deliver everything each side emits.
				var toR, toS []protocol.Event
				toR = append(toR, protocol.TickEvent())
				toS = append(toS, protocol.TickEvent())
				for i := 0; i < 64 && (len(toR) > 0 || len(toS) > 0); i++ {
					var nextR, nextS []protocol.Event
					for _, ev := range toS {
						for _, m := range s.Step(ev) {
							nextR = append(nextR, protocol.RecvEvent(m))
						}
					}
					for _, ev := range toR {
						sends, _ := r.Step(ev)
						for _, m := range sends {
							nextS = append(nextS, protocol.RecvEvent(m))
						}
					}
					toR, toS = nextR, nextS
				}
				// Keys must still render after stepping from junk.
				_ = s.Key()
				_ = r.Key()
				_ = protocol.AppendKey(nil, s)
				_ = protocol.AppendKey(nil, r)
			}
		})
	}
}
