package registry_test

// Per-protocol Step micro-benchmarks over the shared steady-state
// fixtures (internal/protocol/steptest): the same three paths the
// zero-alloc contract tests in internal/wire enforce — sender tick,
// receiver data parse + re-ack, sender ack parse. Recorded
// before/after the interned-codec refactor in BENCH_step.json.

import (
	"testing"

	"seqtx/internal/protocol"
	"seqtx/internal/protocol/steptest"
)

func BenchmarkStep(b *testing.B) {
	for _, f := range steptest.Fixtures() {
		f := f
		b.Run(f.Name+"/tick", func(b *testing.B) {
			s, _, err := f.New()
			if err != nil {
				b.Fatal(err)
			}
			ev := protocol.TickEvent()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step(ev)
			}
		})
		b.Run(f.Name+"/recv-data", func(b *testing.B) {
			_, r, err := f.New()
			if err != nil {
				b.Fatal(err)
			}
			ev := protocol.RecvEvent(f.Data)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Step(ev)
			}
		})
		b.Run(f.Name+"/recv-ack", func(b *testing.B) {
			s, _, err := f.New()
			if err != nil {
				b.Fatal(err)
			}
			ev := protocol.RecvEvent(f.Ack)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step(ev)
			}
		})
	}
}

// TestStepFixturesSteady guards the benchmark's premise: every fixture
// path must be repeatable without drifting protocol state, or the
// benchmark above would silently measure a cold path.
func TestStepFixturesSteady(t *testing.T) {
	for _, f := range steptest.Fixtures() {
		if err := steptest.Steady(f); err != nil {
			t.Error(err)
		}
	}
}
