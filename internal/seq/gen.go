package seq

import (
	"fmt"
	"math/rand"
)

// RepetitionFree enumerates every repetition-free sequence (including the
// empty one) over a domain of size m, in arrangement-tree depth-first
// order: a node's children append each unused item in increasing order.
// The count of returned sequences is alpha(m) (paper §1, §3).
func RepetitionFree(m int) []Seq {
	var out []Seq
	used := make([]bool, m)
	var rec func(cur Seq)
	rec = func(cur Seq) {
		out = append(out, cur.Clone())
		for i := 0; i < m; i++ {
			if used[i] {
				continue
			}
			used[i] = true
			rec(append(cur, Item(i)))
			used[i] = false
		}
	}
	rec(Seq{})
	return out
}

// RepetitionFreeSet returns RepetitionFree(m) as a Set. This is the
// paper's tight X for both STP(dup) and STP(del): |X| = alpha(m).
func RepetitionFreeSet(m int) *Set {
	s, err := NewSet(RepetitionFree(m)...)
	if err != nil {
		// RepetitionFree never generates duplicates.
		panic(fmt.Sprintf("seq: internal error: %v", err))
	}
	return s
}

// AllUpTo enumerates every sequence over a domain of size m with length at
// most maxLen, in length-then-lexicographic order. The count is
// sum_{k=0..maxLen} m^k.
func AllUpTo(m, maxLen int) []Seq {
	out := []Seq{{}}
	frontier := []Seq{{}}
	for l := 1; l <= maxLen; l++ {
		var next []Seq
		for _, p := range frontier {
			for i := 0; i < m; i++ {
				x := append(p.Clone(), Item(i))
				next = append(next, x)
				out = append(out, x)
			}
		}
		frontier = next
	}
	return out
}

// Random returns a uniformly random sequence of the given length over a
// domain of size m, using rng.
func Random(rng *rand.Rand, m, length int) Seq {
	x := make(Seq, length)
	for i := range x {
		x[i] = Item(rng.Intn(m))
	}
	return x
}

// RandomRepetitionFree returns a random repetition-free sequence of the
// given length over a domain of size m. It returns an error if length > m.
func RandomRepetitionFree(rng *rand.Rand, m, length int) (Seq, error) {
	if length > m {
		return nil, fmt.Errorf("seq: repetition-free length %d exceeds domain size %d", length, m)
	}
	perm := rng.Perm(m)
	x := make(Seq, length)
	for i := range x {
		x[i] = Item(perm[i])
	}
	return x, nil
}

// FromInts converts raw ints to a Seq. Convenience for tests and examples.
func FromInts(vals ...int) Seq {
	x := make(Seq, len(vals))
	for i, v := range vals {
		x[i] = Item(v)
	}
	return x
}
