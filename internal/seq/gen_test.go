package seq

import (
	"math/rand"
	"testing"
)

// alphaRef computes alpha(m) by the paper's recurrence, independently of
// the alpha package (which depends on seq and so cannot be imported here).
func alphaRef(m int) int {
	a := 1
	for k := 1; k <= m; k++ {
		a = k*a + 1
	}
	return a
}

func TestRepetitionFreeCountsMatchAlpha(t *testing.T) {
	t.Parallel()
	for m := 0; m <= 6; m++ {
		got := len(RepetitionFree(m))
		if want := alphaRef(m); got != want {
			t.Errorf("len(RepetitionFree(%d)) = %d, want alpha(%d) = %d", m, got, m, want)
		}
	}
}

func TestRepetitionFreeContents(t *testing.T) {
	t.Parallel()
	for m := 0; m <= 5; m++ {
		seen := map[string]struct{}{}
		for _, s := range RepetitionFree(m) {
			if s.HasRepetition() {
				t.Fatalf("m=%d: generated sequence %s has a repetition", m, s)
			}
			for _, x := range s {
				if int(x) < 0 || int(x) >= m {
					t.Fatalf("m=%d: item %d out of domain", m, int(x))
				}
			}
			if _, dup := seen[s.Key()]; dup {
				t.Fatalf("m=%d: duplicate sequence %s", m, s)
			}
			seen[s.Key()] = struct{}{}
		}
	}
}

func TestRepetitionFreeDFSOrder(t *testing.T) {
	t.Parallel()
	got := RepetitionFree(2)
	want := []string{"ε", "0", "0.1", "1", "1.0"}
	if len(got) != len(want) {
		t.Fatalf("got %d sequences, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Key() != want[i] {
			t.Errorf("RepetitionFree(2)[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestRepetitionFreeSet(t *testing.T) {
	t.Parallel()
	s := RepetitionFreeSet(3)
	if s.Size() != alphaRef(3) {
		t.Errorf("Size() = %d, want %d", s.Size(), alphaRef(3))
	}
}

func TestAllUpTo(t *testing.T) {
	t.Parallel()
	got := AllUpTo(2, 2)
	// 1 + 2 + 4 = 7 sequences.
	if len(got) != 7 {
		t.Fatalf("len = %d, want 7", len(got))
	}
	seen := map[string]struct{}{}
	for _, s := range got {
		if len(s) > 2 {
			t.Errorf("sequence %s longer than maxLen", s)
		}
		if _, dup := seen[s.Key()]; dup {
			t.Errorf("duplicate %s", s)
		}
		seen[s.Key()] = struct{}{}
	}
}

func TestAllUpToZeroLen(t *testing.T) {
	t.Parallel()
	got := AllUpTo(3, 0)
	if len(got) != 1 || len(got[0]) != 0 {
		t.Errorf("AllUpTo(3,0) = %v, want just the empty sequence", got)
	}
}

func TestRandom(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(1))
	s := Random(rng, 3, 10)
	if len(s) != 10 {
		t.Fatalf("len = %d, want 10", len(s))
	}
	for _, x := range s {
		if int(x) < 0 || int(x) >= 3 {
			t.Errorf("item %d out of domain [0,3)", int(x))
		}
	}
}

func TestRandomRepetitionFree(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		s, err := RandomRepetitionFree(rng, 5, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(s) != 4 || s.HasRepetition() {
			t.Fatalf("bad sequence %s", s)
		}
	}
	if _, err := RandomRepetitionFree(rng, 2, 3); err == nil {
		t.Error("length > m succeeded, want error")
	}
}

func TestFromInts(t *testing.T) {
	t.Parallel()
	s := FromInts(3, 1)
	if len(s) != 2 || s[0] != 3 || s[1] != 1 {
		t.Errorf("FromInts(3,1) = %v", s)
	}
}
