// Package seq defines data items, domains, data sequences, and sets of
// allowable sequences for the sequence transmission problem (STP).
//
// In the paper's model (Wang & Zuck 1989, §2.1) the sender reads a sequence
// X of data items drawn from a finite domain D and must communicate it to
// the receiver. The set of allowable input sequences is called X (here:
// Set). Sequences may be finite; the paper also admits infinite sequences,
// which this implementation approximates by finite prefixes of configurable
// length.
package seq

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Item is a single data item from a finite domain D. Items are small
// non-negative integers; the Domain gives them meaning and a printable name.
type Item int

// Domain is the finite domain D the data items are drawn from.
// The zero value is the empty domain.
type Domain struct {
	names []string
}

// NewDomain returns a domain with size items named by names. Item i is
// printed as names[i].
func NewDomain(names ...string) Domain {
	cp := make([]string, len(names))
	copy(cp, names)
	return Domain{names: cp}
}

// IntDomain returns a domain of size n whose items print as "0".."n-1".
func IntDomain(n int) Domain {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("%d", i)
	}
	return Domain{names: names}
}

// LetterDomain returns a domain of size n (n <= 26) whose items print as
// "a".."z".
func LetterDomain(n int) (Domain, error) {
	if n < 0 || n > 26 {
		return Domain{}, fmt.Errorf("seq: letter domain size %d out of range [0,26]", n)
	}
	names := make([]string, n)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	return Domain{names: names}, nil
}

// Size returns |D|.
func (d Domain) Size() int { return len(d.names) }

// Name returns the printable name of item x, or "?" if x is out of range.
func (d Domain) Name(x Item) string {
	if int(x) < 0 || int(x) >= len(d.names) {
		return "?"
	}
	return d.names[x]
}

// Contains reports whether x is a member of the domain.
func (d Domain) Contains(x Item) bool { return int(x) >= 0 && int(x) < len(d.names) }

// Items returns all items of the domain in order.
func (d Domain) Items() []Item {
	items := make([]Item, d.Size())
	for i := range items {
		items[i] = Item(i)
	}
	return items
}

// Seq is a finite sequence of data items (an input tape X or output tape Y).
type Seq []Item

// Clone returns an independent copy of s.
func (s Seq) Clone() Seq {
	if s == nil {
		return nil
	}
	cp := make(Seq, len(s))
	copy(cp, s)
	return cp
}

// Equal reports whether s and t are item-wise equal.
func (s Seq) Equal(t Seq) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// IsPrefixOf reports whether s is a (not necessarily proper) prefix of t.
// This is the paper's safety relation: at all times Y must be a prefix of X.
func (s Seq) IsPrefixOf(t Seq) bool {
	if len(s) > len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// HasRepetition reports whether any item occurs more than once in s.
// Repetition-free sequences are the ones counted by alpha(m) and are
// exactly the inputs accepted by the paper's tight protocol (§3, end).
func (s Seq) HasRepetition() bool {
	seen := make(map[Item]struct{}, len(s))
	for _, x := range s {
		if _, ok := seen[x]; ok {
			return true
		}
		seen[x] = struct{}{}
	}
	return false
}

// String renders s as "x1.x2.x3" using raw item numbers ("ε" if empty).
func (s Seq) String() string {
	if len(s) == 0 {
		return "ε"
	}
	parts := make([]string, len(s))
	for i, x := range s {
		parts[i] = fmt.Sprintf("%d", int(x))
	}
	return strings.Join(parts, ".")
}

// Format renders s using the domain's item names.
func (s Seq) Format(d Domain) string {
	if len(s) == 0 {
		return "ε"
	}
	parts := make([]string, len(s))
	for i, x := range s {
		parts[i] = d.Name(x)
	}
	return strings.Join(parts, ".")
}

// Key returns a canonical map key for s.
func (s Seq) Key() string { return s.String() }

// EncodeKey appends a self-delimiting binary encoding of s to buf and
// returns the extended slice: the length as a uvarint followed by the
// items as varints. Equal sequences produce equal bytes and vice versa —
// the allocation-free counterpart of Key for the model checker's state
// index.
func (s Seq) EncodeKey(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	for _, v := range s {
		buf = binary.AppendVarint(buf, int64(v))
	}
	return buf
}

// PaperLength returns the paper's |X|: k+1 for a sequence of k items
// (so the empty sequence has length 1). The paper uses this convention so
// that "i < |X|" ranges over the positions 1..k.
func (s Seq) PaperLength() int { return len(s) + 1 }
