package seq

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDomainBasics(t *testing.T) {
	t.Parallel()
	d := NewDomain("x", "y", "z")
	if got := d.Size(); got != 3 {
		t.Fatalf("Size() = %d, want 3", got)
	}
	if got := d.Name(1); got != "y" {
		t.Errorf("Name(1) = %q, want %q", got, "y")
	}
	if got := d.Name(5); got != "?" {
		t.Errorf("Name(5) = %q, want %q", got, "?")
	}
	if d.Contains(3) {
		t.Error("Contains(3) = true, want false")
	}
	if !d.Contains(0) {
		t.Error("Contains(0) = false, want true")
	}
	if got := len(d.Items()); got != 3 {
		t.Errorf("len(Items()) = %d, want 3", got)
	}
}

func TestIntDomain(t *testing.T) {
	t.Parallel()
	d := IntDomain(4)
	if d.Size() != 4 {
		t.Fatalf("Size() = %d, want 4", d.Size())
	}
	if got := d.Name(2); got != "2" {
		t.Errorf("Name(2) = %q, want %q", got, "2")
	}
}

func TestLetterDomain(t *testing.T) {
	t.Parallel()
	d, err := LetterDomain(3)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Name(2); got != "c" {
		t.Errorf("Name(2) = %q, want %q", got, "c")
	}
	if _, err := LetterDomain(27); err == nil {
		t.Error("LetterDomain(27) succeeded, want error")
	}
	if _, err := LetterDomain(-1); err == nil {
		t.Error("LetterDomain(-1) succeeded, want error")
	}
}

func TestSeqCloneIndependence(t *testing.T) {
	t.Parallel()
	s := FromInts(1, 2, 3)
	c := s.Clone()
	c[0] = 9
	if s[0] != 1 {
		t.Error("Clone shares backing array with original")
	}
	if (Seq)(nil).Clone() != nil {
		t.Error("Clone(nil) != nil")
	}
}

func TestIsPrefixOf(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name string
		s, t Seq
		want bool
	}{
		{"empty of empty", Seq{}, Seq{}, true},
		{"empty of any", Seq{}, FromInts(1, 2), true},
		{"proper prefix", FromInts(1), FromInts(1, 2), true},
		{"equal", FromInts(1, 2), FromInts(1, 2), true},
		{"longer", FromInts(1, 2, 3), FromInts(1, 2), false},
		{"mismatch", FromInts(1, 3), FromInts(1, 2, 3), false},
		{"nil of nil", nil, nil, true},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			if got := tt.s.IsPrefixOf(tt.t); got != tt.want {
				t.Errorf("(%v).IsPrefixOf(%v) = %v, want %v", tt.s, tt.t, got, tt.want)
			}
		})
	}
}

func TestHasRepetition(t *testing.T) {
	t.Parallel()
	if FromInts(1, 2, 3).HasRepetition() {
		t.Error("1.2.3 reported repetition")
	}
	if !FromInts(1, 2, 1).HasRepetition() {
		t.Error("1.2.1 reported no repetition")
	}
	if (Seq{}).HasRepetition() {
		t.Error("empty sequence reported repetition")
	}
}

func TestStringAndFormat(t *testing.T) {
	t.Parallel()
	if got := (Seq{}).String(); got != "ε" {
		t.Errorf("empty String() = %q, want ε", got)
	}
	if got := FromInts(0, 2).String(); got != "0.2" {
		t.Errorf("String() = %q, want 0.2", got)
	}
	d := NewDomain("a", "b", "c")
	if got := FromInts(0, 2).Format(d); got != "a.c" {
		t.Errorf("Format() = %q, want a.c", got)
	}
}

func TestPaperLength(t *testing.T) {
	t.Parallel()
	if got := (Seq{}).PaperLength(); got != 1 {
		t.Errorf("PaperLength(ε) = %d, want 1", got)
	}
	if got := FromInts(1, 2, 3).PaperLength(); got != 4 {
		t.Errorf("PaperLength(1.2.3) = %d, want 4", got)
	}
}

func TestPrefixTransitivityProperty(t *testing.T) {
	t.Parallel()
	// Property: prefix relation is transitive and antisymmetric on keys.
	rng := rand.New(rand.NewSource(7))
	f := func(a, b, c []uint8) bool {
		s := clip(a, rng)
		u := clip(b, rng)
		v := clip(c, rng)
		if s.IsPrefixOf(u) && u.IsPrefixOf(v) && !s.IsPrefixOf(v) {
			return false
		}
		if s.IsPrefixOf(u) && u.IsPrefixOf(s) && !s.Equal(u) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func clip(raw []uint8, rng *rand.Rand) Seq {
	s := make(Seq, 0, len(raw)%8)
	for i := 0; i < len(raw) && i < 8; i++ {
		s = append(s, Item(raw[i]%4))
	}
	_ = rng
	return s
}

func TestEqualProperty(t *testing.T) {
	t.Parallel()
	f := func(a []uint8) bool {
		s := clip(a, nil)
		return s.Equal(s.Clone()) && s.IsPrefixOf(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
