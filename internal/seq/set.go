package seq

import (
	"fmt"
	"sort"
)

// Set is a finite set X of allowable input sequences, stored both as a
// list (stable iteration order) and as a prefix trie (for prefix-relation
// queries, which drive the encodability results of §3).
type Set struct {
	seqs []Seq
	keys map[string]int // Key -> index into seqs
}

// NewSet returns a set containing the given sequences. Duplicates are
// rejected so that |X| is meaningful.
func NewSet(seqs ...Seq) (*Set, error) {
	s := &Set{keys: make(map[string]int, len(seqs))}
	for _, x := range seqs {
		if err := s.Add(x); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// MustNewSet is NewSet for statically known inputs; it panics on duplicates.
// Intended for tests and examples only.
func MustNewSet(seqs ...Seq) *Set {
	s, err := NewSet(seqs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Add inserts x into the set. It returns an error if x is already present.
func (s *Set) Add(x Seq) error {
	k := x.Key()
	if _, ok := s.keys[k]; ok {
		return fmt.Errorf("seq: duplicate sequence %s in set", k)
	}
	s.keys[k] = len(s.seqs)
	s.seqs = append(s.seqs, x.Clone())
	return nil
}

// Size returns |X|.
func (s *Set) Size() int { return len(s.seqs) }

// Seqs returns the sequences in insertion order. The returned slice is
// shared; callers must not mutate it.
func (s *Set) Seqs() []Seq { return s.seqs }

// At returns the i-th sequence in insertion order.
func (s *Set) At(i int) Seq { return s.seqs[i] }

// Contains reports whether x is in the set.
func (s *Set) Contains(x Seq) bool {
	_, ok := s.keys[x.Key()]
	return ok
}

// MaxLen returns the length (number of items) of the longest sequence.
func (s *Set) MaxLen() int {
	maxLen := 0
	for _, x := range s.seqs {
		if len(x) > maxLen {
			maxLen = len(x)
		}
	}
	return maxLen
}

// DistinguishingPrefix returns the paper's beta (§4): the minimal i such
// that every sequence in the set is uniquely identified by its i-item
// prefix. For a set containing two identical sequences this cannot happen,
// but NewSet rejects duplicates, so a value always exists (at most MaxLen).
func (s *Set) DistinguishingPrefix() int {
	// Two distinct sequences share an i-prefix key exactly when their
	// truncations to i items are equal; once i reaches both lengths the
	// truncations are the sequences themselves, which differ. Hence the
	// loop terminates by MaxLen at the latest.
	for i := 0; ; i++ {
		seen := make(map[string]struct{}, len(s.seqs))
		ok := true
		for _, x := range s.seqs {
			p := x
			if len(p) > i {
				p = p[:i]
			}
			key := p.Key()
			if _, dup := seen[key]; dup {
				ok = false
				break
			}
			seen[key] = struct{}{}
		}
		if ok {
			return i
		}
		if i > s.MaxLen() {
			return s.MaxLen() // unreachable for duplicate-free sets
		}
	}
}

// SortedKeys returns the canonical keys of all sequences, sorted. Useful
// for deterministic iteration in tests.
func (s *Set) SortedKeys() []string {
	keys := make([]string, 0, len(s.seqs))
	for k := range s.keys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Trie converts the set into a prefix trie. Every sequence in the set is
// marked terminal in the trie; shared prefixes share nodes.
func (s *Set) Trie() *Trie {
	t := NewTrie()
	for _, x := range s.seqs {
		t.Insert(x)
	}
	return t
}
