package seq

import (
	"strings"
	"testing"
)

func TestNewSetRejectsDuplicates(t *testing.T) {
	t.Parallel()
	if _, err := NewSet(FromInts(1), FromInts(1)); err == nil {
		t.Fatal("NewSet with duplicate succeeded, want error")
	}
	s, err := NewSet(FromInts(1), FromInts(2))
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 2 {
		t.Errorf("Size() = %d, want 2", s.Size())
	}
}

func TestSetContainsAndAt(t *testing.T) {
	t.Parallel()
	s := MustNewSet(FromInts(1, 2), FromInts(3))
	if !s.Contains(FromInts(1, 2)) {
		t.Error("Contains(1.2) = false")
	}
	if s.Contains(FromInts(2, 1)) {
		t.Error("Contains(2.1) = true")
	}
	if !s.At(1).Equal(FromInts(3)) {
		t.Errorf("At(1) = %v, want 3", s.At(1))
	}
}

func TestSetAddClonesInput(t *testing.T) {
	t.Parallel()
	x := FromInts(1, 2)
	s := MustNewSet(x)
	x[0] = 9
	if !s.At(0).Equal(FromInts(1, 2)) {
		t.Error("Set shares storage with caller's slice")
	}
}

func TestMaxLen(t *testing.T) {
	t.Parallel()
	s := MustNewSet(Seq{}, FromInts(1, 2, 3), FromInts(4))
	if got := s.MaxLen(); got != 3 {
		t.Errorf("MaxLen() = %d, want 3", got)
	}
}

func TestDistinguishingPrefix(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name string
		seqs []Seq
		want int
	}{
		{"singleton", []Seq{FromInts(1, 2, 3)}, 0},
		{"differ at first", []Seq{FromInts(1), FromInts(2)}, 1},
		{"differ at third", []Seq{FromInts(1, 2, 3), FromInts(1, 2, 4)}, 3},
		{"prefix pair", []Seq{FromInts(1), FromInts(1, 2)}, 2},
		{"empty vs one", []Seq{{}, FromInts(1)}, 1},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			s := MustNewSet(tt.seqs...)
			if got := s.DistinguishingPrefix(); got != tt.want {
				t.Errorf("DistinguishingPrefix() = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestDistinguishingPrefixIsMinimal(t *testing.T) {
	t.Parallel()
	// For the full repetition-free set over 3 items the longest shared
	// structure forces beta = 3 (e.g. 0.1 vs 0.1.2 need 3 items to split;
	// actually 0.1 is fully visible at i=2... verify minimality directly).
	s := RepetitionFreeSet(3)
	beta := s.DistinguishingPrefix()
	// Check beta works and beta-1 does not.
	unique := func(i int) bool {
		seen := map[string]struct{}{}
		for _, x := range s.Seqs() {
			p := x
			if len(p) > i {
				p = p[:i]
			}
			k := p.Key()
			if _, dup := seen[k]; dup {
				return false
			}
			seen[k] = struct{}{}
		}
		return true
	}
	if !unique(beta) {
		t.Errorf("beta = %d does not identify all sequences", beta)
	}
	if beta > 0 && unique(beta-1) {
		t.Errorf("beta = %d is not minimal", beta)
	}
}

func TestSortedKeys(t *testing.T) {
	t.Parallel()
	s := MustNewSet(FromInts(2), FromInts(1))
	keys := s.SortedKeys()
	if len(keys) != 2 || keys[0] != "1" || keys[1] != "2" {
		t.Errorf("SortedKeys() = %v, want [1 2]", keys)
	}
}

func TestSetTrieRoundTrip(t *testing.T) {
	t.Parallel()
	s := MustNewSet(Seq{}, FromInts(0, 1), FromInts(0), FromInts(1, 0))
	tr := s.Trie()
	if tr.Size() != 4 {
		t.Fatalf("Trie.Size() = %d, want 4", tr.Size())
	}
	got := tr.Members()
	if len(got) != 4 {
		t.Fatalf("Members() returned %d sequences, want 4", len(got))
	}
	for _, m := range got {
		if !s.Contains(m) {
			t.Errorf("trie member %v not in set", m)
		}
	}
}

func TestTrieContains(t *testing.T) {
	t.Parallel()
	tr := NewTrie()
	tr.Insert(FromInts(0, 1))
	if tr.Contains(FromInts(0)) {
		t.Error("Contains(0) = true for non-member internal node")
	}
	if !tr.Contains(FromInts(0, 1)) {
		t.Error("Contains(0.1) = false")
	}
	tr.Insert(FromInts(0, 1)) // idempotent
	if tr.Size() != 1 {
		t.Errorf("Size() = %d after duplicate insert, want 1", tr.Size())
	}
}

func TestTrieHeightAndCount(t *testing.T) {
	t.Parallel()
	tr := NewTrie()
	tr.Insert(FromInts(0, 1, 2))
	tr.Insert(FromInts(0, 3))
	root := tr.Root()
	if got := root.Height(); got != 3 {
		t.Errorf("Height() = %d, want 3", got)
	}
	// Nodes: root, 0, 0.1, 0.1.2, 0.3 => 5.
	if got := root.CountNodes(); got != 5 {
		t.Errorf("CountNodes() = %d, want 5", got)
	}
}

func TestTrieWalkOrderAndEarlyStop(t *testing.T) {
	t.Parallel()
	tr := NewTrie()
	tr.Insert(FromInts(1))
	tr.Insert(FromInts(0))
	tr.Insert(FromInts(0, 2))
	var visited []string
	tr.Walk(func(prefix Seq, n *TrieNode) bool {
		visited = append(visited, prefix.Key())
		return true
	})
	want := "ε,0,0.2,1"
	if got := strings.Join(visited, ","); got != want {
		t.Errorf("Walk order = %s, want %s", got, want)
	}
	count := 0
	tr.Walk(func(Seq, *TrieNode) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("early-stop walk visited %d nodes, want 2", count)
	}
}
