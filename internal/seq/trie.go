package seq

import "sort"

// Trie is a prefix trie over data sequences. It records, for a set X of
// sequences, the prefix structure that governs encodability into the
// arrangement tree (§3, end): mu(X1) must be a prefix of mu(X2) exactly
// when X1 is a prefix of X2, so the shape of X's trie is what must embed.
type Trie struct {
	root *TrieNode
	size int // number of terminal nodes
}

// TrieNode is a node of a Trie. The root corresponds to the empty sequence.
type TrieNode struct {
	item     Item // item on the edge from the parent (undefined at root)
	terminal bool // whether the sequence ending here is a member of X
	children map[Item]*TrieNode
}

// NewTrie returns an empty trie.
func NewTrie() *Trie {
	return &Trie{root: &TrieNode{children: make(map[Item]*TrieNode)}}
}

// Insert adds x to the trie (idempotent).
func (t *Trie) Insert(x Seq) {
	n := t.root
	for _, it := range x {
		child, ok := n.children[it]
		if !ok {
			child = &TrieNode{item: it, children: make(map[Item]*TrieNode)}
			n.children[it] = child
		}
		n = child
	}
	if !n.terminal {
		n.terminal = true
		t.size++
	}
}

// Contains reports whether x was inserted as a member.
func (t *Trie) Contains(x Seq) bool {
	n := t.root
	for _, it := range x {
		child, ok := n.children[it]
		if !ok {
			return false
		}
		n = child
	}
	return n.terminal
}

// Size returns the number of member sequences.
func (t *Trie) Size() int { return t.size }

// Root returns the root node.
func (t *Trie) Root() *TrieNode { return t.root }

// Terminal reports whether the node is a member of X.
func (n *TrieNode) Terminal() bool { return n.terminal }

// Item returns the item on the edge leading to this node.
func (n *TrieNode) Item() Item { return n.item }

// Children returns the node's children ordered by item, for deterministic
// traversal.
func (n *TrieNode) Children() []*TrieNode {
	out := make([]*TrieNode, 0, len(n.children))
	for _, c := range n.children {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].item < out[j].item })
	return out
}

// Height returns the number of items on the longest downward path from n.
func (n *TrieNode) Height() int {
	h := 0
	for _, c := range n.children {
		if ch := c.Height() + 1; ch > h {
			h = ch
		}
	}
	return h
}

// CountNodes returns the number of nodes in the subtree rooted at n,
// including n itself.
func (n *TrieNode) CountNodes() int {
	total := 1
	for _, c := range n.children {
		total += c.CountNodes()
	}
	return total
}

// Walk visits every node in depth-first order (children by item order),
// passing the sequence spelled from the root. Walk stops early if fn
// returns false.
func (t *Trie) Walk(fn func(prefix Seq, n *TrieNode) bool) {
	var rec func(prefix Seq, n *TrieNode) bool
	rec = func(prefix Seq, n *TrieNode) bool {
		if !fn(prefix, n) {
			return false
		}
		for _, c := range n.Children() {
			if !rec(append(prefix.Clone(), c.item), c) {
				return false
			}
		}
		return true
	}
	rec(Seq{}, t.root)
}

// Members returns all member sequences in depth-first item order.
func (t *Trie) Members() []Seq {
	var out []Seq
	t.Walk(func(prefix Seq, n *TrieNode) bool {
		if n.terminal {
			out = append(out, prefix.Clone())
		}
		return true
	})
	return out
}
