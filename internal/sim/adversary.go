package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"seqtx/internal/channel"
	"seqtx/internal/msg"
	"seqtx/internal/trace"
)

// Adversary resolves the environment's nondeterminism: at each step it
// picks one of the enabled actions. The paper's channels "can arbitrarily
// delay messages and cannot discriminate between deliverable messages"
// (Property 1b); adversaries are particular deterministic or seeded
// resolutions of that freedom.
type Adversary interface {
	// Name identifies the adversary for reports.
	Name() string
	// Choose picks one of the enabled actions (enabled is never empty:
	// ticks are always available).
	Choose(w *World, enabled []trace.Action) trace.Action
}

// Random picks uniformly among enabled actions, with a configurable
// weight multiplier for drop actions (0 disables drops entirely).
type Random struct {
	rng        *rand.Rand
	dropWeight int
	name       string
}

var _ Adversary = (*Random)(nil)

// NewRandom returns a seeded uniform adversary that never drops.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed)), dropWeight: 0, name: fmt.Sprintf("random(%d)", seed)}
}

// NewRandomDropper returns a seeded adversary that includes drop actions
// with the given relative weight (1 = same as any other action).
func NewRandomDropper(seed int64, dropWeight int) *Random {
	return &Random{
		rng:        rand.New(rand.NewSource(seed)),
		dropWeight: dropWeight,
		name:       fmt.Sprintf("random-drop(%d,w=%d)", seed, dropWeight),
	}
}

// Name implements Adversary.
func (a *Random) Name() string { return a.name }

// Choose implements Adversary. It samples by cumulative weight in two
// passes over enabled — no per-step materialization of a weighted slice.
// The selection (and the consumed rng stream: one Intn of the total
// weight) is identical to picking uniformly from the slice in which every
// action is repeated weight-many times, so seeded runs are unchanged.
func (a *Random) Choose(_ *World, enabled []trace.Action) trace.Action {
	total := 0
	for _, act := range enabled {
		total += a.weight(act)
	}
	if total == 0 {
		// All actions were drops with weight 0; fall back to the raw set.
		return enabled[a.rng.Intn(len(enabled))]
	}
	r := a.rng.Intn(total)
	for _, act := range enabled {
		r -= a.weight(act)
		if r < 0 {
			return act
		}
	}
	return enabled[len(enabled)-1]
}

func (a *Random) weight(act trace.Action) int {
	if act.Kind == trace.ActDrop {
		return a.dropWeight
	}
	return 1
}

// RoundRobin is the friendly deterministic scheduler: it cycles
// tickS → deliver S→R → tickR → deliver R→S, skipping phases with nothing
// to do. Deliveries rotate through the sorted deliverable set (on dup
// channels old messages stay deliverable forever, so always picking the
// smallest would starve new ones). Deterministic, hence reproducible. It
// never drops or duplicates.
type RoundRobin struct {
	phase   int
	deliver map[channel.Dir]int
}

var _ Adversary = (*RoundRobin)(nil)

// NewRoundRobin returns the deterministic fair scheduler.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Adversary.
func (a *RoundRobin) Name() string { return "round-robin" }

// Choose implements Adversary.
func (a *RoundRobin) Choose(w *World, _ []trace.Action) trace.Action {
	if a.deliver == nil {
		a.deliver = make(map[channel.Dir]int)
	}
	for i := 0; i < 4; i++ {
		phase := (a.phase + i) % 4
		switch phase {
		case 0:
			a.phase = (phase + 1) % 4
			return trace.TickS()
		case 1:
			if m, ok := a.nextDeliverable(w, channel.SToR); ok {
				a.phase = (phase + 1) % 4
				return trace.Deliver(channel.SToR, m)
			}
		case 2:
			a.phase = (phase + 1) % 4
			return trace.TickR()
		case 3:
			if m, ok := a.nextDeliverable(w, channel.RToS); ok {
				a.phase = (phase + 1) % 4
				return trace.Deliver(channel.RToS, m)
			}
		}
	}
	a.phase = 1
	return trace.TickS()
}

func (a *RoundRobin) nextDeliverable(w *World, d channel.Dir) (msg.Msg, bool) {
	sup := w.Link.Half(d).Deliverable().Support()
	if len(sup) == 0 {
		return "", false
	}
	sort.Slice(sup, func(i, j int) bool { return sup[i] < sup[j] })
	m := sup[a.deliver[d]%len(sup)]
	a.deliver[d]++
	return m, true
}

// Scripted plays a fixed prefix of actions, then delegates to a fallback.
// Actions in the script that are not currently enabled are skipped. Useful
// for reproducing specific counterexample runs.
type Scripted struct {
	script   []trace.Action
	pos      int
	fallback Adversary
}

var _ Adversary = (*Scripted)(nil)

// NewScripted returns an adversary playing script then fallback.
func NewScripted(script []trace.Action, fallback Adversary) *Scripted {
	return &Scripted{script: script, fallback: fallback}
}

// Name implements Adversary.
func (a *Scripted) Name() string { return "scripted+" + a.fallback.Name() }

// Choose implements Adversary.
func (a *Scripted) Choose(w *World, enabled []trace.Action) trace.Action {
	en := make(map[string]struct{}, len(enabled))
	for _, act := range enabled {
		en[act.Key()] = struct{}{}
	}
	for a.pos < len(a.script) {
		act := a.script[a.pos]
		a.pos++
		// Crash-restarts are fault injections, never part of the enabled
		// set; a replayed counterexample must still perform them.
		if act.Kind == trace.ActCrashS || act.Kind == trace.ActCrashR {
			return act
		}
		if _, ok := en[act.Key()]; ok {
			return act
		}
	}
	return a.fallback.Choose(w, enabled)
}

// Replayer exercises duplication: it follows RoundRobin but every period
// steps it re-delivers a random already-sent message on the S→R half.
// Meaningful on dup channels, where old messages remain deliverable.
type Replayer struct {
	inner  *RoundRobin
	rng    *rand.Rand
	period int
	count  int
}

var _ Adversary = (*Replayer)(nil)

// NewReplayer returns a replaying adversary with the given period (>= 1).
func NewReplayer(seed int64, period int) *Replayer {
	if period < 1 {
		period = 1
	}
	return &Replayer{inner: NewRoundRobin(), rng: rand.New(rand.NewSource(seed)), period: period}
}

// Name implements Adversary.
func (a *Replayer) Name() string { return fmt.Sprintf("replayer(p=%d)", a.period) }

// Choose implements Adversary.
func (a *Replayer) Choose(w *World, enabled []trace.Action) trace.Action {
	a.count++
	if a.count%a.period == 0 {
		sup := w.Link.Half(channel.SToR).Deliverable().Support()
		if len(sup) > 0 {
			return trace.Deliver(channel.SToR, sup[a.rng.Intn(len(sup))])
		}
	}
	return a.inner.Choose(w, enabled)
}

// Withholder delays: for its first holdSteps steps it only ticks the
// processes (no deliveries at all — Property 1b(i) iterated), after which
// it behaves like RoundRobin. It exhibits the arbitrary-delay power of
// the channel.
type Withholder struct {
	inner     *RoundRobin
	initial   int
	holdSteps int
	tickS     bool
}

var _ Adversary = (*Withholder)(nil)

// NewWithholder returns an adversary that stalls all deliveries for
// holdSteps steps.
func NewWithholder(holdSteps int) *Withholder {
	return &Withholder{inner: NewRoundRobin(), initial: holdSteps, holdSteps: holdSteps}
}

// Name implements Adversary.
func (a *Withholder) Name() string { return fmt.Sprintf("withholder(%d)", a.initial) }

// Choose implements Adversary.
func (a *Withholder) Choose(w *World, enabled []trace.Action) trace.Action {
	if a.holdSteps > 0 {
		a.holdSteps--
		a.tickS = !a.tickS
		if a.tickS {
			return trace.TickS()
		}
		return trace.TickR()
	}
	return a.inner.Choose(w, enabled)
}

// BudgetDropper drops the first budget deliverable copies it sees (on del
// or lossy-FIFO halves), then behaves like RoundRobin. With a finite
// budget the resulting schedule is still fair-in-the-limit, so liveness
// must survive it.
type BudgetDropper struct {
	inner   *RoundRobin
	rng     *rand.Rand
	initial int
	budget  int
}

var _ Adversary = (*BudgetDropper)(nil)

// NewBudgetDropper returns an adversary dropping up to budget copies.
func NewBudgetDropper(seed int64, budget int) *BudgetDropper {
	return &BudgetDropper{
		inner:   NewRoundRobin(),
		rng:     rand.New(rand.NewSource(seed)),
		initial: budget,
		budget:  budget,
	}
}

// Name implements Adversary.
func (a *BudgetDropper) Name() string { return fmt.Sprintf("budget-dropper(%d)", a.initial) }

// Choose implements Adversary.
func (a *BudgetDropper) Choose(w *World, enabled []trace.Action) trace.Action {
	if a.budget > 0 {
		var drops []trace.Action
		for _, act := range enabled {
			if act.Kind == trace.ActDrop {
				drops = append(drops, act)
			}
		}
		if len(drops) > 0 {
			a.budget--
			return drops[a.rng.Intn(len(drops))]
		}
	}
	return a.inner.Choose(w, enabled)
}
