package sim

import (
	"fmt"

	"seqtx/internal/channel"
	"seqtx/internal/trace"
)

// FinDelay wraps an adversary and enforces finite-delay fairness: every
// message type that stays deliverable for budget consecutive steps is
// force-delivered, and each process is force-ticked at least every budget
// steps. This is the concrete form of the paper's fairness requirement
// (F-liveness is only demanded on fair runs; at the end of §3 the paper
// itself picks "every message that is sent is eventually delivered").
//
// On dup halves a message stays deliverable forever, so it will be
// re-delivered roughly every budget steps — which is allowed behaviour on
// a duplicating channel and keeps the schedule fair for any number of
// logical sends of the same value. On del halves the wrapper cannot and
// does not resurrect dropped copies: drops by the inner adversary remain
// genuine faults; fairness applies to the copies that survive.
type FinDelay struct {
	inner  Adversary
	budget int

	now       int
	age       map[string]ageEntry // dir|msg -> deliverable-age bookkeeping
	sinceTick map[trace.ActKind]int
}

// ageEntry tracks one deliverable message type: how many consecutive
// steps it has been deliverable, and the last step it was observed. An
// entry whose seenAt falls behind is stale (the type was delivered or
// dropped); stale entries are reaped by a periodic sweep instead of a
// full-map scan every step, so long del-channel runs neither grow the map
// without bound nor pay O(|age|) per step.
type ageEntry struct {
	age    int
	seenAt int
}

var _ Adversary = (*FinDelay)(nil)

// NewFinDelay wraps inner with a finite-delay budget. Budgets below 4 are
// clamped: one protocol round trip needs a sender tick, a delivery, a
// receiver step, and a reply delivery, so a smaller budget would spend
// every step on forced ticks and starve deliveries.
func NewFinDelay(inner Adversary, budget int) *FinDelay {
	if budget < 4 {
		budget = 4
	}
	return &FinDelay{
		inner:     inner,
		budget:    budget,
		age:       make(map[string]ageEntry),
		sinceTick: map[trace.ActKind]int{trace.ActTickS: 0, trace.ActTickR: 0},
	}
}

// Name implements Adversary.
func (a *FinDelay) Name() string {
	return fmt.Sprintf("fin-delay(%d)+%s", a.budget, a.inner.Name())
}

// Choose implements Adversary.
func (a *FinDelay) Choose(w *World, enabled []trace.Action) trace.Action {
	// Refresh ages from the current deliverable sets. A type deliverable
	// last step continues aging; one that vanished and came back restarts
	// at 1 (the new copy is a fresh send).
	a.now++
	var overdue *trace.Action
	worst := 0
	for _, dir := range []channel.Dir{channel.SToR, channel.RToS} {
		for _, m := range w.Link.Half(dir).Deliverable().Support() {
			k := dir.String() + "|" + string(m)
			e := a.age[k]
			if e.seenAt == a.now-1 {
				e.age++
			} else {
				e.age = 1
			}
			e.seenAt = a.now
			a.age[k] = e
			if e.age >= a.budget && e.age > worst {
				worst = e.age
				act := trace.Deliver(dir, m)
				overdue = &act
			}
		}
	}
	if a.now%a.budget == 0 {
		// Periodic sweep: reap entries for types no longer deliverable
		// (delivered or dropped since last observed). Amortized O(1) per
		// step, and the map never holds more than one sweep period of
		// stale keys.
		for k, e := range a.age {
			if e.seenAt < a.now {
				delete(a.age, k)
			}
		}
	}
	a.sinceTick[trace.ActTickS]++
	a.sinceTick[trace.ActTickR]++

	// Forced ticks take precedence over forced deliveries: on dup halves
	// something is always deliverable, so delivery pressure alone would
	// starve the processes of spontaneous steps.
	var chosen trace.Action
	switch {
	case a.sinceTick[trace.ActTickS] >= a.budget:
		chosen = trace.TickS()
	case a.sinceTick[trace.ActTickR] >= a.budget:
		chosen = trace.TickR()
	case overdue != nil:
		chosen = *overdue
	default:
		chosen = a.inner.Choose(w, enabled)
	}
	a.note(chosen)
	return chosen
}

// ageSize exposes the bookkeeping-map size for the regression tests that
// pin its boundedness on long del-channel runs.
func (a *FinDelay) ageSize() int { return len(a.age) }

func (a *FinDelay) note(act trace.Action) {
	switch act.Kind {
	case trace.ActTickS, trace.ActTickR:
		a.sinceTick[act.Kind] = 0
	case trace.ActDeliver, trace.ActDeliverDup:
		delete(a.age, act.Dir.String()+"|"+string(act.Msg))
	}
}
