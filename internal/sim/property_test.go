package sim

// Conformance tests: the simulator satisfies the paper's Property 1 and
// Property 2 (§2.2), which are the only assumptions the impossibility
// proofs make about the environment. DESIGN.md §2 commits to these tests.

import (
	"testing"

	"seqtx/internal/channel"
	"seqtx/internal/msg"
	"seqtx/internal/protocol/alphaproto"
	"seqtx/internal/seq"
	"seqtx/internal/trace"
)

// TestProperty1aReceiverInitialStateUniform: in all initial global states
// R's local state is the same (R does not know the input in advance).
func TestProperty1aReceiverInitialStateUniform(t *testing.T) {
	t.Parallel()
	spec := alphaproto.MustNew(3)
	var firstKey string
	for i, input := range seq.RepetitionFree(3) {
		link, err := channel.NewLinkOfKind(channel.KindDup)
		if err != nil {
			t.Fatal(err)
		}
		w, err := New(spec, input, link)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			firstKey = w.R.Key()
			continue
		}
		if w.R.Key() != firstKey {
			t.Fatalf("initial receiver state differs across inputs: %q vs %q", w.R.Key(), firstKey)
		}
	}
}

// TestProperty1biNoDeliveryExtensionExists: from every reachable point
// there is an extension in which no message is delivered (the ticks).
func TestProperty1biNoDeliveryExtensionExists(t *testing.T) {
	t.Parallel()
	w := mustWorld(t, channel.KindDel, seq.FromInts(0, 1))
	adv := NewRoundRobin()
	for i := 0; i < 50; i++ {
		acts := w.Enabled()
		var ticks int
		for _, a := range acts {
			if a.Kind == trace.ActTickS || a.Kind == trace.ActTickR {
				ticks++
			}
		}
		if ticks < 2 {
			t.Fatalf("step %d: tick actions missing from enabled set %v", i, acts)
		}
		if err := w.Apply(adv.Choose(w, acts)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestProperty1biiEveryDeliverableHasDeliveryExtension: every message with
// dlvrble > 0 can be delivered next in some extension.
func TestProperty1biiEveryDeliverableHasDeliveryExtension(t *testing.T) {
	t.Parallel()
	w := mustWorld(t, channel.KindDel, seq.FromInts(1, 0, 2))
	adv := NewRoundRobin()
	for i := 0; i < 80; i++ {
		enabled := make(map[string]struct{})
		for _, a := range w.Enabled() {
			enabled[a.Key()] = struct{}{}
		}
		for _, dir := range []channel.Dir{channel.SToR, channel.RToS} {
			for _, m := range w.Link.Half(dir).Deliverable().Support() {
				// The delivery must be enabled now...
				if _, ok := enabled[trace.Deliver(dir, m).Key()]; !ok {
					t.Fatalf("step %d: deliverable %s on %s not enabled", i, m, dir)
				}
				// ...and applying it on a clone must succeed.
				c := w.Clone()
				if err := c.Apply(trace.Deliver(dir, m)); err != nil {
					t.Fatalf("step %d: delivering %s on %s failed: %v", i, m, dir, err)
				}
			}
		}
		if err := w.Apply(adv.Choose(w, w.Enabled())); err != nil {
			t.Fatal(err)
		}
	}
}

// TestProperty1cDupNeverLoses: on dup channels, once sent a message stays
// deliverable forever — the channel cannot delete (and the fair scheduler
// eventually delivers every sent message at least as often as it was
// sent, which TestRunRoundRobinCompletesOnAllKinds already exercises).
func TestProperty1cDupNeverLoses(t *testing.T) {
	t.Parallel()
	w := mustWorld(t, channel.KindDup, seq.FromInts(0, 1, 2))
	adv := NewRoundRobin()
	everSent := map[string]struct{}{}
	for i := 0; i < 120; i++ {
		for _, m := range w.Link.Half(channel.SToR).Deliverable().Support() {
			everSent[string(m)] = struct{}{}
		}
		for m := range everSent {
			if !w.Link.Half(channel.SToR).CanDeliver(msg.Msg(m)) {
				t.Fatalf("step %d: previously sent %q no longer deliverable on dup half", i, m)
			}
		}
		if err := w.Apply(adv.Choose(w, w.Enabled())); err != nil {
			t.Fatal(err)
		}
	}
}

// TestProperty2EveryPrefixExtendsToFairRun: from any reachable point the
// fair round-robin scheduler completes the transmission — the executable
// form of "every point extends to a fair run" for the protocols under
// test (on drop-free channels where all runs can be made fair).
func TestProperty2EveryPrefixExtendsToFairRun(t *testing.T) {
	t.Parallel()
	base := mustWorld(t, channel.KindReorder, seq.FromInts(2, 0, 1))
	chaotic := NewRandom(13)
	for i := 0; i < 60; i++ {
		// Extend the current (possibly chaotic) prefix fairly.
		ext := base.Clone()
		res, err := Run(ext, NewRoundRobin(), Config{MaxSteps: 2000, StopWhenComplete: true})
		if err != nil {
			t.Fatal(err)
		}
		if !res.OutputComplete {
			t.Fatalf("step %d: fair extension did not complete (output %s)", i, res.Output)
		}
		if res.SafetyViolation != nil {
			t.Fatalf("step %d: fair extension violated safety: %v", i, res.SafetyViolation)
		}
		if base.OutputComplete() {
			break
		}
		if err := base.Apply(chaotic.Choose(base, base.Enabled())); err != nil {
			t.Fatal(err)
		}
	}
}

func mustWorld(t *testing.T, kind channel.Kind, input seq.Seq) *World {
	t.Helper()
	link, err := channel.NewLinkOfKind(kind)
	if err != nil {
		t.Fatal(err)
	}
	w, err := New(alphaproto.MustNew(3), input, link)
	if err != nil {
		t.Fatal(err)
	}
	return w
}
