package sim

import (
	"math/rand"
	"testing"
	"time"

	"seqtx/internal/channel"
	"seqtx/internal/msg"
	"seqtx/internal/seq"
	"seqtx/internal/trace"
)

// --- progress watchdog -------------------------------------------------

func TestWatchdogKillsStalledRun(t *testing.T) {
	t.Parallel()
	// A withholder that never heals makes no output progress; the watchdog
	// must cut the run at the deadline instead of burning MaxSteps.
	w := newWorld(t, 2, seq.FromInts(0, 1), channel.KindDup)
	res, err := Run(w, NewWithholder(1<<30), Config{MaxSteps: 100000, ProgressDeadline: 120})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stalled {
		t.Fatal("watchdog never fired on a zero-progress run")
	}
	if res.StallStep != 120 || res.Steps != 120 {
		t.Errorf("stall at step %d after %d steps, want both 120", res.StallStep, res.Steps)
	}
	if res.OutputComplete {
		t.Error("stalled run reported complete")
	}
}

func TestWatchdogSparesSlowButSteadyRuns(t *testing.T) {
	t.Parallel()
	// Round-robin completes well within a generous deadline: the watchdog
	// must stay silent on runs that do make progress.
	w := newWorld(t, 3, seq.FromInts(2, 0, 1), channel.KindDel)
	res, err := Run(w, NewRoundRobin(), Config{
		MaxSteps: 5000, StopWhenComplete: true, ProgressDeadline: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalled || !res.OutputComplete {
		t.Fatalf("stalled=%v complete=%v, want clean completion", res.Stalled, res.OutputComplete)
	}
}

func TestWallClockBudgetIsSafetyNet(t *testing.T) {
	t.Parallel()
	// With a 1ns budget the first poll (step 255) trips it; the run ends
	// WallClockExceeded, not hung and not Stalled (no deadline armed).
	w := newWorld(t, 2, seq.FromInts(0, 1), channel.KindDup)
	res, err := Run(w, NewWithholder(1<<30), Config{MaxSteps: 1 << 20, MaxWallClock: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if !res.WallClockExceeded {
		t.Fatal("wall-clock budget never tripped")
	}
	if res.Steps >= 1<<20 || res.Stalled {
		t.Errorf("steps=%d stalled=%v, want early wall-clock cut only", res.Steps, res.Stalled)
	}
}

// --- FinDelay age bookkeeping ------------------------------------------

func TestFinDelayAgeMapPrunesStaleEntries(t *testing.T) {
	t.Parallel()
	// Regression: entries for message types that stop being deliverable
	// must be reaped even when the wrapper itself never delivered them
	// (the inner adversary or a drop consumed the copy). Before the sweep
	// existed, the map grew with every type ever seen and kept it forever.
	link := channel.NewLink(channel.NewDel(), channel.NewDel())
	w := &World{Link: link}
	adv := NewFinDelay(NewRandom(1), 10)
	for _, m := range []msg.Msg{"a", "b", "c"} {
		if err := link.Send(channel.SToR, m); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		adv.Choose(w, w.Enabled())
	}
	if adv.ageSize() < 3 {
		t.Fatalf("ageSize = %d before drain, want >= 3 tracked types", adv.ageSize())
	}
	// Consume every copy behind the wrapper's back.
	for _, m := range []msg.Msg{"a", "b", "c"} {
		if err := link.Half(channel.SToR).Deliver(m); err != nil {
			t.Fatal(err)
		}
	}
	// Within one sweep period the map must empty out.
	for i := 0; i < 25; i++ {
		adv.Choose(w, w.Enabled())
	}
	if adv.ageSize() != 0 {
		t.Fatalf("ageSize = %d after drain + sweep period, want 0", adv.ageSize())
	}
}

func TestFinDelayAgeMapBoundedOnLongRun(t *testing.T) {
	t.Parallel()
	// Soak-length run: the map must stay bounded by the live alphabet, not
	// by run length.
	w := newWorld(t, 3, seq.FromInts(2, 0, 1), channel.KindDel)
	adv := NewFinDelay(NewRandomDropper(3, 1), 10)
	if _, err := Run(w, adv, Config{MaxSteps: 20000}); err != nil {
		t.Fatal(err)
	}
	live := len(w.Link.Half(channel.SToR).Deliverable().Support()) +
		len(w.Link.Half(channel.RToS).Deliverable().Support())
	if adv.ageSize() > live+8 {
		t.Fatalf("ageSize = %d with only %d live types: stale entries accumulate", adv.ageSize(), live)
	}
}

// --- Random.Choose: cumulative sampling vs the old materialization -----

// materializedChoose is the pre-optimization implementation, kept here as
// the behavioural reference: build the weighted slice explicitly, index
// it uniformly.
func materializedChoose(rng *rand.Rand, dropWeight int, enabled []trace.Action) trace.Action {
	var weighted []trace.Action
	for _, act := range enabled {
		wgt := 1
		if act.Kind == trace.ActDrop {
			wgt = dropWeight
		}
		for i := 0; i < wgt; i++ {
			weighted = append(weighted, act)
		}
	}
	if len(weighted) == 0 {
		return enabled[rng.Intn(len(enabled))]
	}
	return weighted[rng.Intn(len(weighted))]
}

// benchEnabled builds a large enabled set with a realistic mix of
// deliveries and drops.
func benchEnabled(n int) []trace.Action {
	acts := []trace.Action{trace.TickS(), trace.TickR()}
	for i := 0; len(acts) < n; i++ {
		m := msg.Msg(rune('a' + i%26))
		acts = append(acts, trace.Deliver(channel.SToR, m), trace.Drop(channel.SToR, m))
	}
	return acts[:n]
}

func TestRandomChooseMatchesMaterializedReference(t *testing.T) {
	t.Parallel()
	for _, dropWeight := range []int{0, 1, 3} {
		fast := NewRandomDropper(99, dropWeight)
		ref := rand.New(rand.NewSource(99))
		rng := rand.New(rand.NewSource(7)) // drives the varying enabled sets
		for i := 0; i < 500; i++ {
			enabled := benchEnabled(2 + rng.Intn(40))
			got := fast.Choose(nil, enabled)
			want := materializedChoose(ref, dropWeight, enabled)
			if got != want {
				t.Fatalf("w=%d step %d: cumulative picked %s, reference picked %s",
					dropWeight, i, got, want)
			}
		}
	}
}

func BenchmarkRandomChooseCumulative(b *testing.B) {
	enabled := benchEnabled(256)
	a := NewRandomDropper(1, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Choose(nil, enabled)
	}
}

func BenchmarkRandomChooseMaterialized(b *testing.B) {
	enabled := benchEnabled(256)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		materializedChoose(rng, 3, enabled)
	}
}

// --- stress adversaries ------------------------------------------------

func TestStarverUnderFinDelayStillCompletes(t *testing.T) {
	t.Parallel()
	// The starver realizes the worst legal delay on every message; under a
	// finite-delay budget the schedule is fair, so the tight protocol must
	// still complete — just slower than round-robin.
	for _, kind := range []channel.Kind{channel.KindDup, channel.KindDel} {
		w := newWorld(t, 3, seq.FromInts(2, 0, 1), kind)
		res, err := Run(w, NewFinDelay(NewStarver(), 12), Config{
			MaxSteps: 20000, StopWhenComplete: true, ProgressDeadline: 2000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.OutputComplete {
			t.Errorf("%s: starved run incomplete after %d steps (stalled=%v, Y=%s)",
				kind, res.Steps, res.Stalled, res.Output)
		}
		if res.SafetyViolation != nil {
			t.Errorf("%s: %v", kind, res.SafetyViolation)
		}
	}
}

func TestEclipseBlocksThenHeals(t *testing.T) {
	t.Parallel()
	w := newWorld(t, 2, seq.FromInts(0, 1), channel.KindDup)
	res, err := Run(w, NewEclipse(channel.SToR, 100), Config{
		MaxSteps: 2000, StopWhenComplete: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OutputComplete {
		t.Fatalf("eclipse never healed: %d steps, Y=%s", res.Steps, res.Output)
	}
	if len(res.LearnTimes) == 0 || res.LearnTimes[0] < 100 {
		t.Errorf("first item learned at %v, inside the eclipse window", res.LearnTimes)
	}
}

func TestPhasedPartitionIsFairInTheLimit(t *testing.T) {
	t.Parallel()
	w := newWorld(t, 3, seq.FromInts(2, 0, 1), channel.KindDel)
	res, err := Run(w, NewPhasedPartition(20, 20), Config{
		MaxSteps: 20000, StopWhenComplete: true, ProgressDeadline: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OutputComplete || res.SafetyViolation != nil {
		t.Fatalf("complete=%v violation=%v after %d steps", res.OutputComplete, res.SafetyViolation, res.Steps)
	}
}

// --- crash-restart actions ---------------------------------------------

func TestCrashActionsResetProcessState(t *testing.T) {
	t.Parallel()
	w := newWorld(t, 2, seq.FromInts(0, 1), channel.KindDup)
	s0, r0 := w.S.Key(), w.R.Key()
	// Move both processes off their initial states.
	for i := 0; i < 6; i++ {
		for _, act := range []trace.Action{trace.TickS(), trace.TickR()} {
			if err := w.Apply(act); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Apply(trace.CrashS()); err != nil {
		t.Fatal(err)
	}
	if w.S.Key() != s0 {
		t.Errorf("sender key %q after crash, want initial %q", w.S.Key(), s0)
	}
	if err := w.Apply(trace.CrashR()); err != nil {
		t.Fatal(err)
	}
	if w.R.Key() != r0 {
		t.Errorf("receiver key %q after crash, want initial %q", w.R.Key(), r0)
	}
}

func TestCrashActionsRejectedOnHandAssembledWorld(t *testing.T) {
	t.Parallel()
	w := &World{Link: channel.NewLink(channel.NewDup(), channel.NewDup())}
	if err := w.Apply(trace.CrashS()); err == nil {
		t.Fatal("crash accepted on a world with no spec to rebuild from")
	}
}

func TestScriptedPassesThroughCrashActions(t *testing.T) {
	t.Parallel()
	w := newWorld(t, 2, seq.FromInts(0, 1), channel.KindDup)
	script := []trace.Action{trace.TickS(), trace.CrashS(), trace.TickR()}
	res, err := Run(w, NewScripted(script, NewRoundRobin()), Config{MaxSteps: 3})
	if err != nil {
		t.Fatalf("scripted crash replay failed: %v", err)
	}
	if res.Steps != 3 {
		t.Fatalf("steps = %d, want 3", res.Steps)
	}
}
