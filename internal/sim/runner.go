package sim

import (
	"fmt"
	"strconv"
	"time"

	"seqtx/internal/channel"
	"seqtx/internal/obs"
	"seqtx/internal/protocol"
	"seqtx/internal/seq"
)

// Result summarizes one run.
type Result struct {
	// Steps is the number of scheduler steps taken.
	Steps int
	// Output is the final output tape Y.
	Output seq.Seq
	// OutputComplete reports whether Y = X (liveness achieved).
	OutputComplete bool
	// Quiescent reports whether the sender was done and the S→R half empty
	// when the run stopped.
	Quiescent bool
	// SafetyViolation is the first "Y not a prefix of X" error, if any.
	SafetyViolation error
	// Stalled reports that the progress watchdog fired: the run made no
	// output progress for Config.ProgressDeadline consecutive steps while
	// Y was still incomplete. On a fair schedule this is a liveness
	// failure; on an unfair one it only measures the starvation.
	Stalled bool
	// StallStep is the step at which the watchdog fired (valid iff Stalled).
	StallStep int
	// WallClockExceeded reports the per-run wall-clock budget ran out. It
	// is a harness safety net, not a model verdict: a run cut short this
	// way is inconclusive (never a liveness failure), and only CutStep —
	// not the wall-clock budget — makes the prefix replayable.
	WallClockExceeded bool
	// CutStep is the step at which the wall-clock watchdog cut the run
	// (valid iff WallClockExceeded). Because the budget is only polled
	// every wallClockCheckEvery steps, the run may have overshot the
	// budget by up to wallClockCheckEvery-1 steps before the cut; CutStep
	// records where it actually stopped, so a replay with MaxSteps =
	// CutStep reproduces the exact prefix.
	CutStep int
	// LearnTimes[i] is the step at which Y first had length i+1 (R wrote
	// the (i+1)-th item) — an observable proxy for the paper's t_i (R
	// knows x_i no later than it writes it; the epistemic package computes
	// the exact t_i from explored run sets).
	LearnTimes []int
}

// Config controls a run.
type Config struct {
	// MaxSteps bounds the run length (required, > 0).
	MaxSteps int
	// StopWhenComplete stops as soon as Y = X.
	StopWhenComplete bool
	// RecordTrace attaches a trace recorder to the world.
	RecordTrace bool
	// ProgressDeadline, when > 0, arms the progress watchdog: a run whose
	// output tape does not grow for this many consecutive steps (while
	// still incomplete) is halted with Result.Stalled set, so a stalling
	// schedule is reported as a liveness failure instead of burning the
	// whole step budget.
	ProgressDeadline int
	// MaxWallClock, when > 0, halts the run once it has consumed that much
	// wall-clock time (checked every few steps). Deterministic replays are
	// unaffected as long as the budget is generous; it exists so a soak
	// campaign can never hang on one pathological run.
	MaxWallClock time.Duration
	// Obs, when non-nil, receives run metrics (steps, output growth,
	// verdicts, the LearnTimes histogram — the paper's t_i) and watchdog
	// events. All instrumentation happens outside the step loop, so a nil
	// registry costs one branch per run and an enabled one cannot perturb
	// the run itself (see the obs package doc).
	Obs *obs.Registry
}

// wallClockCheckEvery is how often (in steps) the wall-clock budget is
// polled; a power of two keeps the modulo cheap.
const wallClockCheckEvery = 256

// Run drives the world with the adversary until MaxSteps, completion
// (when requested), a safety violation, or a watchdog verdict. It returns
// an error only for mechanical failures (a protocol escaping its
// alphabet, an adversary picking an impossible action); protocol
// misbehaviour is reported in the Result.
func Run(w *World, adv Adversary, cfg Config) (Result, error) {
	if cfg.MaxSteps <= 0 {
		return Result{}, fmt.Errorf("sim: MaxSteps must be positive, got %d", cfg.MaxSteps)
	}
	if cfg.RecordTrace && w.Trace == nil {
		w.StartTrace()
	}
	var res Result
	start := time.Now()
	lastProgress := 0
	for step := 0; step < cfg.MaxSteps; step++ {
		if w.SafetyViolation != nil {
			break
		}
		if cfg.StopWhenComplete && w.OutputComplete() {
			break
		}
		if cfg.ProgressDeadline > 0 && !w.OutputComplete() && step-lastProgress >= cfg.ProgressDeadline {
			res.Stalled = true
			res.StallStep = step
			break
		}
		if cfg.MaxWallClock > 0 && step%wallClockCheckEvery == wallClockCheckEvery-1 &&
			time.Since(start) > cfg.MaxWallClock {
			res.WallClockExceeded = true
			res.CutStep = step
			break
		}
		before := len(w.Output)
		enabled := w.Enabled()
		act := adv.Choose(w, enabled)
		if err := w.Apply(act); err != nil {
			return res, fmt.Errorf("sim: step %d (%s): %w", step, act, err)
		}
		res.Steps++
		if len(w.Output) > before {
			lastProgress = step
		}
		for i := before; i < len(w.Output); i++ {
			res.LearnTimes = append(res.LearnTimes, w.Time-1)
		}
	}
	res.Output = w.Output.Clone()
	res.OutputComplete = w.OutputComplete()
	res.Quiescent = w.Quiescent()
	res.SafetyViolation = w.SafetyViolation
	observeRun(cfg.Obs, cfg, res)
	return res, nil
}

// observeRun flushes one run's metrics and watchdog events into the
// registry. It runs after the step loop, on already-computed results, so
// enabling it can never change a run; with r == nil it is a no-op.
func observeRun(r *obs.Registry, cfg Config, res Result) {
	if r == nil {
		return
	}
	r.Counter("sim_runs_total").Inc()
	r.Counter("sim_steps_total").Add(int64(res.Steps))
	r.Counter("sim_output_items_total").Add(int64(len(res.Output)))
	learn := r.Histogram("sim_learn_time_steps", obs.StepBuckets)
	for _, t := range res.LearnTimes {
		learn.Observe(float64(t))
	}
	switch {
	case res.SafetyViolation != nil:
		r.Counter("sim_runs_safety_violation_total").Inc()
	case res.Stalled:
		r.Counter("sim_runs_stalled_total").Inc()
		r.Emit("sim.watchdog.fired", "watchdog", "progress",
			"step", strconv.Itoa(res.StallStep),
			"deadline", strconv.Itoa(cfg.ProgressDeadline))
	case res.WallClockExceeded:
		r.Counter("sim_runs_wallclock_cut_total").Inc()
		r.Emit("sim.watchdog.fired", "watchdog", "wall-clock",
			"cut_step", strconv.Itoa(res.CutStep),
			"budget", cfg.MaxWallClock.String())
	case res.OutputComplete:
		r.Counter("sim_runs_complete_total").Inc()
	case res.Quiescent:
		r.Counter("sim_runs_quiescent_total").Inc()
	default:
		r.Counter("sim_runs_maxsteps_total").Inc()
	}
}

// RunProtocol is the one-call convenience: build a world for spec × input
// × channel kind, drive it with adv under cfg.
func RunProtocol(spec protocol.Spec, input seq.Seq, kind channel.Kind, adv Adversary, cfg Config) (Result, error) {
	link, err := channel.NewLinkOfKind(kind)
	if err != nil {
		return Result{}, err
	}
	w, err := New(spec, input, link)
	if err != nil {
		return Result{}, err
	}
	return Run(w, adv, cfg)
}
