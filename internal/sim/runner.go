package sim

import (
	"fmt"

	"seqtx/internal/channel"
	"seqtx/internal/protocol"
	"seqtx/internal/seq"
)

// Result summarizes one run.
type Result struct {
	// Steps is the number of scheduler steps taken.
	Steps int
	// Output is the final output tape Y.
	Output seq.Seq
	// OutputComplete reports whether Y = X (liveness achieved).
	OutputComplete bool
	// Quiescent reports whether the sender was done and the S→R half empty
	// when the run stopped.
	Quiescent bool
	// SafetyViolation is the first "Y not a prefix of X" error, if any.
	SafetyViolation error
	// LearnTimes[i] is the step at which Y first had length i+1 (R wrote
	// the (i+1)-th item) — an observable proxy for the paper's t_i (R
	// knows x_i no later than it writes it; the epistemic package computes
	// the exact t_i from explored run sets).
	LearnTimes []int
}

// Config controls a run.
type Config struct {
	// MaxSteps bounds the run length (required, > 0).
	MaxSteps int
	// StopWhenComplete stops as soon as Y = X.
	StopWhenComplete bool
	// RecordTrace attaches a trace recorder to the world.
	RecordTrace bool
}

// Run drives the world with the adversary until MaxSteps, completion
// (when requested), or a safety violation. It returns an error only for
// mechanical failures (a protocol escaping its alphabet, an adversary
// picking an impossible action); protocol misbehaviour is reported in the
// Result.
func Run(w *World, adv Adversary, cfg Config) (Result, error) {
	if cfg.MaxSteps <= 0 {
		return Result{}, fmt.Errorf("sim: MaxSteps must be positive, got %d", cfg.MaxSteps)
	}
	if cfg.RecordTrace && w.Trace == nil {
		w.StartTrace()
	}
	var res Result
	for step := 0; step < cfg.MaxSteps; step++ {
		if w.SafetyViolation != nil {
			break
		}
		if cfg.StopWhenComplete && w.OutputComplete() {
			break
		}
		before := len(w.Output)
		enabled := w.Enabled()
		act := adv.Choose(w, enabled)
		if err := w.Apply(act); err != nil {
			return res, fmt.Errorf("sim: step %d (%s): %w", step, act, err)
		}
		res.Steps++
		for i := before; i < len(w.Output); i++ {
			res.LearnTimes = append(res.LearnTimes, w.Time-1)
		}
	}
	res.Output = w.Output.Clone()
	res.OutputComplete = w.OutputComplete()
	res.Quiescent = w.Quiescent()
	res.SafetyViolation = w.SafetyViolation
	return res, nil
}

// RunProtocol is the one-call convenience: build a world for spec × input
// × channel kind, drive it with adv under cfg.
func RunProtocol(spec protocol.Spec, input seq.Seq, kind channel.Kind, adv Adversary, cfg Config) (Result, error) {
	link, err := channel.NewLinkOfKind(kind)
	if err != nil {
		return Result{}, err
	}
	w, err := New(spec, input, link)
	if err != nil {
		return Result{}, err
	}
	return Run(w, adv, cfg)
}
