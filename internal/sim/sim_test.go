package sim

import (
	"strings"
	"testing"

	"seqtx/internal/channel"
	"seqtx/internal/protocol/alphaproto"
	"seqtx/internal/protocol/naive"
	"seqtx/internal/seq"
	"seqtx/internal/trace"
)

func newWorld(t *testing.T, m int, input seq.Seq, kind channel.Kind) *World {
	t.Helper()
	link, err := channel.NewLinkOfKind(kind)
	if err != nil {
		t.Fatal(err)
	}
	w, err := New(alphaproto.MustNew(m), input, link)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestWorldEnabledAlwaysHasTicks(t *testing.T) {
	t.Parallel()
	w := newWorld(t, 2, seq.FromInts(0, 1), channel.KindDup)
	acts := w.Enabled()
	var hasTickS, hasTickR bool
	for _, a := range acts {
		hasTickS = hasTickS || a.Kind == trace.ActTickS
		hasTickR = hasTickR || a.Kind == trace.ActTickR
	}
	if !hasTickS || !hasTickR {
		t.Fatalf("ticks missing from enabled set %v", acts)
	}
}

func TestWorldApplyDeliverAndWrite(t *testing.T) {
	t.Parallel()
	w := newWorld(t, 2, seq.FromInts(1), channel.KindDup)
	w.StartTrace()
	steps := []trace.Action{
		trace.TickS(), // S sends d:1
		trace.Deliver(channel.SToR, alphaproto.DataMsg(1)), // R writes 1, acks
		trace.Deliver(channel.RToS, alphaproto.AckMsg(1)),  // S advances
		trace.TickS(), // S done, sends nothing
	}
	for _, a := range steps {
		if err := w.Apply(a); err != nil {
			t.Fatalf("Apply(%s): %v", a, err)
		}
	}
	if !w.Output.Equal(seq.FromInts(1)) {
		t.Errorf("Output = %s, want 1", w.Output)
	}
	if !w.OutputComplete() {
		t.Error("OutputComplete() = false")
	}
	if !w.S.Done() {
		t.Error("sender not done after ack")
	}
	if w.Trace.Len() != 4 {
		t.Errorf("trace length = %d, want 4", w.Trace.Len())
	}
	if w.Time != 4 {
		t.Errorf("Time = %d, want 4", w.Time)
	}
}

func TestWorldApplyErrorsOnImpossibleDeliver(t *testing.T) {
	t.Parallel()
	w := newWorld(t, 2, seq.FromInts(0), channel.KindDup)
	if err := w.Apply(trace.Deliver(channel.SToR, alphaproto.DataMsg(0))); err == nil {
		t.Fatal("delivered a never-sent message")
	}
}

func TestWorldCloneIndependence(t *testing.T) {
	t.Parallel()
	w := newWorld(t, 2, seq.FromInts(0, 1), channel.KindDel)
	if err := w.Apply(trace.TickS()); err != nil {
		t.Fatal(err)
	}
	c := w.Clone()
	if err := c.Apply(trace.Deliver(channel.SToR, alphaproto.DataMsg(0))); err != nil {
		t.Fatal(err)
	}
	if len(w.Output) != 0 {
		t.Error("clone's write leaked into original")
	}
	if !w.Link.Half(channel.SToR).CanDeliver(alphaproto.DataMsg(0)) {
		t.Error("clone consumed original's in-flight copy")
	}
	if w.Key() == c.Key() {
		t.Error("diverged worlds share key")
	}
}

func TestRunRoundRobinCompletesOnAllKinds(t *testing.T) {
	t.Parallel()
	for _, kind := range []channel.Kind{channel.KindDup, channel.KindDel, channel.KindReorder, channel.KindFIFO} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			w := newWorld(t, 3, seq.FromInts(0, 1, 2), kind)
			res, err := Run(w, NewRoundRobin(), Config{MaxSteps: 500, StopWhenComplete: true})
			if err != nil {
				t.Fatal(err)
			}
			if !res.OutputComplete {
				t.Fatalf("output incomplete after %d steps: %s", res.Steps, res.Output)
			}
			if res.SafetyViolation != nil {
				t.Fatalf("safety violation: %v", res.SafetyViolation)
			}
			if len(res.LearnTimes) != 3 {
				t.Errorf("LearnTimes = %v, want 3 entries", res.LearnTimes)
			}
		})
	}
}

// TestRunWallClockCutRecordsCutStep pins the wall-clock watchdog's
// contract: the budget is polled every wallClockCheckEvery steps, so an
// exhausted budget cuts the run at the first poll (step 255), records
// that step in CutStep, and is never misreported as a stall. A replay
// with MaxSteps = CutStep reproduces the exact observed prefix.
func TestRunWallClockCutRecordsCutStep(t *testing.T) {
	t.Parallel()
	run := func(maxSteps int) Result {
		w := newWorld(t, 3, seq.FromInts(0, 1, 2), channel.KindDup)
		res, err := Run(w, NewRoundRobin(), Config{
			MaxSteps:         maxSteps,
			ProgressDeadline: 400,
			MaxWallClock:     1, // 1ns: exhausted by the first poll
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run(10_000)
	if !res.WallClockExceeded {
		t.Fatal("wall-clock watchdog never fired")
	}
	if res.Stalled {
		t.Fatal("wall-clock cut misclassified as a stall")
	}
	if res.CutStep != wallClockCheckEvery-1 {
		t.Errorf("CutStep = %d, want %d (first poll)", res.CutStep, wallClockCheckEvery-1)
	}
	if res.Steps != res.CutStep {
		t.Errorf("Steps = %d, CutStep = %d: cut must happen before the step is taken", res.Steps, res.CutStep)
	}
	// Replayability: MaxSteps = CutStep reproduces the same prefix.
	replay := run(res.CutStep)
	if !replay.Output.Equal(res.Output) || replay.Steps != res.Steps {
		t.Errorf("replay with MaxSteps=CutStep diverged: steps %d vs %d, output %s vs %s",
			replay.Steps, res.Steps, replay.Output, res.Output)
	}
}

func TestRunRejectsNonPositiveMaxSteps(t *testing.T) {
	t.Parallel()
	w := newWorld(t, 1, seq.FromInts(0), channel.KindDup)
	if _, err := Run(w, NewRoundRobin(), Config{}); err == nil {
		t.Fatal("MaxSteps=0 accepted")
	}
}

func TestRandomAdversaryWithFinDelayCompletes(t *testing.T) {
	t.Parallel()
	for seed := int64(0); seed < 5; seed++ {
		w := newWorld(t, 4, seq.FromInts(2, 0, 3, 1), channel.KindDup)
		adv := NewFinDelay(NewRandom(seed), 8)
		res, err := Run(w, adv, Config{MaxSteps: 3000, StopWhenComplete: true})
		if err != nil {
			t.Fatal(err)
		}
		if !res.OutputComplete {
			t.Errorf("seed %d: incomplete output %s after %d steps", seed, res.Output, res.Steps)
		}
		if res.SafetyViolation != nil {
			t.Errorf("seed %d: safety violation %v", seed, res.SafetyViolation)
		}
	}
}

func TestBudgetDropperStillLive(t *testing.T) {
	t.Parallel()
	// Drop a handful of copies on a del channel; retransmission recovers.
	w := newWorld(t, 3, seq.FromInts(1, 2), channel.KindDel)
	res, err := Run(w, NewBudgetDropper(3, 5), Config{MaxSteps: 1000, StopWhenComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OutputComplete {
		t.Fatalf("incomplete after drops: %s (steps %d)", res.Output, res.Steps)
	}
}

func TestReplayerDoesNotBreakTightProtocol(t *testing.T) {
	t.Parallel()
	// Replayed duplicates must be ignored by the tight protocol's R.
	w := newWorld(t, 4, seq.FromInts(0, 1, 2, 3), channel.KindDup)
	res, err := Run(w, NewReplayer(9, 3), Config{MaxSteps: 2000, StopWhenComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.SafetyViolation != nil {
		t.Fatalf("tight protocol violated safety under replay: %v", res.SafetyViolation)
	}
	if !res.OutputComplete {
		t.Fatalf("incomplete under replay: %s", res.Output)
	}
}

func TestWithholderDelaysButFairSuffixDelivers(t *testing.T) {
	t.Parallel()
	w := newWorld(t, 2, seq.FromInts(0, 1), channel.KindDup)
	res, err := Run(w, NewWithholder(50), Config{MaxSteps: 500, StopWhenComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OutputComplete {
		t.Fatal("incomplete after withholding phase")
	}
	if res.LearnTimes[0] < 50 {
		t.Errorf("first item learned at %d, during the withholding phase", res.LearnTimes[0])
	}
}

func TestScriptedAdversarySkipsDisabled(t *testing.T) {
	t.Parallel()
	w := newWorld(t, 2, seq.FromInts(1), channel.KindDup)
	script := []trace.Action{
		trace.Deliver(channel.SToR, alphaproto.DataMsg(1)), // not enabled yet: skipped
		trace.TickS(),
	}
	adv := NewScripted(script, NewRoundRobin())
	res, err := Run(w, adv, Config{MaxSteps: 100, StopWhenComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OutputComplete {
		t.Fatal("scripted run incomplete")
	}
}

func TestTraceRecordsViews(t *testing.T) {
	t.Parallel()
	w := newWorld(t, 2, seq.FromInts(0, 1), channel.KindDup)
	w.StartTrace()
	if _, err := Run(w, NewRoundRobin(), Config{MaxSteps: 200, StopWhenComplete: true}); err != nil {
		t.Fatal(err)
	}
	rv := w.Trace.ReceiverView(-1)
	if len(rv) == 0 {
		t.Fatal("empty receiver view")
	}
	var recvCount int
	for _, e := range rv {
		if !e.IsTick {
			recvCount++
		}
	}
	if recvCount < 2 {
		t.Errorf("receiver view has %d receives, want >= 2", recvCount)
	}
	sv := w.Trace.SenderView(-1)
	if len(sv) == 0 {
		t.Fatal("empty sender view")
	}
	if !strings.Contains(w.Trace.String(), "alpha(m=2)") {
		t.Error("trace rendering missing protocol name")
	}
	if y := w.Trace.Output(-1); !y.Equal(seq.FromInts(0, 1)) {
		t.Errorf("trace output = %s", y)
	}
}

func TestSafetyViolationDetectedOnline(t *testing.T) {
	t.Parallel()
	// Use the naive protocol via a handcrafted world: deliver the same
	// data message twice on a dup channel through the trusting receiver.
	// (Full naive-protocol coverage lives in the mc package tests; here we
	// check the world flags the violation.)
	w := newWorld(t, 2, seq.FromInts(0, 1), channel.KindDup)
	// Corrupt the output tape directly through the receiver path is not
	// possible from outside; instead check the detector itself.
	w.Output = seq.FromInts(1)
	if w.Output.IsPrefixOf(w.Input) {
		t.Fatal("test setup broken")
	}
	// routeReceiver triggers the check on the next write.
	if err := w.routeReceiver(nil, seq.FromInts(0)); err != nil {
		t.Fatal(err)
	}
	if w.SafetyViolation == nil {
		t.Error("safety violation not flagged")
	}
}

func TestFinDelayForcesOverdueDelivery(t *testing.T) {
	t.Parallel()
	// An adversary that always ticks would starve deliveries; FinDelay
	// must override it.
	w := newWorld(t, 2, seq.FromInts(0), channel.KindDup)
	stubborn := NewWithholder(1 << 30)
	adv := NewFinDelay(stubborn, 5)
	res, err := Run(w, adv, Config{MaxSteps: 200, StopWhenComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OutputComplete {
		t.Fatal("FinDelay failed to force delivery")
	}
}

func TestAdversaryNames(t *testing.T) {
	t.Parallel()
	names := []string{
		NewRandom(1).Name(),
		NewRandomDropper(1, 2).Name(),
		NewRoundRobin().Name(),
		NewScripted(nil, NewRoundRobin()).Name(),
		NewReplayer(1, 2).Name(),
		NewWithholder(3).Name(),
		NewBudgetDropper(1, 2).Name(),
		NewFinDelay(NewRandom(1), 4).Name(),
	}
	seen := map[string]struct{}{}
	for _, n := range names {
		if n == "" {
			t.Error("empty adversary name")
		}
		if _, dup := seen[n]; dup {
			t.Errorf("duplicate adversary name %q", n)
		}
		seen[n] = struct{}{}
	}
}

func TestApplyDeliverDupOnNonFIFOFails(t *testing.T) {
	t.Parallel()
	w := newWorld(t, 2, seq.FromInts(0), channel.KindDel)
	if err := w.Apply(trace.TickS()); err != nil {
		t.Fatal(err)
	}
	if err := w.Apply(trace.DeliverDup(channel.SToR, alphaproto.DataMsg(0))); err == nil {
		t.Fatal("deliver+dup accepted on a del half")
	}
}

func TestApplyUnknownActionKind(t *testing.T) {
	t.Parallel()
	w := newWorld(t, 1, seq.FromInts(0), channel.KindDup)
	if err := w.Apply(trace.Action{Kind: trace.ActKind(99)}); err == nil {
		t.Fatal("unknown action kind accepted")
	}
}

func TestApplyDropActions(t *testing.T) {
	t.Parallel()
	w := newWorld(t, 2, seq.FromInts(0), channel.KindDel)
	if err := w.Apply(trace.TickS()); err != nil {
		t.Fatal(err)
	}
	if err := w.Apply(trace.Drop(channel.SToR, alphaproto.DataMsg(0))); err != nil {
		t.Fatal(err)
	}
	if w.Link.Half(channel.SToR).CanDeliver(alphaproto.DataMsg(0)) {
		t.Fatal("dropped copy still deliverable")
	}
	if err := w.Apply(trace.Drop(channel.SToR, alphaproto.DataMsg(0))); err == nil {
		t.Fatal("dropped a non-existent copy")
	}
}

func TestEnabledIncludesDropAndDupActions(t *testing.T) {
	t.Parallel()
	// del half: drop enabled once something is in flight.
	w := newWorld(t, 2, seq.FromInts(0), channel.KindDel)
	if err := w.Apply(trace.TickS()); err != nil {
		t.Fatal(err)
	}
	var hasDrop bool
	for _, a := range w.Enabled() {
		if a.Kind == trace.ActDrop {
			hasDrop = true
		}
	}
	if !hasDrop {
		t.Error("no drop action enabled on del half with traffic")
	}
	// FIFO half: deliver+dup enabled at the head.
	wf := newWorld(t, 2, seq.FromInts(0), channel.KindFIFO)
	if err := wf.Apply(trace.TickS()); err != nil {
		t.Fatal(err)
	}
	var hasDup bool
	for _, a := range wf.Enabled() {
		if a.Kind == trace.ActDeliverDup {
			hasDup = true
		}
	}
	if !hasDup {
		t.Error("no deliver+dup action enabled on FIFO half with traffic")
	}
}

func TestQuiescentSemantics(t *testing.T) {
	t.Parallel()
	w := newWorld(t, 1, seq.Seq{}, channel.KindDup)
	if !w.Quiescent() {
		t.Error("empty-input world not quiescent")
	}
	w2 := newWorld(t, 2, seq.FromInts(0), channel.KindDup)
	if err := w2.Apply(trace.TickS()); err != nil {
		t.Fatal(err)
	}
	if w2.Quiescent() {
		t.Error("world with in-flight data quiescent")
	}
}

func TestRunStopsAtSafetyViolation(t *testing.T) {
	t.Parallel()
	// Drive the naive protocol into a violation under a replaying
	// schedule; Run must stop at (not loop past) the violation.
	spec, err := naive.NewWriteEveryData(2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunProtocol(spec, seq.FromInts(0, 1), channel.KindDup,
		NewFinDelay(NewReplayer(3, 2), 8), Config{MaxSteps: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if res.SafetyViolation == nil {
		t.Skip("this seed did not trigger the violation")
	}
	if res.Steps >= 5000 {
		t.Error("run did not stop at the violation")
	}
}
