package sim

import (
	"fmt"
	"sort"

	"seqtx/internal/channel"
	"seqtx/internal/msg"
	"seqtx/internal/trace"
)

// Starver maximally delays the oldest undelivered message: whenever it
// delivers, it picks the *youngest* deliverable (most recently seen on
// the channel), so the oldest message is starved for as long as any
// alternative exists. On dup channels, where the deliverable set only
// grows, the oldest message is never delivered at all. It is therefore
// unfair by construction — wrap it in FinDelay for a fair schedule that
// still realizes the worst legal delay on every message. Deterministic.
type Starver struct {
	phase   int
	now     int
	seen    map[string]int // dir|msg -> step first observed deliverable
	deliver map[channel.Dir]int
}

var _ Adversary = (*Starver)(nil)

// NewStarver returns the oldest-message-starving adversary.
func NewStarver() *Starver {
	return &Starver{seen: make(map[string]int), deliver: make(map[channel.Dir]int)}
}

// Name implements Adversary.
func (a *Starver) Name() string { return "starver" }

// Choose implements Adversary.
func (a *Starver) Choose(w *World, _ []trace.Action) trace.Action {
	a.now++
	// Refresh first-seen times; prune vanished types so the map stays
	// bounded by the current deliverable support.
	live := make(map[string]struct{})
	for _, dir := range []channel.Dir{channel.SToR, channel.RToS} {
		for _, m := range w.Link.Half(dir).Deliverable().Support() {
			k := dir.String() + "|" + string(m)
			live[k] = struct{}{}
			if _, ok := a.seen[k]; !ok {
				a.seen[k] = a.now
			}
		}
	}
	for k := range a.seen {
		if _, ok := live[k]; !ok {
			delete(a.seen, k)
		}
	}
	for i := 0; i < 4; i++ {
		phase := (a.phase + i) % 4
		switch phase {
		case 0:
			a.phase = (phase + 1) % 4
			return trace.TickS()
		case 1:
			if m, ok := a.youngest(w, channel.SToR); ok {
				a.phase = (phase + 1) % 4
				return trace.Deliver(channel.SToR, m)
			}
		case 2:
			a.phase = (phase + 1) % 4
			return trace.TickR()
		case 3:
			if m, ok := a.youngest(w, channel.RToS); ok {
				a.phase = (phase + 1) % 4
				return trace.Deliver(channel.RToS, m)
			}
		}
	}
	a.phase = 1
	return trace.TickS()
}

// youngest returns the deliverable message observed most recently,
// excluding the single oldest one while any alternative exists (that is
// the starvation); ties break lexicographically for determinism.
func (a *Starver) youngest(w *World, d channel.Dir) (msg.Msg, bool) {
	sup := w.Link.Half(d).Deliverable().Support()
	if len(sup) == 0 {
		return "", false
	}
	if len(sup) == 1 {
		return sup[0], true
	}
	sort.Slice(sup, func(i, j int) bool { return sup[i] < sup[j] })
	oldest, best := sup[0], sup[0]
	oldestAt, bestAt := a.seen[d.String()+"|"+string(sup[0])], a.seen[d.String()+"|"+string(sup[0])]
	for _, m := range sup[1:] {
		at := a.seen[d.String()+"|"+string(m)]
		if at < oldestAt {
			oldest, oldestAt = m, at
		}
		if at > bestAt {
			best, bestAt = m, at
		}
	}
	if best == oldest {
		// All equally old; rotate like round-robin to avoid livelocking on
		// one message.
		m := sup[a.deliver[d]%len(sup)]
		a.deliver[d]++
		return m, true
	}
	return best, true
}

// Eclipse isolates one direction of the link for a window: during the
// first holdSteps steps no message on the eclipsed direction is
// delivered, while the opposite direction and both processes run
// normally. After the window it behaves like RoundRobin (the eclipse
// heals). With an infinite window it models a one-way partition; with a
// finite one it is still a legal arbitrary-delay schedule (Property 1b),
// unfair during the window but fair in the limit.
type Eclipse struct {
	dir       channel.Dir
	initial   int
	remaining int
	inner     *RoundRobin
	phase     int
	deliver   int
}

var _ Adversary = (*Eclipse)(nil)

// NewEclipse returns an adversary eclipsing dir for holdSteps steps.
func NewEclipse(dir channel.Dir, holdSteps int) *Eclipse {
	return &Eclipse{dir: dir, initial: holdSteps, remaining: holdSteps, inner: NewRoundRobin()}
}

// Name implements Adversary.
func (a *Eclipse) Name() string { return fmt.Sprintf("eclipse(%s,%d)", a.dir, a.initial) }

// Choose implements Adversary.
func (a *Eclipse) Choose(w *World, enabled []trace.Action) trace.Action {
	if a.remaining <= 0 {
		return a.inner.Choose(w, enabled)
	}
	a.remaining--
	open := channel.RToS
	if a.dir == channel.RToS {
		open = channel.SToR
	}
	for i := 0; i < 3; i++ {
		phase := (a.phase + i) % 3
		switch phase {
		case 0:
			a.phase = (phase + 1) % 3
			return trace.TickS()
		case 1:
			a.phase = (phase + 1) % 3
			return trace.TickR()
		case 2:
			sup := w.Link.Half(open).Deliverable().Support()
			if len(sup) > 0 {
				sort.Slice(sup, func(i, j int) bool { return sup[i] < sup[j] })
				m := sup[a.deliver%len(sup)]
				a.deliver++
				a.phase = (phase + 1) % 3
				return trace.Deliver(open, m)
			}
		}
	}
	a.phase = 1
	return trace.TickS()
}

// PhasedPartition alternates healthy and fully partitioned phases
// forever: healthy steps run the fair RoundRobin schedule, partitioned
// steps only tick the processes (no deliveries in either direction).
// Every message is eventually delivered in some healthy phase, so the
// schedule is fair in the limit — liveness must survive it, at a latency
// cost proportional to the duty cycle.
type PhasedPartition struct {
	inner       *RoundRobin
	healthy     int
	partitioned int
	pos         int
	tickS       bool
}

var _ Adversary = (*PhasedPartition)(nil)

// NewPhasedPartition returns the alternating scheduler; both phase
// lengths are clamped to at least 1.
func NewPhasedPartition(healthy, partitioned int) *PhasedPartition {
	if healthy < 1 {
		healthy = 1
	}
	if partitioned < 1 {
		partitioned = 1
	}
	return &PhasedPartition{inner: NewRoundRobin(), healthy: healthy, partitioned: partitioned}
}

// Name implements Adversary.
func (a *PhasedPartition) Name() string {
	return fmt.Sprintf("phased-partition(%d/%d)", a.healthy, a.partitioned)
}

// Choose implements Adversary.
func (a *PhasedPartition) Choose(w *World, enabled []trace.Action) trace.Action {
	pos := a.pos % (a.healthy + a.partitioned)
	a.pos++
	if pos < a.healthy {
		return a.inner.Choose(w, enabled)
	}
	a.tickS = !a.tickS
	if a.tickS {
		return trace.TickS()
	}
	return trace.TickR()
}
