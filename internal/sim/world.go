// Package sim implements the runs model of the paper (§2.2): global
// states (environment, sender, receiver), scheduler actions, adversaries
// that resolve the environment's nondeterminism, and fairness policies.
// A World is one global state; applying actions walks a run.
package sim

import (
	"encoding/binary"
	"fmt"

	"seqtx/internal/channel"
	"seqtx/internal/msg"
	"seqtx/internal/protocol"
	"seqtx/internal/seq"
	"seqtx/internal/trace"
)

// World is a global state (s_E, s_S, s_R) plus the run bookkeeping: the
// input tape X, the output tape Y written so far, and the step clock.
type World struct {
	Name   string
	Input  seq.Seq
	Output seq.Seq
	Time   int

	S    protocol.Sender
	R    protocol.Receiver
	Link *channel.Link

	// spec keeps the constructors so crash-restart faults can rebuild a
	// process in its initial state (zero value on hand-assembled worlds,
	// which therefore reject crash actions).
	spec protocol.Spec

	// SafetyViolation holds the first detected violation of "Y is a
	// prefix of X" (nil while safe). The world keeps stepping after a
	// violation so that counterexample traces show the damage.
	SafetyViolation error

	// Trace, when non-nil, records every applied action.
	Trace *trace.Trace
}

// New assembles a world from a protocol spec, an input sequence, and a
// link. The protocol alphabets are enforced on the link: a send outside
// M^S or M^R is a hard error (the paper's finiteness assumption), except
// for protocols that declare an empty alphabet (unbounded baselines).
func New(spec protocol.Spec, input seq.Seq, link *channel.Link) (*World, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	s, err := spec.NewSender(input)
	if err != nil {
		return nil, fmt.Errorf("sim: building sender: %w", err)
	}
	r, err := spec.NewReceiver()
	if err != nil {
		return nil, fmt.Errorf("sim: building receiver: %w", err)
	}
	if s.Alphabet().Size() > 0 || r.Alphabet().Size() > 0 {
		link.EnforceAlphabets(s.Alphabet(), r.Alphabet())
	}
	return &World{
		Name:  spec.Name,
		Input: input.Clone(),
		S:     s,
		R:     r,
		Link:  link,
		spec:  spec,
	}, nil
}

// StartTrace attaches an empty trace recorder.
func (w *World) StartTrace() {
	w.Trace = &trace.Trace{Name: w.Name, Input: w.Input.Clone()}
}

// Enabled enumerates every action the environment could take now:
// spontaneous steps for both processes, a delivery of each deliverable
// message on each half, FIFO duplications, and drops where the model
// allows deletion. This is the paper's Property 1b made executable —
// every deliverable message has a run in which it is delivered next, and
// there is always a run in which nothing is delivered (the ticks).
func (w *World) Enabled() []trace.Action {
	return w.AppendEnabled(nil)
}

// AppendEnabled is Enabled with a caller-provided buffer: it appends the
// enabled actions to acts (in the same canonical order) and returns the
// extended slice. Exploration loops pass a reused buffer to avoid one
// allocation per expanded state.
func (w *World) AppendEnabled(acts []trace.Action) []trace.Action {
	acts = append(acts, trace.TickS(), trace.TickR())
	for _, dir := range []channel.Dir{channel.SToR, channel.RToS} {
		half := w.Link.Half(dir)
		for _, m := range half.Deliverable().Support() {
			acts = append(acts, trace.Deliver(dir, m))
			if f, ok := half.(*channel.FIFO); ok && f.AllowsDup() {
				acts = append(acts, trace.DeliverDup(dir, m))
			}
			if half.CanDrop(m) {
				acts = append(acts, trace.Drop(dir, m))
			}
		}
	}
	return acts
}

// Apply executes one scheduler action: it performs the channel operation,
// steps the affected process, routes its sends onto the link, appends R's
// writes to Y, checks safety online, and advances the clock.
func (w *World) Apply(act trace.Action) error {
	var (
		sends  []msg.Msg
		writes seq.Seq
		err    error
	)
	switch act.Kind {
	case trace.ActTickS:
		sends = w.S.Step(protocol.TickEvent())
		err = w.routeSender(sends)
	case trace.ActTickR:
		sends, writes = w.R.Step(protocol.TickEvent())
		err = w.routeReceiver(sends, writes)
	case trace.ActDeliver, trace.ActDeliverDup:
		half := w.Link.Half(act.Dir)
		if act.Kind == trace.ActDeliverDup {
			f, ok := half.(*channel.FIFO)
			if !ok {
				return fmt.Errorf("sim: deliver+dup on non-FIFO half %s", act.Dir)
			}
			if derr := f.DeliverKeep(act.Msg); derr != nil {
				return fmt.Errorf("sim: %w", derr)
			}
		} else if derr := half.Deliver(act.Msg); derr != nil {
			return fmt.Errorf("sim: %w", derr)
		}
		if act.Dir == channel.SToR {
			sends, writes = w.R.Step(protocol.RecvEvent(act.Msg))
			err = w.routeReceiver(sends, writes)
		} else {
			sends = w.S.Step(protocol.RecvEvent(act.Msg))
			err = w.routeSender(sends)
		}
	case trace.ActDrop:
		if derr := w.Link.Half(act.Dir).Drop(act.Msg); derr != nil {
			return fmt.Errorf("sim: %w", derr)
		}
	case trace.ActCrashS, trace.ActCrashR:
		// Crash-restart: the process loses its local state and restarts in
		// its initial state. In-flight messages and the tapes survive. This
		// fault is outside the paper's model (never in Enabled()); it is
		// injected only by fault plans and replayed counterexamples.
		if w.spec.NewSender == nil || w.spec.NewReceiver == nil {
			return fmt.Errorf("sim: %s requires a spec-built world", act.Kind)
		}
		if act.Kind == trace.ActCrashS {
			s, cerr := w.spec.NewSender(w.Input)
			if cerr != nil {
				return fmt.Errorf("sim: crash-restart of S: %w", cerr)
			}
			w.S = s
		} else {
			r, cerr := w.spec.NewReceiver()
			if cerr != nil {
				return fmt.Errorf("sim: crash-restart of R: %w", cerr)
			}
			w.R = r
		}
	case trace.ActScrambleS, trace.ActScrambleR:
		// Scramble-restart: the process restarts in seeded-arbitrary local
		// state (the self-stabilization adversary of [DDPT, arXiv
		// 1104.3947]: a transient fault corrupts memory instead of
		// clearing it). Rebuild-from-spec then corrupt, so processes
		// without a Scrambler hook degrade to plain crash-restart.
		if w.spec.NewSender == nil || w.spec.NewReceiver == nil {
			return fmt.Errorf("sim: %s requires a spec-built world", act.Kind)
		}
		if act.Kind == trace.ActScrambleS {
			s, cerr := w.spec.NewSender(w.Input)
			if cerr != nil {
				return fmt.Errorf("sim: scramble-restart of S: %w", cerr)
			}
			protocol.ScrambleState(s, act.Seed)
			w.S = s
		} else {
			r, cerr := w.spec.NewReceiver()
			if cerr != nil {
				return fmt.Errorf("sim: scramble-restart of R: %w", cerr)
			}
			protocol.ScrambleState(r, act.Seed)
			w.R = r
		}
	default:
		return fmt.Errorf("sim: unknown action kind %d", int(act.Kind))
	}
	if err != nil {
		return err
	}
	if w.Trace != nil {
		// Step's returned slices are only valid until the process's next
		// Step (interned protocols return shared singletons and reused
		// scratch buffers), so the trace takes copies of both.
		var sendsCopy []msg.Msg
		if len(sends) > 0 {
			sendsCopy = append([]msg.Msg(nil), sends...)
		}
		w.Trace.Append(trace.Entry{Time: w.Time, Act: act, Sends: sendsCopy, Writes: writes.Clone()})
	}
	w.Time++
	return nil
}

func (w *World) routeSender(sends []msg.Msg) error {
	for _, m := range sends {
		if err := w.Link.Send(channel.SToR, m); err != nil {
			return fmt.Errorf("sim: sender step: %w", err)
		}
	}
	return nil
}

func (w *World) routeReceiver(sends []msg.Msg, writes seq.Seq) error {
	for _, m := range sends {
		if err := w.Link.Send(channel.RToS, m); err != nil {
			return fmt.Errorf("sim: receiver step: %w", err)
		}
	}
	for _, item := range writes {
		w.Output = append(w.Output, item)
		if w.SafetyViolation == nil && !w.Output.IsPrefixOf(w.Input) {
			w.SafetyViolation = fmt.Errorf(
				"sim: safety violated at t=%d: Y = %s is not a prefix of X = %s",
				w.Time, w.Output, w.Input)
		}
	}
	return nil
}

// OutputComplete reports whether R has written all of X.
func (w *World) OutputComplete() bool {
	return len(w.Output) == len(w.Input) && w.SafetyViolation == nil
}

// Quiescent reports whether the sender declares itself done and no copies
// remain in flight toward R, i.e. nothing further can change Y.
func (w *World) Quiescent() bool {
	return w.S.Done() && w.Link.Half(channel.SToR).Deliverable().Total() == 0
}

// Clone returns an independent deep copy of the world. The trace recorder
// is not carried over (clones are exploration tools).
func (w *World) Clone() *World {
	// The input tape is read-only after New (which clones it), so clones
	// share it; the output tape is appended to and must stay deep-copied.
	return &World{
		Name:            w.Name,
		Input:           w.Input,
		Output:          w.Output.Clone(),
		Time:            w.Time,
		S:               w.S.Clone(),
		R:               w.R.Clone(),
		Link:            w.Link.Clone(),
		spec:            w.spec,
		SafetyViolation: w.SafetyViolation,
	}
}

// Key returns a canonical encoding of the global state for deduplication:
// both local states, both channel halves, and the output length (which is
// all that matters for future safety, given the input).
func (w *World) Key() string {
	return fmt.Sprintf("S:%s|R:%s|L:%s|Y:%d", w.S.Key(), w.R.Key(), w.Link.Key(), len(w.Output))
}

// EncodeKey appends the binary counterpart of Key to buf: both local
// states (via their EncodeKey fast path, falling back to the Key string),
// both channel halves, and the output length. Each component encoding is
// self-delimiting, so the concatenation identifies global states exactly
// as the Key string does — the model checker's dedup relies on that.
func (w *World) EncodeKey(buf []byte) []byte {
	buf = protocol.AppendKey(buf, w.S)
	buf = protocol.AppendKey(buf, w.R)
	buf = w.Link.EncodeKey(buf)
	return binary.AppendUvarint(buf, uint64(len(w.Output)))
}
