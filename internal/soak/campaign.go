package soak

import (
	"seqtx/internal/channel"
	"seqtx/internal/protocol/hybrid"
	"seqtx/internal/registry"
	"seqtx/internal/seq"
)

// zooEntry places one protocol in the campaign matrix: which channel
// kinds it runs on and whether the model promises it survives there
// (safe + live under fairness). Protocols run outside their safe kind
// are MayFail cells — the campaign documents how they break rather than
// asserting they don't.
type zooEntry struct {
	protocol string
	params   registry.Params
	input    seq.Seq
	// kinds maps each kind the protocol runs on to the in-model
	// expectation: true = must survive every in-model plan.
	kinds map[channel.Kind]bool
	// fragileTo lists fault plans that exceed what the protocol tolerates
	// even on its safe kinds (documented restrictions, not bugs): cells
	// with these plans become MayFail.
	fragileTo map[string]bool
}

// zoo is the campaign matrix. Inputs are repetition-free where the
// protocol requires it (alpha, afwz); domains are kept small so the
// alpha(m) alphabet stays tractable.
var zoo = []zooEntry{
	{"alpha", registry.Params{M: 3}, seq.FromInts(2, 0, 1),
		map[channel.Kind]bool{channel.KindDup: true, channel.KindDel: true}, nil},
	{"stenning", registry.Params{}, seq.FromInts(0, 1, 2),
		map[channel.Kind]bool{channel.KindDup: true, channel.KindDel: true}, nil},
	// afwz keeps a single copy in flight and never retransmits: a deleted
	// copy stalls it forever, safely (its package doc calls such runs
	// unfair in the every-sent-copy-delivered sense). Drop plans are
	// therefore expected stalls, not harness findings.
	{"afwz", registry.Params{M: 3}, seq.FromInts(2, 0, 1),
		map[channel.Kind]bool{channel.KindDel: true, channel.KindReorder: true},
		map[string]bool{"burst-drop": true}},
	{"hybrid", registry.Params{M: 2, Timeout: hybrid.DefaultTimeout}, seq.FromInts(0, 1),
		map[channel.Kind]bool{channel.KindReorder: true}, nil},
	{"abp", registry.Params{M: 2}, seq.FromInts(0, 1),
		map[channel.Kind]bool{channel.KindFIFO: true, channel.KindReorder: false}, nil},
	{"gobackn", registry.Params{M: 2, Window: 2}, seq.FromInts(0, 1),
		map[channel.Kind]bool{channel.KindFIFO: true}, nil},
	{"selrepeat", registry.Params{M: 2, Window: 2}, seq.FromInts(0, 1),
		map[channel.Kind]bool{channel.KindFIFO: true}, nil},
	{"naive", registry.Params{M: 2}, seq.FromInts(0, 1),
		map[channel.Kind]bool{channel.KindDup: false}, nil},
	{"flood", registry.Params{M: 2}, seq.FromInts(0, 1),
		map[channel.Kind]bool{channel.KindDel: false}, nil},
	{"modseq", registry.Params{M: 2, Window: 2}, seq.FromInts(0, 1),
		map[channel.Kind]bool{channel.KindDup: false}, nil},
	// stab's bounded-counter resynchronization assumes channel capacity
	// <= Cap: only the bounded kind satisfies it (an unbounded channel
	// lets the adversary hoard > Cap stale copies, defeating the counting
	// argument — the dup cells document the resulting violations, and
	// even safe unbounded-FIFO runs accumulate partition backlogs the
	// c+1-vote drain cannot clear within watchdog budgets).
	{"stab", registry.Params{M: 3, Cap: 2}, seq.FromInts(2, 0, 1),
		map[channel.Kind]bool{channel.KindBounded: true, channel.KindDup: false},
		nil},
}

// schedEntry is one adversary × fault-plan schedule applied to every
// matrix cell. fair records fairness in the limit (finite fault windows
// heal, so the bursty schedules stay fair).
type schedEntry struct {
	adversary string
	plan      string
	fair      bool
}

// standardSchedules is the full fault menu: fair baselines, the
// adaptive stress adversaries, the in-model fault plans, and the
// out-of-model plans (corruption, crash-restart) that are expected to
// produce counterexamples on the weaker protocols.
var standardSchedules = []schedEntry{
	{"roundrobin", "none", true},
	{"random", "none", true},
	{"starver", "none", true},
	{"phased", "none", true},
	{"eclipse", "none", true},
	{"random", "burst-drop", true},
	{"random", "partition-heal", true},
	{"random", "corrupt", true},
	{"random", "crash-sender", true},
	{"random", "crash-receiver", true},
	{"random", "crash-scramble-sender", true},
	{"random", "crash-scramble-receiver", true},
	{"random", "crash-scramble-both", true},
}

// smokeSchedules is the CI subset: one fair baseline, one in-model
// fault, two out-of-model faults.
var smokeSchedules = []schedEntry{
	{"roundrobin", "none", true},
	{"random", "burst-drop", true},
	{"random", "corrupt", true},
	{"random", "crash-receiver", true},
	{"random", "crash-scramble-receiver", true},
}

// kindOrder fixes the iteration order over a zoo entry's kinds so the
// generated case list (and hence the report) is deterministic.
var kindOrder = []channel.Kind{
	channel.KindDup, channel.KindDel, channel.KindReorder, channel.KindFIFO,
	channel.KindDupDel, channel.KindBounded,
}

// cases expands a zoo × schedules product into seeded cells.
func cases(entries []zooEntry, schedules []schedEntry, seed int64, runsPerCell int) []Case {
	if runsPerCell < 1 {
		runsPerCell = 1
	}
	var out []Case
	for _, z := range entries {
		for _, kind := range kindOrder {
			safe, run := z.kinds[kind]
			if !run {
				continue
			}
			for _, s := range schedules {
				if s.plan == "burst-drop" && (kind == channel.KindDup || kind == channel.KindReorder) {
					continue // nothing to drop: the burst would be a silent no-op
				}
				plan := s.plan
				inModel := plan == "none" || plan == "burst-drop" || plan == "partition-heal"
				for r := 0; r < runsPerCell; r++ {
					p := z.params
					p.Budget = 3 // eclipse/phased window scale
					out = append(out, Case{
						Protocol:  z.protocol,
						Params:    p,
						Input:     z.input,
						Kind:      kind,
						Adversary: s.adversary,
						Plan:      plan,
						Seed:      seed + int64(r),
						Fair:      s.fair,
						MayFail:   !safe || !inModel || z.fragileTo[plan],
					})
				}
			}
		}
	}
	return out
}

// StandardCampaign is the full matrix: every zoo protocol on its kinds,
// under every standard schedule, runsPerCell seeds each.
func StandardCampaign(seed int64, runsPerCell int) *Campaign {
	return &Campaign{
		Name:  "standard",
		Cases: cases(zoo, standardSchedules, seed, runsPerCell),
	}
}

// SmokeCampaign is the CI subset: three representative protocols (the
// tight one, the unbounded baseline, and an unsafe strawman), the smoke
// schedules, one seed — small enough to finish in seconds.
func SmokeCampaign(seed int64) *Campaign {
	var smokeZoo []zooEntry
	for _, z := range zoo {
		switch z.protocol {
		case "alpha", "stenning", "naive":
			smokeZoo = append(smokeZoo, z)
		}
	}
	return &Campaign{
		Name:   "smoke",
		Cases:  cases(smokeZoo, smokeSchedules, seed, 1),
		Config: Config{MaxSteps: 2000},
	}
}
