package soak

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"seqtx/internal/channel"
	"seqtx/internal/msg"
	"seqtx/internal/seq"
	"seqtx/internal/trace"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// goldenReport hand-builds a report exercising every serialized field:
// a clean run, a wall-clock cut (CutStep), and a safety violation with a
// shrunk, replay-confirmed counterexample trace.
func goldenReport() *Report {
	cex := &Counterexample{
		OriginalSteps: 9,
		ShrunkSteps:   3,
		Replays:       17,
		ReplayOK:      true,
		Trace: &trace.Trace{
			Name:  "stenning",
			Input: seq.FromInts(2, 0),
			Entries: []trace.Entry{
				{Time: 0, Act: trace.TickS(), Sends: []msg.Msg{"d:0:2"}},
				{Time: 1, Act: trace.CrashR()},
				{Time: 2, Act: trace.Deliver(channel.SToR, "d:0:2"),
					Sends: []msg.Msg{"a:0"}, Writes: seq.FromInts(2)},
			},
		},
	}
	r := &Report{
		Campaign: "golden",
		Runs: []RunReport{
			{
				Protocol: "alpha", Channel: "dup", Adversary: "roundrobin",
				Plan: "none", Seed: 42, Fair: true, InModel: true,
				Outcome: OutcomeComplete, Expected: true,
				Steps: 120, Output: "2 0", Audit: "ok",
			},
			{
				Protocol: "alpha", Channel: "del", Adversary: "random",
				Plan: "none", Seed: 43, Fair: true, InModel: true,
				Outcome: OutcomeWallClock, Expected: true,
				Steps: 255, CutStep: 255, Audit: "ok",
			},
			{
				Protocol: "stenning", Channel: "dup", Adversary: "random",
				Plan: "crash-receiver", Seed: 7, Fair: true, MayFail: true,
				Outcome: OutcomeSafety, Violation: ViolationSafety,
				Expected: true, Steps: 9, Output: "2 2",
				Error:          "output is not a prefix of the input",
				Counterexample: cex,
			},
		},
	}
	r.Finalize()
	return r
}

// TestReportGoldenRoundTrip pins the report wire format: WriteJSON must
// reproduce the checked-in artifact byte for byte (the format is an
// interchange contract — recorded campaigns are diffed and replayed),
// and unmarshalling the artifact must reconstruct the report exactly.
func TestReportGoldenRoundTrip(t *testing.T) {
	want := goldenReport()
	var buf bytes.Buffer
	if err := want.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "report_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-golden)", err)
	}
	if !bytes.Equal(buf.Bytes(), golden) {
		t.Errorf("report JSON drifted from golden file (regenerate with -update-golden if intended)\ngot:\n%s\nwant:\n%s",
			buf.Bytes(), golden)
	}
	var got Report
	if err := json.Unmarshal(golden, &got); err != nil {
		t.Fatalf("golden file does not unmarshal: %v", err)
	}
	if !reflect.DeepEqual(&got, want) {
		t.Errorf("round trip lost information:\ngot:  %+v\nwant: %+v", got, *want)
	}
}

// TestCampaignVerdictCountsWorkerIndependent pins that the campaign's
// verdict counts do not depend on -workers: the pool only changes who
// executes a cell, never what the cell concludes. (A stronger byte-level
// check lives in TestCampaignDeterminism; this one isolates the verdict
// counters so a formatting change can't mask a scheduling leak.)
func TestCampaignVerdictCountsWorkerIndependent(t *testing.T) {
	t.Parallel()
	summaries := make([]Summary, 0, 4)
	for _, workers := range []int{1, 2, 3, 8} {
		cmp := SmokeCampaign(3)
		cmp.Config = testConfig()
		cmp.Config.Workers = workers
		summaries = append(summaries, cmp.Run().Summary)
	}
	for i, s := range summaries[1:] {
		if s != summaries[0] {
			t.Errorf("workers=%d summary %+v differs from workers=1 %+v",
				[]int{2, 3, 8}[i], s, summaries[0])
		}
	}
}
