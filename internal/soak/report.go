package soak

import (
	"encoding/json"
	"fmt"
	"io"
)

// RunReport is the audited outcome of one case.
type RunReport struct {
	Protocol  string `json:"protocol"`
	Channel   string `json:"channel"`
	Adversary string `json:"adversary"`
	Plan      string `json:"plan"`
	Seed      int64  `json:"seed"`
	Fair      bool   `json:"fair"`
	MayFail   bool   `json:"may_fail"`
	// InModel mirrors the plan's classification (false for corruption and
	// crash-restart plans).
	InModel bool `json:"in_model"`
	// Outcome is one of the Outcome* constants.
	Outcome string `json:"outcome"`
	// Violation is the violated invariant class ("" when none).
	Violation string `json:"violation,omitempty"`
	// Expected reports whether this outcome is acceptable for the cell: a
	// clean run always is; a violation only on MayFail cells.
	Expected bool `json:"expected"`
	Steps    int  `json:"steps"`
	// CutStep is the step at which the wall-clock watchdog cut the run
	// (set only for OutcomeWallClock): a replay of the same case with
	// MaxSteps = CutStep reproduces the exact prefix that was observed.
	CutStep int    `json:"cut_step,omitempty"`
	Output  string `json:"output,omitempty"`
	// Audit is the conservation auditor's verdict: "ok", "skipped", or the
	// first violation found.
	Audit string `json:"audit,omitempty"`
	Error string `json:"error,omitempty"`
	// Counterexample is the shrunk failing trace (safety violations only).
	Counterexample *Counterexample `json:"counterexample,omitempty"`
}

// ID renders the cell coordinates compactly.
func (r RunReport) ID() string {
	return fmt.Sprintf("%s/%s/%s/%s/seed=%d", r.Protocol, r.Channel, r.Adversary, r.Plan, r.Seed)
}

// Summary aggregates a campaign.
type Summary struct {
	Total    int `json:"total"`
	Complete int `json:"complete"`
	// ExpectedViolations counts violations on MayFail cells — the campaign
	// working as designed (out-of-model faults breaking weak protocols).
	ExpectedViolations int `json:"expected_violations"`
	// UnexpectedViolations counts violations on cells that promised to
	// survive — each one is a bug (in the protocol or the harness).
	UnexpectedViolations int `json:"unexpected_violations"`
	// Inconclusive counts runs cut short without a verdict (unfair stalls,
	// step/wall-clock budget exhaustion).
	Inconclusive int `json:"inconclusive"`
	// Shrunk counts captured counterexamples whose shrunk replay
	// reproduces the violation.
	Shrunk int `json:"shrunk"`
}

// Report is the JSON artifact of a campaign run.
type Report struct {
	Campaign string      `json:"campaign"`
	Runs     []RunReport `json:"runs"`
	Summary  Summary     `json:"summary"`
}

// Finalize (re)computes the summary from the runs. Campaign.Run calls it;
// callers that assemble reports from partial runs (a budget-limited CLI
// invocation) call it again before rendering.
func (r *Report) Finalize() { r.summarize() }

func (r *Report) summarize() {
	s := Summary{Total: len(r.Runs)}
	for _, run := range r.Runs {
		switch {
		case run.Violation != "" && run.Expected:
			s.ExpectedViolations++
		case run.Violation != "":
			s.UnexpectedViolations++
		case run.Outcome == OutcomeComplete:
			s.Complete++
		default:
			s.Inconclusive++
		}
		if run.Counterexample != nil && run.Counterexample.ReplayOK {
			s.Shrunk++
		}
	}
	r.Summary = s
}

// Ok reports whether the campaign met its expectations: no cell that
// promised to survive violated anything.
func (r *Report) Ok() bool { return r.Summary.UnexpectedViolations == 0 }

// Unexpected returns the runs that violated without permission.
func (r *Report) Unexpected() []RunReport {
	var out []RunReport
	for _, run := range r.Runs {
		if run.Violation != "" && !run.Expected {
			out = append(out, run)
		}
	}
	return out
}

// WriteJSON renders the report, indented, to w.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
