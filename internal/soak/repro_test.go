package soak

import (
	"bytes"
	"encoding/json"
	"testing"

	"seqtx/internal/sim"
)

// TestSeedReproducibility pins the determinism contract the whole soak
// subsystem leans on: for every protocol × channel kind in the campaign
// zoo, running the seeded random schedule twice yields byte-identical
// trace JSON. Any hidden nondeterminism (map iteration leaking into
// choices, shared rng state, time dependence) breaks this immediately.
func TestSeedReproducibility(t *testing.T) {
	t.Parallel()
	runTrace := func(c Case) []byte {
		t.Helper()
		w, adv, _, err := c.build()
		if err != nil {
			t.Fatalf("%s: %v", c.ID(), err)
		}
		w.StartTrace()
		if _, err := sim.Run(w, adv, sim.Config{
			MaxSteps:         1500,
			StopWhenComplete: true,
			ProgressDeadline: 400,
		}); err != nil {
			t.Fatalf("%s: %v", c.ID(), err)
		}
		data, err := json.Marshal(w.Trace)
		if err != nil {
			t.Fatalf("%s: %v", c.ID(), err)
		}
		return data
	}
	for _, z := range zoo {
		for _, kind := range kindOrder {
			if _, run := z.kinds[kind]; !run {
				continue
			}
			c := Case{
				Protocol:  z.protocol,
				Params:    z.params,
				Input:     z.input,
				Kind:      kind,
				Adversary: "random",
				Plan:      "none",
				Seed:      42,
			}
			a, b := runTrace(c), runTrace(c)
			if !bytes.Equal(a, b) {
				t.Errorf("%s/%s: same seed, different traces", z.protocol, kind)
			}
			// A different seed must (for the random schedule) change the
			// trace — otherwise the seed isn't actually threaded through.
			c.Seed = 43
			if d := runTrace(c); bytes.Equal(a, d) {
				t.Logf("%s/%s: seeds 42 and 43 coincide (legal but suspicious)", z.protocol, kind)
			}
		}
	}
}
