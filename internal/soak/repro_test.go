package soak

import (
	"bytes"
	"encoding/json"
	"testing"

	"seqtx/internal/channel"
	"seqtx/internal/sim"
)

// TestSeedReproducibility pins the determinism contract the whole soak
// subsystem leans on: for every protocol × channel kind in the campaign
// zoo, running the seeded random schedule twice yields byte-identical
// trace JSON. Any hidden nondeterminism (map iteration leaking into
// choices, shared rng state, time dependence) breaks this immediately.
// TestSubSeedDerivation pins the seed-derivation scheme: golden values
// (so recorded campaigns replay seed-exact across refactors) plus the
// decorrelation property the derivation exists for — the protocol and
// adversary streams must differ from each other and from the raw seed.
// Before this scheme, build threaded the same c.Seed into both the
// protocol's Params.Seed and the adversary's RNG, handing two supposedly
// independent randomness consumers identical streams.
func TestSubSeedDerivation(t *testing.T) {
	t.Parallel()
	golden := []struct {
		seed      int64
		protocol  int64
		adversary int64
	}{
		{0, 8925147908211217488, 3823104708042019536},
		{1, -8024952779896270477, 6612384563142513815},
		{42, -4673693320629877365, -6600770214069590626},
		{-7, 8047763349653048693, 2870549360921897678},
		{1 << 62, -594431027414656056, 4286315861617638626},
	}
	for _, g := range golden {
		if got := subSeed(g.seed, streamProtocol); got != g.protocol {
			t.Errorf("subSeed(%d, protocol) = %d, want %d", g.seed, got, g.protocol)
		}
		if got := subSeed(g.seed, streamAdversary); got != g.adversary {
			t.Errorf("subSeed(%d, adversary) = %d, want %d", g.seed, got, g.adversary)
		}
	}
	// Decorrelation: across a spread of seeds the two streams never
	// coincide with each other or with the raw seed.
	for seed := int64(-1000); seed <= 1000; seed++ {
		p, a := subSeed(seed, streamProtocol), subSeed(seed, streamAdversary)
		if p == a {
			t.Errorf("seed %d: protocol and adversary streams coincide (%d)", seed, p)
		}
		if p == seed || a == seed {
			t.Errorf("seed %d: derived stream equals raw seed", seed)
		}
	}
}

// TestStreamsDecorrelated proves the fix at the case level: the sub-seed
// handed to the protocol's Params and the one handed to the adversary
// differ from each other and from the raw case seed, and the case still
// builds under the derivation.
func TestStreamsDecorrelated(t *testing.T) {
	t.Parallel()
	c := Case{
		Protocol:  zoo[0].protocol,
		Params:    zoo[0].params,
		Input:     zoo[0].input,
		Kind:      channel.KindFIFO,
		Adversary: "random",
		Plan:      "none",
		Seed:      42,
	}
	// The derived protocol seed placed into Params must differ from both
	// the raw case seed and the adversary's sub-seed.
	ps := subSeed(c.Seed, streamProtocol)
	as := subSeed(c.Seed, streamAdversary)
	if ps == c.Seed || as == c.Seed || ps == as {
		t.Fatalf("sub-seeds not decorrelated: case=%d protocol=%d adversary=%d", c.Seed, ps, as)
	}
	if _, _, _, err := c.build(); err != nil {
		t.Fatalf("build: %v", err)
	}
}

func TestSeedReproducibility(t *testing.T) {
	t.Parallel()
	runTrace := func(c Case) []byte {
		t.Helper()
		w, adv, _, err := c.build()
		if err != nil {
			t.Fatalf("%s: %v", c.ID(), err)
		}
		w.StartTrace()
		if _, err := sim.Run(w, adv, sim.Config{
			MaxSteps:         1500,
			StopWhenComplete: true,
			ProgressDeadline: 400,
		}); err != nil {
			t.Fatalf("%s: %v", c.ID(), err)
		}
		data, err := json.Marshal(w.Trace)
		if err != nil {
			t.Fatalf("%s: %v", c.ID(), err)
		}
		return data
	}
	for _, z := range zoo {
		for _, kind := range kindOrder {
			if _, run := z.kinds[kind]; !run {
				continue
			}
			c := Case{
				Protocol:  z.protocol,
				Params:    z.params,
				Input:     z.input,
				Kind:      kind,
				Adversary: "random",
				Plan:      "none",
				Seed:      42,
			}
			a, b := runTrace(c), runTrace(c)
			if !bytes.Equal(a, b) {
				t.Errorf("%s/%s: same seed, different traces", z.protocol, kind)
			}
			// A different seed must (for the random schedule) change the
			// trace — otherwise the seed isn't actually threaded through.
			c.Seed = 43
			if d := runTrace(c); bytes.Equal(a, d) {
				t.Logf("%s/%s: seeds 42 and 43 coincide (legal but suspicious)", z.protocol, kind)
			}
		}
	}
}
