package soak

import (
	"testing"

	"seqtx/internal/channel"
	"seqtx/internal/registry"
	"seqtx/internal/seq"
	"seqtx/internal/trace"
)

func scrambleCase(seed int64) Case {
	return Case{
		Protocol:  "stab",
		Params:    registry.Params{M: 3, Cap: 2},
		Input:     seq.FromInts(2, 0, 1),
		Kind:      channel.KindBounded,
		Adversary: "random",
		Plan:      "crash-scramble-both",
		Seed:      seed,
		Fair:      true,
		MayFail:   true,
	}
}

// TestScrambleScheduleSeedExact pins the scramble restart policy's replay
// contract: two fresh builds of the same seeded case walk byte-identical
// runs — same actions, same per-point corruption seeds, same writes.
func TestScrambleScheduleSeedExact(t *testing.T) {
	for _, seed := range []int64{1, 7, 1234} {
		var renders [2]string
		var scrambles [2]int
		for i := range renders {
			c := scrambleCase(seed)
			w, adv, _, err := c.build()
			if err != nil {
				t.Fatal(err)
			}
			w.StartTrace()
			for s := 0; s < 300; s++ {
				act := adv.Choose(w, w.Enabled())
				if err := w.Apply(act); err != nil {
					t.Fatalf("seed %d step %d: %v", seed, s, err)
				}
			}
			for _, e := range w.Trace.Entries {
				if e.Act.Kind == trace.ActScrambleS || e.Act.Kind == trace.ActScrambleR {
					scrambles[i]++
					if e.Act.Seed == 0 {
						t.Errorf("seed %d: scramble action without corruption seed: %s", seed, e.Act)
					}
				}
			}
			renders[i] = w.Trace.String()
		}
		if scrambles[0] == 0 {
			t.Errorf("seed %d: plan injected no scramble actions", seed)
		}
		if renders[0] != renders[1] {
			t.Errorf("seed %d: two builds of the same case diverged", seed)
		}
	}
}

// TestScrambleTraceReplays pins that a recorded run containing scramble
// actions replays through the Replay oracle (the ddmin prerequisite): the
// recorded corruption seeds, not the plan, drive the replayed scrambles,
// so the rebuilt world ends with the same output tape.
func TestScrambleTraceReplays(t *testing.T) {
	c := scrambleCase(42)
	w, adv, _, err := c.build()
	if err != nil {
		t.Fatal(err)
	}
	w.StartTrace()
	for s := 0; s < 300; s++ {
		act := adv.Choose(w, w.Enabled())
		if err := w.Apply(act); err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
	}
	// Replay with a plain case (same build, actions carry the seeds).
	w2, err := Replay(c, w.Trace.Actions())
	if err != nil {
		t.Fatal(err)
	}
	if !w2.Output.Equal(w.Output) {
		t.Fatalf("replay diverged: Y = %s, want %s", w2.Output, w.Output)
	}
	if w2.S.Key() != w.S.Key() || w2.R.Key() != w.R.Key() {
		t.Fatalf("replay diverged in process state: %s/%s vs %s/%s",
			w2.S.Key(), w2.R.Key(), w.S.Key(), w.R.Key())
	}
}
