package soak

import (
	"strconv"

	"seqtx/internal/channel"
	"seqtx/internal/obs"
	"seqtx/internal/sim"
	"seqtx/internal/trace"
)

// Counterexample is a captured, minimized failing run.
type Counterexample struct {
	// OriginalSteps is the length of the captured failing trace.
	OriginalSteps int `json:"original_steps"`
	// ShrunkSteps is the length after ddmin.
	ShrunkSteps int `json:"shrunk_steps"`
	// Replays is how many oracle replays the minimization consumed.
	Replays int `json:"replays"`
	// ReplayOK confirms a final fresh replay of the shrunk actions still
	// reproduces the violation.
	ReplayOK bool `json:"replay_ok"`
	// Trace is the shrunk run, replayable via Replay / the Scripted
	// adversary.
	Trace *trace.Trace `json:"trace"`
}

// Replay re-executes a recorded action sequence against a fresh build of
// the case (fresh processes, fresh link, fresh fault wrappers) and
// returns the resulting world. Actions that are not applicable in the
// rebuilt world — a delivery whose copy no longer exists because ddmin
// removed the send that produced it — are skipped, which keeps every
// subsequence of a valid run itself replayable. The replay stops early
// once safety is violated (the oracle needs nothing further).
func Replay(c Case, actions []trace.Action) (*sim.World, error) {
	w, _, _, err := c.build()
	if err != nil {
		return nil, err
	}
	w.StartTrace()
	for _, act := range actions {
		if !applicable(w, act) {
			continue
		}
		if err := w.Apply(act); err != nil {
			return w, err
		}
		if w.SafetyViolation != nil {
			break
		}
	}
	return w, nil
}

// applicable reports whether the world can legally apply act right now.
// Ticks and crash-restarts are always applicable; channel actions need
// the copy to actually be there.
func applicable(w *sim.World, act trace.Action) bool {
	switch act.Kind {
	case trace.ActTickS, trace.ActTickR, trace.ActCrashS, trace.ActCrashR,
		trace.ActScrambleS, trace.ActScrambleR:
		return true
	case trace.ActDeliver:
		return w.Link.Half(act.Dir).CanDeliver(act.Msg)
	case trace.ActDeliverDup:
		f, ok := w.Link.Half(act.Dir).(*channel.FIFO)
		return ok && f.AllowsDup() && f.CanDeliver(act.Msg)
	case trace.ActDrop:
		return w.Link.Half(act.Dir).CanDrop(act.Msg)
	default:
		return false
	}
}

// shrinkCase minimizes a failing trace and double-checks the result with
// one final fresh replay. reg (nil allowed) records the shrink effort.
func shrinkCase(c Case, failing *trace.Trace, maxReplays int, reg *obs.Registry) *Counterexample {
	actions := failing.Actions()
	cex := &Counterexample{OriginalSteps: len(actions)}
	oracle := func(cand []trace.Action) bool {
		w, err := Replay(c, cand)
		return err == nil && w.SafetyViolation != nil
	}
	shrunk, replays := ddmin(actions, oracle, maxReplays)
	cex.ShrunkSteps = len(shrunk)
	cex.Replays = replays

	// Re-run the shrunk sequence once more against a fresh world and keep
	// its recorded trace as the artifact: entries carry the sends/writes of
	// the minimal run, not the original's.
	w, err := Replay(c, shrunk)
	if err == nil && w.SafetyViolation != nil {
		cex.ReplayOK = true
		cex.Trace = w.Trace
	} else {
		// Shrinking failed to preserve the violation (oracle budget hit on a
		// flaky boundary); fall back to the unshrunk original, which did.
		cex.ShrunkSteps = len(actions)
		cex.Trace = failing
		w, err := Replay(c, actions)
		cex.ReplayOK = err == nil && w.SafetyViolation != nil
	}
	if reg != nil {
		reg.Counter("soak_shrinks_total").Inc()
		reg.Histogram("soak_shrink_replays", obs.StepBuckets).Observe(float64(cex.Replays))
		reg.Histogram("soak_shrink_removed_steps", obs.StepBuckets).
			Observe(float64(cex.OriginalSteps - cex.ShrunkSteps))
		reg.Emit("soak.shrink.converged",
			"case", c.ID(),
			"from", strconv.Itoa(cex.OriginalSteps),
			"to", strconv.Itoa(cex.ShrunkSteps),
			"replays", strconv.Itoa(cex.Replays),
			"replay_ok", strconv.FormatBool(cex.ReplayOK))
	}
	return cex
}

// ddmin is the classic delta-debugging minimization (Zeller & Hildebrandt)
// over action sequences: partition the sequence into n chunks, try
// removing each chunk, refine the granularity when nothing can be
// removed, stop at 1-minimality or when the replay budget runs out. test
// must hold for the input sequence; the result is a subsequence for which
// it still holds.
func ddmin(actions []trace.Action, test func([]trace.Action) bool, maxReplays int) ([]trace.Action, int) {
	replays := 0
	tryTest := func(cand []trace.Action) bool {
		if replays >= maxReplays {
			return false
		}
		replays++
		return test(cand)
	}
	cur := actions
	n := 2
	for len(cur) >= 2 && n <= len(cur) && replays < maxReplays {
		chunk := (len(cur) + n - 1) / n
		reduced := false
		for start := 0; start < len(cur); start += chunk {
			end := min(start+chunk, len(cur))
			cand := make([]trace.Action, 0, len(cur)-(end-start))
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[end:]...)
			if len(cand) == 0 {
				continue
			}
			if tryTest(cand) {
				cur = cand
				n = max(2, n-1)
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(cur) {
				break
			}
			n = min(len(cur), 2*n)
		}
	}
	return cur, replays
}
