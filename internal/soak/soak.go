// Package soak runs fault-injection campaigns: a seeded matrix of
// protocol × channel kind × adversary × fault plan cells, each executed
// under the run watchdogs and audited against the model's invariants —
// safety (Y a prefix of X), alphabet containment (enforced online by the
// link), channel conservation (check.Audit), quiescence, and liveness
// under fairness (the progress watchdog's verdict on fair schedules).
//
// The campaign's point is the paper's two-sided claim made executable:
// every in-model fault plan (burst drops, partition-then-heal — legal
// resolutions of Property 1b) must leave the tight protocol safe and
// live, while out-of-model plans (corruption, crash-restart) are allowed
// — expected — to break the weaker protocols. A safety violation is
// captured as a trace and delta-debugged (ddmin) down to a 1-minimal
// action sequence whose replay still reproduces the violation.
package soak

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"seqtx/internal/channel"
	"seqtx/internal/check"
	"seqtx/internal/faults"
	"seqtx/internal/obs"
	"seqtx/internal/protocol"
	"seqtx/internal/registry"
	"seqtx/internal/seq"
	"seqtx/internal/sim"
)

// Case is one campaign cell: a fully specified, seeded run.
type Case struct {
	// Protocol names a registry protocol. Ignored when Spec is set.
	Protocol string
	// Spec overrides the registry lookup (tests inject hand-built specs).
	Spec protocol.Spec
	// Params carries the protocol's knobs (Seed is overwritten from Seed).
	Params registry.Params
	// Input is the tape X.
	Input seq.Seq
	// Kind is the channel model.
	Kind channel.Kind
	// Adversary names a registry adversary.
	Adversary string
	// Plan names a faults preset ("" means "none").
	Plan string
	// Seed makes the run reproducible. It is never used directly:
	// build derives one independent sub-seed per randomness consumer
	// (protocol internals, adversary scheduling) so the streams are
	// decorrelated while replays stay seed-exact.
	Seed int64
	// Fair records whether the schedule is fair in the limit; only fair
	// runs owe liveness, so only their stalls count as violations.
	Fair bool
	// MayFail marks cells where a violation is an expected outcome
	// (out-of-model plans, protocols run outside their safe channel).
	MayFail bool
}

// ID renders the cell coordinates compactly for logs and reports.
func (c Case) ID() string {
	return fmt.Sprintf("%s/%s/%s/%s/seed=%d", c.protocolName(), c.Kind, c.Adversary, c.planName(), c.Seed)
}

func (c Case) protocolName() string {
	if c.Spec.Name != "" {
		return c.Spec.Name
	}
	return c.Protocol
}

func (c Case) planName() string {
	if c.Plan == "" {
		return "none"
	}
	return c.Plan
}

// Stream tags for subSeed: arbitrary fixed 64-bit constants, one per
// randomness consumer, so each draws from its own decorrelated stream.
const (
	streamProtocol  uint64 = 0x70726f746f636f6c // "protocol"
	streamAdversary uint64 = 0x6164766572736172 // "adversar(y)"
	streamFaults    uint64 = 0x736372616d626c65 // "scramble"
)

// splitmix64 is the SplitMix64 finalizer (Steele, Lea & Flood, OOPSLA
// 2014) — the standard mixer for expanding one seed into independent
// streams. Changing it breaks seed-exact replay of recorded campaigns;
// repro_test.go pins its outputs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// subSeed derives the tagged stream's seed from the case seed. Threading
// the raw case seed into two consumers would hand the protocol's RNG and
// the adversary's scheduler identical streams — correlated randomness
// that silently narrows what a campaign explores.
func subSeed(seed int64, tag uint64) int64 {
	return int64(splitmix64(uint64(seed) ^ tag))
}

// build assembles the world, the plan-wrapped adversary, and the plan for
// one fresh execution of the case. Every call returns independent state,
// so a case can be run, re-run, and replayed without interference.
func (c Case) build() (*sim.World, sim.Adversary, *faults.Plan, error) {
	spec := c.Spec
	if spec.NewSender == nil {
		p := c.Params
		p.Seed = subSeed(c.Seed, streamProtocol)
		var err error
		spec, err = registry.Protocol(c.Protocol, p)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	fs, err := faults.PresetSpec(c.planName())
	if err != nil {
		return nil, nil, nil, err
	}
	// The scramble-corruption stream is its own sub-seed: recorded traces
	// carry the realized per-point seeds in their scramble actions, so
	// replays are exact even though the plan is rebuilt fresh.
	plan := fs.PlanSeeded(subSeed(c.Seed, streamFaults))
	link, err := plan.Link(c.Kind)
	if err != nil {
		return nil, nil, nil, err
	}
	w, err := sim.New(spec, c.Input, link)
	if err != nil {
		return nil, nil, nil, err
	}
	p := c.Params
	p.Seed = subSeed(c.Seed, streamAdversary)
	adv, err := registry.Adversary(c.Adversary, p)
	if err != nil {
		return nil, nil, nil, err
	}
	return w, plan.Wrap(adv), plan, nil
}

// Config bounds every run of a campaign.
type Config struct {
	// MaxSteps bounds each run (default 4000).
	MaxSteps int
	// ProgressDeadline arms the progress watchdog (default 600 steps).
	ProgressDeadline int
	// MaxWallClock is the per-run wall-clock budget (default 10s).
	MaxWallClock time.Duration
	// Workers bounds the worker pool (default GOMAXPROCS).
	Workers int
	// DisableShrink skips counterexample minimization.
	DisableShrink bool
	// MaxShrinkReplays bounds the ddmin oracle budget (default 400).
	MaxShrinkReplays int
	// Obs, when non-nil, receives campaign metrics (cells by verdict,
	// shrink effort) and run events, and is threaded into every sim.Run.
	// All updates are atomic and flushed outside run loops, so a shared
	// registry is safe across the worker pool and a nil one is free.
	Obs *obs.Registry
}

func (cfg Config) withDefaults() Config {
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = 4000
	}
	if cfg.ProgressDeadline <= 0 {
		cfg.ProgressDeadline = 600
	}
	if cfg.MaxWallClock <= 0 {
		cfg.MaxWallClock = 10 * time.Second
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxShrinkReplays <= 0 {
		cfg.MaxShrinkReplays = 400
	}
	return cfg
}

// Campaign is a named batch of cases run under one config.
type Campaign struct {
	Name   string
	Cases  []Case
	Config Config
}

// Run executes every case across a bounded worker pool. Results land at
// their case's index, so the report order is deterministic regardless of
// scheduling, and each case is itself seeded — the whole report is a
// reproducible function of (cases, config).
func (cmp *Campaign) Run() *Report {
	cfg := cmp.Config.withDefaults()
	cfg.Obs.Emit("soak.campaign.started",
		"campaign", cmp.Name, "cases", strconv.Itoa(len(cmp.Cases)))
	runs := make([]RunReport, len(cmp.Cases))
	idx := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range idx {
				runs[j] = RunCase(cmp.Cases[j], cfg)
			}
		}()
	}
	for j := range cmp.Cases {
		idx <- j
	}
	close(idx)
	wg.Wait()
	rep := &Report{Campaign: cmp.Name, Runs: runs}
	rep.summarize()
	cfg.Obs.Emit("soak.campaign.finished",
		"campaign", cmp.Name,
		"total", strconv.Itoa(rep.Summary.Total),
		"complete", strconv.Itoa(rep.Summary.Complete),
		"unexpected", strconv.Itoa(rep.Summary.UnexpectedViolations))
	return rep
}

// Run outcomes.
const (
	// OutcomeComplete: Y = X, no violation.
	OutcomeComplete = "complete"
	// OutcomeSafety: Y stopped being a prefix of X.
	OutcomeSafety = "safety-violation"
	// OutcomeLivenessStall: the progress watchdog fired on a fair run.
	OutcomeLivenessStall = "liveness-stall"
	// OutcomeUnfairStall: the watchdog fired on an unfair run (starvation
	// measured, nothing owed).
	OutcomeUnfairStall = "stalled-unfair"
	// OutcomeQuiescent: sender done, channel drained, Y incomplete — the
	// run is dead regardless of schedule.
	OutcomeQuiescent = "quiescent-incomplete"
	// OutcomeMaxSteps: step budget exhausted, inconclusive.
	OutcomeMaxSteps = "max-steps"
	// OutcomeWallClock: wall-clock budget exhausted, inconclusive.
	OutcomeWallClock = "wall-clock-exceeded"
	// OutcomeError: the harness itself failed (alphabet escape, impossible
	// action) — always unexpected.
	OutcomeError = "mechanical-error"
)

// Violation classes (empty string = none).
const (
	ViolationSafety       = "safety"
	ViolationLiveness     = "liveness"
	ViolationConservation = "conservation"
	ViolationMechanical   = "mechanical"
)

// RunCase executes one case under cfg: build, run with watchdogs, audit
// the trace, classify, and (for safety violations) shrink the
// counterexample.
func RunCase(c Case, cfg Config) RunReport {
	cfg = cfg.withDefaults()
	rep := RunReport{
		Protocol:  c.protocolName(),
		Channel:   c.Kind.String(),
		Adversary: c.Adversary,
		Plan:      c.planName(),
		Seed:      c.Seed,
		Fair:      c.Fair,
		MayFail:   c.MayFail,
	}
	w, adv, plan, err := c.build()
	if err != nil {
		rep.Outcome = OutcomeError
		rep.Violation = ViolationMechanical
		rep.Error = err.Error()
		rep.Expected = false
		return rep
	}
	rep.InModel = plan.InModel()
	cfg.Obs.Emit("soak.run.started", "case", c.ID())
	w.StartTrace()
	res, runErr := sim.Run(w, adv, sim.Config{
		MaxSteps:         cfg.MaxSteps,
		StopWhenComplete: true,
		ProgressDeadline: cfg.ProgressDeadline,
		MaxWallClock:     cfg.MaxWallClock,
		Obs:              cfg.Obs,
	})
	rep.Steps = res.Steps
	rep.Output = res.Output.String()
	if res.WallClockExceeded {
		rep.CutStep = res.CutStep
	}

	switch {
	case runErr != nil:
		rep.Outcome = OutcomeError
		rep.Violation = ViolationMechanical
		rep.Error = runErr.Error()
	case res.SafetyViolation != nil:
		rep.Outcome = OutcomeSafety
		rep.Violation = ViolationSafety
		rep.Error = res.SafetyViolation.Error()
	case res.OutputComplete:
		rep.Outcome = OutcomeComplete
	case res.Stalled && c.Fair:
		rep.Outcome = OutcomeLivenessStall
		rep.Violation = ViolationLiveness
		rep.Error = fmt.Sprintf("no output progress for %d steps (stalled at step %d with Y = %s)",
			cfg.ProgressDeadline, res.StallStep, res.Output)
	case res.Stalled:
		rep.Outcome = OutcomeUnfairStall
	case res.WallClockExceeded:
		rep.Outcome = OutcomeWallClock
	case res.Quiescent:
		rep.Outcome = OutcomeQuiescent
		rep.Violation = ViolationLiveness
		rep.Error = fmt.Sprintf("quiescent with Y = %s (nothing in flight can extend it)", res.Output)
	default:
		rep.Outcome = OutcomeMaxSteps
	}

	rep.Audit = auditTrace(w, plan, c.Kind)
	if rep.Violation == "" && rep.Audit != auditOK && rep.Audit != auditSkipped {
		rep.Violation = ViolationConservation
	}
	rep.Expected = rep.Violation == "" || (c.MayFail && rep.Violation != ViolationMechanical)

	if rep.Violation != "" {
		cfg.Obs.Emit("soak.violation.captured",
			"case", c.ID(), "class", rep.Violation, "expected", strconv.FormatBool(rep.Expected))
	}
	if rep.Violation == ViolationSafety && !cfg.DisableShrink && w.Trace != nil {
		rep.Counterexample = shrinkCase(c, w.Trace, cfg.MaxShrinkReplays, cfg.Obs)
	}
	observeRunReport(cfg.Obs, rep)
	return rep
}

// observeRunReport flushes one classified cell into the registry,
// mirroring the Summary buckets so the metrics cross-check the report.
func observeRunReport(r *obs.Registry, rep RunReport) {
	if r == nil {
		return
	}
	r.Counter("soak_cells_total").Inc()
	switch {
	case rep.Violation != "" && rep.Expected:
		r.Counter("soak_cells_expected_violation_total").Inc()
	case rep.Violation != "":
		r.Counter("soak_cells_unexpected_violation_total").Inc()
	case rep.Outcome == OutcomeComplete:
		r.Counter("soak_cells_complete_total").Inc()
	default:
		r.Counter("soak_cells_inconclusive_total").Inc()
	}
	r.Emit("soak.run.finished",
		"case", rep.ID(), "outcome", rep.Outcome, "steps", strconv.Itoa(rep.Steps))
}

const (
	auditOK      = "ok"
	auditSkipped = "skipped"
)

// auditTrace re-checks the recorded run with the independent auditor.
// Corrupting plans are skipped (delivered-but-never-sent is precisely what
// corruption fabricates), as are kinds whose fault menu fits neither
// conservation law (FIFO duplication delivers without consuming).
func auditTrace(w *sim.World, plan *faults.Plan, kind channel.Kind) string {
	if w.Trace == nil || plan.Corrupting() {
		return auditSkipped
	}
	var mode check.Mode
	switch kind {
	case channel.KindDup:
		mode = check.ModeDup
	case channel.KindDel, channel.KindReorder:
		mode = check.ModeDel
	default:
		return auditSkipped
	}
	audit, err := check.Audit(w.Trace, mode)
	if err != nil {
		return err.Error()
	}
	if !audit.ConservationOK {
		return audit.Errors[0].Error()
	}
	return auditOK
}
