package soak

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"seqtx/internal/channel"
	"seqtx/internal/msg"
	"seqtx/internal/protocol"
	"seqtx/internal/registry"
	"seqtx/internal/seq"
	"seqtx/internal/trace"
)

// registryParamsM3 is the alpha-protocol parameterization the tests use.
var registryParamsM3 = registry.Params{M: 3}

// testConfig keeps campaign tests fast while leaving every verdict
// mechanism (watchdog, audit, shrink) armed.
func testConfig() Config {
	return Config{
		MaxSteps:         2500,
		ProgressDeadline: 400,
		MaxWallClock:     30 * time.Second,
		MaxShrinkReplays: 300,
	}
}

// TestStandardCampaignExpectations is the headline acceptance test: the
// full matrix runs deterministically, every cell that promised to
// survive does (the tight protocol under every in-model plan included),
// and the out-of-model plans produce at least one captured, shrunk,
// replay-confirmed counterexample on a weaker protocol.
func TestStandardCampaignExpectations(t *testing.T) {
	cmp := StandardCampaign(1, 1)
	cmp.Config = testConfig()
	rep := cmp.Run()
	if !rep.Ok() {
		for _, run := range rep.Unexpected() {
			t.Errorf("unexpected violation: %s: %s (%s)", run.ID(), run.Violation, run.Error)
		}
		t.Fatalf("campaign not OK: %+v", rep.Summary)
	}
	if rep.Summary.Total != len(cmp.Cases) {
		t.Fatalf("summary total %d != %d cases", rep.Summary.Total, len(cmp.Cases))
	}

	// The tight protocol must come out clean on every in-model cell.
	for _, run := range rep.Runs {
		if run.Protocol == "alpha" && run.InModel {
			if run.Outcome != OutcomeComplete {
				t.Errorf("alpha in-model cell %s: outcome %s (%s)", run.ID(), run.Outcome, run.Error)
			}
			if run.Audit != auditOK && run.Audit != auditSkipped {
				t.Errorf("alpha in-model cell %s: audit %s", run.ID(), run.Audit)
			}
		}
	}

	// At least one out-of-model plan must yield a shrunk counterexample on
	// a weaker protocol, and shrinking must actually shrink on average
	// (crash/corrupt traces carry long fair prefixes).
	var shrunkOutOfModel int
	for _, run := range rep.Runs {
		cex := run.Counterexample
		if cex == nil || run.InModel {
			continue
		}
		if run.Protocol == "alpha" {
			continue // alpha failing even out-of-model would be news, but not this test's
		}
		if !cex.ReplayOK {
			t.Errorf("%s: shrunk counterexample does not replay", run.ID())
			continue
		}
		if cex.ShrunkSteps > cex.OriginalSteps {
			t.Errorf("%s: shrink grew the trace (%d -> %d)", run.ID(), cex.OriginalSteps, cex.ShrunkSteps)
		}
		shrunkOutOfModel++
	}
	if shrunkOutOfModel == 0 {
		t.Error("no out-of-model plan produced a replayable shrunk counterexample")
	}
	if rep.Summary.ExpectedViolations == 0 {
		t.Error("campaign found no expected violations: the fault menu is toothless")
	}
}

// TestCampaignDeterminism pins that two runs of the same seeded campaign
// produce byte-identical JSON reports (the worker pool must not leak
// scheduling into the artifact).
func TestCampaignDeterminism(t *testing.T) {
	t.Parallel()
	render := func(workers int) []byte {
		cmp := SmokeCampaign(3)
		cmp.Config = testConfig()
		cmp.Config.Workers = workers
		var buf bytes.Buffer
		if err := cmp.Run().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(1), render(4)
	if !bytes.Equal(a, b) {
		t.Fatal("same campaign, different reports across worker counts")
	}
}

// TestCrashCounterexampleShrinksAndReplays runs the one cell known to
// break stenning (receiver crash-restart on a dup channel) and checks
// the full capture → shrink → replay chain on it.
func TestCrashCounterexampleShrinksAndReplays(t *testing.T) {
	t.Parallel()
	c := Case{
		Protocol:  "stenning",
		Input:     seq.FromInts(2, 0, 1),
		Kind:      channel.KindDup,
		Adversary: "random",
		Plan:      "crash-receiver",
		Seed:      7,
		Fair:      true,
		MayFail:   true,
	}
	rep := RunCase(c, testConfig())
	if rep.Outcome != OutcomeSafety {
		t.Fatalf("outcome = %s (%s), want %s", rep.Outcome, rep.Error, OutcomeSafety)
	}
	if !rep.Expected {
		t.Fatal("a MayFail violation must be expected")
	}
	cex := rep.Counterexample
	if cex == nil {
		t.Fatal("no counterexample captured")
	}
	if !cex.ReplayOK {
		t.Fatal("shrunk counterexample does not replay")
	}
	if cex.ShrunkSteps >= cex.OriginalSteps {
		t.Errorf("ddmin removed nothing (%d -> %d steps)", cex.OriginalSteps, cex.ShrunkSteps)
	}
	// Replay the artifact once more ourselves: the trace alone (plus the
	// case coordinates) must reproduce the violation.
	w, err := Replay(c, cex.Trace.Actions())
	if err != nil {
		t.Fatal(err)
	}
	if w.SafetyViolation == nil {
		t.Fatal("replaying the reported trace did not reproduce the violation")
	}
	// And it must survive a JSON round trip (the report is the artifact):
	// the decoded trace replays to the same violation.
	data, err := json.Marshal(cex.Trace)
	if err != nil {
		t.Fatal(err)
	}
	var decoded trace.Trace
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	w2, err := Replay(c, decoded.Actions())
	if err != nil {
		t.Fatal(err)
	}
	if w2.SafetyViolation == nil {
		t.Fatal("JSON-round-tripped trace did not reproduce the violation")
	}
}

// silentSender never transmits anything; silentReceiver never writes.
// The pair is a legal protocol that simply fails liveness — the probe
// for the progress watchdog.
type silentSender struct{}

func (silentSender) Step(protocol.Event) []msg.Msg { return nil }
func (silentSender) Alphabet() msg.Alphabet        { return msg.Alphabet{} }
func (silentSender) Done() bool                    { return false }
func (s silentSender) Clone() protocol.Sender      { return s }
func (silentSender) Key() string                   { return "silent" }

type silentReceiver struct{}

func (silentReceiver) Step(protocol.Event) ([]msg.Msg, seq.Seq) { return nil, nil }
func (silentReceiver) Alphabet() msg.Alphabet                   { return msg.Alphabet{} }
func (r silentReceiver) Clone() protocol.Receiver               { return r }
func (silentReceiver) Key() string                              { return "silent" }

func silentSpec() protocol.Spec {
	return protocol.Spec{
		Name:        "silent",
		Description: "sends nothing, writes nothing (watchdog probe)",
		NewSender:   func(seq.Seq) (protocol.Sender, error) { return silentSender{}, nil },
		NewReceiver: func() (protocol.Receiver, error) { return silentReceiver{}, nil },
	}
}

// TestWatchdogReportsLivenessStall feeds the campaign a protocol that
// never makes progress on a fair schedule: the progress watchdog must
// kill the run and report a liveness violation, not burn the step budget
// or hang.
func TestWatchdogReportsLivenessStall(t *testing.T) {
	t.Parallel()
	c := Case{
		Spec:      silentSpec(),
		Input:     seq.FromInts(0, 1),
		Kind:      channel.KindDup,
		Adversary: "roundrobin",
		Plan:      "none",
		Seed:      1,
		Fair:      true,
	}
	cfg := testConfig()
	rep := RunCase(c, cfg)
	if rep.Outcome != OutcomeLivenessStall {
		t.Fatalf("outcome = %s (%s), want %s", rep.Outcome, rep.Error, OutcomeLivenessStall)
	}
	if rep.Violation != ViolationLiveness {
		t.Fatalf("violation = %q, want %q", rep.Violation, ViolationLiveness)
	}
	if rep.Expected {
		t.Fatal("an unprovoked liveness failure must be unexpected")
	}
	if rep.Steps >= cfg.MaxSteps {
		t.Fatalf("watchdog never fired: run consumed the whole budget (%d steps)", rep.Steps)
	}
	// The same cell on an unfair schedule owes nothing: no violation.
	c.Fair = false
	rep = RunCase(c, cfg)
	if rep.Outcome != OutcomeUnfairStall || rep.Violation != "" {
		t.Fatalf("unfair stall misclassified: outcome %s, violation %q", rep.Outcome, rep.Violation)
	}
}

// TestWallClockCutIsInconclusive pins the watchdog ordering end to end:
// a run cut by the wall-clock budget — even on a fair schedule with a
// protocol that would eventually have been convicted of a liveness stall
// — is classified inconclusive, never a liveness verdict. The budget is
// polled every 256 steps, so with ProgressDeadline > 255 the wall-clock
// cut (step 255) always lands before the stall watchdog could fire.
func TestWallClockCutIsInconclusive(t *testing.T) {
	t.Parallel()
	c := Case{
		Spec:      silentSpec(),
		Input:     seq.FromInts(0, 1),
		Kind:      channel.KindDup,
		Adversary: "roundrobin",
		Plan:      "none",
		Seed:      1,
		Fair:      true, // fair: a stall verdict WOULD be a liveness violation
	}
	cfg := testConfig()
	cfg.MaxWallClock = 1 // 1ns: exhausted by the first poll
	rep := RunCase(c, cfg)
	if rep.Outcome != OutcomeWallClock {
		t.Fatalf("outcome = %s (%s), want %s", rep.Outcome, rep.Error, OutcomeWallClock)
	}
	if rep.Violation != "" {
		t.Fatalf("wall-clock cut charged a violation: %q", rep.Violation)
	}
	if !rep.Expected {
		t.Fatal("inconclusive cut must be expected (not a campaign failure)")
	}
	if rep.CutStep != 255 {
		t.Fatalf("CutStep = %d, want 255 (first wall-clock poll)", rep.CutStep)
	}
	// Through the report: the cut lands in the inconclusive bucket and
	// does not fail the campaign — Ok() is what drives stpsoak's exit 0.
	report := Report{Campaign: "wallclock-probe", Runs: []RunReport{rep}}
	report.Finalize()
	if report.Summary.Inconclusive != 1 || report.Summary.UnexpectedViolations != 0 {
		t.Fatalf("summary = %+v, want 1 inconclusive, 0 unexpected", report.Summary)
	}
	if !report.Ok() {
		t.Fatal("Ok() = false: a wall-clock cut must not fail the campaign")
	}
	// The cut step survives the JSON artifact (replay contract).
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"cut_step": 255`)) && !bytes.Contains(data, []byte(`"cut_step":255`)) {
		t.Fatalf("cut_step missing from JSON: %s", data)
	}
}

// TestMechanicalErrorsSurface pins that unknown names come back as
// mechanical errors, never as panics or silent successes.
func TestMechanicalErrorsSurface(t *testing.T) {
	t.Parallel()
	for _, c := range []Case{
		{Protocol: "no-such-protocol", Input: seq.FromInts(0), Kind: channel.KindDup, Adversary: "roundrobin"},
		{Protocol: "alpha", Params: registryParamsM3, Input: seq.FromInts(2, 0, 1), Kind: channel.KindDup, Adversary: "no-such-adversary"},
		{Protocol: "alpha", Params: registryParamsM3, Input: seq.FromInts(2, 0, 1), Kind: channel.KindDup, Adversary: "roundrobin", Plan: "no-such-plan"},
	} {
		rep := RunCase(c, testConfig())
		if rep.Outcome != OutcomeError || rep.Violation != ViolationMechanical || rep.Expected {
			t.Errorf("%s: outcome %s violation %q expected %v, want surfaced mechanical error",
				c.ID(), rep.Outcome, rep.Violation, rep.Expected)
		}
		if !strings.Contains(rep.Error, "unknown") {
			t.Errorf("%s: error %q does not name the unknown component", c.ID(), rep.Error)
		}
	}
}
