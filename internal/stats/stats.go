// Package stats provides the small summary statistics the experiment
// harness reports (means, percentiles, linear trend) using only the
// standard library.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of observations.
type Summary struct {
	N        int
	Min, Max float64
	Mean     float64
	P50, P90 float64
	P99      float64
	// StdDev is the sample standard deviation (Bessel-corrected, ÷(n−1)):
	// the observations are samples of a run distribution, not the whole
	// population. A single observation has StdDev 0.
	StdDev float64
}

// Summarize computes a Summary. An empty sample yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var sq float64
		for _, x := range xs {
			d := x - s.Mean
			sq += d * d
		}
		s.StdDev = math.Sqrt(sq / float64(len(xs)-1))
	}
	sorted := append([]float64{}, xs...)
	sort.Float64s(sorted)
	s.P50 = percentile(sorted, 0.50)
	s.P90 = percentile(sorted, 0.90)
	s.P99 = percentile(sorted, 0.99)
	return s
}

// percentile takes the nearest-rank percentile of a sorted sample.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%.0f p90=%.0f p99=%.0f min=%.0f max=%.0f",
		s.N, s.Mean, s.P50, s.P90, s.P99, s.Min, s.Max)
}

// LinearFit fits y = a + b*x by least squares and returns (a, b). It
// reports how strongly a series grows: the experiment harness uses the
// slope to distinguish constant recovery (bounded protocols) from growth
// proportional to the sequence length (unbounded ones).
func LinearFit(xs, ys []float64) (a, b float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, fmt.Errorf("stats: mismatched series lengths %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, 0, fmt.Errorf("stats: need at least 2 points, got %d", len(xs))
	}
	// All-equal xs make the normal equations singular; catch them exactly
	// rather than trusting den == 0, which floating-point cancellation can
	// miss (n*sxx - sx*sx may land on a tiny nonzero for large equal xs).
	allEqual := true
	for _, x := range xs[1:] {
		if x != xs[0] {
			allEqual = false
			break
		}
	}
	if allEqual {
		return 0, 0, fmt.Errorf("stats: degenerate x values (all equal to %g)", xs[0])
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	n := float64(len(xs))
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, fmt.Errorf("stats: degenerate x values")
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	return a, b, nil
}
