package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	t.Parallel()
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary = %+v", s)
	}
	if s.Mean != 3 {
		t.Errorf("Mean = %f", s.Mean)
	}
	if s.P50 != 3 {
		t.Errorf("P50 = %f", s.P50)
	}
	if s.P90 != 5 {
		t.Errorf("P90 = %f", s.P90)
	}
	// Sample standard deviation: sum of squares 10 over n-1 = 4.
	if math.Abs(s.StdDev-math.Sqrt(2.5)) > 1e-9 {
		t.Errorf("StdDev = %f, want sqrt(2.5)", s.StdDev)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

// TestSummarizeTable pins the sample (Bessel-corrected) estimator and the
// percentile trio across representative shapes.
func TestSummarizeTable(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name          string
		xs            []float64
		stdDev        float64
		p50, p90, p99 float64
	}{
		{"two-points", []float64{2, 4}, math.Sqrt2, 2, 4, 4},
		{"constant", []float64{5, 5, 5, 5}, 0, 5, 5, 5},
		{"one-to-ten", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
			math.Sqrt(82.5 / 9.0), 5, 9, 10},
		// 49 zeros + one spike: only P99 (nearest rank 50) sees the tail.
		{"heavy-tail", append(make([]float64, 49), 1000),
			100 * math.Sqrt2, 0, 0, 1000},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			s := Summarize(tc.xs)
			if math.Abs(s.StdDev-tc.stdDev) > 1e-9 {
				t.Errorf("StdDev = %v, want %v", s.StdDev, tc.stdDev)
			}
			if s.P50 != tc.p50 || s.P90 != tc.p90 || s.P99 != tc.p99 {
				t.Errorf("P50/P90/P99 = %v/%v/%v, want %v/%v/%v",
					s.P50, s.P90, s.P99, tc.p50, tc.p90, tc.p99)
			}
		})
	}
}

// TestPercentileTable pins nearest-rank semantics, P99 included.
func TestPercentileTable(t *testing.T) {
	t.Parallel()
	sorted := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	tests := []struct {
		p    float64
		want float64
	}{
		{0.50, 50}, {0.90, 90}, {0.99, 100}, {0.01, 10}, {1.0, 100},
	}
	for _, tc := range tests {
		if got := percentile(sorted, tc.p); got != tc.want {
			t.Errorf("percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := percentile(nil, 0.99); got != 0 {
		t.Errorf("percentile(empty) = %v, want 0", got)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	t.Parallel()
	s := Summarize(nil)
	if s.N != 0 {
		t.Errorf("N = %d", s.N)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	t.Parallel()
	s := Summarize([]float64{7})
	if s.Min != 7 || s.Max != 7 || s.Mean != 7 || s.P50 != 7 || s.P90 != 7 || s.StdDev != 0 {
		t.Errorf("summary = %+v", s)
	}
}

func TestSummarizeProperties(t *testing.T) {
	t.Parallel()
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		s := Summarize(xs)
		return s.Min <= s.Mean && s.Mean <= s.Max &&
			s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.Max &&
			s.StdDev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLinearFitExact(t *testing.T) {
	t.Parallel()
	a, b, err := LinearFit([]float64{1, 2, 3}, []float64{5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-3) > 1e-9 || math.Abs(b-2) > 1e-9 {
		t.Errorf("fit = (%f, %f), want (3, 2)", a, b)
	}
}

func TestLinearFitFlat(t *testing.T) {
	t.Parallel()
	_, b, err := LinearFit([]float64{1, 2, 3, 4}, []float64{6, 6, 6, 6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b) > 1e-9 {
		t.Errorf("slope = %f, want 0", b)
	}
}

func TestLinearFitErrors(t *testing.T) {
	t.Parallel()
	if _, _, err := LinearFit([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, _, err := LinearFit([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("degenerate x accepted")
	}
}
