package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	t.Parallel()
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary = %+v", s)
	}
	if s.Mean != 3 {
		t.Errorf("Mean = %f", s.Mean)
	}
	if s.P50 != 3 {
		t.Errorf("P50 = %f", s.P50)
	}
	if s.P90 != 5 {
		t.Errorf("P90 = %f", s.P90)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-9 {
		t.Errorf("StdDev = %f", s.StdDev)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	t.Parallel()
	s := Summarize(nil)
	if s.N != 0 {
		t.Errorf("N = %d", s.N)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	t.Parallel()
	s := Summarize([]float64{7})
	if s.Min != 7 || s.Max != 7 || s.Mean != 7 || s.P50 != 7 || s.P90 != 7 || s.StdDev != 0 {
		t.Errorf("summary = %+v", s)
	}
}

func TestSummarizeProperties(t *testing.T) {
	t.Parallel()
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		s := Summarize(xs)
		return s.Min <= s.Mean && s.Mean <= s.Max &&
			s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.Max &&
			s.StdDev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLinearFitExact(t *testing.T) {
	t.Parallel()
	a, b, err := LinearFit([]float64{1, 2, 3}, []float64{5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-3) > 1e-9 || math.Abs(b-2) > 1e-9 {
		t.Errorf("fit = (%f, %f), want (3, 2)", a, b)
	}
}

func TestLinearFitFlat(t *testing.T) {
	t.Parallel()
	_, b, err := LinearFit([]float64{1, 2, 3, 4}, []float64{6, 6, 6, 6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b) > 1e-9 {
		t.Errorf("slope = %f, want 0", b)
	}
}

func TestLinearFitErrors(t *testing.T) {
	t.Parallel()
	if _, _, err := LinearFit([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, _, err := LinearFit([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("degenerate x accepted")
	}
}
