// Package tablefmt renders small result tables and series as aligned
// ASCII text — the output format of the experiment harness (EXPERIMENTS.md
// is regenerated from these).
package tablefmt

import (
	"fmt"
	"strings"
)

// Table is a titled grid with a header row.
type Table struct {
	Title  string
	Notes  []string
	Header []string
	Rows   [][]string
}

// New returns an empty table with the given title and column header.
func New(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row, padding or truncating to the header width.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row of formatted values.
func (t *Table) AddRowf(format string, cells ...any) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		parts[i] = fmt.Sprint(c)
	}
	_ = format // reserved: per-cell formats
	t.AddRow(parts...)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if l := len([]rune(c)); l > widths[i] {
				widths[i] = l
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteString("\n")
	}
	line(t.Header)
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*note: %s*\n", n)
	}
	return b.String()
}

func pad(s string, w int) string {
	if l := len([]rune(s)); l < w {
		return s + strings.Repeat(" ", w-l)
	}
	return s
}
