package tablefmt

import (
	"strings"
	"testing"
)

func TestStringAlignment(t *testing.T) {
	t.Parallel()
	tab := New("title", "col", "longer column")
	tab.AddRow("a", "b")
	tab.AddRow("longer cell", "c")
	tab.AddNote("a note %d", 7)
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "title" {
		t.Errorf("first line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "col") || !strings.Contains(lines[1], "longer column") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("rule = %q", lines[2])
	}
	if !strings.Contains(out, "note: a note 7") {
		t.Error("note missing")
	}
	// All data lines equally wide (alignment).
	if len(lines[1]) < len("col  longer column") {
		t.Error("header not padded")
	}
}

func TestAddRowPadsAndTruncates(t *testing.T) {
	t.Parallel()
	tab := New("", "a", "b")
	tab.AddRow("1")           // short: padded
	tab.AddRow("1", "2", "3") // long: truncated
	if len(tab.Rows[0]) != 2 || tab.Rows[0][1] != "" {
		t.Errorf("short row = %v", tab.Rows[0])
	}
	if len(tab.Rows[1]) != 2 {
		t.Errorf("long row = %v", tab.Rows[1])
	}
}

func TestAddRowf(t *testing.T) {
	t.Parallel()
	tab := New("", "x", "y")
	tab.AddRowf("", 12, true)
	if tab.Rows[0][0] != "12" || tab.Rows[0][1] != "true" {
		t.Errorf("row = %v", tab.Rows[0])
	}
}

func TestMarkdown(t *testing.T) {
	t.Parallel()
	tab := New("Ti", "h1", "h2")
	tab.AddRow("a", "b")
	tab.AddNote("n")
	md := tab.Markdown()
	for _, want := range []string{"**Ti**", "| h1 | h2 |", "| --- | --- |", "| a | b |", "*note: n*"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestUnicodeWidths(t *testing.T) {
	t.Parallel()
	tab := New("", "α", "b")
	tab.AddRow("ε", "x")
	out := tab.String()
	if !strings.Contains(out, "ε") {
		t.Error("unicode cell lost")
	}
}
