package trace

import (
	"encoding/json"
	"fmt"

	"seqtx/internal/channel"
	"seqtx/internal/msg"
	"seqtx/internal/seq"
)

// The wire format keeps traces readable as artifacts: counterexample runs
// from the model checker can be saved, diffed, and replayed (the Scripted
// adversary accepts a trace's action list).

// actionJSON is the wire form of an Action.
type actionJSON struct {
	Kind string `json:"kind"`
	Dir  string `json:"dir,omitempty"`
	Msg  string `json:"msg,omitempty"`
	Seed int64  `json:"seed,omitempty"`
}

// entryJSON is the wire form of an Entry.
type entryJSON struct {
	Time   int        `json:"t"`
	Act    actionJSON `json:"act"`
	Sends  []string   `json:"sends,omitempty"`
	Writes []int      `json:"writes,omitempty"`
}

// traceJSON is the wire form of a Trace.
type traceJSON struct {
	Name    string      `json:"name,omitempty"`
	Input   []int       `json:"input"`
	Entries []entryJSON `json:"entries"`
}

var kindNames = map[ActKind]string{
	ActTickS:      "tickS",
	ActTickR:      "tickR",
	ActDeliver:    "deliver",
	ActDeliverDup: "deliver+dup",
	ActDrop:       "drop",
	ActCrashS:     "crashS",
	ActCrashR:     "crashR",
	ActScrambleS:  "scrambleS",
	ActScrambleR:  "scrambleR",
}

// hasDirMsg reports whether the kind carries a direction and message.
func hasDirMsg(k ActKind) bool {
	switch k {
	case ActTickS, ActTickR, ActCrashS, ActCrashR, ActScrambleS, ActScrambleR:
		return false
	default:
		return true
	}
}

// hasSeed reports whether the kind carries a corruption seed.
func hasSeed(k ActKind) bool { return k == ActScrambleS || k == ActScrambleR }

var kindValues = func() map[string]ActKind {
	m := make(map[string]ActKind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

var dirNames = map[channel.Dir]string{
	channel.SToR: "s2r",
	channel.RToS: "r2s",
}

var dirValues = map[string]channel.Dir{
	"s2r": channel.SToR,
	"r2s": channel.RToS,
}

// MarshalJSON implements json.Marshaler.
func (t *Trace) MarshalJSON() ([]byte, error) {
	out := traceJSON{Name: t.Name, Input: itemsToInts(t.Input)}
	for _, e := range t.Entries {
		ej := entryJSON{Time: e.Time, Act: actionJSON{Kind: kindNames[e.Act.Kind]}}
		if ej.Act.Kind == "" {
			return nil, fmt.Errorf("trace: unknown action kind %d", int(e.Act.Kind))
		}
		if hasDirMsg(e.Act.Kind) {
			ej.Act.Dir = dirNames[e.Act.Dir]
			ej.Act.Msg = string(e.Act.Msg)
		}
		if hasSeed(e.Act.Kind) {
			ej.Act.Seed = e.Act.Seed
		}
		for _, m := range e.Sends {
			ej.Sends = append(ej.Sends, string(m))
		}
		ej.Writes = itemsToInts(e.Writes)
		out.Entries = append(out.Entries, ej)
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (t *Trace) UnmarshalJSON(data []byte) error {
	var in traceJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	t.Name = in.Name
	t.Input = intsToItems(in.Input)
	t.Entries = nil
	for i, ej := range in.Entries {
		kind, ok := kindValues[ej.Act.Kind]
		if !ok {
			return fmt.Errorf("trace: entry %d: unknown action kind %q", i, ej.Act.Kind)
		}
		act := Action{Kind: kind}
		if hasDirMsg(kind) {
			dir, ok := dirValues[ej.Act.Dir]
			if !ok {
				return fmt.Errorf("trace: entry %d: unknown direction %q", i, ej.Act.Dir)
			}
			act.Dir = dir
			act.Msg = msg.Msg(ej.Act.Msg)
		}
		if hasSeed(kind) {
			act.Seed = ej.Act.Seed
		}
		e := Entry{Time: ej.Time, Act: act, Writes: intsToItems(ej.Writes)}
		for _, m := range ej.Sends {
			e.Sends = append(e.Sends, msg.Msg(m))
		}
		t.Entries = append(t.Entries, e)
	}
	return nil
}

// Actions returns the recorded action sequence — directly replayable by a
// Scripted adversary.
func (t *Trace) Actions() []Action {
	acts := make([]Action, len(t.Entries))
	for i, e := range t.Entries {
		acts[i] = e.Act
	}
	return acts
}

func itemsToInts(s seq.Seq) []int {
	out := make([]int, len(s))
	for i, v := range s {
		out[i] = int(v)
	}
	return out
}

func intsToItems(xs []int) seq.Seq {
	if len(xs) == 0 {
		return nil
	}
	out := make(seq.Seq, len(xs))
	for i, v := range xs {
		out[i] = seq.Item(v)
	}
	return out
}
