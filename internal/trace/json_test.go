package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"seqtx/internal/channel"
	"seqtx/internal/seq"
)

func TestJSONRoundTrip(t *testing.T) {
	t.Parallel()
	orig := sample()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != orig.Name || !back.Input.Equal(orig.Input) {
		t.Fatalf("header mismatch: %q %s", back.Name, back.Input)
	}
	if back.Len() != orig.Len() {
		t.Fatalf("entries: %d vs %d", back.Len(), orig.Len())
	}
	for i := range orig.Entries {
		a, b := orig.Entries[i], back.Entries[i]
		if a.Time != b.Time || a.Act.Key() != b.Act.Key() {
			t.Errorf("entry %d: %v vs %v", i, a, b)
		}
		if len(a.Sends) != len(b.Sends) {
			t.Errorf("entry %d sends: %v vs %v", i, a.Sends, b.Sends)
		}
		if !a.Writes.Equal(b.Writes) {
			t.Errorf("entry %d writes: %v vs %v", i, a.Writes, b.Writes)
		}
	}
	// Views survive the round trip.
	if orig.ReceiverView(-1).Key() != back.ReceiverView(-1).Key() {
		t.Error("receiver view changed across serialization")
	}
	if !orig.Output(-1).Equal(back.Output(-1)) {
		t.Error("output changed across serialization")
	}
}

func TestJSONWireFormatStable(t *testing.T) {
	t.Parallel()
	tr := &Trace{Name: "x", Input: seq.FromInts(1)}
	tr.Append(Entry{Time: 0, Act: Deliver(channel.SToR, "d:1"), Writes: seq.FromInts(1)})
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"kind":"deliver"`, `"dir":"s2r"`, `"msg":"d:1"`, `"writes":[1]`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("wire format missing %s:\n%s", want, data)
		}
	}
}

func TestJSONRejectsGarbage(t *testing.T) {
	t.Parallel()
	var tr Trace
	if err := json.Unmarshal([]byte(`{"entries":[{"act":{"kind":"teleport"}}]}`), &tr); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := json.Unmarshal([]byte(`{"entries":[{"act":{"kind":"deliver","dir":"up"}}]}`), &tr); err == nil {
		t.Error("unknown direction accepted")
	}
	if err := json.Unmarshal([]byte(`{`), &tr); err == nil {
		t.Error("truncated JSON accepted")
	}
}

func TestActionsReplayable(t *testing.T) {
	t.Parallel()
	tr := sample()
	acts := tr.Actions()
	if len(acts) != tr.Len() {
		t.Fatalf("Actions() = %d, want %d", len(acts), tr.Len())
	}
	for i, a := range acts {
		if a.Key() != tr.Entries[i].Act.Key() {
			t.Errorf("action %d mismatch", i)
		}
	}
}
