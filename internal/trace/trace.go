// Package trace records runs of an STP system: the sequence of scheduler
// actions together with the process reactions they triggered. A trace is
// the concrete counterpart of the paper's runs r = r(0), r(1), ...; the
// receiver view extracted from a trace is R's local state under the
// complete history interpretation (§2.3), which is what knowledge and
// indistinguishability are defined over.
package trace

import (
	"fmt"
	"strings"

	"seqtx/internal/channel"
	"seqtx/internal/msg"
	"seqtx/internal/seq"
)

// ActKind is the kind of a scheduler action.
type ActKind int

// Scheduler action kinds.
const (
	// ActTickS grants the sender a spontaneous step.
	ActTickS ActKind = iota + 1
	// ActTickR grants the receiver a spontaneous step.
	ActTickR
	// ActDeliver delivers one copy of a message in some direction.
	ActDeliver
	// ActDeliverDup delivers the head of a FIFO half without consuming it
	// (a duplication).
	ActDeliverDup
	// ActDrop silently deletes one in-flight copy (del and lossy-FIFO
	// channels only).
	ActDrop
	// ActCrashS resets the sender to its initial state (a crash-restart
	// fault: local state is lost, the channel and the tapes survive). This
	// is outside the paper's model — no adversary enumerates it from the
	// enabled set; only fault plans (internal/faults) inject it.
	ActCrashS
	// ActCrashR resets the receiver to its initial state. Y survives (R's
	// past writes are irrevocable), which is exactly what makes a receiver
	// crash dangerous: R forgets how much it already wrote.
	ActCrashR
	// ActScrambleS restarts the sender into seeded-arbitrary local state
	// (the self-stabilization adversary: a transient fault corrupts memory
	// rather than clearing it). The action's Seed makes the corruption
	// replayable.
	ActScrambleS
	// ActScrambleR restarts the receiver into seeded-arbitrary local
	// state. As with ActCrashR, Y survives.
	ActScrambleR
)

// String names the kind.
func (k ActKind) String() string {
	switch k {
	case ActTickS:
		return "tickS"
	case ActTickR:
		return "tickR"
	case ActDeliver:
		return "deliver"
	case ActDeliverDup:
		return "deliver+dup"
	case ActDrop:
		return "drop"
	case ActCrashS:
		return "crashS"
	case ActCrashR:
		return "crashR"
	case ActScrambleS:
		return "scrambleS"
	case ActScrambleR:
		return "scrambleR"
	default:
		return fmt.Sprintf("ActKind(%d)", int(k))
	}
}

// Action is one scheduler step: what the environment chose to happen.
type Action struct {
	Kind ActKind
	Dir  channel.Dir // for deliver/drop actions
	Msg  msg.Msg     // for deliver/drop actions
	Seed int64       // for scramble actions: the corruption's RNG seed
}

// TickS returns the sender-tick action.
func TickS() Action { return Action{Kind: ActTickS} }

// TickR returns the receiver-tick action.
func TickR() Action { return Action{Kind: ActTickR} }

// Deliver returns a delivery action.
func Deliver(d channel.Dir, m msg.Msg) Action {
	return Action{Kind: ActDeliver, Dir: d, Msg: m}
}

// DeliverDup returns a duplicating delivery action.
func DeliverDup(d channel.Dir, m msg.Msg) Action {
	return Action{Kind: ActDeliverDup, Dir: d, Msg: m}
}

// Drop returns a drop action.
func Drop(d channel.Dir, m msg.Msg) Action {
	return Action{Kind: ActDrop, Dir: d, Msg: m}
}

// CrashS returns the sender crash-restart action.
func CrashS() Action { return Action{Kind: ActCrashS} }

// CrashR returns the receiver crash-restart action.
func CrashR() Action { return Action{Kind: ActCrashR} }

// ScrambleS returns a sender scramble-restart action with the given
// corruption seed.
func ScrambleS(seed int64) Action { return Action{Kind: ActScrambleS, Seed: seed} }

// ScrambleR returns a receiver scramble-restart action.
func ScrambleR(seed int64) Action { return Action{Kind: ActScrambleR, Seed: seed} }

// String renders the action compactly.
func (a Action) String() string {
	switch a.Kind {
	case ActTickS, ActTickR, ActCrashS, ActCrashR:
		return a.Kind.String()
	case ActScrambleS, ActScrambleR:
		return fmt.Sprintf("%s[seed=%d]", a.Kind, a.Seed)
	default:
		return fmt.Sprintf("%s[%s,%s]", a.Kind, a.Dir, a.Msg)
	}
}

// Key returns a canonical encoding for deduplication.
func (a Action) Key() string { return a.String() }

// Entry is one recorded step: the action plus the stepped process's
// reaction (messages sent, items written).
type Entry struct {
	Time   int       // the step index (the paper's t: transition from (r,t))
	Act    Action    // the environment's choice
	Sends  []msg.Msg // messages emitted by the stepped process
	Writes seq.Seq   // items R appended to Y in this step
}

// String renders the entry.
func (e Entry) String() string {
	s := fmt.Sprintf("t=%-4d %s", e.Time, e.Act)
	if len(e.Sends) > 0 {
		parts := make([]string, len(e.Sends))
		for i, m := range e.Sends {
			parts[i] = string(m)
		}
		s += " sends{" + strings.Join(parts, ",") + "}"
	}
	if len(e.Writes) > 0 {
		s += " writes " + e.Writes.String()
	}
	return s
}

// Trace is a full recorded run.
type Trace struct {
	Name    string  // protocol name, for rendering
	Input   seq.Seq // X^r
	Entries []Entry
}

// Append records one entry.
func (t *Trace) Append(e Entry) { t.Entries = append(t.Entries, e) }

// Len returns the number of recorded steps.
func (t *Trace) Len() int { return len(t.Entries) }

// Output reconstructs Y after the first n steps (n = -1 for all).
func (t *Trace) Output(n int) seq.Seq {
	if n < 0 || n > len(t.Entries) {
		n = len(t.Entries)
	}
	var y seq.Seq
	for _, e := range t.Entries[:n] {
		y = append(y, e.Writes...)
	}
	return y
}

// String renders the whole trace, one entry per line.
func (t *Trace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "run of %s on X = %s (%d steps)\n", t.Name, t.Input, len(t.Entries))
	for _, e := range t.Entries {
		b.WriteString("  " + e.String() + "\n")
	}
	return b.String()
}

// ViewEvent is one event as seen by a single process: its own ticks and
// the deliveries it received. Drops and the peer's activity are invisible.
type ViewEvent struct {
	IsTick bool
	Msg    msg.Msg // valid when !IsTick
}

// Key renders the event canonically.
func (v ViewEvent) Key() string {
	if v.IsTick {
		return "·"
	}
	return "<" + string(v.Msg)
}

// View is a process's complete-history local state: the chronological
// list of events it has experienced. Because protocols are deterministic,
// a view determines everything about the process — its state, its sends,
// and (for R) its writes — so two points are ~_p-indistinguishable exactly
// when the p-views are equal.
type View []ViewEvent

// CloneView returns an independent copy of the view (named to avoid
// clashing with the slice-clone idiom of callers that embed views).
func (v View) CloneView() View {
	if v == nil {
		return nil
	}
	cp := make(View, len(v))
	copy(cp, v)
	return cp
}

// Key returns the canonical encoding of the view.
func (v View) Key() string {
	parts := make([]string, len(v))
	for i, e := range v {
		parts[i] = e.Key()
	}
	return strings.Join(parts, "")
}

// ReceiverView extracts R's view from the first n steps of the trace
// (n = -1 for all steps).
func (t *Trace) ReceiverView(n int) View {
	if n < 0 || n > len(t.Entries) {
		n = len(t.Entries)
	}
	var v View
	for _, e := range t.Entries[:n] {
		switch {
		case e.Act.Kind == ActTickR:
			v = append(v, ViewEvent{IsTick: true})
		case (e.Act.Kind == ActDeliver || e.Act.Kind == ActDeliverDup) && e.Act.Dir == channel.SToR:
			v = append(v, ViewEvent{Msg: e.Act.Msg})
		}
	}
	return v
}

// SenderView extracts S's view from the first n steps of the trace.
func (t *Trace) SenderView(n int) View {
	if n < 0 || n > len(t.Entries) {
		n = len(t.Entries)
	}
	var v View
	for _, e := range t.Entries[:n] {
		switch {
		case e.Act.Kind == ActTickS:
			v = append(v, ViewEvent{IsTick: true})
		case (e.Act.Kind == ActDeliver || e.Act.Kind == ActDeliverDup) && e.Act.Dir == channel.RToS:
			v = append(v, ViewEvent{Msg: e.Act.Msg})
		}
	}
	return v
}
