package trace

import (
	"strings"
	"testing"

	"seqtx/internal/channel"
	"seqtx/internal/msg"
	"seqtx/internal/seq"
)

func TestActionConstructorsAndStrings(t *testing.T) {
	t.Parallel()
	tests := []struct {
		act  Action
		want string
	}{
		{TickS(), "tickS"},
		{TickR(), "tickR"},
		{Deliver(channel.SToR, "m"), "deliver[S→R,m]"},
		{DeliverDup(channel.RToS, "k"), "deliver+dup[R→S,k]"},
		{Drop(channel.SToR, "m"), "drop[S→R,m]"},
	}
	for _, tt := range tests {
		if got := tt.act.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
		if tt.act.Key() != tt.act.String() {
			t.Errorf("Key != String for %v", tt.act)
		}
	}
	if got := ActKind(99).String(); got != "ActKind(99)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func sample() *Trace {
	tr := &Trace{Name: "test", Input: seq.FromInts(1, 2)}
	tr.Append(Entry{Time: 0, Act: TickS(), Sends: []msgT{"d:1"}})
	tr.Append(Entry{Time: 1, Act: Deliver(channel.SToR, "d:1"), Sends: []msgT{"a:1"}, Writes: seq.FromInts(1)})
	tr.Append(Entry{Time: 2, Act: TickR()})
	tr.Append(Entry{Time: 3, Act: Deliver(channel.RToS, "a:1")})
	tr.Append(Entry{Time: 4, Act: Drop(channel.SToR, "d:1")})
	tr.Append(Entry{Time: 5, Act: DeliverDup(channel.SToR, "d:2"), Writes: seq.FromInts(2)})
	return tr
}

func TestTraceOutput(t *testing.T) {
	t.Parallel()
	tr := sample()
	if y := tr.Output(-1); !y.Equal(seq.FromInts(1, 2)) {
		t.Errorf("Output(-1) = %s", y)
	}
	if y := tr.Output(2); !y.Equal(seq.FromInts(1)) {
		t.Errorf("Output(2) = %s", y)
	}
	if y := tr.Output(0); len(y) != 0 {
		t.Errorf("Output(0) = %s", y)
	}
	if tr.Len() != 6 {
		t.Errorf("Len() = %d", tr.Len())
	}
}

func TestReceiverView(t *testing.T) {
	t.Parallel()
	tr := sample()
	v := tr.ReceiverView(-1)
	// R sees: deliver d:1, tickR, deliver+dup d:2. Drops and R→S traffic
	// are invisible.
	if len(v) != 3 {
		t.Fatalf("view = %v", v)
	}
	if v[0].IsTick || v[0].Msg != "d:1" {
		t.Errorf("v[0] = %+v", v[0])
	}
	if !v[1].IsTick {
		t.Errorf("v[1] = %+v", v[1])
	}
	if v[2].Msg != "d:2" {
		t.Errorf("v[2] = %+v", v[2])
	}
	if got := tr.ReceiverView(2).Key(); got != "<d:1" {
		t.Errorf("partial view key = %q", got)
	}
}

func TestSenderView(t *testing.T) {
	t.Parallel()
	tr := sample()
	v := tr.SenderView(-1)
	// S sees: tickS, deliver a:1.
	if len(v) != 2 {
		t.Fatalf("view = %v", v)
	}
	if !v[0].IsTick || v[1].Msg != "a:1" {
		t.Errorf("view = %v", v)
	}
}

func TestViewKeyAndClone(t *testing.T) {
	t.Parallel()
	v := View{{IsTick: true}, {Msg: "x"}}
	if v.Key() != "·<x" {
		t.Errorf("Key() = %q", v.Key())
	}
	c := v.CloneView()
	c[0] = ViewEvent{Msg: "y"}
	if v[0].Msg == "y" {
		t.Error("CloneView shares storage")
	}
	if (View)(nil).CloneView() != nil {
		t.Error("CloneView(nil) != nil")
	}
}

func TestTraceString(t *testing.T) {
	t.Parallel()
	s := sample().String()
	for _, want := range []string{"run of test", "X = 1.2", "writes 1", "sends{d:1}", "drop[S→R,d:1]"} {
		if !strings.Contains(s, want) {
			t.Errorf("trace rendering missing %q:\n%s", want, s)
		}
	}
}

// msgT abbreviates msg.Msg in entry literals.
type msgT = msg.Msg
