package wire

import (
	"testing"

	"seqtx/internal/channel"
	"seqtx/internal/protocol"
	"seqtx/internal/protocol/steptest"
)

// Steady-state allocation contracts, enforced with testing.AllocsPerRun:
// the data plane's per-frame operations must not allocate once their
// buffers are warm. These are the regressions the pooled codec and the
// in-place batch accumulation exist to prevent — a future change that
// reintroduces a hidden malloc fails here, not in a benchmark someone
// has to remember to read.

// assertZeroAlloc runs f under AllocsPerRun and fails on any allocation.
func assertZeroAlloc(t *testing.T, name string, f func()) {
	t.Helper()
	if n := testing.AllocsPerRun(200, f); n != 0 {
		t.Errorf("%s: %.1f allocs/op in steady state, want 0", name, n)
	}
}

func TestCodecSteadyStateZeroAlloc(t *testing.T) {
	frame := Frame{Session: 42, Dir: channel.SToR, Msg: "d:3"}
	raw := EncodeFrame(frame)

	buf := make([]byte, 0, 64)
	assertZeroAlloc(t, "AppendFrame into reused buffer", func() {
		buf = AppendFrame(buf[:0], frame)
	})

	var v FrameView
	assertZeroAlloc(t, "DecodeFrameInto", func() {
		if err := DecodeFrameInto(&v, raw); err != nil {
			t.Fatal(err)
		}
	})

	frames := make([][]byte, 32)
	for i := range frames {
		frames[i] = raw
	}
	blob := make([]byte, 0, 2048)
	assertZeroAlloc(t, "AppendBatch into reused buffer", func() {
		blob = AppendBatch(blob[:0], frames)
	})

	split := func(f []byte) error { return DecodeFrameInto(&v, f) }
	assertZeroAlloc(t, "SplitBatch + DecodeFrameInto", func() {
		if err := SplitBatch(blob, split); err != nil {
			t.Fatal(err)
		}
	})
}

func TestIncrementalBatchZeroAlloc(t *testing.T) {
	frame := Frame{Session: 42, Dir: channel.SToR, Msg: "d:3"}
	buf := make([]byte, 0, 4096)
	var slot [batchLenPrefix]byte
	assertZeroAlloc(t, "seed + append + patch incremental blob", func() {
		buf = seedBatchBlob(buf[:0])
		for i := 0; i < 8; i++ {
			pfx := len(buf)
			buf = append(buf, slot[:]...)
			buf = AppendFrame(buf, frame)
			putPaddedUvarint(buf[pfx:pfx+batchLenPrefix], uint64(len(buf)-pfx-batchLenPrefix))
		}
		patchBatchCount(buf, 8)
	})
	// The accumulated blob must be a valid batch.
	n := 0
	var v FrameView
	if err := SplitBatch(buf, func(f []byte) error {
		n++
		return DecodeFrameInto(&v, f)
	}); err != nil {
		t.Fatalf("SplitBatch of incremental blob: %v", err)
	}
	if n != 8 {
		t.Fatalf("incremental blob split into %d frames, want 8", n)
	}
}

// TestStepSteadyStateZeroAlloc extends the data-plane contract to the
// protocol Step path itself: with the interned codec tables, every
// finite-alphabet protocol's steady-state sender tick, receiver
// recv-data, and sender recv-ack must not allocate. The steptest
// fixtures pin what "steady state" means per protocol (see that
// package); Stenning is exempt (Finite=false) because its unbounded
// sequence numbers make the codec dynamic by design.
func TestStepSteadyStateZeroAlloc(t *testing.T) {
	for _, f := range steptest.Fixtures() {
		if !f.Finite {
			continue
		}
		f := f
		t.Run(f.Name, func(t *testing.T) {
			s, r, err := f.New()
			if err != nil {
				t.Fatal(err)
			}
			// Extra warm ticks take the windowed senders through their
			// first stall→burst cycle so the one-time scratch-buffer
			// growth happens before measurement.
			for i := 0; i < 32; i++ {
				s.Step(protocol.TickEvent())
			}
			tickEv := protocol.TickEvent()
			assertZeroAlloc(t, f.Name+" sender tick", func() { s.Step(tickEv) })
			dataEv := protocol.RecvEvent(f.Data)
			assertZeroAlloc(t, f.Name+" receiver recv-data", func() { r.Step(dataEv) })
			ackEv := protocol.RecvEvent(f.Ack)
			assertZeroAlloc(t, f.Name+" sender recv-ack", func() { s.Step(ackEv) })
		})
	}
}

func TestBufferPoolZeroAlloc(t *testing.T) {
	// Warm both classes first so the pools hold a buffer.
	putBuf(getBuf(16))
	putBuf(getBuf(blobCap))
	assertZeroAlloc(t, "small buffer get/put cycle", func() {
		putBuf(getBuf(16))
	})
	assertZeroAlloc(t, "blob buffer get/put cycle", func() {
		putBuf(getBuf(blobCap))
	})
}
