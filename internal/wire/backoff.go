package wire

import (
	"time"
)

// BackoffCapFactor bounds the retransmission backoff: the interval
// between spontaneous sender steps doubles on every retransmission but
// never exceeds BackoffCapFactor times the session's base tick. The cap
// keeps a session recoverable — even after a long outage the sender
// probes at least every 32 ticks, so healing a partition is noticed
// within one capped interval.
const BackoffCapFactor = 32

// backoffJitter is the ± fraction applied to every armed interval. The
// draw comes from the session's seeded RNG, so jitter decorrelates
// sessions on a shared transport without costing replay determinism.
const backoffJitter = 0.25

// backoff is the sender's retransmission pacer state: exponential
// growth under consecutive retransmissions, reset on progress, capped,
// jittered. The mux pacer (goroutine engine) and the worker timer heap
// (event-loop engine) both tick at the base interval; backoff decides
// which of those ticks are due — so the mechanism adds no timers, only
// a time comparison per tick.
//
// The struct is pure (no goroutines, no clocks of its own) so the cap
// and growth law can be pinned by unit tests. The jitter stream is an
// inline SplitMix64 state — eight bytes per session — instead of a
// *rand.Rand, whose lagged-Fibonacci table costs ~5 KB each and would
// dominate per-session memory at a million sessions.
type backoff struct {
	base time.Duration
	max  time.Duration
	cur  time.Duration
	rng  uint64
	next time.Time
}

func newBackoff(base time.Duration, seed int64, now time.Time) backoff {
	b := backoff{
		base: base,
		max:  BackoffCapFactor * base,
		cur:  base,
		rng:  uint64(seed),
	}
	b.arm(now)
	return b
}

// splitmix64 advances the eight-byte jitter state and returns the next
// draw (Steele–Lea–Flood mixing, the same law as faults.SubSeed).
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// due reports whether a spontaneous step may fire at now.
func (b *backoff) due(now time.Time) bool { return !now.Before(b.next) }

// arm schedules the next spontaneous step one jittered interval after
// now.
func (b *backoff) arm(now time.Time) { b.next = now.Add(b.jittered()) }

// jittered returns the current interval ±backoffJitter, drawn from the
// seeded stream.
func (b *backoff) jittered() time.Duration {
	u := float64(splitmix64(&b.rng)>>11) / (1 << 53) // uniform [0,1)
	f := 1 + backoffJitter*(2*u-1)
	return time.Duration(float64(b.cur) * f)
}

// grow doubles the interval after a retransmission, up to the cap.
func (b *backoff) grow() {
	b.cur *= 2
	if b.cur > b.max {
		b.cur = b.max
	}
}

// reset returns to the base interval on progress (a fresh send, or an
// acknowledgement that moved the sender forward).
func (b *backoff) reset() { b.cur = b.base }
