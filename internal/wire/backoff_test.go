package wire

import (
	"testing"
	"time"
)

// TestBackoffCapPinned pins the retransmission backoff law: doubling
// under consecutive retransmissions, a hard ceiling of BackoffCapFactor
// base ticks, jitter bounded by ±25%, and a reset straight back to the
// base interval on progress.
func TestBackoffCapPinned(t *testing.T) {
	base := time.Millisecond
	b := newBackoff(base, 42, time.Now())
	if b.cur != base {
		t.Fatalf("initial interval %v, want %v", b.cur, base)
	}
	want := base
	for i := 0; i < 100; i++ {
		b.grow()
		if want < BackoffCapFactor*base {
			want *= 2
		}
		if b.cur != want {
			t.Fatalf("after %d grows interval %v, want %v", i+1, b.cur, want)
		}
	}
	if b.cur != BackoffCapFactor*base {
		t.Fatalf("cap %v, want %v", b.cur, BackoffCapFactor*base)
	}
	lo := time.Duration(float64(b.cur) * (1 - backoffJitter))
	hi := time.Duration(float64(b.cur) * (1 + backoffJitter))
	for i := 0; i < 1000; i++ {
		if j := b.jittered(); j < lo || j > hi {
			t.Fatalf("jittered interval %v outside [%v, %v]", j, lo, hi)
		}
	}
	b.reset()
	if b.cur != base {
		t.Fatalf("after reset interval %v, want %v", b.cur, base)
	}
}

// TestBackoffDueness: arming schedules the next spontaneous step one
// jittered interval out — never before 75% of the current interval,
// always due by 125% of it.
func TestBackoffDueness(t *testing.T) {
	base := 8 * time.Millisecond
	now := time.Unix(0, 0)
	b := newBackoff(base, 7, now)
	for i := 0; i < 50; i++ {
		if b.due(now.Add(time.Duration(float64(base) * (1 - backoffJitter - 0.01)))) {
			t.Fatalf("arm %d: due before the jitter floor", i)
		}
		if !b.due(now.Add(time.Duration(float64(base) * (1 + backoffJitter + 0.01)))) {
			t.Fatalf("arm %d: not due after the jitter ceiling", i)
		}
		b.arm(now)
	}
}

// TestBackoffJitterSeedDeterminism: equal seeds draw equal jitter
// streams, so a session's pacing replays from its seed.
func TestBackoffJitterSeedDeterminism(t *testing.T) {
	now := time.Now()
	a := newBackoff(time.Millisecond, 99, now)
	b := newBackoff(time.Millisecond, 99, now)
	for i := 0; i < 64; i++ {
		if ja, jb := a.jittered(), b.jittered(); ja != jb {
			t.Fatalf("draw %d diverged: %v vs %v", i, ja, jb)
		}
		if i%5 == 0 {
			a.grow()
			b.grow()
		}
	}
}
