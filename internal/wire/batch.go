package wire

import (
	"encoding/binary"
	"fmt"
)

// Batch framing: several encoded frames coalesced into one wire blob so
// transports can amortize a syscall (UDP) or a channel handoff (inproc)
// across many frames. The format is strict and self-delimiting:
//
//	batchMagic, batchVersion, uvarint frame count,
//	then per frame: uvarint length, frame bytes.
//
// A batch is only a packaging of an ordered burst — every contained frame
// still carries its own header and checksum and is decoded frame-by-frame
// by the receiver, so batching changes nothing the impairment layer or
// the protocols can observe (DESIGN.md §9). The first byte distinguishes
// a batch blob (batchMagic) from a bare frame (frameMagic), so a Recv
// stream may freely mix the two.
const (
	batchMagic   = 0xA8
	batchVersion = 0x01
	// maxBatchFrames bounds the declared frame count: a corrupt count
	// must not ask the splitter for millions of iterations.
	maxBatchFrames = 4096
	// maxBatchFrameLen bounds each contained frame's declared length
	// (header + max payload + checksum, rounded up).
	maxBatchFrameLen = maxFrameMsgLen + 64
)

// IsBatch reports whether data starts like a batch blob rather than a
// bare frame. It is a routing hint only; SplitBatch still validates.
func IsBatch(data []byte) bool {
	return len(data) >= 2 && data[0] == batchMagic
}

// AppendBatch appends the batch encoding of frames to dst and returns the
// extended slice. It allocates nothing beyond growing dst.
func AppendBatch(dst []byte, frames [][]byte) []byte {
	dst = append(dst, batchMagic, batchVersion)
	dst = binary.AppendUvarint(dst, uint64(len(frames)))
	for _, f := range frames {
		dst = binary.AppendUvarint(dst, uint64(len(f)))
		dst = append(dst, f...)
	}
	return dst
}

// batchOverhead bounds the framing bytes AppendBatch adds around n frames
// (header plus one maximal length prefix per frame).
func batchOverhead(n int) int { return 2 + binary.MaxVarintLen64*(n+1) }

// blobFrames reports how many protocol frames a wire blob carries: the
// declared count for a well-formed batch header, 1 for everything else
// (a bare frame, or a blob too damaged for the count to be trusted —
// the router will charge it as one decode error anyway). Drop
// accounting uses this so a lost blob is counted in frames, the same
// unit every other transport and hop reports in: the inproc path knows
// its frame count at the send site, while the UDP read loop only holds
// opaque blob bytes and must peek the header.
func blobFrames(blob []byte) int {
	if !IsBatch(blob) || blob[1] != batchVersion {
		return 1
	}
	count, n := binary.Uvarint(blob[2:])
	if n <= 0 || count == 0 || count > maxBatchFrames {
		return 1
	}
	return int(count)
}

// In-place batch accumulation: the mux's outboxes build batch blobs
// incrementally — frames are appended as they are sent, so the finished
// blob can be handed to a blobSender transport without re-encoding or
// copying. Incremental building needs fixed-width slots for the values
// that are not known until later (the frame count, each frame's length),
// so those are written as padded uvarints: continuation bits forced on
// all but the last byte. binary.Uvarint accepts non-minimal encodings,
// so SplitBatch reads these blobs exactly like AppendBatch's output.
const (
	// batchHeaderLen is magic + version + a padded frame-count slot.
	batchHeaderLen = 2 + binary.MaxVarintLen64
	// batchLenPrefix is the padded per-frame length slot: 3 bytes cover
	// up to 2^21-1, beyond maxBatchFrameLen.
	batchLenPrefix = 3
)

// putPaddedUvarint writes v as a uvarint padded to exactly len(dst)
// bytes. v must fit in 7*(len(dst)-1)+7 bits with the final byte < 0x80.
func putPaddedUvarint(dst []byte, v uint64) {
	for i := 0; i < len(dst)-1; i++ {
		dst[i] = byte(v&0x7f) | 0x80
		v >>= 7
	}
	dst[len(dst)-1] = byte(v)
}

// seedBatchBlob appends an incremental-batch header (with a zeroed count
// slot) to buf.
func seedBatchBlob(buf []byte) []byte {
	buf = append(buf, batchMagic, batchVersion)
	var slot [binary.MaxVarintLen64]byte
	return append(buf, slot[:]...)
}

// patchBatchCount fills the count slot of a seeded blob.
func patchBatchCount(blob []byte, count int) {
	putPaddedUvarint(blob[2:batchHeaderLen], uint64(count))
}

// SplitBatch iterates the frames of a batch blob in order, calling fn on
// each (the slice aliases data). It is strict: a bad header, a count or
// length prefix out of bounds, a frame running past the blob, or trailing
// garbage after the last frame are all errors — a damaged batch is
// rejected, never mis-split into different frames. Frames already
// consumed before the error was hit may have been delivered to fn; each
// of those was length-delimited exactly as encoded, and every frame still
// carries its own checksum downstream.
func SplitBatch(data []byte, fn func(frame []byte) error) error {
	if len(data) < 2 {
		return fmt.Errorf("wire: batch too short (%d bytes)", len(data))
	}
	if data[0] != batchMagic {
		return fmt.Errorf("wire: bad batch magic 0x%02x", data[0])
	}
	if data[1] != batchVersion {
		return fmt.Errorf("wire: unsupported batch version %d", data[1])
	}
	rest := data[2:]
	count, n := binary.Uvarint(rest)
	if n <= 0 || count == 0 || count > maxBatchFrames {
		return fmt.Errorf("wire: bad batch frame count")
	}
	rest = rest[n:]
	for i := uint64(0); i < count; i++ {
		flen, n := binary.Uvarint(rest)
		if n <= 0 || flen == 0 || flen > maxBatchFrameLen {
			return fmt.Errorf("wire: bad batch frame %d length prefix", i)
		}
		rest = rest[n:]
		if uint64(len(rest)) < flen {
			return fmt.Errorf("wire: batch frame %d truncated (%d of %d bytes)", i, len(rest), flen)
		}
		if err := fn(rest[:flen]); err != nil {
			return err
		}
		rest = rest[flen:]
	}
	if len(rest) != 0 {
		return fmt.Errorf("wire: %d trailing bytes after batch", len(rest))
	}
	return nil
}
