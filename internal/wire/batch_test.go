package wire

import (
	"bytes"
	"encoding/binary"
	"testing"

	"seqtx/internal/channel"
	"seqtx/internal/msg"
)

// testFrames encodes a mixed burst: different sessions, directions, and
// payload lengths, including an empty payload.
func testFrames(t testing.TB) [][]byte {
	t.Helper()
	specs := []Frame{
		{Session: 1, Dir: channel.SToR, Msg: "d:0"},
		{Session: 7, Dir: channel.RToS, Msg: "a:3"},
		{Session: 900, Dir: channel.SToR, Msg: ""},
		{Session: 42, Dir: channel.SToR, Msg: "payload-with-some-length"},
	}
	frames := make([][]byte, len(specs))
	for i, s := range specs {
		frames[i] = EncodeFrame(s)
	}
	return frames
}

// splitAll collects a blob's frames (copied) or returns the error.
func splitAll(data []byte) ([][]byte, error) {
	var got [][]byte
	err := SplitBatch(data, func(fr []byte) error {
		got = append(got, append([]byte(nil), fr...))
		return nil
	})
	return got, err
}

func TestBatchRoundTrip(t *testing.T) {
	frames := testFrames(t)
	blob := AppendBatch(nil, frames)
	got, err := splitAll(blob)
	if err != nil {
		t.Fatalf("SplitBatch: %v", err)
	}
	if len(got) != len(frames) {
		t.Fatalf("split %d frames, want %d", len(got), len(frames))
	}
	for i := range frames {
		if !bytes.Equal(got[i], frames[i]) {
			t.Fatalf("frame %d changed in round trip: %x vs %x", i, got[i], frames[i])
		}
	}
}

// TestIncrementalBlobSplitsIdentically: a blob accumulated in place (the
// outbox path — seeded header, padded length prefixes, patched count)
// must split into exactly the same frames as AppendBatch's minimal
// encoding of the same burst.
func TestIncrementalBlobSplitsIdentically(t *testing.T) {
	frames := testFrames(t)
	blob := seedBatchBlob(nil)
	for _, fr := range frames {
		pfx := len(blob)
		blob = append(blob, 0, 0, 0)
		blob = append(blob, fr...)
		putPaddedUvarint(blob[pfx:pfx+batchLenPrefix], uint64(len(fr)))
	}
	patchBatchCount(blob, len(frames))

	got, err := splitAll(blob)
	if err != nil {
		t.Fatalf("SplitBatch of incremental blob: %v", err)
	}
	want, err := splitAll(AppendBatch(nil, frames))
	if err != nil {
		t.Fatalf("SplitBatch of AppendBatch blob: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("incremental blob split %d frames, minimal %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("frame %d differs between encodings: %x vs %x", i, got[i], want[i])
		}
	}
}

func TestPutPaddedUvarintMatchesUvarint(t *testing.T) {
	for _, v := range []uint64{0, 1, 127, 128, 300, 65535, 1<<21 - 1} {
		var slot [batchLenPrefix]byte
		putPaddedUvarint(slot[:], v)
		dec, n := binary.Uvarint(slot[:])
		if n != batchLenPrefix || dec != v {
			t.Fatalf("padded uvarint %d decoded to %d (n=%d)", v, dec, n)
		}
	}
	var wide [binary.MaxVarintLen64]byte
	putPaddedUvarint(wide[:], 1<<60)
	if dec, n := binary.Uvarint(wide[:]); n != len(wide) || dec != 1<<60 {
		t.Fatalf("padded 10-byte uvarint decoded to %d (n=%d)", 1<<60, n)
	}
}

func TestSplitBatchRejectsDamage(t *testing.T) {
	frames := testFrames(t)
	blob := AppendBatch(nil, frames)

	mutate := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), blob...)
		return f(b)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"one byte", []byte{batchMagic}},
		{"bad magic", mutate(func(b []byte) []byte { b[0] ^= 0xff; return b })},
		{"bad version", mutate(func(b []byte) []byte { b[1] ^= 0xff; return b })},
		{"zero count", []byte{batchMagic, batchVersion, 0}},
		{"count overflow", func() []byte {
			b := []byte{batchMagic, batchVersion}
			return binary.AppendUvarint(b, maxBatchFrames+1)
		}(),
		},
		{"length prefix overflow", func() []byte {
			b := []byte{batchMagic, batchVersion, 1}
			return binary.AppendUvarint(b, maxBatchFrameLen+1)
		}(),
		},
		{"frame runs past blob", mutate(func(b []byte) []byte { return b[:len(b)-1] })},
		{"trailing garbage", mutate(func(b []byte) []byte { return append(b, 0xde, 0xad) })},
	}
	for _, tc := range cases {
		if _, err := splitAll(tc.data); err == nil {
			t.Errorf("%s: SplitBatch accepted damaged blob", tc.name)
		}
	}
}

// TestSplitBatchTruncationNeverMisSplits: every proper prefix of a valid
// batch must be rejected, and any frames delivered before the error is
// noticed must be byte-identical prefixes of the original burst — a
// damaged batch is never silently re-split into different frames.
func TestSplitBatchTruncationNeverMisSplits(t *testing.T) {
	frames := testFrames(t)
	blob := AppendBatch(nil, frames)
	for cut := 0; cut < len(blob); cut++ {
		got, err := splitAll(blob[:cut])
		if err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", cut, len(blob))
		}
		if len(got) > len(frames) {
			t.Fatalf("truncation to %d yielded %d frames from a %d-frame batch", cut, len(got), len(frames))
		}
		for i := range got {
			if !bytes.Equal(got[i], frames[i]) {
				t.Fatalf("truncation to %d mis-split frame %d: %x vs %x", cut, i, got[i], frames[i])
			}
		}
	}
}

// FuzzBatchCodec throws arbitrary bytes at SplitBatch (it must never
// panic, and any fully accepted split must be unambiguous: re-encoding
// the yielded frames and splitting again reproduces them exactly) and
// checks that single-byte corruption of a valid batch never changes how
// the accepted prefix of frames is split.
func FuzzBatchCodec(f *testing.F) {
	frames := [][]byte{
		EncodeFrame(Frame{Session: 1, Dir: channel.SToR, Msg: "d:0"}),
		EncodeFrame(Frame{Session: 7, Dir: channel.RToS, Msg: "a:3"}),
	}
	valid := AppendBatch(nil, frames)
	incremental := func() []byte {
		b := seedBatchBlob(nil)
		pfx := len(b)
		b = append(b, 0, 0, 0)
		b = append(b, frames[0]...)
		putPaddedUvarint(b[pfx:pfx+batchLenPrefix], uint64(len(frames[0])))
		patchBatchCount(b, 1)
		return b
	}()
	f.Add(valid, 0, byte(0))
	f.Add(incremental, 5, byte(0xff))
	f.Add([]byte{batchMagic, batchVersion, 2, 1, 0}, 2, byte(1))
	f.Add([]byte{}, 0, byte(0))
	f.Fuzz(func(t *testing.T, data []byte, flipPos int, flipXor byte) {
		got, err := splitAll(data)
		if err == nil {
			if len(got) == 0 {
				t.Fatal("SplitBatch accepted a batch with zero frames")
			}
			blob := AppendBatch(nil, got)
			again, err := splitAll(blob)
			if err != nil {
				t.Fatalf("re-encode of accepted split rejected: %v", err)
			}
			if len(again) != len(got) {
				t.Fatalf("re-split changed frame count: %d vs %d", len(again), len(got))
			}
			for i := range got {
				if !bytes.Equal(again[i], got[i]) {
					t.Fatalf("re-split changed frame %d", i)
				}
			}
		}
		if flipXor == 0 || len(data) == 0 {
			return
		}
		if flipPos < 0 {
			flipPos = -flipPos
		}
		mut := append([]byte(nil), data...)
		mut[flipPos%len(mut)] ^= flipXor
		// Corruption may be accepted (payload bytes are protected by the
		// per-frame checksum downstream, not by the batch framing), but it
		// must never panic, and every frame it yields must still be
		// in-bounds and length-consistent — guaranteed by SplitBatch
		// returning subslices; just exercise it.
		_ = SplitBatch(mut, func(fr []byte) error {
			if len(fr) == 0 || len(fr) > maxBatchFrameLen {
				t.Fatalf("split yielded out-of-contract frame of %d bytes", len(fr))
			}
			return nil
		})
	})
}

// TestBatchFitHonorsLimits pins batchFit's two bounds: the byte limit
// and maxBatchFrames.
func TestBatchFitHonorsLimits(t *testing.T) {
	fr := EncodeFrame(Frame{Session: 3, Dir: channel.SToR, Msg: msg.Msg("d:1")})
	many := make([][]byte, maxBatchFrames+10)
	for i := range many {
		many[i] = fr
	}
	n, _ := batchFit(many, 1<<30)
	if n != maxBatchFrames {
		t.Fatalf("batchFit packed %d frames, want cap at %d", n, maxBatchFrames)
	}
	n, size := batchFit(many, 3*len(fr))
	if n < 1 || n > 3 {
		t.Fatalf("batchFit packed %d frames under a ~2-frame byte budget", n)
	}
	if enc := len(AppendBatch(nil, many[:n])); size < enc {
		t.Fatalf("batchFit size estimate %d below actual encoding %d", size, enc)
	}
}
