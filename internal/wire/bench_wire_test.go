package wire

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"seqtx/internal/channel"
	"seqtx/internal/msg"
	"seqtx/internal/registry"
	"seqtx/internal/seq"
)

// benchFrame is a representative data frame: a mid-range session id and a
// short alphabet payload, the shape every live run sends millions of.
var benchFrame = Frame{Session: 42, Dir: channel.SToR, Msg: "d:3"}

func BenchmarkAppendFrame(b *testing.B) {
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendFrame(buf[:0], benchFrame)
	}
	_ = buf
}

func BenchmarkEncodeFrame(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = EncodeFrame(benchFrame)
	}
}

func BenchmarkDecodeFrame(b *testing.B) {
	raw := EncodeFrame(benchFrame)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeFrame(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeFrameInto(b *testing.B) {
	raw := EncodeFrame(benchFrame)
	var v FrameView
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodeFrameInto(&v, raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchRoundTrip packs 64 frames into one blob and splits it
// again — the per-flush cost the outbox flusher and the routers pay.
func BenchmarkBatchRoundTrip(b *testing.B) {
	raw := EncodeFrame(benchFrame)
	frames := make([][]byte, 64)
	for i := range frames {
		frames[i] = raw
	}
	blob := make([]byte, 0, 4096)
	var v FrameView
	decode := func(frame []byte) error { return DecodeFrameInto(&v, frame) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob = AppendBatch(blob[:0], frames)
		if err := SplitBatch(blob, decode); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCredits bounds the frames in flight through the pump. It is kept
// below every buffer on the path (transport queues, per-session inboxes
// spread round-robin) so no frame is ever dropped: the closed loop then
// measures true pipeline cost per delivered frame, not drop-and-retry
// waste. A dropped frame would leak a credit and eventually stall the
// pump, so the margin matters.
const benchCredits = 16384

// benchCreditChunk is how many credits a sender claims per atomic
// operation; chunking keeps the harness's own atomics off the per-frame
// cost. Worst-case overshoot is senders × chunk beyond benchCredits,
// which the buffer margins absorb.
const benchCreditChunk = 64

// benchPump is a closed-loop data-plane pump: nSessions sessions are
// registered on a mux over tr, sender goroutines push in-alphabet frames
// round-robin through the mux send path under a credit bound, and
// per-session drainers count what lands in the inboxes. The reported
// ns/op is wall time per *delivered* frame.
func benchPump(b *testing.B, tr Transport, nSessions, credits int) {
	b.Helper()
	mux := NewMux(tr, nil)
	params := registry.Params{M: 8}
	input := seq.Seq{0, 1, 2, 3, 4, 5, 6, 7}

	var delivered, outstanding atomic.Int64
	var stop sync.Once
	done := make(chan struct{})
	payloads := make([]msg.Msg, nSessions)
	for i := 0; i < nSessions; i++ {
		s, r, err := registry.Pair("alpha", params, input)
		if err != nil {
			b.Fatalf("Pair: %v", err)
		}
		// The credit bound assumes the original 1024-slot inboxes (credits
		// round-robin across sessions must fit below aggregate capacity);
		// the leaner DefaultInboxSize would drop frames and leak credits.
		sess, err := mux.NewSession(SessionConfig{
			ID: uint64(i + 1), Sender: s, Receiver: r, Input: input,
			InboxSize: 1024,
		})
		if err != nil {
			b.Fatalf("NewSession: %v", err)
		}
		payloads[i] = s.Alphabet().Msgs()[0]
		go func(q *inbox) {
			var batch []msg.Msg
			for {
				batch = q.drain(batch)
				if len(batch) == 0 {
					if !q.arm() {
						continue
					}
					select {
					case <-q.notify:
					case <-done:
						return
					}
					continue
				}
				outstanding.Add(int64(-len(batch)))
				if delivered.Add(int64(len(batch))) >= int64(b.N) {
					stop.Do(func() { close(done) })
				}
				select {
				case <-done:
					return
				default:
				}
			}
		}(sess.receiverInbox)
	}

	senders := 2
	var wg sync.WaitGroup
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for w := 0; w < senders; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := w
			local := 0
			for {
				// The stop check and the credit claim are amortized over a
				// chunk so the harness's own bookkeeping stays off the
				// per-frame cost.
				if local == 0 {
					select {
					case <-done:
						return
					default:
					}
					if outstanding.Load() >= int64(credits) {
						runtime.Gosched()
						continue
					}
					outstanding.Add(benchCreditChunk)
					local = benchCreditChunk
				}
				local--
				id := uint64(i%nSessions + 1)
				_ = mux.send(id, channel.SToR, payloads[i%nSessions])
				i++
			}
		}(w)
	}
	<-done
	elapsed := time.Since(start)
	b.StopTimer()
	wg.Wait()
	mux.Close()
	if s := elapsed.Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s, "frames/s")
	}
}

// BenchmarkMuxInprocPump64 is the headline data-plane number: frames/sec
// through encode → inproc transport → decode → route → inbox with 64
// concurrent sessions on one mux.
func BenchmarkMuxInprocPump64(b *testing.B) {
	benchPump(b, NewInproc(8192, nil), 64, benchCredits)
}

// BenchmarkMuxInprocPump8 is the low-concurrency comparison point. Fewer
// sessions mean less aggregate inbox capacity, so the credit bound drops
// with them.
func BenchmarkMuxInprocPump8(b *testing.B) {
	benchPump(b, NewInproc(8192, nil), 8, 1024)
}

// BenchmarkMuxImpairedPump64 adds the impairment layer (no active faults,
// as stpserve always configures) so its locking shows up in the number.
func BenchmarkMuxImpairedPump64(b *testing.B) {
	opts, err := ImpairPreset("none")
	if err != nil {
		b.Fatalf("ImpairPreset: %v", err)
	}
	tr, err := NewImpairment(NewInproc(8192, nil), opts, nil)
	if err != nil {
		b.Fatalf("NewImpairment: %v", err)
	}
	benchPump(b, tr, 64, benchCredits)
}

// BenchmarkUDPPath measures the loopback datagram path: pre-encoded
// frames through Send → kernel → read loop → Recv, allocations included.
// ns/op is wall time per delivered frame (kernel drops excluded by the
// closed loop).
func BenchmarkUDPPath(b *testing.B) {
	tr, err := NewUDP(nil)
	if err != nil {
		b.Fatalf("NewUDP: %v", err)
	}
	defer tr.Close()
	raw := EncodeFrame(benchFrame)
	var delivered, outstanding atomic.Int64
	done := make(chan struct{})
	go func() {
		for raw := range tr.Recv(ReceiverEnd) {
			ReleaseBuf(raw)
			outstanding.Add(-1)
			if delivered.Add(1) >= int64(b.N) {
				close(done)
				return
			}
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for {
		select {
		case <-done:
		default:
			if outstanding.Load() >= 1024 {
				runtime.Gosched()
				continue
			}
			outstanding.Add(1)
			if err := tr.Send(SenderEnd, raw); err != nil {
				b.Fatalf("Send: %v", err)
			}
			continue
		}
		break
	}
	elapsed := time.Since(start)
	b.StopTimer()
	if s := elapsed.Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s, "frames/s")
	}
}
