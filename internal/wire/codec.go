package wire

import (
	"encoding/binary"
	"fmt"

	"seqtx/internal/channel"
	"seqtx/internal/msg"
)

// Frame is one wire unit: a single protocol message tagged with the
// session it belongs to and the direction it travels. The paper's
// processes exchange opaque finite-alphabet messages; the frame adds only
// what multiplexing over one shared link requires.
type Frame struct {
	// Session routes the frame to one of the multiplexed sessions.
	Session uint64
	// Dir is the logical direction (SToR for data, RToS for acks).
	Dir channel.Dir
	// Msg is the protocol message, a value from the protocol's alphabet.
	Msg msg.Msg
}

// Wire format: magic, version, uvarint session, direction byte,
// uvarint-length-prefixed message bytes, then a 4-byte big-endian FNV-1a
// checksum over everything before it. The length prefix makes the payload
// self-delimiting (the same framing msg.AppendMsg uses for state keys);
// the checksum makes every single-byte corruption detectable, so a
// damaged frame is rejected at decode instead of mis-decoding into a
// different in-alphabet message.
const (
	frameMagic   = 0xA7
	frameVersion = 0x01
	// checksumLen is the trailing FNV-1a 32 checksum size.
	checksumLen = 4
	// maxFrameMsgLen bounds the declared payload length; protocol
	// alphabets are tiny, and the bound keeps a corrupt length prefix
	// from asking the decoder for gigabytes.
	maxFrameMsgLen = 1 << 16
)

// AppendFrame appends f's wire encoding to buf and returns the extended
// slice. It allocates nothing beyond growing buf.
func AppendFrame(buf []byte, f Frame) []byte {
	start := len(buf)
	buf = append(buf, frameMagic, frameVersion)
	buf = binary.AppendUvarint(buf, f.Session)
	buf = append(buf, byte(f.Dir))
	buf = binary.AppendUvarint(buf, uint64(len(f.Msg)))
	buf = append(buf, f.Msg...)
	sum := checksum(buf[start:])
	return binary.BigEndian.AppendUint32(buf, sum)
}

// EncodeFrame returns f's wire encoding in a fresh buffer.
func EncodeFrame(f Frame) []byte {
	return AppendFrame(make([]byte, 0, 16+len(f.Msg)), f)
}

// FrameView is a decoded frame whose payload still aliases the encoded
// buffer: DecodeFrameInto fills one without copying, so a router that
// owns the buffer can inspect session, direction, and payload with zero
// allocations and copy the payload out only if it keeps the frame.
type FrameView struct {
	// Session routes the frame to one of the multiplexed sessions.
	Session uint64
	// Dir is the logical direction (SToR for data, RToS for acks).
	Dir channel.Dir
	// Payload aliases the encoded buffer; it is valid only until the
	// buffer is reused or released.
	Payload []byte
}

// Msg copies the payload out into an owned message value.
func (v *FrameView) Msg() msg.Msg { return msg.Msg(v.Payload) }

// DecodeFrameInto parses exactly one frame from data into v without
// copying the payload (v.Payload aliases data). It is strict: bad magic,
// a truncated or oversized payload, an unknown direction, a checksum
// mismatch, or trailing bytes are all errors — a corrupted frame must be
// rejected, never mis-decoded into a different message.
func DecodeFrameInto(v *FrameView, data []byte) error {
	if len(data) < 2+1+1+1+checksumLen {
		return fmt.Errorf("wire: frame too short (%d bytes)", len(data))
	}
	if data[0] != frameMagic {
		return fmt.Errorf("wire: bad frame magic 0x%02x", data[0])
	}
	if data[1] != frameVersion {
		return fmt.Errorf("wire: unsupported frame version %d", data[1])
	}
	body, tail := data[:len(data)-checksumLen], data[len(data)-checksumLen:]
	if got, want := binary.BigEndian.Uint32(tail), checksum(body); got != want {
		return fmt.Errorf("wire: frame checksum mismatch (got %08x, want %08x)", got, want)
	}
	rest := body[2:]
	session, n := binary.Uvarint(rest)
	if n <= 0 {
		return fmt.Errorf("wire: bad session id varint")
	}
	rest = rest[n:]
	if len(rest) < 1 {
		return fmt.Errorf("wire: frame truncated before direction")
	}
	dir := channel.Dir(rest[0])
	if dir != channel.SToR && dir != channel.RToS {
		return fmt.Errorf("wire: bad frame direction %d", int(dir))
	}
	rest = rest[1:]
	msgLen, n := binary.Uvarint(rest)
	if n <= 0 || msgLen > maxFrameMsgLen {
		return fmt.Errorf("wire: bad message length varint")
	}
	rest = rest[n:]
	if uint64(len(rest)) != msgLen {
		return fmt.Errorf("wire: message length %d does not match remaining %d bytes", msgLen, len(rest))
	}
	v.Session, v.Dir, v.Payload = session, dir, rest
	return nil
}

// DecodeFrame parses exactly one frame from data with the same strict
// rules as DecodeFrameInto, copying the payload into an owned Msg.
func DecodeFrame(data []byte) (Frame, error) {
	var v FrameView
	if err := DecodeFrameInto(&v, data); err != nil {
		return Frame{}, err
	}
	return Frame{Session: v.Session, Dir: v.Dir, Msg: v.Msg()}, nil
}

// PeekFrameSession extracts the session id from an encoded frame without
// validating the rest — the impairment layer uses it to pick a lock
// shard. Frames that do not parse report ok=false (and shard together).
func PeekFrameSession(frame []byte) (session uint64, ok bool) {
	if len(frame) < 3 || frame[0] != frameMagic {
		return 0, false
	}
	session, n := binary.Uvarint(frame[2:])
	return session, n > 0
}

// checksum is FNV-1a 32 over b, inlined so the hot path pays a tight
// byte loop instead of a hash.Hash allocation and interface calls.
func checksum(b []byte) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for _, c := range b {
		h = (h ^ uint32(c)) * prime32
	}
	return h
}
