package wire

import (
	"testing"

	"seqtx/internal/channel"
	"seqtx/internal/msg"
	"seqtx/internal/registry"
	"seqtx/internal/seq"
)

// protocolAlphabetMsgs collects every message of every registered
// protocol's sender and receiver alphabets (the values the codec must
// carry in production).
func protocolAlphabetMsgs(t *testing.T) []msg.Msg {
	t.Helper()
	params := registry.Params{M: 4, Timeout: 8, Window: 4}
	input := seq.Seq{0, 1, 2, 3}
	var out []msg.Msg
	for _, name := range registry.ProtocolNames() {
		s, r, err := registry.Pair(name, params, input)
		if err != nil {
			t.Fatalf("Pair(%s): %v", name, err)
		}
		out = append(out, s.Alphabet().Msgs()...)
		out = append(out, r.Alphabet().Msgs()...)
	}
	if len(out) == 0 {
		t.Fatal("no alphabet messages registered")
	}
	return out
}

func TestFrameRoundTripAllAlphabets(t *testing.T) {
	sessions := []uint64{0, 1, 63, 64, 1 << 20, 1<<63 - 1}
	for _, m := range protocolAlphabetMsgs(t) {
		for _, dir := range []channel.Dir{channel.SToR, channel.RToS} {
			for _, id := range sessions {
				f := Frame{Session: id, Dir: dir, Msg: m}
				got, err := DecodeFrame(EncodeFrame(f))
				if err != nil {
					t.Fatalf("decode(encode(%+v)): %v", f, err)
				}
				if got != f {
					t.Fatalf("round trip: got %+v, want %+v", got, f)
				}
			}
		}
	}
}

func TestDecodeRejectsEverySingleByteCorruption(t *testing.T) {
	frames := []Frame{
		{Session: 1, Dir: channel.SToR, Msg: "d:0"},
		{Session: 900, Dir: channel.RToS, Msg: "a:3"},
		{Session: 7, Dir: channel.SToR, Msg: ""},
	}
	for _, f := range frames {
		raw := EncodeFrame(f)
		for i := range raw {
			for delta := 1; delta < 256; delta++ {
				mut := make([]byte, len(raw))
				copy(mut, raw)
				mut[i] ^= byte(delta)
				if got, err := DecodeFrame(mut); err == nil {
					t.Fatalf("corrupting byte %d of %+v (xor %#x) mis-decoded to %+v", i, f, delta, got)
				}
			}
		}
	}
}

func TestDecodeRejectsTruncationAndTrailing(t *testing.T) {
	raw := EncodeFrame(Frame{Session: 12, Dir: channel.SToR, Msg: "d:2"})
	for n := 0; n < len(raw); n++ {
		if _, err := DecodeFrame(raw[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded", n)
		}
	}
	if _, err := DecodeFrame(append(append([]byte{}, raw...), 0x00)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestDecodeRejectsOversizedMsg(t *testing.T) {
	big := make([]byte, maxFrameMsgLen+1)
	raw := EncodeFrame(Frame{Session: 1, Dir: channel.SToR, Msg: msg.Msg(big)})
	if _, err := DecodeFrame(raw); err == nil {
		t.Fatal("oversized message accepted")
	}
}

func TestAppendFrameReusesBuffer(t *testing.T) {
	buf := make([]byte, 0, 64)
	f := Frame{Session: 3, Dir: channel.RToS, Msg: "a:1"}
	out := AppendFrame(buf, f)
	if got, err := DecodeFrame(out); err != nil || got != f {
		t.Fatalf("append into reused buffer: got %+v, err %v", got, err)
	}
}

// FuzzFrameCodec checks the two codec invariants on arbitrary inputs:
// encode∘decode is the identity on valid frames, and any single-byte
// mutation of an encoded frame is rejected (never mis-decoded).
func FuzzFrameCodec(f *testing.F) {
	f.Add(uint64(1), true, "d:0", 0, byte(1))
	f.Add(uint64(900), false, "a:3", 3, byte(0xff))
	f.Add(uint64(0), true, "", 1, byte(0x80))
	f.Fuzz(func(t *testing.T, session uint64, sToR bool, payload string, flipPos int, flipXor byte) {
		if len(payload) > maxFrameMsgLen {
			t.Skip()
		}
		dir := channel.SToR
		if !sToR {
			dir = channel.RToS
		}
		fr := Frame{Session: session, Dir: dir, Msg: msg.Msg(payload)}
		raw := EncodeFrame(fr)
		got, err := DecodeFrame(raw)
		if err != nil {
			t.Fatalf("decode(encode(%+v)): %v", fr, err)
		}
		if got != fr {
			t.Fatalf("round trip: got %+v, want %+v", got, fr)
		}
		if flipXor == 0 {
			return
		}
		if flipPos < 0 {
			flipPos = -flipPos
		}
		mut := make([]byte, len(raw))
		copy(mut, raw)
		mut[flipPos%len(raw)] ^= flipXor
		if dec, err := DecodeFrame(mut); err == nil {
			t.Fatalf("single-byte corruption at %d mis-decoded %+v to %+v", flipPos%len(raw), fr, dec)
		}
	})
}

// FuzzDecodeFrame throws arbitrary bytes at the decoder: it must never
// panic, and anything it does accept must re-encode to a frame that
// decodes identically (no ambiguous acceptances).
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeFrame(Frame{Session: 5, Dir: channel.SToR, Msg: "d:1"}))
	f.Add([]byte{frameMagic, frameVersion, 0, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(data)
		if err != nil {
			return
		}
		again, err := DecodeFrame(EncodeFrame(fr))
		if err != nil {
			t.Fatalf("re-encode of accepted frame %+v rejected: %v", fr, err)
		}
		if again != fr {
			t.Fatalf("re-encode changed frame: %+v vs %+v", again, fr)
		}
	})
}
