package wire

import (
	"fmt"
	"math/rand"

	"seqtx/internal/channel"
	"seqtx/internal/msg"
	"seqtx/internal/protocol"
	"seqtx/internal/seq"
	"seqtx/internal/trace"
)

// DetConfig configures a deterministic wire run: same codec path as the
// live transports, but a single goroutine with a seeded scheduler instead
// of real concurrency, so the run is exactly reproducible and — because
// every recorded action is enabled on a dup link — replayable in the
// lock-step simulator via sim.NewScripted.
type DetConfig struct {
	// Sender and Receiver are fresh protocol processes.
	Sender   protocol.Sender
	Receiver protocol.Receiver
	// Input is the tape X given to the sender.
	Input seq.Seq
	// Seed drives the scheduler.
	Seed int64
	// MaxSteps bounds the run (default 64 + 512 per input item).
	MaxSteps int
	// DupEveryN, when > 0, delivers every Nth chosen S→R delivery twice —
	// the deterministic counterpart of the dup-replay impairment.
	DupEveryN int
	// SessionID is the wire session id stamped into frames (default 1).
	SessionID uint64
}

// DetResult is the outcome of a deterministic wire run.
type DetResult struct {
	// Output is the tape Y the receiver wrote.
	Output seq.Seq
	// Complete reports Y = X.
	Complete bool
	// SafetyViolation is the first "Y not a prefix of X" error, if any.
	SafetyViolation error
	// Script is the recorded schedule: replaying it through
	// sim.NewScripted on a dup link reproduces Output byte for byte
	// (every recorded action is enabled there — ticks always are, and a
	// dup half keeps every ever-sent message deliverable).
	Script []trace.Action
	// Steps is the number of scheduler choices taken.
	Steps int
	// FramesTx and AcksTx count codec round-trips per direction.
	FramesTx, AcksTx int
}

// detState is the single-goroutine run state: per-direction stores of
// every message ever put on the wire (the dup dlvrble vector), kept in
// insertion order so the seeded scheduler is deterministic.
type detState struct {
	cfg    DetConfig
	rng    *rand.Rand
	stores map[channel.Dir]*detStore
	res    DetResult
	output seq.Seq
	// scratch is the reused encode buffer: every emitted message is
	// framed into it and decoded back out, so the codec round-trip costs
	// no per-message allocation. The decoded payload is copied into an
	// owned Msg before scratch is overwritten.
	scratch []byte
}

type detStore struct {
	msgs []msg.Msg // insertion-ordered, deduped (dup delivery never consumes)
	seen map[msg.Msg]struct{}
}

func (st *detStore) add(m msg.Msg) {
	if _, ok := st.seen[m]; ok {
		return
	}
	st.seen[m] = struct{}{}
	st.msgs = append(st.msgs, m)
}

// DetRun executes one deterministic wire run. Every message a process
// emits is encoded with AppendFrame and decoded with DecodeFrame before
// entering the deliverable store, so the codec sits on the data path
// exactly as in the live transports.
func DetRun(cfg DetConfig) (DetResult, error) {
	if cfg.Sender == nil || cfg.Receiver == nil {
		return DetResult{}, fmt.Errorf("wire: det run missing processes")
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = 64 + 512*len(cfg.Input)
	}
	if cfg.SessionID == 0 {
		cfg.SessionID = 1
	}
	d := &detState{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		stores: map[channel.Dir]*detStore{
			channel.SToR: {seen: make(map[msg.Msg]struct{})},
			channel.RToS: {seen: make(map[msg.Msg]struct{})},
		},
	}
	dupCountdown := 0
	for d.res.Steps < cfg.MaxSteps {
		act := d.choose()
		if err := d.apply(act); err != nil {
			return d.res, err
		}
		d.res.Steps++
		if act.Kind == trace.ActDeliver && act.Dir == channel.SToR && cfg.DupEveryN > 0 {
			dupCountdown++
			if dupCountdown%cfg.DupEveryN == 0 && !d.done() {
				// The dup impairment: the same frame arrives again. On the
				// dup link the message is still deliverable, so the replay
				// accepts the repeated action.
				if err := d.apply(act); err != nil {
					return d.res, err
				}
				d.res.Steps++
			}
		}
		if d.done() {
			break
		}
	}
	d.res.Output = d.output.Clone()
	d.res.Complete = d.res.SafetyViolation == nil && len(d.output) == len(cfg.Input)
	return d.res, nil
}

func (d *detState) done() bool {
	return d.res.SafetyViolation != nil || len(d.output) == len(d.cfg.Input)
}

// choose picks the next action with the seeded rng: ticks are always
// enabled; each ever-sent message on each direction is deliverable.
// Deliveries carry extra weight (each candidate message appears twice)
// so lossy-free runs converge quickly, but ticks always stay reachable —
// the retransmission path is exercised on every seed.
func (d *detState) choose() trace.Action {
	acts := []trace.Action{trace.TickS(), trace.TickR()}
	for _, dir := range []channel.Dir{channel.SToR, channel.RToS} {
		for _, m := range d.stores[dir].msgs {
			a := trace.Deliver(dir, m)
			acts = append(acts, a, a)
		}
	}
	return acts[d.rng.Intn(len(acts))]
}

// apply executes one action, routing every emitted message through the
// frame codec into the opposite store and recording the action.
func (d *detState) apply(act trace.Action) error {
	switch act.Kind {
	case trace.ActTickS:
		if err := d.route(channel.SToR, d.cfg.Sender.Step(protocol.TickEvent())); err != nil {
			return err
		}
	case trace.ActTickR:
		sends, writes := d.cfg.Receiver.Step(protocol.TickEvent())
		if err := d.route(channel.RToS, sends); err != nil {
			return err
		}
		d.write(writes)
	case trace.ActDeliver:
		if act.Dir == channel.SToR {
			sends, writes := d.cfg.Receiver.Step(protocol.RecvEvent(act.Msg))
			if err := d.route(channel.RToS, sends); err != nil {
				return err
			}
			d.write(writes)
		} else {
			if err := d.route(channel.SToR, d.cfg.Sender.Step(protocol.RecvEvent(act.Msg))); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("wire: det run cannot apply %s", act.Kind)
	}
	d.res.Script = append(d.res.Script, act)
	return nil
}

// route pushes emitted messages through the codec into dir's store.
func (d *detState) route(dir channel.Dir, sends []msg.Msg) error {
	for _, m := range sends {
		d.scratch = AppendFrame(d.scratch[:0], Frame{Session: d.cfg.SessionID, Dir: dir, Msg: m})
		var v FrameView
		if err := DecodeFrameInto(&v, d.scratch); err != nil {
			return fmt.Errorf("wire: det codec round-trip: %w", err)
		}
		if dir == channel.SToR {
			d.res.FramesTx++
		} else {
			d.res.AcksTx++
		}
		// v.Payload aliases scratch, which the next iteration overwrites;
		// the store needs an owned copy.
		d.stores[dir].add(msg.Msg(v.Payload))
	}
	return nil
}

// write appends R's writes to Y and audits safety online.
func (d *detState) write(writes seq.Seq) {
	for _, item := range writes {
		d.output = append(d.output, item)
		if d.res.SafetyViolation == nil && !d.output.IsPrefixOf(d.cfg.Input) {
			d.res.SafetyViolation = fmt.Errorf(
				"wire: det run safety violated at step %d: Y = %s is not a prefix of X = %s",
				d.res.Steps, d.output, d.cfg.Input)
		}
	}
}
